// Quickstart: the paper's introductory example (XML Query Use Cases XMP
// Q3). One query, two DTDs: with the weak schema the engine must buffer
// the authors of one book at a time; with the use-case schema (title
// strictly before author) the query runs fully on the fly with zero
// buffering.
package main

import (
	"fmt"
	"log"
	"os"

	"flux"
)

const query = `<results>
{ for $b in $ROOT/bib/book return
<result> { $b/title } { $b/author } </result> }
</results>`

// The weak DTD from Section 1: no order among titles and authors.
const weakDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

// The XML Query Use Cases DTD: title strictly before authors.
const strongDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const weakDoc = `<bib>
<book><author>Buneman</author><title>Data on the Web</title><author>Abiteboul</author><author>Suciu</author></book>
<book><title>TCP/IP Illustrated</title><author>Stevens</author></book>
</bib>`

const strongDoc = `<bib>
<book><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><author>Suciu</author><publisher>MK</publisher><price>39</price></book>
<book><title>TCP/IP Illustrated</title><author>Stevens</author><publisher>AW</publisher><price>65</price></book>
</bib>`

func main() {
	show("weak DTD (book := (title|author)*)", weakDTD, weakDoc)
	show("use-case DTD (title before author)", strongDTD, strongDoc)
}

func show(label, dtdText, doc string) {
	q, err := flux.Prepare(query, dtdText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n\n", label)
	fmt.Println("scheduled FluX query:")
	fmt.Println(q.FluxIndented())
	out, st, err := q.RunString(doc, flux.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:")
	fmt.Println(out)
	fmt.Printf("\npeak buffered bytes: %d\n\n", st.PeakBufferBytes)
	_ = os.Stdout
}

// Xmarkdemo: a miniature of the paper's Figure 4 experiment. Generates a
// small XMark-like document in memory and runs the five adapted benchmark
// queries through the FluX engine and both baselines, printing time,
// peak memory, and output size per cell.
//
// For the full sweep over file-backed documents use cmd/fluxbench.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"flux"
	"flux/internal/xmark"
)

func main() {
	var doc strings.Builder
	n, err := xmark.Generate(&doc, xmark.GenOptions{Scale: xmark.ScaleForBytes(512 << 10), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated XMark document: %d bytes\n\n", n)
	fmt.Printf("%-5s %-11s %10s %14s %12s\n", "query", "engine", "time", "peak buffer", "output")

	engines := []flux.Engine{flux.FluX, flux.Naive, flux.Projection}
	for _, name := range xmark.QueryNames {
		q, err := flux.Prepare(xmark.Queries[name], xmark.DTD)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, eng := range engines {
			start := time.Now()
			st, err := q.Run(strings.NewReader(doc.String()), io.Discard, flux.Options{Engine: eng})
			if err != nil {
				log.Fatalf("%s/%v: %v", name, eng, err)
			}
			fmt.Printf("%-5s %-11s %9.3fs %13dB %11dB\n",
				name, eng, time.Since(start).Seconds(), st.PeakBufferBytes, st.OutputBytes)
		}
		fmt.Println()
	}
}

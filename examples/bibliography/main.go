// Bibliography: the paper's running conditional query (XMP Q1, Examples
// 4.2 and 4.5). Shows the Figure 1 normalization pushing the where-clause
// into the loops, and how the schedule changes with the schema: under the
// unordered DTD the titles must buffer until publisher and year are past;
// when the DTD orders publisher and year before title, titles stream
// through an on-handler guarded by an on-the-fly condition flag.
package main

import (
	"fmt"
	"log"

	"flux"
)

const query = `<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/year > 1991
  return <book> {$b/year} {$b/title} </book> }
</bib>`

const unorderedDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|publisher|year)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

// The paper's F1' setting: publisher and year (in any order, repeatable)
// strictly before titles — Ord(publisher,title) and Ord(year,title) hold.
const orderedDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book ((publisher|year)*,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func main() {
	docUnordered := `<bib>
<book><title>TCP/IP Illustrated</title><publisher>Addison-Wesley</publisher><year>1994</year></book>
<book><publisher>Addison-Wesley</publisher><year>1990</year><title>Old Book</title></book>
<book><year>2000</year><publisher>Morgan Kaufmann</publisher><title>Data on the Web</title></book>
</bib>`
	docOrdered := `<bib>
<book><publisher>Addison-Wesley</publisher><year>1994</year><title>TCP/IP Illustrated</title></book>
<book><year>1990</year><publisher>Addison-Wesley</publisher><title>Old Book</title></book>
<book><publisher>Morgan Kaufmann</publisher><year>2000</year><title>Data on the Web</title></book>
</bib>`

	q, err := flux.Prepare(query, unorderedDTD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== normalization (Figure 1) ===")
	fmt.Println(q.NormalizedText())
	fmt.Println()

	run("unordered DTD: titles buffer until past(publisher,year,title)", query, unorderedDTD, docUnordered)
	run("ordered DTD: titles stream, condition is a flag", query, orderedDTD, docOrdered)
}

func run(label, query, dtdText, doc string) {
	q, err := flux.Prepare(query, dtdText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n\n", label)
	fmt.Println(q.FluxIndented())
	out, st, err := q.RunString(doc, flux.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %s\n", out)
	fmt.Printf("peak buffered bytes: %d\n\n", st.PeakBufferBytes)
}

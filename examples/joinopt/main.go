// Joinopt: the paper's Example 4.6 — a value join of article authors with
// book editors. Under a DTD with interleaved books and articles,
// everything under bib buffers (on-first past(article,book)); when the
// DTD guarantees books before articles, books buffer once while articles
// stream past, holding only the authors of the current article — exactly
// the evaluation strategy spelled out in Example 5.2.
package main

import (
	"fmt"
	"log"

	"flux"
)

const query = `<results>
{ for $bib in $ROOT/bib return
  { for $article in $bib/article return
    { for $book in $bib/book
      where $article/author = $book/editor return
      { <result> {$article/author} </result> } }}}
</results>`

const interleavedDTD = `
<!ELEMENT bib (book|article)*>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`

const orderedDTD = `
<!ELEMENT bib (book*,article*)>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`

func doc(booksFirst bool) string {
	books := `<book><title>B1</title><editor>Smith</editor><publisher>P</publisher></book>` +
		`<book><title>B2</title><author>Jones</author><publisher>P</publisher></book>` +
		`<book><title>B3</title><editor>Chen</editor><publisher>P</publisher></book>`
	articles := `<article><title>A1</title><author>Smith</author><author>Lee</author><journal>J</journal></article>` +
		`<article><title>A2</title><author>Nobody</author><journal>J</journal></article>` +
		`<article><title>A3</title><author>Chen</author><journal>J</journal></article>`
	if booksFirst {
		return "<bib>" + books + articles + "</bib>"
	}
	return "<bib>" + books + articles + "</bib>" // same instance is valid for both DTDs
}

func main() {
	run("interleaved DTD (bib := (book|article)*): buffer both sides", interleavedDTD)
	run("ordered DTD (bib := (book*,article*)): stream articles", orderedDTD)
}

func run(label, dtdText string) {
	q, err := flux.Prepare(query, dtdText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n\n", label)
	fmt.Println(q.FluxIndented())
	fmt.Println("plan (• marks buffered subtrees):")
	fmt.Println(q.PlanText())
	out, st, err := q.RunString(doc(true), flux.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %s\n", out)
	fmt.Printf("peak buffered bytes: %d\n\n", st.PeakBufferBytes)
}

package flux

// Differential testing of the parallel per-group evaluation pipeline:
// the same random query batches and documents as the automaton
// differential, run through mux.NewSelective with SetParallel against
// the sequential automaton path. The parallel scan must agree exactly —
// stream error, per-query errors, output bytes, and SkippedEvents — on
// every input, including malformed documents and batches where every
// query fails.

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"flux/internal/dtd"
	"flux/internal/mux"
)

// newParallelMux constructs the selective mux with parallel evaluation
// requested (it still falls back to sequential when GOMAXPROCS is 1 or
// the batch has a single routing group — the differential is valid
// either way, but the corpus is only interesting when workers run).
func newParallelMux() *mux.Mux {
	m := mux.NewSelective()
	m.SetParallel(true)
	return m
}

// checkParallelAgainst demands exact agreement between a parallel and a
// sequential run of the same batch: the pipeline reorders evaluation
// across groups, never per-query observable behavior.
func checkParallelAgainst(t *testing.T, label string, par, seq batchRun) {
	t.Helper()
	if (par.err != nil) != (seq.err != nil) {
		t.Fatalf("%s: stream error disagreement: parallel %v, sequential %v", label, par.err, seq.err)
	}
	for i := range par.results {
		pr, sr := par.results[i], seq.results[i]
		if (pr.Err != nil) != (sr.Err != nil) {
			t.Fatalf("%s: query %d error disagreement: parallel %v, sequential %v", label, i, pr.Err, sr.Err)
		}
		if par.outs[i] != seq.outs[i] {
			t.Fatalf("%s: query %d output differs under parallel evaluation\nparallel:   %q\nsequential: %q",
				label, i, par.outs[i], seq.outs[i])
		}
		if pr.SkippedEvents != sr.SkippedEvents {
			t.Fatalf("%s: query %d skipped %d events parallel, %d sequential",
				label, i, pr.SkippedEvents, sr.SkippedEvents)
		}
		if pr.Stats != sr.Stats {
			t.Fatalf("%s: query %d stats differ under parallel evaluation\nparallel:   %+v\nsequential: %+v",
				label, i, pr.Stats, sr.Stats)
		}
	}
}

// TestParallelDifferential runs the automaton differential's full corpus
// through the parallel pipeline: N random batches per fuzz schema, each
// over several random documents, parallel vs sequential.
func TestParallelDifferential(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("parallel pipeline inactive at GOMAXPROCS=1")
	}
	const batchesPerSchema = 40
	const docsPerBatch = 2
	batches := 0
	for si, dtdText := range fuzzSchemas {
		schema := dtd.MustParse(dtdText)
		for seed := 0; seed < batchesPerSchema; seed++ {
			r := rand.New(rand.NewSource(int64(si*7919 + seed)))
			qs := genQueryBatch(r, schema)
			if qs == nil {
				continue
			}
			batches++
			for d := 0; d < docsPerBatch; d++ {
				doc := dtd.RandomDocument(schema, int64(seed*107+d), dtd.GenOptions{})
				seq := runQueryBatch(mux.NewSelective, qs, doc)
				par := runQueryBatch(newParallelMux, qs, doc)
				checkParallelAgainst(t, t.Name(), par, seq)
			}
		}
	}
	t.Logf("parallel differential: %d batches", batches)
}

// FuzzParallelDispatch fuzzes the document bytes under seeded query
// batches: malformed XML, truncated documents, whatever — the parallel
// pipeline must agree exactly with the sequential automaton scan,
// including the all-queries-failed abort and its skip accounting.
func FuzzParallelDispatch(f *testing.F) {
	for si := range fuzzSchemas {
		schema := dtd.MustParse(fuzzSchemas[si])
		doc := dtd.RandomDocument(schema, int64(si), dtd.GenOptions{})
		f.Add(si, int64(si*17+1), doc)
		f.Add(si, int64(si*17+2), doc+"<trailing-garbage>")
		f.Add(si, int64(si*17+3), strings.Replace(doc, "</", "<", 1))
	}
	f.Fuzz(func(t *testing.T, si int, qseed int64, doc string) {
		if si < 0 || si >= len(fuzzSchemas) {
			t.Skip()
		}
		schema := dtd.MustParse(fuzzSchemas[si])
		qs := genQueryBatch(rand.New(rand.NewSource(qseed)), schema)
		if qs == nil {
			t.Skip()
		}
		seq := runQueryBatch(mux.NewSelective, qs, doc)
		par := runQueryBatch(newParallelMux, qs, doc)
		checkParallelAgainst(t, "fuzz", par, seq)
	})
}

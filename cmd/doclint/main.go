// Command doclint is the documentation gate run by CI (make lint-docs).
// It enforces two invariants that go vet does not:
//
//   - every exported identifier in the given -pkg packages — types,
//     funcs, methods, package-level vars/consts, and exported struct
//     fields — carries a doc comment, so the public API reads
//     completely on pkg.go.dev;
//   - every Go package found under the given -pkgtree roots carries a
//     package-level doc comment — the requirement applies to every
//     package in the repository, not just the fully doc-gated ones, so
//     a new internal package cannot land undescribed;
//   - every relative markdown link in the given documents points at a
//     file or directory that actually exists in the repository (http(s)
//     links are not fetched: CI must pass offline).
//
// Usage:
//
//	doclint [-pkg dir]... [-pkgtree root]... [-md file.md]...
//
// Exit status 1 lists every violation; nothing is fixed automatically.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var pkgs, trees, docs multiFlag
	flag.Var(&pkgs, "pkg", "package directory whose exported identifiers must all be documented (repeatable)")
	flag.Var(&trees, "pkgtree", "root directory; every Go package beneath it must carry a package-level doc comment (repeatable)")
	flag.Var(&docs, "md", "markdown file whose relative links must resolve (repeatable)")
	flag.Parse()
	if len(pkgs) == 0 && len(trees) == 0 && len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "doclint: nothing to check; give -pkg, -pkgtree and/or -md")
		os.Exit(2)
	}

	var violations []string
	for _, dir := range pkgs {
		v, err := lintPackage(dir)
		if err != nil {
			fatal(err)
		}
		violations = append(violations, v...)
	}
	treePkgs := 0
	for _, root := range trees {
		n, v, err := lintPackageTree(root)
		if err != nil {
			fatal(err)
		}
		treePkgs += n
		violations = append(violations, v...)
	}
	for _, path := range docs {
		v, err := lintLinks(path)
		if err != nil {
			fatal(err)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println("doclint:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("doclint: ok (%d packages, %d tree packages, %d documents)\n", len(pkgs), treePkgs, len(docs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doclint:", err)
	os.Exit(1)
}

// lintPackage reports every exported identifier in dir's non-test files
// that lacks a doc comment.
func lintPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgMap {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return out, nil
}

// lintPackageTree walks every directory under root and requires a
// package-level doc comment from each Go package it finds (test files
// and testdata/hidden directories excluded). This is the repo-wide
// complement to lintPackage's full exported-identifier gate: every
// package must at least say what it is.
func lintPackageTree(root string) (packages int, out []string, err error) {
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgMap, perr := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		for _, pkg := range pkgMap {
			packages++
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					hasPkgDoc = true
				}
			}
			if !hasPkgDoc {
				out = append(out, fmt.Sprintf("%s: package %s has no package comment", path, pkg.Name))
			}
		}
		return nil
	})
	return packages, out, err
}

// exportedRecv reports whether a method's receiver type is exported (a
// method on an unexported type is not part of the public API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// lintGenDecl checks type/var/const declarations and, for structs,
// every exported field. A value spec inside a documented const/var
// block passes if either the block or the spec is documented.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && st.Fields != nil {
				for _, f := range st.Fields.List {
					if f.Doc != nil || f.Comment != nil {
						continue
					}
					for _, n := range f.Names {
						if n.IsExported() {
							report(n.Pos(), "field", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
			if it, ok := s.Type.(*ast.InterfaceType); ok && it.Methods != nil {
				for _, m := range it.Methods.List {
					if m.Doc != nil || m.Comment != nil {
						continue
					}
					for _, n := range m.Names {
						if n.IsExported() {
							report(n.Pos(), "interface method", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), "value", n.Name)
				}
			}
		}
	}
}

// mdLink matches markdown links and images; group 2 is the target.
var mdLink = regexp.MustCompile(`!?\[([^\]]*)\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// lintLinks reports every relative link in the markdown file whose
// target does not exist on disk (resolved against the file's directory;
// #fragments and absolute URLs are skipped).
func lintLinks(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := filepath.Dir(path)
	var out []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[2]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[2]))
			}
		}
	}
	return out, nil
}

package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flux"
	"flux/internal/shard"
)

const tailDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title,year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const tailDoc = `<bib>` +
	`<book><title>FluX</title><year>2004</year></book>` +
	`<book><title>XMark</title><year>2002</year></book>` +
	`</bib>`

// TestReplayRoundTrip drives the client pieces end to end against a
// real server: subscribe, confirm parked, replay the document paced and
// chunked, and check the subscription saw exactly the static result.
func TestReplayRoundTrip(t *testing.T) {
	cat := flux.NewCatalog(flux.CatalogOptions{})
	if err := cat.AddStream("feed", tailDTD); err != nil {
		t.Fatal(err)
	}
	ex, err := flux.NewExecutor(cat, flux.ExecutorOptions{Window: time.Millisecond, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := shard.NewServer(ex, shard.ServerOptions{ShardID: -1})
	ts := httptest.NewServer(srv)
	defer func() {
		srv.Hub().Close()
		ts.Close()
	}()

	qpath := filepath.Join(t.TempDir(), "titles.xq")
	qtext := `{ for $b in /bib/book return {$b/title} }`
	if err := os.WriteFile(qpath, []byte(qtext), 0o644); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	start := time.Now()
	done := make(chan subOutcome, 1)
	go func() {
		done <- subscribe(ts.URL, "feed", "block", qpath, qtext, &got, start)
	}()
	waitParked(ts.URL, 1)

	body := &pacedReader{r: strings.NewReader(tailDoc), chunk: 7, rate: 1 << 20}
	resp, err := ts.Client().Post(ts.URL+"/ingest?doc=feed", "application/xml", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/ingest status %d", resp.StatusCode)
	}
	if body.sent != int64(len(tailDoc)) {
		t.Fatalf("replayed %d bytes, want %d", body.sent, len(tailDoc))
	}

	var out subOutcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription never finished")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	want := "<title>FluX</title><title>XMark</title>"
	if got.String() != want {
		t.Fatalf("subscription output %q, want %q", got.String(), want)
	}
	if out.firstResult == 0 || out.outputBytes != int64(len(want)) {
		t.Fatalf("outcome = %+v", out)
	}
	if out.trailer.Get("X-Flux-Dropped-Bytes") != "0" {
		t.Fatalf("dropped = %q", out.trailer.Get("X-Flux-Dropped-Bytes"))
	}
}

// TestCountWaiting pins the minimal /streamz field extraction.
func TestCountWaiting(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{`{"active_ingests":null,"waiting_subscriptions":3}`, 3},
		{"{\n  \"active_ingests\": null,\n  \"waiting_subscriptions\": 2\n}", 2},
		{`{"active_ingests":["a"],"waiting_subscriptions":12}`, 12},
		{`{"active_ingests":null}`, 0},
		{``, 0},
	}
	for _, tc := range cases {
		if got := countWaiting(tc.in); got != tc.want {
			t.Errorf("countWaiting(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

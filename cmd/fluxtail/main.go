// Command fluxtail replays an XML document to a fluxd /ingest endpoint
// as a timed stream — the producer side of the live-ingestion
// subsystem, for demos, load tests, and the stream-replay benchmark's
// operational twin. It optionally opens standing subscriptions first,
// so one invocation exercises the whole loop: subscribe, stream the
// document in chunks, and report each query's time to first result —
// the latency a standing query actually observes, measured from the
// moment the replay starts.
//
// Usage:
//
//	fluxtail -server http://localhost:8700 -doc feed -in data.xml \
//	         [-chunk 4096] [-rate 1048576] [-query q.xq ...] [-policy block|drop]
//
// -chunk is the write granularity in bytes; -rate paces the replay in
// bytes per second (0 streams as fast as the server admits, which under
// blocking subscribers is the backpressure rate). Each -query (
// repeatable) is posted to /subscribe before the replay begins; its
// results go to stdout (one query) or are discarded with counts
// reported (several), and per-query stats print to stderr when the
// stream ends.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// repeatFlag collects every occurrence of a repeatable string flag.
type repeatFlag []string

// String implements flag.Value.
func (f *repeatFlag) String() string { return strings.Join(*f, ",") }

// Set implements flag.Value.
func (f *repeatFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// subOutcome is one subscription's report, printed when it ends.
type subOutcome struct {
	query       string
	status      int
	outputBytes int64
	firstResult time.Duration // measured client-side from replay start
	trailer     http.Header
	err         error
}

func main() {
	var (
		server = flag.String("server", "http://localhost:8700", "fluxd base URL")
		doc    = flag.String("doc", "", "document name to ingest into (required)")
		inFile = flag.String("in", "", "XML document to replay (default stdin; stdin cannot be paced twice, files can)")
		chunk  = flag.Int("chunk", 4096, "write granularity in bytes")
		rate   = flag.Int64("rate", 0, "replay pacing in bytes per second (0 = as fast as the server admits)")
		policy = flag.String("policy", "block", "subscription overflow policy: block or drop")

		queries repeatFlag
	)
	flag.Var(&queries, "query", "path to an XQuery⁻ query to open as a standing subscription before the replay (repeatable)")
	flag.Parse()

	if *doc == "" {
		fatal(fmt.Errorf("-doc is required"))
	}
	if *chunk <= 0 {
		fatal(fmt.Errorf("-chunk must be positive, got %d", *chunk))
	}
	if *rate < 0 {
		fatal(fmt.Errorf("-rate must be non-negative, got %d", *rate))
	}
	if *policy != "block" && *policy != "drop" {
		fatal(fmt.Errorf("-policy must be block or drop, got %q", *policy))
	}

	var in io.Reader = os.Stdin
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	base := strings.TrimRight(*server, "/")
	start := time.Now()

	// Open the subscriptions first: a standing query must be parked
	// before the stream begins to observe the whole document.
	var wg sync.WaitGroup
	outcomes := make([]subOutcome, len(queries))
	for i, qpath := range queries {
		qtext, err := os.ReadFile(qpath)
		if err != nil {
			fatal(err)
		}
		// Results stream to stdout when there is exactly one query;
		// with several, interleaved output would be garbage, so the
		// bytes are counted and discarded instead.
		var sink io.Writer = io.Discard
		if len(queries) == 1 {
			sink = os.Stdout
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[i] = subscribe(base, *doc, *policy, qpath, string(qtext), sink, start)
		}()
	}
	if len(queries) > 0 {
		waitParked(base, len(queries))
	}

	// Replay the document.
	body := &pacedReader{r: in, chunk: *chunk, rate: *rate}
	resp, err := http.Post(base+"/ingest?doc="+*doc, "application/xml", body)
	if err != nil {
		fatal(err)
	}
	summary, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("/ingest: status %d: %s", resp.StatusCode, strings.TrimSpace(string(summary))))
	}
	fmt.Fprintf(os.Stderr, "fluxtail: replayed %d bytes in %s: %s\n",
		body.sent, time.Since(start).Round(time.Millisecond), strings.TrimSpace(string(summary)))

	wg.Wait()
	for _, o := range outcomes {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "fluxtail: %s: %v\n", o.query, o.err)
			continue
		}
		fmt.Fprintf(os.Stderr, "fluxtail: %s: status=%d output_bytes=%d first_result=%s peak_buffer_bytes=%s dropped_bytes=%s\n",
			o.query, o.status, o.outputBytes, o.firstResult.Round(time.Microsecond),
			o.trailer.Get("X-Flux-Peak-Buffer-Bytes"), o.trailer.Get("X-Flux-Dropped-Bytes"))
	}
}

// subscribe opens one standing subscription and drains its response,
// recording the client-observed time to first result byte.
func subscribe(base, doc, policy, qpath, qtext string, sink io.Writer, start time.Time) subOutcome {
	out := subOutcome{query: qpath}
	resp, err := http.Post(base+"/subscribe?doc="+doc+"&policy="+policy, "text/plain", strings.NewReader(qtext))
	if err != nil {
		out.err = err
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if out.firstResult == 0 {
				out.firstResult = time.Since(start)
			}
			out.outputBytes += int64(n)
			if _, werr := sink.Write(buf[:n]); werr != nil {
				out.err = werr
				return out
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			out.err = err
			return out
		}
	}
	out.trailer = resp.Trailer
	if e := resp.Trailer.Get("X-Flux-Error"); e != "" {
		out.err = fmt.Errorf("subscription failed: %s", e)
	}
	return out
}

// waitParked polls /streamz until n subscriptions are parked, so the
// replay provably starts after every standing query is registered.
// Best-effort: on persistent errors the replay proceeds anyway and the
// subscriptions join mid-stream.
func waitParked(base string, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/streamz")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var body []byte
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && countWaiting(string(body)) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "fluxtail: warning: %d subscription(s) not confirmed parked; replaying anyway\n", n)
}

// countWaiting pulls waiting_subscriptions out of the /streamz JSON
// without a full decode — the one field this client needs.
func countWaiting(s string) int {
	const key = `"waiting_subscriptions":`
	i := strings.Index(s, key)
	if i < 0 {
		return 0
	}
	rest := strings.TrimLeft(s[i+len(key):], " \t\n")
	n := 0
	for _, c := range rest {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// pacedReader feeds the request body in fixed-size chunks at a target
// byte rate. Pacing is computed against the replay's own clock, so a
// slow server (admission backpressure) naturally lowers the achieved
// rate below the target rather than bursting to catch up unboundedly.
type pacedReader struct {
	r     io.Reader
	chunk int
	rate  int64 // bytes per second; 0 = unpaced
	sent  int64
	start time.Time
}

// Read implements io.Reader.
func (p *pacedReader) Read(b []byte) (int, error) {
	if p.start.IsZero() {
		p.start = time.Now()
	}
	if p.rate > 0 && p.sent > 0 {
		// Sleep until the bytes already sent fit the target rate.
		due := time.Duration(p.sent) * time.Second / time.Duration(p.rate)
		if ahead := due - time.Since(p.start); ahead > 0 {
			time.Sleep(ahead)
		}
	}
	if len(b) > p.chunk {
		b = b[:p.chunk]
	}
	n, err := p.r.Read(b)
	p.sent += int64(n)
	return n, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxtail:", err)
	os.Exit(1)
}

// Command fluxbench regenerates the paper's Figure 4: the five adapted
// XMark queries across a sweep of document sizes, with execution time and
// peak memory per engine.
//
// Usage:
//
//	fluxbench                        # default: 1,2,5 MB, all queries, 3 engines
//	fluxbench -sizes 5,10,50,100     # the paper's sizes (slow: naive joins are O(n²))
//	fluxbench -q q8 -sizes 5 -max-baseline 10
//	fluxbench -ablation              # FluX vs FluX-without-scheduling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"flux/internal/bench"
)

func main() {
	var (
		sizes       = flag.String("sizes", "1,2,5", "comma-separated document sizes in MB")
		queries     = flag.String("q", "", "comma-separated query subset (q1,q8,q11,q13,q20); empty = all")
		seed        = flag.Int64("seed", 1, "data generator seed")
		maxBaseline = flag.Int("max-baseline", 0, "skip in-memory baselines above this many MB (0 = never)")
		workDir     = flag.String("dir", "", "directory for generated documents (default: temp, removed after)")
		ablation    = flag.Bool("ablation", false, "compare FluX against FluX with scheduling disabled")
		jsonPath    = flag.String("json", "", "also write the rows as a JSON snapshot to this path")
		shared      = flag.Bool("shared", true, "add a shared-scan row per size (all queries, one pass)")
		fanout      = flag.Bool("fanout", true, "add fan-out rows per size (disjoint-path batch, all vs selective event routing)")
		sharded     = flag.Bool("sharded", true, "add serving-tier rows per size (query set over HTTP: single worker vs fluxrouter with 2 embedded shards)")
		migrate     = flag.Bool("migrate", true, "add migration-under-load rows per size (fixed query stream with and without a live document migration racing it)")
		percentiles = flag.Bool("percentiles", true, "add an open-loop serving-latency row per size (p50/p99 request latency and queries/sec)")
		streaming   = flag.Bool("stream", true, "add streaming-ingestion rows per size (static shared scan vs standing subscriptions over a chunked replay)")
		skewed      = flag.Bool("skewed", true, "add skewed-workload rows per size (hot-document burst on one capacity-capped worker vs a 2-shard tier after the rebalancer replicated it)")
	)
	flag.Parse()

	cfg := bench.Config{
		Seed:          *seed,
		MaxBaselineMB: *maxBaseline,
		WorkDir:       *workDir,
		Progress:      os.Stderr,
	}
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		cfg.SizesMB = append(cfg.SizesMB, n)
	}
	if *queries != "" {
		for _, q := range strings.Split(*queries, ",") {
			cfg.Queries = append(cfg.Queries, strings.TrimSpace(q))
		}
	}
	modes := bench.AllModes
	if *ablation {
		modes = []bench.Mode{bench.ModeFluX, bench.ModeFluXNoSchema}
	}
	cfg.Modes = modes
	cfg.SharedScan = *shared
	cfg.Fanout = *fanout
	cfg.Sharded = *sharded
	cfg.Migrate = *migrate
	cfg.Percentiles = *percentiles
	cfg.Stream = *streaming
	cfg.Skewed = *skewed

	// An interrupt abandons the sweep mid-document via the context path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rows, err := bench.RunContext(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(errors.New("interrupted"))
		}
		fatal(err)
	}
	fmt.Println()
	fmt.Print(bench.FormatTable(rows, modes))
	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, rows); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxbench:", err)
	os.Exit(1)
}

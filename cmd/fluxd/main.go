// Command fluxd is a long-running query server over one XML document: it
// accepts XQuery⁻ queries over HTTP, compiles them against the configured
// DTD, batches concurrent requests onto shared scans of the document, and
// streams each result back.
//
// Usage:
//
//	fluxd -dtd schema.dtd -doc data.xml [-addr :8700] [-window 2ms] [-max-batch 16] [-attrs]
//
// Endpoints:
//
//	POST /query    query text in the body; result streams back, with
//	               X-Flux-Peak-Buffer-Bytes, X-Flux-Tokens and
//	               X-Flux-Batch-Size arriving as HTTP trailers
//	GET  /healthz  liveness probe
//	GET  /stats    serving counters (queries, shared scans, batch sizes)
//
// Concurrent requests that arrive within -window of each other (or up to
// -max-batch of them) execute in a single pass of the document: the scan
// is tokenized once and every SAX event fans out to all queries in the
// batch, so the cost of a burst is one traversal, not one per query.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", ":8700", "listen address")
		dtdFile  = flag.String("dtd", "", "path to the DTD the document and all queries compile against")
		docFile  = flag.String("doc", "", "path to the XML document to serve queries over")
		window   = flag.Duration("window", 2*time.Millisecond, "how long the first query of a batch waits for companions")
		maxBatch = flag.Int("max-batch", 16, "maximum queries per shared scan")
		attrs    = flag.Bool("attrs", false, "convert attributes to subelements (XSAX)")
	)
	flag.Parse()
	if *dtdFile == "" || *docFile == "" {
		fatal(fmt.Errorf("both -dtd and -doc are required"))
	}
	dtdText, err := os.ReadFile(*dtdFile)
	if err != nil {
		fatal(err)
	}
	s, err := newServer(config{
		dtdText:  string(dtdText),
		docPath:  *docFile,
		window:   *window,
		maxBatch: *maxBatch,
		attrs:    *attrs,
	})
	if err != nil {
		fatal(err)
	}
	log.Printf("fluxd: serving %s (DTD %s) on %s, batch window %s, max batch %d",
		*docFile, *dtdFile, *addr, *window, *maxBatch)
	if err := http.ListenAndServe(*addr, s); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxd:", err)
	os.Exit(1)
}

// Command fluxd is a long-running query server over a catalog of XML
// documents: it accepts XQuery⁻ queries over HTTP, compiles them against
// each document's DTD (with a compiled-query cache), batches concurrent
// requests onto shared scans per document, and streams each result back.
// It is a thin HTTP veneer over flux.Catalog and flux.Executor, and it
// doubles as the shard worker of the sharded tier: started with
// -shard-id under cmd/fluxrouter, N fluxd processes serve one
// partitioned corpus behind a single routing endpoint.
//
// Usage:
//
//	fluxd -dtd schema.dtd -doc data.xml [flags]     # single document
//	fluxd -docroot corpus/ [flags]                  # every corpus/<name>.xml + <name>.dtd pair
//	fluxd -stream-doc feed=schema.dtd [flags]       # stream-backed document, fed via /ingest
//	fluxd -stream-doc feed=schema.dtd -tail feed=/path/to/fifo
//	                                                # ... or from a named pipe
//
// Flags: [-addr :8700] [-window 2ms] [-max-batch 16] [-attrs] [-query-cache 256]
// [-admin] [-batch-buffer-budget 0] [-max-scans-per-doc 0]
// [-max-resident-buffer 0] [-all-fanout] [-shard-id -1] [-advertise addr]
// [-stream-doc name=dtdpath ...] [-tail doc=path ...]
//
// Endpoints:
//
//	POST /query?doc=name   query text in the body; result streams back,
//	                       with X-Flux-Peak-Buffer-Bytes, X-Flux-Tokens
//	                       and X-Flux-Batch-Size arriving as HTTP
//	                       trailers. ?doc= may be omitted when exactly
//	                       one document is registered.
//	GET  /docs             registered documents (name, path, swap count)
//	POST /admin/swap?doc=name&path=/new/file.xml
//	                       atomic hot-swap: in-flight scans finish on the
//	                       old file, later requests read the new one.
//	                       Disabled unless fluxd runs with -admin: the
//	                       endpoint takes server-side file paths, so it
//	                       belongs on trusted networks only
//	POST /admin/install?doc=name
//	                       register a document copy shipped in the body
//	                       (multipart doc+dtd parts, spooled to disk) —
//	                       the receiving half of a fluxrouter live
//	                       migration. -admin gated like /admin/swap
//	GET  /admin/fetch?doc=name&part=doc|dtd
//	                       stream a registered document's raw bytes or
//	                       its DTD text out — the sending half of a
//	                       migration copy. -admin gated
//	POST /admin/retire?doc=name
//	                       unregister a document; in-flight scans finish
//	                       on their open handle, later requests 404.
//	                       -admin gated
//	POST /ingest?doc=name  feed a live document stream: the request body
//	                       is consumed incrementally as it arrives, so
//	                       the producer may hold the request open and
//	                       trickle the document in. Responds with a JSON
//	                       summary when the stream ends
//	POST /subscribe?doc=name[&policy=block|drop]
//	                       register the query in the body as a standing
//	                       subscription; results stream back as matching
//	                       subtrees complete, stats and any failure ride
//	                       in HTTP trailers when the stream ends
//	GET  /streamz          live ingests and parked subscriptions
//	GET  /stats            the typed flux.ServerStats snapshot:
//	                       per-document serving counters, compiled-query
//	                       cache counters, scan admission counters, and
//	                       the predicted-peak calibration factor; schema
//	                       in README
//	GET  /shardz           worker identity: the -shard-id this process
//	                       asserts (-1 standalone), its -advertise
//	                       address, and its document names — what
//	                       fluxrouter health-checks to catch a stale
//	                       shard map
//	GET  /healthz          liveness probe
//
// Concurrent requests for the same document that arrive within -window
// of each other (or up to -max-batch of them) execute in a single pass
// of that document; events are routed so each query is delivered only
// the subtrees its projected paths can match (disable with -all-fanout).
// A batch whose summed predicted peak buffer bytes exceed
// -batch-buffer-budget is split into sequential scans, and every scan is
// admitted against -max-scans-per-doc / -max-resident-buffer, queueing
// when over the limit; the admission byte charge is the static
// prediction scaled by the observed-peak calibration factor. A client
// that disconnects mid-result is detached from its shared scan at the
// next event batch; sibling queries keep streaming.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"flux"
	"flux/internal/fsutil"
	"flux/internal/shard"
)

// streamDoc is one -stream-doc registration: a stream-backed document
// that exists only as a live ingest target, schema-checked against the
// DTD at dtdPath.
type streamDoc struct {
	name    string
	dtdPath string
}

// tailSpec is one -tail binding: feed the named document's stream from
// the file or named pipe at path.
type tailSpec struct {
	doc  string
	path string
}

// config is the validated server configuration.
type config struct {
	docs        []shard.DocSpec
	streamDocs  []streamDoc
	tails       []tailSpec
	window      time.Duration
	maxBatch    int
	attrs       bool
	cacheCap    int
	admin       bool   // expose the mutating /admin/* endpoints
	batchBudget int64  // cap on a scan's summed predicted buffer bytes (0 = unlimited)
	maxScansDoc int    // admission: concurrent scans per document (0 = unlimited)
	maxResident int64  // admission: total resident predicted buffer bytes (0 = unlimited)
	allFanout   bool   // disable selective fan-out
	parGroups   bool   // parallel per-group evaluation on shared scans
	shardID     int    // shard identity asserted at /shardz (-1 = standalone)
	advertise   string // reachable address reported at /shardz
}

// maxSaneBatch bounds -max-batch: beyond this, a single scan fanning to
// that many engines is a misconfiguration, not a workload.
const maxSaneBatch = 4096

// maxSaneWindow bounds -window: a batch window is a latency trade
// measured in milliseconds; anything over a minute holds every first
// request hostage.
const maxSaneWindow = time.Minute

// buildConfig validates the flag values and resolves the document set.
// It is the startup gate: bad values produce errors here, not silent
// defaults at serving time.
func buildConfig(dtdFile, docFile, docroot string, window time.Duration, maxBatch, cacheCap int, attrs, admin bool, sched schedConfig, id shardConfig, streams streamFlags) (config, error) {
	cfg := config{
		window: window, maxBatch: maxBatch, attrs: attrs, cacheCap: cacheCap, admin: admin,
		batchBudget: sched.batchBudget, maxScansDoc: sched.maxScansDoc,
		maxResident: sched.maxResident, allFanout: sched.allFanout,
		parGroups: sched.parallelGroups,
		shardID:   id.shardID, advertise: id.advertise,
	}
	if sched.batchBudget < 0 {
		return cfg, fmt.Errorf("-batch-buffer-budget must be non-negative (0 = unlimited), got %d", sched.batchBudget)
	}
	if sched.maxScansDoc < 0 {
		return cfg, fmt.Errorf("-max-scans-per-doc must be non-negative (0 = unlimited), got %d", sched.maxScansDoc)
	}
	if sched.maxResident < 0 {
		return cfg, fmt.Errorf("-max-resident-buffer must be non-negative (0 = unlimited), got %d", sched.maxResident)
	}
	if id.shardID < -1 {
		return cfg, fmt.Errorf("-shard-id must be a shard index >= 0, or -1 for standalone, got %d", id.shardID)
	}
	if window <= 0 {
		// ExecutorOptions treats 0 as "use the default", so accepting 0
		// here would silently re-introduce the 2ms default the user was
		// trying to turn off.
		return cfg, fmt.Errorf("-window must be positive (batching needs a window; try 100us for near-immediate dispatch), got %s", window)
	}
	if window > maxSaneWindow {
		return cfg, fmt.Errorf("-window %s is absurd: batches would hold requests for over %s", window, maxSaneWindow)
	}
	if maxBatch <= 0 {
		return cfg, fmt.Errorf("-max-batch must be positive, got %d", maxBatch)
	}
	if maxBatch > maxSaneBatch {
		return cfg, fmt.Errorf("-max-batch %d is absurd (limit %d)", maxBatch, maxSaneBatch)
	}
	if cacheCap < 0 {
		return cfg, fmt.Errorf("-query-cache must be non-negative, got %d", cacheCap)
	}
	if cacheCap == 0 {
		cfg.cacheCap = -1 // flag 0 = disabled; CatalogOptions negative = disabled
	}
	for _, v := range streams.streamDocs {
		name, dtdPath, ok := strings.Cut(v, "=")
		if !ok || name == "" || dtdPath == "" {
			return cfg, fmt.Errorf("-stream-doc wants name=dtdpath, got %q", v)
		}
		if err := fsutil.CheckRegularFile(dtdPath); err != nil {
			return cfg, fmt.Errorf("-stream-doc %s: %w", name, err)
		}
		cfg.streamDocs = append(cfg.streamDocs, streamDoc{name: name, dtdPath: dtdPath})
	}
	for _, v := range streams.tails {
		doc, path, ok := strings.Cut(v, "=")
		if !ok || doc == "" || path == "" {
			return cfg, fmt.Errorf("-tail wants doc=path, got %q", v)
		}
		cfg.tails = append(cfg.tails, tailSpec{doc: doc, path: path})
	}
	if (dtdFile == "") != (docFile == "") {
		return cfg, fmt.Errorf("-dtd and -doc must be given together")
	}
	if docFile == "" && docroot == "" && len(cfg.streamDocs) == 0 {
		return cfg, fmt.Errorf("no documents: give -dtd/-doc, -docroot, or -stream-doc")
	}
	if docFile != "" {
		if err := fsutil.CheckRegularFile(docFile); err != nil {
			return cfg, fmt.Errorf("-doc: %w", err)
		}
		if err := fsutil.CheckRegularFile(dtdFile); err != nil {
			return cfg, fmt.Errorf("-dtd: %w", err)
		}
		cfg.docs = append(cfg.docs, shard.DocSpec{Name: docName(docFile), DocPath: docFile, DTDPath: dtdFile})
	}
	if docroot != "" {
		specs, err := shard.ScanDocroot(docroot)
		if err != nil {
			return cfg, fmt.Errorf("-docroot: %w", err)
		}
		cfg.docs = append(cfg.docs, specs...)
	}
	seen := make(map[string]string)
	for _, d := range cfg.docs {
		if prev, dup := seen[d.Name]; dup {
			return cfg, fmt.Errorf("duplicate document name %q (%s and %s)", d.Name, prev, d.DocPath)
		}
		seen[d.Name] = d.DocPath
	}
	for _, d := range cfg.streamDocs {
		if prev, dup := seen[d.name]; dup {
			return cfg, fmt.Errorf("duplicate document name %q (%s and -stream-doc)", d.name, prev)
		}
		seen[d.name] = "-stream-doc " + d.dtdPath
	}
	for _, tl := range cfg.tails {
		if _, ok := seen[tl.doc]; !ok {
			return cfg, fmt.Errorf("-tail %s=%s: no such document registered", tl.doc, tl.path)
		}
	}
	return cfg, nil
}

// docName derives the registry name from a document path: the base name
// without its extension (matching shard.ScanDocroot's naming).
func docName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// schedConfig bundles the scheduling and admission flag values.
type schedConfig struct {
	batchBudget    int64
	maxScansDoc    int
	maxResident    int64
	allFanout      bool
	parallelGroups bool
}

// shardConfig bundles the shard-identity flag values.
type shardConfig struct {
	shardID   int
	advertise string
}

// streamFlags bundles the raw repeatable streaming flag values, parsed
// and validated by buildConfig.
type streamFlags struct {
	streamDocs []string // -stream-doc name=dtdpath, repeatable
	tails      []string // -tail doc=path, repeatable
}

// repeatFlag collects every occurrence of a repeatable string flag.
type repeatFlag []string

// String implements flag.Value.
func (f *repeatFlag) String() string { return strings.Join(*f, ",") }

// Set implements flag.Value.
func (f *repeatFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8700", "listen address")
		dtdFile  = flag.String("dtd", "", "path to the DTD for the single -doc document")
		docFile  = flag.String("doc", "", "path to a single XML document to serve queries over")
		docroot  = flag.String("docroot", "", "directory of <name>.xml + <name>.dtd pairs to serve")
		window   = flag.Duration("window", 2*time.Millisecond, "how long the first query of a batch waits for companions")
		maxBatch = flag.Int("max-batch", 16, "maximum queries per shared scan")
		cacheCap = flag.Int("query-cache", flux.DefaultQueryCacheCap, "compiled-query cache capacity (0 disables)")
		attrs    = flag.Bool("attrs", false, "convert attributes to subelements (XSAX)")
		admin    = flag.Bool("admin", false, "expose the mutating /admin/* endpoints (hot-swap); they accept server-side file paths, so enable only on trusted networks")

		batchBudget = flag.Int64("batch-buffer-budget", 0, "cap on one scan's summed predicted peak buffer bytes; over-budget batches split into sequential scans (0 = unlimited)")
		maxScansDoc = flag.Int("max-scans-per-doc", 0, "admission control: concurrent scans per document; excess scans queue (0 = unlimited)")
		maxResident = flag.Int64("max-resident-buffer", 0, "admission control: total predicted resident buffer bytes across all scans; excess scans queue (0 = unlimited)")
		allFanout   = flag.Bool("all-fanout", false, "deliver every scan event to every query instead of routing by projected-path signature (restores full per-query DTD validation)")
		parGroups   = flag.Bool("parallel-groups", false, "evaluate a shared scan's event-routing groups on a worker pool (one worker per GOMAXPROCS core) instead of inline on the scan goroutine; results are identical, wall-clock drops on multicore hosts (no effect at GOMAXPROCS=1 or with -all-fanout)")

		shardID   = flag.Int("shard-id", -1, "shard index this worker asserts at /shardz, for fluxrouter supervision (-1 = standalone)")
		advertise = flag.String("advertise", "", "reachable base URL reported at /shardz, when the listen address is not routable as written")

		streamDocs repeatFlag
		tails      repeatFlag
	)
	flag.Var(&streamDocs, "stream-doc", "register a stream-backed document as name=dtdpath; it is served only by live ingestion (/ingest), never from a file (repeatable)")
	flag.Var(&tails, "tail", "feed the named document's stream from a file or named pipe, as doc=path; a pipe is re-opened after each complete document (repeatable)")
	flag.Parse()

	cfg, err := buildConfig(*dtdFile, *docFile, *docroot, *window, *maxBatch, *cacheCap, *attrs, *admin, schedConfig{
		batchBudget:    *batchBudget,
		maxScansDoc:    *maxScansDoc,
		maxResident:    *maxResident,
		allFanout:      *allFanout,
		parallelGroups: *parGroups,
	}, shardConfig{shardID: *shardID, advertise: *advertise}, streamFlags{streamDocs: streamDocs, tails: tails})
	if err != nil {
		fatal(err)
	}
	s, err := newServer(cfg)
	if err != nil {
		fatal(err)
	}
	role := "standalone"
	if cfg.shardID >= 0 {
		role = fmt.Sprintf("shard %d", cfg.shardID)
	}
	log.Printf("fluxd: serving %d document(s) %v on %s (%s), batch window %s, max batch %d",
		len(cfg.docs)+len(cfg.streamDocs), s.Catalog().Docs(), *addr, role, cfg.window, cfg.maxBatch)
	for _, tl := range cfg.tails {
		go runTail(s, tl)
	}
	if err := http.ListenAndServe(*addr, s); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxd:", err)
	os.Exit(1)
}

package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flux"
)

const serverDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title,year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const serverDoc = `<bib>` +
	`<book><title>FluX</title><year>2004</year></book>` +
	`<book><title>XMark</title><year>2002</year></book>` +
	`<book><title>Galax</title><year>2004</year></book>` +
	`</bib>`

// testServer builds a server over a temp document with a deterministic
// batching setup: a window long enough that dispatch is driven purely by
// maxBatch filling up.
func testServer(t *testing.T, maxBatch int, window time.Duration) (*server, *httptest.Server) {
	t.Helper()
	docPath := filepath.Join(t.TempDir(), "bib.xml")
	if err := os.WriteFile(docPath, []byte(serverDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(config{
		dtdText:  serverDTD,
		docPath:  docPath,
		window:   window,
		maxBatch: maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url, query string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/query", "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestServerBatchesConcurrentRequests: with maxBatch == number of
// concurrent clients and a long window, all requests must execute in one
// shared scan and return exactly the single-run results.
func TestServerBatchesConcurrentRequests(t *testing.T) {
	queries := []string{
		`<out> { for $b in /bib/book return {$b/title} } </out>`,
		`<out> { for $b in /bib/book where $b/year = '2004' return {$b} } </out>`,
		`<out> { for $b in /bib/book return <y> {$b/year} </y> } </out>`,
		`<out> { for $b in /bib/book where $b/title = 'XMark' return {$b/year} } </out>`,
	}
	s, ts := testServer(t, len(queries), 30*time.Second)

	want := make([]string, len(queries))
	for i, qt := range queries {
		q, err := flux.Prepare(qt, serverDTD)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out, _, err := q.RunString(serverDoc, flux.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want[i] = out
	}

	var wg sync.WaitGroup
	for i, qt := range queries {
		wg.Add(1)
		go func(i int, qt string) {
			defer wg.Done()
			resp, body := postQuery(t, ts.URL, qt)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			if body != want[i] {
				t.Errorf("query %d: body %q, want %q", i, body, want[i])
			}
			if got := resp.Trailer.Get("X-Flux-Batch-Size"); got != fmt.Sprint(len(queries)) {
				t.Errorf("query %d: batch size trailer %q, want %d", i, got, len(queries))
			}
			if resp.Trailer.Get("X-Flux-Tokens") == "" {
				t.Errorf("query %d: missing tokens trailer", i)
			}
		}(i, qt)
	}
	wg.Wait()

	if scans, queriesRun := s.nScans.Load(), s.nQueries.Load(); scans != 1 || queriesRun != int64(len(queries)) {
		t.Errorf("scans = %d, queries = %d; want 1 shared scan for %d queries", scans, queriesRun, len(queries))
	}
}

// TestServerWindowDispatch: a lone request below maxBatch is dispatched
// by the window timer, not stuck waiting for companions.
func TestServerWindowDispatch(t *testing.T) {
	_, ts := testServer(t, 100, 5*time.Millisecond)
	const query = `<titles> { for $b in /bib/book return {$b/title} } </titles>`
	q, err := flux.Prepare(query, serverDTD)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.RunString(serverDoc, flux.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postQuery(t, ts.URL, query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if got := resp.Trailer.Get("X-Flux-Batch-Size"); got != "1" {
		t.Errorf("batch size trailer = %q, want 1", got)
	}
}

// TestServerBadQuery: a query outside the fragment is a client error,
// reported before any scan runs.
func TestServerBadQuery(t *testing.T) {
	s, ts := testServer(t, 100, 5*time.Millisecond)
	resp, body := postQuery(t, ts.URL, `<out> { for $b in return } </out>`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
	}
	if s.nScans.Load() != 0 {
		t.Errorf("a compile error must not trigger a scan; scans = %d", s.nScans.Load())
	}
}

// TestServerEndpoints: liveness and counters.
func TestServerEndpoints(t *testing.T) {
	_, ts := testServer(t, 100, time.Millisecond)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	if _, body := postQuery(t, ts.URL, `<out> { for $b in /bib/book return {$b/title} } </out>`); body == "" {
		t.Fatal("empty query result")
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", resp, err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{"queries", "scans", "peak_batch_size"} {
		if !strings.Contains(string(stats), key) {
			t.Errorf("stats missing %q: %s", key, stats)
		}
	}
}

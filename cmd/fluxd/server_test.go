package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flux"
	"flux/internal/shard"
)

const serverDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title,year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const serverDoc = `<bib>` +
	`<book><title>FluX</title><year>2004</year></book>` +
	`<book><title>XMark</title><year>2002</year></book>` +
	`<book><title>Galax</title><year>2004</year></book>` +
	`</bib>`

const serverDoc2 = `<bib>` +
	`<book><title>Streams</title><year>2003</year></book>` +
	`</bib>`

// writeDocPair writes <name>.xml and <name>.dtd into dir.
func writeDocPair(t *testing.T, dir, name, doc string) string {
	t.Helper()
	docPath := filepath.Join(dir, name+".xml")
	if err := os.WriteFile(docPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".dtd"), []byte(serverDTD), 0o644); err != nil {
		t.Fatal(err)
	}
	return docPath
}

// testServer builds a single-document server with a deterministic
// batching setup.
func testServer(t *testing.T, maxBatch int, window time.Duration) (*shard.Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	docPath := filepath.Join(dir, "bib.xml")
	dtdPath := filepath.Join(dir, "bib.dtd")
	if err := os.WriteFile(docPath, []byte(serverDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dtdPath, []byte(serverDTD), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(config{
		docs:     []shard.DocSpec{{Name: "bib", DocPath: docPath, DTDPath: dtdPath}},
		window:   window,
		maxBatch: maxBatch,
		admin:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// testServerDocroot builds a multi-document server from a docroot-style
// config.
func testServerDocroot(t *testing.T, maxBatch int, window time.Duration) (*shard.Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	writeDocPair(t, dir, "alpha", serverDoc)
	writeDocPair(t, dir, "beta", serverDoc2)
	specs, err := shard.ScanDocroot(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(config{docs: specs, window: window, maxBatch: maxBatch, admin: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, dir
}

func postQuery(t *testing.T, url, query string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestServerBatchesConcurrentRequests: with maxBatch == number of
// concurrent clients and a long window, all requests must execute in one
// shared scan and return exactly the single-run results.
func TestServerBatchesConcurrentRequests(t *testing.T) {
	queries := []string{
		`<out> { for $b in /bib/book return {$b/title} } </out>`,
		`<out> { for $b in /bib/book where $b/year = '2004' return {$b} } </out>`,
		`<out> { for $b in /bib/book return <y> {$b/year} </y> } </out>`,
		`<out> { for $b in /bib/book where $b/title = 'XMark' return {$b/year} } </out>`,
	}
	s, ts := testServer(t, len(queries), 30*time.Second)

	want := make([]string, len(queries))
	for i, qt := range queries {
		q, err := flux.Prepare(qt, serverDTD)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out, _, err := q.RunString(serverDoc, flux.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want[i] = out
	}

	var wg sync.WaitGroup
	for i, qt := range queries {
		wg.Add(1)
		go func(i int, qt string) {
			defer wg.Done()
			resp, body := postQuery(t, ts.URL+"/query", qt)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			if body != want[i] {
				t.Errorf("query %d: body %q, want %q", i, body, want[i])
			}
			if got := resp.Trailer.Get("X-Flux-Batch-Size"); got != fmt.Sprint(len(queries)) {
				t.Errorf("query %d: batch size trailer %q, want %d", i, got, len(queries))
			}
			if resp.Trailer.Get("X-Flux-Tokens") == "" {
				t.Errorf("query %d: missing tokens trailer", i)
			}
		}(i, qt)
	}
	wg.Wait()

	st := s.Executor().Stats()["bib"]
	if st.Scans != 1 || st.Queries != int64(len(queries)) {
		t.Errorf("scans = %d, queries = %d; want 1 shared scan for %d queries", st.Scans, st.Queries, len(queries))
	}
}

// TestServerWindowDispatch: a lone request below maxBatch is dispatched
// by the window timer, not stuck waiting for companions.
func TestServerWindowDispatch(t *testing.T) {
	_, ts := testServer(t, 100, 5*time.Millisecond)
	const query = `<titles> { for $b in /bib/book return {$b/title} } </titles>`
	q, err := flux.Prepare(query, serverDTD)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.RunString(serverDoc, flux.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postQuery(t, ts.URL+"/query", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if got := resp.Trailer.Get("X-Flux-Batch-Size"); got != "1" {
		t.Errorf("batch size trailer = %q, want 1", got)
	}
}

// TestServerMultiDoc: /query?doc= routes to the right document; a
// missing doc param with several documents registered is a clear client
// error; an unknown name is 404.
func TestServerMultiDoc(t *testing.T) {
	_, ts, _ := testServerDocroot(t, 100, time.Millisecond)
	const query = `<out> { for $b in /bib/book return {$b/title} } </out>`

	resp, body := postQuery(t, ts.URL+"/query?doc=alpha", query)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "FluX") {
		t.Fatalf("alpha: status %d body %q", resp.StatusCode, body)
	}
	resp, body = postQuery(t, ts.URL+"/query?doc=beta", query)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "Streams") {
		t.Fatalf("beta: status %d body %q", resp.StatusCode, body)
	}
	resp, body = postQuery(t, ts.URL+"/query", query)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "?doc=") {
		t.Fatalf("no doc param: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = postQuery(t, ts.URL+"/query?doc=nope", query)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown doc: status %d, want 404", resp.StatusCode)
	}
}

// TestServerDocsEndpoint: /docs lists the catalog.
func TestServerDocsEndpoint(t *testing.T) {
	_, ts, _ := testServerDocroot(t, 100, time.Millisecond)
	resp, err := http.Get(ts.URL + "/docs")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("docs: %v %v", resp, err)
	}
	var infos []flux.DocInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("docs = %+v", infos)
	}
}

// TestServerHotSwap: /admin/swap repoints a document; subsequent queries
// see the new content and /docs reports the swap count.
func TestServerHotSwap(t *testing.T) {
	_, ts, dir := testServerDocroot(t, 100, time.Millisecond)
	newPath := filepath.Join(dir, "replacement.xml")
	if err := os.WriteFile(newPath, []byte(serverDoc2), 0o644); err != nil {
		t.Fatal(err)
	}
	const query = `<out> { for $b in /bib/book return {$b/title} } </out>`

	resp, err := http.Post(ts.URL+"/admin/swap?doc=alpha&path="+newPath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info flux.DocInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Swaps != 1 || info.Path != newPath {
		t.Fatalf("swap: status %d info %+v", resp.StatusCode, info)
	}

	if resp, body := postQuery(t, ts.URL+"/query?doc=alpha", query); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "Streams") || strings.Contains(body, "FluX") {
		t.Fatalf("post-swap query: status %d body %q", resp.StatusCode, body)
	}

	// Swapping to a missing file is rejected and leaves the binding.
	resp, err = http.Post(ts.URL+"/admin/swap?doc=alpha&path="+filepath.Join(dir, "missing.xml"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("swap to missing file: status %d, want 400", resp.StatusCode)
	}
	// Unknown document is 404.
	resp, err = http.Post(ts.URL+"/admin/swap?doc=nope&path="+newPath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("swap unknown doc: status %d, want 404", resp.StatusCode)
	}
}

// TestServerBadQuery: a query outside the fragment is a client error,
// reported before any scan runs.
func TestServerBadQuery(t *testing.T) {
	s, ts := testServer(t, 100, 5*time.Millisecond)
	resp, body := postQuery(t, ts.URL+"/query", `<out> { for $b in return } </out>`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
	}
	if st := s.Executor().Stats()["bib"]; st.Scans != 0 {
		t.Errorf("a compile error must not trigger a scan; stats = %+v", st)
	}
}

// TestServerStats: per-document counters and compiled-query cache
// counters; a repeated query hits the cache.
func TestServerStats(t *testing.T) {
	_, ts, _ := testServerDocroot(t, 100, time.Millisecond)
	const query = `<out> { for $b in /bib/book return {$b/title} } </out>`
	for i := 0; i < 2; i++ {
		if resp, body := postQuery(t, ts.URL+"/query?doc=alpha", query); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", resp, err)
	}
	var reply flux.ServerStats
	err = json.NewDecoder(resp.Body).Decode(&reply)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Docs["alpha"].Queries != 2 || reply.Docs["alpha"].Scans != 2 {
		t.Errorf("alpha stats = %+v", reply.Docs["alpha"])
	}
	if _, ok := reply.Docs["beta"]; !ok {
		t.Error("stats must list documents that have not served yet")
	}
	if reply.Cache.Hits != 1 || reply.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss for a repeated query", reply.Cache)
	}
}

// TestServerClientDisconnect: a client that vanishes mid-batch is
// detached while its batch sibling streams the complete, correct result
// — the whole scan is NOT wasted. Regression test for the
// disconnect-wastes-the-scan bug.
func TestServerClientDisconnect(t *testing.T) {
	// A document big enough that the scan is still comfortably in
	// flight when the disconnect has propagated through the HTTP
	// server's connection watcher (ctx cancellation is asynchronous).
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 120000; i++ {
		fmt.Fprintf(&sb, "<book><title>vol %06d</title><year>2004</year></book>", i)
	}
	sb.WriteString("</bib>")
	bigDoc := sb.String()

	dir := t.TempDir()
	docPath := filepath.Join(dir, "big.xml")
	dtdPath := filepath.Join(dir, "big.dtd")
	if err := os.WriteFile(docPath, []byte(bigDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dtdPath, []byte(serverDTD), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(config{
		docs:     []shard.DocSpec{{Name: "big", DocPath: docPath, DTDPath: dtdPath}},
		window:   30 * time.Second, // dispatch strictly on the batch filling
		maxBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	const query = `<out> { for $b in /bib/book return {$b/title} } </out>`
	q, err := flux.Prepare(query, serverDTD)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.RunString(bigDoc, flux.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The surviving client.
	type outcome struct {
		body string
		err  error
	}
	survived := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(query))
		if err != nil {
			survived <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		survived <- outcome{body: string(body), err: err}
	}()

	// The hanging client: joins the batch (filling it, which dispatches
	// the shared scan), reads a little, then disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("hanging client never saw output: %v", err)
	}
	cancel() // disconnect mid-stream
	resp.Body.Close()

	out := <-survived
	if out.err != nil {
		t.Fatalf("surviving client: %v", out.err)
	}
	if out.body != want {
		t.Fatalf("surviving client's result corrupted: %d bytes, want %d", len(out.body), len(want))
	}

	// The canceled query must be recorded; deadline guards the counter
	// becoming visible after the batch finishes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Executor().Stats()["big"]; st.Canceled == 1 {
			if st.Scans != 1 || st.Queries != 2 {
				t.Fatalf("stats = %+v, want one shared scan of two queries", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never incremented: %+v", s.Executor().Stats()["big"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerEndpoints: liveness.
func TestServerEndpoints(t *testing.T) {
	_, ts := testServer(t, 100, time.Millisecond)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestBuildConfigValidation: bad flag values fail startup with clear
// errors instead of silent defaults.
func TestBuildConfigValidation(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")

	cases := []struct {
		name     string
		dtd, doc string
		docroot  string
		window   time.Duration
		maxBatch int
		cacheCap int
		wantErr  string
	}{
		{"negative window", dtdPath, docPath, "", -time.Second, 16, 0, "-window"},
		{"zero window", dtdPath, docPath, "", 0, 16, 0, "-window"},
		{"absurd window", dtdPath, docPath, "", 2 * time.Hour, 16, 0, "absurd"},
		{"zero batch", dtdPath, docPath, "", time.Millisecond, 0, 0, "-max-batch"},
		{"negative batch", dtdPath, docPath, "", time.Millisecond, -3, 0, "-max-batch"},
		{"absurd batch", dtdPath, docPath, "", time.Millisecond, 1 << 20, 0, "absurd"},
		{"negative cache", dtdPath, docPath, "", time.Millisecond, 16, -1, "-query-cache"},
		{"no documents", "", "", "", time.Millisecond, 16, 0, "no documents"},
		{"dtd without doc", dtdPath, "", "", time.Millisecond, 16, 0, "together"},
		{"missing doc file", dtdPath, filepath.Join(dir, "nope.xml"), "", time.Millisecond, 16, 0, "-doc"},
		{"missing docroot", "", "", filepath.Join(dir, "nodir"), time.Millisecond, 16, 0, "-docroot"},
		{"ok", dtdPath, docPath, "", time.Millisecond, 16, 0, ""},
		{"ok docroot", "", "", dir, time.Millisecond, 16, 0, ""},
	}
	for _, tc := range cases {
		_, err := buildConfig(tc.dtd, tc.doc, tc.docroot, tc.window, tc.maxBatch, tc.cacheCap, false, false, schedConfig{}, shardConfig{shardID: -1}, streamFlags{})
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestScanDocrootValidation: an .xml without its .dtd, and an empty
// docroot, are startup errors.
func TestScanDocrootValidation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "orphan.xml"), []byte(serverDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.ScanDocroot(dir); err == nil || !strings.Contains(err.Error(), "needs a DTD") {
		t.Errorf("orphan xml: err = %v", err)
	}
	empty := t.TempDir()
	if _, err := shard.ScanDocroot(empty); err == nil || !strings.Contains(err.Error(), "no <name>.xml") {
		t.Errorf("empty docroot: err = %v", err)
	}
}

// TestServerDuplicateDocName: the same name from -doc and -docroot is
// rejected at config build time.
func TestServerDuplicateDocName(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")
	_, err := buildConfig(dtdPath, docPath, dir, time.Millisecond, 16, 0, false, false, schedConfig{}, shardConfig{shardID: -1}, streamFlags{})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-name error", err)
	}
}

// TestServerAdminDisabledByDefault: without -admin, /admin/* is 403 and
// no swap happens.
func TestServerAdminDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")
	s, err := newServer(config{
		docs:     []shard.DocSpec{{Name: "bib", DocPath: docPath, DTDPath: dtdPath}},
		window:   time.Millisecond,
		maxBatch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/admin/swap?doc=bib&path="+docPath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("admin without -admin: status %d, want 403", resp.StatusCode)
	}
	if info, _ := s.Catalog().Info("bib"); info.Swaps != 0 {
		t.Fatalf("swap happened despite disabled admin: %+v", info)
	}
}

// TestServerSchedulingStats: the scheduling knobs surface in /stats —
// a split batch shows batch_splits/queries_deferred, selective fan-out
// shows events_skipped, and the admission section counts every scan.
func TestServerSchedulingStats(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	// Budget below the buffering query's prediction (4096): it cannot
	// share a scan with anything, so the batch of two splits in two.
	budget := int64(4000)
	s, err := newServer(config{
		docs:        []shard.DocSpec{{Name: "bib", DocPath: docPath, DTDPath: filepath.Join(dir, "bib.dtd")}},
		window:      30 * time.Second,
		maxBatch:    2,
		batchBudget: budget,
		maxScansDoc: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Both queries buffer (predicted > 4000 each, so neither can share a
	// scan under the budget); the second one projects only titles, so
	// selective fan-out skips the year subtrees for it.
	queries := []string{
		`<out> { for $b in /bib/book where $b/year = '2004' return {$b} } </out>`,
		`<out> { for $b in /bib/book where $b/title = 'XMark' return {$b/title} } </out>`,
	}
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			resp, _ := postQuery(t, ts.URL+"/query", q)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query status = %d", resp.StatusCode)
			}
		}(q)
	}
	wg.Wait()

	resp, body := func() (*http.Response, string) {
		r, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return r, string(b)
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status = %d", resp.StatusCode)
	}
	var reply flux.ServerStats
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("decoding /stats: %v\n%s", err, body)
	}
	st := reply.Docs["bib"]
	if st.Queries != 2 || st.Scans != 2 {
		t.Errorf("docs.bib = %+v, want 2 queries over 2 scans (budget split)", st)
	}
	if st.BatchSplits != 1 || st.Deferred != 1 {
		t.Errorf("docs.bib = %+v, want batch_splits 1, queries_deferred 1", st)
	}
	if st.EventsSkipped == 0 {
		t.Errorf("docs.bib events_skipped = 0, want > 0 (selective fan-out is the default)")
	}
	adm := reply.Admission
	if adm.Admitted != 2 || adm.ActiveScans != 0 || adm.Waiting != 0 {
		t.Errorf("admission = %+v, want 2 admitted, none active or waiting", adm)
	}
}

// TestServerAllFanoutFlag: with allFanout set, every query sees every
// event and events_skipped stays zero.
func TestServerAllFanoutFlag(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	s, err := newServer(config{
		docs:      []shard.DocSpec{{Name: "bib", DocPath: docPath, DTDPath: filepath.Join(dir, "bib.dtd")}},
		window:    time.Millisecond,
		maxBatch:  16,
		allFanout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, _ := postQuery(t, ts.URL+"/query",
		`<out> { for $b in /bib/book return <t> {$b/title} </t> } </out>`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if st := s.Executor().Stats()["bib"]; st.EventsSkipped != 0 {
		t.Fatalf("events_skipped = %d with all-fanout, want 0", st.EventsSkipped)
	}
}

// TestSchedulingFlagValidation: the scheduling and admission flags are
// validated at startup like everything else.
func TestSchedulingFlagValidation(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")
	cases := []struct {
		name    string
		sched   schedConfig
		wantErr string
	}{
		{"negative budget", schedConfig{batchBudget: -1}, "-batch-buffer-budget"},
		{"negative scans per doc", schedConfig{maxScansDoc: -1}, "-max-scans-per-doc"},
		{"negative resident", schedConfig{maxResident: -1}, "-max-resident-buffer"},
		{"ok limits", schedConfig{batchBudget: 1 << 20, maxScansDoc: 4, maxResident: 1 << 24, allFanout: true}, ""},
	}
	for _, tc := range cases {
		_, err := buildConfig(dtdPath, docPath, "", time.Millisecond, 16, 0, false, false, tc.sched, shardConfig{shardID: -1}, streamFlags{})
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestServerShardIdentity: /shardz reports the asserted shard id and
// advertise address (for fluxrouter supervision), and -shard-id below
// -1 fails startup.
func TestServerShardIdentity(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")
	s, err := newServer(config{
		docs:      []shard.DocSpec{{Name: "bib", DocPath: docPath, DTDPath: dtdPath}},
		window:    time.Millisecond,
		maxBatch:  16,
		shardID:   3,
		advertise: "http://worker-3.example:8700",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/shardz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("shardz: %v %v", resp, err)
	}
	var id shard.Identity
	err = json.NewDecoder(resp.Body).Decode(&id)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if id.ShardID != 3 || id.Advertise != "http://worker-3.example:8700" ||
		len(id.Docs) != 1 || id.Docs[0] != "bib" {
		t.Fatalf("identity = %+v", id)
	}

	if _, err := buildConfig(dtdPath, docPath, "", time.Millisecond, 16, 0, false, false,
		schedConfig{}, shardConfig{shardID: -2}, streamFlags{}); err == nil || !strings.Contains(err.Error(), "-shard-id") {
		t.Fatalf("shard-id -2: err = %v, want -shard-id validation error", err)
	}
}

// TestStreamFlagValidation: -stream-doc and -tail parse and validate at
// startup — malformed bindings, duplicate names, and tails against
// unregistered documents are configuration errors, not serving-time
// surprises.
func TestStreamFlagValidation(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")

	cases := []struct {
		name    string
		streams streamFlags
		wantErr string
	}{
		{"malformed stream-doc", streamFlags{streamDocs: []string{"feedonly"}}, "-stream-doc wants name=dtdpath"},
		{"empty stream-doc name", streamFlags{streamDocs: []string{"=" + dtdPath}}, "-stream-doc wants name=dtdpath"},
		{"missing stream-doc dtd", streamFlags{streamDocs: []string{"feed=" + filepath.Join(dir, "nope.dtd")}}, "-stream-doc feed"},
		{"duplicate vs file doc", streamFlags{streamDocs: []string{"bib=" + dtdPath}}, "duplicate document name"},
		{"malformed tail", streamFlags{tails: []string{"bib"}}, "-tail wants doc=path"},
		{"tail unknown doc", streamFlags{tails: []string{"nosuch=" + docPath}}, "no such document"},
	}
	for _, tc := range cases {
		_, err := buildConfig(dtdPath, docPath, "", time.Millisecond, 16, 0, false, false,
			schedConfig{}, shardConfig{shardID: -1}, tc.streams)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}

	// A stream-doc-only server is a valid configuration: no file docs.
	cfg, err := buildConfig("", "", "", time.Millisecond, 16, 0, false, false,
		schedConfig{}, shardConfig{shardID: -1},
		streamFlags{streamDocs: []string{"feed=" + dtdPath}, tails: []string{"feed=" + docPath}})
	if err != nil {
		t.Fatalf("stream-doc only: %v", err)
	}
	if len(cfg.streamDocs) != 1 || cfg.streamDocs[0].name != "feed" {
		t.Fatalf("streamDocs = %+v", cfg.streamDocs)
	}
	if len(cfg.tails) != 1 || cfg.tails[0].doc != "feed" {
		t.Fatalf("tails = %+v", cfg.tails)
	}
}

// TestServerTailIngest: a -tail binding against a regular file ingests
// the document once at startup, feeding parked subscriptions exactly as
// an HTTP /ingest would.
func TestServerTailIngest(t *testing.T) {
	dir := t.TempDir()
	docPath := writeDocPair(t, dir, "bib", serverDoc)
	dtdPath := filepath.Join(dir, "bib.dtd")

	cfg, err := buildConfig("", "", "", time.Millisecond, 16, 0, false, false,
		schedConfig{}, shardConfig{shardID: -1},
		streamFlags{streamDocs: []string{"feed=" + dtdPath}, tails: []string{"feed=" + docPath}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		s.Hub().Close()
		ts.Close()
	}()

	// Subscribe first, then start the tail: the parked subscription
	// activates when the tail's ingest begins.
	type result struct {
		body string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/subscribe?doc=feed", "text/plain",
			strings.NewReader(`{ for $b in /bib/book return {$b/title} }`))
		if err != nil {
			ch <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		ch <- result{body: string(body), err: err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/streamz")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Waiting int `json:"waiting_subscriptions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Waiting >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}

	go runTail(s, cfg.tails[0])

	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		want := "<title>FluX</title><title>XMark</title><title>Galax</title>"
		if res.body != want {
			t.Fatalf("tail-fed subscription got %q, want %q", res.body, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription never finished")
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"flux"
	"flux/internal/shard"
	"flux/internal/stream"
)

// newServer assembles the serving stack for a validated config: a
// catalog holding the configured documents, a batching executor over
// it, a streaming hub for the live-ingestion endpoints, and the
// shard-worker HTTP surface (internal/shard.Server) that fluxd serves
// standalone and fluxrouter supervises as a shard. All serving policy
// lives in the flux library and the shared veneer; fluxd itself is flag
// parsing plus this assembly.
func newServer(cfg config) (*shard.Server, error) {
	cat := flux.NewCatalog(flux.CatalogOptions{
		QueryCacheCap:          cfg.cacheCap,
		MaxScansPerDoc:         cfg.maxScansDoc,
		MaxResidentBufferBytes: cfg.maxResident,
	})
	for _, d := range cfg.docs {
		dtdText, err := os.ReadFile(d.DTDPath)
		if err != nil {
			return nil, fmt.Errorf("DTD %s: %w", d.DTDPath, err)
		}
		if err := cat.Add(d.Name, d.DocPath, string(dtdText)); err != nil {
			return nil, err
		}
	}
	for _, d := range cfg.streamDocs {
		dtdText, err := os.ReadFile(d.dtdPath)
		if err != nil {
			return nil, fmt.Errorf("DTD %s: %w", d.dtdPath, err)
		}
		if err := cat.AddStream(d.name, string(dtdText)); err != nil {
			return nil, err
		}
	}
	ex, err := flux.NewExecutor(cat, flux.ExecutorOptions{
		Window:                 cfg.window,
		MaxBatch:               cfg.maxBatch,
		AttrsToSubelements:     cfg.attrs,
		BatchBufferBudget:      cfg.batchBudget,
		DisableSelectiveFanout: cfg.allFanout,
		ParallelGroups:         cfg.parGroups,
	})
	if err != nil {
		return nil, err
	}
	// Built here rather than defaulted inside shard.NewServer so -attrs
	// and -parallel-groups apply to ingested streams exactly as they do
	// to file scans.
	hub := stream.NewHub(cat, stream.Options{
		AttrsToSubelements: cfg.attrs,
		ParallelGroups:     cfg.parGroups,
	})
	return shard.NewServer(ex, shard.ServerOptions{
		Admin:     cfg.admin,
		ShardID:   cfg.shardID,
		Advertise: cfg.advertise,
		Stream:    hub,
	}), nil
}

// runTail feeds the named document's stream from a file or named pipe —
// the non-HTTP ingestion path, for producers that write to a FIFO
// instead of holding a POST open. Each open-to-EOF of the path is one
// complete document ingest; a named pipe is then re-opened for the next
// document, while a regular file is ingested once. Failures are logged
// and, for a pipe, retried with the next document — a bad producer must
// not take the server down.
func runTail(s *shard.Server, tl tailSpec) {
	for {
		f, err := os.Open(tl.path)
		if err != nil {
			log.Printf("fluxd: tail %s: %v", tl.doc, err)
			return
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			log.Printf("fluxd: tail %s: %v", tl.doc, err)
			return
		}
		pipe := fi.Mode()&os.ModeNamedPipe != 0

		ing, err := s.Hub().StartIngest(context.Background(), tl.doc)
		if err != nil {
			f.Close()
			log.Printf("fluxd: tail %s: %v", tl.doc, err)
			return
		}
		n, err := io.Copy(ing, f)
		if err != nil {
			err = ing.Abort(err)
		} else {
			err = ing.Close()
		}
		f.Close()
		if err != nil {
			log.Printf("fluxd: tail %s: failed after %d bytes: %v", tl.doc, n, err)
		} else {
			log.Printf("fluxd: tail %s: ingested %d bytes, %d events", tl.doc, n, ing.Events())
		}
		if !pipe {
			return
		}
		// Brief pause so a persistently failing producer cannot spin
		// the re-open loop hot.
		time.Sleep(10 * time.Millisecond)
	}
}

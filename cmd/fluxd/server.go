package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"

	"flux"
)

// server is the thin HTTP veneer over flux.Catalog (document registry,
// hot-swap, compiled-query cache) and flux.Executor (shared-scan
// batching). All serving policy — batching windows, cancellation,
// per-document counters — lives in the library; the handlers only
// translate HTTP.
type server struct {
	cat    *flux.Catalog
	ex     *flux.Executor
	routes *http.ServeMux

	// defaultDoc serves /query without ?doc= when exactly one document
	// is registered at startup; "" means the parameter is required.
	defaultDoc string
}

func newServer(cfg config) (*server, error) {
	cat := flux.NewCatalog(flux.CatalogOptions{
		QueryCacheCap:          cfg.cacheCap,
		MaxScansPerDoc:         cfg.maxScansDoc,
		MaxResidentBufferBytes: cfg.maxResident,
	})
	for _, d := range cfg.docs {
		dtdText, err := os.ReadFile(d.dtdPath)
		if err != nil {
			return nil, fmt.Errorf("DTD %s: %w", d.dtdPath, err)
		}
		if err := cat.Add(d.name, d.docPath, string(dtdText)); err != nil {
			return nil, err
		}
	}
	ex, err := flux.NewExecutor(cat, flux.ExecutorOptions{
		Window:                 cfg.window,
		MaxBatch:               cfg.maxBatch,
		AttrsToSubelements:     cfg.attrs,
		BatchBufferBudget:      cfg.batchBudget,
		DisableSelectiveFanout: cfg.allFanout,
	})
	if err != nil {
		return nil, err
	}
	s := &server{cat: cat, ex: ex, routes: http.NewServeMux()}
	if docs := cat.Docs(); len(docs) == 1 {
		s.defaultDoc = docs[0]
	}
	s.routes.HandleFunc("/query", s.handleQuery)
	s.routes.HandleFunc("/docs", s.handleDocs)
	if cfg.admin {
		s.routes.HandleFunc("/admin/swap", s.handleSwap)
	} else {
		s.routes.HandleFunc("/admin/", s.handleAdminDisabled)
	}
	s.routes.HandleFunc("/healthz", s.handleHealthz)
	s.routes.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.routes.ServeHTTP(w, r) }

// maxQueryBytes bounds the request body; queries are small programs, not
// documents.
const maxQueryBytes = 1 << 20

// resolveDoc picks the target document for a request.
func (s *server) resolveDoc(r *http.Request) (string, error) {
	doc := r.URL.Query().Get("doc")
	if doc != "" {
		return doc, nil
	}
	if s.defaultDoc != "" {
		return s.defaultDoc, nil
	}
	return "", fmt.Errorf("multiple documents are registered; pick one with ?doc= (see /docs)")
}

// handleQuery streams the posted query's result from the document's
// shared scan. The request context rides into ExecuteContext, so a
// client that disconnects mid-result is detached from the scan at the
// next event batch while batch siblings keep streaming.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the query text to /query", http.StatusMethodNotAllowed)
		return
	}
	doc, err := s.resolveDoc(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		http.Error(w, "reading query: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxQueryBytes {
		// Reject rather than truncate: a silently truncated query would
		// compile — and run — as a different query.
		http.Error(w, "query exceeds the 1 MB limit", http.StatusRequestEntityTooLarge)
		return
	}
	q, err := s.cat.Prepare(doc, string(body))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, flux.ErrDocNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, "compiling query: "+err.Error(), status)
		return
	}

	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("Trailer", "X-Flux-Peak-Buffer-Bytes, X-Flux-Tokens, X-Flux-Batch-Size")
	cw := &countingWriter{w: w}
	res, err := s.ex.ExecuteQueryContext(r.Context(), doc, q, cw)
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; there is no one to report to. The
			// executor has already detached the query from its batch.
			return
		}
		if cw.n == 0 {
			// Nothing streamed yet; a clean error status is still possible.
			http.Error(w, "executing query: "+err.Error(), http.StatusInternalServerError)
			return
		}
		// The response is already partially written with a 200 header; a
		// clean chunked terminator would make the truncated body look
		// complete to any client that ignores trailers. Abort the
		// connection instead so the failure is visible at the transport.
		panic(http.ErrAbortHandler)
	}
	if cw.n == 0 {
		// Force the header out even for empty results.
		w.WriteHeader(http.StatusOK)
	}
	w.Header().Set("X-Flux-Peak-Buffer-Bytes", fmt.Sprint(res.Stats.PeakBufferBytes))
	w.Header().Set("X-Flux-Tokens", fmt.Sprint(res.Stats.Tokens))
	w.Header().Set("X-Flux-Batch-Size", fmt.Sprint(res.BatchSize))
}

// handleDocs lists the registered documents.
func (s *server) handleDocs(w http.ResponseWriter, r *http.Request) {
	var infos []flux.DocInfo
	for _, name := range s.cat.Docs() {
		if info, err := s.cat.Info(name); err == nil {
			infos = append(infos, info)
		}
	}
	writeJSON(w, infos)
}

// handleSwap atomically repoints a document at a new file. In-flight
// scans complete against the old file; later requests read the new one.
func (s *server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST /admin/swap?doc=name&path=/new/file.xml", http.StatusMethodNotAllowed)
		return
	}
	doc := r.URL.Query().Get("doc")
	path := r.URL.Query().Get("path")
	if doc == "" || path == "" {
		http.Error(w, "both doc and path parameters are required", http.StatusBadRequest)
		return
	}
	if err := s.cat.Swap(doc, path); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, flux.ErrDocNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	info, err := s.cat.Info(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, info)
}

// handleAdminDisabled answers /admin/* when the server was started
// without -admin: the mutating endpoints accept server-side file paths
// and are opt-in.
func (s *server) handleAdminDisabled(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "admin endpoints are disabled; start fluxd with -admin to enable hot-swap", http.StatusForbidden)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statsReply is the /stats payload: per-document serving counters (the
// queries/scans ratio is the shared-scan amortization), the
// compiled-query cache counters, and the catalog's scan-admission
// counters. The full schema is documented in README's fluxd section.
type statsReply struct {
	Docs      map[string]flux.DocStats `json:"docs"`
	Cache     flux.CacheStats          `json:"cache"`
	Admission flux.AdmissionStats      `json:"admission"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	docs := s.ex.Stats()
	// Documents that have not served a query yet still appear, with
	// zero counters, so dashboards see the whole catalog.
	for _, name := range s.cat.Docs() {
		if _, ok := docs[name]; !ok {
			docs[name] = flux.DocStats{}
		}
	}
	writeJSON(w, statsReply{
		Docs:      docs,
		Cache:     s.cat.CacheStats(),
		Admission: s.cat.AdmissionStats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// countingWriter tracks whether (and how much) output has been streamed,
// which decides error reporting: a clean 500 is only possible before the
// first byte.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

package main

import (
	"fmt"
	"os"

	"flux"
	"flux/internal/shard"
)

// newServer assembles the serving stack for a validated config: a
// catalog holding the configured documents, a batching executor over
// it, and the shard-worker HTTP surface (internal/shard.Server) that
// fluxd serves standalone and fluxrouter supervises as a shard. All
// serving policy lives in the flux library and the shared veneer; fluxd
// itself is flag parsing plus this assembly.
func newServer(cfg config) (*shard.Server, error) {
	cat := flux.NewCatalog(flux.CatalogOptions{
		QueryCacheCap:          cfg.cacheCap,
		MaxScansPerDoc:         cfg.maxScansDoc,
		MaxResidentBufferBytes: cfg.maxResident,
	})
	for _, d := range cfg.docs {
		dtdText, err := os.ReadFile(d.DTDPath)
		if err != nil {
			return nil, fmt.Errorf("DTD %s: %w", d.DTDPath, err)
		}
		if err := cat.Add(d.Name, d.DocPath, string(dtdText)); err != nil {
			return nil, err
		}
	}
	ex, err := flux.NewExecutor(cat, flux.ExecutorOptions{
		Window:                 cfg.window,
		MaxBatch:               cfg.maxBatch,
		AttrsToSubelements:     cfg.attrs,
		BatchBufferBudget:      cfg.batchBudget,
		DisableSelectiveFanout: cfg.allFanout,
	})
	if err != nil {
		return nil, err
	}
	return shard.NewServer(ex, shard.ServerOptions{
		Admin:     cfg.admin,
		ShardID:   cfg.shardID,
		Advertise: cfg.advertise,
	}), nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flux"
	"flux/internal/dtd"
)

// config is the static server configuration.
type config struct {
	dtdText  string
	docPath  string
	window   time.Duration // how long the first request of a batch waits for companions
	maxBatch int           // a full batch dispatches immediately
	attrs    bool          // XSAX attribute conversion on the input stream
}

// server batches concurrent query requests onto shared scans of the
// target document. Each HTTP request compiles its query, joins the open
// batch, and blocks until the batch's single input pass has streamed its
// result; the pass itself runs through flux.RunAll, so per-request
// output, statistics, and failures stay isolated.
type server struct {
	cfg    config
	schema *dtd.Schema
	routes *http.ServeMux

	mu       sync.Mutex
	pending  []*request
	batchGen uint64 // bumped whenever a batch is taken; stale timers check it

	// Served counters, reported by /stats.
	nQueries  atomic.Int64 // queries executed
	nScans    atomic.Int64 // shared input passes performed
	nShared   atomic.Int64 // queries that shared their pass with a sibling
	peakBatch atomic.Int64 // largest batch so far
}

// request is one enqueued query execution.
type request struct {
	q    *flux.Query
	w    io.Writer
	done chan reqResult
}

// reqResult is what the batch runner reports back to the HTTP handler.
type reqResult struct {
	stats     flux.Stats
	batchSize int
	err       error
}

func newServer(cfg config) (*server, error) {
	schema, err := dtd.Parse(cfg.dtdText)
	if err != nil {
		return nil, fmt.Errorf("DTD: %w", err)
	}
	if _, err := os.Stat(cfg.docPath); err != nil {
		return nil, fmt.Errorf("document: %w", err)
	}
	if cfg.maxBatch <= 0 {
		cfg.maxBatch = 16
	}
	s := &server{cfg: cfg, schema: schema, routes: http.NewServeMux()}
	s.routes.HandleFunc("/query", s.handleQuery)
	s.routes.HandleFunc("/healthz", s.handleHealthz)
	s.routes.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.routes.ServeHTTP(w, r) }

// maxQueryBytes bounds the request body; queries are small programs, not
// documents.
const maxQueryBytes = 1 << 20

// handleQuery compiles the posted XQuery⁻ text against the server's DTD,
// joins the open batch, and streams the query result back. Execution
// statistics arrive as HTTP trailers, since the body streams before they
// are known.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the query text to /query", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		http.Error(w, "reading query: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxQueryBytes {
		// Reject rather than truncate: a silently truncated query would
		// compile — and run — as a different query.
		http.Error(w, "query exceeds the 1 MB limit", http.StatusRequestEntityTooLarge)
		return
	}
	q, err := flux.PrepareWithSchema(string(body), s.schema)
	if err != nil {
		http.Error(w, "compiling query: "+err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("Trailer", "X-Flux-Peak-Buffer-Bytes, X-Flux-Tokens, X-Flux-Batch-Size")
	cw := &countingWriter{w: w}
	req := &request{q: q, w: cw, done: make(chan reqResult, 1)}
	s.enqueue(req)
	res := <-req.done

	if res.err != nil {
		if cw.n == 0 {
			// Nothing streamed yet; a clean error status is still possible.
			http.Error(w, "executing query: "+res.err.Error(), http.StatusInternalServerError)
			return
		}
		// The response is already partially written with a 200 header; a
		// clean chunked terminator would make the truncated body look
		// complete to any client that ignores trailers. Abort the
		// connection instead so the failure is visible at the transport.
		panic(http.ErrAbortHandler)
	}
	if cw.n == 0 {
		// Force the header out even for empty results.
		w.WriteHeader(http.StatusOK)
	}
	w.Header().Set("X-Flux-Peak-Buffer-Bytes", fmt.Sprint(res.stats.PeakBufferBytes))
	w.Header().Set("X-Flux-Tokens", fmt.Sprint(res.stats.Tokens))
	w.Header().Set("X-Flux-Batch-Size", fmt.Sprint(res.batchSize))
}

// enqueue adds req to the open batch. The first request of a batch arms
// the dispatch timer; a full batch dispatches at once.
func (s *server) enqueue(req *request) {
	s.mu.Lock()
	s.pending = append(s.pending, req)
	n := len(s.pending)
	if n >= s.cfg.maxBatch {
		batch := s.pending
		s.pending = nil
		s.batchGen++
		s.mu.Unlock()
		s.runBatch(batch)
		return
	}
	gen := s.batchGen
	s.mu.Unlock()
	if n == 1 {
		time.AfterFunc(s.cfg.window, func() { s.dispatch(gen) })
	}
}

// dispatch runs whatever has accumulated when the batch window closes.
// The generation check makes a timer armed for an already-dispatched
// batch a no-op instead of prematurely flushing the next batch's window.
func (s *server) dispatch(gen uint64) {
	s.mu.Lock()
	if gen != s.batchGen || len(s.pending) == 0 {
		s.mu.Unlock()
		return
	}
	batch := s.pending
	s.pending = nil
	s.batchGen++
	s.mu.Unlock()
	s.runBatch(batch)
}

// runBatch executes one shared scan of the target document for the whole
// batch and delivers each request its result.
func (s *server) runBatch(batch []*request) {
	s.nScans.Add(1)
	s.nQueries.Add(int64(len(batch)))
	if len(batch) > 1 {
		s.nShared.Add(int64(len(batch)))
	}
	for {
		peak := s.peakBatch.Load()
		if int64(len(batch)) <= peak || s.peakBatch.CompareAndSwap(peak, int64(len(batch))) {
			break
		}
	}

	fail := func(err error) {
		for _, req := range batch {
			req.done <- reqResult{batchSize: len(batch), err: err}
		}
	}
	f, err := os.Open(s.cfg.docPath)
	if err != nil {
		fail(err)
		return
	}
	defer f.Close()

	queries := make([]*flux.Query, len(batch))
	ws := make([]io.Writer, len(batch))
	for i, req := range batch {
		queries[i] = req.q
		ws[i] = req.w
	}
	results, err := flux.RunAll(queries, f, flux.Options{AttrsToSubelements: s.cfg.attrs}, ws...)
	if results == nil {
		fail(err)
		return
	}
	for i, req := range batch {
		req.done <- reqResult{
			stats:     results[i].Stats,
			batchSize: len(batch),
			err:       results[i].Err,
		}
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStats reports serving counters; a queries/scans ratio above 1 is
// the shared-scan amortization in action.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	queries, scans := s.nQueries.Load(), s.nScans.Load()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]int64{
		"queries":         queries,
		"scans":           scans,
		"queries_shared":  s.nShared.Load(),
		"peak_batch_size": s.peakBatch.Load(),
	})
}

// countingWriter tracks whether (and how much) output has been streamed,
// which decides error reporting: a clean 500 is only possible before the
// first byte.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

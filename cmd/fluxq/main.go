// Command fluxq evaluates an XQuery⁻ query over an XML document using the
// FluX streaming engine or one of the baseline engines.
//
// Usage:
//
//	fluxq -query q.xq -dtd schema.dtd [-in doc.xml] [-engine flux|naive|projection] [-attrs] [-stats] [-flux]
//
// The query and DTD may also be given inline with -q and -d. With no -in,
// the document is read from stdin; the result is written to stdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"flux"
)

func main() {
	var (
		queryFile = flag.String("query", "", "path to the XQuery⁻ query")
		queryText = flag.String("q", "", "inline query text")
		dtdFile   = flag.String("dtd", "", "path to the DTD")
		dtdText   = flag.String("d", "", "inline DTD text")
		inFile    = flag.String("in", "", "input XML document (default stdin)")
		engine    = flag.String("engine", "flux", "engine: flux, naive, or projection")
		fluxSyn   = flag.Bool("flux", false, "the query is written in FluX surface syntax, not XQuery⁻")
		attrs     = flag.Bool("attrs", false, "convert attributes to subelements (XSAX)")
		stats     = flag.Bool("stats", false, "print resource statistics to stderr")
	)
	flag.Parse()

	q, err := load(*queryFile, *queryText, "query (-query or -q)")
	if err != nil {
		fatal(err)
	}
	d, err := load(*dtdFile, *dtdText, "DTD (-dtd or -d)")
	if err != nil {
		fatal(err)
	}

	var prepared *flux.Query
	if *fluxSyn {
		prepared, err = flux.PrepareFlux(q, d)
	} else {
		prepared, err = flux.Prepare(q, d)
	}
	if err != nil {
		fatal(err)
	}

	opt := flux.Options{AttrsToSubelements: *attrs}
	switch *engine {
	case "flux":
	case "naive":
		opt.Engine = flux.Naive
	case "projection":
		opt.Engine = flux.Projection
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var in io.Reader = os.Stdin
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	// An interrupt stops the scan mid-stream via the context path
	// instead of killing the process with output half-flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := prepared.RunContext(ctx, in, os.Stdout, opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted after %d tokens", st.Tokens))
		}
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\nengine=%s peak_buffer_bytes=%d output_bytes=%d tokens=%d\n",
			*engine, st.PeakBufferBytes, st.OutputBytes, st.Tokens)
	}
}

func load(path, inline, what string) (string, error) {
	switch {
	case path != "" && inline != "":
		return "", fmt.Errorf("give the %s as a file or inline, not both", what)
	case path != "":
		b, err := os.ReadFile(path)
		return string(b), err
	case inline != "":
		return inline, nil
	default:
		return "", fmt.Errorf("missing %s", what)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxq:", err)
	os.Exit(1)
}

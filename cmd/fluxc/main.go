// Command fluxc shows how the FluX compiler schedules a query: the
// Figure 1 normal form, the Figure 2 FluX rewriting, and the Section 5
// execution plan with buffer trees.
//
// Usage:
//
//	fluxc -q '<r>{ for $b in /bib/book return {$b/title} }</r>' -dtd schema.dtd
package main

import (
	"flag"
	"fmt"
	"os"

	"flux"
)

func main() {
	var (
		queryFile = flag.String("query", "", "path to the XQuery⁻ query")
		queryText = flag.String("q", "", "inline query text")
		dtdFile   = flag.String("dtd", "", "path to the DTD")
		dtdText   = flag.String("d", "", "inline DTD text")
	)
	flag.Parse()

	q, err := load(*queryFile, *queryText, "query (-query or -q)")
	if err != nil {
		fatal(err)
	}
	d, err := load(*dtdFile, *dtdText, "DTD (-dtd or -d)")
	if err != nil {
		fatal(err)
	}
	prepared, err := flux.Prepare(q, d)
	if err != nil {
		fatal(err)
	}
	fmt.Println(prepared.Explain())
}

func load(path, inline, what string) (string, error) {
	switch {
	case path != "" && inline != "":
		return "", fmt.Errorf("give the %s as a file or inline, not both", what)
	case path != "":
		b, err := os.ReadFile(path)
		return string(b), err
	case inline != "":
		return inline, nil
	default:
		return "", fmt.Errorf("missing %s", what)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxc:", err)
	os.Exit(1)
}

// Command xmlgen generates XMark-like auction-site documents (the
// adapted, attribute-free schema of the paper's benchmark setup).
//
// Usage:
//
//	xmlgen -size 5MB -seed 1 -out doc.xml
//	xmlgen -dtd           # print the adapted XMark DTD and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flux/internal/xmark"
)

func main() {
	var (
		size     = flag.String("size", "1MB", "approximate document size, e.g. 512KB, 5MB")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (default stdout)")
		printDTD = flag.Bool("dtd", false, "print the adapted XMark DTD and exit")
	)
	flag.Parse()

	if *printDTD {
		fmt.Print(strings.TrimLeft(xmark.DTD, "\n"))
		return
	}

	bytes, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	n, err := xmark.Generate(w, xmark.GenOptions{
		Scale: xmark.ScaleForBytes(bytes),
		Seed:  *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "xmlgen: wrote %d bytes (requested ~%d)\n", n, bytes)
}

func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "B"):
		u = strings.TrimSuffix(u, "B")
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(u), 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(n * float64(mult)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlgen:", err)
	os.Exit(1)
}

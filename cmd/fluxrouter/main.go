// Command fluxrouter is the routing front of the sharded serving tier:
// one process exposing the same HTTP surface as fluxd over a corpus
// partitioned across N shard workers. Each query is proxied to a live
// owner of its document (the least-loaded replica when a document is
// replicated), responses stream straight through — stats trailers
// included — and /stats merges every worker's counters into a rollup
// with per-shard breakdowns.
//
// Two ways to get a topology:
//
//	fluxrouter -spawn 4 -docroot corpus/           # 4 embedded in-process shards
//	fluxrouter -shards http://a:8700,http://b:8700 # external fluxd -shard-id workers
//
// Embedded mode partitions the docroot by consistent hash of each
// document name; external mode discovers each worker's documents from
// its /docs listing at startup (a document served by several workers is
// treated as replicated). Either way, a -shard-map file overrides
// placements:
//
//	# doc: shard[,shard...]
//	bib:  0
//	logs: 1,3        # replicated: router load-balances and fails over
//
// Flags: [-addr :8710] [-spawn N -docroot dir | -shards list]
// [-shard-map file] [-health-interval 2s] [-admin]
// [-rebalance-interval 0] [-rebalance-threshold 8] [-window 2ms]
// [-max-batch 16] [-batch-buffer-budget 0] [-max-scans-per-doc 0]
// [-max-resident-buffer 0] (the serving knobs apply to embedded shards
// only).
//
// -rebalance-interval starts the autonomous control plane: every
// interval the router folds the per-(document, shard) query counts it
// observed into a decaying load signal and, when the hottest shard
// leads the coldest by more than -rebalance-threshold (with a cooldown
// between actions so placements cannot ping-pong), migrates the
// hottest document — or adds a replica of it when that document alone
// dominates its shard, so the burst fans out across copies. It needs
// -admin (the control plane rides the same worker install/retire/fetch
// machinery as /admin/migrate).
//
// Endpoints:
//
//	POST /query?doc=name   routed to an owning shard; body, status and
//	                       the X-Flux-* stats trailers stream through
//	                       unchanged, plus X-Flux-Shard naming the
//	                       worker that served it
//	GET  /docs             the union of the live shards' registered
//	                       documents
//	GET  /stats            merged statistics: {"rollup": ..., "per_shard":
//	                       {...}, "missing": [...]} — schema in README
//	GET  /healthz          the router's own liveness
//
// With -admin (the endpoints move documents and reveal deployment
// detail, so they are opt-in, exactly like fluxd's worker admin):
//
//	GET  /admin/shards     topology: current epoch, pending migrations,
//	                       and per shard id, address, liveness, assigned
//	                       documents, live load, last error
//	POST /admin/migrate?doc=X&from=A&to=B
//	                       live migration: copy the document to shard B,
//	                       cut routing over at the next topology epoch,
//	                       drain in-flight queries, retire the copy on
//	                       shard A — queries never fail and results stay
//	                       byte-identical throughout. External workers
//	                       must run fluxd -admin for the copy endpoints.
//	POST /admin/rebalance  one automatic rebalancing step: migrate the
//	                       busiest (document, shard) pair's document to
//	                       the least-loaded shard without a replica
//	GET  /admin/rebalancer the autonomous control plane's status:
//	                       configuration, tick/action/failure counters,
//	                       the last action and decision, cooldown state,
//	                       and the hottest entries of the decayed load
//	                       signal ({"enabled": false} without
//	                       -rebalance-interval)
//
// Shard failure is absorbed where possible: a worker that cannot be
// reached before its response starts is marked dead and the query
// retries on the next replica; mid-stream failures abort the client
// connection (the truncation must stay visible); /stats lists
// unreachable workers under "missing" instead of undercounting
// silently.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"flux"
	"flux/internal/shard"
)

func main() {
	var (
		addr      = flag.String("addr", ":8710", "listen address")
		spawn     = flag.Int("spawn", 0, "spawn this many embedded in-process shards over -docroot (0 = use -shards)")
		docroot   = flag.String("docroot", "", "directory of <name>.xml + <name>.dtd pairs to partition across embedded shards")
		shardsCSV = flag.String("shards", "", "comma-separated base URLs of external shard workers, in shard-id order")
		mapFile   = flag.String("shard-map", "", "optional placement override file (doc: shard[,shard...] per line)")
		healthInt = flag.Duration("health-interval", shard.DefaultHealthInterval, "background shard health-probe period")
		admin     = flag.Bool("admin", false, "expose the mutating /admin/* endpoints (migrate, rebalance, topology); they move documents between shards, so enable only on trusted networks")
		rebalInt  = flag.Duration("rebalance-interval", 0, "run the autonomous rebalancer with this tick period (0 = off; needs -admin)")
		rebalThr  = flag.Float64("rebalance-threshold", 8, "minimum per-window load imbalance between hottest and coldest shard before the rebalancer acts")

		window      = flag.Duration("window", 2*time.Millisecond, "embedded shards: batch window")
		maxBatch    = flag.Int("max-batch", 16, "embedded shards: maximum queries per shared scan")
		batchBudget = flag.Int64("batch-buffer-budget", 0, "embedded shards: cap on one scan's summed predicted peak buffer bytes (0 = unlimited)")
		maxScansDoc = flag.Int("max-scans-per-doc", 0, "embedded shards: concurrent scans per document (0 = unlimited)")
		maxResident = flag.Int64("max-resident-buffer", 0, "embedded shards: total predicted resident buffer bytes (0 = unlimited)")
		parGroups   = flag.Bool("parallel-groups", false, "embedded shards: evaluate each shared scan's event-routing groups on a worker pool instead of inline on the scan goroutine (no effect at GOMAXPROCS=1)")
	)
	flag.Parse()

	var overrides string
	if *mapFile != "" {
		data, err := os.ReadFile(*mapFile)
		if err != nil {
			fatal(fmt.Errorf("-shard-map: %w", err))
		}
		overrides = string(data)
	}

	var (
		m     *shard.Map
		addrs []string
		err   error
	)
	switch {
	case *spawn > 0 && *shardsCSV != "":
		fatal(fmt.Errorf("-spawn and -shards are mutually exclusive"))
	case *spawn > 0:
		if *docroot == "" {
			fatal(fmt.Errorf("-spawn needs -docroot"))
		}
		specs, serr := shard.ScanDocroot(*docroot)
		if serr != nil {
			fatal(fmt.Errorf("-docroot: %w", serr))
		}
		names := make([]string, len(specs))
		for i, sp := range specs {
			names[i] = sp.Name
		}
		if m, err = shard.NewMap(names, *spawn); err != nil {
			fatal(err)
		}
		if overrides != "" {
			if err := m.ApplyOverrides(overrides); err != nil {
				fatal(fmt.Errorf("-shard-map: %w", err))
			}
		}
		embedded, serr := shard.SpawnEmbedded(m, specs, shard.EmbeddedOptions{
			Executor: flux.ExecutorOptions{
				Window:            *window,
				MaxBatch:          *maxBatch,
				BatchBufferBudget: *batchBudget,
				ParallelGroups:    *parGroups,
			},
			Catalog: flux.CatalogOptions{
				MaxScansPerDoc:         *maxScansDoc,
				MaxResidentBufferBytes: *maxResident,
			},
			// Embedded workers inherit the router's admin stance: a
			// migration needs their install/retire/fetch endpoints.
			Admin: *admin,
		})
		if serr != nil {
			fatal(serr)
		}
		addrs = shard.Addrs(embedded)
		log.Printf("fluxrouter: spawned %d embedded shard(s) over %s", *spawn, *docroot)
	case *shardsCSV != "":
		for _, a := range strings.Split(*shardsCSV, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			fatal(fmt.Errorf("-shards lists no addresses"))
		}
		if m, err = discoverPlacement(addrs); err != nil {
			fatal(err)
		}
		if overrides != "" {
			if err := m.ApplyOverrides(overrides); err != nil {
				fatal(fmt.Errorf("-shard-map: %w", err))
			}
		}
	default:
		fatal(fmt.Errorf("no shards: give -spawn N -docroot dir, or -shards url,url,..."))
	}

	rt, err := shard.NewRouter(shard.RouterOptions{
		Map:            m,
		Shards:         addrs,
		HealthInterval: *healthInt,
		Admin:          *admin,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	adminNote := "admin disabled"
	if *admin {
		adminNote = "admin enabled (migrate/rebalance live)"
	}
	if *rebalInt > 0 {
		if !*admin {
			fatal(fmt.Errorf("-rebalance-interval needs -admin: the control plane rides the worker install/retire/fetch endpoints"))
		}
		rb, err := shard.NewRebalancer(rt, shard.RebalancerOptions{
			Interval:  *rebalInt,
			Threshold: *rebalThr,
		})
		if err != nil {
			fatal(err)
		}
		defer rb.Close()
		adminNote += fmt.Sprintf(", rebalancer every %v (threshold %v)", *rebalInt, *rebalThr)
	} else if *rebalInt < 0 {
		fatal(fmt.Errorf("-rebalance-interval must be non-negative, got %v", *rebalInt))
	}
	log.Printf("fluxrouter: routing %d document(s) across %d shard(s) on %s, epoch %d, %s",
		len(rt.Topology().View().Docs()), rt.Topology().View().Shards(), *addr, rt.Topology().Epoch(), adminNote)
	if err := http.ListenAndServe(*addr, rt); err != nil {
		fatal(err)
	}
}

// discoverPlacement asks each external worker what it serves (/docs)
// and builds the placement from the answers: a document listed by
// several workers is replicated across them. A worker that cannot be
// reached contributes nothing — start the workers before the router,
// or pin placements with -shard-map; /admin/shards shows who answered.
func discoverPlacement(addrs []string) (*shard.Map, error) {
	owners := make(map[string][]int)
	reached := 0
	for id, a := range addrs {
		// One timeout per worker: a single black-holed address must not
		// consume the budget of every worker probed after it.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		c := shard.NewClient(a, nil)
		infos, err := c.Docs(ctx)
		cancel()
		if err != nil {
			log.Printf("fluxrouter: shard %d at %s unreachable at startup: %v", id, a, err)
			continue
		}
		reached++
		for _, info := range infos {
			owners[info.Name] = append(owners[info.Name], id)
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("no shard answered /docs at startup; is the tier up?")
	}
	if len(owners) == 0 {
		return nil, fmt.Errorf("the reachable shards serve no documents")
	}
	return shard.NewMapFromPlacement(owners, len(addrs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluxrouter:", err)
	os.Exit(1)
}

// Command benchdiff is the perf-trajectory gate: it compares a fresh
// benchmark snapshot against a checked-in baseline and fails (exit 1)
// on regressions beyond the threshold — shared-scan elapsed time
// (calibration-scaled across machines) or any row's peak buffer bytes.
// Each regression is reported with the exact row (query/size/mode), its
// baseline and observed values, and the allowed maximum.
//
// When the two snapshots come from visibly different machines — CPU
// counts differ, or the calibration loop ran more than a third apart —
// it prints a loud warning: calibration scaling corrects elapsed
// comparisons to first order, but cross-machine diffs are inherently
// softer evidence than same-machine ones.
//
// It also enforces eight invariants on the fresh snapshot: on every
// (query, size) cell measured in both a flux row and a baseline row,
// flux must be the fastest mode — the paper's headline claim; wherever
// both fanout-all and fanout-selective rows exist, the selective row
// must have delivered strictly fewer events; wherever both
// fanout-selective and fanout-automaton rows exist (the disjoint
// "fanout" set and the shared-prefix "fanout-wide" set alike), the
// merged-automaton routing must have delivered no more events than the
// per-group selective walk with byte-identical output — the shared
// dispatch structure must not change routing; wherever both
// fanout-automaton and fanout-parallel rows exist, the worker-pool
// pipeline must have produced identical output bytes and token counts,
// and — on machines with at least 4 CPUs — strictly less wall clock
// than the sequential automaton scan; wherever both
// served-single and served-sharded rows exist, the sharded tier must
// have produced identical output bytes and delivered identical tokens —
// sharding must not change results; wherever both migrate-static
// and migrate-live rows exist, the query stream that raced a live
// document migration must match the static topology's output and
// tokens exactly — migration must be invisible to queries; and
// wherever both stream-static and stream-replay rows exist, the
// standing subscriptions fed by the chunked replay must have produced
// exactly the static scan's output bytes — live ingestion must not
// change results either; and wherever both skewed-single and
// skewed-converge rows exist, the 2-shard tier whose hot-document
// replica the autonomous rebalancer placed must have served the burst
// in strictly less wall clock than the single capacity-capped node —
// convergence must actually pay for itself.
//
// Usage:
//
//	benchdiff -old BENCH_2.json -new BENCH_NEW.json [-pct 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"flux/internal/bench"
)

func main() {
	var (
		oldPath = flag.String("old", "", "baseline snapshot (the last checked-in BENCH_<n>.json)")
		newPath = flag.String("new", "", "fresh snapshot to check")
		pct     = flag.Float64("pct", 20, "maximum allowed regression in percent")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fatal(fmt.Errorf("both -old and -new are required"))
	}
	if *pct < 0 {
		fatal(fmt.Errorf("-pct must be non-negative, got %v", *pct))
	}
	oldSnap, err := bench.ReadSnapshot(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := bench.ReadSnapshot(*newPath)
	if err != nil {
		fatal(err)
	}
	res := bench.Diff(oldSnap, newSnap, *pct)
	if res.Compared == 0 {
		fatal(fmt.Errorf("no comparable rows between %s and %s", *oldPath, *newPath))
	}
	fmt.Printf("benchdiff: %d rows compared (%s -> %s), machine scale %.2f, threshold %.0f%%\n",
		res.Compared, *oldPath, *newPath, res.Scale, *pct)
	warnMachineDrift(oldSnap, newSnap)
	failed := false
	if err := bench.CheckFluxFastest(newSnap); err != nil {
		fmt.Println("benchdiff: FLUX-FASTEST INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckFanout(newSnap); err != nil {
		fmt.Println("benchdiff: FANOUT INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckAutomaton(newSnap); err != nil {
		fmt.Println("benchdiff: AUTOMATON INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckParallelEquivalence(newSnap); err != nil {
		fmt.Println("benchdiff: PARALLEL-EQUIVALENCE INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckSharded(newSnap); err != nil {
		fmt.Println("benchdiff: SHARDED INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckMigrate(newSnap); err != nil {
		fmt.Println("benchdiff: MIGRATE INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckStreamEquivalence(newSnap); err != nil {
		fmt.Println("benchdiff: STREAM INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckSkewedConverge(newSnap); err != nil {
		fmt.Println("benchdiff: SKEWED-CONVERGE INVARIANT VIOLATED:", err)
		failed = true
	}
	for _, r := range res.Regressions {
		fmt.Println("benchdiff: REGRESSION", r)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// calibDriftPct is how far apart (in percent) two snapshots'
// calibration times may sit before the comparison is flagged as
// cross-machine: same-machine runs land within a few percent, while
// different hosts (or a throttled runner) diverge by tens.
const calibDriftPct = 33

// warnMachineDrift prints a loud warning when the two snapshots were
// visibly produced by different machines — a different CPU count, or
// calibration times more than calibDriftPct apart. Elapsed comparisons
// are calibration-scaled either way; the warning tells the reader how
// much weight the timing rows deserve.
func warnMachineDrift(oldSnap, newSnap *bench.Snapshot) {
	var reasons []string
	if oldSnap.NumCPU != newSnap.NumCPU && oldSnap.NumCPU > 0 && newSnap.NumCPU > 0 {
		reasons = append(reasons,
			fmt.Sprintf("num_cpu %d -> %d", oldSnap.NumCPU, newSnap.NumCPU))
	}
	if oldSnap.CalibNS > 0 && newSnap.CalibNS > 0 {
		hi, lo := oldSnap.CalibNS, newSnap.CalibNS
		if hi < lo {
			hi, lo = lo, hi
		}
		if drift := 100 * float64(hi-lo) / float64(lo); drift > calibDriftPct {
			reasons = append(reasons,
				fmt.Sprintf("calib_ns %d -> %d (%.0f%% apart)", oldSnap.CalibNS, newSnap.CalibNS, drift))
		}
	}
	if len(reasons) == 0 {
		return
	}
	fmt.Println("benchdiff: ************************************************************")
	fmt.Println("benchdiff: WARNING: snapshots come from different machines:")
	for _, r := range reasons {
		fmt.Println("benchdiff: WARNING:   " + r)
	}
	fmt.Println("benchdiff: WARNING: elapsed comparisons are calibration-scaled, but")
	fmt.Println("benchdiff: WARNING: cross-machine timing diffs are soft evidence; regen")
	fmt.Println("benchdiff: WARNING: the baseline on this machine before trusting them.")
	fmt.Println("benchdiff: ************************************************************")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// Command benchdiff is the perf-trajectory gate: it compares a fresh
// benchmark snapshot against a checked-in baseline and fails (exit 1)
// on regressions beyond the threshold — shared-scan elapsed time
// (calibration-scaled across machines) or any row's peak buffer bytes.
// Each regression is reported with the exact row (query/size/mode), its
// baseline and observed values, and the allowed maximum.
//
// It also enforces seven invariants on the fresh snapshot: on every
// (query, size) cell measured in both a flux row and a baseline row,
// flux must be the fastest mode — the paper's headline claim; wherever
// both fanout-all and fanout-selective rows exist, the selective row
// must have delivered strictly fewer events; wherever both
// fanout-selective and fanout-automaton rows exist (the disjoint
// "fanout" set and the shared-prefix "fanout-wide" set alike), the
// merged-automaton routing must have delivered no more events than the
// per-group selective walk with byte-identical output — the shared
// dispatch structure must not change routing; wherever both
// served-single and served-sharded rows exist, the sharded tier must
// have produced identical output bytes and delivered identical tokens —
// sharding must not change results; wherever both migrate-static
// and migrate-live rows exist, the query stream that raced a live
// document migration must match the static topology's output and
// tokens exactly — migration must be invisible to queries; and
// wherever both stream-static and stream-replay rows exist, the
// standing subscriptions fed by the chunked replay must have produced
// exactly the static scan's output bytes — live ingestion must not
// change results either; and wherever both skewed-single and
// skewed-converge rows exist, the 2-shard tier whose hot-document
// replica the autonomous rebalancer placed must have served the burst
// in strictly less wall clock than the single capacity-capped node —
// convergence must actually pay for itself.
//
// Usage:
//
//	benchdiff -old BENCH_2.json -new BENCH_NEW.json [-pct 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"flux/internal/bench"
)

func main() {
	var (
		oldPath = flag.String("old", "", "baseline snapshot (the last checked-in BENCH_<n>.json)")
		newPath = flag.String("new", "", "fresh snapshot to check")
		pct     = flag.Float64("pct", 20, "maximum allowed regression in percent")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fatal(fmt.Errorf("both -old and -new are required"))
	}
	if *pct < 0 {
		fatal(fmt.Errorf("-pct must be non-negative, got %v", *pct))
	}
	oldSnap, err := bench.ReadSnapshot(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := bench.ReadSnapshot(*newPath)
	if err != nil {
		fatal(err)
	}
	res := bench.Diff(oldSnap, newSnap, *pct)
	if res.Compared == 0 {
		fatal(fmt.Errorf("no comparable rows between %s and %s", *oldPath, *newPath))
	}
	fmt.Printf("benchdiff: %d rows compared (%s -> %s), machine scale %.2f, threshold %.0f%%\n",
		res.Compared, *oldPath, *newPath, res.Scale, *pct)
	failed := false
	if err := bench.CheckFluxFastest(newSnap); err != nil {
		fmt.Println("benchdiff: FLUX-FASTEST INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckFanout(newSnap); err != nil {
		fmt.Println("benchdiff: FANOUT INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckAutomaton(newSnap); err != nil {
		fmt.Println("benchdiff: AUTOMATON INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckSharded(newSnap); err != nil {
		fmt.Println("benchdiff: SHARDED INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckMigrate(newSnap); err != nil {
		fmt.Println("benchdiff: MIGRATE INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckStreamEquivalence(newSnap); err != nil {
		fmt.Println("benchdiff: STREAM INVARIANT VIOLATED:", err)
		failed = true
	}
	if err := bench.CheckSkewedConverge(newSnap); err != nil {
		fmt.Println("benchdiff: SKEWED-CONVERGE INVARIANT VIOLATED:", err)
		failed = true
	}
	for _, r := range res.Regressions {
		fmt.Println("benchdiff: REGRESSION", r)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

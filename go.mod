module flux

go 1.24

package flux

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const catDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title,year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const catDoc = `<bib>` +
	`<book><title>FluX</title><year>2004</year></book>` +
	`<book><title>XMark</title><year>2002</year></book>` +
	`</bib>`

const catDoc2 = `<bib>` +
	`<book><title>Galax</title><year>2004</year></book>` +
	`</bib>`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCatalogAddLookupRemove(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	docPath := writeTemp(t, "bib.xml", catDoc)

	if err := cat.Add("bib", docPath, catDTD); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("bib", docPath, catDTD); !errors.Is(err, ErrDocExists) {
		t.Fatalf("duplicate Add: err = %v, want ErrDocExists", err)
	}
	if err := cat.Add("ghost", filepath.Join(t.TempDir(), "missing.xml"), catDTD); err == nil {
		t.Fatal("Add with missing file must fail")
	}
	if got := cat.Docs(); len(got) != 1 || got[0] != "bib" {
		t.Fatalf("Docs() = %v, want [bib]", got)
	}
	info, err := cat.Info("bib")
	if err != nil || info.Path != docPath || info.Swaps != 0 {
		t.Fatalf("Info = %+v, %v", info, err)
	}
	if err := cat.Remove("bib"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Remove("bib"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("double Remove: err = %v, want ErrDocNotFound", err)
	}
	if n := len(cat.schemas); n != 0 {
		t.Fatalf("schemas after removing the last referencing doc = %d, want 0", n)
	}
	if _, err := cat.Prepare("bib", "{ for $b in /bib/book return {$b/title} }"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("Prepare on removed doc: err = %v, want ErrDocNotFound", err)
	}
}

// TestCatalogLazySchema: a bad DTD is accepted at Add time (lazy
// parsing) and surfaces on first Prepare — once, cached, for every
// subsequent use.
func TestCatalogLazySchema(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	docPath := writeTemp(t, "bib.xml", catDoc)
	if err := cat.Add("bad", docPath, "<!ELEMENT "); err != nil {
		t.Fatalf("Add must not parse the DTD eagerly: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cat.Prepare("bad", "{ for $b in /bib/book return {$b} }"); err == nil {
			t.Fatal("Prepare against a malformed DTD must fail")
		}
	}
}

// TestCatalogQueryCache: repeated Prepare hits the cache and returns the
// identical compiled query; distinct texts miss; the LRU bound evicts.
func TestCatalogQueryCache(t *testing.T) {
	cat := NewCatalog(CatalogOptions{QueryCacheCap: 2})
	docPath := writeTemp(t, "bib.xml", catDoc)
	if err := cat.Add("bib", docPath, catDTD); err != nil {
		t.Fatal(err)
	}

	const q1 = `<out> { for $b in /bib/book return {$b/title} } </out>`
	first, err := cat.Prepare("bib", q1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cat.Prepare("bib", q1)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("repeated Prepare must return the cached compiled query")
	}
	st := cat.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("after one repeat: stats = %+v", st)
	}

	// Two more distinct queries overflow cap=2 and evict the LRU entry.
	for _, q := range []string{
		`<out> { for $b in /bib/book return {$b/year} } </out>`,
		`<out> { for $b in /bib/book return {$b} } </out>`,
	} {
		if _, err := cat.Prepare("bib", q); err != nil {
			t.Fatal(err)
		}
	}
	st = cat.CacheStats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("after overflow: stats = %+v", st)
	}

	// The evicted query (q1, least recently used) recompiles: a miss.
	misses := st.Misses
	if _, err := cat.Prepare("bib", q1); err != nil {
		t.Fatal(err)
	}
	if st = cat.CacheStats(); st.Misses != misses+1 {
		t.Fatalf("evicted query must miss: stats = %+v", st)
	}

	// The cached query still runs correctly.
	out, _, err := again.RunString(catDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<title>FluX</title>") {
		t.Fatalf("cached query output = %q", out)
	}
}

// TestCatalogSharedSchema: documents registered with identical DTD text
// share one schema, so compiled queries are shared across them too.
func TestCatalogSharedSchema(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	if err := cat.Add("a", writeTemp(t, "a.xml", catDoc), catDTD); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("b", writeTemp(t, "b.xml", catDoc2), catDTD); err != nil {
		t.Fatal(err)
	}
	const q = `<out> { for $b in /bib/book return {$b/title} } </out>`
	qa, err := cat.Prepare("a", q)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := cat.Prepare("b", q)
	if err != nil {
		t.Fatal(err)
	}
	if qa != qb {
		t.Fatal("documents with identical DTD text must share compiled queries")
	}
	if st := cat.CacheStats(); st.Hits != 1 {
		t.Fatalf("cross-document Prepare must hit: %+v", st)
	}
}

// TestCatalogSwap: Swap repoints the name atomically; a reader opened
// before the swap still reads the old file; a bad path leaves the old
// binding untouched.
func TestCatalogSwap(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	oldPath := writeTemp(t, "old.xml", catDoc)
	newPath := writeTemp(t, "new.xml", catDoc2)
	if err := cat.Add("bib", oldPath, catDTD); err != nil {
		t.Fatal(err)
	}

	before, err := cat.Open("bib")
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()

	if err := cat.Swap("bib", filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("Swap to a missing file must fail")
	}
	if info, _ := cat.Info("bib"); info.Path != oldPath || info.Swaps != 0 {
		t.Fatalf("failed swap must not change the binding: %+v", info)
	}
	if err := cat.Swap("bib", newPath); err != nil {
		t.Fatal(err)
	}
	if info, _ := cat.Info("bib"); info.Path != newPath || info.Swaps != 1 {
		t.Fatalf("after swap: %+v", info)
	}

	// The pre-swap handle still serves the old content.
	oldContent, err := io.ReadAll(before)
	if err != nil || string(oldContent) != catDoc {
		t.Fatalf("pre-swap reader must see the old file: %q, %v", oldContent, err)
	}
	after, err := cat.Open("bib")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	newContent, err := io.ReadAll(after)
	if err != nil || string(newContent) != catDoc2 {
		t.Fatalf("post-swap reader must see the new file: %q, %v", newContent, err)
	}

	if err := cat.Swap("nope", newPath); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("Swap of unknown doc: err = %v, want ErrDocNotFound", err)
	}
}

package flux

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const catDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title,year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

const catDoc = `<bib>` +
	`<book><title>FluX</title><year>2004</year></book>` +
	`<book><title>XMark</title><year>2002</year></book>` +
	`</bib>`

const catDoc2 = `<bib>` +
	`<book><title>Galax</title><year>2004</year></book>` +
	`</bib>`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCatalogAddLookupRemove(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	docPath := writeTemp(t, "bib.xml", catDoc)

	if err := cat.Add("bib", docPath, catDTD); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("bib", docPath, catDTD); !errors.Is(err, ErrDocExists) {
		t.Fatalf("duplicate Add: err = %v, want ErrDocExists", err)
	}
	if err := cat.Add("ghost", filepath.Join(t.TempDir(), "missing.xml"), catDTD); err == nil {
		t.Fatal("Add with missing file must fail")
	}
	if got := cat.Docs(); len(got) != 1 || got[0] != "bib" {
		t.Fatalf("Docs() = %v, want [bib]", got)
	}
	info, err := cat.Info("bib")
	if err != nil || info.Path != docPath || info.Swaps != 0 {
		t.Fatalf("Info = %+v, %v", info, err)
	}
	if err := cat.Remove("bib"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Remove("bib"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("double Remove: err = %v, want ErrDocNotFound", err)
	}
	if n := len(cat.schemas); n != 0 {
		t.Fatalf("schemas after removing the last referencing doc = %d, want 0", n)
	}
	if _, err := cat.Prepare("bib", "{ for $b in /bib/book return {$b/title} }"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("Prepare on removed doc: err = %v, want ErrDocNotFound", err)
	}
}

// TestCatalogLazySchema: a bad DTD is accepted at Add time (lazy
// parsing) and surfaces on first Prepare — once, cached, for every
// subsequent use.
func TestCatalogLazySchema(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	docPath := writeTemp(t, "bib.xml", catDoc)
	if err := cat.Add("bad", docPath, "<!ELEMENT "); err != nil {
		t.Fatalf("Add must not parse the DTD eagerly: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cat.Prepare("bad", "{ for $b in /bib/book return {$b} }"); err == nil {
			t.Fatal("Prepare against a malformed DTD must fail")
		}
	}
}

// TestCatalogQueryCache: repeated Prepare hits the cache and returns the
// identical compiled query; distinct texts miss; the LRU bound evicts.
func TestCatalogQueryCache(t *testing.T) {
	cat := NewCatalog(CatalogOptions{QueryCacheCap: 2})
	docPath := writeTemp(t, "bib.xml", catDoc)
	if err := cat.Add("bib", docPath, catDTD); err != nil {
		t.Fatal(err)
	}

	const q1 = `<out> { for $b in /bib/book return {$b/title} } </out>`
	first, err := cat.Prepare("bib", q1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cat.Prepare("bib", q1)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("repeated Prepare must return the cached compiled query")
	}
	st := cat.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("after one repeat: stats = %+v", st)
	}

	// Two more distinct queries overflow cap=2 and evict the LRU entry.
	for _, q := range []string{
		`<out> { for $b in /bib/book return {$b/year} } </out>`,
		`<out> { for $b in /bib/book return {$b} } </out>`,
	} {
		if _, err := cat.Prepare("bib", q); err != nil {
			t.Fatal(err)
		}
	}
	st = cat.CacheStats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("after overflow: stats = %+v", st)
	}

	// The evicted query (q1, least recently used) recompiles: a miss.
	misses := st.Misses
	if _, err := cat.Prepare("bib", q1); err != nil {
		t.Fatal(err)
	}
	if st = cat.CacheStats(); st.Misses != misses+1 {
		t.Fatalf("evicted query must miss: stats = %+v", st)
	}

	// The cached query still runs correctly.
	out, _, err := again.RunString(catDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<title>FluX</title>") {
		t.Fatalf("cached query output = %q", out)
	}
}

// TestCatalogSharedSchema: documents registered with identical DTD text
// share one schema, so compiled queries are shared across them too.
func TestCatalogSharedSchema(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	if err := cat.Add("a", writeTemp(t, "a.xml", catDoc), catDTD); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("b", writeTemp(t, "b.xml", catDoc2), catDTD); err != nil {
		t.Fatal(err)
	}
	const q = `<out> { for $b in /bib/book return {$b/title} } </out>`
	qa, err := cat.Prepare("a", q)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := cat.Prepare("b", q)
	if err != nil {
		t.Fatal(err)
	}
	if qa != qb {
		t.Fatal("documents with identical DTD text must share compiled queries")
	}
	if st := cat.CacheStats(); st.Hits != 1 {
		t.Fatalf("cross-document Prepare must hit: %+v", st)
	}
}

// TestCatalogSwap: Swap repoints the name atomically; a reader opened
// before the swap still reads the old file; a bad path leaves the old
// binding untouched.
func TestCatalogSwap(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	oldPath := writeTemp(t, "old.xml", catDoc)
	newPath := writeTemp(t, "new.xml", catDoc2)
	if err := cat.Add("bib", oldPath, catDTD); err != nil {
		t.Fatal(err)
	}

	before, err := cat.Open("bib")
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()

	if err := cat.Swap("bib", filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("Swap to a missing file must fail")
	}
	if info, _ := cat.Info("bib"); info.Path != oldPath || info.Swaps != 0 {
		t.Fatalf("failed swap must not change the binding: %+v", info)
	}
	if err := cat.Swap("bib", newPath); err != nil {
		t.Fatal(err)
	}
	if info, _ := cat.Info("bib"); info.Path != newPath || info.Swaps != 1 {
		t.Fatalf("after swap: %+v", info)
	}

	// The pre-swap handle still serves the old content.
	oldContent, err := io.ReadAll(before)
	if err != nil || string(oldContent) != catDoc {
		t.Fatalf("pre-swap reader must see the old file: %q, %v", oldContent, err)
	}
	after, err := cat.Open("bib")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	newContent, err := io.ReadAll(after)
	if err != nil || string(newContent) != catDoc2 {
		t.Fatalf("post-swap reader must see the new file: %q, %v", newContent, err)
	}

	if err := cat.Swap("nope", newPath); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("Swap of unknown doc: err = %v, want ErrDocNotFound", err)
	}
}

// TestAdmitScanByteBudget: the resident-bytes bound queues a scan that
// would overflow it and admits it once capacity frees; an oversized
// scan is admitted only when nothing else is resident.
func TestAdmitScanByteBudget(t *testing.T) {
	cat := NewCatalog(CatalogOptions{MaxResidentBufferBytes: 100})

	relA := cat.AdmitScan("a", 60)
	admitted := make(chan func(), 1)
	go func() { admitted <- cat.AdmitScan("b", 60) }()

	deadline := time.Now().Add(5 * time.Second)
	for cat.AdmissionStats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second scan never queued")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-admitted:
		t.Fatal("second scan admitted while over the byte budget")
	default:
	}

	relA()
	relB := <-admitted
	st := cat.AdmissionStats()
	if st.ActiveScans != 1 || st.ResidentBufferBytes != 60 || st.Queued != 1 {
		t.Fatalf("admission stats = %+v, want one active 60-byte scan after one queued wait", st)
	}
	relB()
	relB() // double release must be safe (sync.Once)

	// Oversized: predicted > the whole budget still admits when idle.
	relBig := cat.AdmitScan("a", 1000)
	if st := cat.AdmissionStats(); st.ActiveScans != 1 || st.ResidentBufferBytes != 1000 {
		t.Fatalf("oversized scan not admitted when idle: %+v", st)
	}
	relBig()
	if st := cat.AdmissionStats(); st.ActiveScans != 0 || st.ResidentBufferBytes != 0 {
		t.Fatalf("release did not drain: %+v", st)
	}
}

// TestAdmitScanUnlimited: with no bounds configured, AdmitScan never
// blocks and only maintains counters.
func TestAdmitScanUnlimited(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	var releases []func()
	for i := 0; i < 8; i++ {
		releases = append(releases, cat.AdmitScan("doc", 1<<40))
	}
	st := cat.AdmissionStats()
	if st.ActiveScans != 8 || st.Queued != 0 {
		t.Fatalf("admission stats = %+v, want 8 active, none queued", st)
	}
	for _, r := range releases {
		r()
	}
	if st := cat.AdmissionStats(); st.ActiveScans != 0 || st.Admitted != 8 {
		t.Fatalf("admission stats = %+v, want drained with 8 admitted", st)
	}
}

// TestAdmitScanNoBargeFIFO: a scan predicting more than the whole byte
// budget cannot be starved — byte-consuming newcomers queue behind it
// instead of barging, so capacity drains to the oversized waiter; a
// zero-cost scan for another document still passes freely.
func TestAdmitScanNoBargeFIFO(t *testing.T) {
	cat := NewCatalog(CatalogOptions{MaxResidentBufferBytes: 100})

	relA := cat.AdmitScan("a", 60)

	order := make(chan string, 2)
	go func() {
		rel := cat.AdmitScan("big", 1000) // oversized: needs bytes == 0
		order <- "big"
		rel()
	}()
	waitFor := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for cat.AdmissionStats().Waiting != n {
			if time.Now().After(deadline) {
				t.Fatalf("waiting never reached %d: %+v", n, cat.AdmissionStats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(1)

	// A byte-consuming newcomer must queue behind the oversized waiter
	// even though it would fit right now (60+30 <= 100): no barging.
	go func() {
		rel := cat.AdmitScan("c", 30)
		order <- "c"
		rel()
	}()
	waitFor(2)

	// A zero-cost scan for another document does not conflict and is
	// admitted immediately.
	relZero := cat.AdmitScan("d", 0)
	relZero()

	// Releasing the first scan drains the queue in FIFO order: the
	// oversized scan runs (alone), then the 30-byte scan.
	relA()
	if got := <-order; got != "big" {
		t.Fatalf("first admitted after release = %q, want the oversized waiter", got)
	}
	if got := <-order; got != "c" {
		t.Fatalf("second admitted = %q, want the queued 30-byte scan", got)
	}
}

// TestAdmitScanZeroCostNeverByteBlocked: a fully streaming scan
// (predicted 0) adds nothing to the resident total, so the byte budget
// never queues it — even while an oversized scan holds the whole budget.
func TestAdmitScanZeroCostNeverByteBlocked(t *testing.T) {
	cat := NewCatalog(CatalogOptions{MaxResidentBufferBytes: 100})
	relBig := cat.AdmitScan("big", 1000) // oversized, admitted while idle
	relZero := cat.AdmitScan("other", 0) // must not wait behind it
	st := cat.AdmissionStats()
	if st.ActiveScans != 2 || st.Queued != 0 {
		t.Fatalf("admission stats = %+v, want both active with none queued", st)
	}
	relZero()
	relBig()
}

// TestAdmitScanZeroCostSameDocPassesByteWaiter: with only a byte budget
// configured, a zero-cost scan is admitted immediately even when an
// older byte-blocked waiter for the same document is queued — document
// slots are unbounded, so passing steals nothing.
func TestAdmitScanZeroCostSameDocPassesByteWaiter(t *testing.T) {
	cat := NewCatalog(CatalogOptions{MaxResidentBufferBytes: 100})
	relA := cat.AdmitScan("a", 60)
	blocked := make(chan func(), 1)
	go func() { blocked <- cat.AdmitScan("a", 60) }()
	deadline := time.Now().Add(5 * time.Second)
	for cat.AdmissionStats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("byte-blocked scan never queued")
		}
		time.Sleep(time.Millisecond)
	}
	relZero := cat.AdmitScan("a", 0) // must not queue behind the byte waiter
	if st := cat.AdmissionStats(); st.ActiveScans != 2 || st.Waiting != 1 {
		t.Fatalf("admission stats = %+v, want zero-cost admitted past the byte waiter", st)
	}
	relZero()
	relA()
	rel := <-blocked
	rel()
}

// TestCalibrationEWMA: ObservePeak seeds the correction factor from the
// first sample, then moves it as an EWMA, clamped against absurd
// ratios.
func TestCalibrationEWMA(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	if st := cat.CalibrationStats(); st.Factor != 1 || st.Samples != 0 {
		t.Fatalf("fresh calibration = %+v, want neutral", st)
	}
	// Non-positive predictions say nothing about the model's scale.
	cat.ObservePeak("", 0, 500)
	cat.ObservePeak("", -1, 500)
	if st := cat.CalibrationStats(); st.Samples != 0 {
		t.Fatalf("zero-predicted pairs must be ignored, got %+v", st)
	}

	cat.ObservePeak("", 1000, 2000) // first sample seeds directly
	if st := cat.CalibrationStats(); st.Factor != 2 || st.Samples != 1 {
		t.Fatalf("after first sample: %+v, want factor 2", st)
	}
	cat.ObservePeak("", 1000, 1000) // EWMA: 0.2*1 + 0.8*2 = 1.8
	if st := cat.CalibrationStats(); st.Samples != 2 || st.Factor < 1.79 || st.Factor > 1.81 {
		t.Fatalf("after second sample: %+v, want factor 1.8", st)
	}

	// A degenerate observation is clamped, not trusted.
	worst := NewCatalog(CatalogOptions{})
	worst.ObservePeak("", 1, 1<<40)
	if st := worst.CalibrationStats(); st.Factor != 8 {
		t.Fatalf("absurd ratio: factor %v, want clamp at 8", st.Factor)
	}
	best := NewCatalog(CatalogOptions{})
	best.ObservePeak("", 1<<40, 0)
	if st := best.CalibrationStats(); st.Factor != 0.125 {
		t.Fatalf("zero observation: factor %v, want clamp at 0.125", st.Factor)
	}
}

// TestAdmissionUsesCalibration: AdmitScan charges the calibrated
// prediction — a model observed to run 2x hot charges twice the bytes,
// visible in ResidentBufferBytes, and a model observed to run cold
// frees budget for more concurrency.
func TestAdmissionUsesCalibration(t *testing.T) {
	cat := NewCatalog(CatalogOptions{MaxResidentBufferBytes: 10000})
	rel := cat.AdmitScan("doc", 4000)
	if got := cat.AdmissionStats().ResidentBufferBytes; got != 4000 {
		t.Fatalf("uncalibrated charge = %d, want the raw prediction 4000", got)
	}
	rel()

	cat.ObservePeak("", 1000, 2000) // factor 2
	rel = cat.AdmitScan("doc", 4000)
	if got := cat.AdmissionStats().ResidentBufferBytes; got != 8000 {
		t.Fatalf("calibrated charge = %d, want 8000 (factor 2)", got)
	}
	// The same charge is released, not the raw prediction.
	rel()
	if got := cat.AdmissionStats().ResidentBufferBytes; got != 0 {
		t.Fatalf("resident after release = %d, want 0", got)
	}

	// Zero predictions stay exempt from the byte budget regardless of
	// the factor.
	rel = cat.AdmitScan("doc", 0)
	defer rel()
	if got := cat.AdmissionStats().ResidentBufferBytes; got != 0 {
		t.Fatalf("zero prediction charged %d bytes", got)
	}
}

// TestExecutorFeedsCalibration: a successful execution through the
// Executor calibrates its catalog automatically when the plan predicts
// buffering.
func TestExecutorFeedsCalibration(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	docPath := writeTemp(t, "bib.xml", catDoc)
	if err := cat.Add("bib", docPath, catDTD); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(cat, ExecutorOptions{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// A buffering query: predicted peak > 0, so the pair is sampled.
	if _, err := ex.ExecuteContext(context.Background(),
		"bib", `<out> { for $b in /bib/book where $b/year = '2004' return {$b} } </out>`, io.Discard); err != nil {
		t.Fatal(err)
	}
	st := cat.CalibrationStats()
	if st.Samples != 1 {
		t.Fatalf("calibration = %+v, want one sample from the buffering query", st)
	}
	if st.Factor <= 0 || st.Factor > 8 {
		t.Fatalf("factor %v out of clamp range", st.Factor)
	}
	// The sample lands in the per-signature table too, keyed by the
	// executed plan's signature.
	if len(st.Signatures) != 1 {
		t.Fatalf("signatures = %+v, want exactly the executed plan's", st.Signatures)
	}
	for _, sc := range st.Signatures {
		if sc.Samples != 1 || sc.Factor != st.Factor {
			t.Fatalf("per-signature entry = %+v, want the same single sample", sc)
		}
	}
}

// TestPerSignatureCalibration: observations are keyed by signature —
// each signature's factor tracks its own workload, admission charges
// each query at its signature's factor, and signatures without
// observations fall back to the global average.
func TestPerSignatureCalibration(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	cat.ObservePeak("hot", 1000, 2000) // runs 2x hot
	cat.ObservePeak("cold", 1000, 500) // runs 2x cold
	st := cat.CalibrationStats()
	if st.Samples != 2 {
		t.Fatalf("global samples = %d, want 2 (every observation feeds the fallback)", st.Samples)
	}
	// Global EWMA: seeded at 2, then 0.2*0.5 + 0.8*2 = 1.7.
	if st.Factor < 1.69 || st.Factor > 1.71 {
		t.Fatalf("global factor = %v, want 1.7", st.Factor)
	}
	if h := st.Signatures["hot"]; h.Factor != 2 || h.Samples != 1 {
		t.Fatalf("hot = %+v, want factor 2 from its own sample", h)
	}
	if c := st.Signatures["cold"]; c.Factor != 0.5 || c.Samples != 1 {
		t.Fatalf("cold = %+v, want factor 0.5 from its own sample", c)
	}

	// One badly-predicted signature must not re-budget a well-predicted
	// one: each charge uses its own factor, unknown signatures use the
	// global fallback, zero predictions stay exempt.
	rel := cat.AdmitScanCharges("doc", []ScanCharge{
		{Sig: "hot", PredictedBytes: 1000},    // -> 2000
		{Sig: "cold", PredictedBytes: 1000},   // -> 500
		{Sig: "unseen", PredictedBytes: 1000}, // -> 1700 (global)
		{Sig: "stream", PredictedBytes: 0},    // -> 0
	})
	defer rel()
	if got := cat.AdmissionStats().ResidentBufferBytes; got != 2000+500+1700 {
		t.Fatalf("charged %d bytes, want 4200 (per-signature factors + global fallback)", got)
	}
}

// TestCalibrationLRUEviction: the per-signature table holds at most
// maxCalibSignatures rows and evicts the least recently used one for a
// newcomer — not the newcomer itself, and not a row kept warm by
// admission lookups.
func TestCalibrationLRUEviction(t *testing.T) {
	cl := newCalibration()
	for i := 0; i < maxCalibSignatures; i++ {
		cl.observe(fmt.Sprintf("sig-%d", i), 1000, 2000)
	}
	if got := len(cl.sigs); got != maxCalibSignatures {
		t.Fatalf("table size = %d, want full at %d", got, maxCalibSignatures)
	}

	// sig-0 is the LRU; an adjust lookup refreshes it, making sig-1 the
	// victim when a new signature arrives.
	cl.adjust("sig-0", 1000)
	cl.observe("fresh", 1000, 2000)
	st := cl.stats()
	if got := len(cl.sigs); got != maxCalibSignatures {
		t.Fatalf("table size after overflow = %d, want still %d", got, maxCalibSignatures)
	}
	if st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.Evicted)
	}
	if _, ok := st.Signatures["sig-1"]; ok {
		t.Fatal("sig-1 survived eviction; it was the least recently used row")
	}
	for _, keep := range []string{"sig-0", "fresh", "sig-2"} {
		if _, ok := st.Signatures[keep]; !ok {
			t.Fatalf("%s was evicted; only the LRU row (sig-1) should be", keep)
		}
	}

	// Overflow keeps evicting in recency order: the next newcomer drops
	// sig-2, and an evicted signature that comes back is a newcomer too.
	cl.observe("fresh2", 1000, 2000)
	cl.observe("sig-1", 1000, 2000) // re-admitted, evicting sig-3
	st = cl.stats()
	if st.Evicted != 3 {
		t.Fatalf("evicted = %d, want 3", st.Evicted)
	}
	for _, gone := range []string{"sig-2", "sig-3"} {
		if _, ok := st.Signatures[gone]; ok {
			t.Fatalf("%s survived; recency order says it should be gone", gone)
		}
	}
	if e, ok := st.Signatures["sig-1"]; !ok || e.Samples != 1 {
		t.Fatalf("re-admitted sig-1 = %+v, want a fresh single-sample row", e)
	}
}

// TestCalibrationDecay: a signature row idle for calibDecayEvery
// completed scans loses half its evidence and drifts toward the global
// factor; idle long enough, it goes fully cold and admission falls back
// to the global factor, un-pinning the stale correction.
func TestCalibrationDecay(t *testing.T) {
	cl := newCalibration()
	// Build a confident hot signature: factor 2, several samples.
	for i := 0; i < 4; i++ {
		cl.observe("hot", 1000, 2000)
	}
	if e := cl.sigs["hot"]; e.samples != 4 || e.factor != 2 {
		t.Fatalf("hot row = {factor %v, samples %d}, want {2, 4}", e.factor, e.samples)
	}

	// A different workload dominates for one decay interval; its scans
	// run at the predicted peak, dragging the global factor toward 1.
	for i := 0; i < calibDecayEvery; i++ {
		cl.observe("other", 1000, 1000)
	}
	got := cl.adjust("hot", 1000)
	e := cl.sigs["hot"]
	if e.samples != 2 {
		t.Fatalf("after one idle interval: samples = %d, want halved to 2", e.samples)
	}
	if e.factor >= 2 || e.factor <= 1 {
		t.Fatalf("after one idle interval: factor = %v, want strictly between the global factor and 2", e.factor)
	}
	if want := int64(float64(1000)*e.factor + 0.5); got != want {
		t.Fatalf("adjust used %d, want the decayed factor's %d", got, want)
	}

	// Two more idle intervals exhaust the remaining samples: the row is
	// cold, adjust charges the global factor, and the next observation
	// re-seeds the factor directly instead of folding into stale state.
	for i := 0; i < 2*calibDecayEvery; i++ {
		cl.observe("other", 1000, 1000)
	}
	if e := cl.sigs["hot"]; true {
		cl.mu.Lock()
		cl.decay(e)
		cold := e.samples == 0 && e.factor == 1
		cl.mu.Unlock()
		if !cold {
			t.Fatalf("after three idle intervals: {factor %v, samples %d}, want cold {1, 0}", e.factor, e.samples)
		}
	}
	globalCharge := cl.adjust("", 1000)
	if got := cl.adjust("hot", 1000); got != globalCharge {
		t.Fatalf("cold row charged %d, want the global fallback %d", got, globalCharge)
	}
	cl.observe("hot", 1000, 4000)
	if e := cl.sigs["hot"]; e.factor != 4 || e.samples != 1 {
		t.Fatalf("re-seeded row = {factor %v, samples %d}, want {4, 1}", e.factor, e.samples)
	}
}

// TestCatalogStreamDoc: a stream-backed document supports everything
// schema-shaped (Prepare, Schema, DTD, shared schema entries) but has no
// file to Open or Swap.
func TestCatalogStreamDoc(t *testing.T) {
	cat := NewCatalog(CatalogOptions{})
	if err := cat.AddStream("", catDTD); err == nil {
		t.Fatal("AddStream with empty name must fail")
	}
	if err := cat.AddStream("live", catDTD); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddStream("live", catDTD); !errors.Is(err, ErrDocExists) {
		t.Fatalf("duplicate AddStream: err = %v, want ErrDocExists", err)
	}

	info, err := cat.Info("live")
	if err != nil || !info.Stream || info.Path != "" {
		t.Fatalf("Info = %+v, %v; want Stream=true, empty path", info, err)
	}
	if _, err := cat.Open("live"); !errors.Is(err, ErrDocStreamBacked) {
		t.Fatalf("Open on stream doc: err = %v, want ErrDocStreamBacked", err)
	}
	if err := cat.Swap("live", writeTemp(t, "bib.xml", catDoc)); !errors.Is(err, ErrDocStreamBacked) {
		t.Fatalf("Swap on stream doc: err = %v, want ErrDocStreamBacked", err)
	}

	q, err := cat.Prepare("live", "{ for $b in /bib/book return {$b/title} }")
	if err != nil {
		t.Fatal(err)
	}
	if q.Plan() == nil {
		t.Fatal("compiled query exposes no plan")
	}
	got, _, err := q.RunString(catDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "<title>FluX</title><title>XMark</title>"; got != want {
		t.Fatalf("query over stream-doc schema = %q, want %q", got, want)
	}

	// A file-backed document with the same DTD text shares the parsed
	// schema entry, so compiled queries are shared across both.
	if err := cat.Add("bib", writeTemp(t, "bib2.xml", catDoc), catDTD); err != nil {
		t.Fatal(err)
	}
	q2, err := cat.Prepare("bib", "{ for $b in /bib/book return {$b/title} }")
	if err != nil {
		t.Fatal(err)
	}
	if q2 != q {
		t.Fatal("stream and file docs with identical DTD text must share compiled queries")
	}
}

package flux

// Differential testing of the merged path automaton: random query
// batches (disjoint, overlapping, and identical-signature mixes) run
// through automaton dispatch (mux.NewSelective), the per-group trie
// walk it replaced (mux.NewSelectiveGrouped), and naive all-fanout
// (mux.New). The two selective paths must agree exactly — stream error,
// per-query errors, output bytes, and SkippedEvents — and both must
// reproduce all-fanout's output byte for byte wherever the queries
// succeed.

import (
	"math/rand"
	"strings"
	"testing"

	"flux/internal/autom"
	"flux/internal/dtd"
	"flux/internal/mux"
	"flux/internal/sax"
	"flux/internal/xq"
)

// batchRun is one mux execution of a query batch over one document.
type batchRun struct {
	outs    []string
	results []mux.Result
	err     error
}

// runQueryBatch executes the batch through a fresh mux of the given
// construction over doc.
func runQueryBatch(newMux func() *mux.Mux, qs []*Query, doc string) batchRun {
	m := newMux()
	sbs := make([]*strings.Builder, len(qs))
	for i, q := range qs {
		sbs[i] = &strings.Builder{}
		m.Add(q.plan, sbs[i])
	}
	results, err := m.Run(nil, strings.NewReader(doc), sax.Options{SkipWhitespaceText: true})
	out := batchRun{results: results, err: err, outs: make([]string, len(qs))}
	for i, sb := range sbs {
		out.outs[i] = sb.String()
	}
	return out
}

// genQueryBatch compiles a random batch of 2–6 queries against schema,
// mixing fresh random queries (overlapping or disjoint paths as the
// generator falls) with occasional exact duplicates (identical
// signatures, exercising multi-member groups). Returns nil when fewer
// than two generated queries compile.
func genQueryBatch(r *rand.Rand, schema *dtd.Schema) []*Query {
	n := 2 + r.Intn(5)
	var qs []*Query
	for len(qs) < n {
		if len(qs) > 0 && r.Intn(4) == 0 {
			qs = append(qs, qs[r.Intn(len(qs))]) // identical-signature member
			continue
		}
		g := &queryGen{r: rand.New(rand.NewSource(r.Int63())), schema: schema}
		ast := g.build([]binding{{xq.RootVar, dtd.DocumentVar}}, 4)
		q, err := PrepareWithSchema(xq.Print(ast), schema)
		if err != nil {
			n-- // engine limitation; shrink the batch rather than spin
			if n < 2 {
				break
			}
			continue
		}
		qs = append(qs, q)
	}
	if len(qs) < 2 {
		return nil
	}
	return qs
}

// prebuiltMachine compiles the batch's merged automaton the way the
// executor's cache does — distinct group keys in sorted order — so the
// differential also covers the SetMachine installation path.
func prebuiltMachine(qs []*Query) *autom.Machine {
	seen := make(map[string]bool)
	var groups []autom.Group
	for _, q := range qs {
		key := mux.GroupKey(q.plan)
		if seen[key] {
			continue
		}
		seen[key] = true
		groups = append(groups, autom.Group{Key: key, Sig: q.plan.Signature()})
	}
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].Key < groups[j-1].Key; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
	return autom.Build(groups)
}

// checkAutomatonAgainst compares an automaton run against the grouped
// selective run (exact agreement, including skip counts) and the
// all-fanout run (byte equality wherever both succeeded; an automaton
// success never hides an output difference).
func checkAutomatonAgainst(t *testing.T, label string, auto, grouped, all batchRun) {
	t.Helper()
	if (auto.err != nil) != (grouped.err != nil) {
		t.Fatalf("%s: stream error disagreement: automaton %v, grouped %v", label, auto.err, grouped.err)
	}
	for i := range auto.results {
		ar, gr := auto.results[i], grouped.results[i]
		if (ar.Err != nil) != (gr.Err != nil) {
			t.Fatalf("%s: query %d error disagreement: automaton %v, grouped %v", label, i, ar.Err, gr.Err)
		}
		if auto.outs[i] != grouped.outs[i] {
			t.Fatalf("%s: query %d output differs from grouped routing\nautomaton: %q\ngrouped:   %q",
				label, i, auto.outs[i], grouped.outs[i])
		}
		// The automaton reproduces the per-group walk's skip accounting
		// exactly (the ISSUE's ≥ bound holds as equality by construction;
		// a drop below would mean the automaton delivered extra events).
		if ar.SkippedEvents != gr.SkippedEvents {
			t.Fatalf("%s: query %d skipped %d events under the automaton, %d under grouped routing",
				label, i, ar.SkippedEvents, gr.SkippedEvents)
		}
		if all.err == nil && auto.err == nil && ar.Err == nil && all.results[i].Err == nil {
			if auto.outs[i] != all.outs[i] {
				t.Fatalf("%s: query %d output differs from all-fanout\nautomaton:  %q\nall-fanout: %q",
					label, i, auto.outs[i], all.outs[i])
			}
		}
	}
}

// TestAutomatonDifferential is the tentpole's backbone: N random query
// batches per fuzz schema, each over several random valid documents,
// through all three dispatch paths.
func TestAutomatonDifferential(t *testing.T) {
	const batchesPerSchema = 40
	const docsPerBatch = 2
	batches := 0
	for si, dtdText := range fuzzSchemas {
		schema := dtd.MustParse(dtdText)
		for seed := 0; seed < batchesPerSchema; seed++ {
			r := rand.New(rand.NewSource(int64(si*7919 + seed)))
			qs := genQueryBatch(r, schema)
			if qs == nil {
				continue
			}
			batches++
			for d := 0; d < docsPerBatch; d++ {
				doc := dtd.RandomDocument(schema, int64(seed*107+d), dtd.GenOptions{})
				label := t.Name()
				all := runQueryBatch(mux.New, qs, doc)
				grouped := runQueryBatch(mux.NewSelectiveGrouped, qs, doc)
				auto := runQueryBatch(mux.NewSelective, qs, doc)
				checkAutomatonAgainst(t, label, auto, grouped, all)
				// Every other document: the executor's cache path — a
				// machine prebuilt from sorted distinct keys and installed
				// via SetMachine must route identically to the fresh build.
				if d%2 == 1 {
					mach := prebuiltMachine(qs)
					installed := runQueryBatch(func() *mux.Mux {
						m := mux.NewSelective()
						m.SetMachine(mach)
						return m
					}, qs, doc)
					checkAutomatonAgainst(t, label+" (SetMachine)", installed, grouped, all)
				}
			}
		}
	}
	if batches*2 < batchesPerSchema*len(fuzzSchemas) {
		t.Errorf("too few batches compiled: %d of %d possible", batches, batchesPerSchema*len(fuzzSchemas))
	}
	t.Logf("automaton differential: %d batches", batches)
}

// FuzzAutomatonDispatch fuzzes the document bytes under seeded query
// batches: whatever the input — malformed XML included — automaton
// dispatch must agree exactly with grouped selective routing, and must
// match all-fanout output wherever both succeed (all-fanout tokenizes
// regions the selective paths prune, so it may legitimately catch
// malformations they never see).
func FuzzAutomatonDispatch(f *testing.F) {
	for si := range fuzzSchemas {
		schema := dtd.MustParse(fuzzSchemas[si])
		doc := dtd.RandomDocument(schema, int64(si), dtd.GenOptions{})
		f.Add(si, int64(si*13+1), doc)
		f.Add(si, int64(si*13+2), doc+"<trailing-garbage>")
		f.Add(si, int64(si*13+3), strings.Replace(doc, "</", "<", 1))
	}
	f.Fuzz(func(t *testing.T, si int, qseed int64, doc string) {
		if si < 0 || si >= len(fuzzSchemas) {
			t.Skip()
		}
		schema := dtd.MustParse(fuzzSchemas[si])
		qs := genQueryBatch(rand.New(rand.NewSource(qseed)), schema)
		if qs == nil {
			t.Skip()
		}
		all := runQueryBatch(mux.New, qs, doc)
		grouped := runQueryBatch(mux.NewSelectiveGrouped, qs, doc)
		auto := runQueryBatch(mux.NewSelective, qs, doc)
		checkAutomatonAgainst(t, "fuzz", auto, grouped, all)
	})
}

package flux

import (
	"strings"
	"testing"

	"flux/internal/xmark"
)

const bibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const bibDoc = `<bib>` +
	`<book><title>T1</title><author>A1</author><author>A2</author><publisher>P1</publisher><price>10</price></book>` +
	`<book><title>T2</title><editor>E1</editor><publisher>P2</publisher><price>20</price></book>` +
	`</bib>`

func TestPrepareAndRunAllEngines(t *testing.T) {
	q, err := Prepare(`<results>
{ for $b in $ROOT/bib/book return
<result> { $b/title } { $b/author } </result> }
</results>`, bibDTD)
	if err != nil {
		t.Fatal(err)
	}
	want := `<results>` +
		`<result><title>T1</title><author>A1</author><author>A2</author></result>` +
		`<result><title>T2</title></result>` +
		`</results>`
	for _, eng := range []Engine{FluX, Naive, Projection} {
		out, st, err := q.RunString(bibDoc, Options{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if out != want {
			t.Errorf("%v output = %q, want %q", eng, out, want)
		}
		if st.OutputBytes != int64(len(want)) {
			t.Errorf("%v OutputBytes = %d, want %d", eng, st.OutputBytes, len(want))
		}
	}
	// The strong DTD streams this query with zero buffering; the naive
	// engine holds the whole document.
	_, stFlux, _ := q.RunString(bibDoc, Options{Engine: FluX})
	_, stNaive, _ := q.RunString(bibDoc, Options{Engine: Naive})
	if stFlux.PeakBufferBytes != 0 {
		t.Errorf("flux buffered %d bytes, want 0", stFlux.PeakBufferBytes)
	}
	if stNaive.PeakBufferBytes == 0 {
		t.Error("naive engine reported zero materialization")
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Prepare(`{ $x/bad }`, bibDTD); err == nil {
		t.Error("open query accepted")
	}
	if _, err := Prepare(`ok`, `<!ELEMENT a (b,)>`); err == nil {
		t.Error("malformed DTD accepted")
	}
	if _, err := Prepare(`{ for $b in`, bibDTD); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestExplainMentionsAllStages(t *testing.T) {
	q, err := Prepare(`{ for $b in /bib/book return { $b/title } }`, bibDTD)
	if err != nil {
		t.Fatal(err)
	}
	ex := q.Explain()
	for _, want := range []string{"normalized", "ps $ROOT", "buffer tree", "scheduled FluX"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
	if !strings.Contains(q.FluxText(), "on book as $b") {
		t.Errorf("FluxText = %s", q.FluxText())
	}
}

func TestAttrsToSubelements(t *testing.T) {
	d := `
<!ELEMENT people (person)*>
<!ELEMENT person (person_id,name)>
<!ELEMENT person_id (#PCDATA)>
<!ELEMENT name (#PCDATA)>
`
	q, err := Prepare(`{ for $p in /people/person where $p/person_id = 'p1' return { $p/name } }`, d)
	if err != nil {
		t.Fatal(err)
	}
	doc := `<people><person id="p0"><name>Ann</name></person><person id="p1"><name>Bob</name></person></people>`
	out, _, err := q.RunString(doc, Options{AttrsToSubelements: true})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<name>Bob</name>` {
		t.Errorf("out = %q", out)
	}
}

func TestValidateDocument(t *testing.T) {
	q, err := Prepare(`ok`, bibDTD)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.ValidateDocument(strings.NewReader(bibDoc), Options{}); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	if err := q.ValidateDocument(strings.NewReader(`<bib><zap/></bib>`), Options{}); err == nil {
		t.Error("invalid doc accepted")
	}
}

// TestXMarkEndToEnd runs all five Figure 4 queries on a generated
// document through all three engines and requires identical output, with
// the FluX engine using dramatically less memory.
func TestXMarkEndToEnd(t *testing.T) {
	var doc strings.Builder
	if _, err := xmark.Generate(&doc, xmark.GenOptions{Scale: 0.002, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	for _, name := range xmark.QueryNames {
		q, err := Prepare(xmark.Queries[name], xmark.DTD)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		outFlux, stFlux, err := q.RunString(doc.String(), Options{Engine: FluX})
		if err != nil {
			t.Fatalf("%s flux: %v", name, err)
		}
		outNaive, stNaive, err := q.RunString(doc.String(), Options{Engine: Naive})
		if err != nil {
			t.Fatalf("%s naive: %v", name, err)
		}
		outProj, stProj, err := q.RunString(doc.String(), Options{Engine: Projection})
		if err != nil {
			t.Fatalf("%s projection: %v", name, err)
		}
		if outFlux != outNaive {
			t.Errorf("%s: flux and naive outputs differ (%d vs %d bytes)", name, len(outFlux), len(outNaive))
			continue
		}
		if outProj != outNaive {
			t.Errorf("%s: projection and naive outputs differ", name)
		}
		if len(outFlux) == 0 {
			t.Errorf("%s: produced no output; workload is degenerate", name)
		}
		// Figure 4 shape: flux ≤ projection ≤ naive in memory, with the
		// streaming queries at (near) zero.
		if stFlux.PeakBufferBytes > stProj.PeakBufferBytes {
			t.Errorf("%s: flux %d > projection %d buffered bytes", name, stFlux.PeakBufferBytes, stProj.PeakBufferBytes)
		}
		if stProj.PeakBufferBytes > stNaive.PeakBufferBytes {
			t.Errorf("%s: projection %d > naive %d buffered bytes", name, stProj.PeakBufferBytes, stNaive.PeakBufferBytes)
		}
		switch name {
		case "q1", "q13":
			if stFlux.PeakBufferBytes != 0 {
				t.Errorf("%s: flux buffered %d bytes, want 0 (on-the-fly)", name, stFlux.PeakBufferBytes)
			}
		case "q20":
			if stFlux.PeakBufferBytes == 0 || stFlux.PeakBufferBytes > 2048 {
				t.Errorf("%s: flux buffered %d bytes, want a single person", name, stFlux.PeakBufferBytes)
			}
		case "q8", "q11":
			if stFlux.PeakBufferBytes == 0 {
				t.Errorf("%s: join must buffer", name)
			}
			if stFlux.PeakBufferBytes*4 > int64(doc.Len()) {
				t.Errorf("%s: flux buffered %d of %d document bytes; projection ineffective",
					name, stFlux.PeakBufferBytes, doc.Len())
			}
		}
	}
}

// TestPrepareFlux runs a hand-written FluX query (the paper's surface
// syntax) end to end.
func TestPrepareFlux(t *testing.T) {
	q, err := PrepareFlux(`{ ps $ROOT: on bib as $bib return
		{ ps $bib: on book as $b return
			{ ps $b: on title as $t return { $t } } };
		on-first past(bib) return <done/> }`, bibDTD)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := q.RunString(bibDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<title>T1</title><title>T2</title><done/>` {
		t.Errorf("out = %q", out)
	}
	if st.PeakBufferBytes != 0 {
		t.Errorf("buffered %d bytes, want 0", st.PeakBufferBytes)
	}
	// Baselines are refused for FluX-syntax queries.
	if _, _, err := q.RunString(bibDoc, Options{Engine: Naive}); err == nil {
		t.Error("naive run of FluX-syntax query should fail")
	}
	// Unsafe hand-written queries are rejected.
	if _, err := PrepareFlux(`{ ps $ROOT: on bib as $bib return
		{ ps $bib: on book as $b return
			{ ps $b: on-first past(title) return { for $a in $b/author return { $a } } } } }`, bibDTD); err == nil {
		t.Error("unsafe FluX query accepted")
	}
}

func TestBufferReport(t *testing.T) {
	// Fully streaming query under the strong DTD.
	q, err := Prepare(`{ for $b in /bib/book return { $b/title } }`, bibDTD)
	if err != nil {
		t.Fatal(err)
	}
	rep := q.BufferReport()
	if !rep.Streaming || len(rep.Scopes) != 0 {
		t.Errorf("expected fully streaming: %+v\n%s", rep, rep)
	}
	// Buffering query: whole person per instance (XMark Q20 pattern).
	q2, err := Prepare(xmark.Queries["q20"], xmark.DTD)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := q2.BufferReport()
	if rep2.Streaming || len(rep2.Scopes) != 1 {
		t.Fatalf("q20 report = %+v", rep2)
	}
	s := rep2.Scopes[0]
	if s.Elem != "person" || !s.PerInstance || len(s.Paths) != 1 || s.Paths[0] != ". •" {
		t.Errorf("q20 scope = %+v", s)
	}
	if !strings.Contains(rep2.String(), "freed per instance") {
		t.Errorf("report text: %s", rep2.String())
	}
	// Join query: buffers at the site scope, which repeats never (one site
	// per document) but is still per-instance.
	q3, err := Prepare(xmark.Queries["q8"], xmark.DTD)
	if err != nil {
		t.Fatal(err)
	}
	rep3 := q3.BufferReport()
	if rep3.Streaming {
		t.Error("q8 cannot be streaming")
	}
	var found bool
	for _, sc := range rep3.Scopes {
		for _, p := range sc.Paths {
			if strings.HasPrefix(p, "closed_auctions/closed_auction") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("q8 report misses closed_auction buffering: %+v", rep3)
	}
}

// TestFallbackToExample34 covers the case where the Figure 2 schedule is
// formally safe (Definition 3.6) but not single-pass executable: with
// year occurring exactly once per book, rewrite emits an on-year handler
// whose guard reads the year's own value at its opening tag. Prepare must
// fall back to the Example 3.4 schedule and still answer correctly.
func TestFallbackToExample34(t *testing.T) {
	d := `
<!ELEMENT bib (book)*>
<!ELEMENT book (publisher,year,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`
	q, err := Prepare(`<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = 'AW' and $b/year > 1991
  return <book> {$b/year} {$b/title} </book> }
</bib>`, d)
	if err != nil {
		t.Fatal(err)
	}
	if q.FallbackReason() == "" {
		t.Fatal("expected Example 3.4 fallback for the self-guarded year handler")
	}
	doc := `<bib>` +
		`<book><publisher>AW</publisher><year>1994</year><title>New</title></book>` +
		`<book><publisher>AW</publisher><year>1990</year><title>Old</title></book>` +
		`</bib>`
	outF, _, err := q.RunString(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outN, _, err := q.RunString(doc, Options{Engine: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if outF != outN {
		t.Errorf("fallback output differs from oracle:\n flux: %q\n dom:  %q", outF, outN)
	}
	if !strings.Contains(outF, "<year>1994</year>") || strings.Contains(outF, "Old") {
		t.Errorf("wrong result: %q", outF)
	}
}

package dtd

import (
	"strings"
	"testing"

	"flux/internal/sax"
)

// TestRandomDocumentIsValid: every generated document must validate
// against the schema it was generated from (self-consistency of the
// generator used by differential tests).
func TestRandomDocumentIsValid(t *testing.T) {
	schemas := []string{
		`<!ELEMENT r (a|b|c)*>
<!ELEMENT a (d|e)*>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (d*,e*)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT e (#PCDATA)>`,
		`<!ELEMENT r (a+,b?,c)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
<!ELEMENT c ((d,e)|(e,d))>
<!ELEMENT d (#PCDATA)>
<!ELEMENT e (#PCDATA)>`,
		`<!ELEMENT part (id,part*)>
<!ELEMENT id (#PCDATA)>`,
	}
	for si, text := range schemas {
		schema := MustParse(text)
		for seed := int64(0); seed < 50; seed++ {
			doc := RandomDocument(schema, seed, GenOptions{})
			if err := Validate(schema, strings.NewReader(doc), sax.Options{}); err != nil {
				t.Fatalf("schema %d seed %d: generated invalid document: %v\n%s", si, seed, err, doc)
			}
		}
	}
}

func TestRandomDocumentDeterministic(t *testing.T) {
	schema := MustParse(`<!ELEMENT r (a|b)*>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>`)
	a := RandomDocument(schema, 3, GenOptions{})
	b := RandomDocument(schema, 3, GenOptions{})
	if a != b {
		t.Error("same seed produced different documents")
	}
	c := RandomDocument(schema, 4, GenOptions{})
	if a == c {
		t.Error("different seeds produced identical documents (suspicious)")
	}
}

func TestRandomDocumentRespectsDepth(t *testing.T) {
	schema := MustParse(`<!ELEMENT part (id,part*)>
<!ELEMENT id (#PCDATA)>`)
	doc := RandomDocument(schema, 1, GenOptions{MaxDepth: 4})
	depth := 0
	maxDepth := 0
	if err := sax.ScanString(doc, sax.HandlerFuncs{
		Start: func(name string) error {
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
			return nil
		},
		End: func(name string) error { depth--; return nil },
	}, sax.Options{}); err != nil {
		t.Fatal(err)
	}
	// Depth pressure is a bias, not a hard bound, but runaway recursion
	// would blow far past it.
	if maxDepth > 16 {
		t.Errorf("document depth %d far exceeds MaxDepth bias", maxDepth)
	}
}

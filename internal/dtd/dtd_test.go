package dtd

import (
	"strings"
	"testing"

	"flux/internal/sax"
)

// The three bibliography DTDs from Section 1 of the paper.
const (
	weakBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	useCaseBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
)

func TestParseBibDTDs(t *testing.T) {
	weak := MustParse(weakBibDTD)
	if weak.Root != "bib" {
		t.Errorf("weak root = %q, want bib", weak.Root)
	}
	if weak.Ord("book", "title", "author") {
		t.Error("weak DTD: Ord_book(title, author) = true, want false")
	}
	strong := MustParse(useCaseBibDTD)
	if !strong.Ord("book", "title", "author") {
		t.Error("use-case DTD: Ord_book(title, author) = false, want true")
	}
	if !strong.AtMostOnce("book", "title") {
		t.Error("use-case DTD: title should be at most once in book")
	}
	if strong.AtMostOnce("book", "author") {
		t.Error("use-case DTD: author can repeat")
	}
	if !strong.AtMostOnce("bib", "nothere") {
		t.Error("undeclared child is trivially at-most-once")
	}
}

func TestDocumentProduction(t *testing.T) {
	s := MustParse(weakBibDTD)
	doc, ok := s.Production(DocumentVar)
	if !ok || doc.Model.String() != "bib" {
		t.Fatalf("document production = %v, %v", doc, ok)
	}
	if !s.AtMostOnce(DocumentVar, "bib") {
		t.Error("document element must be at-most-once")
	}
}

func TestParseMixedAndEmpty(t *testing.T) {
	s := MustParse(`
<!ELEMENT a (b,c?)>
<!ELEMENT b EMPTY>
<!ELEMENT c (#PCDATA|d)*>
<!ELEMENT d (#PCDATA)>
<!ATTLIST a x CDATA #REQUIRED>
<!-- a comment -->
`)
	b, _ := s.Production("b")
	if b.Mixed || b.Model.String() != "EMPTY" {
		t.Errorf("b = %+v", b)
	}
	c, _ := s.Production("c")
	if !c.Mixed || c.Model.String() != "d*" {
		t.Errorf("c = %+v, model %s", c, c.Model)
	}
	d, _ := s.Production("d")
	if !d.Mixed {
		t.Errorf("d not mixed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"unterminated":    `<!ELEMENT a (b)`,
		"dup":             "<!ELEMENT a (b)><!ELEMENT a (c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
		"any":             `<!ELEMENT a ANY>`,
		"ambiguous model": `<!ELEMENT a ((b,c)|(b,d))><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>`,
		"stray":           `hello <!ELEMENT a EMPTY>`,
		"empty":           ``,
		"bad model":       `<!ELEMENT a (b,)>`,
	}
	for name, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestRootInference(t *testing.T) {
	// Two unreferenced elements: ambiguous root.
	_, err := Parse(`<!ELEMENT a (c)><!ELEMENT b (c)><!ELEMENT c EMPTY>`)
	if err == nil {
		t.Error("ambiguous root not detected")
	}
	s, err := ParseWithRoot(`<!ELEMENT a (c)><!ELEMENT b (c)><!ELEMENT c EMPTY>`, "a")
	if err != nil || s.Root != "a" {
		t.Errorf("ParseWithRoot: %v, %v", s, err)
	}
	if _, err := ParseWithRoot(`<!ELEMENT a EMPTY>`, "zz"); err == nil {
		t.Error("undeclared root accepted")
	}
	// Recursive element referencing itself still roots fine.
	s2, err := Parse(`<!ELEMENT a (a|b)*><!ELEMENT b EMPTY>`)
	if err != nil || s2.Root != "a" {
		t.Errorf("self-recursive: %v, %v", s2, err)
	}
}

func validate(t *testing.T, schema *Schema, doc string) error {
	t.Helper()
	return Validate(schema, strings.NewReader(doc), sax.Options{SkipWhitespaceText: true})
}

func TestValidate(t *testing.T) {
	s := MustParse(useCaseBibDTD)
	good := `<bib>
  <book><title>t</title><author>a</author><author>b</author><publisher>p</publisher><price>1</price></book>
  <book><title>t</title><editor>e</editor><publisher>p</publisher><price>2</price></book>
</bib>`
	if err := validate(t, s, good); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
	bad := []struct{ name, doc string }{
		{"wrong root", `<book></book>`},
		{"missing title", `<bib><book><author>a</author><publisher>p</publisher><price>1</price></book></bib>`},
		{"author then editor", `<bib><book><title>t</title><author>a</author><editor>e</editor><publisher>p</publisher><price>1</price></book></bib>`},
		{"incomplete", `<bib><book><title>t</title><author>a</author></book></bib>`},
		{"undeclared element", `<bib><zap/></bib>`},
		{"text in element content", `<bib>text</bib>`},
	}
	for _, c := range bad {
		if err := validate(t, s, c.doc); err == nil {
			t.Errorf("%s: invalid document accepted", c.name)
		}
	}
}

func TestValidatorForwards(t *testing.T) {
	s := MustParse(weakBibDTD)
	var c sax.Collector
	err := sax.ScanString(`<bib><book><title>x</title></book></bib>`, NewValidator(s, &c), sax.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 7 {
		t.Errorf("forwarded %d events, want 7: %v", len(c.Events), c.Events)
	}
}

func TestSchemaString(t *testing.T) {
	s := MustParse(useCaseBibDTD)
	out := s.String()
	// Reparse of the printed schema must yield the same constraints.
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if s2.Root != s.Root {
		t.Errorf("root %q != %q", s2.Root, s.Root)
	}
	if !s2.Ord("book", "title", "author") {
		t.Error("reparsed schema lost order constraint")
	}
}

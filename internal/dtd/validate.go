package dtd

import (
	"fmt"
	"io"

	"flux/internal/sax"
)

// ValidationError reports a document that does not conform to the schema.
type ValidationError struct {
	Msg string
}

// Error implements error.
func (e *ValidationError) Error() string { return "dtd: invalid document: " + e.Msg }

// Validator is a sax.Handler that checks a document against a Schema by
// running one Glushkov automaton per open element, exactly the mechanism
// the paper's SAX parser uses for validation (Appendix B). A Validator can
// wrap another handler to form a validating pipeline.
type Validator struct {
	schema *Schema
	next   sax.Handler // optional downstream handler
	stack  []valFrame
}

type valFrame struct {
	prod  *Production
	state int
}

// NewValidator returns a Validator for schema. If next is non-nil, events
// are forwarded to it after validation.
func NewValidator(schema *Schema, next sax.Handler) *Validator {
	v := &Validator{schema: schema, next: next}
	v.stack = append(v.stack, valFrame{prod: schema.doc, state: schema.doc.Auto.Start()})
	return v
}

func (v *Validator) errf(format string, args ...any) error {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}

// StartElement implements sax.Handler.
func (v *Validator) StartElement(name string) error {
	top := &v.stack[len(v.stack)-1]
	next, ok := top.prod.Auto.Step(top.state, name)
	if !ok {
		return v.errf("element <%s> not allowed at this point inside <%s> (content model %s)",
			name, top.prod.Name, top.prod.Model)
	}
	top.state = next
	child, ok := v.schema.Production(name)
	if !ok {
		return v.errf("element <%s> is not declared", name)
	}
	v.stack = append(v.stack, valFrame{prod: child, state: child.Auto.Start()})
	if v.next != nil {
		return v.next.StartElement(name)
	}
	return nil
}

// Text implements sax.Handler.
func (v *Validator) Text(data string) error {
	top := &v.stack[len(v.stack)-1]
	if !top.prod.Mixed && top.prod.Name != DocumentVar {
		if !allXMLSpace(data) {
			return v.errf("character data %q not allowed inside <%s>", head(data, 20), top.prod.Name)
		}
		return nil
	}
	if v.next != nil {
		return v.next.Text(data)
	}
	return nil
}

// EndElement implements sax.Handler.
func (v *Validator) EndElement(name string) error {
	top := v.stack[len(v.stack)-1]
	if !top.prod.Auto.Accepting(top.state) {
		return v.errf("element <%s> closed with incomplete content (model %s)", name, top.prod.Model)
	}
	v.stack = v.stack[:len(v.stack)-1]
	if v.next != nil {
		return v.next.EndElement(name)
	}
	return nil
}

// Validate checks that the XML document read from r conforms to the
// schema.
func Validate(schema *Schema, r io.Reader, opt sax.Options) error {
	return sax.Scan(r, NewValidator(schema, nil), opt)
}

func allXMLSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

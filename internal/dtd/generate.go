package dtd

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenOptions tunes RandomDocument.
type GenOptions struct {
	// MaxDepth bounds element nesting; beyond it repetitions are cut short.
	MaxDepth int
	// MaxRepeat bounds how many times a starred/plussed group repeats.
	MaxRepeat int
	// Texts is the vocabulary for #PCDATA content; defaults to a small
	// built-in list with numeric and string values.
	Texts []string
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.MaxRepeat == 0 {
		o.MaxRepeat = 3
	}
	if len(o.Texts) == 0 {
		o.Texts = []string{"alpha", "beta", "gamma", "7", "1991", "2004", "42", "person0", "x y"}
	}
	return o
}

// RandomDocument generates a pseudo-random document valid w.r.t. the
// schema, for differential and property testing. The same seed yields the
// same document.
func RandomDocument(s *Schema, seed int64, opt GenOptions) string {
	opt = opt.withDefaults()
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	g := &generator{schema: s, r: r, opt: opt}
	g.element(&b, s.Root, 0)
	return b.String()
}

type generator struct {
	schema *Schema
	r      *rand.Rand
	opt    GenOptions
}

func (g *generator) element(b *strings.Builder, name string, depth int) {
	p, ok := g.schema.Production(name)
	if !ok {
		panic(fmt.Sprintf("dtd: generate: undeclared element %q", name))
	}
	fmt.Fprintf(b, "<%s>", name)
	if p.Mixed {
		b.WriteString(g.opt.Texts[g.r.Intn(len(g.opt.Texts))])
	}
	// Random walk over the Glushkov automaton: from each state choose a
	// random enabled transition or stop if accepting. Depth pressure
	// biases toward stopping.
	a := p.Auto
	state := a.Start()
	steps := 0
	for {
		var enabled []string
		for _, sym := range a.Symbols() {
			if _, ok := a.Step(state, sym); ok {
				enabled = append(enabled, sym)
			}
		}
		stop := a.Accepting(state) &&
			(len(enabled) == 0 || depth >= g.opt.MaxDepth || steps >= g.opt.MaxRepeat*len(a.Symbols()) || g.r.Intn(2) == 0)
		if stop || len(enabled) == 0 {
			break
		}
		sym := enabled[g.r.Intn(len(enabled))]
		g.element(b, sym, depth+1)
		next, _ := a.Step(state, sym)
		state = next
		steps++
	}
	fmt.Fprintf(b, "</%s>", name)
}

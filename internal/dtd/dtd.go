// Package dtd parses document type definitions and exposes the schema
// model the FluX rewriting and evaluation machinery consumes: one
// production (content-model regular expression plus its Glushkov
// automaton) per element name, order constraints, cardinality facts, and
// a streaming validator.
//
// DTDs are local tree grammars (paper Section 2): no competing
// nonterminals, so a production is identified by its element name.
package dtd

import (
	"fmt"
	"sort"
	"strings"

	"flux/internal/rex"
)

// DocumentVar is the pseudo element name for the production of the
// document node (the scope of the $ROOT variable): its content model is
// exactly one occurrence of the root element.
const DocumentVar = "#document"

// Production is one <!ELEMENT name model> declaration.
type Production struct {
	// Name is the element name.
	Name string
	// Model is the element-content regular expression. For EMPTY and
	// text-only (#PCDATA) productions it is rex.Epsilon.
	Model rex.Expr
	// Mixed reports whether character data is allowed (#PCDATA present).
	Mixed bool
	// Auto is the Glushkov automaton of Model.
	Auto *rex.Automaton
}

// Schema is a parsed DTD.
type Schema struct {
	// Root is the document element name.
	Root  string
	elems map[string]*Production
	doc   *Production // synthetic production for DocumentVar
	order []string    // declaration order, for deterministic printing
}

// ParseError reports a malformed DTD.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: line %d: %s", e.Line, e.Msg)
}

// Parse parses DTD text consisting of <!ELEMENT ...> declarations
// (<!ATTLIST ...> declarations and comments are accepted and ignored; the
// data model converts attributes to subelements). The document element is
// inferred as the unique declared element that no content model
// references; use ParseWithRoot to name it explicitly.
func Parse(text string) (*Schema, error) {
	return parse(text, "")
}

// ParseWithRoot parses a DTD with an explicitly designated root element.
func ParseWithRoot(text, root string) (*Schema, error) {
	return parse(text, root)
}

// MustParse is Parse for known-good DTDs (tests, built-in schemas).
func MustParse(text string) *Schema {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

func parse(text, root string) (*Schema, error) {
	s := &Schema{elems: make(map[string]*Production)}
	line := 1
	rest := text
	errf := func(format string, args ...any) error {
		return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	for {
		i := strings.IndexByte(rest, '<')
		if i < 0 {
			if strings.TrimSpace(rest) != "" {
				return nil, errf("stray text %q", strings.TrimSpace(rest))
			}
			break
		}
		if strings.TrimSpace(rest[:i]) != "" {
			return nil, errf("stray text %q", strings.TrimSpace(rest[:i]))
		}
		line += strings.Count(rest[:i], "\n")
		rest = rest[i:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest, "-->")
			if end < 0 {
				return nil, errf("unterminated comment")
			}
			line += strings.Count(rest[:end+3], "\n")
			rest = rest[end+3:]
		case strings.HasPrefix(rest, "<!ELEMENT"), strings.HasPrefix(rest, "<!ATTLIST"), strings.HasPrefix(rest, "<!ENTITY"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, errf("unterminated declaration %q", head(rest, 30))
			}
			decl := rest[:end]
			nl := strings.Count(rest[:end+1], "\n")
			rest = rest[end+1:]
			if strings.HasPrefix(decl, "<!ELEMENT") {
				if err := s.addElementDecl(decl[len("<!ELEMENT"):], line); err != nil {
					return nil, err
				}
			}
			line += nl
		default:
			return nil, errf("unexpected input %q", head(rest, 30))
		}
	}
	if len(s.elems) == 0 {
		return nil, errf("no element declarations")
	}
	if root == "" {
		r, err := s.inferRoot()
		if err != nil {
			return nil, err
		}
		root = r
	}
	if _, ok := s.elems[root]; !ok {
		return nil, fmt.Errorf("dtd: root element %q is not declared", root)
	}
	s.Root = root
	docModel := rex.Sym{Name: root}
	s.doc = &Production{Name: DocumentVar, Model: docModel, Auto: rex.MustBuild(docModel)}
	return s, nil
}

func head(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

func (s *Schema) addElementDecl(body string, line int) error {
	body = strings.TrimSpace(body)
	sp := strings.IndexAny(body, " \t\n\r(")
	if sp <= 0 {
		return &ParseError{Line: line, Msg: "expected element name and content model"}
	}
	name := strings.TrimSpace(body[:sp])
	model := strings.TrimSpace(body[sp:])
	if name == "" || model == "" {
		return &ParseError{Line: line, Msg: "expected element name and content model"}
	}
	if _, dup := s.elems[name]; dup {
		return &ParseError{Line: line, Msg: fmt.Sprintf("duplicate declaration of element %q", name)}
	}
	p := &Production{Name: name}
	switch {
	case model == "EMPTY":
		p.Model = rex.Epsilon{}
	case model == "ANY":
		return &ParseError{Line: line, Msg: fmt.Sprintf("element %q: ANY content is not supported", name)}
	case model == "(#PCDATA)":
		p.Model, p.Mixed = rex.Epsilon{}, true
	case strings.HasPrefix(model, "(#PCDATA"):
		// Mixed content: (#PCDATA|a|b|...)*
		inner := strings.TrimPrefix(model, "(#PCDATA")
		inner = strings.TrimSpace(inner)
		if !strings.HasSuffix(inner, ")*") && !strings.HasSuffix(inner, ")") {
			return &ParseError{Line: line, Msg: fmt.Sprintf("element %q: malformed mixed content model", name)}
		}
		inner = strings.TrimSuffix(strings.TrimSuffix(inner, "*"), ")")
		var names []rex.Expr
		for _, part := range strings.Split(inner, "|") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			names = append(names, rex.Sym{Name: part})
		}
		if len(names) == 0 {
			p.Model, p.Mixed = rex.Epsilon{}, true
		} else {
			p.Model, p.Mixed = rex.Star{X: rex.Alt{Items: names}}, true
		}
	default:
		e, err := rex.Parse(model)
		if err != nil {
			return &ParseError{Line: line, Msg: fmt.Sprintf("element %q: %v", name, err)}
		}
		p.Model = e
	}
	a, err := rex.Build(p.Model)
	if err != nil {
		return &ParseError{Line: line, Msg: fmt.Sprintf("element %q: %v", name, err)}
	}
	p.Auto = a
	s.elems[name] = p
	s.order = append(s.order, name)
	return nil
}

// inferRoot picks the unique element that is declared but never referenced
// by another element's content model.
func (s *Schema) inferRoot() (string, error) {
	referenced := make(map[string]bool)
	for _, p := range s.elems {
		for _, sym := range rex.Symbols(p.Model) {
			if sym != p.Name {
				referenced[sym] = true
			}
		}
	}
	var roots []string
	for name := range s.elems {
		if !referenced[name] {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	switch len(roots) {
	case 1:
		return roots[0], nil
	case 0:
		return "", fmt.Errorf("dtd: cannot infer root element: every element is referenced (cyclic schema); use ParseWithRoot")
	default:
		return "", fmt.Errorf("dtd: cannot infer root element: candidates %v; use ParseWithRoot", roots)
	}
}

// Production returns the production for the element name, or the synthetic
// document production for DocumentVar. ok is false for undeclared names.
func (s *Schema) Production(name string) (*Production, bool) {
	if name == DocumentVar {
		return s.doc, true
	}
	p, ok := s.elems[name]
	return p, ok
}

// Elements returns the declared element names in declaration order.
func (s *Schema) Elements() []string {
	return append([]string(nil), s.order...)
}

// Ord reports the order constraint Ord_elem(first, then) for the content
// model of elem (vacuously true for undeclared elements or symbols).
func (s *Schema) Ord(elem, first, then string) bool {
	p, ok := s.Production(elem)
	if !ok {
		return true
	}
	return p.Auto.Ord(first, then)
}

// AtMostOnce reports whether child occurs at most once among the children
// of elem in every valid document.
func (s *Schema) AtMostOnce(elem, child string) bool {
	p, ok := s.Production(elem)
	if !ok {
		return false
	}
	return p.Auto.AtMostOnce(child)
}

// String renders the schema as DTD text.
func (s *Schema) String() string {
	var b strings.Builder
	for _, name := range s.order {
		p := s.elems[name]
		model := p.Model.String()
		switch {
		case p.Mixed && model == "EMPTY":
			model = "(#PCDATA)"
		case p.Mixed:
			model = "(#PCDATA|" + strings.TrimSuffix(strings.TrimPrefix(model, "("), ")*") + ")*"
		case model != "EMPTY":
			model = "(" + strings.TrimSuffix(strings.TrimPrefix(model, "("), ")") + ")"
		}
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, model)
	}
	return b.String()
}

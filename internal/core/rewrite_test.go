package core

import (
	"strings"
	"testing"

	"flux/internal/dtd"
	"flux/internal/xq"
)

// The DTDs used throughout the paper's examples.
const (
	weakBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	// Section 1: the XML Query Use Cases schema with title strictly
	// before author.
	useCaseBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
	// Example 4.4, second DTD: authors strictly before titles.
	authorFirstDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (author*,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	// Example 4.5 DTD without order constraints.
	q1WeakDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|publisher|year)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`
	// Example 4.5 DTD with year and publisher before title.
	q1OrderedDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (publisher,year,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`
	// Example 4.6 DTD (unordered bib children).
	joinDTD = `
<!ELEMENT bib (book|article)*>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`
	// Example 4.6, second DTD: books strictly before articles.
	joinOrderedDTD = `
<!ELEMENT bib (book*,article*)>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`
)

// XMP Q2 already in normal form (Example 4.4).
const q2Text = `<results>
{ for $bib in $ROOT/bib return
  { for $b in $bib/book return
    { for $t in $b/title return
      { for $a in $b/author return
        <result> {$t} {$a} </result> } } } }
</results>`

func schedule(t *testing.T, dtdText, query string) Flux {
	t.Helper()
	schema := dtd.MustParse(dtdText)
	f, err := Schedule(schema, xq.MustParse(query))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return f
}

// TestRewriteExample44Weak reproduces F2 of Example 4.4: with no order
// constraint between title and author, the title/author loops are delayed
// by on-first past(author,title).
func TestRewriteExample44Weak(t *testing.T) {
	f := schedule(t, weakBibDTD, q2Text)
	got := Print(f)
	want := `{ ps $ROOT:` +
		` on-first past() return <results>;` +
		` on bib as $bib return` +
		` { ps $bib: on book as $b return` +
		` { ps $b: on-first past(author,title) return` +
		` { for $t in $b/title return { for $a in $b/author return <result> { $t } { $a } </result> } } } };` +
		` on-first past(bib) return </results> }`
	if got != want {
		t.Errorf("F2 mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestRewriteExample44Ordered reproduces F2' of Example 4.4: with
// Ord_book(author,title) the titles stream and only authors buffer.
func TestRewriteExample44Ordered(t *testing.T) {
	f := schedule(t, authorFirstDTD, q2Text)
	got := Print(f)
	want := `{ ps $ROOT:` +
		` on-first past() return <results>;` +
		` on bib as $bib return` +
		` { ps $bib: on book as $b return` +
		` { ps $b: on title as $t return` +
		` { ps $t: on-first past(*) return` +
		` { for $a in $b/author return <result> { $t } { $a } </result> } } } };` +
		` on-first past(bib) return </results> }`
	if got != want {
		t.Errorf("F2' mismatch:\n got %s\nwant %s", got, want)
	}
}

// XMP Q1 (Example 4.2 / 4.5).
const q1Text = `<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/year > 1991
  return <book> {$b/year} {$b/title} </book> }
</bib>`

// TestRewriteExample45Weak reproduces F1 of Example 4.5.
func TestRewriteExample45Weak(t *testing.T) {
	f := schedule(t, q1WeakDTD, q1Text)
	got := Print(f)
	chi := `$b/publisher = 'Addison-Wesley' and $b/year > 1991`
	want := `{ ps $ROOT:` +
		` on-first past() return <bib>;` +
		` on bib as $bib return` +
		` { ps $bib: on book as $b return` +
		` { ps $b:` +
		` on-first past(publisher,year) return { if ` + chi + ` then <book> };` +
		` on-first past(publisher,year) return { for $year in $b/year return { if ` + chi + ` then { $year } } };` +
		` on-first past(publisher,title,year) return { for $title in $b/title return { if ` + chi + ` then { $title } } };` +
		` on-first past(publisher,title,year) return { if ` + chi + ` then </book> } } };` +
		` on-first past(bib) return </bib> }`
	if got != want {
		t.Errorf("F1 mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestRewriteExample45Ordered reproduces F1' of Example 4.5: with
// publisher and year before title, titles stream through an on handler.
func TestRewriteExample45Ordered(t *testing.T) {
	f := schedule(t, q1OrderedDTD, q1Text)
	got := Print(f)
	if !strings.Contains(got, `on title as $title return { if `) {
		t.Errorf("F1' should stream titles with an on handler:\n%s", got)
	}
	if strings.Contains(got, `past(publisher,title,year) return { for $title`) {
		t.Errorf("F1' still buffers titles:\n%s", got)
	}
}

// Q3 of Example 4.6 (join of article authors with book editors).
const q3Text = `<results>
{ for $bib in $ROOT/bib return
  { for $article in $bib/article return
    { for $book in $bib/book
      where $article/author = $book/editor return
      { <result> {$article/author} </result> } }}}
</results>`

// TestRewriteExample46Unordered reproduces F3: with no order between book
// and article everything under bib is delayed to on-first
// past(article,book).
func TestRewriteExample46Unordered(t *testing.T) {
	f := schedule(t, joinDTD, q3Text)
	got := Print(f)
	if !strings.Contains(got, `{ ps $bib: on-first past(article,book) return`) {
		t.Errorf("F3 must delay on past(article,book):\n%s", got)
	}
	if strings.Contains(got, "on article as") {
		t.Errorf("F3 must not stream articles under the weak DTD:\n%s", got)
	}
}

// TestRewriteExample46Ordered reproduces F3': with (book*,article*) the
// articles stream and only the authors of the current article buffer.
func TestRewriteExample46Ordered(t *testing.T) {
	f := schedule(t, joinOrderedDTD, q3Text)
	got := Print(f)
	if !strings.Contains(got, `on article as $article return { ps $article: on-first past(author) return`) {
		t.Errorf("F3' must stream articles and delay only on past(author):\n%s", got)
	}
}

// TestRewriteIntroQ3 reproduces the Section 1 example: XMP Q3 under the
// weak and the use-case DTDs.
func TestRewriteIntroQ3(t *testing.T) {
	q3 := `<results>
{ for $b in $ROOT/bib/book return
<result> { $b/title } { $b/author } </result> }
</results>`
	// Weak DTD: titles stream, authors buffer until past(author,title)
	// (normalization turns {$b/author} into a loop; its on-first set must
	// cover title via H-threading and author via the dependency).
	weak := Print(schedule(t, weakBibDTD, q3))
	if !strings.Contains(weak, `on title as $title return { $title }`) {
		t.Errorf("intro/weak: titles must stream:\n%s", weak)
	}
	if !strings.Contains(weak, `on-first past(author,title) return { for $author in $b/author return { $author } }`) {
		t.Errorf("intro/weak: authors must wait for past(author,title):\n%s", weak)
	}
	// Use-case DTD: both stream; no buffering handlers inside book except
	// trailing strings.
	strong := Print(schedule(t, useCaseBibDTD, q3))
	if !strings.Contains(strong, `on title as $title return { $title }`) ||
		!strings.Contains(strong, `on author as $author return { $author }`) {
		t.Errorf("intro/strong: both title and author must stream:\n%s", strong)
	}
}

// TestRewriteExample34 covers the two cases of Figure 2 lines 5–11 for
// queries that output the stream variable's whole subtree: a simple
// dependency-free copy stays a simple expression (line 8, stream-copy),
// while anything with dependencies falls back to the Example 3.4 form
// { ps $ROOT: on-first past(*) return α } (line 10).
func TestRewriteExample34(t *testing.T) {
	f := schedule(t, weakBibDTD, `<all> { $ROOT } </all>`)
	if got, want := Print(f), `<all> { $ROOT } </all>`; got != want {
		t.Errorf("stream-copy = %s, want simple %s", got, want)
	}
	f2 := schedule(t, weakBibDTD, `{ if exists $ROOT/bib then head } { $ROOT }`)
	got := Print(f2)
	want := `{ ps $ROOT: on-first past(*) return { if exists $ROOT/bib then head } { $ROOT } }`
	if got != want {
		t.Errorf("fallback = %s, want %s", got, want)
	}
}

func TestRewriteRejectsOpenQueries(t *testing.T) {
	schema := dtd.MustParse(weakBibDTD)
	_, err := Schedule(schema, xq.MustParse(`{ $zz/bib }`))
	if err == nil {
		t.Fatal("Schedule accepted a query with free variable $zz")
	}
}

func TestRewriteEmptyQuery(t *testing.T) {
	f := schedule(t, weakBibDTD, ``)
	if _, ok := f.(*PS); !ok {
		t.Errorf("empty query = %T (%s), want PS", f, Print(f))
	}
}

func TestHSymb(t *testing.T) {
	h := []Handler{
		&On{Name: "bib", Var: "$b", Body: &Simple{Expr: &xq.Str{S: "x"}}},
		&OnFirst{Past: []string{"a", "c"}},
	}
	got := strings.Join(HSymb(h), ",")
	if got != "a,bib,c" {
		t.Errorf("HSymb = %s, want a,bib,c", got)
	}
}

func TestDependencies(t *testing.T) {
	e := xq.MustParse(`{ for $t in $b/title return { if $b/year/x = 1 then s } } { if $c/q = 2 then u }`)
	got := strings.Join(Dependencies("$b", e), ",")
	if got != "title,year" {
		t.Errorf("Dependencies($b) = %s, want title,year", got)
	}
	if got := Dependencies("$c", e); len(got) != 1 || got[0] != "q" {
		t.Errorf("Dependencies($c) = %v, want [q]", got)
	}
}

func TestIsSimple(t *testing.T) {
	cases := []struct {
		in     string
		simple bool
		u      string
	}{
		{`<a> { $x } </a> { if $x/b = 5 then <b>5</b> }`, true, "$x"}, // paper's example needs the condition after {$x}
		{`{ $x } { $y }`, false, ""},
		{`plain`, true, ""},
		{`{ if $z/a = 1 then s } { $x }`, true, "$x"},
		{`{ if $x/a = 1 then s } { $x }`, false, ""}, // condition on $u before {$u}
		{`{ if $x/a = 1 then { $x } }`, false, ""},   // condition on $u in β
		{`{ for $t in $x/a return { $t } }`, false, ""},
	}
	for _, c := range cases {
		u, ok := IsSimple(xq.MustParse(c.in))
		if ok != c.simple || u != c.u {
			t.Errorf("IsSimple(%q) = (%q,%v), want (%q,%v)", c.in, u, ok, c.u, c.simple)
		}
	}
}

func TestMaximalXQ(t *testing.T) {
	f := schedule(t, weakBibDTD, q2Text)
	maxes := MaximalXQ(f)
	// F2 has three maximal XQuery⁻ subexpressions: <results>, the big
	// for-loop, and </results>.
	if len(maxes) != 3 {
		var parts []string
		for _, m := range maxes {
			parts = append(parts, xq.Print(m))
		}
		t.Errorf("MaximalXQ = %d exprs, want 3: %v", len(maxes), parts)
	}
}

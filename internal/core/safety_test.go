package core

import (
	"strings"
	"testing"

	"flux/internal/dtd"
	"flux/internal/xq"
)

// TestSafetySection1Counterexample reproduces the unsafe query discussed
// in Section 1: with <!ELEMENT book ((title|author)*,price)>, firing
// on-first past(title,author) and then reading $book/price is unsafe,
// because price arrives only later.
func TestSafetySection1Counterexample(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT bib (book)*>
<!ELEMENT book ((title|author)*,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`)
	unsafe := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "bib", Var: "$bib", Body: &PS{Var: "$bib", Handlers: []Handler{
			&On{Name: "book", Var: "$book", Body: &PS{Var: "$book", Handlers: []Handler{
				&OnFirst{Past: []string{"author", "title"},
					Body: xq.MustParse(`{ for $a in $book/price return { $a } }`)},
			}}},
		}}},
	}}
	err := CheckSafety(schema, unsafe)
	if err == nil {
		t.Fatal("unsafe query accepted")
	}
	if !strings.Contains(err.Error(), "price") {
		t.Errorf("error should mention price: %v", err)
	}

	// The same handler with price in the past-set is safe.
	safe := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "bib", Var: "$bib", Body: &PS{Var: "$bib", Handlers: []Handler{
			&On{Name: "book", Var: "$book", Body: &PS{Var: "$book", Handlers: []Handler{
				&OnFirst{Past: []string{"author", "price", "title"},
					Body: xq.MustParse(`{ for $a in $book/price return { $a } }`)},
			}}},
		}}},
	}}
	if err := CheckSafety(schema, safe); err != nil {
		t.Errorf("safe query rejected: %v", err)
	}
}

// TestSafetyOrderCoverage: a dependency not in S is still covered when an
// order constraint places it before some element of S.
func TestSafetyOrderCoverage(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT r (a,b,c)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`)
	q := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "r", Var: "$r", Body: &PS{Var: "$r", Handlers: []Handler{
			// depends on a, but past(b) implies a is past since Ord(a,b).
			&OnFirst{Past: []string{"b"},
				Body: xq.MustParse(`{ for $x in $r/a return { $x } }`)},
		}}},
	}}
	if err := CheckSafety(schema, q); err != nil {
		t.Errorf("order-covered query rejected: %v", err)
	}
}

// TestSafetyOnHandlerOrder: on-a handlers with a dependency b require
// Ord(b, a).
func TestSafetyOnHandlerOrder(t *testing.T) {
	mk := func(dtdText string) error {
		schema := dtd.MustParse(dtdText)
		q := &PS{Var: "$ROOT", Handlers: []Handler{
			&On{Name: "r", Var: "$r", Body: &PS{Var: "$r", Handlers: []Handler{
				&On{Name: "b", Var: "$t", Body: &PS{Var: "$t", Handlers: []Handler{
					&OnFirst{Past: []string{}, Star: true,
						Body: xq.MustParse(`{ for $x in $r/a return { $x } }`)},
				}}},
			}}},
		}}
		return CheckSafety(schema, q)
	}
	// a before b: streaming on b while referring to $r/a is safe.
	if err := mk(`
<!ELEMENT root (r)*>
<!ELEMENT r (a*,b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`); err != nil {
		t.Errorf("ordered case rejected: %v", err)
	}
	// interleaved: unsafe.
	if err := mk(`
<!ELEMENT root (r)*>
<!ELEMENT r (a|b)*>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`); err == nil {
		t.Error("interleaved case accepted")
	}
}

// TestSafetySimpleHandlerOutputsOwnVar: a simple on-handler body may
// output only its own variable (Definition 3.6, condition 2).
func TestSafetySimpleHandlerOutputsOwnVar(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT r (a)*>
<!ELEMENT a (#PCDATA)>
`)
	bad := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "r", Var: "$r", Body: &PS{Var: "$r", Handlers: []Handler{
			&On{Name: "a", Var: "$x", Body: &Simple{Expr: xq.MustParse(`{ $r }`)}},
		}}},
	}}
	if err := CheckSafety(schema, bad); err == nil {
		t.Error("simple handler outputting foreign variable accepted")
	}
	good := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "r", Var: "$r", Body: &PS{Var: "$r", Handlers: []Handler{
			&On{Name: "a", Var: "$x", Body: &Simple{Expr: xq.MustParse(`<w> { $x } </w>`)}},
		}}},
	}}
	if err := CheckSafety(schema, good); err != nil {
		t.Errorf("stream-copy handler rejected: %v", err)
	}
}

// TestSafetyOnFirstForeignSubtreeOutput: an on-first handler outputting an
// ancestor's subtree is unsafe (the ancestor is not fully read).
func TestSafetyOnFirstForeignSubtreeOutput(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT r (a)*>
<!ELEMENT a (b)*>
<!ELEMENT b (#PCDATA)>
`)
	bad := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "r", Var: "$r", Body: &PS{Var: "$r", Handlers: []Handler{
			&On{Name: "a", Var: "$x", Body: &PS{Var: "$x", Handlers: []Handler{
				&OnFirst{Past: []string{"b"}, Body: xq.MustParse(`{ $r }`)},
			}}},
		}}},
	}}
	if err := CheckSafety(schema, bad); err == nil {
		t.Error("on-first outputting ancestor subtree accepted")
	}
}

// TestScheduledQueriesAreSafe: every query the scheduler emits must pass
// the checker (Theorem 4.3); exercised across all example queries/DTDs.
func TestScheduledQueriesAreSafe(t *testing.T) {
	cases := []struct{ dtdText, query string }{
		{weakBibDTD, q2Text},
		{authorFirstDTD, q2Text},
		{q1WeakDTD, q1Text},
		{q1OrderedDTD, q1Text},
		{joinDTD, q3Text},
		{joinOrderedDTD, q3Text},
		{useCaseBibDTD, `<r> { for $b in $ROOT/bib/book return { $b } } </r>`},
	}
	for i, c := range cases {
		schema := dtd.MustParse(c.dtdText)
		f, err := Schedule(schema, xq.MustParse(c.query))
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if err := CheckSafety(schema, f); err != nil {
			t.Errorf("case %d: scheduled query unsafe: %v\n%s", i, err, Print(f))
		}
	}
}

func TestFreeVarsFlux(t *testing.T) {
	f := &PS{Var: "$ROOT", Handlers: []Handler{
		&On{Name: "bib", Var: "$b", Body: &Simple{Expr: xq.MustParse(`{ $b } { $w }`)}},
	}}
	got := strings.Join(FreeVars(f), ",")
	if got != "$ROOT,$w" {
		t.Errorf("FreeVars = %s, want $ROOT,$w", got)
	}
}

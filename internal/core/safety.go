package core

import (
	"fmt"

	"flux/internal/dtd"
	"flux/internal/xq"
)

// SafetyError reports a violation of Definition 3.6.
type SafetyError struct {
	Var string // the process-stream variable whose scope is unsafe
	Msg string
}

// Error implements error.
func (e *SafetyError) Error() string {
	return fmt.Sprintf("core: unsafe FluX query at ps %s: %s", e.Var, e.Msg)
}

// CheckSafety verifies that f is a safe FluX query w.r.t. the schema
// (Definition 3.6). Safety guarantees that every XQuery⁻ subexpression is
// executed only after all buffered paths it refers to have been fully read
// from the stream.
func CheckSafety(schema *dtd.Schema, f Flux) error {
	c := &safetyChecker{schema: schema}
	binding := map[string]string{xq.RootVar: dtd.DocumentVar}
	return c.check(f, binding)
}

type safetyChecker struct {
	schema *dtd.Schema
}

func (c *safetyChecker) check(f Flux, binding map[string]string) error {
	ps, ok := f.(*PS)
	if !ok {
		return nil // a bare simple expression has no handler obligations
	}
	y := ps.Var
	elem, bound := binding[y]
	if !bound {
		return &SafetyError{Var: y, Msg: "unbound process-stream variable"}
	}
	prod, okProd := c.schema.Production(elem)
	if !okProd {
		return &SafetyError{Var: y, Msg: fmt.Sprintf("no production for element %q", elem)}
	}

	// covered reports the Definition 3.6 test "b ∈ S or ∃a∈S: Ord_$y(b,a)";
	// symbols that cannot occur among $y's children are vacuously covered.
	covered := func(b string, S []string) bool {
		if !prod.Auto.HasSymbol(b) {
			return true
		}
		for _, s := range S {
			if s == b {
				return true
			}
		}
		for _, a := range S {
			if prod.Auto.Ord(b, a) {
				return true
			}
		}
		return false
	}

	for _, h := range ps.Handlers {
		switch h := h.(type) {
		case *OnFirst:
			past := h.Past
			if h.Star {
				past = prod.Auto.Symbols()
			}
			// Condition 1, first bullet.
			for _, b := range Dependencies(y, h.Body) {
				if !covered(b, past) {
					return &SafetyError{Var: y, Msg: fmt.Sprintf(
						"on-first past(%v): dependency %q not covered", past, b)}
				}
			}
			// Condition 1, second bullet: whole-subtree outputs of FREE
			// variables need the full scope read, and only $y itself may
			// be output (outputs of loop-bound variables range over
			// buffered nodes and are covered by the first bullet).
			free := make(map[string]bool)
			for _, v := range xq.FreeVars(h.Body) {
				free[v] = true
			}
			for _, z := range varsOutput(h.Body) {
				if !free[z] {
					continue
				}
				if z != y {
					return &SafetyError{Var: y, Msg: fmt.Sprintf(
						"on-first handler outputs %s, which is not the stream variable %s", z, y)}
				}
				for _, b := range prod.Auto.Symbols() {
					if !covered(b, past) {
						return &SafetyError{Var: y, Msg: fmt.Sprintf(
							"on-first past(%v) outputs {%s} but symbol %q may still arrive", past, z, b)}
					}
				}
			}
		case *On:
			for _, alpha := range MaximalXQ(h.Body) {
				// Condition 2, first bullet.
				for _, b := range Dependencies(y, alpha) {
					if !prod.Auto.Ord(b, h.Name) {
						return &SafetyError{Var: y, Msg: fmt.Sprintf(
							"on %s handler depends on %q, which is not ordered before %q", h.Name, b, h.Name)}
					}
				}
			}
			// Condition 2, second bullet: a simple handler body may output
			// only the handler's own variable.
			if s, okSimple := h.Body.(*Simple); okSimple {
				for _, u := range varsOutput(s.Expr) {
					if u != h.Var {
						return &SafetyError{Var: y, Msg: fmt.Sprintf(
							"simple on %s handler outputs %s, want only %s", h.Name, u, h.Var)}
					}
				}
			}
			if err := c.check(h.Body, extendBinding(binding, h.Var, h.Name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// varsOutput returns the variables z with {$z} or {$z/π} occurring in e,
// sorted.
func varsOutput(e xq.Expr) []string {
	set := make(map[string]bool)
	xq.Walk(e, func(x xq.Expr) {
		switch x := x.(type) {
		case *xq.VarOut:
			set[x.Var] = true
		case *xq.PathOut:
			set[x.Var] = true
		}
	})
	return sortedSet(set)
}

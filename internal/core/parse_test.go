package core

import (
	"strings"
	"testing"

	"flux/internal/dtd"
	"flux/internal/xq"
)

// TestParseFluxPaperQueries parses the FluX queries written out in the
// paper and checks the round trip through Print.
func TestParseFluxPaperQueries(t *testing.T) {
	queries := []string{
		// Section 1, streaming version under the use-case DTD.
		`<results>
{ process-stream $ROOT: on bib as $bib return
  { process-stream $bib: on book as $book return
    <result>
    { process-stream $book:
      on title as $t return {$t};
      on author as $a return {$a} }
    </result> } }
</results>`,
		// Example 5.1 (the buffer-tree example).
		`{ ps $ROOT: on bib as $bib return
  { ps $bib: on article as $article return
    { ps $article: on-first past(author) return
      { for $book in $bib/book return
        { for $p in $book/publisher return
          { if $article/author = $book/publisher/ceo
            then {$p} } } } } } }`,
	}
	for i, in := range queries {
		// The Section 1 query has surrounding strings around a ps
		// expression, which Definition 3.3 allows (s { ps ... } s'); our
		// parser handles the pure forms, so strip to the ps for case 0.
		if i == 0 {
			start := strings.Index(in, "{ process-stream $ROOT:")
			in = in[start : strings.LastIndex(in, "}")+1]
			// The inner "<result> {ps...} </result>" wrapper also uses the
			// s {ps} s' form; skip full parse of case 0 beyond this check.
			if _, err := ParseFlux(in); err == nil {
				t.Errorf("case 0: expected s{ps}s' wrapper to be rejected by the pure-form parser")
			}
			continue
		}
		f, err := ParseFlux(in)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		printed := Print(f)
		back, err := ParseFlux(printed)
		if err != nil {
			t.Fatalf("case %d: reparse of %q: %v", i, printed, err)
		}
		if Print(back) != printed {
			t.Errorf("case %d: print/parse not a fixpoint:\n  %s\n  %s", i, printed, Print(back))
		}
	}
}

// TestParseFluxRoundTripScheduled: every scheduler output parses back to
// an identical FluX query.
func TestParseFluxRoundTripScheduled(t *testing.T) {
	cases := []struct{ dtdText, query string }{
		{weakBibDTD, q2Text},
		{authorFirstDTD, q2Text},
		{q1WeakDTD, q1Text},
		{joinDTD, q3Text},
		{joinOrderedDTD, q3Text},
	}
	for i, c := range cases {
		schema := dtd.MustParse(c.dtdText)
		f, err := Schedule(schema, xq.MustParse(c.query))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		printed := Print(f)
		back, err := ParseFlux(printed)
		if err != nil {
			t.Fatalf("case %d: ParseFlux(%q): %v", i, printed, err)
		}
		if got := Print(back); got != printed {
			t.Errorf("case %d: round trip differs:\n  %s\n  %s", i, printed, got)
		}
		// Reparsed queries must still be safe.
		if err := CheckSafety(schema, back); err != nil {
			t.Errorf("case %d: reparsed query unsafe: %v", i, err)
		}
	}
}

func TestParseFluxPastStar(t *testing.T) {
	f := MustParseFlux(`{ ps $ROOT: on-first past(*) return hello }`)
	ps := f.(*PS)
	if len(ps.Handlers) != 1 {
		t.Fatalf("handlers = %d", len(ps.Handlers))
	}
	of := ps.Handlers[0].(*OnFirst)
	if !of.Star {
		t.Error("past(*) not marked Star")
	}
}

func TestParseFluxSimpleBody(t *testing.T) {
	f := MustParseFlux(`{ ps $r: on a as $x return <w> { $x } </w>; on-first past(a) return tail }`)
	ps := f.(*PS)
	on := ps.Handlers[0].(*On)
	if _, ok := on.Body.(*Simple); !ok {
		t.Errorf("on body = %T, want Simple", on.Body)
	}
	of := ps.Handlers[1].(*OnFirst)
	if len(of.Past) != 1 || of.Past[0] != "a" {
		t.Errorf("past = %v", of.Past)
	}
}

func TestParseFluxErrors(t *testing.T) {
	bad := []string{
		`{ ps $x }`,                              // no ':'
		`{ ps $x: }`,                             // no handler
		`{ ps $x: on a return y }`,               // missing 'as'
		`{ ps $x: on-first past return y }`,      // missing '('
		`{ ps $x: on-first past(a) y }`,          // missing 'return'
		`{ ps $x: on a as $y return {$z} {$w} }`, // body not simple
		`{ ps $x: on a as $y return { ps $y: on-first past() return q }`, // missing '}'
	}
	for _, in := range bad {
		if _, err := ParseFlux(in); err == nil {
			t.Errorf("ParseFlux(%q) succeeded, want error", in)
		}
	}
}

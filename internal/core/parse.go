package core

import (
	"fmt"
	"strings"

	"flux/internal/xq"
)

// FluxParseError reports a syntax error in FluX surface syntax.
type FluxParseError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *FluxParseError) Error() string {
	return fmt.Sprintf("core: flux parse error at offset %d: %s", e.Pos, e.Msg)
}

// ParseFlux parses the paper's FluX surface syntax, e.g.
//
//	{ ps $ROOT:
//	    on-first past() return <results>;
//	    on bib as $bib return
//	      { ps $bib: on book as $b return { $b } };
//	    on-first past(bib) return </results> }
//
// "process-stream" is accepted as a synonym for "ps", and past(*) for the
// full symbol set. Everything that is not a process-stream expression
// parses as an XQuery⁻ simple expression. The result is not
// safety-checked; use CheckSafety.
func ParseFlux(input string) (Flux, error) {
	p := &fluxParser{in: input}
	f, err := p.parseFlux(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("trailing input")
	}
	return f, nil
}

// MustParseFlux is ParseFlux for known-good queries.
func MustParseFlux(input string) Flux {
	f, err := ParseFlux(input)
	if err != nil {
		panic(err)
	}
	return f
}

type fluxParser struct {
	in  string
	pos int
}

func (p *fluxParser) errf(format string, args ...any) error {
	return &FluxParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *fluxParser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peekPS reports whether a "{ ps $x:" / "{ process-stream $x:" form starts
// at the cursor (after whitespace).
func (p *fluxParser) peekPS() bool {
	i := p.pos
	skip := func() {
		for i < len(p.in) {
			switch p.in[i] {
			case ' ', '\t', '\n', '\r':
				i++
			default:
				return
			}
		}
	}
	skip()
	if i >= len(p.in) || p.in[i] != '{' {
		return false
	}
	i++
	skip()
	rest := p.in[i:]
	return strings.HasPrefix(rest, "ps ") || strings.HasPrefix(rest, "ps\t") ||
		strings.HasPrefix(rest, "ps\n") || strings.HasPrefix(rest, "process-stream ") ||
		strings.HasPrefix(rest, "ps $") || strings.HasPrefix(rest, "process-stream\t")
}

// parseFlux parses either a process-stream expression or a simple XQuery⁻
// expression. If inHandler is true, a simple expression extends to the
// next top-level ';' or the enclosing '}'.
func (p *fluxParser) parseFlux(inHandler bool) (Flux, error) {
	if p.peekPS() {
		return p.parsePS()
	}
	// Simple expression: take text up to the handler delimiter, balancing
	// braces, then delegate to the XQuery⁻ parser.
	start := p.pos
	depth := 0
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '{':
			depth++
		case '}':
			if depth == 0 {
				goto done
			}
			depth--
		case ';':
			if depth == 0 && inHandler {
				goto done
			}
		}
		p.pos++
	}
done:
	text := p.in[start:p.pos]
	e, err := xq.Parse(text)
	if err != nil {
		return nil, err
	}
	if u, ok := IsSimple(e); !ok {
		return nil, p.errf("expression is not simple (at most one {$u} with conditions only after it): %s", strings.TrimSpace(text))
	} else {
		_ = u
	}
	return &Simple{Expr: e}, nil
}

func (p *fluxParser) parsePS() (Flux, error) {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '{' {
		return nil, p.errf("expected '{'")
	}
	p.pos++
	p.skipSpace()
	if !p.eatWord("ps") && !p.eatWord("process-stream") {
		return nil, p.errf("expected 'ps' or 'process-stream'")
	}
	p.skipSpace()
	v, err := p.variable()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != ':' {
		return nil, p.errf("expected ':' after %s", v)
	}
	p.pos++
	ps := &PS{Var: v}
	for {
		h, err := p.parseHandler()
		if err != nil {
			return nil, err
		}
		ps.Handlers = append(ps.Handlers, h)
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == ';' {
			p.pos++
			continue
		}
		break
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '}' {
		return nil, p.errf("expected '}' or ';' after handler")
	}
	p.pos++
	return ps, nil
}

func (p *fluxParser) parseHandler() (Handler, error) {
	p.skipSpace()
	switch {
	case p.eatWord("on-first"):
		p.skipSpace()
		if !p.eatWord("past") {
			return nil, p.errf("expected 'past' after on-first")
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != '(' {
			return nil, p.errf("expected '(' after past")
		}
		p.pos++
		h := &OnFirst{}
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == '*' {
			h.Star = true
			p.pos++
		} else {
			for {
				p.skipSpace()
				if p.pos < len(p.in) && p.in[p.pos] == ')' {
					break
				}
				w := p.word()
				if w == "" {
					return nil, p.errf("expected element name in past(...)")
				}
				p.pos += len(w)
				h.Past = append(h.Past, w)
				p.skipSpace()
				if p.pos < len(p.in) && p.in[p.pos] == ',' {
					p.pos++
				}
			}
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, p.errf("expected ')' in past(...)")
		}
		p.pos++
		p.skipSpace()
		if !p.eatWord("return") {
			return nil, p.errf("expected 'return' in on-first handler")
		}
		body, err := p.handlerXQ()
		if err != nil {
			return nil, err
		}
		h.Body = body
		sortStrings(h.Past)
		return h, nil
	case p.eatWord("on"):
		p.skipSpace()
		name := p.word()
		if name == "" {
			return nil, p.errf("expected element name after 'on'")
		}
		p.pos += len(name)
		p.skipSpace()
		if !p.eatWord("as") {
			return nil, p.errf("expected 'as' in on handler")
		}
		p.skipSpace()
		v, err := p.variable()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.eatWord("return") {
			return nil, p.errf("expected 'return' in on handler")
		}
		body, err := p.parseFlux(true)
		if err != nil {
			return nil, err
		}
		return &On{Name: name, Var: v, Body: body}, nil
	default:
		return nil, p.errf("expected 'on' or 'on-first'")
	}
}

// handlerXQ parses the XQuery⁻ body of an on-first handler: up to the next
// top-level ';' or the enclosing '}'.
func (p *fluxParser) handlerXQ() (xq.Expr, error) {
	start := p.pos
	depth := 0
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '{':
			depth++
		case '}':
			if depth == 0 {
				goto done
			}
			depth--
		case ';':
			if depth == 0 {
				goto done
			}
		}
		p.pos++
	}
done:
	return xq.Parse(p.in[start:p.pos])
}

func (p *fluxParser) word() string {
	i := p.pos
	for i < len(p.in) {
		b := p.in[i]
		if b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_' || b == '-' {
			i++
			continue
		}
		break
	}
	return p.in[p.pos:i]
}

func (p *fluxParser) eatWord(w string) bool {
	if p.word() == w {
		p.pos += len(w)
		return true
	}
	return false
}

func (p *fluxParser) variable() (string, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '$' {
		return "", p.errf("expected variable")
	}
	start := p.pos
	p.pos++
	w := p.word()
	if w == "" {
		return "", p.errf("expected variable name after '$'")
	}
	p.pos += len(w)
	return p.in[start:p.pos], nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

package core

import (
	"fmt"
	"sort"

	"flux/internal/dtd"
	"flux/internal/xq"
)

// RewriteError reports a query the scheduler cannot handle.
type RewriteError struct {
	Msg string
}

// Error implements error.
func (e *RewriteError) Error() string { return "core: rewrite: " + e.Msg }

// Schedule is the full compilation pipeline from a parsed XQuery⁻ query to
// a safe FluX query: Figure 1 normalization, Section 7 cardinality-based
// loop merging, then the Figure 2 rewrite algorithm. The result is checked
// safe (Definition 3.6) before being returned.
func Schedule(schema *dtd.Schema, q xq.Expr) (Flux, error) {
	n := xq.Normalize(q)
	n = xq.MergeLoops(n, schema)
	f, err := Rewrite(schema, n)
	if err != nil {
		return nil, err
	}
	if err := CheckSafety(schema, f); err != nil {
		return nil, fmt.Errorf("core: internal error: rewrite produced an unsafe query: %w", err)
	}
	return f, nil
}

// Rewrite implements "rewrite($ROOT, ∅, Q)" of Figure 2 for a normalized
// query Q. Free variables other than $ROOT are rejected.
func Rewrite(schema *dtd.Schema, q xq.Expr) (Flux, error) {
	if !xq.IsNormalForm(q) {
		return nil, &RewriteError{Msg: "query is not in normal form"}
	}
	for _, v := range xq.FreeVars(q) {
		if v != xq.RootVar {
			return nil, &RewriteError{Msg: fmt.Sprintf("free variable %s (only %s may be free)", v, xq.RootVar)}
		}
	}
	rw := &rewriter{schema: schema}
	binding := map[string]string{xq.RootVar: dtd.DocumentVar}
	return rw.rewrite(xq.RootVar, nil, q, binding)
}

type rewriter struct {
	schema *dtd.Schema
}

// ordSched is the order test ¬Ord$x(b, a) is applied to on line 30 of the
// algorithm. It refines the declarative Ord for scheduling purposes:
//
//   - if b cannot occur among $x's children at all, nothing must be
//     delayed for it (vacuously ordered);
//   - if the loop step a is not a child of $x (the loop ranges over
//     another variable's scope, line 31 case), no streaming order can be
//     established, so b stays in X and forces an on-first handler — this
//     matches the paper's Example 4.6 result on-first past(author) for the
//     article scope;
//   - otherwise the Glushkov order constraint decides.
func (rw *rewriter) ordSched(elem, b, a string) bool {
	prod, ok := rw.schema.Production(elem)
	if !ok {
		return false
	}
	if !prod.Auto.HasSymbol(b) {
		return true
	}
	if !prod.Auto.HasSymbol(a) {
		return false
	}
	return prod.Auto.Ord(b, a)
}

// pastStar returns symb($y) for the element bound to a variable.
func (rw *rewriter) pastStar(elem string) []string {
	prod, ok := rw.schema.Production(elem)
	if !ok {
		return nil
	}
	return append([]string(nil), prod.Auto.Symbols()...)
}

func onFirst(past []string, star bool, body xq.Expr) *OnFirst {
	sorted := append([]string(nil), past...)
	sort.Strings(sorted)
	return &OnFirst{Past: sorted, Star: star, Body: body}
}

// rewrite is the function of Figure 2. parentVar is $x, H the inherited
// handler symbols, beta the normalized expression, binding the
// variable→element map for schema lookups.
func (rw *rewriter) rewrite(parentVar string, H []string, beta xq.Expr, binding map[string]string) (Flux, error) {
	x := parentVar
	elem := binding[x]

	// Line 5: {$x} ⪯ β — the parent's own subtree is output somewhere.
	if xq.UsesVar(beta, x) {
		if _, simple := IsSimple(beta); simple && len(Dependencies(x, beta)) == 0 {
			return &Simple{Expr: beta}, nil // line 8
		}
		return &PS{Var: x, Handlers: []Handler{ // line 10
			onFirst(rw.pastStar(elem), true, beta),
		}}, nil
	}

	// Line 14: sequence β1 β2.
	if items := xq.Items(beta); len(items) >= 2 {
		first, err := rw.rewrite(x, H, items[0], binding)
		if err != nil {
			return nil, err
		}
		ps1, ok := first.(*PS)
		if !ok {
			return nil, &RewriteError{Msg: fmt.Sprintf("sequence head did not rewrite to a process-stream expression: %s", xq.Print(items[0]))}
		}
		h2 := union(H, HSymb(ps1.Handlers))
		rest, err := rw.rewrite(x, h2, xq.NewSeq(items[1:]...), binding)
		if err != nil {
			return nil, err
		}
		ps2, ok := rest.(*PS)
		if !ok {
			return nil, &RewriteError{Msg: fmt.Sprintf("sequence tail did not rewrite to a process-stream expression: %s", xq.Print(xq.NewSeq(items[1:]...)))}
		}
		return &PS{Var: x, Handlers: append(append([]Handler{}, ps1.Handlers...), ps2.Handlers...)}, nil
	}

	// Line 22: simple β (a string, conditional string, or empty).
	if _, simple := IsSimple(beta); simple {
		past := union(Dependencies(x, beta), H)
		return &PS{Var: x, Handlers: []Handler{onFirst(past, false, beta)}}, nil
	}

	// Line 27: β = { for $y in $z/a return α }.
	if f, ok := beta.(*xq.For); ok {
		if len(f.Path) != 1 || f.Where != nil {
			return nil, &RewriteError{Msg: "for-loop not normalized: " + xq.Print(f)}
		}
		a := f.Path[0]
		// Line 30.
		var X []string
		for _, b := range union(Dependencies(x, f.Body), H) {
			if !rw.ordSched(elem, b, a) {
				X = append(X, b)
			}
		}
		switch {
		case f.Src != x: // line 31
			return &PS{Var: x, Handlers: []Handler{onFirst(X, false, beta)}}, nil
		case len(X) != 0: // line 33
			return &PS{Var: x, Handlers: []Handler{onFirst(union(X, []string{a}), false, beta)}}, nil
		default: // lines 36–39
			inner := extendBinding(binding, f.Var, a)
			body, err := rw.rewrite(f.Var, nil, f.Body, inner)
			if err != nil {
				return nil, err
			}
			return &PS{Var: x, Handlers: []Handler{&On{Name: a, Var: f.Var, Body: body}}}, nil
		}
	}

	return nil, &RewriteError{Msg: fmt.Sprintf("unexpected expression form %T: %s", beta, xq.Print(beta))}
}

func extendBinding(binding map[string]string, v, elem string) map[string]string {
	out := make(map[string]string, len(binding)+1)
	for k, val := range binding {
		out[k] = val
	}
	out[v] = elem
	return out
}

// union merges sorted string sets.
func union(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	return sortedSet(set)
}

// Package core implements the FluX query language and the paper's primary
// contribution: the schema-based scheduling algorithm that rewrites
// normalized XQuery⁻ queries into equivalent, safe FluX queries that
// minimize buffering (paper Sections 3.2, 3.3, and 4.2).
package core

import (
	"fmt"
	"sort"
	"strings"

	"flux/internal/xq"
)

// Flux is a FluX expression (Definition 3.3): either a simple XQuery⁻
// expression or a process-stream expression.
type Flux interface {
	isFlux()
}

// Simple wraps a simple XQuery⁻ expression (Section 3.2): a sequence
// α β γ of fixed strings and conditional strings with at most one
// {$u} / {if χ then {$u}} in the middle.
type Simple struct {
	Expr xq.Expr
}

// PS is a process-stream expression { ps Var: ζ } with an ordered handler
// list ζ.
type PS struct {
	Var      string
	Handlers []Handler
}

func (*Simple) isFlux() {}
func (*PS) isFlux()     {}

// Handler is an event handler in a process-stream expression.
type Handler interface {
	isHandler()
}

// OnFirst is "on-first past(S) return α": α is executed the first time
// the DTD implies no symbol of Past can occur anymore among the children
// of the stream variable (or at the closing tag if that never happens
// earlier). Star records that the set was written past(*) = symb($y).
type OnFirst struct {
	Past []string // sorted
	Star bool
	Body xq.Expr
}

// On is "on a as $x return Q": Q runs for each child named Name, with Var
// bound to it.
type On struct {
	Name string
	Var  string
	Body Flux
}

func (*OnFirst) isHandler() {}
func (*On) isHandler()      {}

// HSymb returns hsymb(ζ), the set of handler symbols of a handler list
// (Section 4.2), sorted.
func HSymb(handlers []Handler) []string {
	set := make(map[string]bool)
	for _, h := range handlers {
		switch h := h.(type) {
		case *On:
			set[h.Name] = true
		case *OnFirst:
			for _, s := range h.Past {
				set[s] = true
			}
		}
	}
	return sortedSet(set)
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Dependencies computes dependencies($y, α) (Section 3.3): the first steps
// of condition paths rooted at $y plus the first steps of for-loops
// ranging over $y, anywhere inside α. The result is sorted.
func Dependencies(y string, e xq.Expr) []string {
	set := make(map[string]bool)
	for _, cp := range xq.ExprCondPaths(e) {
		if cp.Var == y && len(cp.Path) > 0 {
			set[cp.Path[0]] = true
		}
	}
	xq.Walk(e, func(x xq.Expr) {
		if f, ok := x.(*xq.For); ok && f.Src == y && len(f.Path) > 0 {
			set[f.Path[0]] = true
		}
	})
	return sortedSet(set)
}

// IsSimple reports whether e is a simple expression per Section 3.2,
// assuming e is in normal form (conditional bodies are strings or {$u}).
// When simple with a {$u} / {if χ then {$u}} part, the bound variable u is
// returned.
func IsSimple(e xq.Expr) (u string, ok bool) {
	items := xq.Items(e)
	sawVar := false
	for _, it := range items {
		var this string // variable output by this item, if any
		switch it := it.(type) {
		case *xq.Str:
		case *xq.VarOut:
			this = it.Var
		case *xq.If:
			switch t := it.Then.(type) {
			case *xq.Str:
			case *xq.VarOut:
				this = t.Var
			default:
				return "", false
			}
		default:
			return "", false
		}
		if this != "" {
			if sawVar {
				return "", false // at most one {$u}
			}
			sawVar = true
			u = this
		}
	}
	if !sawVar {
		return "", true
	}
	// "no atomic condition that occurs in αβ contains the variable $u":
	// check every condition up to and including the {$u} item.
	for _, it := range items {
		var cond xq.Cond
		var isU bool
		switch it := it.(type) {
		case *xq.If:
			cond = it.Cond
			if v, okv := it.Then.(*xq.VarOut); okv && v.Var == u {
				isU = true
			}
		case *xq.VarOut:
			isU = it.Var == u
		}
		for _, cp := range xq.CondPaths(cond, nil) {
			if cp.Var == u {
				return "", false
			}
		}
		if isU {
			break
		}
	}
	return u, true
}

// MaximalXQ collects the maximal XQuery⁻ subexpressions of a FluX
// expression (Section 3.2; see Example 3.5).
func MaximalXQ(f Flux) []xq.Expr {
	var out []xq.Expr
	var walk func(Flux)
	walk = func(f Flux) {
		switch f := f.(type) {
		case *Simple:
			out = append(out, f.Expr)
		case *PS:
			for _, h := range f.Handlers {
				switch h := h.(type) {
				case *OnFirst:
					out = append(out, h.Body)
				case *On:
					walk(h.Body)
				}
			}
		}
	}
	walk(f)
	return out
}

// FreeVars returns the free variables of a FluX expression (Section 3.2),
// sorted.
func FreeVars(f Flux) []string {
	set := make(map[string]bool)
	var walk func(Flux)
	walk = func(f Flux) {
		switch f := f.(type) {
		case *Simple:
			for _, v := range xq.FreeVars(f.Expr) {
				set[v] = true
			}
		case *PS:
			set[f.Var] = true
			for _, h := range f.Handlers {
				switch h := h.(type) {
				case *OnFirst:
					for _, v := range xq.FreeVars(h.Body) {
						set[v] = true
					}
				case *On:
					inner := FreeVars(h.Body)
					for _, v := range inner {
						if v != h.Var {
							set[v] = true
						}
					}
				}
			}
		}
	}
	walk(f)
	return sortedSet(set)
}

// Print renders a FluX expression in the paper's surface syntax.
func Print(f Flux) string {
	var b strings.Builder
	printFlux(&b, f)
	return b.String()
}

func printFlux(b *strings.Builder, f Flux) {
	switch f := f.(type) {
	case *Simple:
		b.WriteString(xq.Print(f.Expr))
	case *PS:
		fmt.Fprintf(b, "{ ps %s:", f.Var)
		for i, h := range f.Handlers {
			if i > 0 {
				b.WriteByte(';')
			}
			switch h := h.(type) {
			case *OnFirst:
				if h.Star {
					b.WriteString(" on-first past(*) return ")
				} else {
					fmt.Fprintf(b, " on-first past(%s) return ", strings.Join(h.Past, ","))
				}
				b.WriteString(xq.Print(h.Body))
			case *On:
				fmt.Fprintf(b, " on %s as %s return ", h.Name, h.Var)
				printFlux(b, h.Body)
			}
		}
		b.WriteString(" }")
	}
}

// Indent renders a FluX expression with one handler per line, for tool
// output.
func Indent(f Flux) string {
	var b strings.Builder
	indentFlux(&b, f, 0)
	return b.String()
}

func indentFlux(b *strings.Builder, f Flux, depth int) {
	pad := strings.Repeat("  ", depth)
	switch f := f.(type) {
	case *Simple:
		b.WriteString(pad + xq.Print(f.Expr) + "\n")
	case *PS:
		fmt.Fprintf(b, "%s{ ps %s:\n", pad, f.Var)
		for i, h := range f.Handlers {
			sep := ";"
			if i == len(f.Handlers)-1 {
				sep = ""
			}
			switch h := h.(type) {
			case *OnFirst:
				set := "*"
				if !h.Star {
					set = strings.Join(h.Past, ",")
				}
				fmt.Fprintf(b, "%s  on-first past(%s) return %s%s\n", pad, set, xq.Print(h.Body), sep)
			case *On:
				fmt.Fprintf(b, "%s  on %s as %s return\n", pad, h.Name, h.Var)
				indentFlux(b, h.Body, depth+2)
				if sep == ";" {
					b.WriteString(pad + "  ;\n")
				}
			}
		}
		b.WriteString(pad + "}\n")
	}
}

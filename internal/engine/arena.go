package engine

import "unsafe"

const (
	// nodeBlockSize is the chunk size of the buffer-node slab: captured
	// subtrees allocate nodes a block at a time instead of one heap
	// object per element, which matters because buffering queries (Q20's
	// return {$p}) create one node per captured element and text run.
	nodeBlockSize = 256

	// textBlockSize is the chunk size of the captured-text slab.
	textBlockSize = 4 << 10
)

// newNode hands out one zeroed bufNode from the engine's chunked slab.
// Nodes are never recycled individually: a block becomes garbage as a
// whole once every tree referencing it is dropped, so discarding a
// buffered subtree still frees its memory — the slab only batches the
// allocations, it does not extend lifetimes beyond a block's slack.
func (e *engine) newNode() *bufNode {
	if len(e.nodeBlock) == 0 {
		e.nodeBlock = make([]bufNode, nodeBlockSize)
	}
	n := &e.nodeBlock[0]
	e.nodeBlock = e.nodeBlock[1:]
	return n
}

// carveText copies borrowed text bytes into the engine's text slab and
// returns them as a string, batching what would otherwise be one string
// allocation per captured text event. Safety invariant for the
// unsafe.String: the carved range [off, off+n) is never written again —
// later carves only append past it, and a full block is replaced, never
// rewound — so the returned string is as immutable as any other.
func (e *engine) carveText(data []byte) string {
	n := len(data)
	if n == 0 {
		return ""
	}
	if n >= textBlockSize/4 {
		// Big values get their own allocation rather than hogging blocks.
		return string(data)
	}
	if len(e.textBlock)+n > cap(e.textBlock) {
		e.textBlock = make([]byte, 0, textBlockSize)
	}
	off := len(e.textBlock)
	e.textBlock = append(e.textBlock, data...)
	return unsafe.String(&e.textBlock[off], n)
}

package engine

import (
	"fmt"
	"sort"
	"strings"
)

// BufferReport is the static buffering analysis of a compiled plan: which
// paths will be buffered, within which variable's scope, and whether the
// whole query streams. It answers, before reading any data, the question
// Figure 4's memory column answers empirically.
type BufferReport struct {
	// Streaming is true when no scope buffers anything: the query runs
	// with zero buffered bytes on every conforming document.
	Streaming bool
	// Scopes lists the buffering scopes.
	Scopes []ScopeBuffers
	// Signature lists the plan's projected paths, rooted at the
	// document: every stream position the compiled plan observes. A
	// trailing " •" marks a position whose whole subtree is consumed
	// (stream copies, fully buffered nodes, value-comparison watcher
	// targets); other entries are tags-only spine positions. Subtrees
	// no listed path can match are skipped by selective fan-out.
	Signature []string
	// PredictedPeakBytes is a static, deterministic estimate of the
	// plan's peak buffer consumption in nominal bytes: 0 for fully
	// streaming plans, small for tags-only per-instance buffers, large
	// for document-lifetime full-subtree buffers. It is comparable
	// across plans — the Executor's batch budget and the Catalog's
	// admission control sum it — but is not a promise about any
	// particular document.
	PredictedPeakBytes int64
}

// ScopeBuffers describes one buffering scope.
type ScopeBuffers struct {
	// Var is the process-stream variable owning the buffer.
	Var string
	// Elem is the element the variable binds to.
	Elem string
	// Paths are the buffered paths relative to Var; a trailing " •" marks
	// full-subtree buffering (the paper's marked nodes), otherwise only
	// element tags are kept.
	Paths []string
	// PerInstance is true when the buffer is freed at the end of each
	// element instance (constant memory when the element repeats under a
	// streamed ancestor), false only for the document scope.
	PerInstance bool
}

// Report computes the plan's static buffering analysis.
func (p *Plan) Report() BufferReport {
	var rep BufferReport
	var walk func(s *scopeSpec)
	walk = func(s *scopeSpec) {
		if s.bufTree != nil {
			sb := ScopeBuffers{
				Var:         s.Var,
				Elem:        s.Elem,
				PerInstance: s.Var != "$ROOT",
			}
			collectBufPaths(s.bufTree, nil, &sb.Paths)
			sort.Strings(sb.Paths)
			rep.Scopes = append(rep.Scopes, sb)
		}
		for _, h := range s.handlers {
			if h.child != nil {
				walk(h.child)
			}
		}
	}
	walk(p.root)
	rep.Streaming = len(rep.Scopes) == 0
	rep.Signature = p.sig.paths()
	rep.PredictedPeakBytes = p.predicted
	return rep
}

func collectBufPaths(n *bufTreeNode, prefix []string, out *[]string) {
	if n.mark {
		path := strings.Join(prefix, "/")
		if path == "" {
			path = "."
		}
		*out = append(*out, path+" •")
		return
	}
	if len(n.kids) == 0 && len(prefix) > 0 {
		*out = append(*out, strings.Join(prefix, "/"))
		return
	}
	for name, kid := range n.kids {
		collectBufPaths(kid, append(prefix, name), out)
	}
}

// String renders the report for human consumption.
func (r BufferReport) String() string {
	if r.Streaming {
		return "fully streaming: no buffers allocated\n"
	}
	var b strings.Builder
	for _, s := range r.Scopes {
		lifetime := "freed per instance"
		if !s.PerInstance {
			lifetime = "lives until end of stream"
		}
		fmt.Fprintf(&b, "buffer %s (element %s, %s):\n", s.Var, s.Elem, lifetime)
		for _, p := range s.Paths {
			fmt.Fprintf(&b, "  %s\n", p)
		}
	}
	return b.String()
}

package engine

import (
	"context"
	"io"

	"flux/internal/sax"
)

// RunSelective executes a compiled plan with signature-pruned scanning:
// the plan's projected-path signature is handed to the batched scanner
// as a prune trie (sax.Options.Prune), so subtrees the plan provably
// ignores are consumed raw at the byte level — no tokenization, no
// event delivery — and reach the engine as single SkipSubtree steps.
// This is the streaming counterpart of the DOM projection baseline's
// tree pruning, applied one layer earlier than a routing multiplexer
// could: the skipped bytes never become tokens at all.
//
// Output and statistics are identical to Run; the difference is
// validation coverage — the interior of a pruned subtree is not checked
// against the DTD or for tag well-formedness (its own tag is still
// validated by the parent's content model), the same trade
// mux.NewSelective makes for shared scans. Use ValidateDocument when
// full-document validation is required.
func RunSelective(plan *Plan, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	return RunSelectiveContext(context.Background(), plan, r, w, opt)
}

// RunSelectiveContext is RunSelective with cancellation, with the same
// contract as RunContext.
func RunSelectiveContext(ctx context.Context, plan *Plan, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	if plan.Signature() == nil {
		return RunContext(ctx, plan, r, w, opt)
	}
	s := NewSession(plan, w)
	if err := s.Begin(); err != nil {
		return s.Abort(), err
	}
	opt.Prune = plan.Prune()
	if err := sax.ScanBatchedContext(ctx, r, s, opt); err != nil {
		return s.Abort(), err
	}
	return s.Finish()
}

package engine

import (
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/xq"
)

// TestExample51BufferTrees reproduces the paper's Example 5.1 / Figure 3:
// for the hand-written FluX query selecting publishers whose CEO authored
// articles, the buffer trees are
//
//	$bib:     book → publisher •   (ceo pruned below the marked publisher)
//	$article: author •
func TestExample51BufferTrees(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT bib (book*,article*)>
<!ELEMENT book (publisher*)>
<!ELEMENT publisher (name?,ceo?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT ceo (#PCDATA)>
<!ELEMENT article (author*)>
<!ELEMENT author (#PCDATA)>
`)
	// The paper's query, as a FluX expression (it is hand-written in the
	// paper, not produced by rewrite).
	q := &core.PS{Var: "$ROOT", Handlers: []core.Handler{
		&core.On{Name: "bib", Var: "$bib", Body: &core.PS{Var: "$bib", Handlers: []core.Handler{
			&core.On{Name: "article", Var: "$article", Body: &core.PS{Var: "$article", Handlers: []core.Handler{
				&core.OnFirst{Past: []string{"author"}, Body: xq.MustParse(
					`{ for $book in $bib/book return
					   { for $p in $book/publisher return
					     { if $article/author = $book/publisher/ceo then {$p} } } }`)},
			}}},
		}}},
	}}
	if err := core.CheckSafety(schema, q); err != nil {
		t.Fatalf("Example 5.1 query should be safe: %v", err)
	}
	plan, err := Compile(schema, q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	desc := plan.Describe()
	// $bib buffers book (tags) and publisher (marked); ceo must be pruned
	// below the marked publisher node.
	if !strings.Contains(desc, "publisher •") {
		t.Errorf("publisher not marked:\n%s", desc)
	}
	if strings.Contains(desc, "ceo") {
		t.Errorf("ceo should be pruned below marked publisher (Figure 3):\n%s", desc)
	}
	if !strings.Contains(desc, "author •") {
		t.Errorf("author not marked in $article tree:\n%s", desc)
	}

	// End to end, against the paper's description: books buffer while
	// articles stream; the CEO join works off the buffered publishers.
	doc := `<bib>` +
		`<book><publisher><name>P1</name><ceo>Ann</ceo></publisher></book>` +
		`<book><publisher><name>P2</name><ceo>Bob</ceo></publisher><publisher><name>P3</name></publisher></book>` +
		`<article><author>Bob</author></article>` +
		`<article><author>Zoe</author></article>` +
		`</bib>`
	var sb strings.Builder
	if _, err := RunString(plan, doc, &sb, saxOpt); err != nil {
		t.Fatal(err)
	}
	// The condition navigates $book/publisher/ceo, i.e. existentially over
	// ALL of the book's publishers, so both publishers of the matching
	// book are selected (XQuery general-comparison semantics).
	want := `<publisher><name>P2</name><ceo>Bob</ceo></publisher>` +
		`<publisher><name>P3</name></publisher>`
	if sb.String() != want {
		t.Errorf("result = %q, want %q", sb.String(), want)
	}
}

// TestExample52Evaluators mirrors the paper's Example 5.2 walk-through
// (query F3' with editor instead of publisher): book data buffers in
// buffer $bib, article authors buffer per article, and the join executes
// at ofp(author) of each article.
func TestExample52Evaluators(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT bib (book*,article*)>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`)
	f, err := core.Schedule(schema, xq.MustParse(`<results>
{ for $bib in $ROOT/bib return
  { for $article in $bib/article return
    { for $book in $bib/book
      where $article/author = $book/editor return
      { <result> {$article/author} </result> } }}}
</results>`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(schema, f)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"editor •", "author •", "on article as"} {
		if !strings.Contains(desc, want) {
			t.Errorf("plan missing %q:\n%s", want, desc)
		}
	}
	// Memory behaviour: with many articles, only one article's authors are
	// held beyond the (constant) book buffer.
	var doc strings.Builder
	doc.WriteString("<bib>")
	doc.WriteString("<book><title>B</title><editor>Smith</editor><publisher>P</publisher></book>")
	for i := 0; i < 50; i++ {
		doc.WriteString("<article><title>A</title><author>Smith</author><journal>J</journal></article>")
	}
	doc.WriteString("</bib>")
	var out strings.Builder
	st, err := RunString(plan, doc.String(), &out, saxOpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakBufferBytes > 120 {
		t.Errorf("peak buffer %d; authors of all articles must not accumulate", st.PeakBufferBytes)
	}
	if !strings.Contains(out.String(), "<result>") {
		t.Errorf("join produced no results: %q", out.String())
	}
}

package engine

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"flux/internal/dom"
	"flux/internal/dtd"
	"flux/internal/sax"
	"flux/internal/xq"
)

// Stats reports the resources a query execution used.
type Stats struct {
	// PeakBufferBytes is the maximum number of bytes held in main-memory
	// buffers at any point (tag bytes for buffered elements plus text
	// bytes), the quantity Figure 4 reports as memory consumption.
	PeakBufferBytes int64
	// OutputBytes is the number of result bytes produced.
	OutputBytes int64
	// Tokens is the number of SAX events processed.
	Tokens int64
}

// RunError reports a runtime failure (invalid input or an engine
// invariant violation).
type RunError struct {
	Msg string
}

// Error implements error.
func (e *RunError) Error() string { return "engine: run: " + e.Msg }

// Run executes a compiled plan over the XML stream read from r, writing
// the query result to w. It is the single-query convenience around
// Session; multi-query shared scans build on Session directly.
func Run(plan *Plan, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	return RunContext(context.Background(), plan, r, w, opt)
}

// RunContext is Run with cancellation: once ctx is done the scan stops
// at the next event batch and the error is ctx.Err(). On any failure the
// returned Stats cover the stream prefix processed before the failure.
//
// The scan is batched (sax.ScanBatchedContext): events arrive in pooled
// batches with arena-backed text payloads, which the session unpacks
// without allocating a string per text node.
func RunContext(ctx context.Context, plan *Plan, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	s := NewSession(plan, w)
	if err := s.Begin(); err != nil {
		return s.Abort(), err
	}
	if err := sax.ScanBatchedContext(ctx, r, s, opt); err != nil {
		return s.Abort(), err
	}
	return s.Finish()
}

// RunString executes a plan over an in-memory document.
func RunString(plan *Plan, doc string, w io.Writer, opt sax.Options) (Stats, error) {
	return Run(plan, strings.NewReader(doc), w, opt)
}

// scopeRT is one runtime instance of a process-stream scope.
type scopeRT struct {
	spec    *scopeSpec
	bufRoot *bufNode // non-nil iff the scope buffers data
	flags   []bool   // one per watcher
	fired   []bool   // one per on-first handler
	bytes   int64    // bytes charged to this scope's buffer
}

// capRef is a full-capture target: events under the current element are
// appended below node, charged to owner.
type capRef struct {
	node  *bufNode
	owner *scopeRT
}

// fillPos is a tags-only buffer-tree position.
type fillPos struct {
	tree   *bufTreeNode
	parent *bufNode
	owner  *scopeRT
}

// watchPos is a partially matched watcher path.
type watchPos struct {
	scope   *scopeRT  // watcher belongs to a scope...
	simple  *simpleRT // ...or to a simple handler instance
	specIdx int
	pathIdx int
}

func (wp watchPos) spec() *watcherSpec {
	if wp.simple != nil {
		return wp.simple.spec.watchers[wp.specIdx]
	}
	return wp.scope.spec.watchers[wp.specIdx]
}

func (wp watchPos) flags() []bool {
	if wp.simple != nil {
		return wp.simple.flags
	}
	return wp.scope.flags
}

// valueAcc accumulates the string value of a matched watcher path
// occurrence.
type valueAcc struct {
	spec  *watcherSpec
	flags []bool
	idx   int
	sb    strings.Builder
}

// simpleRT is one firing of a simple on-handler.
type simpleRT struct {
	spec  *simpleSpec
	flags []bool
}

// deferredExec is an on-first body whose scan position is after the
// firing on-handler; it runs when the current child's subtree ends.
type deferredExec struct {
	h  *handlerSpec
	rt *scopeRT
}

// frame is the per-open-element runtime state.
type frame struct {
	prod  *dtd.Production
	state int
	name  string

	// One-entry transition memo: the last (state, child name) step taken
	// from this frame, with the resolved child production. Sibling runs of
	// the same element name skip the automaton and schema map lookups.
	memoName string
	memoFrom int
	memoNext int
	memoProd *dtd.Production

	scope     *scopeRT // set if this element opened a scope
	prevInst  *scopeRT // saved instance for the scope variable
	scopeVar  string
	copying   bool
	simple    *simpleRT
	captures  []capRef
	fills     []fillPos
	watch     []watchPos
	accs      []*valueAcc // active accumulators (inherited + own)
	ownAccs   []*valueAcc // finalize at this element's end
	deferred  []deferredExec
	skipDepth bool // purely structural frame with no sinks
}

type engine struct {
	plan      *Plan
	w         *sax.Writer
	frames    []frame
	inst      map[string]*scopeRT
	curBytes  int64
	peakBytes int64
	tokens    int64

	// Condition-evaluation scratch. Join conditions run once per buffered
	// item pair, so the node and value sequences they materialize are
	// collected into these reusable slices instead of fresh allocations.
	// Only one condition evaluates at a time (exec programs never nest
	// through the event loop), so a single set per engine suffices.
	selScratch []*bufNode
	constRHS   [1]cmpVal

	// Per-event cache of materialized comparison-operand values (see
	// operandValues). Buffers only mutate between incoming events, so
	// entries are valid for one event: navValsGen records the e.tokens
	// value the entries belong to, and a lookup under a different token
	// count clears the cache instead of trusting stale roots. Values
	// live in cmpArena so a join burst costs one growing allocation, not
	// one slice per operand/root pair.
	navVals    map[navValsKey][]cmpVal
	navValsGen int64
	cmpArena   []cmpVal

	// Per-operand one-entry memo in front of navVals, indexed by
	// navOperand.idx: a join's loop-invariant side resolves to the same
	// root on every inner iteration, so it hits two pointer compares here
	// instead of a hashed map lookup per pair. An entry evicted within
	// one generation spills to navVals (the cycling-roots join pattern);
	// opMemoInMap avoids re-spilling entries the map already holds.
	// Rolled with navValsGen.
	opMemoRoot  []*bufNode
	nodeBlock   []bufNode // chunked slab for captured-subtree nodes (arena.go)
	textBlock   []byte    // chunked slab for captured text strings (arena.go)
	opMemoVals  [][]cmpVal
	opMemoInMap []bool
}

// navValsKey identifies one materialized operand value list: the
// compiled operand and the buffer root it was resolved against.
type navValsKey struct {
	op   *navOperand
	root *bufNode
}

func (e *engine) account(owner *scopeRT, delta int64) {
	owner.bytes += delta
	e.curBytes += delta
	if e.curBytes > e.peakBytes {
		e.peakBytes = e.curBytes
	}
}

func (e *engine) newScopeRT(spec *scopeSpec, elemName string) *scopeRT {
	rt := &scopeRT{
		spec:  spec,
		flags: make([]bool, len(spec.watchers)),
		fired: make([]bool, len(spec.handlers)),
	}
	if spec.bufTree != nil {
		rt.bufRoot = e.newNode()
		rt.bufRoot.Name = elemName
		e.account(rt, int64(2*len(elemName)+5))
	}
	return rt
}

// attachScope wires a new scope instance into its frame: buffer root,
// watcher positions, instance registration, and i=0 on-first firing.
func (e *engine) attachScope(f *frame, rt *scopeRT) error {
	f.scope = rt
	f.scopeVar = rt.spec.Var
	f.prevInst = e.inst[rt.spec.Var]
	e.inst[rt.spec.Var] = rt
	if rt.bufRoot != nil {
		if rt.spec.bufTree.mark {
			f.captures = append(f.captures, capRef{node: rt.bufRoot, owner: rt})
		} else {
			f.fills = append(f.fills, fillPos{tree: rt.spec.bufTree, parent: rt.bufRoot, owner: rt})
		}
	}
	for i := range rt.spec.watchers {
		f.watch = append(f.watch, watchPos{scope: rt, specIdx: i})
	}
	// i = 0 scan: on-first handlers whose Past set is already past in q0.
	// Mixed (#PCDATA) productions defer all on-first handlers to the
	// closing tag: character data may arrive at any point, so buffered
	// content is complete only then (the paper's "on-first past(*) delays
	// execution until the complete node has been seen").
	if rt.spec.prod.Mixed {
		return nil
	}
	for i, h := range rt.spec.handlers {
		if h.kind == hOnFirst && h.pastTable[rt.spec.prod.Auto.Start()] {
			rt.fired[i] = true
			if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
				return err
			}
		}
	}
	return nil
}

// pushFrame grows the frame stack by one and returns the new top, reset
// for reuse. Popped frames park beyond len with their inner slice
// capacity intact, so a sibling element at the same depth re-enters a
// warm frame and the per-element capture/watch appends stop allocating.
// Growth may move the backing array: callers must re-take any frame
// pointers they hold after calling.
func (e *engine) pushFrame() *frame {
	if n := len(e.frames); n < cap(e.frames) {
		e.frames = e.frames[:n+1]
	} else {
		e.frames = append(e.frames, frame{})
	}
	f := &e.frames[len(e.frames)-1]
	f.prod = nil
	f.state = 0
	f.name = ""
	f.memoName = "" // the memo is only valid for this frame's production
	f.memoProd = nil
	f.scope = nil
	f.prevInst = nil
	f.scopeVar = ""
	f.copying = false
	f.simple = nil
	f.captures = f.captures[:0]
	f.fills = f.fills[:0]
	f.watch = f.watch[:0]
	f.accs = f.accs[:0]
	f.ownAccs = f.ownAccs[:0]
	f.deferred = f.deferred[:0]
	f.skipDepth = false
	return f
}

// scrub zeroes a frame's pointer contents (including those parked beyond
// the lengths of its inner slices) while keeping the slice capacity, so a
// pooled engine pins no buffered subtrees between runs.
func (f *frame) scrub() {
	f.prod = nil
	f.state = 0
	f.name = ""
	f.memoName = ""
	f.memoFrom = 0
	f.memoNext = 0
	f.memoProd = nil
	f.scope = nil
	f.prevInst = nil
	f.scopeVar = ""
	f.copying = false
	f.simple = nil
	clear(f.captures[:cap(f.captures)])
	f.captures = f.captures[:0]
	clear(f.fills[:cap(f.fills)])
	f.fills = f.fills[:0]
	clear(f.watch[:cap(f.watch)])
	f.watch = f.watch[:0]
	clear(f.accs[:cap(f.accs)])
	f.accs = f.accs[:0]
	clear(f.ownAccs[:cap(f.ownAccs)])
	f.ownAccs = f.ownAccs[:0]
	clear(f.deferred[:cap(f.deferred)])
	f.deferred = f.deferred[:0]
	f.skipDepth = false
}

// begin sets up the synthetic document frame for the $ROOT scope.
func (e *engine) begin() error {
	docProd, _ := e.plan.schema.Production(dtd.DocumentVar)
	f := e.pushFrame()
	f.prod = docProd
	f.state = docProd.Auto.Start()
	f.name = dtd.DocumentVar
	rt := e.newScopeRT(e.plan.root, dtd.DocumentVar)
	return e.attachScope(f, rt)
}

// finish closes the document scope at end of stream.
func (e *engine) finish() error {
	f := &e.frames[0]
	if !f.prod.Auto.Accepting(f.state) {
		return &RunError{Msg: "document ended before the root element"}
	}
	return e.closeScope(f)
}

// StartElement implements sax.Handler.
func (e *engine) StartElement(name string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]

	// Validating automaton step (also drives punctuation), fused with the
	// child's production lookup. Repeated same-named siblings — the common
	// shape of XMark containers — hit the frame's one-entry memo and skip
	// both map lookups (the scanner interns names, so the string compare
	// is usually a pointer compare).
	prevState := top.state
	var next int
	var childProd *dtd.Production
	if name == top.memoName && prevState == top.memoFrom {
		next = top.memoNext
		childProd = top.memoProd
	} else {
		var ok bool
		next, ok = top.prod.Auto.Step(top.state, name)
		if !ok {
			return &RunError{Msg: fmt.Sprintf("element <%s> not allowed by content model %s of <%s>",
				name, top.prod.Model, top.name)}
		}
		childProd, ok = e.plan.schema.Production(name)
		if !ok {
			return &RunError{Msg: fmt.Sprintf("element <%s> is not declared in the DTD", name)}
		}
		top.memoName, top.memoFrom, top.memoNext, top.memoProd = name, prevState, next, childProd
	}
	top.state = next

	child := e.pushFrame()
	top = &e.frames[len(e.frames)-2] // pushFrame may have moved the stack
	child.prod = childProd
	child.state = childProd.Auto.Start()
	child.name = name

	// Inherited sinks.
	if top.copying {
		child.copying = true
		if err := e.w.StartElement(name); err != nil {
			return err
		}
	}
	for _, c := range top.captures {
		n := e.newNode()
		n.Name = name
		c.node.Kids = append(c.node.Kids, n)
		e.account(c.owner, int64(2*len(name)+5))
		child.captures = append(child.captures, capRef{node: n, owner: c.owner})
	}
	for _, fp := range top.fills {
		if kid, ok := fp.tree.kids[name]; ok {
			n := e.newNode()
			n.Name = name
			fp.parent.Kids = append(fp.parent.Kids, n)
			e.account(fp.owner, int64(2*len(name)+5))
			if kid.mark {
				child.captures = append(child.captures, capRef{node: n, owner: fp.owner})
			} else {
				child.fills = append(child.fills, fillPos{tree: kid, parent: n, owner: fp.owner})
			}
		}
	}
	child.accs = append(child.accs, top.accs...)
	for _, wp := range top.watch {
		spec := wp.spec()
		if spec.path[wp.pathIdx] != name {
			continue
		}
		if wp.pathIdx+1 == len(spec.path) {
			if spec.kind == wExists {
				// Existence is established by the opening tag: the scan at
				// index i sees label(t_i).
				wp.flags()[wp.specIdx] = true
				continue
			}
			acc := &valueAcc{spec: spec, flags: wp.flags(), idx: wp.specIdx}
			child.accs = append(child.accs, acc)
			child.ownAccs = append(child.ownAccs, acc)
		} else {
			child.watch = append(child.watch, watchPos{
				scope: wp.scope, simple: wp.simple, specIdx: wp.specIdx, pathIdx: wp.pathIdx + 1})
		}
	}

	// Scope handler scan for this child.
	if top.scope != nil {
		if err := e.scanHandlers(top.scope, name, prevState, next, child); err != nil {
			return err
		}
	}
	return nil
}

// scanHandlers performs the per-child scan of the handler list ζ in order
// (Section 3.2 semantics). The scan at index i is logically positioned
// after child t_i has been read completely, so a newly-true on-first
// handler normally defers to the end of the current child's subtree (its
// punctuation event may have been triggered by the very child whose
// content its body reads, e.g. the year loop of F1'). The one exception:
// an on-first handler that precedes a firing on-handler in ζ must emit its
// output before the on-handler streams the child, so it fires immediately
// (its buffers then reflect the children before t_i; see DESIGN.md).
func (e *engine) scanHandlers(rt *scopeRT, name string, prevState, newState int, child *frame) error {
	spec := rt.spec
	if spec.prod.Mixed {
		// All on-first handlers of mixed scopes fire at the closing tag.
		if i, ok := spec.onByName[name]; ok {
			return e.fireOn(spec.handlers[i], child, name)
		}
		return nil
	}
	onIdx, hasOn := spec.onByName[name]
	for i, h := range spec.handlers {
		switch h.kind {
		case hOnFirst:
			if rt.fired[i] || !h.pastTable[newState] || h.pastTable[prevState] {
				continue
			}
			rt.fired[i] = true
			if !hasOn || i > onIdx {
				child.deferred = append(child.deferred, deferredExec{h: h, rt: rt})
				continue
			}
			if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
				return err
			}
		case hOn:
			if !hasOn || i != onIdx {
				continue
			}
			if err := e.fireOn(h, child, name); err != nil {
				return err
			}
		}
	}
	return nil
}

// fireOn starts an on-handler on the child frame.
func (e *engine) fireOn(h *handlerSpec, child *frame, name string) error {
	if h.child != nil {
		crt := e.newScopeRT(h.child, name)
		return e.attachScope(child, crt)
	}
	return e.fireSimple(h.simple, child, name)
}

// fireSimple starts a simple on-handler on the child frame: emit the
// prefix, decide the guarded stream-copy, install the handler's watchers.
func (e *engine) fireSimple(sp *simpleSpec, child *frame, name string) error {
	rt := &simpleRT{spec: sp, flags: make([]bool, len(sp.watchers))}
	child.simple = rt
	env := &execEnv{eng: e, simple: rt}
	for _, p := range sp.prefix {
		if err := e.runExec(p, env); err != nil {
			return err
		}
	}
	if sp.copySub {
		doCopy := true
		if sp.copyCond != nil {
			var err error
			doCopy, err = e.evalCond(sp.copyCond, env)
			if err != nil {
				return err
			}
		}
		if doCopy {
			child.copying = true
			if err := e.w.StartElement(name); err != nil {
				return err
			}
		}
	}
	for i := range sp.watchers {
		child.watch = append(child.watch, watchPos{simple: rt, specIdx: i})
	}
	return nil
}

// Text implements sax.Handler.
func (e *engine) Text(data string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]
	if !top.prod.Mixed && top.prod.Name != dtd.DocumentVar && !allXMLSpace(data) {
		return &RunError{Msg: fmt.Sprintf("character data not allowed inside <%s>", top.name)}
	}
	if top.copying {
		if err := e.w.Text(data); err != nil {
			return err
		}
	}
	for _, c := range top.captures {
		if k := len(c.node.Kids); k > 0 && c.node.Kids[k-1].IsText() {
			c.node.Kids[k-1].Text += data
		} else {
			n := e.newNode()
			n.Text = data
			c.node.Kids = append(c.node.Kids, n)
		}
		e.account(c.owner, int64(len(data)))
	}
	for _, a := range top.accs {
		a.sb.WriteString(data)
	}
	return nil
}

// textBytes is Text for arena-backed payloads from the batched scan
// path. The token's bytes are only valid for the current batch window,
// so every retention point — buffer captures and value accumulators —
// copies here; the write-through path (w.TextBytes) and the whitespace
// check consume the bytes without copying.
func (e *engine) textBytes(data []byte) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]
	if !top.prod.Mixed && top.prod.Name != dtd.DocumentVar && !allXMLSpaceBytes(data) {
		return &RunError{Msg: fmt.Sprintf("character data not allowed inside <%s>", top.name)}
	}
	if top.copying {
		if err := e.w.TextBytes(data); err != nil {
			return err
		}
	}
	if len(top.captures) > 0 {
		txt := e.carveText(data) // one slab copy, shared by every capture
		for _, c := range top.captures {
			if k := len(c.node.Kids); k > 0 && c.node.Kids[k-1].IsText() {
				c.node.Kids[k-1].Text += txt
			} else {
				n := e.newNode()
				n.Text = txt
				c.node.Kids = append(c.node.Kids, n)
			}
			e.account(c.owner, int64(len(data)))
		}
	}
	for _, a := range top.accs {
		a.sb.Write(data)
	}
	return nil
}

// EndElement implements sax.Handler.
func (e *engine) EndElement(name string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]
	if !top.prod.Auto.Accepting(top.state) {
		return &RunError{Msg: fmt.Sprintf("element <%s> closed with incomplete content (model %s)",
			name, top.prod.Model)}
	}
	for _, a := range top.ownAccs {
		a.finalize()
	}
	if top.copying {
		if err := e.w.EndElement(name); err != nil {
			return err
		}
	}
	if top.simple != nil {
		env := &execEnv{eng: e, simple: top.simple}
		for _, p := range top.simple.spec.suffix {
			if err := e.runExec(p, env); err != nil {
				return err
			}
		}
	}
	// The child's own scope closes first (its end-of-scope on-first
	// handlers run), then the parent's handlers deferred to this child.
	if top.scope != nil {
		if err := e.closeScope(top); err != nil {
			return err
		}
	}
	for _, d := range top.deferred {
		if err := e.runExec(d.h.body, &execEnv{eng: e}); err != nil {
			return err
		}
	}
	e.frames = e.frames[:len(e.frames)-1]
	return nil
}

// closeScope performs the i = n+1 scan (unfired on-first handlers fire in
// list order) and frees the scope's buffer.
func (e *engine) closeScope(f *frame) error {
	rt := f.scope
	for i, h := range rt.spec.handlers {
		if h.kind == hOnFirst && !rt.fired[i] {
			rt.fired[i] = true
			if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
				return err
			}
		}
	}
	e.curBytes -= rt.bytes
	if f.prevInst != nil {
		e.inst[f.scopeVar] = f.prevInst
	} else {
		delete(e.inst, f.scopeVar)
	}
	return nil
}

func (a *valueAcc) finalize() {
	switch a.spec.kind {
	case wExists:
		a.flags[a.idx] = true
	case wCmp:
		v, ok := makeCmpVal(a.sb.String(), a.spec.scale)
		if !ok {
			return
		}
		rc := a.spec.rhsCmp
		l, r := &v, &rc
		if a.spec.flip {
			l, r = &rc, &v
		}
		if compareVals(l, a.spec.op, r) {
			a.flags[a.idx] = true
		}
	}
}

// --- Program execution over buffers -------------------------------------

// varBind is one loop-variable binding. Exec programs bind at most a
// handful of nested loop variables, so bindings live in a small slice
// scanned backwards (innermost first) instead of a map — a join loop
// binding its variable once per buffered item must not pay a map
// assign/delete per iteration.
type varBind struct {
	name string
	node *bufNode
}

type execEnv struct {
	eng    *engine
	vars   []varBind
	simple *simpleRT
}

// resolve maps a variable to the buffered node it denotes.
func (env *execEnv) resolve(v string) (*bufNode, error) {
	for i := len(env.vars) - 1; i >= 0; i-- {
		if env.vars[i].name == v {
			return env.vars[i].node, nil
		}
	}
	if rt, ok := env.eng.inst[v]; ok {
		if rt.bufRoot == nil {
			return nil, &RunError{Msg: "no buffer allocated for variable " + v}
		}
		return rt.bufRoot, nil
	}
	return nil, &RunError{Msg: "unbound variable " + v}
}

func (e *engine) runExec(p *execProg, env *execEnv) error {
	switch p.kind {
	case eSeq:
		for _, it := range p.items {
			if err := e.runExec(it, env); err != nil {
				return err
			}
		}
		return nil
	case eStr:
		return e.w.Raw(p.str)
	case eVarOut:
		n, err := env.resolve(p.varName)
		if err != nil {
			return err
		}
		if n.Name == dtd.DocumentVar {
			for _, k := range n.Kids {
				if err := k.Serialize(e.w); err != nil {
					return err
				}
			}
			return nil
		}
		return n.Serialize(e.w)
	case eFor:
		src, err := env.resolve(p.src)
		if err != nil {
			return err
		}
		for _, kid := range src.Kids {
			if kid.Name != p.step {
				continue
			}
			mark := len(env.vars)
			env.vars = append(env.vars, varBind{name: p.loopVar, node: kid})
			err := e.runExec(p.body, env)
			env.vars = env.vars[:mark]
			if err != nil {
				return err
			}
		}
		return nil
	case eIf:
		ok, err := e.evalCond(p.cond, env)
		if err != nil {
			return err
		}
		if ok {
			return e.runExec(p.then, env)
		}
		return nil
	default:
		return &RunError{Msg: "unknown exec node"}
	}
}

func (e *engine) evalCond(c *condSpec, env *execEnv) (bool, error) {
	switch c.kind {
	case cTrue:
		return true, nil
	case cAnd:
		l, err := e.evalCond(c.l, env)
		if err != nil || !l {
			return false, err
		}
		return e.evalCond(c.r, env)
	case cOr:
		l, err := e.evalCond(c.l, env)
		if err != nil || l {
			return l, err
		}
		return e.evalCond(c.r, env)
	case cNot:
		x, err := e.evalCond(c.x, env)
		return !x, err
	case cAtom:
		return e.evalAtom(c.atom, env)
	default:
		return false, &RunError{Msg: "unknown condition node"}
	}
}

func (e *engine) evalAtom(a *atomSpec, env *execEnv) (bool, error) {
	if a.flag != nil {
		var flags []bool
		if a.flag.scopeVar == "" {
			if env.simple == nil {
				return false, &RunError{Msg: "simple-handler flag read outside simple handler"}
			}
			flags = env.simple.flags
		} else {
			rt, ok := e.inst[a.flag.scopeVar]
			if !ok {
				return false, &RunError{Msg: "flag read for inactive scope " + a.flag.scopeVar}
			}
			flags = rt.flags
		}
		v := flags[a.flag.idx]
		if a.flag.neg {
			v = !v
		}
		return v, nil
	}
	if a.exists != nil {
		nodes, err := e.navNodes(a.exists, env)
		if err != nil {
			return false, err
		}
		found := len(nodes) > 0
		e.selScratch = nodes[:0]
		return found != a.neg, nil
	}
	// General comparisons are existential: the atom holds if any lhs/rhs
	// value pair satisfies the operator. Both sides are materialized
	// through the per-event operand cache (see operandValues): in a join
	// burst each distinct (operand, root) pair is navigated and parsed
	// once, so a pair comparison allocates nothing and never re-parses.
	if a.lhs.isConst && a.rhs.isConst {
		return dom.CompareValues(a.lhs.constVal, a.op, a.rhs.constVal), nil
	}
	rs, err := e.operandValues(a.rhs, env)
	if err != nil {
		return false, err
	}
	if a.lhs.isConst {
		l := a.lhs.constCmp
		for i := range rs {
			if compareVals(&l, a.op, &rs[i]) {
				return true, nil
			}
		}
		return false, nil
	}
	if len(rs) == 0 {
		return false, nil
	}
	ls, err := e.operandValues(a.lhs, env)
	if err != nil {
		return false, err
	}
	for i := range ls {
		for j := range rs {
			if compareVals(&ls[i], a.op, &rs[j]) {
				return true, nil
			}
		}
	}
	return false, nil
}

// cmpVal is one comparison operand value, parsed once: its string form
// and, when it has one, its numeric form. A scaled value (arithmetic in
// the query, e.g. euro conversion) is numeric by construction and
// formats its string form lazily — only the rare numeric-vs-non-numeric
// pair ever needs it.
type cmpVal struct {
	str    string
	num    float64
	isNum  bool
	scaled bool // str not yet formatted from num
}

// makeCmpVal parses one operand value. With a non-zero scale, values
// that do not parse as numbers contribute nothing under arithmetic and
// report ok == false.
func makeCmpVal(s string, scale float64) (cmpVal, bool) {
	f, isNum := dom.ParseNumber(s)
	if scale != 0 {
		if !isNum {
			return cmpVal{}, false
		}
		return cmpVal{num: scale * f, isNum: true, scaled: true}, true
	}
	return cmpVal{str: s, num: f, isNum: isNum}, true
}

// text returns the value's string form, formatting a scaled number on
// first use. FormatFloat with precision -1 round-trips exactly, so the
// numeric and string forms always agree.
func (v *cmpVal) text() string {
	if v.scaled {
		v.str = strconv.FormatFloat(v.num, 'f', -1, 64)
		v.scaled = false
	}
	return v.str
}

// compareVals applies the operator to a parsed pair: numerically when
// both sides are numbers, as strings otherwise — exactly
// dom.CompareValues, minus the per-pair re-parsing.
func compareVals(l *cmpVal, op xq.RelOp, r *cmpVal) bool {
	if l.isNum && r.isNum {
		return dom.CompareNumbers(l.num, op, r.num)
	}
	return dom.CompareValues(l.text(), op, r.text())
}

// navNodes selects the operand's node sequence into the engine's borrowed
// selection scratch. The caller must return the slice via
// e.selScratch = nodes[:0] before the next selection runs.
func (e *engine) navNodes(o *navOperand, env *execEnv) ([]*bufNode, error) {
	n, err := env.resolve(o.varName)
	if err != nil {
		return nil, err
	}
	out := e.selScratch[:0]
	e.selScratch = nil // nested selection must not share the backing array
	return n.Select(o.path, out), nil
}

// rhsValues materializes a comparison's right-hand value sequence. The
// results are cached per (operand, resolved root) for the duration of
// the current event: a nested-loop join re-evaluates the same operands
// against the same buffered roots — $p/id against every auction, and
// every auction's $t/buyer against each person — and buffers only mutate
// between incoming events, so within one evaluation burst each distinct
// pair is navigated and parsed exactly once. The returned slice is owned
// by the engine and valid until the next event.
func (e *engine) operandValues(o *navOperand, env *execEnv) ([]cmpVal, error) {
	if o.isConst {
		e.constRHS[0] = o.constCmp
		return e.constRHS[:1], nil
	}
	root, err := env.resolve(o.varName)
	if err != nil {
		return nil, err
	}
	if e.navValsGen != e.tokens {
		if len(e.navVals) > 0 {
			clear(e.navVals)
		}
		e.cmpArena = e.cmpArena[:0]
		clear(e.opMemoRoot)
		e.navValsGen = e.tokens
	}
	if n := e.plan.numOperands; len(e.opMemoRoot) < n {
		e.opMemoRoot = make([]*bufNode, n)
		e.opMemoVals = make([][]cmpVal, n)
		e.opMemoInMap = make([]bool, n)
	}
	if e.opMemoRoot[o.idx] == root {
		return e.opMemoVals[o.idx], nil
	}
	vals, fromMap := []cmpVal(nil), false
	if len(e.navVals) > 0 {
		vals, fromMap = e.navVals[navValsKey{op: o, root: root}]
	}
	if !fromMap {
		nodes := root.Select(o.path, e.selScratch[:0])
		start := len(e.cmpArena)
		for _, n := range nodes {
			v, vok := makeCmpVal(n.StringValue(), o.scale)
			if !vok {
				continue
			}
			e.cmpArena = append(e.cmpArena, v)
		}
		e.selScratch = nodes[:0]
		vals = e.cmpArena[start:len(e.cmpArena):len(e.cmpArena)]
	}
	// Install in the one-entry memo. An entry evicted mid-generation
	// belongs to a cycling-roots join loop: spill it to the map so the
	// next pass finds it without re-navigating. (Entries evicted by a
	// generation roll were already discarded with their buffers.)
	if old := e.opMemoRoot[o.idx]; old != nil && !e.opMemoInMap[o.idx] {
		if e.navVals == nil {
			e.navVals = make(map[navValsKey][]cmpVal, 64)
		}
		e.navVals[navValsKey{op: o, root: old}] = e.opMemoVals[o.idx]
	}
	e.opMemoRoot[o.idx], e.opMemoVals[o.idx], e.opMemoInMap[o.idx] = root, vals, fromMap
	return vals, nil
}

func allXMLSpaceBytes(s []byte) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

func allXMLSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

package engine

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"flux/internal/dom"
	"flux/internal/dtd"
	"flux/internal/sax"
)

// Stats reports the resources a query execution used.
type Stats struct {
	// PeakBufferBytes is the maximum number of bytes held in main-memory
	// buffers at any point (tag bytes for buffered elements plus text
	// bytes), the quantity Figure 4 reports as memory consumption.
	PeakBufferBytes int64
	// OutputBytes is the number of result bytes produced.
	OutputBytes int64
	// Tokens is the number of SAX events processed.
	Tokens int64
}

// RunError reports a runtime failure (invalid input or an engine
// invariant violation).
type RunError struct {
	Msg string
}

// Error implements error.
func (e *RunError) Error() string { return "engine: run: " + e.Msg }

// Run executes a compiled plan over the XML stream read from r, writing
// the query result to w. It is the single-query convenience around
// Session; multi-query shared scans build on Session directly.
func Run(plan *Plan, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	return RunContext(context.Background(), plan, r, w, opt)
}

// RunContext is Run with cancellation: once ctx is done the scan stops
// at the next event batch and the error is ctx.Err(). On any failure the
// returned Stats cover the stream prefix processed before the failure.
func RunContext(ctx context.Context, plan *Plan, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	s := NewSession(plan, w)
	if err := s.Begin(); err != nil {
		return s.Abort(), err
	}
	if err := sax.ScanContext(ctx, r, s, opt); err != nil {
		return s.Abort(), err
	}
	return s.Finish()
}

// RunString executes a plan over an in-memory document.
func RunString(plan *Plan, doc string, w io.Writer, opt sax.Options) (Stats, error) {
	return Run(plan, strings.NewReader(doc), w, opt)
}

// scopeRT is one runtime instance of a process-stream scope.
type scopeRT struct {
	spec    *scopeSpec
	bufRoot *bufNode // non-nil iff the scope buffers data
	flags   []bool   // one per watcher
	fired   []bool   // one per on-first handler
	bytes   int64    // bytes charged to this scope's buffer
}

// capRef is a full-capture target: events under the current element are
// appended below node, charged to owner.
type capRef struct {
	node  *bufNode
	owner *scopeRT
}

// fillPos is a tags-only buffer-tree position.
type fillPos struct {
	tree   *bufTreeNode
	parent *bufNode
	owner  *scopeRT
}

// watchPos is a partially matched watcher path.
type watchPos struct {
	scope   *scopeRT  // watcher belongs to a scope...
	simple  *simpleRT // ...or to a simple handler instance
	specIdx int
	pathIdx int
}

func (wp watchPos) spec() *watcherSpec {
	if wp.simple != nil {
		return wp.simple.spec.watchers[wp.specIdx]
	}
	return wp.scope.spec.watchers[wp.specIdx]
}

func (wp watchPos) flags() []bool {
	if wp.simple != nil {
		return wp.simple.flags
	}
	return wp.scope.flags
}

// valueAcc accumulates the string value of a matched watcher path
// occurrence.
type valueAcc struct {
	spec  *watcherSpec
	flags []bool
	idx   int
	sb    strings.Builder
}

// simpleRT is one firing of a simple on-handler.
type simpleRT struct {
	spec  *simpleSpec
	flags []bool
}

// deferredExec is an on-first body whose scan position is after the
// firing on-handler; it runs when the current child's subtree ends.
type deferredExec struct {
	h  *handlerSpec
	rt *scopeRT
}

// frame is the per-open-element runtime state.
type frame struct {
	prod  *dtd.Production
	state int
	name  string

	scope     *scopeRT // set if this element opened a scope
	prevInst  *scopeRT // saved instance for the scope variable
	scopeVar  string
	copying   bool
	simple    *simpleRT
	captures  []capRef
	fills     []fillPos
	watch     []watchPos
	accs      []*valueAcc // active accumulators (inherited + own)
	ownAccs   []*valueAcc // finalize at this element's end
	deferred  []deferredExec
	skipDepth bool // purely structural frame with no sinks
}

type engine struct {
	plan      *Plan
	w         *sax.Writer
	frames    []frame
	inst      map[string]*scopeRT
	curBytes  int64
	peakBytes int64
	tokens    int64
}

func (e *engine) account(owner *scopeRT, delta int64) {
	owner.bytes += delta
	e.curBytes += delta
	if e.curBytes > e.peakBytes {
		e.peakBytes = e.curBytes
	}
}

func (e *engine) newScopeRT(spec *scopeSpec, elemName string) *scopeRT {
	rt := &scopeRT{
		spec:  spec,
		flags: make([]bool, len(spec.watchers)),
		fired: make([]bool, len(spec.handlers)),
	}
	if spec.bufTree != nil {
		rt.bufRoot = &bufNode{Name: elemName}
		e.account(rt, int64(2*len(elemName)+5))
	}
	return rt
}

// attachScope wires a new scope instance into its frame: buffer root,
// watcher positions, instance registration, and i=0 on-first firing.
func (e *engine) attachScope(f *frame, rt *scopeRT) error {
	f.scope = rt
	f.scopeVar = rt.spec.Var
	f.prevInst = e.inst[rt.spec.Var]
	e.inst[rt.spec.Var] = rt
	if rt.bufRoot != nil {
		if rt.spec.bufTree.mark {
			f.captures = append(f.captures, capRef{node: rt.bufRoot, owner: rt})
		} else {
			f.fills = append(f.fills, fillPos{tree: rt.spec.bufTree, parent: rt.bufRoot, owner: rt})
		}
	}
	for i := range rt.spec.watchers {
		f.watch = append(f.watch, watchPos{scope: rt, specIdx: i})
	}
	// i = 0 scan: on-first handlers whose Past set is already past in q0.
	// Mixed (#PCDATA) productions defer all on-first handlers to the
	// closing tag: character data may arrive at any point, so buffered
	// content is complete only then (the paper's "on-first past(*) delays
	// execution until the complete node has been seen").
	if rt.spec.prod.Mixed {
		return nil
	}
	for i, h := range rt.spec.handlers {
		if h.kind == hOnFirst && h.pastTable[rt.spec.prod.Auto.Start()] {
			rt.fired[i] = true
			if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
				return err
			}
		}
	}
	return nil
}

// begin sets up the synthetic document frame for the $ROOT scope.
func (e *engine) begin() error {
	docProd, _ := e.plan.schema.Production(dtd.DocumentVar)
	f := frame{prod: docProd, state: docProd.Auto.Start(), name: dtd.DocumentVar}
	e.frames = append(e.frames, f)
	rt := e.newScopeRT(e.plan.root, dtd.DocumentVar)
	return e.attachScope(&e.frames[0], rt)
}

// finish closes the document scope at end of stream.
func (e *engine) finish() error {
	f := &e.frames[0]
	if !f.prod.Auto.Accepting(f.state) {
		return &RunError{Msg: "document ended before the root element"}
	}
	return e.closeScope(f)
}

// StartElement implements sax.Handler.
func (e *engine) StartElement(name string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]

	// Validating automaton step (also drives punctuation).
	prevState := top.state
	next, ok := top.prod.Auto.Step(top.state, name)
	if !ok {
		return &RunError{Msg: fmt.Sprintf("element <%s> not allowed by content model %s of <%s>",
			name, top.prod.Model, top.name)}
	}
	top.state = next

	childProd, ok := e.plan.schema.Production(name)
	if !ok {
		return &RunError{Msg: fmt.Sprintf("element <%s> is not declared in the DTD", name)}
	}
	child := frame{prod: childProd, state: childProd.Auto.Start(), name: name}

	// Inherited sinks.
	if top.copying {
		child.copying = true
		if err := e.w.StartElement(name); err != nil {
			return err
		}
	}
	for _, c := range top.captures {
		n := &bufNode{Name: name}
		c.node.Kids = append(c.node.Kids, n)
		e.account(c.owner, int64(2*len(name)+5))
		child.captures = append(child.captures, capRef{node: n, owner: c.owner})
	}
	for _, fp := range top.fills {
		if kid, ok := fp.tree.kids[name]; ok {
			n := &bufNode{Name: name}
			fp.parent.Kids = append(fp.parent.Kids, n)
			e.account(fp.owner, int64(2*len(name)+5))
			if kid.mark {
				child.captures = append(child.captures, capRef{node: n, owner: fp.owner})
			} else {
				child.fills = append(child.fills, fillPos{tree: kid, parent: n, owner: fp.owner})
			}
		}
	}
	child.accs = append(child.accs, top.accs...)
	for _, wp := range top.watch {
		spec := wp.spec()
		if spec.path[wp.pathIdx] != name {
			continue
		}
		if wp.pathIdx+1 == len(spec.path) {
			if spec.kind == wExists {
				// Existence is established by the opening tag: the scan at
				// index i sees label(t_i).
				wp.flags()[wp.specIdx] = true
				continue
			}
			acc := &valueAcc{spec: spec, flags: wp.flags(), idx: wp.specIdx}
			child.accs = append(child.accs, acc)
			child.ownAccs = append(child.ownAccs, acc)
		} else {
			child.watch = append(child.watch, watchPos{
				scope: wp.scope, simple: wp.simple, specIdx: wp.specIdx, pathIdx: wp.pathIdx + 1})
		}
	}

	// Scope handler scan for this child.
	if top.scope != nil {
		if err := e.scanHandlers(top.scope, name, prevState, next, &child); err != nil {
			return err
		}
	}

	e.frames = append(e.frames, child)
	return nil
}

// scanHandlers performs the per-child scan of the handler list ζ in order
// (Section 3.2 semantics). The scan at index i is logically positioned
// after child t_i has been read completely, so a newly-true on-first
// handler normally defers to the end of the current child's subtree (its
// punctuation event may have been triggered by the very child whose
// content its body reads, e.g. the year loop of F1'). The one exception:
// an on-first handler that precedes a firing on-handler in ζ must emit its
// output before the on-handler streams the child, so it fires immediately
// (its buffers then reflect the children before t_i; see DESIGN.md).
func (e *engine) scanHandlers(rt *scopeRT, name string, prevState, newState int, child *frame) error {
	spec := rt.spec
	if spec.prod.Mixed {
		// All on-first handlers of mixed scopes fire at the closing tag.
		if i, ok := spec.onByName[name]; ok {
			return e.fireOn(spec.handlers[i], child, name)
		}
		return nil
	}
	onIdx, hasOn := spec.onByName[name]
	for i, h := range spec.handlers {
		switch h.kind {
		case hOnFirst:
			if rt.fired[i] || !h.pastTable[newState] || h.pastTable[prevState] {
				continue
			}
			rt.fired[i] = true
			if !hasOn || i > onIdx {
				child.deferred = append(child.deferred, deferredExec{h: h, rt: rt})
				continue
			}
			if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
				return err
			}
		case hOn:
			if !hasOn || i != onIdx {
				continue
			}
			if err := e.fireOn(h, child, name); err != nil {
				return err
			}
		}
	}
	return nil
}

// fireOn starts an on-handler on the child frame.
func (e *engine) fireOn(h *handlerSpec, child *frame, name string) error {
	if h.child != nil {
		crt := e.newScopeRT(h.child, name)
		return e.attachScope(child, crt)
	}
	return e.fireSimple(h.simple, child, name)
}

// fireSimple starts a simple on-handler on the child frame: emit the
// prefix, decide the guarded stream-copy, install the handler's watchers.
func (e *engine) fireSimple(sp *simpleSpec, child *frame, name string) error {
	rt := &simpleRT{spec: sp, flags: make([]bool, len(sp.watchers))}
	child.simple = rt
	env := &execEnv{eng: e, simple: rt}
	for _, p := range sp.prefix {
		if err := e.runExec(p, env); err != nil {
			return err
		}
	}
	if sp.copySub {
		doCopy := true
		if sp.copyCond != nil {
			var err error
			doCopy, err = e.evalCond(sp.copyCond, env)
			if err != nil {
				return err
			}
		}
		if doCopy {
			child.copying = true
			if err := e.w.StartElement(name); err != nil {
				return err
			}
		}
	}
	for i := range sp.watchers {
		child.watch = append(child.watch, watchPos{simple: rt, specIdx: i})
	}
	return nil
}

// Text implements sax.Handler.
func (e *engine) Text(data string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]
	if !top.prod.Mixed && top.prod.Name != dtd.DocumentVar && !allXMLSpace(data) {
		return &RunError{Msg: fmt.Sprintf("character data not allowed inside <%s>", top.name)}
	}
	if top.copying {
		if err := e.w.Text(data); err != nil {
			return err
		}
	}
	for _, c := range top.captures {
		if k := len(c.node.Kids); k > 0 && c.node.Kids[k-1].IsText() {
			c.node.Kids[k-1].Text += data
		} else {
			c.node.Kids = append(c.node.Kids, &bufNode{Text: data})
		}
		e.account(c.owner, int64(len(data)))
	}
	for _, a := range top.accs {
		a.sb.WriteString(data)
	}
	return nil
}

// EndElement implements sax.Handler.
func (e *engine) EndElement(name string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]
	if !top.prod.Auto.Accepting(top.state) {
		return &RunError{Msg: fmt.Sprintf("element <%s> closed with incomplete content (model %s)",
			name, top.prod.Model)}
	}
	for _, a := range top.ownAccs {
		a.finalize()
	}
	if top.copying {
		if err := e.w.EndElement(name); err != nil {
			return err
		}
	}
	if top.simple != nil {
		env := &execEnv{eng: e, simple: top.simple}
		for _, p := range top.simple.spec.suffix {
			if err := e.runExec(p, env); err != nil {
				return err
			}
		}
	}
	// The child's own scope closes first (its end-of-scope on-first
	// handlers run), then the parent's handlers deferred to this child.
	if top.scope != nil {
		if err := e.closeScope(top); err != nil {
			return err
		}
	}
	for _, d := range top.deferred {
		if err := e.runExec(d.h.body, &execEnv{eng: e}); err != nil {
			return err
		}
	}
	e.frames = e.frames[:len(e.frames)-1]
	return nil
}

// closeScope performs the i = n+1 scan (unfired on-first handlers fire in
// list order) and frees the scope's buffer.
func (e *engine) closeScope(f *frame) error {
	rt := f.scope
	for i, h := range rt.spec.handlers {
		if h.kind == hOnFirst && !rt.fired[i] {
			rt.fired[i] = true
			if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
				return err
			}
		}
	}
	e.curBytes -= rt.bytes
	if f.prevInst != nil {
		e.inst[f.scopeVar] = f.prevInst
	} else {
		delete(e.inst, f.scopeVar)
	}
	return nil
}

func (a *valueAcc) finalize() {
	switch a.spec.kind {
	case wExists:
		a.flags[a.idx] = true
	case wCmp:
		v := a.sb.String()
		if a.spec.scale != 0 {
			fv, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return
			}
			v = strconv.FormatFloat(a.spec.scale*fv, 'f', -1, 64)
		}
		l, r := v, a.spec.rhs
		if a.spec.flip {
			l, r = a.spec.rhs, v
		}
		if dom.CompareValues(l, a.spec.op, r) {
			a.flags[a.idx] = true
		}
	}
}

// --- Program execution over buffers -------------------------------------

type execEnv struct {
	eng    *engine
	vars   map[string]*bufNode
	simple *simpleRT
}

func (env *execEnv) bind(v string, n *bufNode) func() {
	if env.vars == nil {
		env.vars = make(map[string]*bufNode)
	}
	prev, had := env.vars[v]
	env.vars[v] = n
	return func() {
		if had {
			env.vars[v] = prev
		} else {
			delete(env.vars, v)
		}
	}
}

// resolve maps a variable to the buffered node it denotes.
func (env *execEnv) resolve(v string) (*bufNode, error) {
	if n, ok := env.vars[v]; ok {
		return n, nil
	}
	if rt, ok := env.eng.inst[v]; ok {
		if rt.bufRoot == nil {
			return nil, &RunError{Msg: "no buffer allocated for variable " + v}
		}
		return rt.bufRoot, nil
	}
	return nil, &RunError{Msg: "unbound variable " + v}
}

func (e *engine) runExec(p *execProg, env *execEnv) error {
	switch p.kind {
	case eSeq:
		for _, it := range p.items {
			if err := e.runExec(it, env); err != nil {
				return err
			}
		}
		return nil
	case eStr:
		return e.w.Raw(p.str)
	case eVarOut:
		n, err := env.resolve(p.varName)
		if err != nil {
			return err
		}
		if n.Name == dtd.DocumentVar {
			for _, k := range n.Kids {
				if err := k.Serialize(e.w); err != nil {
					return err
				}
			}
			return nil
		}
		return n.Serialize(e.w)
	case eFor:
		src, err := env.resolve(p.src)
		if err != nil {
			return err
		}
		for _, kid := range src.Kids {
			if kid.Name != p.step {
				continue
			}
			restore := env.bind(p.loopVar, kid)
			err := e.runExec(p.body, env)
			restore()
			if err != nil {
				return err
			}
		}
		return nil
	case eIf:
		ok, err := e.evalCond(p.cond, env)
		if err != nil {
			return err
		}
		if ok {
			return e.runExec(p.then, env)
		}
		return nil
	default:
		return &RunError{Msg: "unknown exec node"}
	}
}

func (e *engine) evalCond(c *condSpec, env *execEnv) (bool, error) {
	switch c.kind {
	case cTrue:
		return true, nil
	case cAnd:
		l, err := e.evalCond(c.l, env)
		if err != nil || !l {
			return false, err
		}
		return e.evalCond(c.r, env)
	case cOr:
		l, err := e.evalCond(c.l, env)
		if err != nil || l {
			return l, err
		}
		return e.evalCond(c.r, env)
	case cNot:
		x, err := e.evalCond(c.x, env)
		return !x, err
	case cAtom:
		return e.evalAtom(c.atom, env)
	default:
		return false, &RunError{Msg: "unknown condition node"}
	}
}

func (e *engine) evalAtom(a *atomSpec, env *execEnv) (bool, error) {
	if a.flag != nil {
		var flags []bool
		if a.flag.scopeVar == "" {
			if env.simple == nil {
				return false, &RunError{Msg: "simple-handler flag read outside simple handler"}
			}
			flags = env.simple.flags
		} else {
			rt, ok := e.inst[a.flag.scopeVar]
			if !ok {
				return false, &RunError{Msg: "flag read for inactive scope " + a.flag.scopeVar}
			}
			flags = rt.flags
		}
		v := flags[a.flag.idx]
		if a.flag.neg {
			v = !v
		}
		return v, nil
	}
	if a.exists != nil {
		nodes, err := e.navNodes(a.exists, env)
		if err != nil {
			return false, err
		}
		return (len(nodes) > 0) != a.neg, nil
	}
	ls, err := e.navValues(a.lhs, env)
	if err != nil {
		return false, err
	}
	rs, err := e.navValues(a.rhs, env)
	if err != nil {
		return false, err
	}
	for _, l := range ls {
		for _, r := range rs {
			if dom.CompareValues(l, a.op, r) {
				return true, nil
			}
		}
	}
	return false, nil
}

func (e *engine) navNodes(o *navOperand, env *execEnv) ([]*bufNode, error) {
	n, err := env.resolve(o.varName)
	if err != nil {
		return nil, err
	}
	return n.Select(o.path, nil), nil
}

func (e *engine) navValues(o *navOperand, env *execEnv) ([]string, error) {
	if o.isConst {
		return []string{o.constVal}, nil
	}
	nodes, err := e.navNodes(o, env)
	if err != nil {
		return nil, err
	}
	vals := make([]string, 0, len(nodes))
	for _, n := range nodes {
		v := n.StringValue()
		if o.scale != 0 {
			fv, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				continue
			}
			v = strconv.FormatFloat(o.scale*fv, 'f', -1, 64)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func allXMLSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

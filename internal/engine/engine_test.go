package engine

import (
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dom"
	"flux/internal/dtd"
	"flux/internal/sax"
	"flux/internal/xq"
)

const (
	weakBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	useCaseBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
	q1DTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|publisher|year)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`
	joinOrderedDTD = `
<!ELEMENT bib (book*,article*)>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`
	joinUnorderedDTD = `
<!ELEMENT bib (book|article)*>
<!ELEMENT book (title,(author+|editor+),publisher)>
<!ELEMENT article (title,author+,journal)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
`
)

var saxOpt = sax.Options{SkipWhitespaceText: true}

// runBoth executes the query on the FluX engine and on the naive DOM
// oracle and requires byte-identical output; it returns the FluX stats.
func runBoth(t *testing.T, dtdText, query, doc string) Stats {
	t.Helper()
	schema := dtd.MustParse(dtdText)
	q := xq.MustParse(query)
	f, err := core.Schedule(schema, q)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	plan, err := Compile(schema, f)
	if err != nil {
		t.Fatalf("Compile: %v\nFluX: %s", err, core.Print(f))
	}
	var fluxOut strings.Builder
	st, err := RunString(plan, doc, &fluxOut, saxOpt)
	if err != nil {
		t.Fatalf("Run: %v\nFluX: %s\nPlan:\n%s", err, core.Print(f), plan.Describe())
	}
	var domOut strings.Builder
	if _, err := dom.RunNaive(q, strings.NewReader(doc), &domOut, saxOpt); err != nil {
		t.Fatalf("dom.RunNaive: %v", err)
	}
	if fluxOut.String() != domOut.String() {
		t.Errorf("output mismatch for %s\n  flux: %q\n  dom : %q\nFluX: %s\nPlan:\n%s",
			query, fluxOut.String(), domOut.String(), core.Print(f), plan.Describe())
	}
	return st
}

const introDoc = `<bib>` +
	`<book><title>T1</title><author>A1</author><author>A2</author><title>T2</title></book>` +
	`<book><author>A3</author></book>` +
	`<book></book>` +
	`</bib>`

const introQ3 = `<results>
{ for $b in $ROOT/bib/book return
<result> { $b/title } { $b/author } </result> }
</results>`

// TestIntroExampleWeak: under the weak DTD, titles stream and authors of
// one book at a time buffer. Output order per book: all titles, then all
// authors (XQuery semantics).
func TestIntroExampleWeak(t *testing.T) {
	st := runBoth(t, weakBibDTD, introQ3, introDoc)
	if st.PeakBufferBytes == 0 {
		t.Error("weak DTD requires buffering authors, got 0 bytes")
	}
	// Only one book's authors buffer at a time: far below document size.
	if st.PeakBufferBytes > 60 {
		t.Errorf("peak buffer = %d bytes, want roughly one book's authors", st.PeakBufferBytes)
	}
}

// TestIntroExampleStrong: the use-case DTD orders title before author, so
// the query is fully streaming — zero bytes buffered (the paper's headline
// behaviour, Figure 4 Q1/Q13 pattern).
func TestIntroExampleStrong(t *testing.T) {
	doc := `<bib>` +
		`<book><title>T1</title><author>A1</author><author>A2</author><publisher>P</publisher><price>3</price></book>` +
		`<book><title>T2</title><editor>E1</editor><publisher>P</publisher><price>4</price></book>` +
		`</bib>`
	st := runBoth(t, useCaseBibDTD, introQ3, doc)
	if st.PeakBufferBytes != 0 {
		t.Errorf("use-case DTD run buffered %d bytes, want 0", st.PeakBufferBytes)
	}
}

// TestXMPQ1 runs the conditional query of Examples 4.2/4.5 on both DTD
// variants.
func TestXMPQ1(t *testing.T) {
	q1 := `<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/year > 1991
  return <book> {$b/year} {$b/title} </book> }
</bib>`
	doc := `<bib>` +
		`<book><title>W</title><publisher>Addison-Wesley</publisher><year>1994</year></book>` +
		`<book><publisher>Addison-Wesley</publisher><year>1990</year><title>Old</title></book>` +
		`<book><year>2000</year><publisher>Other</publisher><title>N</title></book>` +
		`<book><title>T</title><year>1999</year><publisher>Addison-Wesley</publisher><title>T2</title></book>` +
		`</bib>`
	st := runBoth(t, q1DTD, q1, doc)
	if st.PeakBufferBytes == 0 {
		t.Error("weak order: titles must buffer (condition awaits publisher/year)")
	}
}

// TestXMPQ2 runs the title×author product of Example 4.4 on both DTDs.
func TestXMPQ2(t *testing.T) {
	q2 := `<results>
{ for $bib in $ROOT/bib return
  { for $b in $bib/book return
    { for $t in $b/title return
      { for $a in $b/author return
        <result> {$t} {$a} </result> } } } }
</results>`
	runBoth(t, weakBibDTD, q2, introDoc)
	authorFirst := `
<!ELEMENT bib (book)*>
<!ELEMENT book (author*,title*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	doc := `<bib>` +
		`<book><author>A1</author><author>A2</author><title>T1</title><title>T2</title></book>` +
		`<book><title>T3</title></book>` +
		`</bib>`
	runBoth(t, authorFirst, q2, doc)
}

// TestExample46Join runs the editor join on both DTD variants (Example
// 4.6 / 5.2) and checks that the ordered DTD buffers less.
func TestExample46Join(t *testing.T) {
	q3 := `<results>
{ for $bib in $ROOT/bib return
  { for $article in $bib/article return
    { for $book in $bib/book
      where $article/author = $book/editor return
      { <result> {$article/author} </result> } }}}
</results>`
	ordered := `<bib>` +
		`<book><title>B1</title><editor>Smith</editor><publisher>P</publisher></book>` +
		`<book><title>B2</title><author>Jones</author><publisher>P</publisher></book>` +
		`<article><title>A1</title><author>Smith</author><journal>J</journal></article>` +
		`<article><title>A2</title><author>Nobody</author><journal>J</journal></article>` +
		`</bib>`
	stOrd := runBoth(t, joinOrderedDTD, q3, ordered)
	stUnord := runBoth(t, joinUnorderedDTD, q3, ordered)
	if stOrd.PeakBufferBytes >= stUnord.PeakBufferBytes {
		t.Errorf("ordered DTD should buffer less: ordered %d vs unordered %d",
			stOrd.PeakBufferBytes, stUnord.PeakBufferBytes)
	}
}

// TestEmptyCondition is the XMark Q20 pattern: buffer one element at a
// time, gated by empty().
func TestEmptyCondition(t *testing.T) {
	d := `
<!ELEMENT people (person)*>
<!ELEMENT person (name,income?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT income (#PCDATA)>
`
	q := `<poor> { for $p in $ROOT/people/person where empty($p/income) return {$p} } </poor>`
	doc := `<people>` +
		`<person><name>A</name><income>10</income></person>` +
		`<person><name>B</name></person>` +
		`<person><name>C</name><income>3</income></person>` +
		`<person><name>D</name></person>` +
		`</people>`
	st := runBoth(t, d, q, doc)
	if st.PeakBufferBytes == 0 || st.PeakBufferBytes > 80 {
		t.Errorf("peak buffer = %d, want one person at a time", st.PeakBufferBytes)
	}
}

// TestStreamCopyWholeDocument: a dependency-free {$ROOT} copy must stream
// with zero buffering.
func TestStreamCopyWholeDocument(t *testing.T) {
	st := runBoth(t, weakBibDTD, `<all> { $ROOT } </all>`, introDoc)
	if st.PeakBufferBytes != 0 {
		t.Errorf("document copy buffered %d bytes, want 0", st.PeakBufferBytes)
	}
}

// TestGuardedCopy: a conditional stream-copy guarded by a flag on an
// ancestor scope.
func TestGuardedCopy(t *testing.T) {
	d := `
<!ELEMENT r (flagval,item*)>
<!ELEMENT flagval (#PCDATA)>
<!ELEMENT item (#PCDATA)>
`
	q := `{ for $i in $ROOT/r/item return { if $ROOT/r/flagval = 'yes' then { $i } } }`
	yes := `<r><flagval>yes</flagval><item>1</item><item>2</item></r>`
	no := `<r><flagval>no</flagval><item>1</item></r>`
	runBoth(t, d, q, yes)
	runBoth(t, d, q, no)
}

// TestDeferredOnFirst: a trailing string whose punctuation event fires on
// the same child as an on-handler must be emitted after the child.
func TestDeferredOnFirst(t *testing.T) {
	d := `
<!ELEMENT r (a,b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`
	// <r>…</r> wrapper strings around streamed a and b: the "]" string's
	// past(a,b) becomes true at b's open tag, where on b also fires.
	q := `{ for $r in $ROOT/r return [ { $r/a } { $r/b } ] }`
	doc := `<r><a>x</a><b>y</b></r>`
	runBoth(t, d, q, doc)
}

// TestScopeReuseAcrossSiblings: per-scope state (flags, buffers, fired
// bits) must reset for each element instance.
func TestScopeReuseAcrossSiblings(t *testing.T) {
	d := `
<!ELEMENT people (person)*>
<!ELEMENT person (name,income?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT income (#PCDATA)>
`
	q := `{ for $p in $ROOT/people/person where $p/income = '1' return { $p/name } }`
	doc := `<people>` +
		`<person><name>A</name><income>1</income></person>` +
		`<person><name>B</name></person>` +
		`<person><name>C</name><income>2</income></person>` +
		`<person><name>D</name><income>1</income></person>` +
		`</people>`
	runBoth(t, d, q, doc)
}

// TestRecursiveSchema: scopes must nest correctly when the DTD is
// recursive.
func TestRecursiveSchema(t *testing.T) {
	d := `
<!ELEMENT part (id,part*)>
<!ELEMENT id (#PCDATA)>
`
	q := `{ for $p in $ROOT/part/part return { $p/id } }`
	doc := `<part><id>0</id><part><id>1</id><part><id>2</id></part></part><part><id>3</id></part></part>`
	runBoth(t, d, q, doc)
}

// TestValidationErrors: the engine rejects invalid documents.
func TestValidationErrors(t *testing.T) {
	schema := dtd.MustParse(useCaseBibDTD)
	f, err := core.Schedule(schema, xq.MustParse(introQ3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(schema, f)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>1</price></book></bib>`, // order violated
		`<bib><book><title>T</title></book></bib>`,                                                           // incomplete
		`<bib><zap/></bib>`, // undeclared
		`<bib>text</bib>`,   // stray text
	}
	for _, doc := range bad {
		var sb strings.Builder
		if _, err := RunString(plan, doc, &sb, saxOpt); err == nil {
			t.Errorf("invalid document accepted: %s", doc)
		}
	}
}

// TestDifferentialRandomDocs cross-checks the engine against the DOM
// oracle on randomized valid documents for every example query/DTD pair.
func TestDifferentialRandomDocs(t *testing.T) {
	cases := []struct{ dtdText, query string }{
		{weakBibDTD, introQ3},
		{useCaseBibDTD, introQ3},
		{q1DTD, `<bib> { for $b in $ROOT/bib/book where $b/publisher = 'alpha' and $b/year > 1991 return <book> {$b/year} {$b/title} </book> } </bib>`},
		{joinOrderedDTD, `<results> { for $bib in $ROOT/bib return { for $article in $bib/article return { for $book in $bib/book where $article/author = $book/editor return <result> {$article/author} </result> } } } </results>`},
		{joinUnorderedDTD, `<results> { for $bib in $ROOT/bib return { for $article in $bib/article return { for $book in $bib/book where $article/author = $book/editor return <result> {$article/author} </result> } } } </results>`},
		{weakBibDTD, `{ for $b in /bib/book return { if exists $b/author then <hasA/> } { if empty($b/title) then <noT/> } }`},
	}
	for ci, c := range cases {
		schema := dtd.MustParse(c.dtdText)
		for seed := int64(0); seed < 25; seed++ {
			doc := dtd.RandomDocument(schema, seed, dtd.GenOptions{})
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("case %d seed %d panicked: %v\ndoc: %s", ci, seed, r, doc)
					}
				}()
				runBoth(t, c.dtdText, c.query, doc)
			}()
		}
	}
}

// TestBufferFreedBetweenScopes: peak buffering with many books must stay
// bounded by one book (buffers are freed on scope exit).
func TestBufferFreedBetweenScopes(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<book><title>T</title><author>AAAAAAAAAA</author></book>")
	}
	sb.WriteString("</bib>")
	st := runBoth(t, weakBibDTD, introQ3, sb.String())
	if st.PeakBufferBytes > 100 {
		t.Errorf("peak buffer %d grows with book count; buffers not freed", st.PeakBufferBytes)
	}
}

func TestPlanDescribe(t *testing.T) {
	schema := dtd.MustParse(weakBibDTD)
	f, err := core.Schedule(schema, xq.MustParse(introQ3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(schema, f)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"scope $ROOT", "on bib", "buffer tree"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

// mustSchema and mustSchedule are shared helpers for targeted tests.
func mustSchema(t *testing.T, dtdText string) *dtd.Schema {
	t.Helper()
	schema, err := dtd.Parse(dtdText)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func mustSchedule(t *testing.T, schema *dtd.Schema, query string) core.Flux {
	t.Helper()
	f, err := core.Schedule(schema, xq.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

package engine

// Projected-path signatures: the static answer to "which parts of the
// document can this plan possibly consume?". The paper's buffer analysis
// already proves which paths a query buffers; the signature generalizes
// that to every stream position the compiled plan observes — scope
// elements, watcher paths, buffer-tree paths, stream-copied subtrees —
// so a multiplexer can route events selectively: a subtree no path of
// the signature can match is skipped in one step instead of fanned to
// the plan event by event (see Session.SkipSubtree and internal/mux).

import (
	"fmt"
	"sort"
	"strings"

	"flux/internal/dtd"
	"flux/internal/sax"
)

// SigNode is one node of a plan's projected-path signature, a trie over
// element names rooted at the document. A node present in the trie means
// the plan observes the start and end tags of elements at that path (a
// "spine" position: scope elements, watcher-path steps, tags-only buffer
// paths). All marks a position whose entire subtree — every descendant
// event, including character data — must be delivered: stream-copied
// subtrees, fully buffered (marked) nodes, and value-comparison watcher
// targets, whose text accumulates from the whole subtree.
//
// A SigNode is built once at Compile time and shared by every execution
// of the plan; treat it as read-only.
type SigNode struct {
	// All reports that every event below this position is consumed.
	All bool
	// DropText reports that character data arriving at this spine
	// position may be withheld from the plan without changing its
	// behavior. It is set from the DTD: at a mixed-content position text
	// is always legal, and a spine position by construction consumes
	// nothing (no copy, capture, or accumulator is live there), so the
	// engine would validate the text and throw it away. At a non-mixed
	// position the bit stays false — stray character data there is a
	// validation error the plan must still observe, so routers keep
	// delivering it (validation parity with all-fanout). Meaningless on
	// All nodes, whose subtrees are delivered in full.
	DropText bool
	// Kids maps a child element name to its signature node; names absent
	// from the map (under a node with All unset) are skippable subtrees.
	Kids map[string]*SigNode
}

// child returns the named child node, creating it if needed.
func (n *SigNode) child(name string) *SigNode {
	if n.Kids == nil {
		n.Kids = make(map[string]*SigNode)
	}
	k, ok := n.Kids[name]
	if !ok {
		k = &SigNode{}
		n.Kids[name] = k
	}
	return k
}

// extend walks (creating) the trie along path and returns the last node.
func (n *SigNode) extend(path []string) *SigNode {
	cur := n
	for _, s := range path {
		cur = cur.child(s)
	}
	return cur
}

// normalize drops children below All nodes (they are redundant — the
// whole subtree is delivered anyway), making the serialization
// canonical so structurally equal signatures get equal keys.
func (n *SigNode) normalize() {
	if n.All {
		n.Kids = nil
		return
	}
	for _, k := range n.Kids {
		k.normalize()
	}
}

// key serializes the trie canonically (children sorted by name, "•" for
// All), for grouping plans with identical routing behavior.
func (n *SigNode) key(b *strings.Builder) {
	if n.All {
		b.WriteString("•")
		return
	}
	names := make([]string, 0, len(n.Kids))
	for name := range n.Kids {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("{")
	for i, name := range names {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(name)
		n.Kids[name].key(b)
	}
	b.WriteString("}")
}

// paths renders the signature as sorted rooted paths, one per leaf; a
// trailing " •" marks a full-subtree position. The root itself renders
// as "/ •" when the plan consumes the entire document.
func (n *SigNode) paths() []string {
	var out []string
	var walk func(node *SigNode, prefix string)
	walk = func(node *SigNode, prefix string) {
		if node.All {
			p := prefix
			if p == "" {
				p = "/"
			}
			out = append(out, p+" •")
			return
		}
		if len(node.Kids) == 0 {
			if prefix != "" {
				out = append(out, prefix)
			}
			return
		}
		for name, kid := range node.Kids {
			walk(kid, prefix+"/"+name)
		}
	}
	walk(n, "")
	sort.Strings(out)
	return out
}

// buildSignature computes the plan's signature trie, canonical key, and
// predicted peak buffer bytes. Called once at the end of Compile.
func (p *Plan) buildSignature() {
	root := &SigNode{}
	addScopeSig(root, p.root)
	root.normalize()
	markDropText(root, p.schema, dtd.DocumentVar)
	var b strings.Builder
	root.key(&b)
	p.sig = root
	p.sigKey = b.String()
	p.prune = sigToPrune(root)
	p.predicted = predictPeakBytes(p.root)
}

// markDropText fills each spine node's DropText bit from the schema:
// text at a position is droppable when the position's production is
// mixed (text always legal, never consumed at a spine position) or is
// the synthetic document production (text outside the root element is
// ignored by the engine). DropText is a pure function of (schema,
// position), so plans grouped by equal signature keys agree on it; it
// does not participate in the key.
func markDropText(n *SigNode, schema *dtd.Schema, elem string) {
	if n.All {
		return
	}
	if prod, ok := schema.Production(elem); ok {
		n.DropText = prod.Mixed || elem == dtd.DocumentVar
	}
	for name, kid := range n.Kids {
		markDropText(kid, schema, name)
	}
}

// sigToPrune mirrors a signature trie as a scanner prune trie
// (sax.PruneNode), so batched scans can prune skippable subtrees at the
// byte level instead of routing their tokens downstream.
func sigToPrune(n *SigNode) *sax.PruneNode {
	p := &sax.PruneNode{All: n.All}
	if len(n.Kids) > 0 {
		p.Kids = make(map[string]*sax.PruneNode, len(n.Kids))
		for k, v := range n.Kids {
			p.Kids[k] = sigToPrune(v)
		}
	}
	return p
}

// addScopeSig records everything one scope observes: its buffer tree,
// its watcher paths, and — recursively — its on-handlers' children.
// n is the signature node of the scope's own element.
func addScopeSig(n *SigNode, s *scopeSpec) {
	if s.bufTree != nil {
		addBufTreeSig(n, s.bufTree)
	}
	for _, w := range s.watchers {
		addWatcherSig(n, w)
	}
	for _, h := range s.handlers {
		if h.kind != hOn {
			continue // on-first bodies run over buffers already recorded
		}
		child := n.child(h.name)
		if h.child != nil {
			addScopeSig(child, h.child)
		}
		if h.simple != nil {
			if h.simple.copySub {
				child.All = true
			}
			for _, w := range h.simple.watchers {
				addWatcherSig(child, w)
			}
		}
	}
}

// addBufTreeSig maps a pruned buffer tree into the signature: marked
// nodes need their whole subtree, unmarked tree positions only tags.
func addBufTreeSig(n *SigNode, bt *bufTreeNode) {
	if bt.mark {
		n.All = true
		return
	}
	for name, kid := range bt.kids {
		addBufTreeSig(n.child(name), kid)
	}
}

// addWatcherSig maps one flag watcher into the signature. An existence
// watcher is settled by the target's start tag (a spine position); a
// value comparison accumulates the target's entire text content, so the
// target subtree must be delivered.
func addWatcherSig(n *SigNode, w *watcherSpec) {
	leaf := n.extend(w.path)
	if w.kind == wCmp {
		leaf.All = true
	}
}

// Cost constants for the static peak-buffer prediction. The prediction
// is a coarse, deterministic estimate in nominal bytes — comparable
// across plans, not a guarantee about any particular document: a
// tags-only path costs little, a full-subtree buffer a lot, and
// document-lifetime buffers (which accumulate until end of stream) are
// weighted far above per-instance buffers (freed per element).
const (
	predSpineStepBytes = 64
	predSubtreeBytes   = 4096
	predDocScopeFactor = 16
)

// predictPeakBytes estimates the plan's peak buffer bytes from its
// buffer trees alone. A fully streaming plan predicts 0.
func predictPeakBytes(root *scopeSpec) int64 {
	var total int64
	var walk func(s *scopeSpec)
	walk = func(s *scopeSpec) {
		if s.bufTree != nil {
			cost := bufTreeCost(s.bufTree)
			if s.Var == "$ROOT" {
				cost *= predDocScopeFactor
			}
			total += cost
		}
		for _, h := range s.handlers {
			if h.child != nil {
				walk(h.child)
			}
		}
	}
	walk(root)
	return total
}

func bufTreeCost(n *bufTreeNode) int64 {
	if n.mark {
		return predSubtreeBytes
	}
	var cost int64
	for _, k := range n.kids {
		cost += predSpineStepBytes + bufTreeCost(k)
	}
	return cost
}

// Signature returns the plan's projected-path signature, built at
// Compile time. Callers must treat the trie as read-only; executions of
// the same plan share it.
func (p *Plan) Signature() *SigNode { return p.sig }

// SigKey returns a canonical serialization of the signature: two plans
// with equal keys make identical skip decisions at every stream
// position, so a multiplexer may route them as one group.
func (p *Plan) SigKey() string { return p.sigKey }

// Prune returns the plan's signature as a scanner prune trie, built once
// at Compile time; like the signature itself it is shared across
// executions and must be treated as read-only. Handing it to a batched
// scan (sax.Options.Prune) makes the scanner itself collapse subtrees
// the plan provably ignores into single SkipElement tokens — the same
// skip decisions a downstream router would make, minus the cost of
// tokenizing what gets thrown away.
func (p *Plan) Prune() *sax.PruneNode { return p.prune }

// PredictedPeakBytes returns the static estimate of the plan's peak
// buffer consumption (see BufferReport.PredictedPeakBytes).
func (p *Plan) PredictedPeakBytes() int64 { return p.predicted }

// skipSubtree is the engine half of selective fan-out: it processes a
// complete element subtree the router proved irrelevant to this plan in
// O(1) — the parent automaton steps over the element (preserving
// validation of the parent's content model and the punctuation events
// that drive on-first handlers), and nothing else happens. On-first
// handlers newly enabled by the step run immediately: the subtree is
// logically complete the moment it is skipped.
//
// The checks below are defensive: the router's skip decision comes from
// the plan's own Signature, so a relevant subtree reaching this path is
// a routing bug, reported rather than silently dropped.
func (e *engine) skipSubtree(name string) error {
	e.tokens++
	top := &e.frames[len(e.frames)-1]
	prevState := top.state
	next, ok := top.prod.Auto.Step(top.state, name)
	if !ok {
		return &RunError{Msg: fmt.Sprintf("element <%s> not allowed by content model %s of <%s>",
			name, top.prod.Model, top.name)}
	}
	top.state = next

	if top.copying || len(top.captures) > 0 || len(top.accs) > 0 {
		return &RunError{Msg: "selective fan-out skipped <" + name + "> inside a consumed subtree"}
	}
	for _, fp := range top.fills {
		if _, ok := fp.tree.kids[name]; ok {
			return &RunError{Msg: "selective fan-out skipped buffered subtree <" + name + ">"}
		}
	}
	for _, wp := range top.watch {
		if wp.spec().path[wp.pathIdx] == name {
			return &RunError{Msg: "selective fan-out skipped watched subtree <" + name + ">"}
		}
	}
	if top.scope != nil {
		rt := top.scope
		spec := rt.spec
		if _, ok := spec.onByName[name]; ok {
			return &RunError{Msg: "selective fan-out skipped handled subtree <" + name + ">"}
		}
		if !spec.prod.Mixed {
			for i, h := range spec.handlers {
				if h.kind != hOnFirst || rt.fired[i] || !h.pastTable[next] || h.pastTable[prevState] {
					continue
				}
				rt.fired[i] = true
				if err := e.runExec(h.body, &execEnv{eng: e}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

package engine

import (
	"io"
	"sync"

	"flux/internal/sax"
)

// Session is one execution of a compiled plan driven by an externally
// supplied SAX event stream. It decouples event delivery from the scan
// loop so that a single pass over the input can feed many queries at once
// (see internal/mux): the caller owns the scanner and fans each event to
// any number of sessions.
//
// The lifecycle is Begin, then any number of StartElement/Text/EndElement
// calls (Session implements sax.Handler), then exactly one of Finish or
// Abort. A Session is single-use and not safe for concurrent use; run
// concurrent executions of the same Plan in separate Sessions.
type Session struct {
	eng  *engine
	done bool
}

// NewSession creates a session executing plan, writing query output to w.
func NewSession(plan *Plan, w io.Writer) *Session {
	return &Session{eng: newEngine(plan, w)}
}

// errClosed reports use of a finished session.
var errClosed = &RunError{Msg: "session already finished"}

// Begin opens the synthetic document scope. It must be called once,
// before the first event.
func (s *Session) Begin() error {
	if s.done {
		return errClosed
	}
	return s.eng.begin()
}

// StartElement implements sax.Handler.
func (s *Session) StartElement(name string) error {
	if s.done {
		return errClosed
	}
	return s.eng.StartElement(name)
}

// Text implements sax.Handler.
func (s *Session) Text(data string) error {
	if s.done {
		return errClosed
	}
	return s.eng.Text(data)
}

// EndElement implements sax.Handler.
func (s *Session) EndElement(name string) error {
	if s.done {
		return errClosed
	}
	return s.eng.EndElement(name)
}

// TextBytes delivers a character-data event as a byte slice, the
// batched-scan counterpart of Text. The engine treats data as borrowed:
// anything it must retain past the call (buffered subtrees, value
// accumulators) is copied, so the caller may reuse the backing array —
// e.g. a sax batch arena — afterwards.
func (s *Session) TextBytes(data []byte) error {
	if s.done {
		return errClosed
	}
	return s.eng.textBytes(data)
}

// HandleBatch implements sax.BatchHandler, unpacking a token batch into
// the per-event engine entry points. Driving a session from
// sax.ScanBatchedContext produces exactly the same execution as driving
// it event-by-event from sax.ScanContext, minus the per-event dispatch
// and text-string allocations. A SkipElement token — emitted by a scan
// pruned with this plan's own signature (sax.Options.Prune) — maps to
// one SkipSubtree step.
func (s *Session) HandleBatch(b *sax.Batch) error {
	if s.done {
		return errClosed
	}
	e := s.eng
	for i := range b.Tokens {
		t := &b.Tokens[i]
		var err error
		switch t.Kind {
		case sax.StartElement:
			err = e.StartElement(t.Name)
		case sax.EndElement:
			err = e.EndElement(t.Name)
		case sax.SkipElement:
			err = e.skipSubtree(t.Name)
		default:
			err = e.textBytes(t.Data)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// SkipSubtree consumes a complete element named name — start tag,
// entire content, end tag — in a single step, without delivering its
// interior events. It is the selective fan-out fast path: the caller
// (a router such as internal/mux) guarantees, from the plan's
// Signature, that nothing under the element can match the query. The
// parent content model still validates the element and punctuation
// events still fire; the element's interior is not validated. Calling
// it for a subtree the plan consumes is a routing bug and returns a
// RunError.
func (s *Session) SkipSubtree(name string) error {
	if s.done {
		return errClosed
	}
	return s.eng.skipSubtree(name)
}

// Flush pushes buffered output through to the session's writer without
// ending the stream. The engine emits results incrementally as matching
// subtrees complete, but batches them in the writer's 64 KB buffer; a
// streaming caller (a standing subscription over a live ingest) calls
// Flush at its delivery granularity so subscribers see results as they
// are produced rather than at end of document.
func (s *Session) Flush() error {
	if s.done {
		return errClosed
	}
	return s.eng.w.Flush()
}

// Finish signals end of stream: the document scope closes (running any
// remaining on-first handlers), output is flushed, and the execution
// statistics are returned. The session is dead afterwards. Finish is the
// end-of-document finalization point — for a stream-fed session it is
// the "EndStream" event, the only place document-lifetime buffers are
// released and end-of-stream handlers run.
func (s *Session) Finish() (Stats, error) {
	if s.done {
		return Stats{}, errClosed
	}
	err := s.eng.finish()
	if err == nil {
		err = s.eng.w.Flush()
	}
	return s.close(), err
}

// Abort abandons the execution without running end-of-stream handlers or
// flushing buffered output; use it when the event stream failed. It
// returns the statistics accumulated so far and is a no-op on a finished
// session.
func (s *Session) Abort() Stats {
	if s.done {
		return Stats{}
	}
	return s.close()
}

// close snapshots stats and recycles the engine.
func (s *Session) close() Stats {
	st := Stats{
		PeakBufferBytes: s.eng.peakBytes,
		OutputBytes:     s.eng.w.BytesWritten(),
		Tokens:          s.eng.tokens,
	}
	s.eng.release()
	s.eng = nil
	s.done = true
	return st
}

// enginePool recycles engine shells — the frame stack, the instance map,
// and the output writer's 64 KB buffer — across executions, so a resident
// server does not churn allocations per query.
var enginePool sync.Pool

func newEngine(plan *Plan, w io.Writer) *engine {
	e, _ := enginePool.Get().(*engine)
	if e == nil {
		e = &engine{
			w:    sax.NewWriter(nil),
			inst: make(map[string]*scopeRT),
		}
	}
	e.plan = plan
	e.w.Reset(w)
	return e
}

// release clears all per-run state (including pointers parked beyond the
// frame stack's length, which would otherwise pin buffered subtrees) and
// returns the engine to the pool.
func (e *engine) release() {
	e.plan = nil
	e.w.Reset(nil)
	frames := e.frames[:cap(e.frames)]
	for i := range frames {
		frames[i].scrub()
	}
	e.frames = e.frames[:0]
	clear(e.inst)
	clear(e.selScratch[:cap(e.selScratch)])
	e.selScratch = e.selScratch[:0]
	e.constRHS[0] = cmpVal{}
	if len(e.navVals) > 4096 {
		e.navVals = nil // one huge join burst must not pin its table
	} else {
		clear(e.navVals)
	}
	e.navValsGen = -1
	clear(e.cmpArena[:cap(e.cmpArena)])
	e.cmpArena = e.cmpArena[:0]
	clear(e.opMemoRoot)
	clear(e.opMemoVals)
	clear(e.opMemoInMap)
	e.curBytes, e.peakBytes, e.tokens = 0, 0, 0
	enginePool.Put(e)
}

package engine

import (
	"strings"
	"testing"
)

// These tests target the condition machinery: on-the-fly flags, numeric
// vs string comparison, Boolean combinations, scaled arithmetic, and
// watcher sharing.

const condDTD = `
<!ELEMENT list (entry)*>
<!ELEMENT entry (id,score,tag*,note?)>
<!ELEMENT id (#PCDATA)>
<!ELEMENT score (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
<!ELEMENT note (#PCDATA)>
`

const condDoc = `<list>` +
	`<entry><id>e1</id><score>10</score><tag>red</tag><tag>blue</tag></entry>` +
	`<entry><id>e2</id><score>9</score><tag>red</tag><note>n</note></entry>` +
	`<entry><id>e3</id><score>100</score></entry>` +
	`<entry><id>e4</id><score>-5</score><note>x</note></entry>` +
	`</list>`

func TestNumericFlagComparison(t *testing.T) {
	// 9 < 10 numerically but "9" > "10" lexicographically; flags must
	// compare numerically when both sides are numbers.
	st := runBoth(t, condDTD,
		`{ for $e in /list/entry where $e/score >= 10 return { $e/id } }`, condDoc)
	if st.PeakBufferBytes == 0 {
		t.Error("id output waits for score; some buffering expected")
	}
}

func TestStringFlagComparison(t *testing.T) {
	runBoth(t, condDTD,
		`{ for $e in /list/entry where $e/tag = 'blue' return { $e/id } }`, condDoc)
}

func TestBooleanCombinations(t *testing.T) {
	queries := []string{
		`{ for $e in /list/entry where $e/tag = 'red' and $e/score > 5 return { $e/id } }`,
		`{ for $e in /list/entry where $e/tag = 'blue' or exists $e/note return { $e/id } }`,
		`{ for $e in /list/entry where not $e/tag = 'red' return { $e/id } }`,
		`{ for $e in /list/entry where not (exists $e/tag or exists $e/note) return { $e/id } }`,
		`{ for $e in /list/entry where true return { $e/id } }`,
		`{ for $e in /list/entry where $e/score != 9 and ($e/tag = 'red' or empty($e/note)) return { $e/id } }`,
	}
	for _, q := range queries {
		runBoth(t, condDTD, q, condDoc)
	}
}

func TestScaledComparisonFlag(t *testing.T) {
	// score > 2 * score is never true; score <= 2 * score holds for
	// positive scores. Exercises the arithmetic operand path.
	runBoth(t, condDTD,
		`{ for $e in /list/entry where $e/score > 100 return never }`, condDoc)
	d := `
<!ELEMENT site (person*,auction*)>
<!ELEMENT person (income)>
<!ELEMENT income (#PCDATA)>
<!ELEMENT auction (initial)>
<!ELEMENT initial (#PCDATA)>
`
	doc := `<site>` +
		`<person><income>60000</income></person>` +
		`<person><income>100</income></person>` +
		`<auction><initial>10</initial></auction>` +
		`<auction><initial>50000</initial></auction>` +
		`</site>`
	runBoth(t, d, `{ for $p in /site/person return
		{ for $o in /site/auction where $p/income > 5000 * $o/initial return <hit/> } }`, doc)
}

func TestNonNumericScaledOperandContributesNothing(t *testing.T) {
	d := `
<!ELEMENT r (a*,b*)>
<!ELEMENT a (v)>
<!ELEMENT v (#PCDATA)>
<!ELEMENT b (w)>
<!ELEMENT w (#PCDATA)>
`
	doc := `<r><a><v>100</v></a><b><w>oops</w></b><b><w>1</w></b></r>`
	// w = "oops" cannot be scaled; only w = 1 (scaled to 5) participates.
	runBoth(t, d, `{ for $a in /r/a return
		{ for $b in /r/b where $a/v > 5 * $b/w return <hit/> } }`, doc)
}

func TestWatcherSharingAcrossHandlers(t *testing.T) {
	// The same condition appears in several guarded strings; the plan must
	// hold exactly one watcher for it.
	schema, plan := compilePlan(t, condDTD,
		`{ for $e in /list/entry where $e/score > 5 return <a> { $e/tag } <b/> }`)
	_ = schema
	desc := plan.Describe()
	if n := strings.Count(desc, `score > "5"`); n != 1 {
		t.Errorf("watcher duplicated %d times:\n%s", n, desc)
	}
}

func TestEmptyElementContent(t *testing.T) {
	d := `
<!ELEMENT r (mark?,item*)>
<!ELEMENT mark EMPTY>
<!ELEMENT item (#PCDATA)>
`
	q := `{ for $i in /r/item return { if exists $ROOT/r/mark then { $i } } }`
	runBoth(t, d, q, `<r><mark/><item>1</item><item>2</item></r>`)
	runBoth(t, d, q, `<r><item>1</item></r>`)
}

func TestDeepWatcherPath(t *testing.T) {
	d := `
<!ELEMENT r (meta,row*)>
<!ELEMENT meta (info)>
<!ELEMENT info (lang)>
<!ELEMENT lang (#PCDATA)>
<!ELEMENT row (#PCDATA)>
`
	q := `{ for $x in /r/row return { if $ROOT/r/meta/info/lang = 'en' then { $x } } }`
	runBoth(t, d, q, `<r><meta><info><lang>en</lang></info></meta><row>1</row><row>2</row></r>`)
	runBoth(t, d, q, `<r><meta><info><lang>de</lang></info></meta><row>1</row></r>`)
}

func TestConditionOnMissingPath(t *testing.T) {
	// Paths that never match: comparisons are false, empty() is true.
	runBoth(t, condDTD,
		`{ for $e in /list/entry where $e/nothere = 'x' return no }`, condDoc)
	runBoth(t, condDTD,
		`{ for $e in /list/entry where empty($e/nothere) return { $e/id } }`, condDoc)
}

func TestWhereOnWholeEntryCopy(t *testing.T) {
	// Guarded whole-subtree copy with a condition mixing flags.
	runBoth(t, condDTD,
		`{ for $e in /list/entry where exists $e/note and $e/score < 0 return { $e } }`, condDoc)
}

// compilePlan prepares a plan without running it.
func compilePlan(t *testing.T, dtdText, query string) (string, *Plan) {
	t.Helper()
	schema := mustSchema(t, dtdText)
	f := mustSchedule(t, schema, query)
	plan, err := Compile(schema, f)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return dtdText, plan
}

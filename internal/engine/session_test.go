package engine

import (
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/sax"
)

func sessionTestPlan(t *testing.T) *Plan {
	t.Helper()
	schema := dtd.MustParse(`
<!ELEMENT r (a*)>
<!ELEMENT a (#PCDATA)>
`)
	f, err := core.ParseFlux(`{ ps $ROOT: on r as $x return { $x } }`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(schema, f)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSessionLifecycle: the explicit Begin/events/Finish seam produces
// the same result as Run, and a finished session rejects further use.
func TestSessionLifecycle(t *testing.T) {
	plan := sessionTestPlan(t)
	const doc = `<r><a>hi</a></r>`

	var sb strings.Builder
	s := NewSession(plan, &sb)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sax.ScanString(doc, s, sax.Options{SkipWhitespaceText: true}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != doc {
		t.Errorf("output = %q, want %q", sb.String(), doc)
	}
	if st.Tokens == 0 || st.OutputBytes != int64(len(doc)) {
		t.Errorf("stats = %+v", st)
	}

	if _, err := s.Finish(); err == nil {
		t.Error("second Finish: want an error, got nil")
	}
	if err := s.StartElement("r"); err == nil {
		t.Error("event after Finish: want an error, got nil")
	}
	if st := s.Abort(); st != (Stats{}) {
		t.Errorf("Abort after Finish: stats = %+v, want zero", st)
	}
}

// TestSessionAbort: aborting mid-stream returns partial stats and leaves
// the session unusable; pooled engines must come back clean (exercised by
// the immediately following full run).
func TestSessionAbort(t *testing.T) {
	plan := sessionTestPlan(t)
	s := NewSession(plan, &strings.Builder{})
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartElement("r"); err != nil {
		t.Fatal(err)
	}
	st := s.Abort()
	if st.Tokens != 1 {
		t.Errorf("partial stats tokens = %d, want 1", st.Tokens)
	}

	var sb strings.Builder
	if _, err := Run(plan, strings.NewReader(`<r><a>x</a></r>`), &sb, sax.Options{SkipWhitespaceText: true}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != `<r><a>x</a></r>` {
		t.Errorf("run after abort: output = %q", sb.String())
	}
}

// Package sax implements a lightweight streaming XML layer: a scanner that
// turns a byte stream into SAX-style events, an event serializer, and the
// attribute-to-subelement conversion ("XSAX") used by the FluX paper's
// benchmark setup.
//
// The data model deliberately matches the paper (Section 2): elements and
// character data only. Attributes are either rejected or converted into
// subelements named parent_attr, exactly as the paper adapts the XMark
// schema ("<person id=...>" becomes "<person><person_id>...</person_id>").
package sax

import "fmt"

// Kind identifies the type of a SAX event.
type Kind uint8

const (
	// StartElement is the opening tag of an element.
	StartElement Kind = iota
	// EndElement is the closing tag of an element.
	EndElement
	// Text is character data.
	Text
	// SkipElement stands in for an entire pruned element — start tag,
	// content, end tag — in a batched scan with Options.Prune set. Name
	// is the element's name; the consumer is expected to account for the
	// element as a single skipped step (engine.Session.SkipSubtree).
	SkipElement
)

// String returns a human-readable name for the event kind.
func (k Kind) String() string {
	switch k {
	case StartElement:
		return "start"
	case EndElement:
		return "end"
	case Text:
		return "text"
	case SkipElement:
		return "skip"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is a single SAX event. Name is set for element events, Data for
// text events.
type Event struct {
	// Kind is the event type.
	Kind Kind
	// Name is the element name for StartElement/EndElement/SkipElement.
	Name string
	// Data is the decoded character data for Text events.
	Data string
}

// String renders the event in XML-ish syntax, for test diagnostics.
func (e Event) String() string {
	switch e.Kind {
	case StartElement:
		return "<" + e.Name + ">"
	case EndElement:
		return "</" + e.Name + ">"
	default:
		return fmt.Sprintf("%q", e.Data)
	}
}

// Handler receives the event stream produced by the Scanner. Returning a
// non-nil error aborts the scan and propagates the error to the caller.
//
// The string arguments are only valid for the duration of the call unless
// the scanner was built with interning enabled (the default), in which case
// element names are stable; text data is always copied before delivery.
type Handler interface {
	// StartElement reports an opening tag.
	StartElement(name string) error
	// Text reports one run of decoded character data.
	Text(data string) error
	// EndElement reports a closing tag (or the close of a self-closing
	// element).
	EndElement(name string) error
}

// HandlerFuncs adapts three closures to the Handler interface. Nil funcs
// ignore their events.
type HandlerFuncs struct {
	// Start receives StartElement events.
	Start func(name string) error
	// Chars receives Text events.
	Chars func(data string) error
	// End receives EndElement events.
	End func(name string) error
}

// StartElement implements Handler.
func (h HandlerFuncs) StartElement(name string) error {
	if h.Start == nil {
		return nil
	}
	return h.Start(name)
}

// Text implements Handler.
func (h HandlerFuncs) Text(data string) error {
	if h.Chars == nil {
		return nil
	}
	return h.Chars(data)
}

// EndElement implements Handler.
func (h HandlerFuncs) EndElement(name string) error {
	if h.End == nil {
		return nil
	}
	return h.End(name)
}

// Collector is a Handler that records all events, useful in tests and for
// small in-memory documents.
type Collector struct {
	// Events are the recorded events, in stream order.
	Events []Event
}

// StartElement implements Handler.
func (c *Collector) StartElement(name string) error {
	c.Events = append(c.Events, Event{Kind: StartElement, Name: name})
	return nil
}

// Text implements Handler.
func (c *Collector) Text(data string) error {
	c.Events = append(c.Events, Event{Kind: Text, Data: data})
	return nil
}

// EndElement implements Handler.
func (c *Collector) EndElement(name string) error {
	c.Events = append(c.Events, Event{Kind: EndElement, Name: name})
	return nil
}

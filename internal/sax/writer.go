package sax

import (
	"bufio"
	"bytes"
	"io"
	"strings"
)

// Writer serializes SAX events back into XML text. It implements Handler,
// so a Scanner piped into a Writer round-trips a document (modulo skipped
// constructs such as comments). It also counts bytes written, which the
// benchmark harness uses to size query outputs.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// BytesWritten reports the number of bytes emitted so far (pre-flush
// buffering included).
func (w *Writer) BytesWritten() int64 { return w.n }

// Reset discards any unflushed output and error state and redirects the
// Writer to out, allowing a long-lived server to reuse Writers instead of
// allocating one per query execution.
func (w *Writer) Reset(out io.Writer) {
	w.w.Reset(out)
	w.n = 0
	w.err = nil
}

// Flush flushes the underlying buffered writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) writeString(s string) error {
	if w.err != nil {
		return w.err
	}
	n, err := w.w.WriteString(s)
	w.n += int64(n)
	w.err = err
	return err
}

// StartElement implements Handler.
func (w *Writer) StartElement(name string) error {
	if err := w.writeString("<"); err != nil {
		return err
	}
	if err := w.writeString(name); err != nil {
		return err
	}
	return w.writeString(">")
}

// EndElement implements Handler.
func (w *Writer) EndElement(name string) error {
	if err := w.writeString("</"); err != nil {
		return err
	}
	if err := w.writeString(name); err != nil {
		return err
	}
	return w.writeString(">")
}

// Text implements Handler. Character data is escaped.
func (w *Writer) Text(data string) error {
	return w.writeString(EscapeText(data))
}

// TextBytes is Text for byte-slice payloads — the batched scan path's
// arena-backed tokens are escaped and written without being converted to
// a string first.
func (w *Writer) TextBytes(data []byte) error {
	if w.err != nil {
		return w.err
	}
	if !bytes.ContainsAny(data, "<>&") {
		return w.write(data)
	}
	start := 0
	for i := 0; i < len(data); i++ {
		var esc string
		switch data[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		default:
			continue
		}
		if err := w.write(data[start:i]); err != nil {
			return err
		}
		if err := w.writeString(esc); err != nil {
			return err
		}
		start = i + 1
	}
	return w.write(data[start:])
}

func (w *Writer) write(b []byte) error {
	if w.err != nil {
		return w.err
	}
	n, err := w.w.Write(b)
	w.n += int64(n)
	w.err = err
	return err
}

// Raw writes a pre-formed string (e.g. a fixed output string from a query)
// without escaping.
func (w *Writer) Raw(s string) error { return w.writeString(s) }

// EscapeText escapes the characters that must not appear literally in XML
// character data.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

package sax

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// Options configures a scan.
type Options struct {
	// AttrsToSubelements converts each attribute a="v" on element e into a
	// leading subelement <e_a>v</e_a>, in attribute order. This is the
	// "XSAX" conversion from the paper's benchmark setup. If false,
	// attributes are silently dropped.
	AttrsToSubelements bool

	// SkipWhitespaceText suppresses text events that consist entirely of
	// XML whitespace. Element-content DTD productions treat such text as
	// insignificant, so the engine enables this.
	SkipWhitespaceText bool

	// Prune, when non-nil, enables scanner-level subtree pruning for
	// batched scans: an element with no entry in the trie is consumed
	// raw and delivered as a single SkipElement token instead of being
	// tokenized (see PruneNode). Per-event (Handler) scans ignore it —
	// the Handler interface has no skip event.
	Prune *PruneNode

	// EagerFlush makes a batched scan deliver its accumulated batch
	// before every input refill — i.e. before any read that might block.
	// Pull scans over complete documents leave this off: batches fill to
	// their token/arena limits, amortizing delivery. Push scans over
	// live feeds (StartChunked) turn it on, so events parsed from the
	// bytes received so far reach the handler even when the next chunk
	// is minutes away; the cost is smaller batches when the producer is
	// slower than the scanner. Per-event scans ignore it.
	EagerFlush bool
}

// SyntaxError describes a malformed-XML failure with a byte offset.
type SyntaxError struct {
	// Offset is the byte position in the input where the error was
	// detected.
	Offset int64
	// Msg describes what was malformed.
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sax: syntax error at byte %d: %s", e.Offset, e.Msg)
}

// scannerPool recycles scanners — the 64 KB input block, the name
// interning table, and the scratch buffers — so a resident server running
// many scans does not re-allocate them per query batch.
var scannerPool sync.Pool

// inputBlockSize is the scanner's input buffer: input is consumed a
// block at a time and scanned in place, and the context is polled once
// per refilled block.
const inputBlockSize = 64 << 10

// maxPooledNames bounds the interning table carried across pooled scans;
// a table blown up by one adversarial document is dropped rather than
// pinned in memory forever.
const maxPooledNames = 1 << 12

// maxPooledScratch likewise bounds the pooled scratch buffers (name,
// attribute, and text accumulation), which one huge value would
// otherwise pin.
const maxPooledScratch = 64 << 10

// Scan reads the XML document from r and delivers SAX events to h.
// It validates well-formedness (tag nesting, a single document element)
// but not any schema. Processing instructions, comments, and the DOCTYPE
// declaration are skipped.
func Scan(r io.Reader, h Handler, opt Options) error {
	return ScanContext(context.Background(), r, h, opt)
}

// ScanContext is Scan with cancellation: the scan loop polls ctx at
// input-block granularity (every 64 KB consumed) and stops mid-stream
// with ctx.Err() once the context is done, instead of burning through
// the rest of the document. A nil ctx means the scan is never canceled.
func ScanContext(ctx context.Context, r io.Reader, h Handler, opt Options) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s := getScanner()
	s.rd = r
	s.h = h
	s.opt = opt
	s.ctx = ctx
	err := s.run()
	s.recycle()
	return err
}

func getScanner() *scanner {
	s, _ := scannerPool.Get().(*scanner)
	if s == nil {
		s = &scanner{
			in:    make([]byte, 0, inputBlockSize),
			names: make(map[string]string, 64),
		}
	}
	return s
}

// recycle clears per-scan state and returns the scanner to the pool. The
// interning table is kept (element names repeat across scans of the same
// corpus) unless it has grown past maxPooledNames.
func (s *scanner) recycle() {
	s.rd = nil
	s.h = nil
	s.bh = nil
	s.ctx = nil
	s.opt = Options{}
	s.in = s.in[:0]
	s.pos, s.lim = 0, 0
	s.base = 0
	s.srcEOF = false
	s.readErr = nil
	s.nextErr = nil
	clear(s.stack[:cap(s.stack)])
	s.stack = s.stack[:0]
	clear(s.prune[:cap(s.prune)])
	s.prune = s.prune[:0]
	if cap(s.text) > maxPooledScratch {
		s.text = nil
	} else {
		s.text = s.text[:0]
	}
	if cap(s.buf) > maxPooledScratch {
		s.buf = nil
	} else {
		s.buf = s.buf[:0]
	}
	if len(s.names) > maxPooledNames {
		s.names = make(map[string]string, 64)
		s.nameCache = [nameCacheSize]string{}
	}
	scannerPool.Put(s)
}

// ScanString is a convenience wrapper around Scan for in-memory documents.
func ScanString(doc string, h Handler, opt Options) error {
	return Scan(strings.NewReader(doc), h, opt)
}

type scanner struct {
	rd  io.Reader
	h   Handler      // per-event delivery; nil in batched mode
	bh  BatchHandler // batched delivery; nil in per-event mode
	ctx context.Context
	opt Options

	// Input block. in[pos:lim] is unconsumed data; base is the absolute
	// stream offset of in[0].
	in     []byte
	pos    int
	lim    int
	base   int64
	srcEOF bool

	readErr error // sticky non-EOF read failure (I/O error, cancellation)
	nextErr error // read error delivered after its batch of bytes drains

	stack []string
	text  []byte            // character-data accumulation scratch
	names map[string]string // interning table for element names
	// nameCache is a direct-mapped cache in front of names: element names
	// repeat constantly, and a cheap byte-derived index plus one string
	// compare beats a hashed map lookup per tag.
	nameCache [nameCacheSize]string
	buf       []byte // name/attribute scratch

	// prune, when non-empty, is the prune-trie cursor stack alongside
	// stack (batched scans with Options.Prune only; see prune.go).
	prune []*PruneNode

	// Batched-mode state (see batch.go).
	ring     [batchRingSize]*Batch
	ringPos  int
	bhFailed bool // HandleBatch returned an error; do not flush again
}

// offset is the absolute stream offset of the next unconsumed byte.
func (s *scanner) offset() int64 { return s.base + int64(s.pos) }

// errf builds a SyntaxError — unless the reader itself failed, in which
// case that failure is the root cause and must not be masked as
// "unexpected EOF": a canceled context or an I/O error mid-name is a
// read failure, not malformed XML.
func (s *scanner) errf(format string, args ...any) error {
	if s.readErr != nil {
		return s.readErr
	}
	return &SyntaxError{Offset: s.offset(), Msg: fmt.Sprintf(format, args...)}
}

// refill loads the next input block. It must only be called with the
// current block fully consumed (pos == lim), and polls the context once
// per block — the cancellation granularity of the whole scan.
func (s *scanner) refill() error {
	if s.readErr != nil {
		return s.readErr
	}
	if s.nextErr != nil {
		err := s.nextErr
		s.nextErr = nil
		if err != io.EOF {
			s.readErr = err
		} else {
			s.srcEOF = true
		}
		return err
	}
	if s.srcEOF {
		return io.EOF
	}
	if cerr := s.ctx.Err(); cerr != nil {
		s.readErr = cerr
		return cerr
	}
	if s.opt.EagerFlush && s.bh != nil {
		// About to read — possibly block — on a live feed: hand the
		// events parsed so far to the handler first. A handler failure
		// here is a delivery failure, not malformed input; recording it
		// as the read error keeps errf from dressing it as a syntax
		// error.
		if ferr := s.flushBatch(); ferr != nil {
			s.readErr = ferr
			return ferr
		}
	}
	s.base += int64(s.lim)
	s.pos, s.lim = 0, 0
	s.in = s.in[:cap(s.in)]
	for {
		n, err := s.rd.Read(s.in)
		if n > 0 {
			s.in = s.in[:n]
			s.lim = n
			if err != nil {
				s.nextErr = err // deliver after these bytes drain
			}
			return nil
		}
		if err == io.EOF {
			s.in = s.in[:0]
			s.srcEOF = true
			return io.EOF
		}
		if err != nil {
			s.in = s.in[:0]
			s.readErr = err
			return err
		}
	}
}

func (s *scanner) readByte() (byte, error) {
	if s.pos < s.lim {
		b := s.in[s.pos]
		s.pos++
		return b, nil
	}
	if err := s.refill(); err != nil {
		return 0, err
	}
	b := s.in[s.pos]
	s.pos++
	return b, nil
}

// unreadByte steps back one byte. It is only valid immediately after a
// successful readByte, which guarantees pos > 0.
func (s *scanner) unreadByte() { s.pos-- }

const nameCacheSize = 512

// nameCacheIdx derives a direct-mapped cache slot from cheap byte
// features of a name; collisions just fall through to the map.
func nameCacheIdx(b []byte) int {
	return (int(b[0])*31 + int(b[len(b)-1])*7 + len(b)) & (nameCacheSize - 1)
}

// intern returns a canonical string for the name bytes, avoiding an
// allocation per occurrence of a repeated element name.
func (s *scanner) intern(b []byte) string {
	i := nameCacheIdx(b)
	if c := s.nameCache[i]; c == string(b) { // no alloc: comparison only
		return c
	}
	n, ok := s.names[string(b)] // no alloc: map lookup on []byte key
	if !ok {
		n = string(b)
		s.names[n] = n
	}
	s.nameCache[i] = n
	return n
}

// --- Event emission ------------------------------------------------------
//
// The scanner body is delivery-agnostic: it parses markup and calls the
// emit* methods, which either invoke the per-event Handler or append
// Tokens to the current Batch (copying text into the batch arena).

func (s *scanner) emitStart(name string) error {
	if s.bh == nil {
		return s.h.StartElement(name)
	}
	b := s.curBatch()
	if len(b.Tokens) >= maxBatchTokens {
		if err := s.flushBatch(); err != nil {
			return err
		}
		b = s.curBatch()
	}
	b.Tokens = append(b.Tokens, Token{Kind: StartElement, Name: name})
	return nil
}

func (s *scanner) emitEnd(name string) error {
	if s.bh == nil {
		return s.h.EndElement(name)
	}
	b := s.curBatch()
	if len(b.Tokens) >= maxBatchTokens {
		if err := s.flushBatch(); err != nil {
			return err
		}
		b = s.curBatch()
	}
	b.Tokens = append(b.Tokens, Token{Kind: EndElement, Name: name})
	return nil
}

// emitTextString delivers already-decoded character data held as a
// string (attribute values under AttrsToSubelements).
func (s *scanner) emitTextString(v string) error {
	if s.bh == nil {
		return s.h.Text(v)
	}
	if err := s.roomFor(len(v)); err != nil {
		return err
	}
	b := s.curBatch()
	start := len(b.arena)
	b.arena = append(b.arena, v...)
	b.Tokens = append(b.Tokens, Token{Kind: Text, Data: b.arena[start:len(b.arena):len(b.arena)]})
	return nil
}

// flushText delivers the accumulated character data, decoding entity
// references.
func (s *scanner) flushText() error {
	t := s.text
	if len(t) == 0 {
		return nil
	}
	s.text = s.text[:0]
	return s.emitTextSeg(t)
}

// emitTextSeg delivers one complete character-data segment (t may point
// into the input block or the text scratch; it is consumed before
// return). In batched mode the decoded bytes go straight into the batch
// arena: no string is allocated per text event.
func (s *scanner) emitTextSeg(t []byte) error {
	if s.opt.SkipWhitespaceText && isAllSpaceBytes(t) {
		return nil
	}
	if s.bh == nil {
		if bytes.IndexByte(t, '&') < 0 {
			return s.h.Text(string(t))
		}
		return s.h.Text(decodeEntities(string(t)))
	}
	// Decoding only ever shrinks (every reference is at least as long as
	// its replacement), so len(t) bounds the arena bytes needed.
	if err := s.roomFor(len(t)); err != nil {
		return err
	}
	b := s.curBatch()
	start := len(b.arena)
	if bytes.IndexByte(t, '&') < 0 {
		b.arena = append(b.arena, t...)
	} else {
		b.arena = appendDecoded(b.arena, t)
	}
	b.Tokens = append(b.Tokens, Token{Kind: Text, Data: b.arena[start:len(b.arena):len(b.arena)]})
	return nil
}

// flushTextRaw delivers accumulated CDATA text without entity decoding.
func (s *scanner) flushTextRaw() error {
	t := s.text
	if len(t) == 0 {
		return nil
	}
	s.text = s.text[:0]
	if s.opt.SkipWhitespaceText && isAllSpaceBytes(t) {
		return nil
	}
	if s.bh == nil {
		return s.h.Text(string(t))
	}
	if err := s.roomFor(len(t)); err != nil {
		return err
	}
	b := s.curBatch()
	start := len(b.arena)
	b.arena = append(b.arena, t...)
	b.Tokens = append(b.Tokens, Token{Kind: Text, Data: b.arena[start:len(b.arena):len(b.arena)]})
	return nil
}

// --- Scan loop -----------------------------------------------------------

func (s *scanner) run() error {
	sawRoot := false
	for {
		// Bulk-scan the current block for the next markup boundary,
		// accumulating any character data in between.
		if s.pos < s.lim && s.in[s.pos] != '<' {
			if err := s.textRun(); err != nil {
				return err
			}
			continue
		}
		b, err := s.readByte()
		if err == io.EOF {
			if len(s.stack) > 0 {
				return s.errf("unexpected EOF: %d unclosed element(s), innermost <%s>", len(s.stack), s.stack[len(s.stack)-1])
			}
			if !sawRoot {
				return s.errf("empty document")
			}
			return nil
		}
		if err != nil {
			return err
		}
		if b == '<' {
			if err := s.flushText(); err != nil {
				return err
			}
			if err := s.markup(&sawRoot); err != nil {
				return err
			}
			continue
		}
		// Only reachable when the block was empty before readByte: put the
		// byte back and take the bulk path.
		s.unreadByte()
		if err := s.textRun(); err != nil {
			return err
		}
	}
}

// textRun consumes the maximal run of character data starting at the
// current position — everything up to the next '<'. A run that lies
// entirely within the current block is emitted straight from the input
// buffer, skipping the text scratch; only block-straddling runs
// accumulate. Outside the document element only whitespace is legal.
func (s *scanner) textRun() error {
	if len(s.text) == 0 && len(s.stack) > 0 {
		chunk := s.in[s.pos:s.lim]
		if i := bytes.IndexByte(chunk, '<'); i >= 0 {
			s.pos += i
			return s.emitTextSeg(chunk[:i])
		}
	}
	for {
		chunk := s.in[s.pos:s.lim]
		i := bytes.IndexByte(chunk, '<')
		seg := chunk
		if i >= 0 {
			seg = chunk[:i]
		}
		if len(s.stack) == 0 {
			for j := 0; j < len(seg); j++ {
				if !isXMLSpace(seg[j]) {
					s.pos += j + 1
					return s.errf("character data %q outside document element", seg[j])
				}
			}
		} else {
			s.text = append(s.text, seg...)
		}
		s.pos += len(seg)
		if i >= 0 {
			return nil
		}
		if err := s.refill(); err != nil {
			if err == io.EOF {
				return nil // run() handles end of stream
			}
			return err
		}
	}
}

// markup handles everything after a '<'.
func (s *scanner) markup(sawRoot *bool) error {
	b, err := s.readByte()
	if err != nil {
		return s.errf("unexpected EOF after '<'")
	}
	switch {
	case b == '/':
		return s.endTag()
	case b == '?':
		return s.skipPI()
	case b == '!':
		return s.bangMarkup()
	default:
		s.unreadByte()
		if len(s.stack) == 0 && *sawRoot {
			return s.errf("content after document element")
		}
		*sawRoot = true
		return s.startTag()
	}
}

// readName scans an element or attribute name. The fast path resolves
// the whole name inside the current block; the scratch buffer is only
// used when a name straddles a block boundary.
func (s *scanner) readName() (string, error) {
	i := s.pos
	for i < s.lim && isNameByte(s.in[i]) {
		i++
	}
	if i < s.lim {
		if i == s.pos {
			return "", s.errf("expected name")
		}
		n := s.intern(s.in[s.pos:i])
		s.pos = i
		return n, nil
	}
	// Name may continue into the next block: fall back to scratch.
	s.buf = append(s.buf[:0], s.in[s.pos:i]...)
	s.pos = i
	for {
		b, err := s.readByte()
		if err != nil {
			if err == io.EOF && len(s.buf) > 0 {
				// A name ending exactly at EOF is always malformed markup —
				// let the caller report the context.
				return "", s.errf("unexpected EOF in name")
			}
			return "", s.errf("unexpected EOF in name")
		}
		if isNameByte(b) {
			s.buf = append(s.buf, b)
			continue
		}
		s.unreadByte()
		break
	}
	if len(s.buf) == 0 {
		return "", s.errf("expected name")
	}
	return s.intern(s.buf), nil
}

func (s *scanner) skipSpace() error {
	for {
		b, err := s.readByte()
		if err != nil {
			return err
		}
		if !isXMLSpace(b) {
			s.unreadByte()
			return nil
		}
	}
}

func (s *scanner) startTag() error {
	name, err := s.readName()
	if err != nil {
		return err
	}
	// Prune-trie descent: an element the trie has no entry for collapses
	// into one SkipElement token, its bytes consumed raw.
	var pnext *PruneNode
	if len(s.prune) > 0 {
		cur := s.prune[len(s.prune)-1]
		pnext = cur
		if !cur.All {
			if pnext = cur.Kids[name]; pnext == nil {
				return s.skipElement(name)
			}
		}
	}
	type attr struct{ name, value string }
	var attrs []attr
	selfClose := false
	for {
		if err := s.skipSpace(); err != nil {
			return s.errf("unexpected EOF in <%s ...>", name)
		}
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in <%s ...>", name)
		}
		if b == '>' {
			break
		}
		if b == '/' {
			b2, err := s.readByte()
			if err != nil || b2 != '>' {
				return s.errf("expected '/>' in <%s ...>", name)
			}
			selfClose = true
			break
		}
		s.unreadByte()
		aname, err := s.readName()
		if err != nil {
			return err
		}
		if err := s.skipSpace(); err != nil {
			return s.errf("unexpected EOF in attribute %s", aname)
		}
		b, err = s.readByte()
		if err != nil || b != '=' {
			return s.errf("expected '=' after attribute name %s", aname)
		}
		if err := s.skipSpace(); err != nil {
			return s.errf("unexpected EOF in attribute %s", aname)
		}
		quote, err := s.readByte()
		if err != nil || (quote != '"' && quote != '\'') {
			return s.errf("expected quoted value for attribute %s", aname)
		}
		s.buf = s.buf[:0]
		for {
			b, err := s.readByte()
			if err != nil {
				return s.errf("unexpected EOF in attribute value of %s", aname)
			}
			if b == quote {
				break
			}
			s.buf = append(s.buf, b)
		}
		if s.opt.AttrsToSubelements {
			attrs = append(attrs, attr{aname, decodeEntities(string(s.buf))})
		}
	}

	if err := s.emitStart(name); err != nil {
		return err
	}
	if s.opt.AttrsToSubelements {
		for _, a := range attrs {
			sub := s.intern(append(append(append(s.buf[:0], name...), '_'), a.name...))
			if pnext != nil && !pnext.All && pnext.Kids[sub] == nil {
				if err := s.emitSkip(sub); err != nil {
					return err
				}
				continue
			}
			if err := s.emitStart(sub); err != nil {
				return err
			}
			if a.value != "" {
				if err := s.emitTextString(a.value); err != nil {
					return err
				}
			}
			if err := s.emitEnd(sub); err != nil {
				return err
			}
		}
	}
	if selfClose {
		return s.emitEnd(name)
	}
	s.stack = append(s.stack, name)
	if pnext != nil {
		s.prune = append(s.prune, pnext)
	}
	return nil
}

func (s *scanner) endTag() error {
	name, err := s.readName()
	if err != nil {
		return err
	}
	if err := s.skipSpace(); err != nil {
		return s.errf("unexpected EOF in </%s>", name)
	}
	b, err := s.readByte()
	if err != nil || b != '>' {
		return s.errf("expected '>' in </%s>", name)
	}
	if len(s.stack) == 0 {
		return s.errf("close tag </%s> with no open element", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return s.errf("close tag </%s> does not match open <%s>", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	if len(s.prune) > 0 {
		s.prune = s.prune[:len(s.prune)-1]
	}
	return s.emitEnd(name)
}

// skipPI consumes a processing instruction (or XML declaration) up to "?>".
func (s *scanner) skipPI() error {
	prev := byte(0)
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in processing instruction")
		}
		if prev == '?' && b == '>' {
			return nil
		}
		prev = b
	}
}

// bangMarkup handles "<!" constructs: comments, CDATA, and DOCTYPE.
func (s *scanner) bangMarkup() error {
	b, err := s.readByte()
	if err != nil {
		return s.errf("unexpected EOF after '<!'")
	}
	switch b {
	case '-':
		b2, err := s.readByte()
		if err != nil || b2 != '-' {
			return s.errf("malformed comment")
		}
		return s.skipComment()
	case '[':
		return s.cdata()
	default:
		s.unreadByte()
		return s.skipDoctype()
	}
}

func (s *scanner) skipComment() error {
	dashes := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in comment")
		}
		switch {
		case b == '-':
			dashes++
		case b == '>' && dashes >= 2:
			return nil
		default:
			dashes = 0
		}
	}
}

func (s *scanner) cdata() error {
	const open = "CDATA["
	for i := 0; i < len(open); i++ {
		b, err := s.readByte()
		if err != nil || b != open[i] {
			return s.errf("malformed CDATA section")
		}
	}
	if len(s.stack) == 0 {
		return s.errf("CDATA outside document element")
	}
	brackets := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in CDATA section")
		}
		switch {
		case b == ']':
			if brackets == 2 {
				s.text = append(s.text, ']')
			} else {
				brackets++
			}
		case b == '>' && brackets >= 2:
			return s.flushTextRaw()
		default:
			for ; brackets > 0; brackets-- {
				s.text = append(s.text, ']')
			}
			s.text = append(s.text, b)
		}
	}
}

// skipDoctype consumes a DOCTYPE declaration, including an internal subset.
func (s *scanner) skipDoctype() error {
	depth := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in DOCTYPE")
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

func isXMLSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

func isAllSpaceBytes(s []byte) bool {
	for i := 0; i < len(s); i++ {
		if !isXMLSpace(s[i]) {
			return false
		}
	}
	return true
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.' || b == ':' || b >= 0x80
}

// decodeEntities resolves the five predefined XML entities and numeric
// character references. Unknown entities are left verbatim.
func decodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:next])
			s = s[next:]
			continue
		}
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 12 {
			b.WriteByte('&')
			s = s[1:]
			continue
		}
		ent := s[1:semi]
		switch {
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "amp":
			b.WriteByte('&')
		case ent == "apos":
			b.WriteByte('\'')
		case ent == "quot":
			b.WriteByte('"')
		case strings.HasPrefix(ent, "#"):
			num := ent[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				num, base = num[1:], 16
			}
			if n, err := strconv.ParseInt(num, base, 32); err == nil && n >= 0 {
				b.WriteRune(rune(n))
			} else {
				b.WriteString(s[:semi+1])
			}
		default:
			b.WriteString(s[:semi+1])
		}
		s = s[semi+1:]
	}
	return b.String()
}

// appendDecoded is decodeEntities over byte slices, appending the decoded
// text to dst — the batched path's allocation-free variant. The decoded
// form is never longer than the input.
func appendDecoded(dst, s []byte) []byte {
	for len(s) > 0 {
		if s[0] != '&' {
			next := bytes.IndexByte(s, '&')
			if next < 0 {
				return append(dst, s...)
			}
			dst = append(dst, s[:next]...)
			s = s[next:]
			continue
		}
		semi := bytes.IndexByte(s, ';')
		if semi < 0 || semi > 12 {
			dst = append(dst, '&')
			s = s[1:]
			continue
		}
		ent := s[1:semi]
		switch {
		case string(ent) == "lt":
			dst = append(dst, '<')
		case string(ent) == "gt":
			dst = append(dst, '>')
		case string(ent) == "amp":
			dst = append(dst, '&')
		case string(ent) == "apos":
			dst = append(dst, '\'')
		case string(ent) == "quot":
			dst = append(dst, '"')
		case len(ent) > 0 && ent[0] == '#':
			num := ent[1:]
			base := 10
			if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
				num, base = num[1:], 16
			}
			if n, err := strconv.ParseInt(string(num), base, 32); err == nil && n >= 0 {
				dst = utf8.AppendRune(dst, rune(n))
			} else {
				dst = append(dst, s[:semi+1]...)
			}
		default:
			dst = append(dst, s[:semi+1]...)
		}
		s = s[semi+1:]
	}
	return dst
}

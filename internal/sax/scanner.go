package sax

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Options configures a scan.
type Options struct {
	// AttrsToSubelements converts each attribute a="v" on element e into a
	// leading subelement <e_a>v</e_a>, in attribute order. This is the
	// "XSAX" conversion from the paper's benchmark setup. If false,
	// attributes are silently dropped.
	AttrsToSubelements bool

	// SkipWhitespaceText suppresses text events that consist entirely of
	// XML whitespace. Element-content DTD productions treat such text as
	// insignificant, so the engine enables this.
	SkipWhitespaceText bool
}

// SyntaxError describes a malformed-XML failure with a byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sax: syntax error at byte %d: %s", e.Offset, e.Msg)
}

// scannerPool recycles scanners — the 64 KB read buffer, the name
// interning table, and the scratch buffers — so a resident server running
// many scans does not re-allocate them per query batch.
var scannerPool sync.Pool

// maxPooledNames bounds the interning table carried across pooled scans;
// a table blown up by one adversarial document is dropped rather than
// pinned in memory forever.
const maxPooledNames = 1 << 12

// maxPooledScratch likewise bounds the pooled name/attribute scratch
// buffer, which one huge attribute value would otherwise pin.
const maxPooledScratch = 64 << 10

// Scan reads the XML document from r and delivers SAX events to h.
// It validates well-formedness (tag nesting, a single document element)
// but not any schema. Processing instructions, comments, and the DOCTYPE
// declaration are skipped.
func Scan(r io.Reader, h Handler, opt Options) error {
	return ScanContext(context.Background(), r, h, opt)
}

// ctxPollByteMask batches cancellation polls: the context is checked
// once every 64 KB of consumed input. Byte granularity (rather than
// per-event) bounds the extra work after a cancellation even for
// documents dominated by huge text nodes, where events are rare.
const ctxPollByteMask = 1<<16 - 1

// ScanContext is Scan with cancellation: the scan loop polls ctx at
// input-batch granularity (every 64 KB consumed) and stops mid-stream
// with ctx.Err() once the context is done, instead of burning through
// the rest of the document. A nil ctx means the scan is never canceled.
func ScanContext(ctx context.Context, r io.Reader, h Handler, opt Options) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s, _ := scannerPool.Get().(*scanner)
	if s == nil {
		s = &scanner{
			r:     bufio.NewReaderSize(nil, 64<<10),
			names: make(map[string]string, 64),
		}
	}
	s.r.Reset(r)
	s.h = h
	s.opt = opt
	s.ctx = ctx
	err := s.run()
	s.recycle()
	return err
}

// recycle clears per-scan state and returns the scanner to the pool. The
// interning table is kept (element names repeat across scans of the same
// corpus) unless it has grown past maxPooledNames.
func (s *scanner) recycle() {
	s.r.Reset(nil)
	s.h = nil
	s.ctx = nil
	s.opt = Options{}
	s.off = 0
	s.readErr = nil
	clear(s.stack[:cap(s.stack)])
	s.stack = s.stack[:0]
	s.text.Reset()
	if cap(s.buf) > maxPooledScratch {
		s.buf = nil
	} else {
		s.buf = s.buf[:0]
	}
	if len(s.names) > maxPooledNames {
		s.names = make(map[string]string, 64)
	}
	scannerPool.Put(s)
}

// ScanString is a convenience wrapper around Scan for in-memory documents.
func ScanString(doc string, h Handler, opt Options) error {
	return Scan(strings.NewReader(doc), h, opt)
}

type scanner struct {
	r       *bufio.Reader
	h       Handler
	ctx     context.Context
	opt     Options
	off     int64
	readErr error // sticky non-EOF read failure (I/O error, cancellation)
	stack   []string
	text    strings.Builder
	names   map[string]string // interning table for element names
	buf     []byte            // scratch
}

// errf builds a SyntaxError — unless the reader itself failed, in which
// case that failure is the root cause and must not be masked as
// "unexpected EOF": a canceled context or an I/O error mid-name is a
// read failure, not malformed XML.
func (s *scanner) errf(format string, args ...any) error {
	if s.readErr != nil {
		return s.readErr
	}
	return &SyntaxError{Offset: s.off, Msg: fmt.Sprintf(format, args...)}
}

func (s *scanner) readByte() (byte, error) {
	b, err := s.r.ReadByte()
	if err == nil {
		s.off++
		if s.off&ctxPollByteMask == 0 {
			if cerr := s.ctx.Err(); cerr != nil {
				s.readErr = cerr
				return 0, cerr
			}
		}
		return b, nil
	}
	if err != io.EOF {
		s.readErr = err
	}
	return 0, err
}

func (s *scanner) unreadByte() {
	// bufio guarantees success right after a successful ReadByte.
	_ = s.r.UnreadByte()
	s.off--
}

// intern returns a canonical string for the name bytes, avoiding an
// allocation per occurrence of a repeated element name.
func (s *scanner) intern(b []byte) string {
	if n, ok := s.names[string(b)]; ok { // no alloc: map lookup on []byte key
		return n
	}
	n := string(b)
	s.names[n] = n
	return n
}

func (s *scanner) run() error {
	sawRoot := false
	for {
		b, err := s.readByte()
		if err == io.EOF {
			if len(s.stack) > 0 {
				return s.errf("unexpected EOF: %d unclosed element(s), innermost <%s>", len(s.stack), s.stack[len(s.stack)-1])
			}
			if !sawRoot {
				return s.errf("empty document")
			}
			return nil
		}
		if err != nil {
			return err
		}
		if b == '<' {
			if err := s.flushText(); err != nil {
				return err
			}
			rootClosed, err := s.markup(&sawRoot)
			if err != nil {
				return err
			}
			_ = rootClosed
		} else {
			if len(s.stack) == 0 {
				if !isXMLSpace(b) {
					return s.errf("character data %q outside document element", b)
				}
				continue
			}
			s.text.WriteByte(b)
		}
	}
}

func (s *scanner) flushText() error {
	if s.text.Len() == 0 {
		return nil
	}
	t := s.text.String()
	s.text.Reset()
	if s.opt.SkipWhitespaceText && isAllSpace(t) {
		return nil
	}
	return s.h.Text(decodeEntities(t))
}

// markup handles everything after a '<'.
func (s *scanner) markup(sawRoot *bool) (bool, error) {
	b, err := s.readByte()
	if err != nil {
		return false, s.errf("unexpected EOF after '<'")
	}
	switch {
	case b == '/':
		return s.endTag()
	case b == '?':
		return false, s.skipPI()
	case b == '!':
		return false, s.bangMarkup()
	default:
		s.unreadByte()
		if len(s.stack) == 0 && *sawRoot {
			return false, s.errf("content after document element")
		}
		*sawRoot = true
		return false, s.startTag()
	}
}

func (s *scanner) readName() (string, error) {
	s.buf = s.buf[:0]
	for {
		b, err := s.readByte()
		if err != nil {
			return "", s.errf("unexpected EOF in name")
		}
		if isNameByte(b) {
			s.buf = append(s.buf, b)
			continue
		}
		s.unreadByte()
		break
	}
	if len(s.buf) == 0 {
		return "", s.errf("expected name")
	}
	return s.intern(s.buf), nil
}

func (s *scanner) skipSpace() error {
	for {
		b, err := s.readByte()
		if err != nil {
			return err
		}
		if !isXMLSpace(b) {
			s.unreadByte()
			return nil
		}
	}
}

func (s *scanner) startTag() error {
	name, err := s.readName()
	if err != nil {
		return err
	}
	type attr struct{ name, value string }
	var attrs []attr
	selfClose := false
	for {
		if err := s.skipSpace(); err != nil {
			return s.errf("unexpected EOF in <%s ...>", name)
		}
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in <%s ...>", name)
		}
		if b == '>' {
			break
		}
		if b == '/' {
			b2, err := s.readByte()
			if err != nil || b2 != '>' {
				return s.errf("expected '/>' in <%s ...>", name)
			}
			selfClose = true
			break
		}
		s.unreadByte()
		aname, err := s.readName()
		if err != nil {
			return err
		}
		if err := s.skipSpace(); err != nil {
			return s.errf("unexpected EOF in attribute %s", aname)
		}
		b, err = s.readByte()
		if err != nil || b != '=' {
			return s.errf("expected '=' after attribute name %s", aname)
		}
		if err := s.skipSpace(); err != nil {
			return s.errf("unexpected EOF in attribute %s", aname)
		}
		quote, err := s.readByte()
		if err != nil || (quote != '"' && quote != '\'') {
			return s.errf("expected quoted value for attribute %s", aname)
		}
		s.buf = s.buf[:0]
		for {
			b, err := s.readByte()
			if err != nil {
				return s.errf("unexpected EOF in attribute value of %s", aname)
			}
			if b == quote {
				break
			}
			s.buf = append(s.buf, b)
		}
		if s.opt.AttrsToSubelements {
			attrs = append(attrs, attr{aname, decodeEntities(string(s.buf))})
		}
	}

	if err := s.h.StartElement(name); err != nil {
		return err
	}
	if s.opt.AttrsToSubelements {
		for _, a := range attrs {
			sub := s.intern(append(append(append(s.buf[:0], name...), '_'), a.name...))
			if err := s.h.StartElement(sub); err != nil {
				return err
			}
			if a.value != "" {
				if err := s.h.Text(a.value); err != nil {
					return err
				}
			}
			if err := s.h.EndElement(sub); err != nil {
				return err
			}
		}
	}
	if selfClose {
		return s.h.EndElement(name)
	}
	s.stack = append(s.stack, name)
	return nil
}

func (s *scanner) endTag() (bool, error) {
	name, err := s.readName()
	if err != nil {
		return false, err
	}
	if err := s.skipSpace(); err != nil {
		return false, s.errf("unexpected EOF in </%s>", name)
	}
	b, err := s.readByte()
	if err != nil || b != '>' {
		return false, s.errf("expected '>' in </%s>", name)
	}
	if len(s.stack) == 0 {
		return false, s.errf("close tag </%s> with no open element", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return false, s.errf("close tag </%s> does not match open <%s>", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	if err := s.h.EndElement(name); err != nil {
		return false, err
	}
	return len(s.stack) == 0, nil
}

// skipPI consumes a processing instruction (or XML declaration) up to "?>".
func (s *scanner) skipPI() error {
	prev := byte(0)
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in processing instruction")
		}
		if prev == '?' && b == '>' {
			return nil
		}
		prev = b
	}
}

// bangMarkup handles "<!" constructs: comments, CDATA, and DOCTYPE.
func (s *scanner) bangMarkup() error {
	b, err := s.readByte()
	if err != nil {
		return s.errf("unexpected EOF after '<!'")
	}
	switch b {
	case '-':
		b2, err := s.readByte()
		if err != nil || b2 != '-' {
			return s.errf("malformed comment")
		}
		return s.skipComment()
	case '[':
		return s.cdata()
	default:
		s.unreadByte()
		return s.skipDoctype()
	}
}

func (s *scanner) skipComment() error {
	dashes := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in comment")
		}
		switch {
		case b == '-':
			dashes++
		case b == '>' && dashes >= 2:
			return nil
		default:
			dashes = 0
		}
	}
}

func (s *scanner) cdata() error {
	const open = "CDATA["
	for i := 0; i < len(open); i++ {
		b, err := s.readByte()
		if err != nil || b != open[i] {
			return s.errf("malformed CDATA section")
		}
	}
	if len(s.stack) == 0 {
		return s.errf("CDATA outside document element")
	}
	brackets := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in CDATA section")
		}
		switch {
		case b == ']':
			if brackets == 2 {
				s.text.WriteByte(']')
			} else {
				brackets++
			}
		case b == '>' && brackets >= 2:
			if err := s.flushTextRaw(); err != nil {
				return err
			}
			return nil
		default:
			for ; brackets > 0; brackets-- {
				s.text.WriteByte(']')
			}
			s.text.WriteByte(b)
		}
	}
}

// flushTextRaw delivers accumulated CDATA text without entity decoding.
func (s *scanner) flushTextRaw() error {
	if s.text.Len() == 0 {
		return nil
	}
	t := s.text.String()
	s.text.Reset()
	if s.opt.SkipWhitespaceText && isAllSpace(t) {
		return nil
	}
	return s.h.Text(t)
}

// skipDoctype consumes a DOCTYPE declaration, including an internal subset.
func (s *scanner) skipDoctype() error {
	depth := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in DOCTYPE")
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

func isXMLSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

func isAllSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isXMLSpace(s[i]) {
			return false
		}
	}
	return true
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.' || b == ':' || b >= 0x80
}

// decodeEntities resolves the five predefined XML entities and numeric
// character references. Unknown entities are left verbatim.
func decodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:next])
			s = s[next:]
			continue
		}
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 12 {
			b.WriteByte('&')
			s = s[1:]
			continue
		}
		ent := s[1:semi]
		switch {
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "amp":
			b.WriteByte('&')
		case ent == "apos":
			b.WriteByte('\'')
		case ent == "quot":
			b.WriteByte('"')
		case strings.HasPrefix(ent, "#"):
			num := ent[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				num, base = num[1:], 16
			}
			if n, err := strconv.ParseInt(num, base, 32); err == nil && n >= 0 {
				b.WriteRune(rune(n))
			} else {
				b.WriteString(s[:semi+1])
			}
		default:
			b.WriteString(s[:semi+1])
		}
		s = s[semi+1:]
	}
	return b.String()
}

package sax

// Unit tests for the Batch reference count (Retain/Release/waitIdle) —
// the mechanism the parallel mux pipeline uses to keep delivered
// batches alive while worker goroutines are still reading them, and the
// scanner's only backpressure edge (flushBatch blocks on the wrapping
// slot, releaseRing blocks at end of scan).

import (
	"sync/atomic"
	"testing"
	"time"
)

// tokensToEvents deep-copies a batch's tokens into comparable Events
// (Text payloads copied out of the arena).
func tokensToEvents(b *Batch) []Event {
	evs := make([]Event, 0, len(b.Tokens))
	for i := range b.Tokens {
		tok := &b.Tokens[i]
		if tok.Kind == Text {
			evs = append(evs, Event{Kind: Text, Data: string(tok.Data)})
		} else {
			evs = append(evs, Event{Kind: tok.Kind, Name: tok.Name})
		}
	}
	return evs
}

// TestBatchWaitIdle: waitIdle returns immediately at zero references, is
// not fooled by a stale wakeup token left behind by an earlier
// Retain/Release cycle, and otherwise blocks until the last Release —
// which may come from another goroutine.
func TestBatchWaitIdle(t *testing.T) {
	b := &Batch{idle: make(chan struct{}, 1)}
	b.waitIdle() // no references: must not block

	// A full Retain/Release cycle with no waiter deposits a wakeup token
	// that nothing consumes. The next waitIdle takes the fast path (refs
	// already zero) and leaves the token in place...
	b.Retain()
	b.Release()
	b.waitIdle()

	// ...so the cycle after that sees a spurious wakeup first. waitIdle
	// must re-check the count and keep waiting for the real release.
	b.Retain()
	b.Retain()
	var released atomic.Bool
	go func() {
		b.Release() // count still positive: no wakeup yet
		time.Sleep(20 * time.Millisecond)
		released.Store(true)
		b.Release()
	}()
	b.waitIdle()
	if !released.Load() {
		t.Fatal("waitIdle returned before the last Release")
	}
}

// TestBatchUnbalancedReleasePanics: a Release with no matching Retain is
// a bug in the consumer and must panic rather than corrupt the count.
func TestBatchUnbalancedReleasePanics(t *testing.T) {
	b := &Batch{idle: make(chan struct{}, 1)}
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Retain did not panic")
		}
	}()
	b.Release()
}

// TestScanBatchedRetainBackpressure: a retained batch stalls the
// scanner at exactly the ring wrap — after batchRingSize further
// deliveries flushBatch blocks in waitIdle on the retained slot — and
// while it is stalled the batch's tokens and arena remain exactly as
// delivered. A Release from a foreign goroutine unblocks the scan,
// which then completes with the full, unchanged event stream. Run with
// -race: the release goroutine reads the retained tokens concurrently
// with the blocked scanner.
func TestScanBatchedRetainBackpressure(t *testing.T) {
	doc := bigDoc(5000) // many times batchRingSize batches
	var want Collector
	if err := ScanString(doc, &want, Options{}); err != nil {
		t.Fatal(err)
	}

	var (
		got      batchCollector
		calls    int
		retained *Batch
		snapshot []Event
		stalled  = make(chan struct{}) // closed when the producer is about to wrap onto the retained slot
		released = make(chan struct{}) // closed just before Release
	)
	go func() {
		<-stalled
		// Give the scanner time to (wrongly) run ahead; if waitIdle did
		// not block, delivery batchRingSize+1 would land before Release
		// and the handler below would report it.
		time.Sleep(50 * time.Millisecond)
		evs := tokensToEvents(retained)
		if len(evs) != len(snapshot) {
			t.Errorf("retained batch has %d tokens during stall, want %d", len(evs), len(snapshot))
		} else {
			for i := range snapshot {
				if evs[i] != snapshot[i] {
					t.Errorf("retained token %d = %v during stall, want %v", i, evs[i], snapshot[i])
					break
				}
			}
		}
		close(released)
		retained.Release()
	}()

	err := ScanBatchedString(doc, batchFunc(func(b *Batch) error {
		calls++
		switch calls {
		case 1:
			b.Retain()
			retained = b
			snapshot = tokensToEvents(b)
		case batchRingSize:
			// The next flushBatch wraps onto slot 0 and must block there.
			close(stalled)
		case batchRingSize + 1:
			select {
			case <-released:
			default:
				t.Error("delivery past the ring wrap before the retained batch was released")
			}
		}
		return got.HandleBatch(b)
	}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls <= batchRingSize {
		t.Fatalf("scan delivered %d batches, want more than the ring size %d", calls, batchRingSize)
	}
	batchEventsEqual(t, want.Events, got.Events, "retained scan")
}

// TestScanBatchedRetainHoldsScanReturn: releaseRing is the second
// backpressure edge — a scan whose final batch is still retained cannot
// return (and cannot pool the batch's arena) until the reference is
// released. Afterwards the pools must be intact: a fresh scan sees the
// same stream.
func TestScanBatchedRetainHoldsScanReturn(t *testing.T) {
	const doc = `<a>hi</a>`
	batches := make(chan *Batch, 1)
	done := make(chan error, 1)
	go func() {
		done <- ScanBatchedString(doc, batchFunc(func(b *Batch) error {
			b.Retain()
			batches <- b
			return nil
		}), Options{})
	}()
	b := <-batches
	select {
	case err := <-done:
		t.Fatalf("scan returned (err=%v) while its final batch was still retained", err)
	case <-time.After(50 * time.Millisecond):
	}
	want := []Event{
		{Kind: StartElement, Name: "a"},
		{Kind: Text, Data: "hi"},
		{Kind: EndElement, Name: "a"},
	}
	batchEventsEqual(t, want, tokensToEvents(b), "retained final batch")
	b.Release() // b is recycled from here on: do not touch it again
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var again batchCollector
	if err := ScanBatchedString(doc, &again, Options{}); err != nil {
		t.Fatal(err)
	}
	batchEventsEqual(t, want, again.Events, "scan after release")
}

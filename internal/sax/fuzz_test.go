package sax

// Native fuzz target for the scanner, complementing the differential
// query fuzzer at the repository root: any input the scanner accepts must
// produce a balanced, properly nested event stream that survives a
// serialize → rescan round trip unchanged.

import (
	"strings"
	"testing"
)

// fuzzSeeds is the shared seed corpus for the scanner fuzzers.
var fuzzSeeds = []string{
	`<a>hi</a>`,
	`<r><a>1</a><a>2</a><b>x</b></r>`,
	`<a/>`,
	`<a b="c" d='e'>t</a>`,
	`<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r>x</r>`,
	`<a><!-- comment --><![CDATA[<raw>&amp;]]></a>`,
	`<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x41;&unknown;</a>`,
	`<a> <b></b>
	</a>`,
	`<a`,
	`<a></b>`,
	`text only`,
	`<a>]]></a>`,
}

func FuzzScan(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		var events Collector
		if err := ScanString(doc, &events, Options{}); err != nil {
			// Rejected input is fine; the scan just must not panic or
			// deliver a malformed event stream before rejecting.
			return
		}

		// Accepted input: events must be balanced and properly nested.
		var stack []string
		for _, ev := range events.Events {
			switch ev.Kind {
			case StartElement:
				stack = append(stack, ev.Name)
			case EndElement:
				if len(stack) == 0 || stack[len(stack)-1] != ev.Name {
					t.Fatalf("unbalanced events %v for %q", events.Events, doc)
				}
				stack = stack[:len(stack)-1]
			case Text:
				if ev.Data == "" {
					t.Fatalf("empty text event for %q", doc)
				}
			}
		}
		if len(stack) != 0 {
			t.Fatalf("unclosed events %v for %q", events.Events, doc)
		}

		// Round trip: serializing the events and rescanning must
		// reproduce them exactly (escaping and entity decoding cancel).
		var sb strings.Builder
		w := NewWriter(&sb)
		for _, ev := range events.Events {
			var err error
			switch ev.Kind {
			case StartElement:
				err = w.StartElement(ev.Name)
			case EndElement:
				err = w.EndElement(ev.Name)
			case Text:
				err = w.Text(ev.Data)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		var again Collector
		if err := ScanString(sb.String(), &again, Options{}); err != nil {
			t.Fatalf("rescan of %q (from %q): %v", sb.String(), doc, err)
		}
		if len(again.Events) != len(events.Events) {
			t.Fatalf("round trip changed event count: %v vs %v", events.Events, again.Events)
		}
		for i := range events.Events {
			if events.Events[i] != again.Events[i] {
				t.Fatalf("round trip changed event %d: %v vs %v", i, events.Events[i], again.Events[i])
			}
		}
	})
}

// FuzzScanBatched: batched delivery is a pure transport change. For any
// input — accepted or rejected — ScanBatched must produce exactly the
// event stream and error of a per-event Scan: same events in order
// (the flush-before-error contract makes the prefixes comparable), same
// error text.
func FuzzScanBatched(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		var legacy Collector
		legacyErr := ScanString(doc, &legacy, Options{})
		var batched batchCollector
		batchedErr := ScanBatchedString(doc, &batched, Options{})

		switch {
		case (legacyErr == nil) != (batchedErr == nil):
			t.Fatalf("errors diverged for %q: legacy %v, batched %v", doc, legacyErr, batchedErr)
		case legacyErr != nil && legacyErr.Error() != batchedErr.Error():
			t.Fatalf("error text diverged for %q: legacy %v, batched %v", doc, legacyErr, batchedErr)
		}
		if len(legacy.Events) != len(batched.Events) {
			t.Fatalf("event count diverged for %q: legacy %v, batched %v", doc, legacy.Events, batched.Events)
		}
		for i := range legacy.Events {
			if legacy.Events[i] != batched.Events[i] {
				t.Fatalf("event %d diverged for %q: legacy %v, batched %v", i, doc, legacy.Events[i], batched.Events[i])
			}
		}
	})
}

package sax

import (
	"context"
	"io"
)

// ChunkScanner is the push-mode face of the batched scanner: instead of
// the scanner pulling bytes from an io.Reader, the caller pushes the
// document in arbitrary chunks with Write and signals end of stream with
// Close. Events are delivered to the BatchHandler exactly as a one-shot
// ScanBatched of the concatenated chunks would deliver them — chunk
// boundaries are invisible to the token stream (the scanner's refill
// loop already tolerates arbitrary short reads), which is what lets a
// network ingest feed the engine without reassembling the document.
//
// Internally the scanner still pulls: StartChunked connects it to the
// read side of an in-process pipe and runs it on its own goroutine, and
// Write feeds the write side. Backpressure is therefore natural: a Write
// blocks while the scan (or a downstream consumer of its events) is
// busy, so a slow consumer throttles the producer instead of buffering
// unboundedly.
//
// A ChunkScanner is single-use and not safe for concurrent Writes; the
// one supported concurrency is Abort from another goroutine.
type ChunkScanner struct {
	pw   *io.PipeWriter
	done chan struct{}
	err  error // scan result, valid after done is closed
}

// StartChunked starts a batched scan fed by Write calls, delivering
// event batches to h under opt (see ScanBatchedContext for the
// batch-delivery and cancellation contract). The scan runs until Close
// or Abort is called, the context is done, the input is exhausted by a
// syntax error, or the handler fails.
func StartChunked(ctx context.Context, h BatchHandler, opt Options) *ChunkScanner {
	opt.EagerFlush = true // deliver parsed events before blocking on the feed
	pr, pw := io.Pipe()
	cs := &ChunkScanner{pw: pw, done: make(chan struct{})}
	go func() {
		defer close(cs.done)
		cs.err = ScanBatchedContext(ctx, pr, h, opt)
		// Unblock any in-flight or future Write: the scan is over, so
		// pushed bytes have nowhere to go. Writers see the scan error
		// rather than a generic closed-pipe error.
		if cs.err != nil {
			pr.CloseWithError(cs.err)
		} else {
			pr.Close()
		}
	}()
	return cs
}

// Write pushes the next chunk of the document into the scan. It blocks
// until the scanner has consumed the bytes (or the scan has ended) and
// returns the scan's error if the scan is no longer accepting input —
// so a producer that keeps writing after a mid-stream syntax error or
// handler failure observes that failure, not a success.
func (cs *ChunkScanner) Write(p []byte) (int, error) {
	return cs.pw.Write(p)
}

// Close signals end of input, waits for the scan to drain every pushed
// byte, and returns the scan's result: nil for a well-formed document
// whose events were all accepted, otherwise the scan or handler error.
// Close is idempotent.
func (cs *ChunkScanner) Close() error {
	cs.pw.Close()
	<-cs.done
	return cs.err
}

// Abort ends the scan without signaling a well-formed end of input: the
// scanner observes err (io.ErrUnexpectedEOF if nil) as a read failure at
// the current position and unwinds. Use it when the producer dies
// mid-document — a connection drop, a server shutdown. Abort waits for
// the scan goroutine to exit and returns the scan's result.
func (cs *ChunkScanner) Abort(err error) error {
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	cs.pw.CloseWithError(err)
	<-cs.done
	return cs.err
}

// Done returns a channel closed when the scan goroutine has exited —
// after end of input, an error, or an Abort. Err is valid once Done is
// closed.
func (cs *ChunkScanner) Done() <-chan struct{} { return cs.done }

// Err returns the scan result; it is meaningful only after Done is
// closed (Close and Abort return the same value and also wait).
func (cs *ChunkScanner) Err() error { return cs.err }

package sax

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// batchCollector adapts Collector's event recording to batched
// delivery, copying each Text payload at the retention point as the
// Batch contract requires.
type batchCollector struct {
	Events  []Event
	Batches int
}

func (c *batchCollector) HandleBatch(b *Batch) error {
	c.Batches++
	for i := range b.Tokens {
		tok := &b.Tokens[i]
		switch tok.Kind {
		case Text:
			c.Events = append(c.Events, Event{Kind: Text, Data: string(tok.Data)})
		default:
			c.Events = append(c.Events, Event{Kind: tok.Kind, Name: tok.Name})
		}
	}
	return nil
}

// batchDocs is the differential corpus: every construct the scanner
// handles, plus documents large enough to force multiple batches and a
// full ring wrap.
var batchDocs = []string{
	`<a>hi</a>`,
	`<r><a>1</a><a>2</a><b>x</b></r>`,
	`<a/>`,
	`<a b="c" d='e'>t</a>`,
	`<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r>x</r>`,
	`<a><!-- comment --><![CDATA[<raw>&amp;]]></a>`,
	`<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x41;</a>`,
	"<a> <b></b>\n</a>",
	bigDoc(200),
	bigDoc(5000),
}

// bigDoc builds a document with n repeated records — enough, for large
// n, to overflow maxBatchTokens several times over and wrap the batch
// ring.
func bigDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<item id="%d"><name>item %d</name><note><![CDATA[n&%d]]></note></item>`, i, i, i)
	}
	sb.WriteString("</root>")
	return sb.String()
}

func batchEventsEqual(t *testing.T, want, got []Event, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: event %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestScanBatchedMatchesScan: batched delivery is a pure transport
// change — for every document in the corpus the token stream is
// identical to the per-event Handler stream, and large documents really
// do arrive in multiple batches.
func TestScanBatchedMatchesScan(t *testing.T) {
	for i, doc := range batchDocs {
		var legacy Collector
		if err := ScanString(doc, &legacy, Options{}); err != nil {
			t.Fatalf("doc %d: legacy scan: %v", i, err)
		}
		var batched batchCollector
		if err := ScanBatchedString(doc, &batched, Options{}); err != nil {
			t.Fatalf("doc %d: batched scan: %v", i, err)
		}
		batchEventsEqual(t, legacy.Events, batched.Events, fmt.Sprintf("doc %d", i))
		if len(doc) > 100_000 && batched.Batches <= batchRingSize {
			t.Fatalf("doc %d: %d batches for a %d-byte document, want enough to wrap the ring", i, batched.Batches, len(doc))
		}
	}
}

// TestScanBatchedConcurrent: pooled scanners, batches, and arenas must
// not leak state between concurrent scans. Run with -race.
func TestScanBatchedConcurrent(t *testing.T) {
	doc := bigDoc(1200)
	var want Collector
	if err := ScanString(doc, &want, Options{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var got batchCollector
				if err := ScanBatchedString(doc, &got, Options{}); err != nil {
					errs <- err
					return
				}
				if len(got.Events) != len(want.Events) {
					errs <- fmt.Errorf("%d events, want %d", len(got.Events), len(want.Events))
					return
				}
				for j := range want.Events {
					if got.Events[j] != want.Events[j] {
						errs <- fmt.Errorf("event %d = %v, want %v", j, got.Events[j], want.Events[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// cancelAfterReader cancels a context once after reads reads, so the
// scanner observes cancellation at its next input-buffer poll — mid
// document, with a batch partially filled.
type cancelAfterReader struct {
	r      io.Reader
	cancel context.CancelFunc
	reads  int
}

func (cr *cancelAfterReader) Read(p []byte) (int, error) {
	if cr.reads == 0 && cr.cancel != nil {
		cr.cancel()
		cr.cancel = nil
	}
	cr.reads--
	return cr.r.Read(p)
}

// TestScanBatchedCancelMidBatch: a context canceled mid-scan still
// flushes the accumulated event prefix, reports context.Canceled, and
// returns the ring's arenas to the pool exactly once — verified
// behaviorally by interleaving canceled and complete scans (a
// double-released arena would be handed to two scanners at once and
// corrupt the complete scans' payloads; run with -race).
func TestScanBatchedCancelMidBatch(t *testing.T) {
	doc := bigDoc(5000) // several input blocks, so the cancel lands mid-scan
	var want Collector
	if err := ScanString(doc, &want, Options{}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var got batchCollector
	err := ScanBatchedContext(ctx, &cancelAfterReader{r: strings.NewReader(doc), cancel: cancel}, &got, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled scan returned %v, want context.Canceled", err)
	}
	if len(got.Events) == 0 || len(got.Events) >= len(want.Events) {
		t.Fatalf("canceled scan delivered %d events, want a strict non-empty prefix of %d", len(got.Events), len(want.Events))
	}
	batchEventsEqual(t, want.Events[:len(got.Events)], got.Events, "canceled prefix")

	// Interleave canceled and complete scans concurrently: shared arenas
	// from a double release would corrupt the complete scans' output.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g%2 == 0 {
					cctx, ccancel := context.WithCancel(context.Background())
					var c batchCollector
					err := ScanBatchedContext(cctx, &cancelAfterReader{r: strings.NewReader(doc), cancel: ccancel}, &c, Options{})
					ccancel()
					if !errors.Is(err, context.Canceled) {
						errs <- fmt.Errorf("canceled scan: %v", err)
						return
					}
					continue
				}
				var c batchCollector
				if err := ScanBatchedString(doc, &c, Options{}); err != nil {
					errs <- err
					return
				}
				if len(c.Events) != len(want.Events) {
					errs <- fmt.Errorf("complete scan saw %d events, want %d", len(c.Events), len(want.Events))
					return
				}
				for j := range want.Events {
					if c.Events[j] != want.Events[j] {
						errs <- fmt.Errorf("complete scan event %d = %v, want %v", j, c.Events[j], want.Events[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestScanBatchedHandlerError: a handler error mid-stream aborts the
// scan, and the pools survive to serve the next scan.
func TestScanBatchedHandlerError(t *testing.T) {
	doc := bigDoc(5000)
	boom := errors.New("boom")
	n := 0
	if err := ScanBatched(strings.NewReader(doc), batchFunc(func(b *Batch) error {
		if n++; n == 2 {
			return boom
		}
		return nil
	}), Options{}); !errors.Is(err, boom) {
		t.Fatalf("scan returned %v, want the handler's error", err)
	}
	var again batchCollector
	if err := ScanBatchedString(doc, &again, Options{}); err != nil {
		t.Fatalf("scan after handler failure: %v", err)
	}
}

// batchFunc adapts a function to BatchHandler.
type batchFunc func(*Batch) error

func (f batchFunc) HandleBatch(b *Batch) error { return f(b) }

// pruneDoc exercises every construct the raw-skip path must consume
// inside a pruned subtree: nested elements, attributes, CDATA with
// embedded markup, comments, processing instructions, self-closing
// tags, and quoted '>' characters.
const pruneDoc = `<site><people>` +
	`<person id="p0"><name>Al</name><watches><watch o="a>b"/><!-- x --><watch o="c"/></watches></person>` +
	`<person id="p1"><name>Bo</name><profile><?pi data?><interest c="k"/><desc><![CDATA[</desc> fake]]></desc></profile></person>` +
	`</people><regions><africa><item id="i0"><name>x</name></item></africa></regions></site>`

// TestScanBatchedPrune: a prune trie turns every subtree outside it into
// a single SkipElement token — no interior events, raw bytes never
// decoded — while kept subtrees arrive exactly as in an unpruned scan.
func TestScanBatchedPrune(t *testing.T) {
	// Keep /site/people/person/name; prune everything else under person,
	// and all of regions.
	prune := &PruneNode{Kids: map[string]*PruneNode{
		"site": {Kids: map[string]*PruneNode{
			"people": {Kids: map[string]*PruneNode{
				"person": {Kids: map[string]*PruneNode{
					"name": {All: true},
				}},
			}},
		}},
	}}
	var got batchCollector
	if err := ScanBatchedString(pruneDoc, &got, Options{Prune: prune}); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: StartElement, Name: "site"},
		{Kind: StartElement, Name: "people"},
		{Kind: StartElement, Name: "person"},
		{Kind: StartElement, Name: "name"}, {Kind: Text, Data: "Al"}, {Kind: EndElement, Name: "name"},
		{Kind: SkipElement, Name: "watches"},
		{Kind: EndElement, Name: "person"},
		{Kind: StartElement, Name: "person"},
		{Kind: StartElement, Name: "name"}, {Kind: Text, Data: "Bo"}, {Kind: EndElement, Name: "name"},
		{Kind: SkipElement, Name: "profile"},
		{Kind: EndElement, Name: "person"},
		{Kind: EndElement, Name: "people"},
		{Kind: SkipElement, Name: "regions"},
		{Kind: EndElement, Name: "site"},
	}
	batchEventsEqual(t, want, got.Events, "pruned scan")
}

// TestScanBatchedPruneAttrs: under AttrsToSubelements, attribute
// subelements obey the trie like real children — a kept attribute
// arrives as its synthetic element, a pruned one as a SkipElement.
func TestScanBatchedPruneAttrs(t *testing.T) {
	prune := &PruneNode{Kids: map[string]*PruneNode{
		"r": {Kids: map[string]*PruneNode{
			"p": {Kids: map[string]*PruneNode{
				"p_a": {All: true},
			}},
		}},
	}}
	var got batchCollector
	err := ScanBatchedString(`<r><p a="1" b="2">t</p></r>`, &got, Options{Prune: prune, AttrsToSubelements: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: StartElement, Name: "r"},
		{Kind: StartElement, Name: "p"},
		{Kind: StartElement, Name: "p_a"}, {Kind: Text, Data: "1"}, {Kind: EndElement, Name: "p_a"},
		{Kind: SkipElement, Name: "p_b"},
		{Kind: Text, Data: "t"},
		{Kind: EndElement, Name: "p"},
		{Kind: EndElement, Name: "r"},
	}
	batchEventsEqual(t, want, got.Events, "attr prune")
}

// TestScanBatchedPruneAll: an all-accepting trie (and trie nodes with
// All set partway down) change nothing — the stream is identical to an
// unpruned scan on every corpus document.
func TestScanBatchedPruneAll(t *testing.T) {
	for i, doc := range append(batchDocs, pruneDoc) {
		var want batchCollector
		if err := ScanBatchedString(doc, &want, Options{}); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		var got batchCollector
		if err := ScanBatchedString(doc, &got, Options{Prune: &PruneNode{All: true}}); err != nil {
			t.Fatalf("doc %d with prune: %v", i, err)
		}
		batchEventsEqual(t, want.Events, got.Events, fmt.Sprintf("doc %d", i))
	}
}

// TestScanBatchedPruneSelfClose: a pruned element that happens to be
// self-closing (or empty) still yields exactly one SkipElement.
func TestScanBatchedPruneSelfClose(t *testing.T) {
	prune := &PruneNode{Kids: map[string]*PruneNode{
		"r": {Kids: map[string]*PruneNode{"keep": {All: true}}},
	}}
	var got batchCollector
	if err := ScanBatchedString(`<r><drop/><drop></drop><keep>x</keep></r>`, &got, Options{Prune: prune}); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: StartElement, Name: "r"},
		{Kind: SkipElement, Name: "drop"},
		{Kind: SkipElement, Name: "drop"},
		{Kind: StartElement, Name: "keep"}, {Kind: Text, Data: "x"}, {Kind: EndElement, Name: "keep"},
		{Kind: EndElement, Name: "r"},
	}
	batchEventsEqual(t, want, got.Events, "self-close prune")
}

// TestScanBatchedPruneMalformed: raw skipping still detects an
// unterminated document inside a pruned subtree instead of reporting
// bogus success.
func TestScanBatchedPruneMalformed(t *testing.T) {
	prune := &PruneNode{Kids: map[string]*PruneNode{
		"r": {Kids: map[string]*PruneNode{"keep": {All: true}}},
	}}
	for _, doc := range []string{
		`<r><drop><a>`,           // pruned subtree never closes
		`<r><drop><![CDATA[x`,    // CDATA runs off the end
		`<r><drop att="unclosed`, // attribute quote runs off the end
		`<r><drop><!-- comment `, // comment runs off the end
	} {
		var got batchCollector
		if err := ScanBatchedString(doc, &got, Options{Prune: prune}); err == nil {
			t.Fatalf("scan of %q succeeded, want a truncation error", doc)
		}
	}
}

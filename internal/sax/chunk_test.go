package sax

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// scanChunked runs a chunked scan of doc split at the given offsets and
// returns the collected events and the scan result.
func scanChunked(t *testing.T, doc string, offsets ...int) ([]Event, error) {
	t.Helper()
	var got batchCollector
	cs := StartChunked(context.Background(), &got, Options{})
	prev := 0
	writeErr := func(p string) error {
		if p == "" {
			return nil
		}
		_, err := io.WriteString(cs, p)
		return err
	}
	var werr error
	for _, off := range offsets {
		if werr = writeErr(doc[prev:off]); werr != nil {
			break
		}
		prev = off
	}
	if werr == nil {
		werr = writeErr(doc[prev:])
	}
	err := cs.Close()
	if werr != nil && err == nil {
		t.Fatalf("write failed (%v) but scan succeeded", werr)
	}
	return got.Events, err
}

// TestScanChunkedEveryOffset splits each corpus document at every byte
// offset (two chunks) and asserts the token stream and error are
// identical to a one-shot scan: chunk boundaries must be invisible,
// including ones that land inside tags, entity references, CDATA
// markers, and multi-byte runes.
func TestScanChunkedEveryOffset(t *testing.T) {
	docs := append([]string{}, batchDocs[:8]...) // skip the two bigDocs: quadratic in size
	docs = append(docs,
		"<a>é世界</a>",                        // multi-byte runes
		`<a><b>x</b><!-- c --><b>y</b></a>`, // boundary inside comment
	)
	for _, doc := range docs {
		var want batchCollector
		wantErr := ScanBatchedString(doc, &want, Options{})
		for off := 0; off <= len(doc); off++ {
			got, err := scanChunked(t, doc, off)
			if (wantErr == nil) != (err == nil) || (wantErr != nil && wantErr.Error() != err.Error()) {
				t.Fatalf("split at %d of %q: error diverged: one-shot %v, chunked %v", off, doc, wantErr, err)
			}
			if len(got) != len(want.Events) {
				t.Fatalf("split at %d of %q: %d events, one-shot %d", off, doc, len(got), len(want.Events))
			}
			for i := range got {
				if got[i] != want.Events[i] {
					t.Fatalf("split at %d of %q: event %d = %v, one-shot %v", off, doc, i, got[i], want.Events[i])
				}
			}
		}
	}
}

// TestScanChunkedBytewise drives a larger document one byte at a time —
// the worst-case chunking — through a full batch-ring wrap.
func TestScanChunkedBytewise(t *testing.T) {
	doc := bigDoc(200)
	var want batchCollector
	if err := ScanBatchedString(doc, &want, Options{}); err != nil {
		t.Fatal(err)
	}
	var got batchCollector
	cs := StartChunked(context.Background(), &got, Options{})
	for i := 0; i < len(doc); i++ {
		if _, err := cs.Write([]byte{doc[i]}); err != nil {
			t.Fatalf("write byte %d: %v", i, err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("bytewise scan: %d events, one-shot %d", len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("bytewise event %d = %v, one-shot %v", i, got.Events[i], want.Events[i])
		}
	}
}

// TestScanChunkedWriteAfterError: once the scan has died on a syntax
// error, further Writes must fail with that error rather than block.
func TestScanChunkedWriteAfterError(t *testing.T) {
	var got batchCollector
	cs := StartChunked(context.Background(), &got, Options{})
	if _, err := io.WriteString(cs, `<a></b>`); err == nil {
		// The pipe may accept the chunk before the scanner hits the
		// mismatch; the next write must observe the failure.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := io.WriteString(cs, `x`); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("writes kept succeeding after scan error")
			}
		}
	}
	if err := cs.Close(); err == nil {
		t.Fatal("Close reported success for a malformed document")
	}
}

// TestScanChunkedAbort: a producer dying mid-document surfaces as a scan
// failure, with the abort reason preserved.
func TestScanChunkedAbort(t *testing.T) {
	cause := errors.New("connection dropped")
	var got batchCollector
	cs := StartChunked(context.Background(), &got, Options{})
	if _, err := io.WriteString(cs, `<a><b>partial`); err != nil {
		t.Fatal(err)
	}
	err := cs.Abort(cause)
	if err == nil {
		t.Fatal("Abort mid-document reported success")
	}
	if !strings.Contains(err.Error(), cause.Error()) {
		t.Fatalf("abort cause lost: %v", err)
	}
	select {
	case <-cs.Done():
	default:
		t.Fatal("Done not closed after Abort")
	}
}

// TestScanChunkedHandlerBackpressure: Write blocks while the handler is
// busy (the push path buffers nothing beyond the scanner's own window),
// and unblocks when the handler drains.
func TestScanChunkedHandlerBackpressure(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 64)
	h := batchFunc(func(b *Batch) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	cs := StartChunked(context.Background(), h, Options{})
	// Enough records to force several batch deliveries.
	doc := bigDoc(5000)
	wrote := make(chan error, 1)
	go func() {
		_, err := io.WriteString(cs, doc)
		wrote <- err
	}()
	<-entered // handler is now parked on the gate
	select {
	case err := <-wrote:
		t.Fatalf("full-document write completed while handler blocked (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzScanChunked: chunking is a pure transport change. For any document
// and any single split offset, the chunked scan must produce exactly the
// event stream and error of a one-shot batched scan.
func FuzzScanChunked(f *testing.F) {
	for i, seed := range fuzzSeeds {
		f.Add(seed, i)
	}
	f.Fuzz(func(t *testing.T, doc string, off int) {
		if off < 0 {
			off = -off
		}
		if len(doc) > 0 {
			off %= len(doc) + 1
		} else {
			off = 0
		}
		var want batchCollector
		wantErr := ScanBatchedString(doc, &want, Options{})
		got, err := scanChunked(t, doc, off)
		switch {
		case (wantErr == nil) != (err == nil):
			t.Fatalf("split at %d of %q: errors diverged: one-shot %v, chunked %v", off, doc, wantErr, err)
		case wantErr != nil && wantErr.Error() != err.Error():
			t.Fatalf("split at %d of %q: error text diverged: one-shot %v, chunked %v", off, doc, wantErr, err)
		}
		if len(got) != len(want.Events) {
			t.Fatalf("split at %d of %q: event count diverged: %d vs %d", off, doc, len(got), len(want.Events))
		}
		for i := range got {
			if got[i] != want.Events[i] {
				t.Fatalf("split at %d of %q: event %d diverged: %v vs %v", off, doc, i, got[i], want.Events[i])
			}
		}
	})
}

// TestScanChunkedEagerDelivery: events parsed from the bytes received so
// far must reach the handler before end of stream — the scanner flushes
// its batch before blocking on the next chunk (Options.EagerFlush, set
// by StartChunked).
func TestScanChunkedEagerDelivery(t *testing.T) {
	tokens := make(chan int, 64)
	h := batchFunc(func(b *Batch) error {
		tokens <- len(b.Tokens)
		return nil
	})
	cs := StartChunked(context.Background(), h, Options{})
	if _, err := io.WriteString(cs, `<r><a>1</a><a>2</a>`); err != nil {
		t.Fatal(err)
	}
	// No Close yet: the complete subtrees already pushed must arrive.
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 7 { // <r> <a> "1" </a> <a> "2" </a>
		select {
		case n := <-tokens:
			got += n
		case <-deadline:
			t.Fatalf("only %d tokens delivered before end of stream, want 7", got)
		}
	}
	if _, err := io.WriteString(cs, `</r>`); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
}

package sax

import (
	"context"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// Token is one SAX event in batched delivery. Name is set for element
// and SkipElement events and is interned (stable across the scan). Data
// is set for text events and references the owning Batch's arena: it is
// valid only until the batch is recycled — two HandleBatch calls after
// the one that delivered it (see Batch). A consumer that retains text
// must copy it (string(tok.Data) or append) at the retention point.
type Token struct {
	// Kind is the event type: StartElement, EndElement, or Text.
	Kind Kind
	// Name is the element name for StartElement/EndElement tokens.
	Name string
	// Data is the decoded character data for Text tokens, backed by the
	// batch arena.
	Data []byte
}

// Batch is a slice of consecutive SAX events sharing one text arena.
// The scanner delivers whole batches to a BatchHandler, amortizing the
// per-event delivery overhead of the Handler interface, and carves every
// Text token's payload out of the batch arena, so scanning allocates
// nothing per character-data event.
//
// Batches are recycled through a fixed ring: the tokens and arena of a
// delivered batch remain intact while the scanner fills the other ring
// slots and are reused when the ring wraps around. Consumers that need
// data beyond that window must copy it during HandleBatch — or extend
// the window explicitly with Retain/Release, which concurrent consumers
// (the parallel mux pipeline) use to keep a batch alive while workers on
// other goroutines are still reading it.
type Batch struct {
	// Tokens are the events of this batch, in stream order.
	Tokens []Token

	arena []byte // backing store for Text token payloads

	// refs counts Retain calls not yet matched by Release. The scanner
	// waits for it to reach zero before reusing the batch's storage.
	// All Retains happen on the scanning goroutine (inside HandleBatch),
	// so once HandleBatch returns the count is monotonically decreasing:
	// waitIdle needs no ABA protection.
	refs atomic.Int32
	// idle receives one token per zero-crossing of refs; waitIdle blocks
	// on it when refs is still positive. Capacity 1 and a single waiter
	// (the scanning goroutine) make lost wakeups impossible: a
	// zero-crossing either deposits a token or finds one already there.
	idle chan struct{}
}

// Retain extends the batch's validity past the ring-recycling window:
// the scanner will not reuse the batch's tokens or arena until every
// Retain has been matched by a Release. Retain may only be called during
// HandleBatch, on the delivering goroutine; Release may be called from
// any goroutine. Unbalanced Release panics.
func (b *Batch) Retain() { b.refs.Add(1) }

// Release undoes one Retain. When the last reference is dropped the
// scanner — possibly blocked in waitIdle — is woken so it can recycle
// the batch.
func (b *Batch) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		select {
		case b.idle <- struct{}{}:
		default: // a wakeup token is already pending
		}
	case n < 0:
		panic("sax: Batch.Release without matching Retain")
	}
}

// waitIdle blocks until every Retain on the batch has been released.
// Called by the scanner before reusing or pooling the batch's storage.
// The loop re-checks refs after each wakeup: a stale token left over
// from an earlier cycle (deposited after a fast-path exit) causes at
// most a spurious wakeup, never a premature return.
func (b *Batch) waitIdle() {
	for b.refs.Load() != 0 {
		<-b.idle
	}
}

// BatchHandler consumes SAX events a batch at a time. It is the hot-path
// alternative to Handler: one dynamic dispatch per batch instead of one
// per event, and text payloads as arena-backed byte slices instead of
// freshly allocated strings. Returning a non-nil error aborts the scan
// and propagates the error to the caller, exactly like Handler.
type BatchHandler interface {
	// HandleBatch consumes one batch. The batch's tokens and arena remain
	// valid until its ring slot is refilled, batchRingSize-1 deliveries
	// later; retain beyond that only by copying.
	HandleBatch(b *Batch) error
}

const (
	// batchArenaSize is the target capacity of a batch's text arena. A
	// single text node larger than this grows the arena for its batch;
	// oversized arenas are dropped at recycle time instead of pooled.
	batchArenaSize = 32 << 10
	// maxBatchTokens caps the events per batch, bounding delivery latency
	// for markup-dense inputs whose arenas fill slowly.
	maxBatchTokens = 1024
	// batchRingSize is the number of batches in flight: a delivered
	// batch's tokens stay valid for batchRingSize-1 further deliveries
	// before its storage is reused.
	batchRingSize = 4
)

// arenaPool recycles batch arenas across scans.
var arenaPool = sync.Pool{
	New: func() any { return make([]byte, 0, batchArenaSize) },
}

// batchPool recycles Batch shells (token slices) across scans.
var batchPool = sync.Pool{
	New: func() any {
		return &Batch{
			Tokens: make([]Token, 0, maxBatchTokens),
			idle:   make(chan struct{}, 1),
		}
	},
}

// ScanBatched is Scan with batched event delivery: events are
// accumulated into pooled batches and handed to h one batch at a time.
// The event sequence is byte-identical to what Scan delivers to a
// Handler for the same input.
func ScanBatched(r io.Reader, h BatchHandler, opt Options) error {
	return ScanBatchedContext(context.Background(), r, h, opt)
}

// ScanBatchedString is a convenience wrapper around ScanBatched for
// in-memory documents.
func ScanBatchedString(doc string, h BatchHandler, opt Options) error {
	return ScanBatched(strings.NewReader(doc), h, opt)
}

// ScanBatchedContext is ScanBatched with cancellation, polling ctx at
// input-buffer granularity like ScanContext. Events already accumulated
// when the scan stops — on a syntax error, a read failure, or
// cancellation — are flushed to h first, so the handler always observes
// the full event prefix that precedes the failure (the property the
// batched/unbatched differential tests rely on). Arenas are returned to
// their pool exactly once, whatever path ends the scan.
func ScanBatchedContext(ctx context.Context, r io.Reader, h BatchHandler, opt Options) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s := getScanner()
	s.rd = r
	s.bh = h
	s.opt = opt
	s.ctx = ctx
	if opt.Prune != nil {
		s.prune = append(s.prune[:0], opt.Prune)
	}
	err := s.run()
	if err != nil && !s.bhFailed {
		// Flush events emitted before the failure; the scan error, not a
		// late handler error, remains the result.
		if ferr := s.flushBatch(); ferr != nil && err == nil {
			err = ferr
		}
	} else if err == nil {
		err = s.flushBatch()
	}
	s.releaseRing()
	s.recycle()
	return err
}

// curBatch returns the batch being filled, taking a recycled one from
// the ring (or the pools, first time around) as needed.
func (s *scanner) curBatch() *Batch {
	b := s.ring[s.ringPos]
	if b == nil {
		b = batchPool.Get().(*Batch)
		b.arena = arenaPool.Get().([]byte)
		s.ring[s.ringPos] = b
	}
	return b
}

// flushBatch delivers the current batch, if non-empty, and advances the
// ring. The delivered batch's contents stay valid until its ring slot
// comes around again.
func (s *scanner) flushBatch() error {
	b := s.ring[s.ringPos]
	if b == nil || len(b.Tokens) == 0 {
		return nil
	}
	if err := s.bh.HandleBatch(b); err != nil {
		s.bhFailed = true
		return err
	}
	s.ringPos = (s.ringPos + 1) % batchRingSize
	if next := s.ring[s.ringPos]; next != nil {
		// Reuse the slot: the validity window of its previous contents has
		// elapsed — unless a consumer retained the batch, in which case
		// block here until it is released. This is the backpressure edge:
		// a full parallel pipeline stalls the producer right here. Stale
		// token entries beyond the refilled length pin only the batch's
		// own arena and the scanner's interning table, both alive anyway,
		// so they are cleared at releaseRing, not per wrap.
		next.waitIdle()
		next.Tokens = next.Tokens[:0]
		next.arena = next.arena[:0]
	}
	return nil
}

// roomFor flushes the current batch when appending a token with need
// arena bytes would overflow it. A need larger than a whole arena is
// accommodated by growing the fresh batch's arena (dropped at recycle).
func (s *scanner) roomFor(need int) error {
	b := s.curBatch()
	if len(b.Tokens) >= maxBatchTokens || (need > 0 && len(b.Tokens) > 0 && len(b.arena)+need > cap(b.arena)) {
		return s.flushBatch()
	}
	return nil
}

// releaseRing returns every ring batch and arena to its pool, exactly
// once: slots are nilled as they are released, so a second call — or a
// release after a partial scan, canceled mid-batch — finds nothing to
// do. Oversized arenas (grown past batchArenaSize by a huge text node)
// are dropped rather than pooled.
func (s *scanner) releaseRing() {
	for i, b := range s.ring {
		if b == nil {
			continue
		}
		s.ring[i] = nil
		b.waitIdle()
		if cap(b.arena) == batchArenaSize {
			arenaPool.Put(b.arena[:0])
		}
		b.arena = nil
		clear(b.Tokens)
		b.Tokens = b.Tokens[:0]
		batchPool.Put(b)
	}
	s.ringPos = 0
	s.bhFailed = false
}

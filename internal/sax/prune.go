package sax

import "bytes"

// PruneNode is one position in a scanner prune trie — the scan-level
// counterpart of a query's projected-path signature. During a batched
// scan with Options.Prune set, the scanner descends the trie alongside
// the element stack; a start tag with no entry at the current position
// (under a node without All) collapses into a single SkipElement token
// and the element's bytes are consumed raw, without tokenizing its
// interior: no name interning, no text decoding, no per-event delivery.
//
// A prune trie is read-only once handed to a scan; concurrent scans may
// share one.
type PruneNode struct {
	// All marks that everything below this position is consumed: the
	// scanner stops consulting Kids underneath.
	All bool
	// Kids maps a child element name to its trie node. Names absent from
	// the map (under a node with All unset) are pruned subtrees.
	Kids map[string]*PruneNode
}

// emitSkip appends a SkipElement token for a pruned element. Only called
// in batched mode (pruning is ignored by per-event scans).
func (s *scanner) emitSkip(name string) error {
	b := s.curBatch()
	if len(b.Tokens) >= maxBatchTokens {
		if err := s.flushBatch(); err != nil {
			return err
		}
		b = s.curBatch()
	}
	b.Tokens = append(b.Tokens, Token{Kind: SkipElement, Name: name})
	return nil
}

// skipElement consumes a pruned element raw — the remainder of its start
// tag (the name is already read), its entire content, and its end tag —
// emitting a single SkipElement token in its place. Nesting is tracked
// by tag counting; names inside the pruned subtree are neither interned
// nor matched, so a mis-paired end tag there goes undetected. That is
// the same well-formedness trade the skip's consumer (engine
// SkipSubtree) already makes for validation: the caller asserted nothing
// inside the element can matter.
func (s *scanner) skipElement(name string) error {
	if err := s.emitSkip(name); err != nil {
		return err
	}
	selfClose, err := s.rawTag()
	if err != nil {
		return s.errf("unexpected EOF in skipped <%s ...>", name)
	}
	if selfClose {
		return nil
	}
	depth := 1
	for depth > 0 {
		// Character data inside a pruned subtree is skipped at memchr
		// speed, a block at a time.
		i := bytes.IndexByte(s.in[s.pos:s.lim], '<')
		if i < 0 {
			s.pos = s.lim
			if err := s.refill(); err != nil {
				return s.errf("unexpected EOF in skipped element <%s>", name)
			}
			continue
		}
		s.pos += i + 1
		b, err := s.readByte()
		if err != nil {
			return s.errf("unexpected EOF in skipped element <%s>", name)
		}
		switch b {
		case '/':
			if err := s.rawToGt(); err != nil {
				return s.errf("unexpected EOF in skipped element <%s>", name)
			}
			depth--
		case '?':
			if err := s.skipPI(); err != nil {
				return err
			}
		case '!':
			if err := s.rawBang(); err != nil {
				return err
			}
		default:
			s.unreadByte()
			selfClose, err := s.rawTag()
			if err != nil {
				return s.errf("unexpected EOF in skipped element <%s>", name)
			}
			if !selfClose {
				depth++
			}
		}
	}
	return nil
}

// rawTag consumes the remainder of a tag up to its closing '>', honoring
// quoted attribute values (a '>' inside quotes does not end the tag),
// and reports whether the tag was self-closing.
func (s *scanner) rawTag() (bool, error) {
	var quote byte
	prev := byte(0)
	for {
		for s.pos < s.lim {
			b := s.in[s.pos]
			s.pos++
			if quote != 0 {
				if b == quote {
					quote = 0
				}
				continue
			}
			switch b {
			case '"', '\'':
				quote = b
			case '>':
				return prev == '/', nil
			}
			prev = b
		}
		if err := s.refill(); err != nil {
			return false, err
		}
	}
}

// rawToGt consumes input up to and including the next '>' (end tags
// cannot contain quoted values).
func (s *scanner) rawToGt() error {
	for {
		if i := bytes.IndexByte(s.in[s.pos:s.lim], '>'); i >= 0 {
			s.pos += i + 1
			return nil
		}
		s.pos = s.lim
		if err := s.refill(); err != nil {
			return err
		}
	}
}

// rawBang handles "<!" constructs inside a pruned subtree: comments and
// DOCTYPE are skipped as usual; CDATA content is discarded instead of
// accumulated.
func (s *scanner) rawBang() error {
	b, err := s.readByte()
	if err != nil {
		return s.errf("unexpected EOF after '<!'")
	}
	switch b {
	case '-':
		b2, err := s.readByte()
		if err != nil || b2 != '-' {
			return s.errf("malformed comment")
		}
		return s.skipComment()
	case '[':
		const open = "CDATA["
		for i := 0; i < len(open); i++ {
			b, err := s.readByte()
			if err != nil || b != open[i] {
				return s.errf("malformed CDATA section")
			}
		}
		brackets := 0
		for {
			b, err := s.readByte()
			if err != nil {
				return s.errf("unexpected EOF in CDATA section")
			}
			switch {
			case b == ']':
				if brackets < 2 {
					brackets++
				}
			case b == '>' && brackets >= 2:
				return nil
			default:
				brackets = 0
			}
		}
	default:
		s.unreadByte()
		return s.skipDoctype()
	}
}

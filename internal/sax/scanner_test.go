package sax

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, doc string, opt Options) []Event {
	t.Helper()
	var c Collector
	if err := ScanString(doc, &c, opt); err != nil {
		t.Fatalf("ScanString(%q): %v", doc, err)
	}
	return c.Events
}

func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanBasic(t *testing.T) {
	got := collect(t, `<a><b>hi</b><c/></a>`, Options{})
	want := []Event{
		{StartElement, "a", ""},
		{StartElement, "b", ""},
		{Text, "", "hi"},
		{EndElement, "b", ""},
		{StartElement, "c", ""},
		{EndElement, "c", ""},
		{EndElement, "a", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestScanSkipsPrologCommentsPI(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]>
<!-- leading comment -->
<a>x<!-- inner -->y<?pi data?></a>`
	got := collect(t, doc, Options{})
	want := []Event{
		{StartElement, "a", ""},
		{Text, "", "x"},
		{Text, "", "y"},
		{EndElement, "a", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestScanWhitespaceSkipping(t *testing.T) {
	doc := "<a>\n  <b>v</b>\n</a>"
	got := collect(t, doc, Options{SkipWhitespaceText: true})
	want := []Event{
		{StartElement, "a", ""},
		{StartElement, "b", ""},
		{Text, "", "v"},
		{EndElement, "b", ""},
		{EndElement, "a", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
	// Without the option the whitespace text nodes are preserved.
	got = collect(t, doc, Options{})
	if len(got) != 7 {
		t.Errorf("got %d events without skipping, want 7: %v", len(got), got)
	}
}

func TestScanEntities(t *testing.T) {
	got := collect(t, `<a>&lt;x&gt; &amp; &#65;&#x42; &quot;&apos; &unknown;</a>`, Options{})
	want := `<x> & AB "' &unknown;`
	if len(got) != 3 || got[1].Data != want {
		t.Errorf("text = %q, want %q (events %v)", got[1].Data, want, got)
	}
}

func TestScanCDATA(t *testing.T) {
	got := collect(t, `<a><![CDATA[<not> & markup]]]></a>`, Options{})
	want := []Event{
		{StartElement, "a", ""},
		{Text, "", "<not> & markup]"},
		{EndElement, "a", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestScanAttrsDropped(t *testing.T) {
	got := collect(t, `<person id="p0" x='y'><name>n</name></person>`, Options{})
	want := []Event{
		{StartElement, "person", ""},
		{StartElement, "name", ""},
		{Text, "", "n"},
		{EndElement, "name", ""},
		{EndElement, "person", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestScanAttrsToSubelements(t *testing.T) {
	got := collect(t, `<person id="p&amp;0"><name>n</name></person>`, Options{AttrsToSubelements: true})
	want := []Event{
		{StartElement, "person", ""},
		{StartElement, "person_id", ""},
		{Text, "", "p&0"},
		{EndElement, "person_id", ""},
		{StartElement, "name", ""},
		{Text, "", "n"},
		{EndElement, "name", ""},
		{EndElement, "person", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestScanAttrsToSubelementsSelfClosing(t *testing.T) {
	got := collect(t, `<edge from="1" to="2"/>`, Options{AttrsToSubelements: true})
	want := []Event{
		{StartElement, "edge", ""},
		{StartElement, "edge_from", ""},
		{Text, "", "1"},
		{EndElement, "edge_from", ""},
		{StartElement, "edge_to", ""},
		{Text, "", "2"},
		{EndElement, "edge_to", ""},
		{EndElement, "edge", ""},
	}
	if !eventsEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestScanErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a>",
		"<a></b>",
		"</a>",
		"<a></a><b></b>",
		"<a></a>trailing",
		"text<a></a>",
		"<a",
		"<a x></a>",
		"<a x=y></a>",
		`<a x="v></a>`,
		"<a/",
	}
	for _, doc := range bad {
		var c Collector
		err := ScanString(doc, &c, Options{})
		if err == nil {
			t.Errorf("ScanString(%q) succeeded, want error", doc)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("ScanString(%q) error %T, want *SyntaxError", doc, err)
		}
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	err := ScanString("<a><b/></a>", HandlerFuncs{
		Start: func(name string) error {
			if name == "b" {
				return boom
			}
			return nil
		},
	}, Options{})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	doc := `<a><b>hi &amp; lo</b><c></c>tail</a>`
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := ScanString(doc, w, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != doc {
		t.Errorf("round trip = %q, want %q", sb.String(), doc)
	}
	if w.BytesWritten() != int64(len(doc)) {
		t.Errorf("BytesWritten = %d, want %d", w.BytesWritten(), len(doc))
	}
}

func TestEscapeText(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"a<b>&c": "a&lt;b&gt;&amp;c",
		"":       "",
	}
	for in, want := range cases {
		if got := EscapeText(in); got != want {
			t.Errorf("EscapeText(%q) = %q, want %q", in, got, want)
		}
	}
}

// genDoc builds a small random document from a shape seed and returns it
// along with the expected events.
func genDoc(shape []byte) (string, []Event) {
	var sb strings.Builder
	var want []Event
	names := []string{"a", "b", "c", "d"}
	var depth int
	var stack []string
	sb.WriteString("<root>")
	want = append(want, Event{StartElement, "root", ""})
	for _, s := range shape {
		switch s % 3 {
		case 0:
			n := names[int(s/3)%len(names)]
			sb.WriteString("<" + n + ">")
			want = append(want, Event{StartElement, n, ""})
			stack = append(stack, n)
			depth++
		case 1:
			if depth > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				depth--
				sb.WriteString("</" + n + ">")
				want = append(want, Event{EndElement, n, ""})
			}
		case 2:
			txt := "t" + string('0'+s%10)
			sb.WriteString(txt)
			if len(want) > 0 && want[len(want)-1].Kind == Text {
				want[len(want)-1].Data += txt
			} else {
				want = append(want, Event{Text, "", txt})
			}
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		sb.WriteString("</" + stack[i] + ">")
		want = append(want, Event{EndElement, stack[i], ""})
	}
	sb.WriteString("</root>")
	want = append(want, Event{EndElement, "root", ""})
	return sb.String(), want
}

func TestScanPropertyRandomDocs(t *testing.T) {
	f := func(shape []byte) bool {
		doc, want := genDoc(shape)
		var c Collector
		if err := ScanString(doc, &c, Options{}); err != nil {
			t.Logf("doc %q: %v", doc, err)
			return false
		}
		return eventsEqual(c.Events, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScanPropertySerializeRescan(t *testing.T) {
	// Scanning, serializing and re-scanning must be a fixpoint.
	f := func(shape []byte) bool {
		doc, _ := genDoc(shape)
		var sb strings.Builder
		w := NewWriter(&sb)
		if err := ScanString(doc, w, Options{}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		var c1, c2 Collector
		if err := ScanString(doc, &c1, Options{}); err != nil {
			return false
		}
		if err := ScanString(sb.String(), &c2, Options{}); err != nil {
			return false
		}
		return eventsEqual(c1.Events, c2.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// failAfterReader serves n bytes of r, then fails every Read with err.
type failAfterReader struct {
	r   io.Reader
	n   int
	err error
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	n, err := f.r.Read(p)
	f.n -= n
	return n, err
}

// TestReadErrorNotMaskedAsSyntaxError: a reader failure mid-construct
// (mid-name here) must surface as itself — a canceled context or I/O
// error is a read failure, not malformed XML.
func TestReadErrorNotMaskedAsSyntaxError(t *testing.T) {
	boom := errors.New("boom: transport died")
	doc := `<root><child>text</child></root>`
	// Fail inside "<child": offsets 0..len pick various mid-construct
	// positions; every one must return the raw error.
	for cut := 1; cut < len(doc); cut++ {
		r := &failAfterReader{r: strings.NewReader(doc), n: cut, err: boom}
		err := Scan(r, HandlerFuncs{}, Options{})
		if !errors.Is(err, boom) {
			t.Fatalf("cut at %d: err = %v, want the reader's own error", cut, err)
		}
	}
}

// TestScanContextNilCtx: a nil context means "never canceled", matching
// mux.Run, and must not panic at the poll boundary — the document must
// therefore exceed the 64 KB input-block granularity so the poll site
// actually executes.
func TestScanContextNilCtx(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for sb.Len() <= 2*inputBlockSize {
		sb.WriteString("<a>x</a>")
	}
	sb.WriteString("</r>")
	if err := ScanContext(nil, strings.NewReader(sb.String()), HandlerFuncs{}, Options{}); err != nil {
		t.Fatal(err)
	}
}

// Package fsutil holds the one filesystem probe shared by the catalog
// and the fluxd startup gate, so their validation semantics cannot
// drift apart.
package fsutil

import (
	"fmt"
	"os"
)

// CheckRegularFile verifies path names a regular file that can actually
// be opened, surfacing misconfiguration eagerly instead of on first use.
func CheckRegularFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !fi.Mode().IsRegular() {
		return fmt.Errorf("%s: not a regular file", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

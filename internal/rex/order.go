package rex

// This file implements the schema-constraint relations of the paper:
// order constraints (Section 2), the PastTable used to generate
// first-past punctuation events (Appendix B), and cardinality analysis
// (Section 7).

// Ord reports the order constraint Ord_ρ(a, b): there is no word of L(ρ)
// in which an occurrence of a is preceded by an occurrence of b; that is,
// all a's occur before all b's. Following the declarative definition, the
// constraint holds vacuously if either symbol does not occur in ρ.
//
// Via the automaton: after reading any b (i.e. in any state labelled b),
// a must be past.
func (a *Automaton) Ord(first, then string) bool {
	ti, ok := a.symIdx[then]
	if !ok {
		return true
	}
	if !a.HasSymbol(first) {
		return true
	}
	for p := 1; p < a.n; p++ {
		if a.posSym[p] == ti && !a.Past(p, first) {
			return false
		}
	}
	return true
}

// AtMostOnce reports whether every word of L(ρ) contains at most one
// occurrence of name (the cardinality constraint a ∈ ||≤1 of Section 7).
// Symbols outside the alphabet occur zero times and qualify.
func (a *Automaton) AtMostOnce(name string) bool {
	si, ok := a.symIdx[name]
	if !ok {
		return true
	}
	for p := 1; p < a.n; p++ {
		if a.posSym[p] == si && a.reachSyms[p].has(si) {
			return false
		}
	}
	return true
}

// PastTable precomputes, for every automaton state q, whether all symbols
// of S are past in q (PastTable_{ρ,S} of Appendix B). The engine uses one
// table per registered on-first handler; checking first-past during
// validation is then a constant-time lookup per input token.
func (a *Automaton) PastTable(S []string) []bool {
	t := make([]bool, a.n)
	for q := 0; q < a.n; q++ {
		all := true
		for _, s := range S {
			if !a.Past(q, s) {
				all = false
				break
			}
		}
		t[q] = all
	}
	return t
}

// Words enumerates all words of L(ρ) of length at most maxLen, up to a
// limit of max words. It exists for exhaustive testing of the constraint
// relations and for small-schema tooling; it must not be used on large
// alphabets.
func (a *Automaton) Words(maxLen, max int) [][]string {
	var out [][]string
	var cur []string
	var rec func(q, depth int)
	rec = func(q, depth int) {
		if len(out) >= max {
			return
		}
		if a.accept[q] {
			w := make([]string, len(cur))
			copy(w, cur)
			out = append(out, w)
		}
		if depth == maxLen {
			return
		}
		for si, p := range a.trans[q] {
			if p < 0 {
				continue
			}
			cur = append(cur, a.syms[si])
			rec(p, depth+1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0)
	return out
}

package rex

// bitset is a fixed-size bit vector used for the small reachability sets of
// Glushkov automata.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// orInto ors other into b and reports whether b changed.
func (b bitset) orInto(other bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | other[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

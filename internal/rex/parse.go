package rex

import (
	"fmt"
	"strings"
)

// ParseError reports a syntax error in a content-model expression.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rex: parse error at %d in %q: %s", e.Pos, e.Input, e.Msg)
}

// Parse parses a DTD content-model expression such as
//
//	(title,(author+|editor+),publisher,price)
//
// The paper's data model has no attributes and treats #PCDATA at the DTD
// layer, so Parse accepts only names, sequence (','), choice ('|'),
// grouping, and the postfix operators '*', '+', '?'. "EMPTY" parses to
// Epsilon.
func Parse(input string) (Expr, error) {
	p := &parser{in: input}
	p.skipSpace()
	if p.eat("EMPTY") {
		p.skipSpace()
		if p.pos != len(p.in) {
			return nil, p.errf("trailing input after EMPTY")
		}
		return Epsilon{}, nil
	}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("trailing input")
	}
	return e, nil
}

// MustParse is Parse for known-good expressions (tests, built-in DTDs).
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Input: p.in, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *parser) alt() (Expr, error) {
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.seq()
		if err != nil {
			return nil, err
		}
		items = append(items, next)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return Alt{Items: items}, nil
}

func (p *parser) seq() (Expr, error) {
	first, err := p.postfix()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		p.skipSpace()
		// The paper sometimes writes concatenation with '.', e.g.
		// (a*.b.c*.(d|e*).a*) in Example 2.1; accept both.
		if p.peek() != ',' && p.peek() != '.' {
			break
		}
		p.pos++
		next, err := p.postfix()
		if err != nil {
			return nil, err
		}
		items = append(items, next)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return Seq{Items: items}, nil
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			e = Star{X: e}
		case '+':
			p.pos++
			e = Plus{X: e}
		case '?':
			p.pos++
			e = Opt{X: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return e, nil
	}
	start := p.pos
	for p.pos < len(p.in) && isNameChar(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, p.errf("expected element name or '('")
	}
	return Sym{Name: p.in[start:p.pos]}, nil
}

func isNameChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '-' || b == ':'
}

package rex

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// matchSuffixes is an independent (automaton-free) matcher used as an
// oracle: it returns the set of indices j such that e matches w[i:j].
func matchSuffixes(e Expr, w []string, i int) map[int]bool {
	out := make(map[int]bool)
	switch e := e.(type) {
	case Epsilon:
		out[i] = true
	case Sym:
		if i < len(w) && w[i] == e.Name {
			out[i+1] = true
		}
	case Seq:
		cur := map[int]bool{i: true}
		for _, it := range e.Items {
			next := make(map[int]bool)
			for j := range cur {
				for k := range matchSuffixes(it, w, j) {
					next[k] = true
				}
			}
			cur = next
		}
		return cur
	case Alt:
		for _, it := range e.Items {
			for k := range matchSuffixes(it, w, i) {
				out[k] = true
			}
		}
	case Star:
		out[i] = true
		frontier := map[int]bool{i: true}
		for len(frontier) > 0 {
			next := make(map[int]bool)
			for j := range frontier {
				for k := range matchSuffixes(e.X, w, j) {
					if !out[k] {
						out[k] = true
						next[k] = true
					}
				}
			}
			frontier = next
		}
	case Plus:
		return matchSuffixes(Seq{Items: []Expr{e.X, Star{X: e.X}}}, w, i)
	case Opt:
		out[i] = true
		for k := range matchSuffixes(e.X, w, i) {
			out[k] = true
		}
	}
	return out
}

func oracleAccepts(e Expr, w []string) bool {
	return matchSuffixes(e, w, 0)[len(w)]
}

// allWords enumerates Σ^≤maxLen.
func allWords(alphabet []string, maxLen int) [][]string {
	out := [][]string{{}}
	level := [][]string{{}}
	for l := 0; l < maxLen; l++ {
		var next [][]string
		for _, w := range level {
			for _, s := range alphabet {
				nw := append(append([]string(nil), w...), s)
				next = append(next, nw)
				out = append(out, nw)
			}
		}
		level = next
	}
	return out
}

func TestAutomatonAcceptsAgainstOracle(t *testing.T) {
	exprs := []string{
		"a",
		"EMPTY",
		"a*",
		"a+",
		"a?",
		"(a,b)",
		"(a|b)*",
		"(title,(author+|editor+),publisher,price)",
		"(a*.b.c*.(d|e*).a*)",
		"((a,b)*,c)",
		"(a?,b?,c?)",
	}
	for _, in := range exprs {
		e := MustParse(in)
		a, err := Build(e)
		if err != nil {
			t.Errorf("Build(%q): %v", in, err)
			continue
		}
		alpha := a.Symbols()
		maxLen := 5
		if len(alpha) > 3 {
			maxLen = 4
		}
		for _, w := range allWords(alpha, maxLen) {
			got := a.Accepts(w)
			want := oracleAccepts(e, w)
			if got != want {
				t.Errorf("%q: Accepts(%v) = %v, oracle %v", in, w, got, want)
			}
		}
	}
}

func TestAmbiguityDetection(t *testing.T) {
	ambiguous := []string{
		"(a,b)|(a,c)", // classic: after 'a' we cannot know which branch
		"(a|a)",
		"(a*,a)",
		"(a?,a)",
		"((a,b)|(a,c))",
	}
	for _, in := range ambiguous {
		_, err := Build(MustParse(in))
		var ae *AmbiguityError
		if err == nil || !errors.As(err, &ae) {
			t.Errorf("Build(%q) err = %v, want AmbiguityError", in, err)
		}
	}
	unambiguous := []string{
		"(a,b)|(b,c)",
		"(a,(b|c))",
		"(a*,b)",
		"(a|b)*",
	}
	for _, in := range unambiguous {
		if _, err := Build(MustParse(in)); err != nil {
			t.Errorf("Build(%q): %v", in, err)
		}
	}
}

// TestOrdExample21 checks Example 2.1 of the paper:
// ρ = (a*.b.c*.(d|e*).a*): Ord(b,c), Ord(c,d), Ord(c,e), ¬Ord(a,c), Ord(b,d).
func TestOrdExample21(t *testing.T) {
	a := MustBuild(MustParse("(a*.b.c*.(d|e*).a*)"))
	cases := []struct {
		x, y string
		want bool
	}{
		{"b", "c", true},
		{"c", "d", true},
		{"c", "e", true},
		{"a", "c", false},
		{"b", "d", true}, // transitivity
		{"c", "b", false},
		{"d", "a", false},
		{"b", "a", false}, // trailing a* lets a follow b
		{"zz", "c", true}, // vacuous: zz not in alphabet
		{"c", "zz", true},
	}
	for _, c := range cases {
		if got := a.Ord(c.x, c.y); got != c.want {
			t.Errorf("Ord(%s,%s) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// ordOracle checks the declarative definition over an enumerated sample of
// the language: Ord(a,b) iff no word has b strictly before a.
func ordOracle(a *Automaton, x, y string, words [][]string) bool {
	for _, w := range words {
		seenY := false
		for _, s := range w {
			if s == x && seenY {
				return false
			}
			if s == y {
				seenY = true
			}
		}
	}
	return true
}

func TestOrdAgainstDeclarativeOracle(t *testing.T) {
	exprs := []string{
		"(a*.b.c*.(d|e*).a*)",
		"(title,(author+|editor+),publisher,price)",
		"(title|author)*",
		"(book*,article*)",
		"(a?,b?,c?)",
		"((a,b)*,c)",
	}
	for _, in := range exprs {
		a := MustBuild(MustParse(in))
		words := a.Words(2*a.NumStates()+2, 2000000)
		for _, x := range a.Symbols() {
			for _, y := range a.Symbols() {
				got := a.Ord(x, y)
				want := ordOracle(a, x, y, words)
				if got != want {
					t.Errorf("%q: Ord(%s,%s) = %v, oracle %v", in, x, y, got, want)
				}
			}
		}
	}
}

// pastOracle checks Past declaratively: for a prefix u of some word, Past
// is false iff some enumerated word extends u with a later occurrence.
func pastOracle(words [][]string, u []string, sym string) bool {
	for _, w := range words {
		if len(w) < len(u) {
			continue
		}
		pre := true
		for i := range u {
			if w[i] != u[i] {
				pre = false
				break
			}
		}
		if !pre {
			continue
		}
		for _, s := range w[len(u):] {
			if s == sym {
				return false
			}
		}
	}
	return true
}

func TestPastAgainstDeclarativeOracle(t *testing.T) {
	exprs := []string{
		"(a*.b.c*.(d|e*).a*)",
		"(title,(author+|editor+),publisher,price)",
		"(title|author)*",
		"(a?,b?,c?)",
	}
	for _, in := range exprs {
		a := MustBuild(MustParse(in))
		words := a.Words(a.NumStates()+2, 200000)
		// Walk every valid prefix (up to a modest depth) and compare.
		var walk func(q int, u []string, depth int)
		walk = func(q int, u []string, depth int) {
			for _, sym := range a.Symbols() {
				got := a.Past(q, sym)
				want := pastOracle(words, u, sym)
				if got != want {
					t.Errorf("%q: Past(%v, %s) = %v, oracle %v", in, u, sym, got, want)
				}
			}
			if depth == 0 {
				return
			}
			for _, sym := range a.Symbols() {
				if p, ok := a.Step(q, sym); ok {
					walk(p, append(u, sym), depth-1)
				}
			}
		}
		walk(0, nil, 4)
	}
}

func TestPastSingleSymbol(t *testing.T) {
	// Regression for the Delta+ vs Delta* subtlety: for ρ = a, after
	// reading the single a, a is past.
	a := MustBuild(MustParse("a"))
	q, ok := a.Step(a.Start(), "a")
	if !ok {
		t.Fatal("step failed")
	}
	if !a.Past(q, "a") {
		t.Error("Past(q_a, a) = false, want true for ρ=a")
	}
	if a.Past(a.Start(), "a") {
		t.Error("Past(q0, a) = true, want false for ρ=a")
	}
}

func TestAtMostOnce(t *testing.T) {
	cases := []struct {
		expr string
		sym  string
		want bool
	}{
		{"a", "a", true},
		{"a*", "a", false},
		{"a+", "a", false},
		{"a?", "a", true},
		{"(a,b)", "a", true},
		{"(a,a)", "a", false}, // note: unambiguous? (a,a) -> after first a only one a follows... deterministic yes
		{"(a|b)*", "a", false},
		{"(a|b)", "a", true},
		{"(title,(author+|editor+),publisher,price)", "title", true},
		{"(title,(author+|editor+),publisher,price)", "author", false},
		{"(regions,categories,catgraph,people,open_auctions,closed_auctions)", "people", true},
		{"(a,b)", "zz", true},
	}
	for _, c := range cases {
		a := MustBuild(MustParse(c.expr))
		if got := a.AtMostOnce(c.sym); got != c.want {
			t.Errorf("%q: AtMostOnce(%s) = %v, want %v", c.expr, c.sym, got, c.want)
		}
	}
}

func TestPastTableMatchesPast(t *testing.T) {
	a := MustBuild(MustParse("(title,(author+|editor+),publisher,price)"))
	S := []string{"title", "author"}
	tab := a.PastTable(S)
	for q := 0; q < a.NumStates(); q++ {
		want := a.Past(q, "title") && a.Past(q, "author")
		if tab[q] != want {
			t.Errorf("PastTable[%d] = %v, want %v", q, tab[q], want)
		}
	}
	// Empty S: past everywhere.
	for q, v := range a.PastTable(nil) {
		if !v {
			t.Errorf("PastTable(∅)[%d] = false, want true", q)
		}
	}
}

// randExpr builds a random expression over a small alphabet.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		return Sym{Name: string(rune('a' + r.Intn(3)))}
	}
	switch r.Intn(6) {
	case 0:
		return Seq{Items: []Expr{randExpr(r, depth-1), randExpr(r, depth-1)}}
	case 1:
		return Alt{Items: []Expr{randExpr(r, depth-1), randExpr(r, depth-1)}}
	case 2:
		return Star{X: randExpr(r, depth-1)}
	case 3:
		return Plus{X: randExpr(r, depth-1)}
	case 4:
		return Opt{X: randExpr(r, depth-1)}
	default:
		return Sym{Name: string(rune('a' + r.Intn(3)))}
	}
}

func TestPropertyRandomExprsAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alpha := []string{"a", "b", "c"}
	words := allWords(alpha, 4)
	built := 0
	for i := 0; i < 400; i++ {
		e := randExpr(r, 3)
		a, err := Build(e)
		if err != nil {
			continue // ambiguous by construction; skip
		}
		built++
		for _, w := range words {
			if got, want := a.Accepts(w), oracleAccepts(e, w); got != want {
				t.Fatalf("%s: Accepts(%v) = %v, oracle %v", e, w, got, want)
			}
		}
		// Ord must agree with the declarative oracle on the sample.
		sample := a.Words(2*a.NumStates()+2, 200000)
		for _, x := range alpha {
			for _, y := range alpha {
				if x == y {
					continue
				}
				if got, want := a.Ord(x, y), ordOracle(a, x, y, sample); got != want {
					t.Fatalf("%s: Ord(%s,%s) = %v, oracle %v", e, x, y, got, want)
				}
			}
		}
	}
	if built < 50 {
		t.Fatalf("only %d/400 random expressions were unambiguous; generator too weak", built)
	}
}

func TestWordsEnumeration(t *testing.T) {
	a := MustBuild(MustParse("(a,b)|(b,a?)"))
	words := a.Words(2, 100)
	var got []string
	for _, w := range words {
		got = append(got, strings.Join(w, ""))
	}
	want := []string{"ab", "b", "ba"}
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	if len(got) != 3 {
		t.Fatalf("Words = %v, want %v", got, want)
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("Words missing %q: %v", w, got)
		}
	}
}

func TestOrdTransitive(t *testing.T) {
	// Paper Example 2.1: Ord(b,c) and Ord(c,d) give Ord(b,d) by
	// transitivity. (Unrestricted transitivity fails when the middle
	// symbol never co-occurs with the others, e.g. d and e here.)
	a := MustBuild(MustParse("(a*.b.c*.(d|e*).a*)"))
	if !(a.Ord("b", "c") && a.Ord("c", "d") && a.Ord("b", "d")) {
		t.Error("expected Ord(b,c), Ord(c,d), Ord(b,d) to hold")
	}
}

func TestStepRejectsInvalid(t *testing.T) {
	a := MustBuild(MustParse("(a,b)"))
	if _, ok := a.Step(a.Start(), "b"); ok {
		t.Error("Step(q0, b) ok, want reject")
	}
	if _, ok := a.Step(a.Start(), "nope"); ok {
		t.Error("Step(q0, nope) ok, want reject")
	}
	q, _ := a.Step(a.Start(), "a")
	if a.Accepting(q) {
		t.Error("state after 'a' accepting, want not")
	}
	q, _ = a.Step(q, "b")
	if !a.Accepting(q) {
		t.Error("state after 'ab' not accepting")
	}
}

func TestReflectDeepEqualGuard(t *testing.T) {
	// Symbols() must return a stable sorted slice; guard against mutation.
	a := MustBuild(MustParse("(b,a)"))
	if !reflect.DeepEqual(a.Symbols(), []string{"a", "b"}) {
		t.Errorf("Symbols = %v", a.Symbols())
	}
}

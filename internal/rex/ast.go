// Package rex implements the regular-expression machinery behind the FluX
// paper's schema analysis (Section 2 and Appendix B): content-model
// expressions, Glushkov automata for one-unambiguous regular expressions,
// order constraints Ord_ρ(a,b), the Past / first-past relations used to
// generate punctuation events, and cardinality (at-most-once) analysis used
// by the Section 7 loop-merging rewrite.
package rex

import "strings"

// Expr is a regular expression over element names (content model).
type Expr interface {
	// String renders the expression in DTD content-model syntax.
	String() string
	appendTo(b *strings.Builder, prec int)
}

// precedences for printing: alt < seq < postfix.
const (
	precAlt = iota
	precSeq
	precPost
)

// Epsilon matches the empty word. DTDs write it as EMPTY at the production
// level; it also arises as a component of analyses.
type Epsilon struct{}

// Sym matches a single element name.
type Sym struct{ Name string }

// Seq matches the concatenation of its items.
type Seq struct{ Items []Expr }

// Alt matches any one of its items.
type Alt struct{ Items []Expr }

// Star matches zero or more repetitions of X.
type Star struct{ X Expr }

// Plus matches one or more repetitions of X.
type Plus struct{ X Expr }

// Opt matches zero or one occurrence of X.
type Opt struct{ X Expr }

func (Epsilon) String() string { return "EMPTY" }
func (e Sym) String() string   { return e.Name }

func (e Seq) String() string  { return exprString(e) }
func (e Alt) String() string  { return exprString(e) }
func (e Star) String() string { return exprString(e) }
func (e Plus) String() string { return exprString(e) }
func (e Opt) String() string  { return exprString(e) }

func exprString(e Expr) string {
	var b strings.Builder
	e.appendTo(&b, precAlt)
	return b.String()
}

func (Epsilon) appendTo(b *strings.Builder, prec int) { b.WriteString("EMPTY") }

func (e Sym) appendTo(b *strings.Builder, prec int) { b.WriteString(e.Name) }

func (e Seq) appendTo(b *strings.Builder, prec int) {
	if len(e.Items) == 1 {
		e.Items[0].appendTo(b, prec)
		return
	}
	if prec > precSeq {
		b.WriteByte('(')
	}
	for i, it := range e.Items {
		if i > 0 {
			b.WriteByte(',')
		}
		it.appendTo(b, precSeq+1)
	}
	if prec > precSeq {
		b.WriteByte(')')
	}
}

func (e Alt) appendTo(b *strings.Builder, prec int) {
	if len(e.Items) == 1 {
		e.Items[0].appendTo(b, prec)
		return
	}
	if prec > precAlt {
		b.WriteByte('(')
	}
	for i, it := range e.Items {
		if i > 0 {
			b.WriteByte('|')
		}
		it.appendTo(b, precAlt+1)
	}
	if prec > precAlt {
		b.WriteByte(')')
	}
}

func (e Star) appendTo(b *strings.Builder, prec int) {
	e.X.appendTo(b, precPost)
	b.WriteByte('*')
}

func (e Plus) appendTo(b *strings.Builder, prec int) {
	e.X.appendTo(b, precPost)
	b.WriteByte('+')
}

func (e Opt) appendTo(b *strings.Builder, prec int) {
	e.X.appendTo(b, precPost)
	b.WriteByte('?')
}

// Symbols returns the set of distinct element names occurring in e, in
// first-occurrence order (symb(ρ) in the paper).
func Symbols(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case Epsilon:
		case Sym:
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e.Name)
			}
		case Seq:
			for _, it := range e.Items {
				walk(it)
			}
		case Alt:
			for _, it := range e.Items {
				walk(it)
			}
		case Star:
			walk(e.X)
		case Plus:
			walk(e.X)
		case Opt:
			walk(e.X)
		}
	}
	walk(e)
	return out
}

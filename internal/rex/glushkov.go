package rex

import (
	"fmt"
	"sort"
)

// AmbiguityError reports that a content model is not one-unambiguous
// (deterministic), which XML requires of DTD content models and which the
// paper's machinery depends on (Bruggemann-Klein & Wood).
type AmbiguityError struct {
	Expr   string
	Symbol string
}

// Error implements error.
func (e *AmbiguityError) Error() string {
	return fmt.Sprintf("rex: content model %q is not one-unambiguous at symbol %q", e.Expr, e.Symbol)
}

// Automaton is the Glushkov automaton of a one-unambiguous regular
// expression. State 0 is the initial state q0; states 1..n correspond to
// the marked positions of the expression (Appendix B). Because the
// expression is one-unambiguous, the automaton is deterministic.
type Automaton struct {
	expr Expr

	syms   []string       // distinct symbols, sorted
	symIdx map[string]int // name -> index into syms

	n      int     // number of states (positions + 1)
	posSym []int   // state -> symbol index (state 0 -> -1)
	trans  [][]int // trans[state][symIdx] -> next state, -1 if none
	accept []bool

	// reachSyms[q] is the set of symbol indices reachable from q via at
	// least one transition: the complement of the Past relation. Using
	// >=1-step reachability (Delta+) fixes the empty-word subtlety in the
	// paper's Appendix B definition so that the state-based Past matches
	// the declarative Past of Section 2.
	reachSyms []bitset

	// reachPos[q] is the set of states reachable from q via >=1 steps.
	reachPos []bitset
}

// position marks one occurrence of a symbol in the expression.
type glushkovSets struct {
	nullable bool
	first    []int
	last     []int
}

// Build constructs the Glushkov automaton for e. It returns an
// AmbiguityError if e is not one-unambiguous.
func Build(e Expr) (*Automaton, error) {
	a := &Automaton{expr: e, symIdx: make(map[string]int)}
	a.syms = Symbols(e)
	sort.Strings(a.syms)
	for i, s := range a.syms {
		a.symIdx[s] = i
	}

	// Assign positions in left-to-right order; position p corresponds to
	// automaton state p (1-based). follow[p] collects follow positions.
	var posSyms []int // 1-based positions stored from index 1
	posSyms = append(posSyms, -1)
	follow := [][]int{nil}

	var build func(Expr) glushkovSets
	newPos := func(symIdx int) int {
		posSyms = append(posSyms, symIdx)
		follow = append(follow, nil)
		return len(posSyms) - 1
	}
	addFollow := func(from []int, to []int) {
		for _, p := range from {
			follow[p] = append(follow[p], to...)
		}
	}
	build = func(e Expr) glushkovSets {
		switch e := e.(type) {
		case Epsilon:
			return glushkovSets{nullable: true}
		case Sym:
			p := newPos(a.symIdx[e.Name])
			return glushkovSets{nullable: false, first: []int{p}, last: []int{p}}
		case Seq:
			out := glushkovSets{nullable: true}
			for _, it := range e.Items {
				s := build(it)
				addFollow(out.last, s.first)
				if out.nullable {
					out.first = append(out.first, s.first...)
				}
				if s.nullable {
					out.last = append(out.last, s.last...)
				} else {
					out.last = append([]int(nil), s.last...)
				}
				out.nullable = out.nullable && s.nullable
			}
			return out
		case Alt:
			var out glushkovSets
			for _, it := range e.Items {
				s := build(it)
				out.nullable = out.nullable || s.nullable
				out.first = append(out.first, s.first...)
				out.last = append(out.last, s.last...)
			}
			return out
		case Star:
			s := build(e.X)
			addFollow(s.last, s.first)
			return glushkovSets{nullable: true, first: s.first, last: s.last}
		case Plus:
			s := build(e.X)
			addFollow(s.last, s.first)
			return glushkovSets{nullable: s.nullable, first: s.first, last: s.last}
		case Opt:
			s := build(e.X)
			return glushkovSets{nullable: true, first: s.first, last: s.last}
		default:
			panic(fmt.Sprintf("rex: unknown expression type %T", e))
		}
	}
	root := build(e)

	a.n = len(posSyms)
	a.posSym = posSyms
	a.accept = make([]bool, a.n)
	a.accept[0] = root.nullable
	for _, p := range root.last {
		a.accept[p] = true
	}

	a.trans = make([][]int, a.n)
	for q := 0; q < a.n; q++ {
		row := make([]int, len(a.syms))
		for i := range row {
			row[i] = -1
		}
		a.trans[q] = row
	}
	install := func(q int, targets []int) error {
		for _, p := range targets {
			si := posSyms[p]
			if prev := a.trans[q][si]; prev != -1 && prev != p {
				return &AmbiguityError{Expr: e.String(), Symbol: a.syms[si]}
			}
			a.trans[q][si] = p
		}
		return nil
	}
	if err := install(0, root.first); err != nil {
		return nil, err
	}
	for p := 1; p < a.n; p++ {
		if err := install(p, follow[p]); err != nil {
			return nil, err
		}
	}

	a.computeReach()
	return a, nil
}

// MustBuild is Build for known-good expressions.
func MustBuild(e Expr) *Automaton {
	a, err := Build(e)
	if err != nil {
		panic(err)
	}
	return a
}

// computeReach fills reachPos and reachSyms with >=1-step reachability
// (Delta+ in DESIGN.md). DTD content models are tiny, so the O(n^2)
// propagation is irrelevant in practice.
func (a *Automaton) computeReach() {
	a.reachPos = make([]bitset, a.n)
	a.reachSyms = make([]bitset, a.n)
	for q := 0; q < a.n; q++ {
		a.reachPos[q] = newBitset(a.n)
		a.reachSyms[q] = newBitset(len(a.syms))
	}
	// Successor sets.
	for q := 0; q < a.n; q++ {
		for _, p := range a.trans[q] {
			if p >= 0 {
				a.reachPos[q].set(p)
			}
		}
	}
	// Transitive closure by iteration to fixpoint.
	for changed := true; changed; {
		changed = false
		for q := 0; q < a.n; q++ {
			for p := 0; p < a.n; p++ {
				if !a.reachPos[q].has(p) {
					continue
				}
				if a.reachPos[q].orInto(a.reachPos[p]) {
					changed = true
				}
			}
		}
	}
	for q := 0; q < a.n; q++ {
		for p := 1; p < a.n; p++ {
			if a.reachPos[q].has(p) {
				a.reachSyms[q].set(a.posSym[p])
			}
		}
	}
}

// Expr returns the expression the automaton was built from.
func (a *Automaton) Expr() Expr { return a.expr }

// Symbols returns the automaton's alphabet, sorted.
func (a *Automaton) Symbols() []string { return a.syms }

// HasSymbol reports whether name occurs in the expression.
func (a *Automaton) HasSymbol(name string) bool {
	_, ok := a.symIdx[name]
	return ok
}

// NumStates returns the number of automaton states (positions + 1).
func (a *Automaton) NumStates() int { return a.n }

// Start returns the initial state q0.
func (a *Automaton) Start() int { return 0 }

// Step performs the deterministic transition from state q on symbol name.
// ok is false if the symbol is not allowed at this point (invalid word).
func (a *Automaton) Step(q int, name string) (next int, ok bool) {
	si, here := a.symIdx[name]
	if !here {
		return q, false
	}
	p := a.trans[q][si]
	if p < 0 {
		return q, false
	}
	return p, true
}

// Accepting reports whether q is a final state (the word read so far is a
// complete word of the language).
func (a *Automaton) Accepting(q int) bool { return a.accept[q] }

// Accepts reports whether the automaton accepts the word.
func (a *Automaton) Accepts(word []string) bool {
	q := 0
	for _, s := range word {
		var ok bool
		q, ok = a.Step(q, s)
		if !ok {
			return false
		}
	}
	return a.accept[q]
}

// Past reports Past_ρ(q, name): having reached state q, no element named
// name can occur in any continuation of the word. Symbols outside the
// alphabet are trivially past.
func (a *Automaton) Past(q int, name string) bool {
	si, ok := a.symIdx[name]
	if !ok {
		return true
	}
	return !a.reachSyms[q].has(si)
}

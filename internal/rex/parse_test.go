package rex

import (
	"errors"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical printing; "" means same as in
	}{
		{"a", ""},
		{"EMPTY", ""},
		{"(a,b)", "a,b"},
		{"(a|b)", "a|b"},
		{"a*", ""},
		{"a+", ""},
		{"a?", ""},
		{"(book)*", "book*"},
		{"(title,(author+|editor+),publisher,price)", "title,(author+|editor+),publisher,price"},
		{"(title|author)*", "(title|author)*"},
		{"((title|author)*,price)", "(title|author)*,price"},
		{"(a*.b.c*.(d|e*).a*)", "a*,b,c*,(d|e*),a*"},
		{"(a , b | c)", "a,b|c"},
		{"a**", ""},
		{"(#x | y)", ""}, // '#' is not a name char
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if c.want == "" && c.in == "(#x | y)" {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.in
		}
		if got := e.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, want)
		}
		// Reparse of the printed form must be accepted and print identically.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", e.String(), err)
			continue
		}
		if e2.String() != e.String() {
			t.Errorf("reparse of %q printed as %q", e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "(", "(a", "(a,)", "a|", "a b", ")", "*", "(a))", "a,,b"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q) error %T, want *ParseError", in, err)
			}
		}
	}
}

func TestSymbols(t *testing.T) {
	e := MustParse("(title,(author+|editor+),publisher,title)")
	got := Symbols(e)
	want := []string{"title", "author", "editor", "publisher"}
	if len(got) != len(want) {
		t.Fatalf("Symbols = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Symbols = %v, want %v", got, want)
		}
	}
}

package stream_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"flux"
	"flux/internal/stream"
)

const liveDTD = `
<!ELEMENT r (a*,b*,c*)>
<!ELEMENT a (x,y)>
<!ELEMENT b (x)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
`

const liveDoc = `<r>` +
	`<a><x>ax1</x><y>ay1</y></a><a><x>ax2</x><y>ay2</y></a>` +
	`<b><x>bx1</x></b><b><x>bx2</x></b>` +
	`<c>c1</c><c>c2</c>` +
	`</r>`

var liveQueries = []string{
	`{ for $a in /r/a return {$a} }`,
	`{ for $b in /r/b return {$b/x} }`,
	`{ for $c in /r/c return {$c} }`,
}

// newHub returns a hub over a catalog holding one stream-backed
// document named "live".
func newHub(t *testing.T, opt stream.Options) (*stream.Hub, *flux.Catalog) {
	t.Helper()
	cat := flux.NewCatalog(flux.CatalogOptions{})
	if err := cat.AddStream("live", liveDTD); err != nil {
		t.Fatal(err)
	}
	return stream.NewHub(cat, opt), cat
}

// staticResult evaluates the query over doc through the batch path —
// the oracle every streamed result must match byte for byte.
func staticResult(t *testing.T, cat *flux.Catalog, query, doc string) (string, flux.Stats) {
	t.Helper()
	q, err := cat.Prepare("live", query)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := q.RunString(doc, flux.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

// lockedBuffer is a concurrency-safe bytes.Buffer for subscriber
// output that tests inspect before Done.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (lb *lockedBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.buf.Write(p)
}

func (lb *lockedBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.buf.String()
}

func waitDone(t *testing.T, sub *stream.Subscription) {
	t.Helper()
	select {
	case <-sub.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("subscription did not finish")
	}
}

// TestStreamStaticEquivalence: subscriptions registered before the
// ingest see, from a document fed in tiny chunks, byte-identical output
// and equal engine stats to the batch path over the same document — and
// each charges the catalog's admission gate while it stands.
func TestStreamStaticEquivalence(t *testing.T) {
	hub, cat := newHub(t, stream.Options{})
	var subs []*stream.Subscription
	var outs []*lockedBuffer
	for _, q := range liveQueries {
		out := &lockedBuffer{}
		sub, err := hub.Subscribe(context.Background(), "live", q, out, stream.PolicyBlock)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		outs = append(outs, out)
	}
	if st := hub.Stats(); st.WaitingSubscriptions != 3 {
		t.Fatalf("parked subscriptions = %d, want 3", st.WaitingSubscriptions)
	}
	if st := cat.AdmissionStats(); st.ActiveScans != 3 {
		t.Fatalf("admitted charges = %d, want 3", st.ActiveScans)
	}

	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	if st := hub.Stats(); st.WaitingSubscriptions != 0 || len(st.ActiveIngests) != 1 {
		t.Fatalf("hub stats after StartIngest = %+v", st)
	}
	for i := 0; i < len(liveDoc); i += 3 {
		end := min(i+3, len(liveDoc))
		if _, err := ing.Write([]byte(liveDoc[i:end])); err != nil {
			t.Fatalf("chunk at %d: %v", i, err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	for i, sub := range subs {
		waitDone(t, sub)
		if err := sub.Err(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		wantOut, wantSt := staticResult(t, cat, liveQueries[i], liveDoc)
		if got := outs[i].String(); got != wantOut {
			t.Fatalf("query %d streamed %q, static %q", i, got, wantOut)
		}
		st := sub.Stats()
		if st.OutputBytes != wantSt.OutputBytes {
			t.Fatalf("query %d OutputBytes = %d, static %d", i, st.OutputBytes, wantSt.OutputBytes)
		}
		if st.PeakBufferBytes != wantSt.PeakBufferBytes {
			t.Fatalf("query %d PeakBufferBytes = %d, static %d", i, st.PeakBufferBytes, wantSt.PeakBufferBytes)
		}
		if st.DroppedBytes != 0 {
			t.Fatalf("query %d dropped %d bytes under PolicyBlock", i, st.DroppedBytes)
		}
	}
	if st := cat.AdmissionStats(); st.ActiveScans != 0 {
		t.Fatalf("admission charges not released: %d active", st.ActiveScans)
	}
	if ing.Events() == 0 {
		t.Fatal("ingest reports zero scan events")
	}
}

// TestStreamSubscribeMidStream: a subscription joining while the stream
// is in flight observes exactly the document suffix from its sync
// point on.
func TestStreamSubscribeMidStream(t *testing.T) {
	hub, _ := newHub(t, stream.Options{})
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.Index(liveDoc, "<c>")
	if _, err := ing.Write([]byte(liveDoc[:cut])); err != nil {
		t.Fatal(err)
	}
	out := &lockedBuffer{}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[2], out, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Write([]byte(liveDoc[cut:])); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sub)
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "<c>c1</c><c>c2</c>"; got != want {
		t.Fatalf("mid-stream join output %q, want %q", got, want)
	}
}

// TestStreamResultsBeforeEnd: a completed match is delivered to the
// subscriber while the stream is still open — before the closing root
// tag has even been written.
func TestStreamResultsBeforeEnd(t *testing.T) {
	hub, _ := newHub(t, stream.Options{})
	out := &lockedBuffer{}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[0], out, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Write([]byte(liveDoc[:len(liveDoc)-len("</r>")])); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	want := "<a><x>ax1</x><y>ay1</y></a><a><x>ax2</x><y>ay2</y></a>"
	for out.String() != want {
		if time.Now().After(deadline) {
			t.Fatalf("before end of stream: output %q, want %q", out.String(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ing.Write([]byte("</r>")); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sub)
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	if sub.Stats().FirstResult == 0 {
		t.Fatal("FirstResult latency not recorded")
	}
}

// TestStreamCancelMidMatch: canceling a subscription's context detaches
// it mid-stream — its Done closes with the cancellation well before the
// stream ends — while a sibling subscription is untouched.
func TestStreamCancelMidMatch(t *testing.T) {
	hub, _ := newHub(t, stream.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	canceledOut, siblingOut := &lockedBuffer{}, &lockedBuffer{}
	canceled, err := hub.Subscribe(ctx, "live", liveQueries[0], canceledOut, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := hub.Subscribe(context.Background(), "live", liveQueries[2], siblingOut, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.Index(liveDoc, "<b>")
	if _, err := ing.Write([]byte(liveDoc[:cut])); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := ing.Write([]byte(liveDoc[cut:])); err != nil {
		t.Fatal(err)
	}
	// The canceled subscription must finish off the stream's own
	// lifecycle: its detach happens at batch granularity, no Close yet.
	waitDone(t, canceled)
	if err := canceled.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled subscription err = %v, want context.Canceled", err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sibling)
	if err := sibling.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := siblingOut.String(), "<c>c1</c><c>c2</c>"; got != want {
		t.Fatalf("sibling output %q, want %q", got, want)
	}
}

// gatedWriter blocks every Write until the gate opens.
type gatedWriter struct {
	gate <-chan struct{}
	lockedBuffer
}

func (gw *gatedWriter) Write(p []byte) (int, error) {
	<-gw.gate
	return gw.lockedBuffer.Write(p)
}

// bigLiveDoc builds a document whose per-query output far exceeds a
// small ring buffer.
func bigLiveDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<a><x>payload-payload-payload</x><y>value-value-value</y></a>")
	}
	sb.WriteString("<c>tail</c></r>")
	return sb.String()
}

// TestStreamBackpressureBlock: under PolicyBlock a subscriber that
// stops draining parks the scan once its ring fills, which blocks the
// producer's Write — bounded memory by backpressure, not by growth —
// and everything flows to completion once the subscriber resumes.
func TestStreamBackpressureBlock(t *testing.T) {
	hub, cat := newHub(t, stream.Options{SubscriberBuffer: 64})
	gate := make(chan struct{})
	out := &gatedWriter{gate: gate}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[0], out, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	doc := bigLiveDoc(2000)
	wrote := make(chan error, 1)
	go func() {
		_, werr := ing.Write([]byte(doc))
		wrote <- werr
	}()
	select {
	case werr := <-wrote:
		t.Fatalf("full-document Write completed against a blocked subscriber (err=%v)", werr)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	if werr := <-wrote; werr != nil {
		t.Fatal(werr)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sub)
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	want, _ := staticResult(t, cat, liveQueries[0], doc)
	if got := out.String(); got != want {
		t.Fatalf("output after backpressure diverged: %d bytes vs %d static", len(got), len(want))
	}
	if st := sub.Stats(); st.DroppedBytes != 0 {
		t.Fatalf("PolicyBlock dropped %d bytes", st.DroppedBytes)
	}
}

// TestStreamDropPolicy: under PolicyDrop a full ring discards the
// overflow and counts it instead of stalling the stream — the producer
// finishes at full speed against a subscriber that never drains.
func TestStreamDropPolicy(t *testing.T) {
	hub, cat := newHub(t, stream.Options{SubscriberBuffer: 64})
	gate := make(chan struct{})
	out := &gatedWriter{gate: gate}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[0], out, stream.PolicyDrop)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	doc := bigLiveDoc(200)
	if _, err := ing.Write([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	close(gate) // let the drain deliver what survived
	waitDone(t, sub)
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.DroppedBytes == 0 {
		t.Fatal("nothing dropped despite a never-draining subscriber")
	}
	_, wantSt := staticResult(t, cat, liveQueries[0], doc)
	if st.OutputBytes != wantSt.OutputBytes {
		t.Fatalf("engine OutputBytes = %d, static %d (drops must not change what the engine produces)", st.OutputBytes, wantSt.OutputBytes)
	}
	if delivered := int64(len(out.String())); delivered+st.DroppedBytes != st.OutputBytes {
		t.Fatalf("delivered %d + dropped %d != produced %d", delivered, st.DroppedBytes, st.OutputBytes)
	}
}

// TestStreamWriterFailureDetaches: a subscriber whose writer dies is
// detached from the stream; the ingest and its sibling complete clean.
func TestStreamWriterFailureDetaches(t *testing.T) {
	hub, _ := newHub(t, stream.Options{})
	boom := errors.New("subscriber pipe burst")
	dead, err := hub.Subscribe(context.Background(), "live", liveQueries[0], failWriter{boom}, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	siblingOut := &lockedBuffer{}
	sibling, err := hub.Subscribe(context.Background(), "live", liveQueries[2], siblingOut, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Write([]byte(liveDoc)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, dead)
	if err := dead.Err(); !errors.Is(err, boom) {
		t.Fatalf("dead subscriber err = %v, want the writer's failure", err)
	}
	waitDone(t, sibling)
	if err := sibling.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := siblingOut.String(), "<c>c1</c><c>c2</c>"; got != want {
		t.Fatalf("sibling output %q, want %q", got, want)
	}
}

type failWriter struct{ err error }

func (fw failWriter) Write(p []byte) (int, error) { return 0, fw.err }

// TestStreamHubCloseWithOpenStreams: closing the hub while an ingest is
// live — with a producer parked in Write behind a blocked subscriber —
// unwinds everything: the Write returns, subscriptions finish with the
// shutdown error, and the hub rejects further work.
func TestStreamHubCloseWithOpenStreams(t *testing.T) {
	hub, _ := newHub(t, stream.Options{SubscriberBuffer: 64})
	gate := make(chan struct{})
	out := &gatedWriter{gate: gate}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[0], out, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	parked, err := hub.Subscribe(context.Background(), "other-parked", liveQueries[0], &lockedBuffer{}, stream.PolicyBlock)
	if !errors.Is(err, flux.ErrDocNotFound) {
		t.Fatalf("subscribe to unknown doc: err = %v, want ErrDocNotFound", err)
	}
	_ = parked
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	wrote := make(chan error, 1)
	go func() {
		_, werr := ing.Write([]byte(bigLiveDoc(2000)))
		wrote <- werr
	}()
	select {
	case werr := <-wrote:
		t.Fatalf("Write completed against a blocked subscriber (err=%v)", werr)
	case <-time.After(100 * time.Millisecond):
	}
	hub.Close()
	select {
	case <-wrote:
	case <-time.After(10 * time.Second):
		t.Fatal("producer Write still blocked after hub Close")
	}
	// The subscriber's own writer is still parked; release it so the
	// drain goroutine can observe the shutdown. (A real subscriber's
	// writer is interrupted by its transport — e.g. the HTTP server
	// closing the connection.)
	close(gate)
	waitDone(t, sub)
	if err := sub.Err(); err == nil || !strings.Contains(err.Error(), stream.ErrHubClosed.Error()) {
		t.Fatalf("subscription err after shutdown = %v, want hub-closed cause", err)
	}
	if _, err := hub.StartIngest(context.Background(), "live"); !errors.Is(err, stream.ErrHubClosed) {
		t.Fatalf("StartIngest on closed hub: err = %v, want ErrHubClosed", err)
	}
	if _, err := hub.Subscribe(context.Background(), "live", liveQueries[0], &lockedBuffer{}, stream.PolicyBlock); !errors.Is(err, stream.ErrHubClosed) {
		t.Fatalf("Subscribe on closed hub: err = %v, want ErrHubClosed", err)
	}
}

// TestStreamOneIngestPerDoc: a document is one stream at a time; after
// Close the next ingest may begin, and subscriptions parked in between
// attach to it.
func TestStreamOneIngestPerDoc(t *testing.T) {
	hub, _ := newHub(t, stream.Options{})
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.StartIngest(context.Background(), "live"); !errors.Is(err, stream.ErrIngestActive) {
		t.Fatalf("second StartIngest: err = %v, want ErrIngestActive", err)
	}
	if _, err := ing.Write([]byte(liveDoc)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	out := &lockedBuffer{}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[1], out, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	ing2, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatalf("StartIngest after Close: %v", err)
	}
	if _, err := ing2.Write([]byte(liveDoc)); err != nil {
		t.Fatal(err)
	}
	if err := ing2.Close(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sub)
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "<x>bx1</x><x>bx2</x>"; got != want {
		t.Fatalf("second-ingest output %q, want %q", got, want)
	}
}

// TestStreamAbortFailsSubscriptions: a producer dying mid-document
// fails every open subscription with the abort cause preserved.
func TestStreamAbortFailsSubscriptions(t *testing.T) {
	hub, _ := newHub(t, stream.Options{})
	out := &lockedBuffer{}
	sub, err := hub.Subscribe(context.Background(), "live", liveQueries[0], out, stream.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := hub.StartIngest(context.Background(), "live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Write([]byte(`<r><a><x>ax1</x>`)); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("feed connection reset")
	if err := ing.Abort(cause); err == nil || !strings.Contains(err.Error(), cause.Error()) {
		t.Fatalf("Abort returned %v, want the cause preserved", err)
	}
	waitDone(t, sub)
	if err := sub.Err(); err == nil || !strings.Contains(err.Error(), cause.Error()) {
		t.Fatalf("subscription err after abort = %v, want the cause preserved", err)
	}
}

package stream

import (
	"io"
	"sync"

	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

// Ingest is one live document stream: the producer pushes the document
// bytes in arbitrary chunks with Write and ends the stream with Close
// (the document is complete) or Abort (the producer died mid-document).
// An Ingest is single-use and its Write side is single-goroutine; Abort
// may be called from any goroutine.
type Ingest struct {
	hub *Hub
	doc string
	m   *mux.Mux
	cs  *sax.ChunkScanner

	mu   sync.Mutex
	subs map[int]*Subscription // mux slot -> activated subscription

	deadOnce sync.Once
	dead     chan struct{} // closed by Close/Abort, whoever ends it
	cause    error         // written inside deadOnce, read after dead
}

// attach enqueues sub on the stream. Called with hub.mu held, which
// orders it strictly before the ingest's EndStream.
func (ing *Ingest) attach(sub *Subscription) {
	err := ing.m.AttachStream(sub.ctx, sub.query.Plan(), sub.ring, func(slot int, err error) {
		if slot >= 0 {
			// Record the slot first: a later detach of this slot (even
			// the immediate one below, on this same goroutine) must
			// find the subscription.
			ing.mu.Lock()
			ing.subs[slot] = sub
			ing.mu.Unlock()
		}
		if err != nil {
			sub.finish(statsAt(ing.m, slot), err)
		}
	})
	if err != nil {
		// The stream ended before the subscription could even enqueue
		// (hub.mu ordering makes this unreachable today, but the mux API
		// allows it); the done callback was not and will not be called.
		sub.finish(engine.Stats{}, err)
	}
}

// Doc names the document this ingest feeds.
func (ing *Ingest) Doc() string { return ing.doc }

// Write pushes the next chunk of the document into the stream. It
// blocks until the scan has consumed the bytes — and transitively,
// under PolicyBlock, until every subscriber has ring space — so the
// producer is throttled by its slowest blocking consumer rather than
// buffering unboundedly. A Write after the stream has failed returns
// the failure.
func (ing *Ingest) Write(p []byte) (int, error) { return ing.cs.Write(p) }

// Close declares the document complete: it waits for the scan to drain
// every pushed byte, runs end-of-document finalization for every live
// subscription (validation of the whole stream included), distributes
// final stats, and returns the stream's result — nil only for a
// well-formed, fully processed document.
func (ing *Ingest) Close() error {
	ing.hub.drop(ing)
	err := ing.cs.Close()
	ing.finishAll(err)
	ing.markDead(err)
	return err
}

// Abort ends the stream without a well-formed end of input — the
// producer's connection dropped, the server is shutting down. Open
// subscriptions fail with the scan's resulting error (their validation
// cannot complete), blocked ring writes are released, and the cause is
// preserved in the returned error.
func (ing *Ingest) Abort(cause error) error {
	ing.hub.drop(ing)
	// Release any scan-side ring write parked on a full buffer: the
	// session behind it must fail so the scan can unwind, rather than
	// deadlocking against a subscriber that stopped draining.
	ing.mu.Lock()
	for _, sub := range ing.subs {
		sub.ring.closeRead(cause)
	}
	ing.mu.Unlock()
	err := ing.cs.Abort(cause)
	ing.finishAll(err)
	ing.markDead(err)
	return err
}

// markDead records the stream's final outcome and closes Dead.
func (ing *Ingest) markDead(err error) {
	ing.deadOnce.Do(func() {
		ing.cause = err
		close(ing.dead)
	})
}

// Dead returns a channel closed once the stream has ended — by the
// producer's own Close or Abort, or from elsewhere (hub shutdown). A
// producer blocked feeding the ingest from another source selects on it
// to notice asynchronous teardown.
func (ing *Ingest) Dead() <-chan struct{} { return ing.dead }

// Err reports why the stream ended: nil for a clean Close, the failure
// otherwise. It returns nil while the stream is still live — meaningful
// once Dead is closed.
func (ing *Ingest) Err() error {
	select {
	case <-ing.dead:
		return ing.cause
	default:
		return nil
	}
}

// finishAll ends the stream on the mux and distributes each activated
// subscription's final Result. Runs after the scan goroutine has exited
// (Close and Abort both wait for it), so the mux is quiescent.
func (ing *Ingest) finishAll(streamErr error) {
	results := ing.m.EndStream(streamErr)
	ing.mu.Lock()
	defer ing.mu.Unlock()
	for slot, sub := range ing.subs {
		res := results[slot]
		sub.finish(res.Stats, res.Err)
	}
}

// Events reports the number of SAX events the shared scan tokenized.
// Meaningful after Close or Abort.
func (ing *Ingest) Events() int64 { return ing.m.Events() }

// statsAt guards ResultAt against the rejected-before-activation case,
// where no slot was ever assigned.
func statsAt(m *mux.Mux, slot int) engine.Stats {
	if slot >= 0 {
		return m.ResultAt(slot).Stats
	}
	return engine.Stats{}
}

// io.Writer conformance for the producer side.
var _ io.Writer = (*Ingest)(nil)

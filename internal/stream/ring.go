package stream

import (
	"io"
	"sync"
)

// ring is the fixed-size byte buffer between one subscription's engine
// output (written on the scan goroutine) and its drain goroutine. It is
// the subscription's entire store-and-forward memory: when it fills,
// the write side blocks or drops per the subscription's Policy — it
// never grows.
type ring struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf     []byte
	start   int // read position
	n       int // bytes buffered
	policy  Policy
	dropped int64

	wclosed bool  // write side closed: drain to EOF
	rerr    error // read side closed: writes and reads fail with this
}

func newRing(size int, pol Policy) *ring {
	rb := &ring{buf: make([]byte, size), policy: pol}
	rb.cond = sync.NewCond(&rb.mu)
	return rb
}

// Write appends p, blocking while the buffer is full under PolicyBlock
// and discarding (with a count) what does not fit under PolicyDrop. A
// closed read side fails the write with the closing error — that is how
// a dead subscriber propagates back into the scan as this session's
// failure.
func (rb *ring) Write(p []byte) (int, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	total := len(p)
	for len(p) > 0 {
		if rb.rerr != nil {
			return total - len(p), rb.rerr
		}
		if rb.wclosed {
			// The subscription already finished (e.g. its context was
			// canceled while the stream was idle); late engine output
			// has nowhere to go and must fail the session rather than
			// fill — and possibly block — an abandoned buffer.
			return total - len(p), io.ErrClosedPipe
		}
		space := len(rb.buf) - rb.n
		if space == 0 {
			if rb.policy == PolicyDrop {
				rb.dropped += int64(len(p))
				return total, nil
			}
			rb.cond.Wait()
			continue
		}
		k := min(space, len(p))
		end := (rb.start + rb.n) % len(rb.buf)
		c := copy(rb.buf[end:], p[:k])
		if c < k {
			copy(rb.buf, p[c:k])
		}
		rb.n += k
		p = p[k:]
		rb.cond.Broadcast()
	}
	return total, nil
}

// read copies buffered bytes into p, blocking while the buffer is empty
// and both sides are open. It returns io.EOF once the write side is
// closed and the buffer drained, or the read-side closing error
// immediately (buffered bytes are discarded — the reader is gone).
func (rb *ring) read(p []byte) (int, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	for {
		if rb.rerr != nil {
			return 0, rb.rerr
		}
		if rb.n > 0 {
			break
		}
		if rb.wclosed {
			return 0, io.EOF
		}
		rb.cond.Wait()
	}
	k := min(len(p), rb.n)
	c := copy(p[:k], rb.buf[rb.start:])
	if c < k {
		copy(p[c:k], rb.buf)
	}
	rb.start = (rb.start + k) % len(rb.buf)
	rb.n -= k
	rb.cond.Broadcast()
	return k, nil
}

// closeWrite ends the stream of writes: readers drain what is buffered
// and then see io.EOF. Idempotent.
func (rb *ring) closeWrite() {
	rb.mu.Lock()
	rb.wclosed = true
	rb.cond.Broadcast()
	rb.mu.Unlock()
}

// closeRead abandons the buffer from the read side: blocked and future
// writes (and reads) fail with err. Idempotent; the first error wins.
func (rb *ring) closeRead(err error) {
	if err == nil {
		err = io.ErrClosedPipe
	}
	rb.mu.Lock()
	if rb.rerr == nil {
		rb.rerr = err
	}
	rb.cond.Broadcast()
	rb.mu.Unlock()
}

// droppedBytes reports the bytes discarded under PolicyDrop so far.
func (rb *ring) droppedBytes() int64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.dropped
}

package stream

import (
	"context"
	"io"
	"sync"
	"time"

	"flux"
	"flux/internal/engine"
)

// Subscription is one standing query over a document stream. Its
// results flow engine → ring buffer → drain goroutine → the writer the
// subscriber gave Subscribe, so a slow writer never blocks the scan's
// delivery to other subscriptions — it blocks (or drops within) only
// its own ring, per its Policy.
//
// A subscription ends when its stream ends (Close or Abort on the
// ingest), its context is canceled, its writer fails, or the hub
// closes. Done closes after the final stats are recorded AND every
// drained byte has reached the writer, so a caller that waits on Done
// may then read Stats and Err without racing and knows the output is
// complete.
type Subscription struct {
	hub     *Hub
	doc     string
	query   *flux.Query
	ctx     context.Context
	w       io.Writer
	ring    *ring
	release func()
	start   time.Time

	mu    sync.Mutex
	stats SubStats
	err   error

	finishOnce sync.Once
	statsDone  chan struct{} // closed by finish, after stats are final
	done       chan struct{} // closed by the drain goroutine, after statsDone
}

// SubStats are one subscription's final statistics.
type SubStats struct {
	// OutputBytes is the number of result bytes the engine produced.
	// Under PolicyDrop, DroppedBytes of them never reached the writer.
	OutputBytes int64 `json:"output_bytes"`
	// DroppedBytes counts result bytes discarded because the ring was
	// full under PolicyDrop. Always 0 under PolicyBlock.
	DroppedBytes int64 `json:"dropped_bytes"`
	// PeakBufferBytes is the engine's peak buffered bytes for this
	// query over the stream — the quantity admission charged for,
	// predicted; this is what ObservePeak feeds back.
	PeakBufferBytes int64 `json:"peak_buffer_bytes"`
	// Tokens is the number of SAX events delivered to this query.
	Tokens int64 `json:"tokens"`
	// FirstResult is the latency from Subscribe to the first result
	// byte reaching the subscriber's writer; 0 if no result was ever
	// delivered.
	FirstResult time.Duration `json:"first_result_ns"`
}

// Done returns a channel closed when the subscription has fully ended:
// stats final, output delivered.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Err returns the subscription's failure, nil for a clean end of
// stream. Meaningful once Done is closed.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns the subscription's statistics. Final once Done is
// closed; before that it reports what has been recorded so far.
func (s *Subscription) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.DroppedBytes = s.ring.droppedBytes()
	return st
}

// finish records the subscription's final stats and failure, feeds the
// observed peak back to the catalog's calibration, releases the
// admission charge, and closes the ring's write side so the drain
// goroutine can deliver the tail and close Done. Idempotent — the first
// outcome (mid-stream detach, end-of-stream result, rejection) wins.
func (s *Subscription) finish(st engine.Stats, err error) {
	s.finishOnce.Do(func() {
		s.mu.Lock()
		s.stats.OutputBytes = st.OutputBytes
		s.stats.PeakBufferBytes = st.PeakBufferBytes
		s.stats.Tokens = st.Tokens
		s.err = err
		s.mu.Unlock()
		if err == nil {
			plan := s.query.Plan()
			s.hub.cat.ObservePeak(plan.SigKey(), plan.PredictedPeakBytes(), st.PeakBufferBytes)
		}
		s.release()
		s.ring.closeWrite()
		close(s.statsDone)
	})
}

// watchCtx finishes the subscription when its context is canceled —
// including while it is parked waiting for an ingest, or attached to an
// idle stream, where no event batch would ever observe the
// cancellation. The mux-side detach (at the next batch, if any) is then
// a no-op on an already-finished subscription.
func (s *Subscription) watchCtx() {
	select {
	case <-s.ctx.Done():
		s.finish(engine.Stats{}, s.ctx.Err())
	case <-s.statsDone:
	}
}

// drain is the subscription's delivery goroutine: it moves bytes from
// the ring to the subscriber's writer for the life of the stream, then
// closes Done. A writer failure closes the ring's read side, which
// fails the engine's next delivery and detaches the subscription from
// the stream.
func (s *Subscription) drain() {
	buf := make([]byte, 4096)
	var werr error
	for {
		n, err := s.ring.read(buf)
		if n > 0 {
			s.mu.Lock()
			if s.stats.FirstResult == 0 {
				s.stats.FirstResult = time.Since(s.start)
			}
			s.mu.Unlock()
			if _, werr = s.w.Write(buf[:n]); werr != nil {
				s.ring.closeRead(werr)
				// Keep looping: the next read observes the closure.
			}
		}
		if err != nil {
			break
		}
	}
	<-s.statsDone
	s.mu.Lock()
	if s.err == nil && werr != nil {
		// The engine finished clean but delivery did not: the writer
		// died with buffered output still undelivered. The subscription
		// must not report success.
		s.err = werr
	}
	s.stats.DroppedBytes = s.ring.droppedBytes()
	s.mu.Unlock()
	close(s.done)
}

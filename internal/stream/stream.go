// Package stream is the live-ingestion subsystem: standing queries over
// documents that arrive incrementally, as a network feed or a tailed
// pipe, instead of resting in files.
//
// The batch pipeline scans a complete document for a known set of
// queries. Streaming inverts both ends: a Hub accepts one live ingest
// per catalog document — chunks pushed with Ingest.Write, terminated by
// Close (clean end) or Abort (producer died) — and any number of
// standing Subscriptions, registered before or during the ingest, each
// receiving its query's results as matching subtrees complete rather
// than at end of document. The pieces underneath are the ones the batch
// path uses — the chunk-tolerant SAX scanner (sax.StartChunked), the
// shared-scan multiplexer in streaming mode (mux.NewStreaming), the
// per-query engine sessions — so a document ingested in chunks produces
// byte-identical per-query output to the same document served
// statically.
//
// Memory stays bounded end to end. Upstream, the scanner's push mode
// buffers nothing beyond its input window: a Write blocks until the
// scan has consumed the bytes. Downstream, each subscription's results
// cross to its writer through a fixed-size ring buffer drained by a
// dedicated goroutine, so one slow subscriber never stalls its
// siblings' deliveries; what happens when the ring fills is the
// subscription's Policy — block the scan (backpressure to the producer)
// or drop the overflow with a counter. And each subscription charges
// its plan's calibrated predicted peak bytes through the catalog's
// admission gate for as long as it stands, with the observed peak fed
// back to calibration when it completes — live queries budget against
// batch queries, not beside them.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"flux"
	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

// DefaultSubscriberBuffer is the per-subscription ring-buffer size when
// Options leaves SubscriberBuffer zero.
const DefaultSubscriberBuffer = 64 << 10

// Options configures a Hub.
type Options struct {
	// SubscriberBuffer is the size in bytes of each subscription's
	// result ring buffer — the only store-and-forward memory between
	// the engine and the subscriber's writer. 0 means
	// DefaultSubscriberBuffer.
	SubscriberBuffer int
	// AttrsToSubelements applies the scanner's attribute-to-subelement
	// rewriting to ingested documents (see flux.Options).
	AttrsToSubelements bool
	// ParallelGroups evaluates each ingest's subscriptions on a worker
	// pool (mux.SetParallel): the scan goroutine keeps tokenizing and
	// routing while subscription engine work runs on other cores, and a
	// slow subscription group stalls the producer only through the
	// pipeline's backpressure, not by serializing with its siblings.
	// Per-subscription output, stats, and detach behavior are identical
	// to sequential evaluation. Ingests on a GOMAXPROCS=1 process fall
	// back to sequential scanning.
	ParallelGroups bool
}

// Policy says what a subscription does when its ring buffer is full
// because its writer is slower than the stream.
type Policy int

const (
	// PolicyBlock parks the scan until the subscriber drains: the
	// producer feels backpressure (its Ingest.Write blocks), and no
	// result byte is ever lost. The default.
	PolicyBlock Policy = iota
	// PolicyDrop discards result bytes that do not fit and counts them
	// in SubStats.DroppedBytes: the stream never stalls, but a slow
	// subscriber's output has holes exactly where the counter says.
	PolicyDrop
)

// Errors reported by hub operations.
var (
	// ErrIngestActive rejects a second concurrent ingest for the same
	// document; a document is one stream at a time.
	ErrIngestActive = errors.New("stream: an ingest is already active for this document")
	// ErrHubClosed rejects operations on a closed hub and is the
	// failure recorded on subscriptions open at Close.
	ErrHubClosed = errors.New("stream: hub closed")
)

// Hub owns the streaming state for one catalog: at most one live Ingest
// per document, plus the standing subscriptions — active ones attached
// to a running ingest, waiting ones parked until their document's next
// ingest begins. All methods are safe for concurrent use.
type Hub struct {
	cat *flux.Catalog
	opt Options

	mu      sync.Mutex
	ingests map[string]*Ingest
	waiting map[string][]*Subscription
	closed  bool
}

// NewHub returns a hub serving the catalog's documents. Stream-backed
// documents (Catalog.AddStream) exist for exactly this; file-backed
// documents may also be ingested — the stream is then a live feed of a
// document the catalog can otherwise serve statically.
func NewHub(cat *flux.Catalog, opt Options) *Hub {
	if opt.SubscriberBuffer <= 0 {
		opt.SubscriberBuffer = DefaultSubscriberBuffer
	}
	return &Hub{
		cat:     cat,
		opt:     opt,
		ingests: make(map[string]*Ingest),
		waiting: make(map[string][]*Subscription),
	}
}

// Subscribe registers a standing query against the named document,
// writing its results to w as they are produced. The query text is
// compiled through the catalog (shared schema, compiled-query cache),
// and the subscription charges its plan's calibrated predicted peak
// bytes through the catalog's admission gate — Subscribe blocks while
// the catalog is at capacity, which is the admission backpressure.
//
// If an ingest for the document is live, the subscription activates at
// its next sync point and observes the stream suffix from there; if
// not, it parks and activates when the document's next ingest begins.
// The subscription ends — Done closes, Stats and Err become final —
// when its stream ends, its ctx is canceled, its writer fails, or the
// hub closes.
func (h *Hub) Subscribe(ctx context.Context, doc, queryText string, w io.Writer, pol Policy) (*Subscription, error) {
	q, err := h.cat.Prepare(doc, queryText)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	plan := q.Plan()
	release := h.cat.AdmitScanCharges(doc, []flux.ScanCharge{
		{Sig: plan.SigKey(), PredictedBytes: plan.PredictedPeakBytes()},
	})
	sub := &Subscription{
		hub:       h,
		doc:       doc,
		query:     q,
		ctx:       ctx,
		w:         w,
		ring:      newRing(h.opt.SubscriberBuffer, pol),
		release:   release,
		start:     time.Now(),
		done:      make(chan struct{}),
		statsDone: make(chan struct{}),
	}
	go sub.drain()
	go sub.watchCtx()

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		sub.finish(engine.Stats{}, ErrHubClosed)
		return nil, ErrHubClosed
	}
	if ing := h.ingests[doc]; ing != nil {
		// Under h.mu: serialized against the ingest's removal, so the
		// attach provably precedes EndStream and the subscription is
		// either activated or rejected — never silently lost.
		ing.attach(sub)
		h.mu.Unlock()
		return sub, nil
	}
	h.waiting[doc] = append(h.waiting[doc], sub)
	h.mu.Unlock()
	return sub, nil
}

// StartIngest opens a live stream for the named document and returns
// the Ingest the producer feeds. Subscriptions parked for the document
// attach before the first byte; later ones join mid-stream. One ingest
// per document at a time.
func (h *Hub) StartIngest(ctx context.Context, doc string) (*Ingest, error) {
	// Forces registration and DTD parsing now: a stream against a bad
	// schema fails before any byte arrives.
	if _, err := h.cat.Schema(doc); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := mux.NewStreaming()
	if h.opt.ParallelGroups {
		m.SetParallel(true)
	}
	ing := &Ingest{hub: h, doc: doc, m: m, subs: make(map[int]*Subscription), dead: make(chan struct{})}
	m.OnDetach(func(slot int, err error) {
		// Runs on the scan goroutine — or, under ParallelGroups, on the
		// worker that owns the slot's routing group — right after the
		// slot's Result was recorded: the subscription ends now,
		// mid-stream, not at end of document. Subscription.finish is
		// Once-guarded and safe off the scan goroutine.
		ing.mu.Lock()
		sub := ing.subs[slot]
		ing.mu.Unlock()
		if sub != nil {
			sub.finish(m.ResultAt(slot).Stats, err)
		}
	})

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHubClosed
	}
	if h.ingests[doc] != nil {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrIngestActive, doc)
	}
	h.ingests[doc] = ing
	parked := h.waiting[doc]
	delete(h.waiting, doc)
	for _, sub := range parked {
		ing.attach(sub)
	}
	h.mu.Unlock()

	if err := m.BeginStream(); err != nil {
		h.drop(ing)
		return nil, err
	}
	ing.cs = sax.StartChunked(ctx, m, sax.Options{
		SkipWhitespaceText: true,
		AttrsToSubelements: h.opt.AttrsToSubelements,
	})
	return ing, nil
}

// drop removes the ingest from the active table if still there.
func (h *Hub) drop(ing *Ingest) {
	h.mu.Lock()
	if h.ingests[ing.doc] == ing {
		delete(h.ingests, ing.doc)
	}
	h.mu.Unlock()
}

// Close shuts the hub down: waiting subscriptions are rejected and
// every live ingest is aborted, which unwinds its scan, detaches its
// subscriptions (each Done closes with ErrHubClosed), and unblocks any
// producer parked in Write. Subsequent hub operations fail with
// ErrHubClosed.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	ings := make([]*Ingest, 0, len(h.ingests))
	for _, ing := range h.ingests {
		ings = append(ings, ing)
	}
	h.ingests = make(map[string]*Ingest)
	var parked []*Subscription
	for _, subs := range h.waiting {
		parked = append(parked, subs...)
	}
	h.waiting = make(map[string][]*Subscription)
	h.mu.Unlock()

	for _, sub := range parked {
		sub.finish(engine.Stats{}, ErrHubClosed)
	}
	for _, ing := range ings {
		ing.Abort(ErrHubClosed)
	}
}

// HubStats is a point-in-time summary of the hub.
type HubStats struct {
	// ActiveIngests names the documents with a live ingest, sorted by
	// map order (callers wanting determinism sort it).
	ActiveIngests []string `json:"active_ingests"`
	// WaitingSubscriptions counts subscriptions parked for a document
	// with no live ingest.
	WaitingSubscriptions int `json:"waiting_subscriptions"`
}

// Stats reports the hub's current state.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubStats{}
	for doc := range h.ingests {
		st.ActiveIngests = append(st.ActiveIngests, doc)
	}
	for _, subs := range h.waiting {
		st.WaitingSubscriptions += len(subs)
	}
	return st
}

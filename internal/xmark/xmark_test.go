package xmark

import (
	"io"
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/sax"
	"flux/internal/xq"
)

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

func TestDTDParses(t *testing.T) {
	schema, err := dtd.Parse(DTD)
	if err != nil {
		t.Fatalf("DTD does not parse: %v", err)
	}
	if schema.Root != "site" {
		t.Errorf("root = %q, want site", schema.Root)
	}
	// The order constraints the scheduler relies on.
	checks := []struct{ elem, first, then string }{
		{"site", "people", "open_auctions"},
		{"site", "people", "closed_auctions"},
		{"site", "open_auctions", "closed_auctions"},
		{"person", "person_id", "name"},
		{"item", "name", "description"},
	}
	for _, c := range checks {
		if !schema.Ord(c.elem, c.first, c.then) {
			t.Errorf("Ord_%s(%s, %s) = false, want true", c.elem, c.first, c.then)
		}
	}
	// Cardinality facts used by loop re-binding.
	for _, c := range [][2]string{
		{dtd.DocumentVar, "site"},
		{"site", "people"},
		{"site", "closed_auctions"},
		{"site", "open_auctions"},
		{"regions", "australia"},
	} {
		if !schema.AtMostOnce(c[0], c[1]) {
			t.Errorf("AtMostOnce(%s, %s) = false, want true", c[0], c[1])
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	schema := dtd.MustParse(DTD)
	pr, pw := io.Pipe()
	go func() {
		_, err := Generate(pw, GenOptions{Scale: 0.003, Seed: 7})
		pw.CloseWithError(err)
	}()
	if err := dtd.Validate(schema, pr, sax.Options{}); err != nil {
		t.Fatalf("generated document is invalid: %v", err)
	}

	var a, b strings.Builder
	if _, err := Generate(&a, GenOptions{Scale: 0.002, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(&b, GenOptions{Scale: 0.002, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("generation is not deterministic for equal seeds")
	}
	var c strings.Builder
	if _, err := Generate(&c, GenOptions{Scale: 0.002, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical documents")
	}
}

// TestGenerateSizes calibrates ScaleForBytes: a requested size must come
// out within ±30%.
func TestGenerateSizes(t *testing.T) {
	for _, want := range []int64{256 << 10, 1 << 20} {
		var cw countWriter
		n, err := Generate(&cw, GenOptions{Scale: ScaleForBytes(want), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(n) / float64(want)
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("requested %d bytes, generated %d (ratio %.2f)", want, n, ratio)
		}
	}
}

// TestQueriesParseAndSchedule: all five benchmark queries must parse,
// normalize, and schedule into safe FluX queries under the XMark DTD.
func TestQueriesParseAndSchedule(t *testing.T) {
	schema := dtd.MustParse(DTD)
	for _, name := range QueryNames {
		q, err := xq.Parse(Queries[name])
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		f, err := core.Schedule(schema, q)
		if err != nil {
			t.Errorf("%s: schedule: %v", name, err)
			continue
		}
		if err := core.CheckSafety(schema, f); err != nil {
			t.Errorf("%s: unsafe: %v", name, err)
		}
	}
}

// TestScheduleShapes checks the buffering structure the paper describes
// for each query (Section 6 discussion of Figure 4).
func TestScheduleShapes(t *testing.T) {
	schema := dtd.MustParse(DTD)
	get := func(name string) string {
		f, err := core.Schedule(schema, xq.MustParse(Queries[name]))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return core.Print(f)
	}
	// Q1 and Q13 evaluate on the fly: names stream via on handlers.
	q1 := get("q1")
	if !strings.Contains(q1, "on name as") {
		t.Errorf("q1 must stream names:\n%s", q1)
	}
	// Q8 and Q11 must buffer people together with the auction side at the
	// site level (the join is delayed until both are past).
	q8 := get("q8")
	if !strings.Contains(q8, "on-first past(closed_auctions,people)") {
		t.Errorf("q8 must wait for past(closed_auctions,people):\n%s", q8)
	}
	q11 := get("q11")
	if !strings.Contains(q11, "on-first past(open_auctions,people)") {
		t.Errorf("q11 must wait for past(open_auctions,people):\n%s", q11)
	}
	q13 := get("q13")
	if !strings.Contains(q13, "on item as") {
		t.Errorf("q13 must stream items:\n%s", q13)
	}
	// Q20 buffers one person at a time via past(*) inside the person scope.
	q20 := get("q20")
	if !strings.Contains(q20, "on person as") || !strings.Contains(q20, "past(*)") {
		t.Errorf("q20 must buffer a single person at a time:\n%s", q20)
	}
}

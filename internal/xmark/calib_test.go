package xmark

import "testing"

// TestCalibrationProbe prints the byte count at a reference scale; used
// once to fix bytesPerScale. Skipped unless -run Calib is requested
// explicitly with -v.
func TestCalibrationProbe(t *testing.T) {
	var cw countWriter
	n, err := Generate(&cw, GenOptions{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scale 0.01 -> %d bytes (scale 1.0 ≈ %d)", n, n*100)
}

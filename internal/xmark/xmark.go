// Package xmark is the workload substrate for reproducing the paper's
// Figure 4: an XMark-like auction-site document generator (a stand-in for
// the xmlgen tool, V0.96), the adapted attribute-free DTD, and the five
// adapted benchmark queries Q1, Q8, Q11, Q13 and Q20 from Appendix A.
//
// The adaptation follows the paper exactly: attributes become leading
// subelements named parent_attr (person id="..." → person_id), text() and
// count() are dropped in favour of whole-element output, and queries use
// absolute paths with the implicit $ROOT.
package xmark

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
)

// DTD is the adapted XMark document type definition. Element order inside
// site (people before open_auctions before closed_auctions) and inside
// person/item (ids and names before the rest) carries the order
// constraints the scheduler exploits.
const DTD = `
<!ELEMENT site (regions,categories,catgraph,people,open_auctions,closed_auctions)>
<!ELEMENT regions (africa,asia,australia,europe,namerica,samerica)>
<!ELEMENT africa (item)*>
<!ELEMENT asia (item)*>
<!ELEMENT australia (item)*>
<!ELEMENT europe (item)*>
<!ELEMENT namerica (item)*>
<!ELEMENT samerica (item)*>
<!ELEMENT item (item_id,location,quantity,name,payment,description,shipping,incategory+,mailbox)>
<!ELEMENT item_id (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (text)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory (category_ref)>
<!ELEMENT category_ref (#PCDATA)>
<!ELEMENT mailbox (mail)*>
<!ELEMENT mail (from,to,date,text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT categories (category)+>
<!ELEMENT category (category_id,name,description)>
<!ELEMENT category_id (#PCDATA)>
<!ELEMENT catgraph (edge)*>
<!ELEMENT edge (edge_from,edge_to)>
<!ELEMENT edge_from (#PCDATA)>
<!ELEMENT edge_to (#PCDATA)>
<!ELEMENT people (person)*>
<!ELEMENT person (person_id,name,emailaddress,phone?,address?,person_income?,profile?,watches?)>
<!ELEMENT person_id (#PCDATA)>
<!ELEMENT person_income (#PCDATA)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street,city,country,zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT profile (profile_income?,interest*,education?,business)>
<!ELEMENT profile_income (#PCDATA)>
<!ELEMENT interest (interest_category)>
<!ELEMENT interest_category (#PCDATA)>
<!ELEMENT education (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT watches (watch)*>
<!ELEMENT watch (watch_open_auction)>
<!ELEMENT watch_open_auction (#PCDATA)>
<!ELEMENT open_auctions (open_auction)*>
<!ELEMENT open_auction (open_auction_id,initial,reserve?,bidder*,current,itemref,seller,quantity,type,interval)>
<!ELEMENT open_auction_id (#PCDATA)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date,personref,increase)>
<!ELEMENT personref (personref_person)>
<!ELEMENT personref_person (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref (itemref_item)>
<!ELEMENT itemref_item (#PCDATA)>
<!ELEMENT seller (seller_person)>
<!ELEMENT seller_person (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start,end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (closed_auction_id,seller,buyer,itemref,price,date,quantity,type,annotation?)>
<!ELEMENT closed_auction_id (#PCDATA)>
<!ELEMENT buyer (buyer_person)>
<!ELEMENT buyer_person (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT annotation (author,description,happiness)>
<!ELEMENT author (author_person)>
<!ELEMENT author_person (#PCDATA)>
<!ELEMENT happiness (#PCDATA)>
`

// Queries are the five adapted XMark queries of the paper's Appendix A,
// keyed q1, q8, q11, q13, q20.
var Queries = map[string]string{
	// Q1: fully streamable filter (Figure 4 row Q1 runs with zero buffer).
	"q1": `<query1>
{ for $b in /site/people/person
  where $b/person_id = 'person0'
  return
  <result> {$b/name} </result> }
</query1>`,

	// Q8: value join of persons with closed auctions ("items bought").
	"q8": `<query8>
{ for $p in /site/people/person return
  <item>
  <person> {$p/name} </person>
  <items_bought>
  { for $t in /site/closed_auctions/closed_auction
    where $t/buyer/buyer_person = $p/person_id
    return <result> {$t} </result> }
  </items_bought>
  </item> }
</query8>`,

	// Q11: value join with arithmetic over incomes and initial prices.
	"q11": `<query11>
{ for $p in /site/people/person return
  <items>
  {$p/name}
  { for $o in /site/open_auctions/open_auction
    where $p/profile/profile_income > (5000 * $o/initial)
    return {$o/open_auction_id} }
  </items> }
</query11>`,

	// Q13: streamable reconstruction of the australia items.
	"q13": `<query13>
{ for $i in /site/regions/australia/item return
  <item>
  <name> {$i/name} </name>
  <desc> {$i/description} </desc>
  </item> }
</query13>`,

	// Q20: persons whose income is not available; buffers one person at a
	// time.
	"q20": `<query20>
{ for $p in /site/people/person
  where empty($p/person_income)
  return {$p} }
</query20>`,
}

// QueryNames lists the benchmark queries in Figure 4 order.
var QueryNames = []string{"q1", "q8", "q11", "q13", "q20"}

// FanoutQueries are narrow queries with pairwise-disjoint projected
// paths — one per top-level branch of the site — so selective fan-out
// can route each to a different slice of the document. They drive
// BenchmarkSelectiveFanout and the fanout-all/fanout-selective
// snapshot rows (internal/bench).
var FanoutQueries = []string{
	`<q> { for $i in /site/regions/australia/item return {$i/item_id} } </q>`,
	`<q> { for $c in /site/categories/category return {$c/category_id} } </q>`,
	`<q> { for $e in /site/catgraph/edge return {$e/edge_from} } </q>`,
	`<q> { for $p in /site/people/person return {$p/person_id} } </q>`,
	`<q> { for $o in /site/open_auctions/open_auction return {$o/open_auction_id} } </q>`,
	`<q> { for $t in /site/closed_auctions/closed_auction return {$t/price} } </q>`,
}

// sharedPrefixTails are projected-path tails under /site/people/person,
// the raw material for SharedPrefixQueries: every generated query walks
// the same /site/people/person spine, so a batch of them exercises
// shared-prefix matching in the merged path automaton.
var sharedPrefixTails = []string{
	"person_id",
	"name",
	"emailaddress",
	"phone",
	"address",
	"address/street",
	"address/city",
	"address/country",
	"address/zipcode",
	"person_income",
	"profile",
	"profile/profile_income",
	"profile/interest",
	"profile/interest/interest_category",
	"profile/education",
	"profile/business",
	"watches",
	"watches/watch",
	"watches/watch/watch_open_auction",
}

// SharedPrefixQueries returns n queries that all iterate
// /site/people/person and project two person subpaths each — maximal
// path-prefix overlap across the batch, the workload where a merged
// automaton's one-traversal dispatch pays off most over per-group trie
// walks. The queries are pairwise distinct up to the number of subpath
// pairs (the enumeration cycles beyond that). They drive the
// fanout-wide bench rows (internal/bench).
func SharedPrefixQueries(n int) []string {
	out := make([]string, 0, n)
	for len(out) < n {
		for i := 0; i < len(sharedPrefixTails) && len(out) < n; i++ {
			for j := i + 1; j < len(sharedPrefixTails) && len(out) < n; j++ {
				out = append(out, fmt.Sprintf(
					`<q> { for $p in /site/people/person return <r> {$p/%s} {$p/%s} </r> } </q>`,
					sharedPrefixTails[i], sharedPrefixTails[j]))
			}
		}
	}
	return out
}

// GenOptions configures document generation.
type GenOptions struct {
	// Scale follows xmlgen's knob: Figure 4's document sizes are obtained
	// via ScaleForBytes.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// bytesPerScale is the approximate output size at Scale 1.0, calibrated
// once against the generator (see TestGenerateSizes).
const bytesPerScale = 55_000_000

// ScaleForBytes returns the Scale that yields approximately the requested
// document size.
func ScaleForBytes(n int64) float64 { return float64(n) / float64(bytesPerScale) }

// Generate writes an XMark-like document of the given scale to w and
// returns the number of bytes written.
func Generate(w io.Writer, opt GenOptions) (int64, error) {
	if opt.Scale <= 0 {
		opt.Scale = 0.01
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	g := &gen{
		w: bw,
		r: rand.New(rand.NewSource(opt.Seed + 1)),
	}
	// Entity counts at scale 1.0, in XMark's rough proportions.
	g.persons = scaleCount(25500, opt.Scale)
	g.items = scaleCount(21750, opt.Scale)
	g.openAuctions = scaleCount(12000, opt.Scale)
	g.closedAuctions = scaleCount(9750, opt.Scale)
	g.categories = scaleCount(1000, opt.Scale)

	g.site()
	if g.err != nil {
		return g.n, g.err
	}
	if err := bw.Flush(); err != nil {
		return g.n, err
	}
	return g.n, nil
}

func scaleCount(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

type gen struct {
	w   *bufio.Writer
	r   *rand.Rand
	n   int64
	err error

	persons        int
	items          int
	openAuctions   int
	closedAuctions int
	categories     int
}

var words = []string{
	"mighty", "stockings", "crowns", "wherefore", "errand", "honour",
	"qualified", "shallow", "promise", "meadow", "gallant", "tempest",
	"fortune", "scatter", "bounty", "harvest", "copper", "lantern",
	"voyage", "whisper", "thunder", "castle", "marble", "velvet",
}

func (g *gen) emit(s string) {
	if g.err != nil {
		return
	}
	m, err := g.w.WriteString(s)
	g.n += int64(m)
	g.err = err
}

func (g *gen) leaf(tag, val string) {
	g.emit("<")
	g.emit(tag)
	g.emit(">")
	g.emit(val)
	g.emit("</")
	g.emit(tag)
	g.emit(">")
}

func (g *gen) open(tag string)  { g.emit("<" + tag + ">") }
func (g *gen) close(tag string) { g.emit("</" + tag + ">") }

func (g *gen) sentence(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[g.r.Intn(len(words))]
	}
	return out
}

func (g *gen) site() {
	g.open("site")
	g.regions()
	g.categoriesSection()
	g.catgraph()
	g.people()
	g.openAuctionsSection()
	g.closedAuctionsSection()
	g.close("site")
}

var regionNames = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

func (g *gen) regions() {
	g.open("regions")
	per := g.items / len(regionNames)
	extra := g.items % len(regionNames)
	id := 0
	for ri, region := range regionNames {
		count := per
		if ri < extra {
			count++
		}
		g.open(region)
		for i := 0; i < count; i++ {
			g.item(id)
			id++
		}
		g.close(region)
	}
	g.close("regions")
}

func (g *gen) item(id int) {
	g.open("item")
	g.leaf("item_id", fmt.Sprintf("item%d", id))
	g.leaf("location", "United States")
	g.leaf("quantity", fmt.Sprint(1+g.r.Intn(5)))
	g.leaf("name", g.sentence(2))
	g.leaf("payment", "Cash Creditcard")
	g.open("description")
	g.leaf("text", g.sentence(60+g.r.Intn(90)))
	g.close("description")
	g.leaf("shipping", "Will ship internationally")
	for i := 0; i <= g.r.Intn(3); i++ {
		g.open("incategory")
		g.leaf("category_ref", fmt.Sprintf("category%d", g.r.Intn(g.categories)))
		g.close("incategory")
	}
	g.open("mailbox")
	for i := 0; i < g.r.Intn(2); i++ {
		g.open("mail")
		g.leaf("from", g.sentence(2))
		g.leaf("to", g.sentence(2))
		g.leaf("date", g.date())
		g.leaf("text", g.sentence(40+g.r.Intn(60)))
		g.close("mail")
	}
	g.close("mailbox")
	g.close("item")
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", 1+g.r.Intn(12), 1+g.r.Intn(28), 1998+g.r.Intn(4))
}

func (g *gen) categoriesSection() {
	g.open("categories")
	for i := 0; i < g.categories; i++ {
		g.open("category")
		g.leaf("category_id", fmt.Sprintf("category%d", i))
		g.leaf("name", g.sentence(2))
		g.open("description")
		g.leaf("text", g.sentence(30+g.r.Intn(40)))
		g.close("description")
		g.close("category")
	}
	g.close("categories")
}

func (g *gen) catgraph() {
	g.open("catgraph")
	for i := 0; i < g.categories; i++ {
		g.open("edge")
		g.leaf("edge_from", fmt.Sprintf("category%d", g.r.Intn(g.categories)))
		g.leaf("edge_to", fmt.Sprintf("category%d", g.r.Intn(g.categories)))
		g.close("edge")
	}
	g.close("catgraph")
}

func (g *gen) people() {
	g.open("people")
	for i := 0; i < g.persons; i++ {
		g.open("person")
		g.leaf("person_id", fmt.Sprintf("person%d", i))
		g.leaf("name", g.sentence(2))
		g.leaf("emailaddress", fmt.Sprintf("mailto:%s@%s.com", words[g.r.Intn(len(words))], words[g.r.Intn(len(words))]))
		if g.r.Intn(2) == 0 {
			g.leaf("phone", fmt.Sprintf("+%d (%d) %d", g.r.Intn(99), g.r.Intn(999), g.r.Intn(99999999)))
		}
		if g.r.Intn(2) == 0 {
			g.open("address")
			g.leaf("street", fmt.Sprintf("%d %s St", 1+g.r.Intn(99), words[g.r.Intn(len(words))]))
			g.leaf("city", g.sentence(1))
			g.leaf("country", "United States")
			g.leaf("zipcode", fmt.Sprint(10000+g.r.Intn(89999)))
			g.close("address")
		}
		// Roughly half the persons report an income (Q20 selects the rest;
		// Q11 joins on it).
		hasIncome := g.r.Intn(2) == 0
		income := 9000 + g.r.Intn(90000)
		if hasIncome {
			g.leaf("person_income", fmt.Sprint(income))
		}
		if g.r.Intn(4) != 0 {
			g.open("profile")
			if hasIncome {
				g.leaf("profile_income", fmt.Sprint(income))
			}
			for j := 0; j < g.r.Intn(3); j++ {
				g.open("interest")
				g.leaf("interest_category", fmt.Sprintf("category%d", g.r.Intn(g.categories)))
				g.close("interest")
			}
			if g.r.Intn(2) == 0 {
				g.leaf("education", "Graduate School")
			}
			g.leaf("business", pick(g.r, "Yes", "No"))
			g.close("profile")
		}
		if g.r.Intn(3) == 0 {
			g.open("watches")
			for j := 0; j < g.r.Intn(3); j++ {
				g.open("watch")
				g.leaf("watch_open_auction", fmt.Sprintf("open_auction%d", g.r.Intn(g.openAuctions)))
				g.close("watch")
			}
			g.close("watches")
		}
		g.close("person")
	}
	g.close("people")
}

func pick(r *rand.Rand, a, b string) string {
	if r.Intn(2) == 0 {
		return a
	}
	return b
}

func (g *gen) openAuctionsSection() {
	g.open("open_auctions")
	for i := 0; i < g.openAuctions; i++ {
		g.open("open_auction")
		g.leaf("open_auction_id", fmt.Sprintf("open_auction%d", i))
		g.leaf("initial", fmt.Sprintf("%d.%02d", 1+g.r.Intn(300), g.r.Intn(100)))
		if g.r.Intn(2) == 0 {
			g.leaf("reserve", fmt.Sprint(10+g.r.Intn(500)))
		}
		for j := 0; j < g.r.Intn(4); j++ {
			g.open("bidder")
			g.leaf("date", g.date())
			g.open("personref")
			g.leaf("personref_person", fmt.Sprintf("person%d", g.r.Intn(g.persons)))
			g.close("personref")
			g.leaf("increase", fmt.Sprint(1+g.r.Intn(30)))
			g.close("bidder")
		}
		g.leaf("current", fmt.Sprint(10+g.r.Intn(1000)))
		g.open("itemref")
		g.leaf("itemref_item", fmt.Sprintf("item%d", g.r.Intn(g.items)))
		g.close("itemref")
		g.open("seller")
		g.leaf("seller_person", fmt.Sprintf("person%d", g.r.Intn(g.persons)))
		g.close("seller")
		g.leaf("quantity", fmt.Sprint(1+g.r.Intn(5)))
		g.leaf("type", pick(g.r, "Regular", "Featured"))
		g.open("interval")
		g.leaf("start", g.date())
		g.leaf("end", g.date())
		g.close("interval")
		g.close("open_auction")
	}
	g.close("open_auctions")
}

func (g *gen) closedAuctionsSection() {
	g.open("closed_auctions")
	for i := 0; i < g.closedAuctions; i++ {
		g.open("closed_auction")
		g.leaf("closed_auction_id", fmt.Sprintf("closed_auction%d", i))
		g.open("seller")
		g.leaf("seller_person", fmt.Sprintf("person%d", g.r.Intn(g.persons)))
		g.close("seller")
		g.open("buyer")
		g.leaf("buyer_person", fmt.Sprintf("person%d", g.r.Intn(g.persons)))
		g.close("buyer")
		g.open("itemref")
		g.leaf("itemref_item", fmt.Sprintf("item%d", g.r.Intn(g.items)))
		g.close("itemref")
		g.leaf("price", fmt.Sprintf("%d.%02d", 1+g.r.Intn(400), g.r.Intn(100)))
		g.leaf("date", g.date())
		g.leaf("quantity", fmt.Sprint(1+g.r.Intn(5)))
		g.leaf("type", pick(g.r, "Regular", "Featured"))
		if g.r.Intn(2) == 0 {
			g.open("annotation")
			g.open("author")
			g.leaf("author_person", fmt.Sprintf("person%d", g.r.Intn(g.persons)))
			g.close("author")
			g.open("description")
			g.leaf("text", g.sentence(25+g.r.Intn(35)))
			g.close("description")
			g.leaf("happiness", fmt.Sprint(1+g.r.Intn(10)))
			g.close("annotation")
		}
		g.close("closed_auction")
	}
	g.close("closed_auctions")
}

package autom

import (
	"testing"

	"flux/internal/engine"
	"flux/internal/sax"
)

// sig builds a signature trie from path strings like "a/b/c"; a path
// ending in "*" marks its last node All (consume the whole subtree).
func sig(paths ...string) *engine.SigNode {
	root := &engine.SigNode{Kids: map[string]*engine.SigNode{}}
	for _, p := range paths {
		cur := root
		start := 0
		for i := 0; i <= len(p); i++ {
			if i != len(p) && p[i] != '/' {
				continue
			}
			step := p[start:i]
			start = i + 1
			if step == "*" {
				cur.All = true
				cur.Kids = nil
				break
			}
			if cur.Kids == nil {
				cur.Kids = map[string]*engine.SigNode{}
			}
			next := cur.Kids[step]
			if next == nil {
				next = &engine.SigNode{Kids: map[string]*engine.SigNode{}}
				cur.Kids[step] = next
			}
			cur = next
		}
	}
	return root
}

func maskBits(m Mask, n int) []int {
	var out []int
	for g := 0; g < n; g++ {
		if m.Has(g) {
			out = append(out, g)
		}
	}
	return out
}

func eqBits(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildMergesSharedPrefixes(t *testing.T) {
	// Two groups sharing the r/a prefix, one disjoint group under r/c.
	m := Build([]Group{
		{Key: "g0", Sig: sig("r/a/x/*")},
		{Key: "g1", Sig: sig("r/a/y/*")},
		{Key: "g2", Sig: sig("r/c/*")},
	})
	if m.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", m.NumGroups())
	}
	// root, r, a, x, y, c — the shared r and a are merged, not duplicated.
	if m.States() != 6 {
		t.Fatalf("States = %d, want 6", m.States())
	}
	if gi, ok := m.GroupIndex("g1"); !ok || gi != 1 {
		t.Fatalf("GroupIndex(g1) = %d, %v", gi, ok)
	}
	if _, ok := m.GroupIndex("nope"); ok {
		t.Fatal("GroupIndex(nope) reported ok")
	}
	p := m.Prune()
	if p == nil {
		t.Fatal("Prune = nil with all groups signed")
	}
	// r/b is observed by nobody: prunable (absent from the trie).
	r := p.Kids["r"]
	if r == nil || r.All {
		t.Fatalf("prune at r = %+v", r)
	}
	if _, ok := r.Kids["b"]; ok {
		t.Fatal("r/b present in prune trie; should be prunable by absence")
	}
	if c := r.Kids["c"]; c == nil || !c.All {
		t.Fatalf("prune at r/c = %+v, want All", c)
	}
}

func TestNilSignatureDisablesPrune(t *testing.T) {
	m := Build([]Group{
		{Key: "g0", Sig: sig("r/a/*")},
		{Key: "g1", Sig: nil},
	})
	if m.Prune() != nil {
		t.Fatal("Prune != nil with an unsigned group")
	}
	// The unsigned group is delivered everything.
	mt := m.NewMatcher()
	deliver, skip := mt.Start("r")
	if !eqBits(maskBits(deliver, 2), 0, 1) || skip.Any() {
		t.Fatalf("r: deliver %v skip %v", maskBits(deliver, 2), maskBits(skip, 2))
	}
	deliver, skip = mt.Start("zzz")
	if !eqBits(maskBits(deliver, 2), 1) || !eqBits(maskBits(skip, 2), 0) {
		t.Fatalf("zzz: deliver %v skip %v", maskBits(deliver, 2), maskBits(skip, 2))
	}
}

func TestMatcherDeliveryAndSkipAccounting(t *testing.T) {
	// g0 watches r/a entirely, g1 watches r/b entirely.
	m := Build([]Group{
		{Key: "g0", Sig: sig("r/a/*")},
		{Key: "g1", Sig: sig("r/b/*")},
	})
	mt := m.NewMatcher()

	deliver, skip := mt.Start("r") // ev 1
	if !eqBits(maskBits(deliver, 2), 0, 1) || skip.Any() {
		t.Fatalf("r: deliver %v skip %v", maskBits(deliver, 2), maskBits(skip, 2))
	}
	deliver, skip = mt.Start("a") // ev 2: g1 deactivates here
	if !eqBits(maskBits(deliver, 2), 0) || !eqBits(maskBits(skip, 2), 1) {
		t.Fatalf("a: deliver %v skip %v", maskBits(deliver, 2), maskBits(skip, 2))
	}
	if mt.Active(1) {
		t.Fatal("g1 active inside a")
	}
	if d := mt.Text(); !eqBits(maskBits(d, 2), 0) { // ev 3: interior of a
		t.Fatalf("text in a: %v", maskBits(d, 2))
	}
	if d := mt.End(); !eqBits(maskBits(d, 2), 0) { // ev 4: g1 reactivates
		t.Fatalf("end a: %v", maskBits(d, 2))
	}
	// g1 skipped ev 3 and 4: the interior plus the closing end tag, with
	// the start tag uncharged (it was the SkipSubtree step).
	if got := mt.Skipped(1); got != 2 {
		t.Fatalf("g1 skipped = %d, want 2", got)
	}
	if got := mt.Skipped(0); got != 0 {
		t.Fatalf("g0 skipped = %d, want 0", got)
	}

	deliver = mt.Skip() // ev 5: a scanner-pruned subtree at depth 1
	if !eqBits(maskBits(deliver, 2), 0, 1) {
		t.Fatalf("skip token: %v", maskBits(deliver, 2))
	}
	// SkipElement charges every group exactly one.
	if mt.Skipped(0) != 1 || mt.Skipped(1) != 3 {
		t.Fatalf("after skip token: g0 %d g1 %d", mt.Skipped(0), mt.Skipped(1))
	}
	mt.End() // ev 6: close r
	mt.Flush()
	if mt.Skipped(0) != 1 || mt.Skipped(1) != 3 {
		t.Fatalf("after flush: g0 %d g1 %d", mt.Skipped(0), mt.Skipped(1))
	}
}

func TestFlushSettlesOpenInterval(t *testing.T) {
	m := Build([]Group{
		{Key: "g0", Sig: sig("r/a/*")},
		{Key: "g1", Sig: sig("r/b/*")},
	})
	mt := m.NewMatcher()
	mt.Start("r") // ev 1
	mt.Start("a") // ev 2: g1 deactivates
	mt.Text()     // ev 3
	// Scan dies here; Flush must settle g1's open interval (ev 3 only —
	// the start tag stays uncharged).
	mt.Flush()
	if got := mt.Skipped(1); got != 1 {
		t.Fatalf("g1 skipped = %d, want 1", got)
	}
	mt.Flush() // idempotent
	if got := mt.Skipped(1); got != 1 {
		t.Fatalf("g1 skipped after second flush = %d, want 1", got)
	}
}

func TestDropTextAtSpine(t *testing.T) {
	s := sig("r/a/*")
	s.Kids["r"].DropText = true // r is a non-All spine node with DropText
	m := Build([]Group{
		{Key: "g0", Sig: s},
		{Key: "g1", Sig: sig("r/*")},
	})
	mt := m.NewMatcher()
	mt.Start("r") // ev 1
	d := mt.Text()
	if !eqBits(maskBits(d, 2), 1) {
		t.Fatalf("text at dropped spine: deliver %v, want g1 only", maskBits(d, 2))
	}
	if mt.Skipped(0) != 1 {
		t.Fatalf("g0 skipped = %d, want 1", mt.Skipped(0))
	}
}

func TestExtendMidStream(t *testing.T) {
	m1 := Build([]Group{{Key: "g0", Sig: sig("r/a/*")}})
	mt := m1.NewMatcher()
	mt.Start("r") // ev 1, depth 1 — a sync point

	// A subscriber with a new signature joins: rebuild with g0 first.
	m2 := Build([]Group{
		{Key: "g0", Sig: sig("r/a/*")},
		{Key: "g1", Sig: sig("r/b/*")},
		{Key: "g2", Sig: sig("x/*")}, // cannot match the open root
	})
	mt.Extend(m2, "r")
	if !mt.Active(0) || !mt.Active(1) || mt.Active(2) {
		t.Fatalf("post-extend active: g0 %v g1 %v g2 %v",
			mt.Active(0), mt.Active(1), mt.Active(2))
	}
	mt.Start("b") // ev 2: g0 deactivates, g1 tracks in
	if mt.Active(0) || !mt.Active(1) {
		t.Fatal("inside b: want g1 only")
	}
	mt.End() // ev 3: close b — g0 charged interior+end = 1
	mt.End() // ev 4: close r
	mt.Flush()
	if mt.Skipped(0) != 1 {
		t.Fatalf("g0 skipped = %d, want 1", mt.Skipped(0))
	}
	// g2 was deactivated at Extend time (after ev 1): it missed ev 2–4.
	if mt.Skipped(2) != 3 {
		t.Fatalf("g2 skipped = %d, want 3", mt.Skipped(2))
	}
}

func TestEmptyMachine(t *testing.T) {
	m := Build(nil)
	if m.NumGroups() != 0 {
		t.Fatalf("NumGroups = %d", m.NumGroups())
	}
	mt := m.NewMatcher()
	deliver, skip := mt.Start("r")
	if deliver.Any() || skip.Any() {
		t.Fatal("empty machine delivered something")
	}
	mt.Text()
	mt.End()
	mt.Flush()

	// Extend from empty — the streaming "first subscriber joins
	// mid-stream" path.
	m2 := Build([]Group{{Key: "g0", Sig: sig("r/a/*")}})
	mt.Start("r")
	mt.Extend(m2, "r")
	if !mt.Active(0) {
		t.Fatal("g0 inactive after extend onto open root")
	}
}

func TestPruneMatchesMachineSkips(t *testing.T) {
	// Prune trie must mark prunable exactly the positions where Start
	// would deactivate every group.
	m := Build([]Group{
		{Key: "g0", Sig: sig("r/a/x/*", "r/c/*")},
		{Key: "g1", Sig: sig("r/a/y/*")},
	})
	p := m.Prune()
	r := p.Kids["r"]
	a := r.Kids["a"]
	if a.All {
		t.Fatal("r/a marked All in prune trie")
	}
	// r/a/z is observed by nobody.
	if _, ok := a.Kids["z"]; ok {
		t.Fatal("r/a/z present in prune trie")
	}
	if x := a.Kids["x"]; x == nil || !x.All {
		t.Fatalf("r/a/x = %+v, want All", x)
	}
	if c := r.Kids["c"]; c == nil || !c.All {
		t.Fatalf("r/c = %+v, want All", c)
	}
	var checkAgainstMatcher func(pn *sax.PruneNode, path []string)
	checkAgainstMatcher = func(pn *sax.PruneNode, path []string) {
		if pn.All {
			return
		}
		for name, kid := range pn.Kids {
			checkAgainstMatcher(kid, append(path, name))
		}
		// A name absent from pn.Kids at this position deactivates every
		// group in the matcher.
		mt := m.NewMatcher()
		for _, step := range path {
			mt.Start(step)
		}
		deliver, _ := mt.Start("unobserved-name")
		if deliver.Any() {
			t.Fatalf("at %v: prune trie would drop a subtree the matcher delivers to %v",
				path, maskBits(deliver, 2))
		}
	}
	checkAgainstMatcher(p, nil)
}

// Package autom compiles a batch of projected-path signatures into one
// merged path automaton — the multi-query optimizer of the shared scan.
//
// Selective fan-out (internal/mux) partitions a batch's plans into
// event-routing groups by signature, but each group still walks its own
// engine.SigNode trie on every token: a batch of G groups pays G cursor
// updates per event even when the groups' paths share long prefixes. A
// Machine merges the group tries into a single trie whose nodes carry
// per-group bitsets, so one traversal step per token yields the set of
// interested groups at once — shared prefixes are matched once for the
// whole batch, and the per-token cost is proportional to the number of
// word-wide mask operations, not the number of groups.
//
// A Machine is immutable after Build and safe to share across
// concurrent scans (the executor caches one per batch signature set); a
// Matcher holds the per-scan state: a stack of (node, active mask)
// frames plus the skip accounting that preserves the exact per-group
// SkippedEvents semantics of the per-group router, including the
// one-token accounting of scanner-pruned subtrees (sax.SkipElement).
package autom

import (
	"math/bits"

	"flux/internal/engine"
	"flux/internal/sax"
)

// Mask is a bitset over a Machine's group indices, one bit per
// event-routing group. Callers iterate set bits word by word (the slice
// layout is the usual packed little-endian one: group g lives in word
// g/64 at bit g%64).
type Mask []uint64

// NewMask returns an all-zero mask sized for n groups.
func NewMask(n int) Mask { return make(Mask, (n+63)/64) }

// Has reports whether group g's bit is set.
func (m Mask) Has(g int) bool { return m[g>>6]&(1<<(g&63)) != 0 }

// Any reports whether any bit is set.
func (m Mask) Any() bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (m Mask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

func (m Mask) set(g int) { m[g>>6] |= 1 << (g & 63) }

func cloneMask(m Mask) Mask { return append(Mask(nil), m...) }

// allOnes returns a mask with the first n bits set.
func allOnes(n int) Mask {
	m := NewMask(n)
	for i := range m {
		m[i] = ^uint64(0)
	}
	if n&63 != 0 {
		m[len(m)-1] = 1<<(n&63) - 1
	}
	return m
}

// Group is one event-routing group's input to Build: its identity (the
// mux group key) and its signature trie. A nil Sig means the group's
// routing behavior is unknown; it is delivered the entire document and
// disables scanner pruning for the whole machine, exactly as the
// per-group router treats a plan without a signature.
type Group struct {
	// Key identifies the group (mux.GroupKey of its plans).
	Key string
	// Sig is the group's projected-path signature, shared by all its
	// plans; read-only.
	Sig *engine.SigNode
}

// node is one state of the merged trie. The masks partition the groups
// by what this stream position means to them; they are precomputed at
// Build so the matcher does pure mask arithmetic per token.
type node struct {
	kids map[string]*node
	// track: groups whose signature has a spine node exactly here — they
	// observe this element's tags and keep routing by name below it.
	track Mask
	// all: groups consuming the entire subtree (an All signature node at
	// or above this position); propagated down every merged descendant.
	all Mask
	// interested = track | all: the groups still active below this node.
	interested Mask
	// text: the groups that receive character data here — all-groups
	// plus tracked groups whose spine node does not carry DropText.
	text Mask
}

// pos pairs a group index with its signature node during the merge.
type pos struct {
	gi  int
	sig *engine.SigNode
}

// Machine is the compiled merged automaton for one set of groups. It is
// immutable after Build: share it freely across concurrent scans and
// create one Matcher per scan.
type Machine struct {
	root    *node
	n       int
	words   int
	states  int
	index   map[string]int
	prune   *sax.PruneNode
	pruneOK bool
}

// Build merges the groups' signature tries into one Machine. Group
// indices follow slice order; Matcher masks and GroupIndex refer to
// them. Signatures are read, never modified.
func Build(groups []Group) *Machine {
	m := &Machine{
		n:       len(groups),
		words:   (len(groups) + 63) / 64,
		index:   make(map[string]int, len(groups)),
		pruneOK: true,
	}
	roots := make([]pos, 0, len(groups))
	inherited := NewMask(m.n)
	for gi, g := range groups {
		m.index[g.Key] = gi
		if g.Sig == nil {
			// No signature: deliver everything to the group and never
			// prune, matching the per-group router's defensive path.
			inherited.set(gi)
			m.pruneOK = false
			continue
		}
		roots = append(roots, pos{gi, g.Sig})
	}
	m.root = m.merge(roots, inherited)
	if m.pruneOK {
		m.prune = toPrune(m.root)
	}
	return m
}

// merge builds the node for one merged position: tracked holds the
// groups whose signature trie reaches exactly here, inherited the
// groups already in all-subtree mode above.
func (m *Machine) merge(tracked []pos, inherited Mask) *node {
	m.states++
	nd := &node{
		track: NewMask(m.n),
		all:   cloneMask(inherited),
	}
	for _, p := range tracked {
		if p.sig.All {
			nd.all.set(p.gi)
		} else {
			nd.track.set(p.gi)
		}
	}
	nd.interested = cloneMask(nd.all)
	for i := range nd.interested {
		nd.interested[i] |= nd.track[i]
	}
	nd.text = cloneMask(nd.all)
	for _, p := range tracked {
		if !p.sig.All && !p.sig.DropText {
			nd.text.set(p.gi)
		}
	}
	kids := make(map[string][]pos)
	for _, p := range tracked {
		if p.sig.All {
			continue // normalized All nodes have no kids
		}
		for name, kid := range p.sig.Kids {
			kids[name] = append(kids[name], pos{p.gi, kid})
		}
	}
	if len(kids) > 0 {
		nd.kids = make(map[string]*node, len(kids))
		for name, kps := range kids {
			nd.kids[name] = m.merge(kps, nd.all)
		}
	}
	return nd
}

// toPrune derives the scanner prune trie from the merged trie: a
// position is prunable only when no group tracks or consumes anything
// inside it — the same decisions mux's per-group signature union makes.
func toPrune(nd *node) *sax.PruneNode {
	if nd.all.Any() {
		// Some group consumes everything below here; nothing may be
		// pruned and kids are irrelevant.
		return &sax.PruneNode{All: true}
	}
	p := &sax.PruneNode{}
	if len(nd.kids) > 0 {
		p.Kids = make(map[string]*sax.PruneNode, len(nd.kids))
		for name, k := range nd.kids {
			p.Kids[name] = toPrune(k)
		}
	}
	return p
}

// NumGroups reports how many groups the machine routes.
func (m *Machine) NumGroups() int { return m.n }

// States reports the number of merged trie nodes — the automaton size
// exported as the automaton_states serving counter.
func (m *Machine) States() int { return m.states }

// GroupIndex returns the index Build assigned to the group with the
// given key.
func (m *Machine) GroupIndex(key string) (int, bool) {
	gi, ok := m.index[key]
	return gi, ok
}

// Prune returns the scanner-level prune trie derived from the merged
// automaton (subtrees every group skips are consumed raw at the scan),
// or nil when any group lacks a signature and pruning must stay off.
func (m *Machine) Prune() *sax.PruneNode { return m.prune }

// frame is one open element of the matcher's stack: the merged trie
// node at that depth (nil below the trie, where only all-mode groups
// remain active) and the groups still receiving events there.
type frame struct {
	node   *node
	active Mask
}

// Matcher is the per-scan state of a Machine: an incremental
// depth-tracking cursor fed one token at a time. Each method returns
// masks describing the delivery decision for that token; returned masks
// are only valid until the next Matcher call. A Matcher is not safe for
// concurrent use.
//
// Skip accounting reproduces the per-group router's SkippedEvents
// exactly: a group deactivated at an element's start tag is charged the
// subtree's interior events plus the closing end tag (the start tag is
// delivered as the SkipSubtree step, not charged); character data
// withheld at a DropText position charges one; a scanner-pruned subtree
// (sax.SkipElement) charges every group one token — so the counter
// stays a lower bound under scanner pruning.
type Matcher struct {
	mach    *Machine
	frames  []frame
	depth   int
	ev      int64 // tokens observed, the clock of skip intervals
	skipped []int64
	mark    []int64 // per group: ev at deactivation
	ones    Mask
	scratch Mask // deactivated / dropped bits, returned or iterated
	deliver Mask // Text's deliver mask when some group drops the token
}

// NewMatcher returns a fresh matcher positioned before the document
// root with every group active.
func (m *Machine) NewMatcher() *Matcher {
	t := &Matcher{
		mach:    m,
		frames:  make([]frame, 1, 16),
		skipped: make([]int64, m.n),
		mark:    make([]int64, m.n),
		ones:    allOnes(m.n),
		scratch: NewMask(m.n),
		deliver: NewMask(m.n),
	}
	t.frames[0] = frame{node: m.root, active: allOnes(m.n)}
	return t
}

// chargeInterval charges every set bit the events since its mark.
func (t *Matcher) chargeInterval(m Mask) {
	for w, word := range m {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t.skipped[g] += t.ev - t.mark[g]
		}
	}
}

// Start consumes a StartElement token. deliver holds the groups that
// receive the start tag; skip holds the groups deactivated here, each
// of which must be delivered one SkipSubtree step for the element
// instead. Both masks are valid until the next Matcher call.
func (t *Matcher) Start(name string) (deliver, skip Mask) {
	t.ev++
	if t.depth+1 == len(t.frames) {
		t.frames = append(t.frames, frame{})
	}
	cur := &t.frames[t.depth]
	var child *node
	if cur.node != nil {
		child = cur.node.kids[name]
	}
	t.depth++
	nf := &t.frames[t.depth]
	nf.node = child
	w := t.mach.words
	if cap(nf.active) >= w {
		nf.active = nf.active[:w]
	} else {
		nf.active = make(Mask, w)
	}
	switch {
	case child != nil:
		for i := range nf.active {
			nf.active[i] = cur.active[i] & child.interested[i]
		}
	case cur.node != nil:
		// Untracked name: only all-mode groups continue below.
		for i := range nf.active {
			nf.active[i] = cur.active[i] & cur.node.all[i]
		}
	default:
		// Below the trie entirely: every group still active is in
		// all-subtree mode and stays active.
		copy(nf.active, cur.active)
	}
	sk := t.scratch
	anySkip := false
	for i := range sk {
		sk[i] = cur.active[i] &^ nf.active[i]
		anySkip = anySkip || sk[i] != 0
	}
	if anySkip {
		// The start tag itself is delivered as the SkipSubtree step, not
		// charged; the interval opens on this token and is settled at the
		// matching End.
		for w, word := range sk {
			for word != 0 {
				g := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				t.mark[g] = t.ev
			}
		}
	}
	return nf.active, sk
}

// Text consumes a character-data token, returning the groups that
// receive it. Groups active at a DropText spine position are charged
// one skipped event, matching the router's text withholding.
func (t *Matcher) Text() (deliver Mask) {
	t.ev++
	cur := &t.frames[t.depth]
	if cur.node == nil {
		// Below the trie: every active group is all-mode and gets the text.
		return cur.active
	}
	drop := t.scratch
	anyDrop := false
	for i := range drop {
		drop[i] = cur.active[i] &^ cur.node.text[i]
		anyDrop = anyDrop || drop[i] != 0
	}
	if !anyDrop {
		return cur.active
	}
	for w, word := range drop {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t.skipped[g]++
		}
	}
	d := t.deliver
	for i := range d {
		d[i] = cur.active[i] & cur.node.text[i]
	}
	return d
}

// End consumes an EndElement token, returning the groups that receive
// the end tag. Groups that sat out the element settle their skip
// interval here: interior events plus this closing tag, exactly the
// router's per-event accounting.
func (t *Matcher) End() (deliver Mask) {
	t.ev++
	cur := &t.frames[t.depth]
	parent := &t.frames[t.depth-1]
	re := t.scratch
	anyRe := false
	for i := range re {
		re[i] = parent.active[i] &^ cur.active[i]
		anyRe = anyRe || re[i] != 0
	}
	if anyRe {
		t.chargeInterval(re)
	}
	t.depth--
	return cur.active
}

// Skip consumes a SkipElement token (a subtree the scanner pruned and
// consumed raw). Every group is charged exactly one event — active
// groups here, inactive ones through their open interval — and the
// returned mask holds the active groups, each owed one SkipSubtree
// step.
func (t *Matcher) Skip() (deliver Mask) {
	t.ev++
	cur := &t.frames[t.depth]
	for w, word := range cur.active {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t.skipped[g]++
		}
	}
	return cur.active
}

// Active reports whether group g receives events at the current stream
// position.
func (t *Matcher) Active(g int) bool { return t.frames[t.depth].active.Has(g) }

// Flush settles the skip intervals of groups currently inactive — for
// collection after a scan that ended (or failed) inside a skipped
// subtree. Idempotent; Skipped totals are only complete after Flush.
func (t *Matcher) Flush() {
	cur := &t.frames[t.depth]
	inactive := t.scratch
	any := false
	for i := range inactive {
		inactive[i] = t.ones[i] &^ cur.active[i]
		any = any || inactive[i] != 0
	}
	if !any {
		return
	}
	t.chargeInterval(inactive)
	for w, word := range inactive {
		for word != 0 {
			g := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t.mark[g] = t.ev
		}
	}
}

// Skipped returns group g's skipped-event count (complete after Flush).
func (t *Matcher) Skipped(g int) int64 { return t.skipped[g] }

// SnapshotSkipped appends every group's skipped-event count as of the
// current token to out and returns the extended slice. Unlike Flush it
// does not mutate the matcher: open skip intervals are charged into the
// snapshot only, so routing can continue. The parallel mux checkpoints
// counters at batch boundaries with it — when an aborted scan must
// report counts as of an earlier token, a checkpoint plus the per-token
// deltas reconstructs them exactly.
func (t *Matcher) SnapshotSkipped(out []int64) []int64 {
	cur := &t.frames[t.depth]
	for g := 0; g < t.mach.n; g++ {
		n := t.skipped[g]
		if !cur.active.Has(g) {
			n += t.ev - t.mark[g]
		}
		out = append(out, n)
	}
	return out
}

// Extend migrates the matcher to m2, a machine rebuilt with the current
// groups first — in their existing index order, with identical
// signatures — followed by newly appended groups. It is the streaming
// mux's mid-stream join: callable only at a sync point (depth ≤ 1),
// where the only open-element context is the root. rootName is the open
// root element's name, ignored at depth 0. Newly appended groups whose
// signature cannot match the open root start deactivated with their
// skip interval opening now.
func (t *Matcher) Extend(m2 *Machine, rootName string) {
	if t.depth > 1 {
		panic("autom: Extend above a sync point")
	}
	old := t.mach.n
	t.mach = m2
	for g := old; g < m2.n; g++ {
		t.skipped = append(t.skipped, 0)
		t.mark = append(t.mark, 0)
	}
	t.ones = allOnes(m2.n)
	t.scratch = NewMask(m2.n)
	t.deliver = NewMask(m2.n)
	t.frames[0].node = m2.root
	t.frames[0].active = allOnes(m2.n)
	if t.depth == 0 {
		return
	}
	f1 := &t.frames[1]
	child := m2.root.kids[rootName]
	active := NewMask(m2.n)
	copy(active, f1.active) // existing groups keep their activation
	for g := old; g < m2.n; g++ {
		interested := false
		if child != nil {
			interested = child.interested.Has(g)
		} else {
			interested = m2.root.all.Has(g)
		}
		if interested {
			active.set(g)
		} else {
			t.mark[g] = t.ev
		}
	}
	f1.node = child
	f1.active = active
}

package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Snapshot is the JSON artifact one benchmark run leaves behind (the
// BENCH_<n>.json files at the repository root): enough context to compare
// runs across commits and machines, plus the raw rows.
type Snapshot struct {
	// Schema names the snapshot layout, for forward compatibility.
	Schema string `json:"schema"`
	// CreatedAt is the wall-clock time the snapshot was written.
	CreatedAt time.Time `json:"created_at"`
	// GoVersion and NumCPU describe the machine that produced the rows.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Rows are the raw measurements.
	Rows []SnapshotRow `json:"rows"`
}

// SnapshotRow is one Row with the duration flattened to nanoseconds so
// the JSON is toolable without Go's duration syntax.
type SnapshotRow struct {
	Query       string `json:"query"`
	SizeMB      int    `json:"size_mb"`
	Bytes       int64  `json:"bytes"`
	Mode        Mode   `json:"mode"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	BufferBytes int64  `json:"buffer_bytes"`
	OutputBytes int64  `json:"output_bytes"`
	Skipped     bool   `json:"skipped,omitempty"`
}

// WriteJSON writes rows as a Snapshot to path.
func WriteJSON(path string, rows []Row) error {
	snap := Snapshot{
		Schema:    "flux-bench/v1",
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	for _, r := range rows {
		snap.Rows = append(snap.Rows, SnapshotRow{
			Query:       r.Query,
			SizeMB:      r.SizeMB,
			Bytes:       r.Bytes,
			Mode:        r.Mode,
			ElapsedNS:   r.Elapsed.Nanoseconds(),
			BufferBytes: r.Buffer,
			OutputBytes: r.Output,
			Skipped:     r.Skipped,
		})
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

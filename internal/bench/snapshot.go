package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Snapshot is the JSON artifact one benchmark run leaves behind (the
// BENCH_<n>.json files at the repository root): enough context to compare
// runs across commits and machines, plus the raw rows.
type Snapshot struct {
	// Schema names the snapshot layout, for forward compatibility.
	Schema string `json:"schema"`
	// CreatedAt is the wall-clock time the snapshot was written.
	CreatedAt time.Time `json:"created_at"`
	// GoVersion and NumCPU describe the machine that produced the rows.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// CalibNS is the duration of a fixed CPU-bound reference loop on the
	// machine that produced the rows; Diff uses the ratio of two
	// snapshots' calibrations to compare elapsed times across machines
	// of different speeds. 0 in snapshots predating calibration.
	CalibNS int64 `json:"calib_ns,omitempty"`
	// Rows are the raw measurements.
	Rows []SnapshotRow `json:"rows"`
}

// Calibrate times the fixed reference loop that makes elapsed
// comparisons across machines meaningful.
func Calibrate() int64 {
	start := time.Now()
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 1<<25; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	calibSink = x
	return time.Since(start).Nanoseconds()
}

// calibSink keeps the calibration loop observable so the compiler
// cannot elide it.
var calibSink uint64

// SnapshotRow is one Row with the duration flattened to nanoseconds so
// the JSON is toolable without Go's duration syntax.
type SnapshotRow struct {
	Query       string `json:"query"`
	SizeMB      int    `json:"size_mb"`
	Bytes       int64  `json:"bytes"`
	Mode        Mode   `json:"mode"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	BufferBytes int64  `json:"buffer_bytes"`
	OutputBytes int64  `json:"output_bytes"`
	// TokensDelivered is the summed events delivered to the row's
	// queries (fan-out rows only; see ModeFanoutAll/ModeFanoutSelective).
	TokensDelivered int64 `json:"tokens_delivered,omitempty"`
	// P50NS/P99NS/QPS are the open-loop latency percentiles and achieved
	// throughput of served-latency rows (see ModeServedLatency).
	P50NS   int64   `json:"p50_ns,omitempty"`
	P99NS   int64   `json:"p99_ns,omitempty"`
	QPS     float64 `json:"qps,omitempty"`
	Skipped bool    `json:"skipped,omitempty"`
}

// WriteJSON writes rows as a Snapshot to path.
func WriteJSON(path string, rows []Row) error {
	snap := Snapshot{
		Schema:    "flux-bench/v1",
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		CalibNS:   Calibrate(),
	}
	for _, r := range rows {
		snap.Rows = append(snap.Rows, SnapshotRow{
			Query:           r.Query,
			SizeMB:          r.SizeMB,
			Bytes:           r.Bytes,
			Mode:            r.Mode,
			ElapsedNS:       r.Elapsed.Nanoseconds(),
			BufferBytes:     r.Buffer,
			OutputBytes:     r.Output,
			TokensDelivered: r.Tokens,
			P50NS:           r.P50.Nanoseconds(),
			P99NS:           r.P99.Nanoseconds(),
			QPS:             r.QPS,
			Skipped:         r.Skipped,
		})
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func snap(calib int64, rows ...SnapshotRow) *Snapshot {
	return &Snapshot{Schema: "flux-bench/v1", CalibNS: calib, Rows: rows}
}

func row(query string, size int, mode Mode, elapsed, buffer int64) SnapshotRow {
	return SnapshotRow{Query: query, SizeMB: size, Mode: mode, ElapsedNS: elapsed, BufferBytes: buffer}
}

func TestDiffNoRegression(t *testing.T) {
	old := snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row(SharedQueryName, 1, ModeShared, 5000, 140000),
	)
	new := snap(100,
		row("q1", 1, ModeFluX, 5000, 0), // per-query elapsed is NOT gated
		row(SharedQueryName, 1, ModeShared, 5500, 140000),
	)
	res := Diff(old, new, 20)
	if res.Compared != 2 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffSharedElapsedRegression(t *testing.T) {
	old := snap(100, row(SharedQueryName, 1, ModeShared, 5000, 140000))
	new := snap(100, row(SharedQueryName, 1, ModeShared, 6500, 140000))
	res := Diff(old, new, 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "elapsed_ns" {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffCalibrationScaling(t *testing.T) {
	// The new machine is 2x slower (calibration 100 -> 200); a 2x wall
	// time is therefore NOT a regression...
	old := snap(100, row(SharedQueryName, 1, ModeShared, 5000, 140000))
	new := snap(200, row(SharedQueryName, 1, ModeShared, 10000, 140000))
	if res := Diff(old, new, 20); len(res.Regressions) != 0 {
		t.Fatalf("scaled comparison must pass: %+v", res)
	}
	// ...but 3x is, even after scaling.
	new = snap(200, row(SharedQueryName, 1, ModeShared, 15000, 140000))
	if res := Diff(old, new, 20); len(res.Regressions) != 1 {
		t.Fatalf("scaled regression must fail: %+v", res)
	}
}

func TestDiffBufferRegression(t *testing.T) {
	old := snap(100, row("q8", 1, ModeFluX, 1000, 100000))
	new := snap(100, row("q8", 1, ModeFluX, 1000, 160000))
	res := Diff(old, new, 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "buffer_bytes" {
		t.Fatalf("res = %+v", res)
	}
	// Small absolute growth under the slack is ignored even when the
	// percentage is huge (0 -> a handful of bytes).
	old = snap(100, row("q1", 1, ModeFluX, 1000, 0))
	new = snap(100, row("q1", 1, ModeFluX, 1000, 128))
	if res := Diff(old, new, 20); len(res.Regressions) != 0 {
		t.Fatalf("slack must absorb tiny growth: %+v", res)
	}
}

func TestDiffIgnoresUnmatchedAndSkipped(t *testing.T) {
	old := snap(100, row("q1", 1, ModeFluX, 1000, 0))
	skipped := row("q1", 1, ModeNaive, 0, 0)
	skipped.Skipped = true
	new := snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row(SharedQueryName, 1, ModeShared, 5000, 140000), // new mode, no baseline
		skipped,
	)
	res := Diff(old, new, 20)
	if res.Compared != 1 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffPercentileRegression(t *testing.T) {
	lat := func(p50, p99 int64) SnapshotRow {
		return SnapshotRow{Query: ServedQueryName, SizeMB: 1, Mode: ModeServedLatency,
			P50NS: p50, P99NS: p99}
	}
	// Percentiles gate at percentileSlackFactor (2x) the threshold:
	// +35% on both passes a 20% diff where elapsed_ns would not.
	res := Diff(snap(100, lat(1000, 5000)), snap(100, lat(1350, 6750)), 20)
	if res.Compared != 1 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
	// p99 blows the widened threshold while p50 holds: exactly the tail
	// is named, and the reported limit is the widened one.
	res = Diff(snap(100, lat(1000, 5000)), snap(100, lat(1100, 9000)), 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "p99_ns" {
		t.Fatalf("res = %+v", res)
	}
	if res.Regressions[0].LimitPct != 40 {
		t.Fatalf("percentile limit must be widened to 40%%, got %+v", res.Regressions[0])
	}
	// Both percentiles regress: both rows appear.
	res = Diff(snap(100, lat(1000, 5000)), snap(100, lat(2000, 9000)), 20)
	if len(res.Regressions) != 2 {
		t.Fatalf("res = %+v", res)
	}
	// Calibration scaling applies: a 2x slower machine with 2x latencies
	// is not a regression.
	if res := Diff(snap(100, lat(1000, 5000)), snap(200, lat(2000, 10000)), 20); len(res.Regressions) != 0 {
		t.Fatalf("scaled percentiles must pass: %+v", res)
	}
	// Rows without percentiles (older snapshots) diff cleanly.
	if res := Diff(snap(100, lat(0, 0)), snap(100, lat(1100, 9000)), 20); len(res.Regressions) != 0 {
		t.Fatalf("missing baseline percentiles must not gate: %+v", res)
	}
}

func TestCheckFluxFastest(t *testing.T) {
	// Flux at or below both baselines on every cell: invariant holds
	// (ties allowed — the gate is "not slower").
	if err := CheckFluxFastest(snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row("q1", 1, ModeNaive, 1000, 0),
		row("q1", 1, ModeProjection, 1500, 0),
		row("q8", 1, ModeFluX, 2000, 0),
		row("q8", 1, ModeNaive, 9000, 0))); err != nil {
		t.Fatalf("invariant must hold: %v", err)
	}
	// Flux slower than projection on one cell: violated, cell named.
	err := CheckFluxFastest(snap(100,
		row("q20", 2, ModeFluX, 3000, 0),
		row("q20", 2, ModeNaive, 9000, 0),
		row("q20", 2, ModeProjection, 2500, 0)))
	if err == nil || !strings.Contains(err.Error(), "q20 2MB") {
		t.Fatalf("projection win must violate the invariant naming the cell, got %v", err)
	}
	// Flux slower than naive: violated too.
	if err := CheckFluxFastest(snap(100,
		row("q1", 1, ModeFluX, 5000, 0),
		row("q1", 1, ModeNaive, 4000, 0))); err == nil {
		t.Fatal("naive win must violate the invariant")
	}
	// Skipped baselines (too large for in-memory modes) and cells with no
	// flux row are ignored.
	skipped := row("q1", 50, ModeNaive, 0, 0)
	skipped.Skipped = true
	if err := CheckFluxFastest(snap(100,
		row("q1", 50, ModeFluX, 1000, 0),
		skipped,
		row("q8", 1, ModeNaive, 1, 0))); err != nil {
		t.Fatalf("skipped/unmatched rows must pass: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rows := []Row{
		{Query: "q1", SizeMB: 1, Bytes: 100, Mode: ModeFluX, Buffer: 0, Output: 5},
		{Query: SharedQueryName, SizeMB: 1, Bytes: 100, Mode: ModeShared, Buffer: 7, Output: 9},
	}
	if err := WriteJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rows) != 2 || snap.CalibNS <= 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Rows[1].Mode != ModeShared || snap.Rows[1].BufferBytes != 7 {
		t.Fatalf("rows = %+v", snap.Rows)
	}
}

func TestCheckFanout(t *testing.T) {
	fan := func(mode Mode, size int, tokens int64) SnapshotRow {
		return SnapshotRow{Query: FanoutQueryName, SizeMB: size, Mode: mode, TokensDelivered: tokens}
	}
	// Selective strictly below all-fanout: invariant holds.
	if err := CheckFanout(snap(100, fan(ModeFanoutAll, 1, 1000), fan(ModeFanoutSelective, 1, 100))); err != nil {
		t.Fatalf("invariant must hold: %v", err)
	}
	// Equal counts: violated (selective must be strictly lower).
	if err := CheckFanout(snap(100, fan(ModeFanoutAll, 1, 1000), fan(ModeFanoutSelective, 1, 1000))); err == nil {
		t.Fatal("equal event counts must violate the invariant")
	}
	// Snapshots without fan-out rows pass vacuously.
	if err := CheckFanout(snap(100, row("q1", 1, ModeFluX, 1000, 0))); err != nil {
		t.Fatalf("vacuous snapshot must pass: %v", err)
	}
	// A lone mode (old snapshots) passes too.
	if err := CheckFanout(snap(100, fan(ModeFanoutSelective, 1, 100))); err != nil {
		t.Fatalf("lone selective row must pass: %v", err)
	}
}

func TestCheckStreamEquivalence(t *testing.T) {
	st := func(mode Mode, size int, output int64) SnapshotRow {
		return SnapshotRow{Query: StreamQueryName, SizeMB: size, Mode: mode, OutputBytes: output}
	}
	// Identical output holds the invariant; buffer and token divergence
	// is expected (no scanner pruning on the streaming path) and ignored.
	ok := st(ModeStreamReplay, 1, 9000)
	ok.BufferBytes, ok.TokensDelivered = 555, 777
	if err := CheckStreamEquivalence(snap(100, st(ModeStreamStatic, 1, 9000), ok)); err != nil {
		t.Fatalf("equal output must pass: %v", err)
	}
	// Output divergence means chunked ingestion changed results.
	err := CheckStreamEquivalence(snap(100, st(ModeStreamStatic, 1, 9000), st(ModeStreamReplay, 1, 8999)))
	if err == nil || !strings.Contains(err.Error(), "stream 1MB") {
		t.Fatalf("output mismatch must fail naming the size, got %v", err)
	}
	// Snapshots without stream rows (or with a lone mode) pass vacuously.
	if err := CheckStreamEquivalence(snap(100, row("q1", 1, ModeFluX, 1000, 0))); err != nil {
		t.Fatalf("vacuous snapshot must pass: %v", err)
	}
	if err := CheckStreamEquivalence(snap(100, st(ModeStreamReplay, 1, 9000))); err != nil {
		t.Fatalf("lone replay row must pass: %v", err)
	}
}

func TestRegressionString(t *testing.T) {
	r := Regression{
		Query: "shared", SizeMB: 1, Mode: ModeShared, Metric: "elapsed_ns",
		Old: 1000, New: 1500, LimitPct: 20, Allowed: 1200,
	}
	s := r.String()
	for _, want := range []string{"shared/1MB/shared-scan", "1000", "1500", "+50.0%", "limit +20%", "1200"} {
		if !strings.Contains(s, want) {
			t.Errorf("regression message %q missing %q", s, want)
		}
	}
}

func TestRegressionAllowedIncludesSlack(t *testing.T) {
	// Old 1000 at 10%: the percentage bound (1100) is under the absolute
	// slack ceiling (1000+4096), so Allowed must report the slack value —
	// the number a fix actually has to get under.
	old := snap(100, row("q8", 1, ModeFluX, 1000, 1000))
	new := snap(100, row("q8", 1, ModeFluX, 1000, 6000))
	res := Diff(old, new, 10)
	if len(res.Regressions) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if got := res.Regressions[0].Allowed; got != 1000+bufferSlackBytes {
		t.Fatalf("Allowed = %d, want %d (percentage bound alone understates the gate)", got, 1000+bufferSlackBytes)
	}
}

func TestCheckSharded(t *testing.T) {
	served := func(mode Mode, size int, output, tokens int64) SnapshotRow {
		return SnapshotRow{Query: ServedQueryName, SizeMB: size, Mode: mode,
			OutputBytes: output, TokensDelivered: tokens}
	}
	// Identical output and tokens hold the invariant.
	if err := CheckSharded(snap(100,
		served(ModeServedSingle, 1, 9000, 5000),
		served(ModeServedSharded, 1, 9000, 5000))); err != nil {
		t.Fatalf("equal rows must pass: %v", err)
	}
	// Output divergence is a routing bug.
	err := CheckSharded(snap(100,
		served(ModeServedSingle, 1, 9000, 5000),
		served(ModeServedSharded, 1, 8999, 5000)))
	if err == nil || !strings.Contains(err.Error(), "output") {
		t.Fatalf("output mismatch must fail naming output, got %v", err)
	}
	// Token divergence means sharding changed the scan work.
	err = CheckSharded(snap(100,
		served(ModeServedSingle, 1, 9000, 5000),
		served(ModeServedSharded, 1, 9000, 5001)))
	if err == nil || !strings.Contains(err.Error(), "tokens") {
		t.Fatalf("token mismatch must fail naming tokens, got %v", err)
	}
	// Snapshots without served rows (or with a lone mode) pass vacuously.
	if err := CheckSharded(snap(100, row("q1", 1, ModeFluX, 1000, 0))); err != nil {
		t.Fatalf("vacuous snapshot must pass: %v", err)
	}
	if err := CheckSharded(snap(100, served(ModeServedSharded, 1, 9000, 5000))); err != nil {
		t.Fatalf("lone sharded row must pass: %v", err)
	}
}

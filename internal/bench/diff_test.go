package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func snap(calib int64, rows ...SnapshotRow) *Snapshot {
	return &Snapshot{Schema: "flux-bench/v1", CalibNS: calib, Rows: rows}
}

func row(query string, size int, mode Mode, elapsed, buffer int64) SnapshotRow {
	return SnapshotRow{Query: query, SizeMB: size, Mode: mode, ElapsedNS: elapsed, BufferBytes: buffer}
}

func TestDiffNoRegression(t *testing.T) {
	old := snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row(SharedQueryName, 1, ModeShared, 5000, 140000),
	)
	new := snap(100,
		row("q1", 1, ModeFluX, 5000, 0), // per-query elapsed is NOT gated
		row(SharedQueryName, 1, ModeShared, 5500, 140000),
	)
	res := Diff(old, new, 20)
	if res.Compared != 2 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffSharedElapsedRegression(t *testing.T) {
	old := snap(100, row(SharedQueryName, 1, ModeShared, 5000, 140000))
	new := snap(100, row(SharedQueryName, 1, ModeShared, 6500, 140000))
	res := Diff(old, new, 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "elapsed_ns" {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffCalibrationScaling(t *testing.T) {
	// The new machine is 2x slower (calibration 100 -> 200); a 2x wall
	// time is therefore NOT a regression...
	old := snap(100, row(SharedQueryName, 1, ModeShared, 5000, 140000))
	new := snap(200, row(SharedQueryName, 1, ModeShared, 10000, 140000))
	if res := Diff(old, new, 20); len(res.Regressions) != 0 {
		t.Fatalf("scaled comparison must pass: %+v", res)
	}
	// ...but 3x is, even after scaling.
	new = snap(200, row(SharedQueryName, 1, ModeShared, 15000, 140000))
	if res := Diff(old, new, 20); len(res.Regressions) != 1 {
		t.Fatalf("scaled regression must fail: %+v", res)
	}
}

func TestDiffBufferRegression(t *testing.T) {
	old := snap(100, row("q8", 1, ModeFluX, 1000, 100000))
	new := snap(100, row("q8", 1, ModeFluX, 1000, 160000))
	res := Diff(old, new, 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "buffer_bytes" {
		t.Fatalf("res = %+v", res)
	}
	// Small absolute growth under the slack is ignored even when the
	// percentage is huge (0 -> a handful of bytes).
	old = snap(100, row("q1", 1, ModeFluX, 1000, 0))
	new = snap(100, row("q1", 1, ModeFluX, 1000, 128))
	if res := Diff(old, new, 20); len(res.Regressions) != 0 {
		t.Fatalf("slack must absorb tiny growth: %+v", res)
	}
}

func TestDiffIgnoresUnmatchedAndSkipped(t *testing.T) {
	old := snap(100, row("q1", 1, ModeFluX, 1000, 0))
	skipped := row("q1", 1, ModeNaive, 0, 0)
	skipped.Skipped = true
	new := snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row(SharedQueryName, 1, ModeShared, 5000, 140000), // new mode, no baseline
		skipped,
	)
	res := Diff(old, new, 20)
	if res.Compared != 1 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rows := []Row{
		{Query: "q1", SizeMB: 1, Bytes: 100, Mode: ModeFluX, Buffer: 0, Output: 5},
		{Query: SharedQueryName, SizeMB: 1, Bytes: 100, Mode: ModeShared, Buffer: 7, Output: 9},
	}
	if err := WriteJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rows) != 2 || snap.CalibNS <= 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Rows[1].Mode != ModeShared || snap.Rows[1].BufferBytes != 7 {
		t.Fatalf("rows = %+v", snap.Rows)
	}
}

func TestCheckFanout(t *testing.T) {
	fan := func(mode Mode, size int, tokens int64) SnapshotRow {
		return SnapshotRow{Query: FanoutQueryName, SizeMB: size, Mode: mode, TokensDelivered: tokens}
	}
	// Selective strictly below all-fanout: invariant holds.
	if err := CheckFanout(snap(100, fan(ModeFanoutAll, 1, 1000), fan(ModeFanoutSelective, 1, 100))); err != nil {
		t.Fatalf("invariant must hold: %v", err)
	}
	// Equal counts: violated (selective must be strictly lower).
	if err := CheckFanout(snap(100, fan(ModeFanoutAll, 1, 1000), fan(ModeFanoutSelective, 1, 1000))); err == nil {
		t.Fatal("equal event counts must violate the invariant")
	}
	// Snapshots without fan-out rows pass vacuously.
	if err := CheckFanout(snap(100, row("q1", 1, ModeFluX, 1000, 0))); err != nil {
		t.Fatalf("vacuous snapshot must pass: %v", err)
	}
	// A lone mode (old snapshots) passes too.
	if err := CheckFanout(snap(100, fan(ModeFanoutSelective, 1, 100))); err != nil {
		t.Fatalf("lone selective row must pass: %v", err)
	}
}

func TestRegressionString(t *testing.T) {
	r := Regression{
		Query: "shared", SizeMB: 1, Mode: ModeShared, Metric: "elapsed_ns",
		Old: 1000, New: 1500, LimitPct: 20, Allowed: 1200,
	}
	s := r.String()
	for _, want := range []string{"shared/1MB/shared-scan", "1000", "1500", "+50.0%", "limit +20%", "1200"} {
		if !strings.Contains(s, want) {
			t.Errorf("regression message %q missing %q", s, want)
		}
	}
}

func TestRegressionAllowedIncludesSlack(t *testing.T) {
	// Old 1000 at 10%: the percentage bound (1100) is under the absolute
	// slack ceiling (1000+4096), so Allowed must report the slack value —
	// the number a fix actually has to get under.
	old := snap(100, row("q8", 1, ModeFluX, 1000, 1000))
	new := snap(100, row("q8", 1, ModeFluX, 1000, 6000))
	res := Diff(old, new, 10)
	if len(res.Regressions) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if got := res.Regressions[0].Allowed; got != 1000+bufferSlackBytes {
		t.Fatalf("Allowed = %d, want %d (percentage bound alone understates the gate)", got, 1000+bufferSlackBytes)
	}
}

func TestCheckSharded(t *testing.T) {
	served := func(mode Mode, size int, output, tokens int64) SnapshotRow {
		return SnapshotRow{Query: ServedQueryName, SizeMB: size, Mode: mode,
			OutputBytes: output, TokensDelivered: tokens}
	}
	// Identical output and tokens hold the invariant.
	if err := CheckSharded(snap(100,
		served(ModeServedSingle, 1, 9000, 5000),
		served(ModeServedSharded, 1, 9000, 5000))); err != nil {
		t.Fatalf("equal rows must pass: %v", err)
	}
	// Output divergence is a routing bug.
	err := CheckSharded(snap(100,
		served(ModeServedSingle, 1, 9000, 5000),
		served(ModeServedSharded, 1, 8999, 5000)))
	if err == nil || !strings.Contains(err.Error(), "output") {
		t.Fatalf("output mismatch must fail naming output, got %v", err)
	}
	// Token divergence means sharding changed the scan work.
	err = CheckSharded(snap(100,
		served(ModeServedSingle, 1, 9000, 5000),
		served(ModeServedSharded, 1, 9000, 5001)))
	if err == nil || !strings.Contains(err.Error(), "tokens") {
		t.Fatalf("token mismatch must fail naming tokens, got %v", err)
	}
	// Snapshots without served rows (or with a lone mode) pass vacuously.
	if err := CheckSharded(snap(100, row("q1", 1, ModeFluX, 1000, 0))); err != nil {
		t.Fatalf("vacuous snapshot must pass: %v", err)
	}
	if err := CheckSharded(snap(100, served(ModeServedSharded, 1, 9000, 5000))); err != nil {
		t.Fatalf("lone sharded row must pass: %v", err)
	}
}

package bench

import (
	"path/filepath"
	"testing"
)

func snap(calib int64, rows ...SnapshotRow) *Snapshot {
	return &Snapshot{Schema: "flux-bench/v1", CalibNS: calib, Rows: rows}
}

func row(query string, size int, mode Mode, elapsed, buffer int64) SnapshotRow {
	return SnapshotRow{Query: query, SizeMB: size, Mode: mode, ElapsedNS: elapsed, BufferBytes: buffer}
}

func TestDiffNoRegression(t *testing.T) {
	old := snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row(SharedQueryName, 1, ModeShared, 5000, 140000),
	)
	new := snap(100,
		row("q1", 1, ModeFluX, 5000, 0), // per-query elapsed is NOT gated
		row(SharedQueryName, 1, ModeShared, 5500, 140000),
	)
	res := Diff(old, new, 20)
	if res.Compared != 2 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffSharedElapsedRegression(t *testing.T) {
	old := snap(100, row(SharedQueryName, 1, ModeShared, 5000, 140000))
	new := snap(100, row(SharedQueryName, 1, ModeShared, 6500, 140000))
	res := Diff(old, new, 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "elapsed_ns" {
		t.Fatalf("res = %+v", res)
	}
}

func TestDiffCalibrationScaling(t *testing.T) {
	// The new machine is 2x slower (calibration 100 -> 200); a 2x wall
	// time is therefore NOT a regression...
	old := snap(100, row(SharedQueryName, 1, ModeShared, 5000, 140000))
	new := snap(200, row(SharedQueryName, 1, ModeShared, 10000, 140000))
	if res := Diff(old, new, 20); len(res.Regressions) != 0 {
		t.Fatalf("scaled comparison must pass: %+v", res)
	}
	// ...but 3x is, even after scaling.
	new = snap(200, row(SharedQueryName, 1, ModeShared, 15000, 140000))
	if res := Diff(old, new, 20); len(res.Regressions) != 1 {
		t.Fatalf("scaled regression must fail: %+v", res)
	}
}

func TestDiffBufferRegression(t *testing.T) {
	old := snap(100, row("q8", 1, ModeFluX, 1000, 100000))
	new := snap(100, row("q8", 1, ModeFluX, 1000, 160000))
	res := Diff(old, new, 20)
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "buffer_bytes" {
		t.Fatalf("res = %+v", res)
	}
	// Small absolute growth under the slack is ignored even when the
	// percentage is huge (0 -> a handful of bytes).
	old = snap(100, row("q1", 1, ModeFluX, 1000, 0))
	new = snap(100, row("q1", 1, ModeFluX, 1000, 128))
	if res := Diff(old, new, 20); len(res.Regressions) != 0 {
		t.Fatalf("slack must absorb tiny growth: %+v", res)
	}
}

func TestDiffIgnoresUnmatchedAndSkipped(t *testing.T) {
	old := snap(100, row("q1", 1, ModeFluX, 1000, 0))
	skipped := row("q1", 1, ModeNaive, 0, 0)
	skipped.Skipped = true
	new := snap(100,
		row("q1", 1, ModeFluX, 1000, 0),
		row(SharedQueryName, 1, ModeShared, 5000, 140000), // new mode, no baseline
		skipped,
	)
	res := Diff(old, new, 20)
	if res.Compared != 1 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rows := []Row{
		{Query: "q1", SizeMB: 1, Bytes: 100, Mode: ModeFluX, Buffer: 0, Output: 5},
		{Query: SharedQueryName, SizeMB: 1, Bytes: 100, Mode: ModeShared, Buffer: 7, Output: 9},
	}
	if err := WriteJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rows) != 2 || snap.CalibNS <= 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Rows[1].Mode != ModeShared || snap.Rows[1].BufferBytes != 7 {
		t.Fatalf("rows = %+v", snap.Rows)
	}
}

package bench

// Snapshot diffing: the perf-trajectory gate. CI regenerates a fresh
// snapshot each run and compares it against the last checked-in
// BENCH_<n>.json; a regression beyond the threshold in shared-scan
// elapsed time or any row's peak buffer bytes fails the build.

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadSnapshot loads a BENCH_<n>.json file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// Regression is one metric that got worse than the threshold allows.
type Regression struct {
	Query  string
	SizeMB int
	Mode   Mode
	Metric string // "elapsed_ns" or "buffer_bytes"
	Old    int64  // calibration-scaled for elapsed_ns
	New    int64
}

// String renders the regression for CI logs.
func (r Regression) String() string {
	return fmt.Sprintf("%s %dMB %s: %s %d -> %d (%+.1f%%)",
		r.Query, r.SizeMB, r.Mode, r.Metric, r.Old, r.New, pctChange(r.Old, r.New))
}

func pctChange(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}

// DiffResult summarizes a snapshot comparison.
type DiffResult struct {
	// Compared counts rows present in both snapshots (matched on
	// query, size and mode, skipped rows excluded).
	Compared int
	// Scale is the machine-speed factor applied to the old snapshot's
	// elapsed times (new calibration / old calibration); 1 when either
	// snapshot predates calibration.
	Scale float64
	// Regressions are the metrics that exceeded the threshold.
	Regressions []Regression
}

// Diff compares two snapshots row by row. A row regresses when the new
// value exceeds the old by more than maxRegressPct percent:
//
//   - elapsed_ns, compared only for ModeShared rows (the serving-path
//     metric the trajectory tracks; per-query wall times on shared CI
//     runners are too noisy to gate on) and scaled by the snapshots'
//     calibration ratio so a slower machine does not read as a
//     regression;
//   - buffer_bytes, compared for every row — buffering is deterministic,
//     so any growth is a real behavior change.
//
// Rows present in only one snapshot are ignored, which lets a snapshot
// that adds new modes (e.g. shared-scan) diff cleanly against an older
// one.
func Diff(old, new *Snapshot, maxRegressPct float64) DiffResult {
	type key struct {
		query  string
		sizeMB int
		mode   Mode
	}
	oldRows := make(map[key]SnapshotRow, len(old.Rows))
	for _, r := range old.Rows {
		if !r.Skipped {
			oldRows[key{r.Query, r.SizeMB, r.Mode}] = r
		}
	}
	res := DiffResult{Scale: 1}
	if old.CalibNS > 0 && new.CalibNS > 0 {
		res.Scale = float64(new.CalibNS) / float64(old.CalibNS)
	}
	allowed := 1 + maxRegressPct/100
	for _, nr := range new.Rows {
		if nr.Skipped {
			continue
		}
		or, ok := oldRows[key{nr.Query, nr.SizeMB, nr.Mode}]
		if !ok {
			continue
		}
		res.Compared++
		if nr.Mode == ModeShared {
			scaledOld := int64(float64(or.ElapsedNS) * res.Scale)
			if float64(nr.ElapsedNS) > float64(scaledOld)*allowed {
				res.Regressions = append(res.Regressions, Regression{
					Query: nr.Query, SizeMB: nr.SizeMB, Mode: nr.Mode,
					Metric: "elapsed_ns", Old: scaledOld, New: nr.ElapsedNS,
				})
			}
		}
		if float64(nr.BufferBytes) > float64(or.BufferBytes)*allowed &&
			nr.BufferBytes-or.BufferBytes > bufferSlackBytes {
			res.Regressions = append(res.Regressions, Regression{
				Query: nr.Query, SizeMB: nr.SizeMB, Mode: nr.Mode,
				Metric: "buffer_bytes", Old: or.BufferBytes, New: nr.BufferBytes,
			})
		}
	}
	return res
}

// bufferSlackBytes ignores absolute buffer growth below this size, so a
// query that buffered 0 bytes and now buffers a handful (or a generator
// tweak shifting a small document) does not trip the percentage gate.
const bufferSlackBytes = 4096

package bench

// Snapshot diffing: the perf-trajectory gate. CI regenerates a fresh
// snapshot each run and compares it against the last checked-in
// BENCH_<n>.json; a regression beyond the threshold in shared-scan
// elapsed time or any row's peak buffer bytes fails the build.

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadSnapshot loads a BENCH_<n>.json file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// Regression is one metric that got worse than the threshold allows.
type Regression struct {
	Query  string
	SizeMB int
	Mode   Mode
	Metric string // "elapsed_ns" or "buffer_bytes"
	Old    int64  // calibration-scaled for elapsed_ns
	New    int64
	// LimitPct is the threshold the row exceeded, and Allowed the
	// largest New value that would have passed it, so a CI log names the
	// offending row with its before/after values and the line it crossed
	// without the reader re-deriving the math.
	LimitPct float64
	Allowed  int64
}

// String renders the regression for CI logs: the exact row (query, size,
// mode), the metric, the baseline and observed values, and the allowed
// maximum under the threshold.
func (r Regression) String() string {
	note := ""
	if r.Metric == "elapsed_ns" || r.Metric == "p50_ns" || r.Metric == "p99_ns" {
		note = " [baseline calibration-scaled]"
	}
	return fmt.Sprintf("row %s/%dMB/%s: %s was %d, now %d (%+.1f%%; limit +%.0f%% = %d)%s",
		r.Query, r.SizeMB, r.Mode, r.Metric, r.Old, r.New,
		pctChange(r.Old, r.New), r.LimitPct, r.Allowed, note)
}

func pctChange(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}

// DiffResult summarizes a snapshot comparison.
type DiffResult struct {
	// Compared counts rows present in both snapshots (matched on
	// query, size and mode, skipped rows excluded).
	Compared int
	// Scale is the machine-speed factor applied to the old snapshot's
	// elapsed times (new calibration / old calibration); 1 when either
	// snapshot predates calibration.
	Scale float64
	// Regressions are the metrics that exceeded the threshold.
	Regressions []Regression
}

// Diff compares two snapshots row by row. A row regresses when the new
// value exceeds the old by more than maxRegressPct percent:
//
//   - elapsed_ns, compared only for ModeShared rows (the serving-path
//     metric the trajectory tracks; per-query wall times on shared CI
//     runners are too noisy to gate on) and scaled by the snapshots'
//     calibration ratio so a slower machine does not read as a
//     regression;
//   - p50_ns and p99_ns, compared for served-latency rows at
//     percentileSlackFactor times the threshold (open-loop percentiles
//     are noisier than batch elapsed times), calibration-scaled the
//     same way;
//   - buffer_bytes, compared for every row — buffering is deterministic,
//     so any growth is a real behavior change.
//
// Rows present in only one snapshot are ignored, which lets a snapshot
// that adds new modes (e.g. shared-scan) diff cleanly against an older
// one.
func Diff(old, new *Snapshot, maxRegressPct float64) DiffResult {
	type key struct {
		query  string
		sizeMB int
		mode   Mode
	}
	oldRows := make(map[key]SnapshotRow, len(old.Rows))
	for _, r := range old.Rows {
		if !r.Skipped {
			oldRows[key{r.Query, r.SizeMB, r.Mode}] = r
		}
	}
	res := DiffResult{Scale: 1}
	if old.CalibNS > 0 && new.CalibNS > 0 {
		res.Scale = float64(new.CalibNS) / float64(old.CalibNS)
	}
	allowed := 1 + maxRegressPct/100
	for _, nr := range new.Rows {
		if nr.Skipped {
			continue
		}
		or, ok := oldRows[key{nr.Query, nr.SizeMB, nr.Mode}]
		if !ok {
			continue
		}
		res.Compared++
		if nr.Mode == ModeShared {
			scaledOld := int64(float64(or.ElapsedNS) * res.Scale)
			if float64(nr.ElapsedNS) > float64(scaledOld)*allowed {
				res.Regressions = append(res.Regressions, Regression{
					Query: nr.Query, SizeMB: nr.SizeMB, Mode: nr.Mode,
					Metric: "elapsed_ns", Old: scaledOld, New: nr.ElapsedNS,
					LimitPct: maxRegressPct, Allowed: int64(float64(scaledOld) * allowed),
				})
			}
		}
		// Latency percentiles (served-latency rows): calibration-scaled
		// like shared elapsed, but with percentileSlackFactor× the
		// threshold. Open-loop latency under queueing is far noisier
		// than batch wall time — even a best-of-N p50 swings ~2× with
		// ambient machine load — while the regressions the gate exists
		// to catch (a lost batching window, a serialized hot path) are
		// multiples, not percents. p50 guards the typical request, p99
		// the tail the open loop exists to expose.
		allowedPctl := 1 + maxRegressPct*percentileSlackFactor/100
		for _, m := range [...]struct {
			name     string
			old, new int64
		}{{"p50_ns", or.P50NS, nr.P50NS}, {"p99_ns", or.P99NS, nr.P99NS}} {
			if m.old <= 0 || m.new <= 0 {
				continue
			}
			scaledOld := int64(float64(m.old) * res.Scale)
			if float64(m.new) > float64(scaledOld)*allowedPctl {
				res.Regressions = append(res.Regressions, Regression{
					Query: nr.Query, SizeMB: nr.SizeMB, Mode: nr.Mode,
					Metric: m.name, Old: scaledOld, New: m.new,
					LimitPct: maxRegressPct * percentileSlackFactor,
					Allowed:  int64(float64(scaledOld) * allowedPctl),
				})
			}
		}
		if float64(nr.BufferBytes) > float64(or.BufferBytes)*allowed &&
			nr.BufferBytes-or.BufferBytes > bufferSlackBytes {
			// The pass ceiling is the larger of the percentage bound and
			// the absolute slack, matching the gate condition above.
			allowedBytes := int64(float64(or.BufferBytes) * allowed)
			if slackCeil := or.BufferBytes + bufferSlackBytes; slackCeil > allowedBytes {
				allowedBytes = slackCeil
			}
			res.Regressions = append(res.Regressions, Regression{
				Query: nr.Query, SizeMB: nr.SizeMB, Mode: nr.Mode,
				Metric: "buffer_bytes", Old: or.BufferBytes, New: nr.BufferBytes,
				LimitPct: maxRegressPct, Allowed: allowedBytes,
			})
		}
	}
	return res
}

// CheckFluxFastest verifies the paper's headline claim within one
// snapshot: wherever a (query, size) has a flux row alongside a naive or
// projection row, the flux row's elapsed time must not exceed the
// baseline's — schema-based scheduling plus streaming execution must
// beat both a full materialization and a pruned one. Rows are min-of-N
// measurements (fig4Repeats), so a violation is a real loss, not
// scheduler jitter. Returns an error naming the first offending cell, or
// nil when the invariant holds.
func CheckFluxFastest(snap *Snapshot) error {
	type cell struct {
		query  string
		sizeMB int
	}
	flux := make(map[cell]int64)
	for _, r := range snap.Rows {
		if r.Mode == ModeFluX && !r.Skipped {
			flux[cell{r.Query, r.SizeMB}] = r.ElapsedNS
		}
	}
	for _, r := range snap.Rows {
		if r.Skipped || (r.Mode != ModeNaive && r.Mode != ModeProjection) {
			continue
		}
		f, ok := flux[cell{r.Query, r.SizeMB}]
		if !ok {
			continue
		}
		if f > r.ElapsedNS {
			return fmt.Errorf("%s %dMB: flux took %dns, %s %dns; flux must be the fastest mode on every query",
				r.Query, r.SizeMB, f, r.Mode, r.ElapsedNS)
		}
	}
	return nil
}

// CheckFanout verifies the selective fan-out invariant within one
// snapshot: wherever both fan-out rows exist for a size, the selective
// row must have delivered strictly fewer events than the all-fanout
// baseline — the disjoint-path batch's defining win. It returns an
// error naming the offending size and both values, or nil when the
// invariant holds (vacuously for snapshots without fan-out rows).
func CheckFanout(snap *Snapshot) error {
	all := make(map[int]int64)
	sel := make(map[int]int64)
	for _, r := range snap.Rows {
		if r.Query != FanoutQueryName || r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeFanoutAll:
			all[r.SizeMB] = r.TokensDelivered
		case ModeFanoutSelective:
			sel[r.SizeMB] = r.TokensDelivered
		}
	}
	for size, a := range all {
		s, ok := sel[size]
		if !ok {
			continue
		}
		if s >= a {
			return fmt.Errorf("fanout %dMB: selective delivered %d events, all-fanout %d; selective must be strictly lower", size, s, a)
		}
	}
	return nil
}

// CheckAutomaton verifies the merged-automaton invariant within one
// snapshot: on every (query, size) cell — both the disjoint "fanout"
// set and the shared-prefix "fanout-wide" set — where a
// fanout-automaton row and a fanout-selective row exist, the automaton
// must have delivered no more events than the per-group selective walk
// and produced byte-identical output. The two routings make the same
// skip decisions, so delivery parity is the expectation and any excess
// is a dispatch bug, not a tuning miss. It returns an error naming the
// offending cell and values, or nil when the invariant holds (vacuously
// for snapshots without automaton rows).
func CheckAutomaton(snap *Snapshot) error {
	type cell struct {
		query string
		size  int
	}
	sel := make(map[cell]SnapshotRow)
	auto := make(map[cell]SnapshotRow)
	for _, r := range snap.Rows {
		if (r.Query != FanoutQueryName && r.Query != FanoutWideQueryName) || r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeFanoutSelective:
			sel[cell{r.Query, r.SizeMB}] = r
		case ModeFanoutAutomaton:
			auto[cell{r.Query, r.SizeMB}] = r
		}
	}
	for c, a := range auto {
		s, ok := sel[c]
		if !ok {
			continue
		}
		if a.TokensDelivered > s.TokensDelivered {
			return fmt.Errorf("%s %dMB: automaton delivered %d events, selective %d; automaton must not deliver more",
				c.query, c.size, a.TokensDelivered, s.TokensDelivered)
		}
		if a.OutputBytes != s.OutputBytes {
			return fmt.Errorf("%s %dMB: automaton produced %d output bytes, selective %d; outputs must be identical",
				c.query, c.size, a.OutputBytes, s.OutputBytes)
		}
	}
	return nil
}

// parallelMinCPUs is the machine width below which
// CheckParallelEquivalence does not gate wall clock: with fewer cores
// the worker pool multiplexes instead of overlapping, so the parallel
// row's timing carries no signal (on a 1-CPU runner it is pure
// overhead). Equivalence of output and tokens is gated regardless.
const parallelMinCPUs = 4

// CheckParallelEquivalence verifies the parallel-pipeline invariant
// within one snapshot: on every (query, size) cell where both a
// fanout-automaton row and a fanout-parallel row exist, the worker-pool
// run must have produced byte-identical output and delivered exactly
// the same token count — moving group evaluation off the scan goroutine
// must not change a single observable — and, when the snapshot's
// machine has at least parallelMinCPUs CPUs, strictly less wall clock
// than the sequential automaton row (both are min-of-N measurements, so
// a loss on a wide machine means the pipeline serialized, not jitter).
// Returns an error naming the offending cell and values, or nil when
// the invariant holds (vacuously for snapshots without parallel rows).
func CheckParallelEquivalence(snap *Snapshot) error {
	type cell struct {
		query string
		size  int
	}
	auto := make(map[cell]SnapshotRow)
	par := make(map[cell]SnapshotRow)
	for _, r := range snap.Rows {
		if r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeFanoutAutomaton:
			auto[cell{r.Query, r.SizeMB}] = r
		case ModeFanoutParallel:
			par[cell{r.Query, r.SizeMB}] = r
		}
	}
	for c, p := range par {
		a, ok := auto[c]
		if !ok {
			continue
		}
		if p.OutputBytes != a.OutputBytes {
			return fmt.Errorf("%s %dMB: parallel produced %d output bytes, sequential automaton %d; outputs must be identical",
				c.query, c.size, p.OutputBytes, a.OutputBytes)
		}
		if p.TokensDelivered != a.TokensDelivered {
			return fmt.Errorf("%s %dMB: parallel delivered %d events, sequential automaton %d; delivery must be identical",
				c.query, c.size, p.TokensDelivered, a.TokensDelivered)
		}
		if snap.NumCPU >= parallelMinCPUs && p.ElapsedNS >= a.ElapsedNS {
			return fmt.Errorf("%s %dMB: parallel took %dns, sequential automaton %dns on a %d-CPU machine; the worker pool must win wall clock at ≥%d CPUs",
				c.query, c.size, p.ElapsedNS, a.ElapsedNS, snap.NumCPU, parallelMinCPUs)
		}
	}
	return nil
}

// CheckSharded verifies the sharded-serving invariant within one
// snapshot: wherever both served rows exist for a size, the sharded
// tier must have produced exactly the single node's output bytes and
// delivered exactly its summed tokens — routing a corpus across shards
// must not change what queries return or scan. It returns an error
// naming the offending size and both values, or nil when the invariant
// holds (vacuously for snapshots without served rows).
func CheckSharded(snap *Snapshot) error {
	single := make(map[int]SnapshotRow)
	sharded := make(map[int]SnapshotRow)
	for _, r := range snap.Rows {
		if r.Query != ServedQueryName || r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeServedSingle:
			single[r.SizeMB] = r
		case ModeServedSharded:
			sharded[r.SizeMB] = r
		}
	}
	for size, s := range single {
		sh, ok := sharded[size]
		if !ok {
			continue
		}
		if sh.OutputBytes != s.OutputBytes {
			return fmt.Errorf("served %dMB: sharded output %d bytes, single-node %d; sharding must not change results", size, sh.OutputBytes, s.OutputBytes)
		}
		if sh.TokensDelivered != s.TokensDelivered {
			return fmt.Errorf("served %dMB: sharded delivered %d tokens, single-node %d; sharding must not change scan work", size, sh.TokensDelivered, s.TokensDelivered)
		}
	}
	return nil
}

// CheckMigrate verifies the live-migration invariant within one
// snapshot: wherever both migrate rows exist for a size, the run whose
// document migrated mid-stream must have produced exactly the static
// topology's output bytes and delivered exactly its summed tokens —
// moving a document between shards must be invisible to the query
// stream. (A dropped or failed query cannot sneak past this check: any
// non-200 response fails the benchmark run before a row is written.)
// It returns an error naming the offending size and both values, or nil
// when the invariant holds (vacuously for snapshots without migrate
// rows).
func CheckMigrate(snap *Snapshot) error {
	static := make(map[int]SnapshotRow)
	live := make(map[int]SnapshotRow)
	for _, r := range snap.Rows {
		if r.Query != MigrateQueryName || r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeMigrateStatic:
			static[r.SizeMB] = r
		case ModeMigrateLive:
			live[r.SizeMB] = r
		}
	}
	for size, s := range static {
		l, ok := live[size]
		if !ok {
			continue
		}
		if l.OutputBytes != s.OutputBytes {
			return fmt.Errorf("migrate %dMB: live-migration output %d bytes, static topology %d; migration must not change results", size, l.OutputBytes, s.OutputBytes)
		}
		if l.TokensDelivered != s.TokensDelivered {
			return fmt.Errorf("migrate %dMB: live-migration delivered %d tokens, static topology %d; migration must not change scan work", size, l.TokensDelivered, s.TokensDelivered)
		}
	}
	return nil
}

// CheckStreamEquivalence verifies the streaming-ingestion invariant
// within one snapshot: wherever both stream rows exist for a size, the
// standing subscriptions fed by the chunked replay must have produced
// exactly the static shared scan's output bytes — ingesting a document
// as a live stream must not change what queries return. Output alone is
// compared: the streaming path charges per-subscription engine peaks
// and delivers every event to every standing query (no scanner-level
// pruning), so buffer and token totals legitimately differ from the
// static scan's. (runStream already verified per-query digest equality
// when the rows were measured; this re-checks the byte totals that
// survive into the snapshot.) Returns an error naming the offending
// size and both values, or nil when the invariant holds (vacuously for
// snapshots without stream rows).
func CheckStreamEquivalence(snap *Snapshot) error {
	static := make(map[int]SnapshotRow)
	replay := make(map[int]SnapshotRow)
	for _, r := range snap.Rows {
		if r.Query != StreamQueryName || r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeStreamStatic:
			static[r.SizeMB] = r
		case ModeStreamReplay:
			replay[r.SizeMB] = r
		}
	}
	for size, s := range static {
		rp, ok := replay[size]
		if !ok {
			continue
		}
		if rp.OutputBytes != s.OutputBytes {
			return fmt.Errorf("stream %dMB: streamed output %d bytes, static serving %d; chunked ingestion must not change results", size, rp.OutputBytes, s.OutputBytes)
		}
	}
	return nil
}

// CheckSkewedConverge verifies the rebalancer's payoff within one
// snapshot: wherever both skewed rows exist for a size, the converged
// 2-shard tier — whose hot-document replica the autonomous rebalancer
// placed on its own — must have served the burst in strictly less wall
// clock than the single capacity-capped node. Both rows are min-of-N
// bursts of identical requests, so a loss means fan-out failed to use
// the second copy, not jitter. It returns an error naming the
// offending size and both times, or nil when the invariant holds
// (vacuously for snapshots without skewed rows).
func CheckSkewedConverge(snap *Snapshot) error {
	single := make(map[int]SnapshotRow)
	converged := make(map[int]SnapshotRow)
	for _, r := range snap.Rows {
		if r.Query != SkewedQueryName || r.Skipped {
			continue
		}
		switch r.Mode {
		case ModeSkewedSingle:
			single[r.SizeMB] = r
		case ModeSkewedConverge:
			converged[r.SizeMB] = r
		}
	}
	for size, s := range single {
		c, ok := converged[size]
		if !ok {
			continue
		}
		if c.ElapsedNS >= s.ElapsedNS {
			return fmt.Errorf("skewed %dMB: converged tier took %dns, single node %dns; the rebalanced tier must beat the single node after convergence", size, c.ElapsedNS, s.ElapsedNS)
		}
	}
	return nil
}

// bufferSlackBytes ignores absolute buffer growth below this size, so a
// query that buffered 0 bytes and now buffers a handful (or a generator
// tweak shifting a small document) does not trip the percentage gate.
const bufferSlackBytes = 4096

// percentileSlackFactor widens the regression threshold for latency
// percentiles (p50_ns/p99_ns): at the default 20% it gates them at
// +40%. Open-loop percentiles under queueing carry irreducible
// run-to-run variance that batch elapsed times do not, and real
// serving-path regressions show up as multiples.
const percentileSlackFactor = 2

// Package bench is the harness that regenerates the paper's Figure 4: it
// generates XMark-like documents at a sweep of sizes, runs the five
// benchmark queries through the FluX engine and the two baselines, and
// prints the table of execution time and peak memory.
package bench

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flux"
	"flux/internal/shard"
	"flux/internal/stream"
	"flux/internal/xmark"
)

// Mode identifies an execution strategy column.
type Mode string

// The benchmark columns. FluXNoSchema is the ablation: the FluX runtime
// with scheduling disabled (everything behind on-first past(*), the
// Example 3.4 fallback), isolating the contribution of schema-based
// scheduling.
const (
	ModeFluX         Mode = "flux"
	ModeNaive        Mode = "naive"
	ModeProjection   Mode = "projection"
	ModeFluXNoSchema Mode = "flux-noschema"
	// ModeShared is the multi-query serving measurement: every query of
	// the sweep executed in one shared scan (flux.RunAll). Its row uses
	// the synthetic query name "shared"; Elapsed is the wall clock of
	// the whole batch and Buffer the summed per-query peaks — the
	// actual resident footprint of the batch.
	ModeShared Mode = "shared-scan"
	// ModeFanoutAll, ModeFanoutSelective, and ModeFanoutAutomaton
	// measure event routing on the serving path: a query batch executed
	// as one Executor batch with every event fanned to every query
	// (all), signature-routed selective fan-out via per-group trie walks
	// (selective, ExecutorOptions.GroupRouting), or via the batch's
	// merged path automaton (automaton, the serving default). The
	// disjoint-path xmark.FanoutQueries run under the synthetic query
	// name "fanout" in all three modes; the 64-query shared-prefix set
	// (xmark.SharedPrefixQueries) runs under "fanout-wide" in the
	// selective and automaton modes plus the parallel pipeline
	// (ModeFanoutParallel below). Tokens is the summed events delivered
	// across the batch — the quantity selective routing shrinks, gated by
	// CheckFanout, with automaton-vs-selective parity gated by
	// CheckAutomaton.
	ModeFanoutAll       Mode = "fanout-all"
	ModeFanoutSelective Mode = "fanout-selective"
	ModeFanoutAutomaton Mode = "fanout-automaton"
	// ModeFanoutParallel is ModeFanoutAutomaton with the per-group worker
	// pool (ExecutorOptions.ParallelGroups): the scan goroutine keeps
	// tokenizing and running the merged automaton while group evaluation
	// fans out across GOMAXPROCS workers. It runs on the fanout-wide set
	// only — parallelism pays on wide batches, and equivalence is what the
	// row exists to witness: CheckParallelEquivalence holds it to the
	// automaton row's exact output bytes and token counts, and to strictly
	// less wall clock when the snapshot machine has ≥ 4 CPUs.
	ModeFanoutParallel Mode = "fanout-parallel"
	// ModeServedLatency is the open-loop latency measurement of the
	// serving tier: requests are fired at a fixed arrival rate derived
	// from a warmup estimate — independent of completions, so queueing
	// shows up in the tail instead of being hidden by a closed loop —
	// and the row records p50/p99 request latency and achieved
	// queries/sec. Its rows use the synthetic query name "served".
	ModeServedLatency Mode = "served-latency"
	// ModeServedSingle and ModeServedSharded measure the serving tier
	// end to end over HTTP: the benchmark document registered under two
	// names ("x0", "x1") and the full query set executed against both,
	// through one embedded shard worker holding everything (single)
	// versus a fluxrouter over two embedded shards holding one document
	// each (sharded). Their rows use the synthetic query name "served";
	// Output is the summed response bytes, Buffer the summed
	// X-Flux-Peak-Buffer-Bytes trailers, Tokens the summed X-Flux-Tokens
	// trailers. CheckSharded gates that sharding changes none of them.
	ModeServedSingle  Mode = "served-single"
	ModeServedSharded Mode = "served-sharded"
	// ModeMigrateStatic and ModeMigrateLive measure live migration under
	// load: the same fixed query stream against a 2-shard router tier,
	// once over a static topology (static) and once while the document
	// migrates between the shards mid-stream (live). Their rows use the
	// synthetic query name "migrate"; Output/Buffer/Tokens sum the
	// stream's response bytes and stats trailers. CheckMigrate gates
	// that the migration run matches the static run byte for byte and
	// token for token — zero failed queries is implicit, since any
	// non-200 fails the whole run.
	ModeMigrateStatic Mode = "migrate-static"
	ModeMigrateLive   Mode = "migrate-live"
	// ModeStreamStatic and ModeStreamReplay measure the live-ingestion
	// subsystem against its equivalence guarantee: the sweep's queries
	// once as a static shared scan of the document (static), and once as
	// standing subscriptions over the same document replayed in
	// streamChunkBytes chunks through a stream.Hub (replay). Their rows
	// use the synthetic query name "stream"; Output and Buffer sum the
	// per-query output bytes and engine peaks (the replay row's peaks are
	// what admission charged each standing subscription for — the peak
	// resident bytes the snapshot gate holds the streaming path to), and
	// the replay row's P50/P99 are first-result latencies, the time a
	// standing query waited for its first byte. runStream verifies
	// per-query digest equality and first-result-before-end at run time;
	// CheckStreamEquivalence re-verifies output equality on the snapshot.
	ModeStreamStatic Mode = "stream-static"
	ModeStreamReplay Mode = "stream-replay"
	// ModeSkewedSingle and ModeSkewedConverge measure the autonomous
	// rebalancer's payoff under a skewed workload: a hot document takes
	// every request while a cold one sits idle, workers serving one
	// request at a time with a fixed service-time floor (the emulated
	// per-node capacity — ServerOptions.ServiceSlots).
	// The single row serves the burst from one worker owning both
	// documents; the converge row starts the hot document on one shard
	// of a 2-shard tier, lets the rebalancer observe the burst and add a
	// replica on its own, then times the same burst fanning out across
	// both copies. Their rows use the synthetic query name "skewed";
	// CheckSkewedConverge gates that the converged tier beats the single
	// node on wall clock — the whole point of replica fan-out.
	ModeSkewedSingle   Mode = "skewed-single"
	ModeSkewedConverge Mode = "skewed-converge"
)

// SharedQueryName is the Row.Query value of ModeShared rows.
const SharedQueryName = "shared"

// FanoutQueryName is the Row.Query value of fan-out rows over the
// disjoint-path xmark.FanoutQueries.
const FanoutQueryName = "fanout"

// FanoutWideQueryName is the Row.Query value of fan-out rows over the
// 64-query shared-prefix set (xmark.SharedPrefixQueries) — the
// batch shape where shared-prefix dispatch matters most.
const FanoutWideQueryName = "fanout-wide"

// fanoutWideQueries is how many shared-prefix queries the fanout-wide
// rows batch.
const fanoutWideQueries = 64

// ServedQueryName is the Row.Query value of the HTTP serving-tier rows
// (ModeServedSingle / ModeServedSharded).
const ServedQueryName = "served"

// MigrateQueryName is the Row.Query value of the migration-under-load
// rows (ModeMigrateStatic / ModeMigrateLive).
const MigrateQueryName = "migrate"

// StreamQueryName is the Row.Query value of the streaming-ingestion
// rows (ModeStreamStatic / ModeStreamReplay).
const StreamQueryName = "stream"

// SkewedQueryName is the Row.Query value of the skewed-workload
// rebalancing rows (ModeSkewedSingle / ModeSkewedConverge).
const SkewedQueryName = "skewed"

// AllModes lists the standard Figure 4 columns (FluX, Galax stand-in,
// AnonX stand-in).
var AllModes = []Mode{ModeFluX, ModeNaive, ModeProjection}

// Config selects what to run.
type Config struct {
	// SizesMB are the document sizes to sweep (the paper uses 5, 10, 50,
	// 100).
	SizesMB []int
	// Queries restricts the query set (default: all of Figure 4).
	Queries []string
	// Modes restricts the engine columns (default AllModes).
	Modes []Mode
	// Seed feeds the data generator.
	Seed int64
	// MaxBaselineMB skips the in-memory baselines above this document
	// size, reproducing the paper's "- / >500MB" entries without
	// thrashing; 0 means no limit.
	MaxBaselineMB int
	// WorkDir holds the generated documents; defaults to a temp dir.
	WorkDir string
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
	// SharedScan adds one ModeShared row per size: all queries of the
	// sweep in a single shared pass, the serving-path measurement the
	// perf trajectory tracks.
	SharedScan bool
	// Fanout adds the event-routing rows per size: the disjoint-path
	// FanoutQueries as one Executor batch in all three routing modes
	// (all/selective/automaton), plus the 64-query shared-prefix set in
	// the selective, automaton, and parallel modes (query name
	// "fanout-wide"; all-fanout of 64 near-whole-document queries would
	// dominate the sweep's wall clock without informing any invariant).
	Fanout bool
	// Sharded adds one ModeServedSingle and one ModeServedSharded row
	// per size: the sweep's queries over two document registrations,
	// served over HTTP by one worker versus a router over two shards.
	Sharded bool
	// Migrate adds one ModeMigrateStatic and one ModeMigrateLive row
	// per size: a fixed query stream through a 2-shard router, without
	// and with a live document migration racing the stream.
	Migrate bool
	// Percentiles adds one ModeServedLatency row per size: open-loop
	// request latency percentiles against a single embedded worker.
	Percentiles bool
	// Stream adds one ModeStreamStatic and one ModeStreamReplay row per
	// size: the sweep's queries as a static shared scan versus standing
	// subscriptions over the document replayed in chunks through a
	// streaming hub.
	Stream bool
	// Skewed adds one ModeSkewedSingle and one ModeSkewedConverge row
	// per size: a hot-document burst against one capacity-capped worker,
	// versus the same burst against a 2-shard tier after the autonomous
	// rebalancer replicated the hot document on its own.
	Skewed bool
}

// Row is one table cell: a (query, size, mode) measurement.
type Row struct {
	Query   string
	SizeMB  int
	Bytes   int64 // actual document size
	Mode    Mode
	Elapsed time.Duration
	Buffer  int64 // peak buffered/materialized bytes
	Output  int64
	Tokens  int64 // events delivered to queries (fan-out rows)
	Skipped bool  // baseline skipped at this size

	// Latency percentiles and throughput, set by ModeServedLatency rows
	// (zero elsewhere).
	P50 time.Duration
	P99 time.Duration
	QPS float64
}

// Run executes the configured sweep.
func Run(cfg Config) ([]Row, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: a done ctx (an interrupted
// fluxbench, a CI timeout) stops the sweep mid-document instead of
// finishing the remaining cells.
func RunContext(ctx context.Context, cfg Config) ([]Row, error) {
	if len(cfg.SizesMB) == 0 {
		cfg.SizesMB = []int{1, 2, 5}
	}
	if len(cfg.Queries) == 0 {
		cfg.Queries = xmark.QueryNames
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = AllModes
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		d, err := os.MkdirTemp("", "fluxbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		workDir = d
	}

	var rows []Row
	for _, sizeMB := range cfg.SizesMB {
		path, docBytes, err := EnsureDocument(workDir, sizeMB, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, qname := range cfg.Queries {
			queryText, ok := xmark.Queries[qname]
			if !ok {
				return nil, fmt.Errorf("bench: unknown query %q", qname)
			}
			for _, mode := range cfg.Modes {
				row := Row{Query: qname, SizeMB: sizeMB, Bytes: docBytes, Mode: mode}
				if mode != ModeFluX && mode != ModeFluXNoSchema &&
					cfg.MaxBaselineMB > 0 && sizeMB > cfg.MaxBaselineMB {
					row.Skipped = true
					rows = append(rows, row)
					continue
				}
				// Min-of-N like the shared-scan row: single-shot per-query
				// wall times are too noisy to gate the flux-fastest
				// invariant on (CheckFluxFastest).
				for rep := 0; rep < fig4Repeats; rep++ {
					st, elapsed, err := runOne(ctx, queryText, path, mode)
					if err != nil {
						return nil, fmt.Errorf("bench: %s %dMB %s: %w", qname, sizeMB, mode, err)
					}
					if rep == 0 || elapsed < row.Elapsed {
						row.Elapsed = elapsed
					}
					if rep == 0 {
						row.Buffer = st.PeakBufferBytes
						row.Output = st.OutputBytes
					}
				}
				rows = append(rows, row)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-13s %10.2fs %12s buffered\n",
						qname, sizeMB, mode, row.Elapsed.Seconds(), FormatBytes(row.Buffer))
				}
			}
		}
		if cfg.SharedScan {
			row, err := runShared(ctx, cfg.Queries, path, sizeMB, docBytes)
			if err != nil {
				return nil, fmt.Errorf("bench: shared %dMB: %w", sizeMB, err)
			}
			rows = append(rows, row)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-13s %10.2fs %12s buffered\n",
					row.Query, sizeMB, row.Mode, row.Elapsed.Seconds(), FormatBytes(row.Buffer))
			}
		}
		if cfg.Fanout {
			fanoutSets := []struct {
				qname   string
				queries []string
				modes   []Mode
			}{
				{FanoutQueryName, xmark.FanoutQueries,
					[]Mode{ModeFanoutAll, ModeFanoutSelective, ModeFanoutAutomaton}},
				{FanoutWideQueryName, xmark.SharedPrefixQueries(fanoutWideQueries),
					[]Mode{ModeFanoutSelective, ModeFanoutAutomaton, ModeFanoutParallel}},
			}
			for _, set := range fanoutSets {
				for _, mode := range set.modes {
					row, err := runFanout(ctx, path, sizeMB, docBytes, set.qname, set.queries, mode)
					if err != nil {
						return nil, fmt.Errorf("bench: %s %dMB: %w", set.qname, sizeMB, err)
					}
					rows = append(rows, row)
					if cfg.Progress != nil {
						fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-16s %10.2fs %12d events delivered\n",
							row.Query, sizeMB, row.Mode, row.Elapsed.Seconds(), row.Tokens)
					}
				}
			}
		}
		if cfg.Sharded {
			for _, sharded := range []bool{false, true} {
				row, err := runServed(ctx, workDir, path, sizeMB, docBytes, cfg.Queries, sharded)
				if err != nil {
					return nil, fmt.Errorf("bench: served %dMB: %w", sizeMB, err)
				}
				rows = append(rows, row)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-16s %10.2fs %12s output\n",
						row.Query, sizeMB, row.Mode, row.Elapsed.Seconds(), FormatBytes(row.Output))
				}
			}
		}
		if cfg.Percentiles {
			row, err := runPercentiles(ctx, workDir, path, sizeMB, docBytes, cfg.Queries)
			if err != nil {
				return nil, fmt.Errorf("bench: percentiles %dMB: %w", sizeMB, err)
			}
			rows = append(rows, row)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-16s p50 %8.2fms p99 %8.2fms %8.1f qps\n",
					row.Query, sizeMB, row.Mode, float64(row.P50.Microseconds())/1e3,
					float64(row.P99.Microseconds())/1e3, row.QPS)
			}
		}
		if cfg.Migrate {
			for _, live := range []bool{false, true} {
				row, err := runMigrate(ctx, workDir, path, sizeMB, docBytes, cfg.Queries, live)
				if err != nil {
					return nil, fmt.Errorf("bench: migrate %dMB: %w", sizeMB, err)
				}
				rows = append(rows, row)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-16s %10.2fs %12s output\n",
						row.Query, sizeMB, row.Mode, row.Elapsed.Seconds(), FormatBytes(row.Output))
				}
			}
		}
		if cfg.Skewed {
			for _, converge := range []bool{false, true} {
				row, err := runSkewed(ctx, workDir, path, sizeMB, docBytes, cfg.Queries, converge)
				if err != nil {
					return nil, fmt.Errorf("bench: skewed %dMB: %w", sizeMB, err)
				}
				rows = append(rows, row)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-16s %10.2fs %12s output\n",
						row.Query, sizeMB, row.Mode, row.Elapsed.Seconds(), FormatBytes(row.Output))
				}
			}
		}
		if cfg.Stream {
			srows, err := runStream(ctx, path, sizeMB, docBytes, cfg.Queries)
			if err != nil {
				return nil, fmt.Errorf("bench: stream %dMB: %w", sizeMB, err)
			}
			rows = append(rows, srows...)
			if cfg.Progress != nil {
				for _, row := range srows {
					fmt.Fprintf(cfg.Progress, "%-4s %4dMB %-16s %10.2fs %12s buffered\n",
						row.Query, sizeMB, row.Mode, row.Elapsed.Seconds(), FormatBytes(row.Buffer))
				}
			}
		}
	}
	return rows, nil
}

// streamChunkBytes is the replay's write granularity: small enough that
// every benchmark document crosses many chunk boundaries mid-token,
// exercising the scanner's chunk tolerance, without making Write-call
// overhead the measurement.
const streamChunkBytes = 32 << 10

// runStream measures the streaming-ingestion subsystem against its own
// guarantee and returns both rows of the comparison. The static row
// runs the query set as one shared scan of the document, hashing each
// query's output. The replay row opens the same queries as standing
// subscriptions on a stream.Hub, replays the document in
// streamChunkBytes chunks through an ingest, and records the summed
// subscription stats: Output/Buffer/Tokens, plus first-result latencies
// as P50/P99 — the time a standing query waited between Subscribe and
// its first delivered byte. Two invariants are enforced here rather
// than left to the snapshot gate: every query's streamed output must
// hash identically to its static output, and at least one subscription
// must receive its first result before the stream ends — results flow
// as matching subtrees complete, not at end of document.
func runStream(ctx context.Context, docPath string, sizeMB int, docBytes int64, qnames []string) ([]Row, error) {
	staticRow := Row{Query: StreamQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: ModeStreamStatic}
	replayRow := Row{Query: StreamQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: ModeStreamReplay}

	queries := make([]*flux.Query, len(qnames))
	staticSums := make([]hash.Hash, len(qnames))
	ws := make([]io.Writer, len(qnames))
	for i, qname := range qnames {
		q, err := flux.Prepare(xmark.Queries[qname], xmark.DTD)
		if err != nil {
			return nil, err
		}
		queries[i] = q
		staticSums[i] = sha256.New()
		ws[i] = staticSums[i]
	}
	f, err := os.Open(docPath)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	results, err := flux.RunAllContext(ctx, queries, f, flux.Options{}, ws...)
	staticRow.Elapsed = time.Since(start)
	f.Close()
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		staticRow.Buffer += r.Stats.PeakBufferBytes
		staticRow.Output += r.Stats.OutputBytes
		staticRow.Tokens += r.Stats.Tokens
	}

	cat := flux.NewCatalog(flux.CatalogOptions{})
	if err := cat.AddStream("s0", xmark.DTD); err != nil {
		return nil, err
	}
	hub := stream.NewHub(cat, stream.Options{})
	defer hub.Close()
	subs := make([]*stream.Subscription, len(qnames))
	subStarts := make([]time.Time, len(qnames))
	replaySums := make([]hash.Hash, len(qnames))
	for i, qname := range qnames {
		replaySums[i] = sha256.New()
		subStarts[i] = time.Now()
		sub, err := hub.Subscribe(ctx, "s0", xmark.Queries[qname], replaySums[i], stream.PolicyBlock)
		if err != nil {
			return nil, err
		}
		subs[i] = sub
	}

	ing, err := hub.StartIngest(ctx, "s0")
	if err != nil {
		return nil, err
	}
	f, err = os.Open(docPath)
	if err != nil {
		ing.Abort(err)
		return nil, err
	}
	start = time.Now()
	_, err = io.CopyBuffer(ing, f, make([]byte, streamChunkBytes))
	f.Close()
	if err != nil {
		ing.Abort(err)
		return nil, err
	}
	if err := ing.Close(); err != nil {
		return nil, err
	}
	streamEnd := time.Now()
	replayRow.Elapsed = streamEnd.Sub(start)

	var lats []time.Duration
	early := 0
	for i, sub := range subs {
		<-sub.Done()
		if err := sub.Err(); err != nil {
			return nil, fmt.Errorf("stream %s: %w", qnames[i], err)
		}
		st := sub.Stats()
		replayRow.Output += st.OutputBytes
		replayRow.Buffer += st.PeakBufferBytes
		replayRow.Tokens += st.Tokens
		if st.FirstResult > 0 {
			lats = append(lats, st.FirstResult)
			if subStarts[i].Add(st.FirstResult).Before(streamEnd) {
				early++
			}
		}
		// Done has closed, so the drain goroutine's writes to the hash
		// are complete and reading the sum is race-free.
		if !bytes.Equal(replaySums[i].Sum(nil), staticSums[i].Sum(nil)) {
			return nil, fmt.Errorf("stream %s: streamed output differs from static serving", qnames[i])
		}
	}
	if early == 0 {
		return nil, fmt.Errorf("stream: no subscription received a result before end of stream")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	replayRow.P50 = lats[len(lats)/2]
	replayRow.P99 = lats[min(len(lats)-1, len(lats)*99/100)]
	return []Row{staticRow, replayRow}, nil
}

// migrateWaves is how many waves of the query set the migration rows
// stream; the live row's migration races the middle wave.
const migrateWaves = 3

// runMigrate measures live migration under load: document "m0" starts
// on shard 0 of a 2-shard router tier, a fixed stream of migrateWaves
// waves of the query set runs against it, and in live mode a migration
// to shard 1 is fired concurrently with the second wave. Every request
// must succeed; Output/Buffer/Tokens sum all waves' bodies and stats
// trailers and must match the static run exactly (CheckMigrate gates
// this in CI) — migration must be invisible to queries.
func runMigrate(ctx context.Context, workDir, docPath string, sizeMB int, docBytes int64, qnames []string, live bool) (Row, error) {
	mode := ModeMigrateStatic
	if live {
		mode = ModeMigrateLive
	}
	row := Row{Query: MigrateQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: mode}

	dtdPath := filepath.Join(workDir, "xmark.dtd")
	if err := os.WriteFile(dtdPath, []byte(xmark.DTD), 0o644); err != nil {
		return row, err
	}
	m, err := shard.NewMapFromPlacement(map[string][]int{"m0": {0}}, 2)
	if err != nil {
		return row, err
	}
	workers, err := shard.SpawnEmbedded(m, []shard.DocSpec{{Name: "m0", DocPath: docPath, DTDPath: dtdPath}},
		shard.EmbeddedOptions{
			Executor: flux.ExecutorOptions{Window: 2 * time.Millisecond, MaxBatch: len(qnames)},
			Admin:    true, // migration needs the workers' install/retire/fetch
		})
	if err != nil {
		return row, err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	rt, err := shard.NewRouter(shard.RouterOptions{Map: m, Shards: shard.Addrs(workers), HealthInterval: -1, Admin: true})
	if err != nil {
		return row, err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	hs := &http.Server{Handler: rt}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	migDone := make(chan error, 1)
	start := time.Now()
	for wave := 0; wave < migrateWaves; wave++ {
		if live && wave == 1 {
			// Race the migration against the middle wave. Whatever the
			// interleaving, totals must match the static run.
			go func() {
				_, err := rt.MigrateDoc(ctx, "m0", 0, 1)
				migDone <- err
			}()
		}
		results := make([]servedResult, len(qnames))
		var wg sync.WaitGroup
		for qi, qname := range qnames {
			wg.Add(1)
			go func(slot int, queryText string) {
				defer wg.Done()
				results[slot] = servedRequest(ctx, base, "m0", queryText)
			}(qi, xmark.Queries[qname])
		}
		wg.Wait()
		for _, r := range results {
			if r.err != nil {
				return row, fmt.Errorf("%s wave %d: %w", mode, wave, r.err)
			}
			row.Output += r.output
			row.Buffer += r.buffer
			row.Tokens += r.tokens
		}
	}
	if live {
		if err := <-migDone; err != nil {
			return row, fmt.Errorf("migration failed: %w", err)
		}
		if owners := rt.Topology().View().Owners("m0"); len(owners) != 1 || owners[0] != 1 {
			return row, fmt.Errorf("migration did not move m0: owners %v", owners)
		}
	}
	row.Elapsed = time.Since(start)
	return row, nil
}

// skewedWave is how many concurrent hot-document requests one skewed
// burst fires: enough to saturate a single capacity-capped worker so
// the replica's extra capacity shows up in wall clock.
const skewedWave = 8

// skewedConvergeTimeout bounds how long the converge row waits for the
// rebalancer to replicate the hot document before the run fails.
const skewedConvergeTimeout = 30 * time.Second

// skewedHealthInterval is the skewed tier's health-probe period: short
// enough that worker-reported admission load stays fresh across bursts
// (the probe feeds replica scoring) without probe traffic mattering.
const skewedHealthInterval = 20 * time.Millisecond

// skewedServiceFloor is the emulated per-request service time of a
// skewed-tier worker: long enough to dominate the scan's CPU time at
// every benchmark size, so the rows measure queueing on node capacity
// (which replication halves) rather than single-host CPU contention.
const skewedServiceFloor = 25 * time.Millisecond

// runSkewed measures what the autonomous rebalancer buys under a
// skewed workload. Documents "hot" and "cold" (both the benchmark
// document) are served by workers gated to one request at a time with
// a skewedServiceFloor wall-clock floor each, so a hot burst
// serializes on a single owner — the in-process emulation of a
// saturated node, whose queueing (unlike raw scan CPU on a small host)
// a second replica genuinely halves. The single row
// times skewedWave concurrent hot requests against one worker owning
// both documents. The converge row starts hot on shard 0 of a 2-shard
// router tier, runs a rebalancer (tight interval, threshold 1), bursts
// hot traffic until the rebalancer has replicated the document onto
// shard 1 on its own authority, stops the rebalancer, and then times
// the same burst fanning out across both replicas. Elapsed is the best
// of sharedRepeats bursts; Output/Buffer/Tokens are summed from the
// first burst. CheckSkewedConverge gates converge < single per size.
func runSkewed(ctx context.Context, workDir, docPath string, sizeMB int, docBytes int64, qnames []string, converge bool) (Row, error) {
	mode := ModeSkewedSingle
	if converge {
		mode = ModeSkewedConverge
	}
	row := Row{Query: SkewedQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: mode}

	dtdPath := filepath.Join(workDir, "xmark.dtd")
	if err := os.WriteFile(dtdPath, []byte(xmark.DTD), 0o644); err != nil {
		return row, err
	}
	specs := []shard.DocSpec{
		{Name: "hot", DocPath: docPath, DTDPath: dtdPath},
		{Name: "cold", DocPath: docPath, DTDPath: dtdPath},
	}
	placement := map[string][]int{"hot": {0}, "cold": {0}}
	shardCount := 1
	if converge {
		placement["cold"] = []int{1}
		shardCount = 2
	}
	m, err := shard.NewMapFromPlacement(placement, shardCount)
	if err != nil {
		return row, err
	}
	workers, err := shard.SpawnEmbedded(m, specs, shard.EmbeddedOptions{
		Executor: flux.ExecutorOptions{Window: time.Millisecond, MaxBatch: 1},
		// Each worker serves one request at a time with a wall-clock
		// service floor — the emulated per-node capacity. Requests queue
		// on a saturated worker exactly as on a saturated node, which is
		// the contention replication exists to relieve, and the floors of
		// two workers overlap in wall clock even on a single-CPU host.
		ServiceSlots:   1,
		MinServiceTime: skewedServiceFloor,
		Admin:          converge, // the rebalancer rides install/retire/fetch
	})
	if err != nil {
		return row, err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	rt, err := shard.NewRouter(shard.RouterOptions{
		Map: m, Shards: shard.Addrs(workers),
		HealthInterval: skewedHealthInterval, // rebalance targets must probe live
		Admin:          converge,
	})
	if err != nil {
		return row, err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	hs := &http.Server{Handler: rt}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Every request runs the sweep's first query: the rows measure
	// placement and queueing, not query semantics, and a cheap query
	// keeps scan CPU inside the service floor at every document size —
	// otherwise single-host CPU contention, which no placement can
	// relieve, would drown the signal the gate checks.
	queryText := xmark.Queries[qnames[0]]

	burst := func() (time.Duration, []servedResult, error) {
		results := make([]servedResult, skewedWave)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < skewedWave; i++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				results[slot] = servedRequest(ctx, base, "hot", queryText)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, r := range results {
			if r.err != nil {
				return 0, nil, r.err
			}
		}
		return elapsed, results, nil
	}

	if converge {
		// The tier converges on its own: bursts build the router's load
		// signal, the rebalancer sees the hot document dominating its
		// shard and installs the replica. The run does not place it.
		rb, err := shard.NewRebalancer(rt, shard.RebalancerOptions{
			Interval:  5 * time.Millisecond,
			Threshold: 1,
		})
		if err != nil {
			return row, err
		}
		deadline := time.Now().Add(skewedConvergeTimeout)
		for len(rt.Topology().View().Owners("hot")) < 2 {
			if time.Now().After(deadline) {
				rb.Close()
				return row, fmt.Errorf("rebalancer did not replicate the hot document within %v", skewedConvergeTimeout)
			}
			if _, _, err := burst(); err != nil {
				rb.Close()
				return row, err
			}
		}
		// Freeze the converged topology so the timed bursts measure the
		// fan-out, not further control-plane motion.
		rb.Close()
	}

	for rep := 0; rep < sharedRepeats; rep++ {
		// Let the health probes observe the tier idle first: a stale
		// busy reading from the previous burst would steer the whole
		// wave to one replica, and the wave is what's being measured.
		time.Sleep(3 * skewedHealthInterval)
		elapsed, results, err := burst()
		if err != nil {
			return row, err
		}
		if rep == 0 || elapsed < row.Elapsed {
			row.Elapsed = elapsed
		}
		if rep == 0 {
			for _, r := range results {
				row.Output += r.output
				row.Buffer += r.buffer
				row.Tokens += r.tokens
			}
		}
	}
	return row, nil
}

// runServed measures the serving tier end to end: the benchmark
// document registered as two catalog documents ("x0", "x1") and every
// query of the sweep executed against both over HTTP — through one
// embedded worker holding both documents (single-node fluxd), or
// through a fluxrouter over two embedded shards holding one document
// each. Elapsed is the best wall clock of sharedRepeats waves of
// concurrent requests; Output/Buffer/Tokens are summed from the
// response bodies and stats trailers on the first wave (they are
// deterministic — CheckSharded holds the sharded row to the single
// row's values).
func runServed(ctx context.Context, workDir, docPath string, sizeMB int, docBytes int64, qnames []string, sharded bool) (Row, error) {
	mode := ModeServedSingle
	if sharded {
		mode = ModeServedSharded
	}
	row := Row{Query: ServedQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: mode}

	dtdPath := filepath.Join(workDir, "xmark.dtd")
	if err := os.WriteFile(dtdPath, []byte(xmark.DTD), 0o644); err != nil {
		return row, err
	}
	specs := []shard.DocSpec{
		{Name: "x0", DocPath: docPath, DTDPath: dtdPath},
		{Name: "x1", DocPath: docPath, DTDPath: dtdPath},
	}
	placement := map[string][]int{"x0": {0}, "x1": {0}}
	shardCount := 1
	if sharded {
		placement["x1"] = []int{1}
		shardCount = 2
	}
	m, err := shard.NewMapFromPlacement(placement, shardCount)
	if err != nil {
		return row, err
	}
	workers, err := shard.SpawnEmbedded(m, specs, shard.EmbeddedOptions{
		Executor: flux.ExecutorOptions{Window: 30 * time.Second, MaxBatch: len(qnames)},
	})
	if err != nil {
		return row, err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	base := workers[0].Addr
	if sharded {
		rt, rerr := shard.NewRouter(shard.RouterOptions{Map: m, Shards: shard.Addrs(workers), HealthInterval: -1})
		if rerr != nil {
			return row, rerr
		}
		defer rt.Close()
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return row, lerr
		}
		hs := &http.Server{Handler: rt}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	docs := []string{"x0", "x1"}
	for rep := 0; rep < sharedRepeats; rep++ {
		results := make([]servedResult, len(docs)*len(qnames))
		var wg sync.WaitGroup
		start := time.Now()
		for di, doc := range docs {
			for qi, qname := range qnames {
				wg.Add(1)
				go func(slot int, doc, queryText string) {
					defer wg.Done()
					results[slot] = servedRequest(ctx, base, doc, queryText)
				}(di*len(qnames)+qi, doc, xmark.Queries[qname])
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, r := range results {
			if r.err != nil {
				return row, r.err
			}
		}
		if rep == 0 || elapsed < row.Elapsed {
			row.Elapsed = elapsed
		}
		if rep == 0 {
			for _, r := range results {
				row.Output += r.output
				row.Buffer += r.buffer
				row.Tokens += r.tokens
			}
		}
	}
	return row, nil
}

// servedResult is one HTTP request's measurement.
type servedResult struct {
	output, buffer, tokens int64
	shard                  string // X-Flux-Shard: which worker served it
	err                    error
}

// servedRequest posts one query and folds the streamed body and stats
// trailers into a measurement.
func servedRequest(ctx context.Context, base, doc, queryText string) (r servedResult) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/query?doc="+doc, strings.NewReader(queryText))
	if err != nil {
		r.err = err
		return r
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		r.err = err
		return r
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		r.err = err
		return r
	}
	if resp.StatusCode != http.StatusOK {
		r.err = fmt.Errorf("served %s: status %d", doc, resp.StatusCode)
		return r
	}
	r.output = n
	r.shard = resp.Header.Get("X-Flux-Shard")
	r.buffer, _ = strconv.ParseInt(resp.Trailer.Get("X-Flux-Peak-Buffer-Bytes"), 10, 64)
	r.tokens, _ = strconv.ParseInt(resp.Trailer.Get("X-Flux-Tokens"), 10, 64)
	return r
}

// fig4Repeats is how many times each per-query Figure 4 cell runs; the
// row records the fastest, for the same reason as sharedRepeats below.
const fig4Repeats = 3

// sharedRepeats is how many times the shared-scan batch runs; the row
// records the fastest. A single wall-clock sample of a small document
// is too noisy to gate CI on at a 20% threshold — min-of-N damps
// scheduler jitter while staying comparable across runs.
const sharedRepeats = 3

// percentileRequests is the number of open-loop requests per
// ModeServedLatency row: enough samples for a meaningful p99 (the top
// sample) without making the sweep interactive-slow.
const percentileRequests = 64

// percentileRepeats is how many open-loop passes the served-latency row
// runs, keeping the elementwise best (min p50, min p99, max qps).
// Contention from outside the process only ever inflates a pass, so the
// minima are the tier's own latency — the same min-of-N discipline as
// sharedRepeats and the Figure 4 cells.
const percentileRepeats = 3

// runPercentiles measures serving-tier request latency open-loop: one
// embedded worker holds the document, a warmup pass estimates the mean
// service time, and percentileRequests requests are then fired at a
// fixed arrival interval of serviceTime/0.7 (≈70% utilization) — on
// schedule whether or not earlier requests have completed, so queueing
// delay lands in the measured tail exactly as it would for real
// clients. The row records p50/p99 latency and achieved queries/sec.
func runPercentiles(ctx context.Context, workDir, docPath string, sizeMB int, docBytes int64, qnames []string) (Row, error) {
	row := Row{Query: ServedQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: ModeServedLatency}

	dtdPath := filepath.Join(workDir, "xmark.dtd")
	if err := os.WriteFile(dtdPath, []byte(xmark.DTD), 0o644); err != nil {
		return row, err
	}
	specs := []shard.DocSpec{{Name: "x0", DocPath: docPath, DTDPath: dtdPath}}
	m, err := shard.NewMapFromPlacement(map[string][]int{"x0": {0}}, 1)
	if err != nil {
		return row, err
	}
	workers, err := shard.SpawnEmbedded(m, specs, shard.EmbeddedOptions{
		// A real serving window, unlike the served rows' dispatch-on-full
		// batching: requests here arrive paced, not as one burst, so a
		// long window would stall every lone request instead of batching.
		Executor: flux.ExecutorOptions{Window: 2 * time.Millisecond, MaxBatch: len(qnames)},
	})
	if err != nil {
		return row, err
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	base := workers[0].Addr

	// Warmup, which also estimates service time. Take the fastest of
	// percentileRepeats rounds per query: the arrival interval below is
	// derived from this estimate, and queueing makes p50 acutely
	// sensitive to the arrival rate — a noisy one-shot estimate would
	// make runs measure different workloads and be incomparable.
	var service time.Duration
	for round := 0; round < percentileRepeats; round++ {
		warmStart := time.Now()
		for _, qname := range qnames {
			if r := servedRequest(ctx, base, "x0", xmark.Queries[qname]); r.err != nil {
				return row, r.err
			}
		}
		est := time.Since(warmStart) / time.Duration(len(qnames))
		if round == 0 || est < service {
			service = est
		}
	}
	interval := service * 10 / 7

	// Best of percentileRepeats open-loop passes, elementwise: external
	// load can only inflate a pass's percentiles, so the minima estimate
	// the tier's own latency — the same min-of-N discipline the Figure 4
	// cells use, without which a 20% CI gate on p50/p99 flaps on shared
	// runners.
	for rep := 0; rep < percentileRepeats; rep++ {
		lats := make([]time.Duration, percentileRequests)
		errs := make([]error, percentileRequests)
		var wg sync.WaitGroup
		start := time.Now()
		tick := time.NewTicker(interval)
		for i := 0; i < percentileRequests; i++ {
			wg.Add(1)
			go func(slot int, queryText string) {
				defer wg.Done()
				reqStart := time.Now()
				r := servedRequest(ctx, base, "x0", queryText)
				lats[slot] = time.Since(reqStart)
				errs[slot] = r.err
			}(i, xmark.Queries[qnames[i%len(qnames)]])
			if i < percentileRequests-1 {
				select {
				case <-tick.C:
				case <-ctx.Done():
					tick.Stop()
					wg.Wait()
					return row, ctx.Err()
				}
			}
		}
		wg.Wait()
		tick.Stop()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return row, err
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50 := lats[len(lats)/2]
		p99 := lats[min(len(lats)-1, len(lats)*99/100)]
		qps := float64(percentileRequests) / elapsed.Seconds()
		if rep == 0 || p50 < row.P50 {
			row.P50 = p50
		}
		if rep == 0 || p99 < row.P99 {
			row.P99 = p99
		}
		if rep == 0 || qps > row.QPS {
			row.QPS = qps
		}
		if rep == 0 || elapsed < row.Elapsed {
			row.Elapsed = elapsed
		}
	}
	return row, nil
}

// runShared measures the serving path: every query of the sweep compiled
// once and executed in a single shared pass of the document; elapsed is
// the best of sharedRepeats passes.
func runShared(ctx context.Context, qnames []string, docPath string, sizeMB int, docBytes int64) (Row, error) {
	row := Row{Query: SharedQueryName, SizeMB: sizeMB, Bytes: docBytes, Mode: ModeShared}
	queries := make([]*flux.Query, len(qnames))
	ws := make([]io.Writer, len(qnames))
	for i, qname := range qnames {
		q, err := flux.Prepare(xmark.Queries[qname], xmark.DTD)
		if err != nil {
			return row, err
		}
		queries[i] = q
		ws[i] = io.Discard
	}
	for rep := 0; rep < sharedRepeats; rep++ {
		f, err := os.Open(docPath)
		if err != nil {
			return row, err
		}
		start := time.Now()
		results, err := flux.RunAllContext(ctx, queries, f, flux.Options{}, ws...)
		elapsed := time.Since(start)
		f.Close()
		if err != nil {
			return row, err
		}
		if rep == 0 || elapsed < row.Elapsed {
			row.Elapsed = elapsed
		}
		if rep == 0 {
			// Buffering and output are deterministic; record them once.
			for _, r := range results {
				if r.Err != nil {
					return row, r.Err
				}
				row.Buffer += r.Stats.PeakBufferBytes
				row.Output += r.Stats.OutputBytes
			}
		}
	}
	return row, nil
}

// runFanout measures event routing on the serving path: queries
// submitted concurrently to one Executor batch (MaxBatch equal to the
// query count, so exactly one dispatch decision) under one routing mode
// — all-fanout, per-group selective walks (GroupRouting), or the merged
// path automaton (the default). Elapsed is the best of sharedRepeats
// batch wall-clocks; Tokens (summed events delivered) and Buffer
// (summed per-query peaks) are deterministic and recorded once.
func runFanout(ctx context.Context, docPath string, sizeMB int, docBytes int64, qname string, queries []string, mode Mode) (Row, error) {
	row := Row{Query: qname, SizeMB: sizeMB, Bytes: docBytes, Mode: mode}

	cat := flux.NewCatalog(flux.CatalogOptions{})
	if err := cat.Add("doc", docPath, xmark.DTD); err != nil {
		return row, err
	}
	ex, err := flux.NewExecutor(cat, flux.ExecutorOptions{
		Window:                 30 * time.Second, // dispatch on MaxBatch, not the window
		MaxBatch:               len(queries),
		DisableSelectiveFanout: mode == ModeFanoutAll,
		GroupRouting:           mode == ModeFanoutSelective,
		ParallelGroups:         mode == ModeFanoutParallel,
	})
	if err != nil {
		return row, err
	}
	for rep := 0; rep < sharedRepeats; rep++ {
		results := make([]flux.ExecResult, len(queries))
		errs := make([]error, len(queries))
		var wg sync.WaitGroup
		start := time.Now()
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				results[i], errs[i] = ex.ExecuteContext(ctx, "doc", q, io.Discard)
			}(i, q)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return row, err
			}
		}
		if rep == 0 || elapsed < row.Elapsed {
			row.Elapsed = elapsed
		}
		if rep == 0 {
			for _, r := range results {
				row.Tokens += r.Stats.Tokens
				row.Buffer += r.Stats.PeakBufferBytes
				row.Output += r.Stats.OutputBytes
			}
		}
	}
	return row, nil
}

// EnsureDocument generates (or reuses) the benchmark document of the
// requested size in dir and returns its path and byte size.
func EnsureDocument(dir string, sizeMB int, seed int64) (string, int64, error) {
	path := filepath.Join(dir, fmt.Sprintf("xmark-%dmb-seed%d.xml", sizeMB, seed))
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		return path, fi.Size(), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	n, err := xmark.Generate(f, xmark.GenOptions{
		Scale: xmark.ScaleForBytes(int64(sizeMB) << 20),
		Seed:  seed,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", 0, err
	}
	return path, n, nil
}

func runOne(ctx context.Context, queryText, docPath string, mode Mode) (flux.Stats, time.Duration, error) {
	var q *flux.Query
	var err error
	if mode == ModeFluXNoSchema {
		q, err = flux.PrepareUnscheduled(queryText, xmark.DTD)
	} else {
		q, err = flux.Prepare(queryText, xmark.DTD)
	}
	if err != nil {
		return flux.Stats{}, 0, err
	}
	opt := flux.Options{}
	switch mode {
	case ModeNaive:
		opt.Engine = flux.Naive
	case ModeProjection:
		opt.Engine = flux.Projection
	}
	f, err := os.Open(docPath)
	if err != nil {
		return flux.Stats{}, 0, err
	}
	defer f.Close()
	start := time.Now()
	st, err := q.RunContext(ctx, f, io.Discard, opt)
	return st, time.Since(start), err
}

// FormatBytes renders a byte count the way Figure 4 does (0, 4.66k,
// 3.16M, ...).
func FormatBytes(n int64) string {
	switch {
	case n < 1000:
		return fmt.Sprintf("%d", n)
	case n < 1_000_000:
		return fmt.Sprintf("%.2fk", float64(n)/1000)
	default:
		return fmt.Sprintf("%.2fM", float64(n)/1_000_000)
	}
}

// FormatTable renders rows in the layout of the paper's Figure 4: one
// block per query, one line per size, one "time/memory" column per mode.
func FormatTable(rows []Row, modes []Mode) string {
	if len(modes) == 0 {
		modes = AllModes
	}
	type key struct {
		query  string
		sizeMB int
	}
	inModes := make(map[Mode]bool, len(modes))
	for _, m := range modes {
		inModes[m] = true
	}
	cells := make(map[key]map[Mode]Row)
	var queries []string
	seenQ := map[string]bool{}
	sizesSet := map[int]bool{}
	for _, r := range rows {
		if !inModes[r.Mode] {
			continue // e.g. shared-scan rows, which have their own shape
		}
		k := key{r.Query, r.SizeMB}
		if cells[k] == nil {
			cells[k] = make(map[Mode]Row)
		}
		cells[k][r.Mode] = r
		if !seenQ[r.Query] {
			seenQ[r.Query] = true
			queries = append(queries, r.Query)
		}
		sizesSet[r.SizeMB] = true
	}
	var sizes []int
	for s := range sizesSet {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %6s", "query", "size")
	for _, m := range modes {
		fmt.Fprintf(&b, " | %24s", string(m)+" (time/mem)")
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 14+27*len(modes)) + "\n")
	for _, q := range queries {
		for _, s := range sizes {
			row, ok := cells[key{q, s}]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-6s %4dMB", q, s)
			for _, m := range modes {
				r, ok := row[m]
				switch {
				case !ok:
					fmt.Fprintf(&b, " | %24s", "n/a")
				case r.Skipped:
					fmt.Fprintf(&b, " | %24s", "- / skipped")
				default:
					fmt.Fprintf(&b, " | %13.2fs /%8s", r.Elapsed.Seconds(), FormatBytes(r.Buffer))
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

package bench

import (
	"strings"
	"testing"
)

func TestRunTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("generates documents")
	}
	dir := t.TempDir()
	rows, err := Run(Config{
		SizesMB: []int{1},
		Queries: []string{"q1", "q20"},
		Modes:   []Mode{ModeFluX, ModeNaive},
		Seed:    1,
		WorkDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Skipped {
			t.Errorf("row %+v skipped unexpectedly", r)
		}
		if r.Output == 0 {
			t.Errorf("%s/%s produced no output", r.Query, r.Mode)
		}
		if r.Mode == ModeNaive && r.Buffer < r.Bytes/2 {
			t.Errorf("naive buffered %d of %d bytes; accounting broken", r.Buffer, r.Bytes)
		}
		if r.Query == "q1" && r.Mode == ModeFluX && r.Buffer != 0 {
			t.Errorf("flux q1 buffered %d bytes, want 0", r.Buffer)
		}
	}
	table := FormatTable(rows, []Mode{ModeFluX, ModeNaive})
	for _, want := range []string{"q1", "q20", "flux (time/mem)", "naive (time/mem)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunSkipsBaselinesAboveLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("generates documents")
	}
	rows, err := Run(Config{
		SizesMB:       []int{1},
		Queries:       []string{"q13"},
		Modes:         []Mode{ModeFluX, ModeNaive},
		Seed:          1,
		MaxBaselineMB: 0, // unlimited
		WorkDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	rows2, err := Run(Config{
		SizesMB:       []int{2},
		Queries:       []string{"q13"},
		Modes:         []Mode{ModeFluX, ModeNaive},
		Seed:          1,
		MaxBaselineMB: 1,
		WorkDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var naiveSkipped, fluxSkipped bool
	for _, r := range rows2 {
		if r.Mode == ModeNaive && r.Skipped {
			naiveSkipped = true
		}
		if r.Mode == ModeFluX && r.Skipped {
			fluxSkipped = true
		}
	}
	if !naiveSkipped {
		t.Error("naive baseline not skipped above MaxBaselineMB")
	}
	if fluxSkipped {
		t.Error("flux engine must never be skipped")
	}
	table := FormatTable(rows2, []Mode{ModeFluX, ModeNaive})
	if !strings.Contains(table, "skipped") {
		t.Errorf("table should render skipped cells:\n%s", table)
	}
}

func TestRunAblationMode(t *testing.T) {
	if testing.Short() {
		t.Skip("generates documents")
	}
	rows, err := Run(Config{
		SizesMB: []int{1},
		Queries: []string{"q20"},
		Modes:   []Mode{ModeFluX, ModeFluXNoSchema},
		Seed:    1,
		WorkDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sched, unsched int64
	for _, r := range rows {
		switch r.Mode {
		case ModeFluX:
			sched = r.Buffer
		case ModeFluXNoSchema:
			unsched = r.Buffer
		}
	}
	// Scheduling buffers one person; the fallback buffers every selected
	// person until end of stream.
	if sched == 0 || unsched == 0 || sched*10 > unsched {
		t.Errorf("ablation shape wrong: scheduled %d vs unscheduled %d", sched, unsched)
	}
}

// TestRunMigrateRows: the migration-under-load rows stream the same
// fixed query set with and without a live migration racing it, satisfy
// the CheckMigrate invariant (identical output and tokens), and the
// live run really moves the document.
func TestRunMigrateRows(t *testing.T) {
	if testing.Short() {
		t.Skip("generates documents and spins up HTTP servers")
	}
	rows, err := Run(Config{
		SizesMB: []int{1},
		Queries: []string{"q1", "q20"},
		Modes:   []Mode{ModeFluX},
		Seed:    1,
		WorkDir: t.TempDir(),
		Migrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var static, live *Row
	for i := range rows {
		switch rows[i].Mode {
		case ModeMigrateStatic:
			static = &rows[i]
		case ModeMigrateLive:
			live = &rows[i]
		}
	}
	if static == nil || live == nil {
		t.Fatalf("missing migrate rows in %+v", rows)
	}
	if static.Output == 0 || static.Tokens == 0 {
		t.Fatalf("static row measured nothing: %+v", *static)
	}
	if live.Output != static.Output || live.Tokens != static.Tokens {
		t.Fatalf("migration changed the stream: static %+v, live %+v", *static, *live)
	}
	snapRows := []SnapshotRow{
		{Query: MigrateQueryName, SizeMB: 1, Mode: ModeMigrateStatic, OutputBytes: static.Output, TokensDelivered: static.Tokens},
		{Query: MigrateQueryName, SizeMB: 1, Mode: ModeMigrateLive, OutputBytes: live.Output, TokensDelivered: live.Tokens},
	}
	if err := CheckMigrate(&Snapshot{Rows: snapRows}); err != nil {
		t.Fatalf("CheckMigrate on fresh rows: %v", err)
	}
	if err := CheckMigrate(&Snapshot{Rows: []SnapshotRow{
		{Query: MigrateQueryName, SizeMB: 1, Mode: ModeMigrateStatic, OutputBytes: 10, TokensDelivered: 5},
		{Query: MigrateQueryName, SizeMB: 1, Mode: ModeMigrateLive, OutputBytes: 9, TokensDelivered: 5},
	}}); err == nil {
		t.Fatal("CheckMigrate accepted diverging output")
	}
}

// TestRunStreamRows: the streaming-ingestion rows run the same query
// set as a static shared scan and as standing subscriptions over a
// chunked replay, produce identical output (runStream enforces digest
// equality internally), and record first-result latencies on the
// replay row.
func TestRunStreamRows(t *testing.T) {
	if testing.Short() {
		t.Skip("generates documents")
	}
	rows, err := Run(Config{
		SizesMB: []int{1},
		Queries: []string{"q1", "q8", "q20"},
		Modes:   []Mode{ModeFluX},
		Seed:    1,
		WorkDir: t.TempDir(),
		Stream:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var static, replay *Row
	for i := range rows {
		switch rows[i].Mode {
		case ModeStreamStatic:
			static = &rows[i]
		case ModeStreamReplay:
			replay = &rows[i]
		}
	}
	if static == nil || replay == nil {
		t.Fatalf("missing stream rows in %+v", rows)
	}
	if static.Output == 0 {
		t.Fatalf("static row measured nothing: %+v", *static)
	}
	if replay.Output != static.Output {
		t.Fatalf("chunked replay changed the output: static %+v, replay %+v", *static, *replay)
	}
	if replay.P50 <= 0 || replay.P99 < replay.P50 {
		t.Fatalf("replay first-result percentiles malformed: %+v", *replay)
	}
	snapRows := []SnapshotRow{
		{Query: StreamQueryName, SizeMB: 1, Mode: ModeStreamStatic, OutputBytes: static.Output},
		{Query: StreamQueryName, SizeMB: 1, Mode: ModeStreamReplay, OutputBytes: replay.Output},
	}
	if err := CheckStreamEquivalence(&Snapshot{Rows: snapRows}); err != nil {
		t.Fatalf("CheckStreamEquivalence on fresh rows: %v", err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		702:        "702",
		4660:       "4.66k",
		46600:      "46.60k",
		3_160_000:  "3.16M",
		32_250_000: "32.25M",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestRunServedRows: the serving-tier rows measure the same query set
// through one worker and through a 2-shard router, and satisfy the
// CheckSharded invariant — identical output and tokens either way.
func TestRunServedRows(t *testing.T) {
	if testing.Short() {
		t.Skip("generates documents and spins up HTTP servers")
	}
	rows, err := Run(Config{
		SizesMB: []int{1},
		Queries: []string{"q1", "q20"},
		Modes:   []Mode{ModeFluX},
		Seed:    1,
		WorkDir: t.TempDir(),
		Sharded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var single, sharded *Row
	for i := range rows {
		switch rows[i].Mode {
		case ModeServedSingle:
			single = &rows[i]
		case ModeServedSharded:
			sharded = &rows[i]
		}
	}
	if single == nil || sharded == nil {
		t.Fatalf("missing served rows in %+v", rows)
	}
	if single.Output == 0 || single.Tokens == 0 {
		t.Fatalf("single row measured nothing: %+v", *single)
	}
	if sharded.Output != single.Output || sharded.Tokens != single.Tokens {
		t.Fatalf("sharded row diverged: single %+v, sharded %+v", *single, *sharded)
	}
	snapRows := []SnapshotRow{
		{Query: ServedQueryName, SizeMB: 1, Mode: ModeServedSingle, OutputBytes: single.Output, TokensDelivered: single.Tokens},
		{Query: ServedQueryName, SizeMB: 1, Mode: ModeServedSharded, OutputBytes: sharded.Output, TokensDelivered: sharded.Tokens},
	}
	if err := CheckSharded(&Snapshot{Rows: snapRows}); err != nil {
		t.Fatalf("CheckSharded on fresh rows: %v", err)
	}
}

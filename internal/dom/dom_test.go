package dom

import (
	"strings"
	"testing"

	"flux/internal/sax"
	"flux/internal/xq"
)

const bibDoc = `<bib>
<book><title>TCP/IP Illustrated</title><author>Stevens</author><publisher>Addison-Wesley</publisher><year>1994</year></book>
<book><title>Advanced Programming</title><author>Stevens</author><publisher>Addison-Wesley</publisher><year>1992</year></book>
<book><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><publisher>Morgan Kaufmann</publisher><year>2000</year></book>
</bib>`

func evalStr(t *testing.T, query, doc string) string {
	t.Helper()
	var sb strings.Builder
	_, err := RunNaive(xq.MustParse(query), strings.NewReader(doc), &sb,
		sax.Options{SkipWhitespaceText: true})
	if err != nil {
		t.Fatalf("RunNaive: %v", err)
	}
	return sb.String()
}

func TestEvalBasicOutputs(t *testing.T) {
	cases := []struct{ query, want string }{
		{`hello`, `hello`},
		{`{ $ROOT/bib/book/title }`,
			`<title>TCP/IP Illustrated</title><title>Advanced Programming</title><title>Data on the Web</title>`},
		{`{ for $b in /bib/book return <t> { $b/year } </t> }`,
			`<t><year>1994</year></t><t><year>1992</year></t><t><year>2000</year></t>`},
		{`{ for $b in /bib/book where $b/year > 1993 return { $b/title } }`,
			`<title>TCP/IP Illustrated</title><title>Data on the Web</title>`},
		{`{ for $b in /bib/book where $b/author = 'Buneman' return { $b/title } }`,
			`<title>Data on the Web</title>`},
		{`{ if exists $ROOT/bib/book then yes }`, `yes`},
		{`{ if empty($ROOT/bib/journal) then none }`, `none`},
		{`{ for $b in /bib/book where $b/year >= 2000 and not $b/author = 'Stevens' return ok }`, `ok`},
	}
	for _, c := range cases {
		if got := evalStr(t, c.query, bibDoc); got != c.want {
			t.Errorf("eval(%s) = %q, want %q", c.query, got, c.want)
		}
	}
}

// TestEvalXMPQ1 runs the paper's running example end to end.
func TestEvalXMPQ1(t *testing.T) {
	q := `<bib> { for $b in $ROOT/bib/book
		where $b/publisher = "Addison-Wesley" and $b/year > 1991
		return <book> {$b/year} {$b/title} </book> } </bib>`
	want := `<bib><book><year>1994</year><title>TCP/IP Illustrated</title></book>` +
		`<book><year>1992</year><title>Advanced Programming</title></book></bib>`
	if got := evalStr(t, q, bibDoc); got != want {
		t.Errorf("Q1 = %q, want %q", got, want)
	}
}

// TestEvalNormalizationEquivalence: Theorem 4.1 — a query and its
// normalization produce identical output.
func TestEvalNormalizationEquivalence(t *testing.T) {
	queries := []string{
		`<bib> { for $b in /bib/book where $b/publisher = 'Addison-Wesley' and $b/year > 1991 return <book> {$b/year} {$b/title} </book> } </bib>`,
		`{ $ROOT/bib/book/title }`,
		`{ for $b in /bib/book return { if $b/year > 1993 then { $b/title } } }`,
		`<r> { for $b in /bib/book return { for $a in $b/author return <p> { $a } </p> } } </r>`,
	}
	for _, q := range queries {
		orig := evalStr(t, q, bibDoc)
		norm := xq.Normalize(xq.MustParse(q))
		var sb strings.Builder
		if _, err := RunNaive(norm, strings.NewReader(bibDoc), &sb, sax.Options{SkipWhitespaceText: true}); err != nil {
			t.Fatalf("normalized eval: %v", err)
		}
		if sb.String() != orig {
			t.Errorf("normalization changed semantics for %s:\n  orig %q\n  norm %q", q, orig, sb.String())
		}
	}
}

// TestEvalJoin exercises the Example 4.6 join.
func TestEvalJoin(t *testing.T) {
	doc := `<bib>
<book><title>B1</title><editor>Smith</editor><publisher>P</publisher></book>
<book><title>B2</title><author>Jones</author><publisher>P</publisher></book>
<article><title>A1</title><author>Smith</author><journal>J</journal></article>
<article><title>A2</title><author>Nobody</author><journal>J</journal></article>
</bib>`
	q := `<results>
{ for $bib in $ROOT/bib return
  { for $article in $bib/article return
    { for $book in $bib/book
      where $article/author = $book/editor return
      { <result> {$article/author} </result> } }}}
</results>`
	want := `<results><result><author>Smith</author></result></results>`
	if got := evalStr(t, q, doc); got != want {
		t.Errorf("join = %q, want %q", got, want)
	}
}

func TestEvalScaledComparison(t *testing.T) {
	doc := `<site><person><income>60000</income></person><auction><initial>10</initial></auction><auction><initial>50000</initial></auction></site>`
	q := `{ for $p in /site/person return
	  { for $o in /site/auction where $p/income > 5000 * $o/initial return hit } }`
	if got := evalStr(t, q, doc); got != "hit" {
		t.Errorf("scaled comparison = %q, want hit", got)
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		l  string
		op xq.RelOp
		r  string
		w  bool
	}{
		{"10", xq.OpGt, "9", true},
		{"10", xq.OpLt, "9", false}, // numeric, not lexicographic
		{"abc", xq.OpEq, "abc", true},
		{"abc", xq.OpLt, "abd", true},
		{"1991", xq.OpGe, "1991", true},
		{" 42 ", xq.OpEq, "42", true}, // whitespace-insensitive numerics
		{"x", xq.OpNe, "y", true},
	}
	for _, c := range cases {
		if got := CompareValues(c.l, c.op, c.r); got != c.w {
			t.Errorf("CompareValues(%q %s %q) = %v, want %v", c.l, c.op, c.r, got, c.w)
		}
	}
}

func TestNodeBytesAndStringValue(t *testing.T) {
	root, err := BuildString(`<a><b>xy</b><c/></a>`, sax.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sv := root.StringValue(); sv != "xy" {
		t.Errorf("StringValue = %q", sv)
	}
	// <a></a>=7, <b></b>=7, xy=2, <c></c>=7
	if got := root.Bytes(); got != 23 {
		t.Errorf("Bytes = %d, want 23", got)
	}
}

// TestProjectionEquivalence: the projection engine must agree with the
// naive engine on every query, while materializing no more data.
func TestProjectionEquivalence(t *testing.T) {
	queries := []string{
		`<bib> { for $b in /bib/book where $b/publisher = 'Addison-Wesley' and $b/year > 1991 return <book> {$b/year} {$b/title} </book> } </bib>`,
		`{ $ROOT/bib/book/title }`,
		`{ for $b in /bib/book return { $b } }`,
		`{ if exists $ROOT/bib/book then yes }`,
		`nothing projected`,
		`{ for $b in /bib/book where empty($b/zzz) return x }`,
	}
	for _, q := range queries {
		e := xq.MustParse(q)
		var nb, pb strings.Builder
		ns, err := RunNaive(e, strings.NewReader(bibDoc), &nb, sax.Options{SkipWhitespaceText: true})
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		ps, err := RunProjection(e, strings.NewReader(bibDoc), &pb, sax.Options{SkipWhitespaceText: true})
		if err != nil {
			t.Fatalf("projection: %v", err)
		}
		if nb.String() != pb.String() {
			t.Errorf("projection changed semantics for %s:\n  naive %q\n  proj  %q", q, nb.String(), pb.String())
		}
		if ps.BufferBytes > ns.BufferBytes {
			t.Errorf("projection materialized more than naive for %s: %d > %d", q, ps.BufferBytes, ns.BufferBytes)
		}
	}
}

func TestProjectionActuallyProjects(t *testing.T) {
	q := xq.MustParse(`{ for $b in /bib/book return { $b/title } }`)
	var sb strings.Builder
	ps, err := RunProjection(q, strings.NewReader(bibDoc), &sb, sax.Options{SkipWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	var nb strings.Builder
	ns, err := RunNaive(q, strings.NewReader(bibDoc), &nb, sax.Options{SkipWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	// Titles only: the projected tree must be well under half the full tree.
	if ps.BufferBytes*2 >= ns.BufferBytes {
		t.Errorf("projection too large: %d vs naive %d", ps.BufferBytes, ns.BufferBytes)
	}
}

// Package dom implements the two in-memory baseline engines the FluX
// paper compares against: a naive engine that materializes the whole
// document before evaluating (the Galax stand-in), and a projection-based
// engine that materializes only the paths a query can touch (the
// Marian–Siméon [14] / AnonX stand-in). The naive evaluator also serves
// as the semantics oracle for differential testing of the streaming
// engine.
package dom

import (
	"io"
	"strings"

	"flux/internal/sax"
)

// Node is an in-memory XML node. A text node has Name == "" and Text set;
// an element node has Name set and children in Kids.
type Node struct {
	Name string
	Text string
	Kids []*Node
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// Build materializes the document read from r as a Node tree and returns
// its root element.
func Build(r io.Reader, opt sax.Options) (*Node, error) {
	b := &builder{}
	if err := sax.Scan(r, b, opt); err != nil {
		return nil, err
	}
	return b.root, nil
}

// BuildString is Build over an in-memory document.
func BuildString(doc string, opt sax.Options) (*Node, error) {
	return Build(strings.NewReader(doc), opt)
}

type builder struct {
	root  *Node
	stack []*Node
}

func (b *builder) StartElement(name string) error {
	n := &Node{Name: name}
	if len(b.stack) == 0 {
		b.root = n
	} else {
		p := b.stack[len(b.stack)-1]
		p.Kids = append(p.Kids, n)
	}
	b.stack = append(b.stack, n)
	return nil
}

func (b *builder) Text(data string) error {
	if len(b.stack) == 0 {
		return nil
	}
	p := b.stack[len(b.stack)-1]
	if k := len(p.Kids); k > 0 && p.Kids[k-1].IsText() {
		p.Kids[k-1].Text += data
		return nil
	}
	p.Kids = append(p.Kids, &Node{Text: data})
	return nil
}

func (b *builder) EndElement(name string) error {
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// Bytes estimates the main-memory footprint of the subtree in the same
// units the engines report: tag bytes for both element tags plus text
// bytes. nil counts as zero.
func (n *Node) Bytes() int64 {
	if n == nil {
		return 0
	}
	var total int64
	if n.IsText() {
		total += int64(len(n.Text))
	} else {
		total += int64(2*len(n.Name) + 5) // <n> </n>
	}
	for _, k := range n.Kids {
		total += k.Bytes()
	}
	return total
}

// StringValue returns the concatenated text content of the subtree (the
// XPath string value). Chains with a single child — the shape of every
// leaf field a join compares, e.g. <person_id>person0</person_id> —
// resolve without building anything.
func (n *Node) StringValue() string {
	for !n.IsText() {
		if len(n.Kids) != 1 {
			var b strings.Builder
			n.stringValue(&b)
			return b.String()
		}
		n = n.Kids[0]
	}
	return n.Text
}

func (n *Node) stringValue(b *strings.Builder) {
	if n.IsText() {
		b.WriteString(n.Text)
		return
	}
	for _, k := range n.Kids {
		k.stringValue(b)
	}
}

// Select appends to out the nodes reachable from n via the fixed path, in
// document order.
func (n *Node) Select(path []string, out []*Node) []*Node {
	if len(path) == 0 {
		return append(out, n)
	}
	for _, k := range n.Kids {
		if k.Name == path[0] {
			out = k.Select(path[1:], out)
		}
	}
	return out
}

// Serialize writes the subtree as XML to h.
func (n *Node) Serialize(h sax.Handler) error {
	if n.IsText() {
		return h.Text(n.Text)
	}
	if err := h.StartElement(n.Name); err != nil {
		return err
	}
	for _, k := range n.Kids {
		if err := k.Serialize(h); err != nil {
			return err
		}
	}
	return h.EndElement(n.Name)
}

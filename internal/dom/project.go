package dom

import (
	"io"

	"flux/internal/sax"
	"flux/internal/xq"
)

// Projection is the static path analysis of the projection baseline: the
// set of root-anchored paths a query can touch, with "keep whole subtree"
// marks where values or output subtrees are needed (Marian–Siméon [14]).
type Projection struct {
	root *projNode
}

type projNode struct {
	kids    map[string]*projNode
	keepAll bool
}

func newProjNode() *projNode { return &projNode{kids: make(map[string]*projNode)} }

func (p *projNode) extend(path []string) *projNode {
	cur := p
	for _, step := range path {
		next, ok := cur.kids[step]
		if !ok {
			next = newProjNode()
			cur.kids[step] = next
		}
		cur = next
	}
	return cur
}

// AnalyzeProjection computes the projection of q. Free variables other
// than $ROOT make the analysis fail closed (keep everything) — closed
// queries never hit that case.
func AnalyzeProjection(q xq.Expr) *Projection {
	root := newProjNode()
	env := map[string]*projNode{xq.RootVar: root}
	var walk func(e xq.Expr, env map[string]*projNode)
	keepCond := func(c xq.Cond, env map[string]*projNode) {
		for _, cp := range xq.CondPaths(c, nil) {
			if n, ok := env[cp.Var]; ok {
				n.extend(cp.Path).keepAll = true
			} else {
				root.keepAll = true
			}
		}
	}
	walk = func(e xq.Expr, env map[string]*projNode) {
		switch e := e.(type) {
		case nil, *xq.Str:
		case *xq.Seq:
			for _, it := range e.Items {
				walk(it, env)
			}
		case *xq.VarOut:
			if n, ok := env[e.Var]; ok {
				n.keepAll = true
			} else {
				root.keepAll = true
			}
		case *xq.PathOut:
			if n, ok := env[e.Var]; ok {
				n.extend(e.Path).keepAll = true
			} else {
				root.keepAll = true
			}
		case *xq.If:
			keepCond(e.Cond, env)
			walk(e.Then, env)
		case *xq.For:
			src, ok := env[e.Src]
			if !ok {
				root.keepAll = true
				return
			}
			bound := src.extend(e.Path)
			inner := make(map[string]*projNode, len(env)+1)
			for k, v := range env {
				inner[k] = v
			}
			inner[e.Var] = bound
			keepCond(e.Where, inner)
			walk(e.Body, inner)
		}
	}
	walk(q, env)
	return &Projection{root: root}
}

// BuildProjected materializes only the projected part of the document:
// nodes on projection paths get their tags; marked nodes keep their whole
// subtrees. This is the loading phase of the projection baseline.
func BuildProjected(r io.Reader, proj *Projection, opt sax.Options) (*Node, error) {
	b := &projBuilder{proj: proj.root}
	if err := sax.Scan(r, b, opt); err != nil {
		return nil, err
	}
	return b.root, nil
}

type projBuilder struct {
	proj  *projNode
	root  *Node
	stack []projFrame
}

type projFrame struct {
	node *Node     // materialized node, nil if skipped
	proj *projNode // projection position, nil under keepAll or skip
	keep bool      // inside a kept subtree
}

func (b *projBuilder) StartElement(name string) error {
	var top projFrame
	if len(b.stack) == 0 {
		// The document element always materializes as the tree root: the
		// evaluator needs an anchor even for queries that project nothing.
		pn := b.proj.kids[name]
		keep := b.proj.keepAll
		n := &Node{Name: name}
		b.root = n
		if pn != nil && pn.keepAll {
			keep = true
		}
		var proj *projNode
		if !keep && pn != nil {
			proj = pn
		}
		b.stack = append(b.stack, projFrame{node: n, proj: proj, keep: keep})
		return nil
	}
	top = b.stack[len(b.stack)-1]
	switch {
	case top.keep && top.node != nil:
		n := &Node{Name: name}
		top.node.Kids = append(top.node.Kids, n)
		b.stack = append(b.stack, projFrame{node: n, keep: true})
	case top.proj != nil:
		if pn, ok := top.proj.kids[name]; ok {
			n := &Node{Name: name}
			top.node.Kids = append(top.node.Kids, n)
			if pn.keepAll {
				b.stack = append(b.stack, projFrame{node: n, keep: true})
			} else {
				b.stack = append(b.stack, projFrame{node: n, proj: pn})
			}
		} else {
			b.stack = append(b.stack, projFrame{}) // skip subtree
		}
	default:
		b.stack = append(b.stack, projFrame{}) // skip subtree
	}
	return nil
}

func (b *projBuilder) Text(data string) error {
	if len(b.stack) == 0 {
		return nil
	}
	top := b.stack[len(b.stack)-1]
	if !top.keep || top.node == nil {
		return nil // unmarked nodes store tags only
	}
	p := top.node
	if k := len(p.Kids); k > 0 && p.Kids[k-1].IsText() {
		p.Kids[k-1].Text += data
		return nil
	}
	p.Kids = append(p.Kids, &Node{Text: data})
	return nil
}

func (b *projBuilder) EndElement(name string) error {
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// Stats reports the resource usage of a baseline engine run.
type Stats struct {
	// BufferBytes is the size of the materialized (projected) tree, in
	// the same units as the streaming engine's buffer accounting.
	BufferBytes int64
	// OutputBytes is the number of result bytes produced.
	OutputBytes int64
}

// RunNaive evaluates q Galax-style: materialize the entire document, then
// evaluate in memory.
func RunNaive(q xq.Expr, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	root, err := Build(r, opt)
	if err != nil {
		return Stats{}, err
	}
	out := sax.NewWriter(w)
	if err := Eval(q, root, out); err != nil {
		return Stats{}, err
	}
	if err := out.Flush(); err != nil {
		return Stats{}, err
	}
	return Stats{BufferBytes: root.Bytes(), OutputBytes: out.BytesWritten()}, nil
}

// RunProjection evaluates q in the style of the projection baseline:
// materialize only the statically projected part of the document, then
// evaluate in memory.
func RunProjection(q xq.Expr, r io.Reader, w io.Writer, opt sax.Options) (Stats, error) {
	proj := AnalyzeProjection(q)
	root, err := BuildProjected(r, proj, opt)
	if err != nil {
		return Stats{}, err
	}
	out := sax.NewWriter(w)
	if err := Eval(q, root, out); err != nil {
		return Stats{}, err
	}
	if err := out.Flush(); err != nil {
		return Stats{}, err
	}
	return Stats{BufferBytes: root.Bytes(), OutputBytes: out.BytesWritten()}, nil
}

package dom

import (
	"fmt"
	"strconv"

	"flux/internal/sax"
	"flux/internal/xq"
)

// EvalError reports a query evaluation failure.
type EvalError struct {
	Msg string
}

// Error implements error.
func (e *EvalError) Error() string { return "dom: eval: " + e.Msg }

// Eval evaluates an XQuery⁻ expression over the document rooted at root,
// writing the result to w. The environment binds xq.RootVar to a synthetic
// document node above root, so absolute paths like $ROOT/site resolve.
func Eval(q xq.Expr, root *Node, w *sax.Writer) error {
	docNode := &Node{Name: "#document", Kids: []*Node{root}}
	env := map[string]*Node{xq.RootVar: docNode}
	ev := &evaluator{w: w}
	return ev.eval(q, env)
}

type evaluator struct {
	w *sax.Writer
}

func (ev *evaluator) eval(q xq.Expr, env map[string]*Node) error {
	switch q := q.(type) {
	case nil:
		return nil
	case *xq.Seq:
		for _, it := range q.Items {
			if err := ev.eval(it, env); err != nil {
				return err
			}
		}
		return nil
	case *xq.Str:
		return ev.w.Raw(q.S)
	case *xq.VarOut:
		n, ok := env[q.Var]
		if !ok {
			return &EvalError{Msg: "unbound variable " + q.Var}
		}
		return ev.serializeValue(n)
	case *xq.PathOut:
		n, ok := env[q.Var]
		if !ok {
			return &EvalError{Msg: "unbound variable " + q.Var}
		}
		for _, m := range n.Select(q.Path, nil) {
			if err := ev.serializeValue(m); err != nil {
				return err
			}
		}
		return nil
	case *xq.If:
		ok, err := ev.cond(q.Cond, env)
		if err != nil {
			return err
		}
		if ok {
			return ev.eval(q.Then, env)
		}
		return nil
	case *xq.For:
		src, ok := env[q.Src]
		if !ok {
			return &EvalError{Msg: "unbound variable " + q.Src}
		}
		for _, m := range src.Select(q.Path, nil) {
			env[q.Var] = m
			if q.Where != nil {
				keep, err := ev.cond(q.Where, env)
				if err != nil {
					delete(env, q.Var)
					return err
				}
				if !keep {
					continue
				}
			}
			if err := ev.eval(q.Body, env); err != nil {
				delete(env, q.Var)
				return err
			}
		}
		delete(env, q.Var)
		return nil
	default:
		return &EvalError{Msg: fmt.Sprintf("unknown expression type %T", q)}
	}
}

// serializeValue outputs a bound subtree. The synthetic #document node
// serializes as its children.
func (ev *evaluator) serializeValue(n *Node) error {
	if n.Name == "#document" {
		for _, k := range n.Kids {
			if err := k.Serialize(ev.w); err != nil {
				return err
			}
		}
		return nil
	}
	return n.Serialize(ev.w)
}

func (ev *evaluator) cond(c xq.Cond, env map[string]*Node) (bool, error) {
	switch c := c.(type) {
	case nil, xq.True:
		return true, nil
	case *xq.And:
		l, err := ev.cond(c.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(c.R, env)
	case *xq.Or:
		l, err := ev.cond(c.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.cond(c.R, env)
	case *xq.Not:
		x, err := ev.cond(c.X, env)
		return !x, err
	case *xq.Exists:
		n, ok := env[c.Var]
		if !ok {
			return false, &EvalError{Msg: "unbound variable " + c.Var + " in condition"}
		}
		found := len(n.Select(c.Path, nil)) > 0
		return found != c.Neg, nil
	case *xq.Cmp:
		ls, err := ev.operandValues(c.L, env)
		if err != nil {
			return false, err
		}
		rs, err := ev.operandValues(c.R, env)
		if err != nil {
			return false, err
		}
		for _, l := range ls {
			for _, r := range rs {
				if CompareValues(l, c.Op, r) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, &EvalError{Msg: fmt.Sprintf("unknown condition type %T", c)}
	}
}

// operandValues returns the value sequence an operand denotes under the
// environment (XQuery general comparisons are existential over these).
func (ev *evaluator) operandValues(o xq.Operand, env map[string]*Node) ([]string, error) {
	if o.Kind == xq.ConstOperand {
		return []string{o.Const}, nil
	}
	n, ok := env[o.Var]
	if !ok {
		return nil, &EvalError{Msg: "unbound variable " + o.Var + " in condition"}
	}
	var vals []string
	for _, m := range n.Select(o.Path, nil) {
		v := m.StringValue()
		if o.Scale != 0 {
			f, err := strconv.ParseFloat(trimSpace(v), 64)
			if err != nil {
				continue // non-numeric values contribute nothing under arithmetic
			}
			v = strconv.FormatFloat(o.Scale*f, 'f', -1, 64)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// CompareValues applies a RelOp to two untyped values: numerically when
// both parse as numbers, as strings otherwise (the behaviour of the
// paper's engine on XMark data, where compared fields are consistently
// numeric or string).
func CompareValues(l string, op xq.RelOp, r string) bool {
	lf, lerr := strconv.ParseFloat(trimSpace(l), 64)
	rf, rerr := strconv.ParseFloat(trimSpace(r), 64)
	if lerr == nil && rerr == nil {
		switch op {
		case xq.OpEq:
			return lf == rf
		case xq.OpNe:
			return lf != rf
		case xq.OpLt:
			return lf < rf
		case xq.OpLe:
			return lf <= rf
		case xq.OpGt:
			return lf > rf
		default:
			return lf >= rf
		}
	}
	switch op {
	case xq.OpEq:
		return l == r
	case xq.OpNe:
		return l != r
	case xq.OpLt:
		return l < r
	case xq.OpLe:
		return l <= r
	case xq.OpGt:
		return l > r
	default:
		return l >= r
	}
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && isSpace(s[start]) {
		start++
	}
	for end > start && isSpace(s[end-1]) {
		end--
	}
	return s[start:end]
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

package dom

import (
	"fmt"
	"strconv"

	"flux/internal/sax"
	"flux/internal/xq"
)

// EvalError reports a query evaluation failure.
type EvalError struct {
	Msg string
}

// Error implements error.
func (e *EvalError) Error() string { return "dom: eval: " + e.Msg }

// Eval evaluates an XQuery⁻ expression over the document rooted at root,
// writing the result to w. The environment binds xq.RootVar to a synthetic
// document node above root, so absolute paths like $ROOT/site resolve.
func Eval(q xq.Expr, root *Node, w *sax.Writer) error {
	docNode := &Node{Name: "#document", Kids: []*Node{root}}
	env := map[string]*Node{xq.RootVar: docNode}
	ev := &evaluator{w: w}
	return ev.eval(q, env)
}

type evaluator struct {
	w *sax.Writer
}

func (ev *evaluator) eval(q xq.Expr, env map[string]*Node) error {
	switch q := q.(type) {
	case nil:
		return nil
	case *xq.Seq:
		for _, it := range q.Items {
			if err := ev.eval(it, env); err != nil {
				return err
			}
		}
		return nil
	case *xq.Str:
		return ev.w.Raw(q.S)
	case *xq.VarOut:
		n, ok := env[q.Var]
		if !ok {
			return &EvalError{Msg: "unbound variable " + q.Var}
		}
		return ev.serializeValue(n)
	case *xq.PathOut:
		n, ok := env[q.Var]
		if !ok {
			return &EvalError{Msg: "unbound variable " + q.Var}
		}
		for _, m := range n.Select(q.Path, nil) {
			if err := ev.serializeValue(m); err != nil {
				return err
			}
		}
		return nil
	case *xq.If:
		ok, err := ev.cond(q.Cond, env)
		if err != nil {
			return err
		}
		if ok {
			return ev.eval(q.Then, env)
		}
		return nil
	case *xq.For:
		src, ok := env[q.Src]
		if !ok {
			return &EvalError{Msg: "unbound variable " + q.Src}
		}
		for _, m := range src.Select(q.Path, nil) {
			env[q.Var] = m
			if q.Where != nil {
				keep, err := ev.cond(q.Where, env)
				if err != nil {
					delete(env, q.Var)
					return err
				}
				if !keep {
					continue
				}
			}
			if err := ev.eval(q.Body, env); err != nil {
				delete(env, q.Var)
				return err
			}
		}
		delete(env, q.Var)
		return nil
	default:
		return &EvalError{Msg: fmt.Sprintf("unknown expression type %T", q)}
	}
}

// serializeValue outputs a bound subtree. The synthetic #document node
// serializes as its children.
func (ev *evaluator) serializeValue(n *Node) error {
	if n.Name == "#document" {
		for _, k := range n.Kids {
			if err := k.Serialize(ev.w); err != nil {
				return err
			}
		}
		return nil
	}
	return n.Serialize(ev.w)
}

func (ev *evaluator) cond(c xq.Cond, env map[string]*Node) (bool, error) {
	switch c := c.(type) {
	case nil, xq.True:
		return true, nil
	case *xq.And:
		l, err := ev.cond(c.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(c.R, env)
	case *xq.Or:
		l, err := ev.cond(c.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.cond(c.R, env)
	case *xq.Not:
		x, err := ev.cond(c.X, env)
		return !x, err
	case *xq.Exists:
		n, ok := env[c.Var]
		if !ok {
			return false, &EvalError{Msg: "unbound variable " + c.Var + " in condition"}
		}
		found := len(n.Select(c.Path, nil)) > 0
		return found != c.Neg, nil
	case *xq.Cmp:
		ls, err := ev.operandValues(c.L, env)
		if err != nil {
			return false, err
		}
		rs, err := ev.operandValues(c.R, env)
		if err != nil {
			return false, err
		}
		for _, l := range ls {
			for _, r := range rs {
				if CompareValues(l, c.Op, r) {
					return true, nil
				}
			}
		}
		return false, nil
	default:
		return false, &EvalError{Msg: fmt.Sprintf("unknown condition type %T", c)}
	}
}

// operandValues returns the value sequence an operand denotes under the
// environment (XQuery general comparisons are existential over these).
func (ev *evaluator) operandValues(o xq.Operand, env map[string]*Node) ([]string, error) {
	if o.Kind == xq.ConstOperand {
		return []string{o.Const}, nil
	}
	n, ok := env[o.Var]
	if !ok {
		return nil, &EvalError{Msg: "unbound variable " + o.Var + " in condition"}
	}
	var vals []string
	for _, m := range n.Select(o.Path, nil) {
		v := m.StringValue()
		if o.Scale != 0 {
			f, ok := ParseNumber(v)
			if !ok {
				continue // non-numeric values contribute nothing under arithmetic
			}
			v = strconv.FormatFloat(o.Scale*f, 'f', -1, 64)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// ParseNumber parses an untyped value as a float after trimming XML
// whitespace. It exists because comparisons are the hot path of join
// queries: strconv.ParseFloat allocates an error object on every
// non-numeric input, so a batch comparing string ids pays one allocation
// per pair. ParseNumber rejects the common non-numeric case (names, ids)
// with a one-byte check before strconv ever runs, and reports success
// with a boolean instead of an error.
func ParseNumber(s string) (float64, bool) {
	s = trimSpace(s)
	if len(s) == 0 {
		return 0, false
	}
	switch c := s[0]; {
	case c >= '0' && c <= '9':
	case c == '+' || c == '-' || c == '.':
	case c == 'i' || c == 'I' || c == 'n' || c == 'N':
		// Possible Inf/NaN spellings; strconv decides.
	default:
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// CompareNumbers applies a RelOp to two numeric values. It is the
// numeric branch of CompareValues, exported so callers that already hold
// parsed floats (the streaming engine's condition evaluator) need not
// round-trip through strings.
func CompareNumbers(l float64, op xq.RelOp, r float64) bool {
	switch op {
	case xq.OpEq:
		return l == r
	case xq.OpNe:
		return l != r
	case xq.OpLt:
		return l < r
	case xq.OpLe:
		return l <= r
	case xq.OpGt:
		return l > r
	default:
		return l >= r
	}
}

// CompareValues applies a RelOp to two untyped values: numerically when
// both parse as numbers, as strings otherwise (the behaviour of the
// paper's engine on XMark data, where compared fields are consistently
// numeric or string).
func CompareValues(l string, op xq.RelOp, r string) bool {
	if lf, lok := ParseNumber(l); lok {
		if rf, rok := ParseNumber(r); rok {
			return CompareNumbers(lf, op, rf)
		}
	}
	switch op {
	case xq.OpEq:
		return l == r
	case xq.OpNe:
		return l != r
	case xq.OpLt:
		return l < r
	case xq.OpLe:
		return l <= r
	case xq.OpGt:
		return l > r
	default:
		return l >= r
	}
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && isSpace(s[start]) {
		start++
	}
	for end > start && isSpace(s[end-1]) {
		end--
	}
	return s[start:end]
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

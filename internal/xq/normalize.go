package xq

import (
	"fmt"
	"strings"
)

// Normalize rewrites q into XQuery⁻ normal form by the rules of Figure 1,
// implemented as one structural recursion (which applies each rule
// downwards to a fixpoint, Theorem 4.1). In the result:
//
//  1. all paths outside conditions are simple steps ($x/a);
//  2. no for-loop carries a where-clause (conditions are pushed inside);
//  3. every conditional body is a fixed string or {$x}.
//
// Variables are made unique first (the paper assumes this w.l.o.g. in
// Section 5), so fresh loop variables never collide.
func Normalize(q Expr) Expr {
	n := &normalizer{used: make(map[string]bool)}
	q = n.uniquify(Copy(q), map[string]string{RootVar: RootVar})
	return n.norm(q)
}

type normalizer struct {
	used map[string]bool
}

// fresh picks an unused variable named after the path step it ranges over
// (the paper writes e.g. $year, $title for the loops introduced by
// normalizing {$b/year} {$b/title}).
func (n *normalizer) fresh(step string) string {
	base := "$" + step
	name := base
	for i := 2; n.used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	n.used[name] = true
	return name
}

// uniquify alpha-renames so that every binder introduces a distinct
// variable, and records all names in use.
func (n *normalizer) uniquify(e Expr, env map[string]string) Expr {
	switch e := e.(type) {
	case nil, *Str:
		return e
	case *Seq:
		for i, it := range e.Items {
			e.Items[i] = n.uniquify(it, env)
		}
		return e
	case *VarOut:
		e.Var = lookupVar(env, e.Var)
		return e
	case *PathOut:
		e.Var = lookupVar(env, e.Var)
		return e
	case *If:
		e.Cond = n.uniquifyCond(e.Cond, env)
		e.Then = n.uniquify(e.Then, env)
		return e
	case *For:
		e.Src = lookupVar(env, e.Src)
		name := e.Var
		if n.used[name] {
			name = n.fresh(strings.TrimPrefix(e.Var, "$"))
		}
		n.used[name] = true
		inner := map[string]string{}
		for k, v := range env {
			inner[k] = v
		}
		inner[e.Var] = name
		e.Var = name
		e.Where = n.uniquifyCond(e.Where, inner)
		e.Body = n.uniquify(e.Body, inner)
		return e
	default:
		panic("xq: unknown expression type in uniquify")
	}
}

func lookupVar(env map[string]string, v string) string {
	if nv, ok := env[v]; ok {
		return nv
	}
	return v // free variable (only $ROOT in closed queries)
}

func (n *normalizer) uniquifyCond(c Cond, env map[string]string) Cond {
	switch c := c.(type) {
	case nil:
		return nil
	case True:
		return c
	case *And:
		return &And{L: n.uniquifyCond(c.L, env), R: n.uniquifyCond(c.R, env)}
	case *Or:
		return &Or{L: n.uniquifyCond(c.L, env), R: n.uniquifyCond(c.R, env)}
	case *Not:
		return &Not{X: n.uniquifyCond(c.X, env)}
	case *Cmp:
		cc := *c
		if cc.L.Kind == PathOperand {
			cc.L.Var = lookupVar(env, cc.L.Var)
		}
		if cc.R.Kind == PathOperand {
			cc.R.Var = lookupVar(env, cc.R.Var)
		}
		return &cc
	case *Exists:
		return &Exists{Var: lookupVar(env, c.Var), Path: c.Path, Neg: c.Neg}
	default:
		panic("xq: unknown condition type in uniquify")
	}
}

// norm is the Figure 1 rewriting.
func (n *normalizer) norm(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return &Seq{}
	case *Str:
		return e
	case *VarOut:
		return e
	case *Seq:
		items := make([]Expr, len(e.Items))
		for i, it := range e.Items {
			items[i] = n.norm(it)
		}
		return NewSeq(items...)
	case *PathOut:
		// Rule 2: {$y/π} → {for $x in $y/π return {$x}}.
		v := n.fresh(e.Path[len(e.Path)-1])
		return n.norm(&For{Var: v, Src: e.Var, Path: e.Path, Body: &VarOut{Var: v}})
	case *For:
		// Rule 1: conditional for-loop → unconditional with if-body.
		if e.Where != nil {
			body := &If{Cond: e.Where, Then: e.Body}
			return n.norm(&For{Var: e.Var, Src: e.Src, Path: e.Path, Body: body})
		}
		// Rule 3: multi-step loop path → nested single-step loops.
		if len(e.Path) > 1 {
			v0 := n.fresh(e.Path[0])
			inner := &For{Var: e.Var, Src: v0, Path: e.Path[1:], Body: e.Body}
			return n.norm(&For{Var: v0, Src: e.Src, Path: e.Path[:1], Body: inner})
		}
		return &For{Var: e.Var, Src: e.Src, Path: e.Path, Body: n.norm(e.Body)}
	case *If:
		// Rules 4–6: push the conditional inside loops and sequences, and
		// fuse nested conditionals, until the body is a string or {$x}.
		return n.distribute(e.Cond, n.norm(e.Then))
	default:
		panic("xq: unknown expression type in norm")
	}
}

// distribute pushes condition χ into the already-normalized expression.
func (n *normalizer) distribute(chi Cond, e Expr) Expr {
	switch e := e.(type) {
	case *Seq:
		// Rule 5: {if χ then α β} → {if χ then α} {if χ then β}.
		items := make([]Expr, len(e.Items))
		for i, it := range e.Items {
			items[i] = n.distribute(CopyCond(chi), it)
		}
		return NewSeq(items...)
	case *For:
		// Rule 4: {if χ then {for …}} → {for … {if χ then …}}.
		e.Body = n.distribute(chi, e.Body)
		return e
	case *If:
		// Rule 6: {if χ then {if ψ then α}} → {if χ and ψ then α}.
		return n.distribute(&And{L: chi, R: e.Cond}, e.Then)
	case *Str, *VarOut:
		return &If{Cond: chi, Then: e}
	default:
		panic(fmt.Sprintf("xq: unexpected %T under conditional after normalization", e))
	}
}

// IsNormalForm reports whether e satisfies the three normal-form
// properties (used by tests and as a precondition check by the rewrite
// algorithm).
func IsNormalForm(e Expr) bool {
	ok := true
	Walk(e, func(x Expr) {
		switch x := x.(type) {
		case *PathOut:
			ok = false
		case *For:
			if x.Where != nil || len(x.Path) != 1 {
				ok = false
			}
		case *If:
			switch x.Then.(type) {
			case *Str, *VarOut:
			default:
				ok = false
			}
		}
	})
	return ok
}

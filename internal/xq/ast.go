// Package xq implements the XQuery⁻ fragment of the FluX paper
// (Section 3.1): the AST, a parser, a canonical printer, the normal-form
// rewriting of Figure 1, and the Section 7 cardinality-based loop-merging
// optimizations.
//
// Following the paper, a query is a sequence of fixed output strings and
// brace-enclosed expressions; `<result>` is an output string, not element
// construction (Proposition 3.2 makes the two semantics agree for queries
// that parse in both languages).
package xq

import (
	"sort"
	"strings"
)

// RootVar is the name of the special variable bound to the document node.
const RootVar = "$ROOT"

// Path is a fixed path a1/…/an over element names (no wildcards, no
// descendant steps — paper Section 3).
type Path []string

// String renders the path with '/' separators.
func (p Path) String() string { return strings.Join(p, "/") }

// Expr is an XQuery⁻ expression. The empty query ε is represented by a
// Seq with no items (or a nil Expr where documented).
type Expr interface {
	isExpr()
}

// Seq is a sequence of expressions (α β in the paper). Construction via
// NewSeq keeps sequences flat.
type Seq struct {
	Items []Expr
}

// Str outputs a fixed string.
type Str struct {
	S string
}

// For is a (possibly conditional) for-loop:
//
//	{ for Var in Src/Path [where Where] return Body }
type For struct {
	Var   string // bound variable, with leading '$'
	Src   string // range variable, with leading '$'
	Path  Path
	Where Cond // nil if unconditional
	Body  Expr
}

// PathOut outputs all subtrees reachable from Var through Path ({$x/π}).
type PathOut struct {
	Var  string
	Path Path
}

// VarOut outputs the subtree of Var ({$x}).
type VarOut struct {
	Var string
}

// If is a conditional: { if Cond then Then }.
type If struct {
	Cond Cond
	Then Expr
}

func (*Seq) isExpr()     {}
func (*Str) isExpr()     {}
func (*For) isExpr()     {}
func (*PathOut) isExpr() {}
func (*VarOut) isExpr()  {}
func (*If) isExpr()      {}

// NewSeq builds a flattened sequence: nested Seqs are spliced, nil and
// empty items dropped. A singleton collapses to its item.
func NewSeq(items ...Expr) Expr {
	var out []Expr
	var add func(e Expr)
	add = func(e Expr) {
		switch e := e.(type) {
		case nil:
		case *Seq:
			for _, it := range e.Items {
				add(it)
			}
		case *Str:
			if e.S == "" {
				return
			}
			out = append(out, e)
		default:
			out = append(out, e)
		}
	}
	for _, it := range items {
		add(it)
	}
	switch len(out) {
	case 0:
		return &Seq{}
	case 1:
		return out[0]
	default:
		return &Seq{Items: out}
	}
}

// Items returns e's items if it is a sequence, else a one-element slice
// (empty for the empty sequence).
func Items(e Expr) []Expr {
	if s, ok := e.(*Seq); ok {
		return s.Items
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// --- Conditions ------------------------------------------------------

// RelOp is a comparison operator in an atomic condition.
type RelOp int

// Comparison operators. The paper lists {=,<,≤,>,≥}; != is an extension
// in the spirit of the Appendix A engine.
const (
	OpEq RelOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the surface syntax of the operator.
func (op RelOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// Cond is a Boolean combination of atomic conditions.
type Cond interface {
	isCond()
}

// And is conjunction.
type And struct{ L, R Cond }

// Or is disjunction.
type Or struct{ L, R Cond }

// Not is negation.
type Not struct{ X Cond }

// True is the trivially true condition.
type True struct{}

// Cmp is an atomic comparison L RelOp R with XQuery existential
// (general-comparison) semantics over the node sequences denoted by path
// operands.
type Cmp struct {
	L, R Operand
	Op   RelOp
}

// Exists is `exists $x/π`; with Neg set it is `empty($x/π)`, the
// Appendix A extension (equivalent to `not exists`).
type Exists struct {
	Var  string
	Path Path
	Neg  bool
}

func (*And) isCond()    {}
func (*Or) isCond()     {}
func (*Not) isCond()    {}
func (True) isCond()    {}
func (*Cmp) isCond()    {}
func (*Exists) isCond() {}

// OperandKind distinguishes constant and path operands.
type OperandKind int

// Operand kinds.
const (
	ConstOperand OperandKind = iota
	PathOperand
)

// Operand is one side of a comparison: either a constant string (which
// compares numerically when both sides are numeric), or a path $x/π with
// an optional constant multiplier c (the Appendix A form `c * $y/π`).
type Operand struct {
	Kind  OperandKind
	Const string  // ConstOperand: the literal
	Var   string  // PathOperand: variable
	Path  Path    // PathOperand: fixed path
	Scale float64 // PathOperand: multiplier; 0 means none
}

// ConstOp builds a constant operand.
func ConstOp(s string) Operand { return Operand{Kind: ConstOperand, Const: s} }

// PathOp builds a path operand.
func PathOp(v string, p Path) Operand { return Operand{Kind: PathOperand, Var: v, Path: p} }

// --- AST utilities ----------------------------------------------------

// CondPath is one path occurrence inside a condition.
type CondPath struct {
	Var  string
	Path Path
}

// CondPaths appends all path occurrences of c to out.
func CondPaths(c Cond, out []CondPath) []CondPath {
	switch c := c.(type) {
	case nil, True:
	case *And:
		out = CondPaths(c.L, out)
		out = CondPaths(c.R, out)
	case *Or:
		out = CondPaths(c.L, out)
		out = CondPaths(c.R, out)
	case *Not:
		out = CondPaths(c.X, out)
	case *Cmp:
		if c.L.Kind == PathOperand {
			out = append(out, CondPath{c.L.Var, c.L.Path})
		}
		if c.R.Kind == PathOperand {
			out = append(out, CondPath{c.R.Var, c.R.Path})
		}
	case *Exists:
		out = append(out, CondPath{c.Var, c.Path})
	}
	return out
}

// ExprCondPaths collects the condition paths of every condition occurring
// anywhere in e (the paper's "condition paths in α").
func ExprCondPaths(e Expr) []CondPath {
	var out []CondPath
	Walk(e, func(x Expr) {
		switch x := x.(type) {
		case *For:
			out = CondPaths(x.Where, out)
		case *If:
			out = CondPaths(x.Cond, out)
		}
	})
	return out
}

// Walk calls f on e and every subexpression, pre-order.
func Walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *Seq:
		for _, it := range e.Items {
			Walk(it, f)
		}
	case *For:
		Walk(e.Body, f)
	case *If:
		Walk(e.Then, f)
	}
}

// FreeVars returns the free variables of e (paper Section 3.2), sorted.
func FreeVars(e Expr) []string {
	set := make(map[string]bool)
	freeInto(e, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func freeInto(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case nil, *Str:
	case *Seq:
		for _, it := range e.Items {
			freeInto(it, set)
		}
	case *VarOut:
		set[e.Var] = true
	case *PathOut:
		set[e.Var] = true
	case *If:
		condFreeInto(e.Cond, set)
		freeInto(e.Then, set)
	case *For:
		set[e.Src] = true
		inner := make(map[string]bool)
		condFreeInto(e.Where, inner)
		freeInto(e.Body, inner)
		delete(inner, e.Var)
		for v := range inner {
			set[v] = true
		}
	}
}

func condFreeInto(c Cond, set map[string]bool) {
	for _, cp := range CondPaths(c, nil) {
		set[cp.Var] = true
	}
}

// UsesVar reports whether {$x} occurs in e (the {$x} ⪯ β test of the
// rewrite algorithm, Figure 2 line 5).
func UsesVar(e Expr, v string) bool {
	found := false
	Walk(e, func(x Expr) {
		if vo, ok := x.(*VarOut); ok && vo.Var == v {
			found = true
		}
	})
	return found
}

// Copy returns a deep copy of e.
func Copy(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Seq:
		items := make([]Expr, len(e.Items))
		for i, it := range e.Items {
			items[i] = Copy(it)
		}
		return &Seq{Items: items}
	case *Str:
		c := *e
		return &c
	case *VarOut:
		c := *e
		return &c
	case *PathOut:
		return &PathOut{Var: e.Var, Path: append(Path(nil), e.Path...)}
	case *If:
		return &If{Cond: CopyCond(e.Cond), Then: Copy(e.Then)}
	case *For:
		return &For{Var: e.Var, Src: e.Src, Path: append(Path(nil), e.Path...),
			Where: CopyCond(e.Where), Body: Copy(e.Body)}
	default:
		panic("xq: unknown expression type")
	}
}

// CopyCond returns a deep copy of c.
func CopyCond(c Cond) Cond {
	switch c := c.(type) {
	case nil:
		return nil
	case True:
		return True{}
	case *And:
		return &And{L: CopyCond(c.L), R: CopyCond(c.R)}
	case *Or:
		return &Or{L: CopyCond(c.L), R: CopyCond(c.R)}
	case *Not:
		return &Not{X: CopyCond(c.X)}
	case *Cmp:
		cc := *c
		cc.L.Path = append(Path(nil), c.L.Path...)
		cc.R.Path = append(Path(nil), c.R.Path...)
		return &cc
	case *Exists:
		return &Exists{Var: c.Var, Path: append(Path(nil), c.Path...), Neg: c.Neg}
	default:
		panic("xq: unknown condition type")
	}
}

// RenameVar rewrites every occurrence of variable old in e to new,
// respecting shadowing by inner bindings of old.
func RenameVar(e Expr, old, new string) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Str:
		return e
	case *Seq:
		items := make([]Expr, len(e.Items))
		for i, it := range e.Items {
			items[i] = RenameVar(it, old, new)
		}
		return &Seq{Items: items}
	case *VarOut:
		if e.Var == old {
			return &VarOut{Var: new}
		}
		return e
	case *PathOut:
		if e.Var == old {
			return &PathOut{Var: new, Path: e.Path}
		}
		return e
	case *If:
		return &If{Cond: renameCondVar(e.Cond, old, new), Then: RenameVar(e.Then, old, new)}
	case *For:
		out := &For{Var: e.Var, Src: e.Src, Path: e.Path, Where: e.Where, Body: e.Body}
		if out.Src == old {
			out.Src = new
		}
		if e.Var != old { // shadowed otherwise
			out.Where = renameCondVar(e.Where, old, new)
			out.Body = RenameVar(e.Body, old, new)
		}
		return out
	default:
		panic("xq: unknown expression type")
	}
}

func renameCondVar(c Cond, old, new string) Cond {
	switch c := c.(type) {
	case nil:
		return nil
	case True:
		return c
	case *And:
		return &And{L: renameCondVar(c.L, old, new), R: renameCondVar(c.R, old, new)}
	case *Or:
		return &Or{L: renameCondVar(c.L, old, new), R: renameCondVar(c.R, old, new)}
	case *Not:
		return &Not{X: renameCondVar(c.X, old, new)}
	case *Cmp:
		cc := *c
		if cc.L.Var == old {
			cc.L.Var = new
		}
		if cc.R.Var == old {
			cc.R.Var = new
		}
		return &cc
	case *Exists:
		if c.Var == old {
			return &Exists{Var: new, Path: c.Path, Neg: c.Neg}
		}
		return c
	default:
		panic("xq: unknown condition type")
	}
}

package xq

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports an XQuery⁻ syntax error.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("xq: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses an XQuery⁻ query. Text outside braces is fixed output
// (leading/trailing whitespace of each literal segment is trimmed, and
// whitespace-only segments drop, mirroring XQuery boundary-whitespace
// stripping); braces enclose for-loops, conditionals, and variable/path
// output. Absolute paths such as /site/people/person are sugar for
// $ROOT/site/people/person (Appendix A: "$ROOT may be omitted").
func Parse(input string) (Expr, error) {
	p := &qparser{in: input}
	e, err := p.seq(false)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected '}'")
	}
	return e, nil
}

// MustParse is Parse for known-good queries.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseCond parses a condition in isolation (used by tests and tools).
func ParseCond(input string) (Cond, error) {
	p := &qparser{in: input}
	c, err := p.cond()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("trailing input in condition")
	}
	return c, nil
}

type qparser struct {
	in  string
	pos int
}

func (p *qparser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *qparser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *qparser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// word reads the identifier at the cursor without consuming it.
func (p *qparser) word() string {
	i := p.pos
	for i < len(p.in) && isIdentChar(p.in[i]) {
		i++
	}
	return p.in[p.pos:i]
}

func (p *qparser) eatWord(w string) bool {
	if p.word() == w {
		p.pos += len(w)
		return true
	}
	return false
}

func isIdentChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '-' || b == '.'
}

// seq parses a sequence of literal text and brace expressions. If inBrace
// is true the sequence ends at an unconsumed '}'.
func (p *qparser) seq(inBrace bool) (Expr, error) {
	var items []Expr
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '{':
			p.pos++
			e, err := p.braceExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
		case '}':
			if !inBrace {
				return NewSeq(items...), nil
			}
			return NewSeq(items...), nil
		default:
			start := p.pos
			for p.pos < len(p.in) && p.in[p.pos] != '{' && p.in[p.pos] != '}' {
				p.pos++
			}
			lit := strings.TrimSpace(p.in[start:p.pos])
			if lit != "" {
				items = append(items, &Str{S: lit})
			}
		}
	}
	if inBrace {
		return nil, p.errf("unexpected end of query: missing '}'")
	}
	return NewSeq(items...), nil
}

// braceExpr parses the contents of { ... } including the closing brace.
func (p *qparser) braceExpr() (Expr, error) {
	p.skipSpace()
	switch {
	case p.word() == "for":
		return p.forExpr()
	case p.word() == "if":
		return p.ifExpr()
	case p.peek() == '$' || p.peek() == '/':
		v, path, err := p.varPath()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != '}' {
			return nil, p.errf("expected '}' after %s", v)
		}
		p.pos++
		if len(path) == 0 {
			return &VarOut{Var: v}, nil
		}
		return &PathOut{Var: v, Path: path}, nil
	default:
		// A brace group: { α } groups a sequence (the paper writes e.g.
		// return { <result> {$article/author} </result> } in Example 4.6).
		e, err := p.seq(true)
		if err != nil {
			return nil, err
		}
		if p.peek() != '}' {
			return nil, p.errf("missing '}' after brace group")
		}
		p.pos++
		return e, nil
	}
}

func (p *qparser) forExpr() (Expr, error) {
	if !p.eatWord("for") {
		return nil, p.errf("expected 'for'")
	}
	p.skipSpace()
	v, err := p.variable()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eatWord("in") {
		return nil, p.errf("expected 'in' in for-loop")
	}
	p.skipSpace()
	src, path, err := p.varPath()
	if err != nil {
		return nil, err
	}
	if len(path) == 0 {
		return nil, p.errf("for-loop requires a path ($y/π)")
	}
	p.skipSpace()
	var where Cond
	if p.eatWord("where") {
		where, err = p.cond()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
	}
	if !p.eatWord("return") {
		return nil, p.errf("expected 'return' in for-loop")
	}
	body, err := p.seq(true)
	if err != nil {
		return nil, err
	}
	if p.peek() != '}' {
		return nil, p.errf("missing '}' after for-loop body")
	}
	p.pos++
	return &For{Var: v, Src: src, Path: path, Where: where, Body: body}, nil
}

func (p *qparser) ifExpr() (Expr, error) {
	if !p.eatWord("if") {
		return nil, p.errf("expected 'if'")
	}
	cond, err := p.cond()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eatWord("then") {
		return nil, p.errf("expected 'then' in conditional")
	}
	body, err := p.seq(true)
	if err != nil {
		return nil, err
	}
	if p.peek() != '}' {
		return nil, p.errf("missing '}' after conditional body")
	}
	p.pos++
	return &If{Cond: cond, Then: body}, nil
}

// variable parses $name.
func (p *qparser) variable() (string, error) {
	if p.peek() != '$' {
		return "", p.errf("expected variable")
	}
	start := p.pos
	p.pos++
	w := p.word()
	if w == "" {
		return "", p.errf("expected variable name after '$'")
	}
	p.pos += len(w)
	return p.in[start:p.pos], nil
}

// varPath parses $x, $x/a/b, or an absolute /a/b (implying $ROOT).
func (p *qparser) varPath() (string, Path, error) {
	var v string
	if p.peek() == '/' {
		v = RootVar
	} else {
		var err error
		v, err = p.variable()
		if err != nil {
			return "", nil, err
		}
	}
	var path Path
	for p.peek() == '/' {
		p.pos++
		w := p.word()
		if w == "" {
			return "", nil, p.errf("expected element name in path")
		}
		p.pos += len(w)
		path = append(path, w)
	}
	return v, path, nil
}

// --- Condition grammar -------------------------------------------------

func (p *qparser) cond() (Cond, error) {
	l, err := p.condAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.eatWord("or") {
			return l, nil
		}
		r, err := p.condAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
}

func (p *qparser) condAnd() (Cond, error) {
	l, err := p.condUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.eatWord("and") {
			return l, nil
		}
		r, err := p.condUnary()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
}

func (p *qparser) condUnary() (Cond, error) {
	p.skipSpace()
	switch {
	case p.eatWord("not"):
		x, err := p.condUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	case p.eatWord("true"):
		return True{}, nil
	case p.eatWord("exists"):
		p.skipSpace()
		v, path, err := p.varPath()
		if err != nil {
			return nil, err
		}
		if len(path) == 0 {
			return nil, p.errf("exists requires a path")
		}
		return &Exists{Var: v, Path: path}, nil
	case p.eatWord("empty"):
		p.skipSpace()
		if p.peek() != '(' {
			return nil, p.errf("expected '(' after empty")
		}
		p.pos++
		p.skipSpace()
		v, path, err := p.varPath()
		if err != nil {
			return nil, err
		}
		if len(path) == 0 {
			return nil, p.errf("empty requires a path")
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')' after empty(...)")
		}
		p.pos++
		return &Exists{Var: v, Path: path, Neg: true}, nil
	case p.peek() == '(':
		p.pos++
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')' in condition")
		}
		p.pos++
		return c, nil
	default:
		return p.comparison()
	}
}

func (p *qparser) comparison() (Cond, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	op, err := p.relOp()
	if err != nil {
		return nil, err
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &Cmp{L: l, R: r, Op: op}, nil
}

func (p *qparser) relOp() (RelOp, error) {
	switch {
	case strings.HasPrefix(p.in[p.pos:], "!="):
		p.pos += 2
		return OpNe, nil
	case strings.HasPrefix(p.in[p.pos:], "<="):
		p.pos += 2
		return OpLe, nil
	case strings.HasPrefix(p.in[p.pos:], ">="):
		p.pos += 2
		return OpGe, nil
	case p.peek() == '=':
		p.pos++
		return OpEq, nil
	case p.peek() == '<':
		p.pos++
		return OpLt, nil
	case p.peek() == '>':
		p.pos++
		return OpGt, nil
	default:
		return 0, p.errf("expected comparison operator")
	}
}

// operand parses a string literal, a number (optionally followed by
// '* $y/π', the Appendix A arithmetic form), a parenthesized scaled path
// '(c * $y/π)', or a path operand.
func (p *qparser) operand() (Operand, error) {
	p.skipSpace()
	switch {
	case p.peek() == '\'' || p.peek() == '"':
		quote := p.peek()
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != quote {
			p.pos++
		}
		if p.pos == len(p.in) {
			return Operand{}, p.errf("unterminated string literal")
		}
		s := p.in[start:p.pos]
		p.pos++
		return ConstOp(s), nil
	case p.peek() == '(':
		p.pos++
		op, err := p.operand()
		if err != nil {
			return Operand{}, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return Operand{}, p.errf("expected ')' around operand")
		}
		p.pos++
		return op, nil
	case p.peek() == '$' || p.peek() == '/':
		v, path, err := p.varPath()
		if err != nil {
			return Operand{}, err
		}
		if len(path) == 0 {
			return Operand{}, p.errf("condition operand requires a path ($x/π)")
		}
		return PathOp(v, path), nil
	default:
		start := p.pos
		for p.pos < len(p.in) && (p.in[p.pos] >= '0' && p.in[p.pos] <= '9' || p.in[p.pos] == '.' || p.in[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return Operand{}, p.errf("expected operand")
		}
		numText := p.in[start:p.pos]
		num, err := strconv.ParseFloat(numText, 64)
		if err != nil {
			return Operand{}, p.errf("bad number %q", numText)
		}
		p.skipSpace()
		if p.peek() == '*' {
			p.pos++
			p.skipSpace()
			v, path, err := p.varPath()
			if err != nil {
				return Operand{}, err
			}
			if len(path) == 0 {
				return Operand{}, p.errf("scaled operand requires a path")
			}
			op := PathOp(v, path)
			op.Scale = num
			return op, nil
		}
		return ConstOp(numText), nil
	}
}

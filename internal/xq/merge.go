package xq

import (
	"flux/internal/dtd"
)

// This file implements the Section 7 algebraic optimizations that exploit
// cardinality constraints derived from the DTD:
//
//  1. loop merging — the paper's rewrite rule
//
//     { for $x in $r/a return α } { for $x' in $r/a return β }
//     ────────────────────────────────────────────────────────  (a ∈ ||≤1_$r)
//     { for $x in $r/a return α β[$x'↦$x] }
//
//  2. nested loop re-binding — inside the body of {for $v in $z/a … }, a
//     loop {for $u in $z/a return β} ranges over the very node $v when a
//     occurs at most once among $z's children, so it collapses to
//     β[$u↦$v]. This is what lets the scheduler handle the XMark queries'
//     re-opened absolute paths (/site/… inside a person loop): after
//     re-binding, rewrite() discovers past(people, closed_auctions) at the
//     site level instead of giving up.
//
// Both preserve semantics: within one iteration of the outer loop the
// singleton cardinality means the two ranges are node-for-node identical.

// MergeLoops applies both cardinality optimizations to a normalized query
// until no rule applies. The variable→element binding needed to look up
// cardinality facts is inferred structurally ($ROOT ↦ #document, a loop
// over $y/a binds its variable to element a).
func MergeLoops(q Expr, schema *dtd.Schema) Expr {
	m := &merger{schema: schema}
	binding := map[string]string{RootVar: dtd.DocumentVar}
	return m.rewrite(Copy(q), binding)
}

type merger struct {
	schema *dtd.Schema
}

func (m *merger) rewrite(e Expr, binding map[string]string) Expr {
	switch e := e.(type) {
	case nil, *Str, *VarOut, *PathOut:
		return e
	case *If:
		e.Then = m.rewrite(e.Then, binding)
		return e
	case *Seq:
		for i, it := range e.Items {
			e.Items[i] = m.rewrite(it, binding)
		}
		return NewSeq(m.mergeSiblings(e.Items, binding)...)
	case *For:
		inner := extend(binding, e.Var, e.Path[len(e.Path)-1])
		e.Body = m.rewrite(e.Body, inner)
		e.Body = m.rebindWithin(e, e.Body, inner)
		return e
	default:
		panic("xq: unknown expression type in MergeLoops")
	}
}

func extend(binding map[string]string, v, elem string) map[string]string {
	out := make(map[string]string, len(binding)+1)
	for k, val := range binding {
		out[k] = val
	}
	out[v] = elem
	return out
}

// singleton reports whether the step from variable src to child a is
// provably at-most-once under the schema.
func (m *merger) singleton(binding map[string]string, src, a string) bool {
	elem, ok := binding[src]
	if !ok {
		return false
	}
	return m.schema.AtMostOnce(elem, a)
}

// mergeSiblings fuses adjacent loops over the same singleton step.
func (m *merger) mergeSiblings(items []Expr, binding map[string]string) []Expr {
	var out []Expr
	for _, it := range items {
		cur, okCur := it.(*For)
		if okCur && len(out) > 0 {
			if prev, okPrev := out[len(out)-1].(*For); okPrev &&
				prev.Src == cur.Src && len(prev.Path) == 1 && len(cur.Path) == 1 &&
				prev.Path[0] == cur.Path[0] && prev.Where == nil && cur.Where == nil &&
				m.singleton(binding, cur.Src, cur.Path[0]) {
				body := RenameVar(cur.Body, cur.Var, prev.Var)
				prev.Body = NewSeq(prev.Body, body)
				// The merged body may expose new adjacent pairs one level
				// down; re-run on it with the extended binding.
				inner := extend(binding, prev.Var, prev.Path[0])
				prev.Body = NewSeq(m.mergeSiblings(Items(prev.Body), inner)...)
				continue
			}
		}
		out = append(out, it)
	}
	return out
}

// rebindWithin replaces, anywhere inside body, loops that re-range over
// outer's singleton step from the same source variable.
func (m *merger) rebindWithin(outer *For, body Expr, binding map[string]string) Expr {
	if len(outer.Path) != 1 || !m.singleton(binding, outer.Src, outer.Path[0]) {
		return body
	}
	var visit func(e Expr) Expr
	visit = func(e Expr) Expr {
		switch e := e.(type) {
		case nil, *Str, *VarOut, *PathOut:
			return e
		case *If:
			e.Then = visit(e.Then)
			return e
		case *Seq:
			for i, it := range e.Items {
				e.Items[i] = visit(it)
			}
			return e
		case *For:
			if e.Src == outer.Src && len(e.Path) == 1 && e.Path[0] == outer.Path[0] && e.Where == nil {
				// β[$u ↦ $v], then keep simplifying inside the spliced body.
				return visit(RenameVar(e.Body, e.Var, outer.Var))
			}
			e.Body = visit(e.Body)
			return e
		default:
			panic("xq: unknown expression type in rebind")
		}
	}
	return visit(body)
}

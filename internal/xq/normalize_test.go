package xq

import (
	"strings"
	"testing"
	"testing/quick"

	"flux/internal/dtd"
)

// TestNormalizeExample42 reproduces the paper's Example 4.2: XMP Q1 and
// its normalization Q1'.
func TestNormalizeExample42(t *testing.T) {
	q1 := MustParse(`<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/year > 1991
  return <book> {$b/year} {$b/title} </book> }
</bib>`)
	got := Print(Normalize(q1))
	chi := `$b/publisher = 'Addison-Wesley' and $b/year > 1991`
	want := `<bib> ` +
		`{ for $bib in $ROOT/bib return ` +
		`{ for $b in $bib/book return ` +
		`{ if ` + chi + ` then <book> } ` +
		`{ for $year in $b/year return { if ` + chi + ` then { $year } } } ` +
		`{ for $title in $b/title return { if ` + chi + ` then { $title } } } ` +
		`{ if ` + chi + ` then </book> } } } ` +
		`</bib>`
	if got != want {
		t.Errorf("normalization mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestNormalizeExample44 checks the shape of Q2's normalization (the
// paper omits Q2 and shows Q2' directly).
func TestNormalizeExample44(t *testing.T) {
	q2p := MustParse(`<results>
{ for $bib in $ROOT/bib return
  { for $b in $bib/book return
    { for $t in $b/title return
      { for $a in $b/author return
        <result> {$t} {$a} </result> } } } }
</results>`)
	n := Normalize(q2p)
	if !IsNormalForm(n) {
		t.Fatalf("not in normal form: %s", Print(n))
	}
	// Already normalized: normalization must be the identity here.
	if Print(n) != Print(q2p) {
		t.Errorf("already-normal query changed:\n got %s\nwant %s", Print(n), Print(q2p))
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	queries := []string{
		`<bib> { for $b in $ROOT/bib/book where $b/publisher = 'X' return <book> {$b/year} </book> } </bib>`,
		`{ $ROOT/bib/book/title }`,
		`{ if $x/a = 1 then { if $x/b = 2 then out } }`,
		`{ for $p in /site/people/person where empty($p/person_income) return {$p} }`,
		`plain text`,
		``,
	}
	for _, in := range queries {
		n1 := Normalize(MustParse(in))
		if !IsNormalForm(n1) {
			t.Errorf("Normalize(%q) not in normal form: %s", in, Print(n1))
		}
		n2 := Normalize(n1)
		if Print(n1) != Print(n2) {
			t.Errorf("Normalize not idempotent for %q:\n  %s\n  %s", in, Print(n1), Print(n2))
		}
	}
}

func TestNormalizeConditionalFusion(t *testing.T) {
	q := MustParse(`{ if $x/a = 1 then { if $x/b = 2 then { for $y in $x/c return out } } }`)
	got := Print(Normalize(q))
	want := `{ for $y in $x/c return { if ($x/a = 1 and $x/b = 2) and true then out } }`
	// The exact conjunction nesting depends on distribution order; accept
	// the semantically-identical variant without the trailing "and true".
	alt := `{ for $y in $x/c return { if $x/a = 1 and $x/b = 2 then out } }`
	if got != want && got != alt {
		t.Errorf("normalization = %s, want %s", got, alt)
	}
}

func TestNormalizeUniquifiesVars(t *testing.T) {
	q := MustParse(`{ for $x in $ROOT/a return { $x } } { for $x in $ROOT/b return { $x } }`)
	n := Normalize(q)
	seen := map[string]int{}
	Walk(n, func(e Expr) {
		if f, ok := e.(*For); ok {
			seen[f.Var]++
		}
	})
	for v, cnt := range seen {
		if cnt > 1 {
			t.Errorf("variable %s bound %d times after Normalize: %s", v, cnt, Print(n))
		}
	}
	if len(seen) != 2 {
		t.Errorf("want 2 distinct loop vars, got %v", seen)
	}
}

func TestNormalizeFreshNamesFollowSteps(t *testing.T) {
	q := MustParse(`{ $b/year } { $b/title }`)
	got := Print(Normalize(q))
	want := `{ for $year in $b/year return { $year } } { for $title in $b/title return { $title } }`
	if got != want {
		t.Errorf("normalization = %s, want %s", got, want)
	}
}

// TestNormalizePreservesFreeVars: normalization must not change the free
// variables of a query (property test over random queries).
func TestNormalizePreservesFreeVars(t *testing.T) {
	gen := newQueryGen()
	f := func(seed uint32) bool {
		q := gen.query(seed)
		before := strings.Join(FreeVars(q), ",")
		n := Normalize(q)
		after := strings.Join(FreeVars(n), ",")
		if !IsNormalForm(n) {
			t.Logf("not normal form: %s", Print(n))
			return false
		}
		if before != after {
			t.Logf("free vars changed: %q -> %q for %s", before, after, Print(q))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// queryGen builds small random XQuery⁻ queries from a seed.
type queryGen struct{}

func newQueryGen() *queryGen { return &queryGen{} }

func (g *queryGen) query(seed uint32) Expr {
	s := seed
	next := func(n uint32) uint32 {
		s = s*1664525 + 1013904223
		return (s >> 16) % n
	}
	steps := []string{"a", "b", "c"}
	var build func(depth int, vars []string) Expr
	build = func(depth int, vars []string) Expr {
		if depth == 0 {
			return &Str{S: "leaf"}
		}
		switch next(6) {
		case 0:
			return &Str{S: "s" + steps[next(3)]}
		case 1:
			return &VarOut{Var: vars[next(uint32(len(vars)))]}
		case 2:
			p := Path{steps[next(3)]}
			if next(2) == 0 {
				p = append(p, steps[next(3)])
			}
			return &PathOut{Var: vars[next(uint32(len(vars)))], Path: p}
		case 3:
			v := "$v" // deliberately reused to exercise uniquify
			var where Cond
			if next(2) == 0 {
				where = &Cmp{L: PathOp(vars[next(uint32(len(vars)))], Path{steps[next(3)]}),
					R: ConstOp("1"), Op: OpEq}
			}
			return &For{Var: v, Src: vars[next(uint32(len(vars)))],
				Path: Path{steps[next(3)]}, Where: where,
				Body: build(depth-1, append(vars, v))}
		case 4:
			return &If{Cond: &Exists{Var: vars[next(uint32(len(vars)))], Path: Path{steps[next(3)]}},
				Then: build(depth-1, vars)}
		default:
			return NewSeq(build(depth-1, vars), build(depth-1, vars))
		}
	}
	return build(3, []string{RootVar})
}

// --- MergeLoops tests ---------------------------------------------------

const pubDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,publisher?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (name,address)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT address (#PCDATA)>
`

// TestMergeSiblingLoops reproduces the Section 7 example: two normalized
// loops over the singleton publisher merge into one.
func TestMergeSiblingLoops(t *testing.T) {
	schema := dtd.MustParse(pubDTD)
	q := MustParse(`{ for $b in $ROOT/bib/book return {$b/publisher/name} {$b/publisher/address} }`)
	n := Normalize(q)
	merged := MergeLoops(n, schema)
	count := 0
	Walk(merged, func(e Expr) {
		if f, ok := e.(*For); ok && len(f.Path) == 1 && f.Path[0] == "publisher" {
			count++
		}
	})
	if count != 1 {
		t.Errorf("publisher loops after merge = %d, want 1:\n%s", count, Print(merged))
	}
	if !IsNormalForm(merged) {
		t.Errorf("merge broke normal form: %s", Print(merged))
	}
}

func TestMergeDoesNotFuseRepeatable(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title*)>
<!ELEMENT title (#PCDATA)>
`)
	q := MustParse(`{ for $b in $ROOT/bib/book return {$b/title} {$b/title} }`)
	merged := MergeLoops(Normalize(q), schema)
	count := 0
	Walk(merged, func(e Expr) {
		if f, ok := e.(*For); ok && f.Path[0] == "title" {
			count++
		}
	})
	if count != 2 {
		t.Errorf("title loops = %d, want 2 (title is repeatable):\n%s", count, Print(merged))
	}
}

// TestRebindNestedAbsolutePath is the XMark Q8 pattern: an absolute path
// re-opened inside an inner scope collapses onto the enclosing singleton
// binding.
func TestRebindNestedAbsolutePath(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT site (people,closed_auctions)>
<!ELEMENT people (person)*>
<!ELEMENT person (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (#PCDATA)>
`)
	q := MustParse(`{ for $p in /site/people/person return
		{ for $t in /site/closed_auctions/closed_auction return {$t} } }`)
	merged := MergeLoops(Normalize(q), schema)
	// After re-binding there must be exactly one loop over the site step.
	siteLoops := 0
	Walk(merged, func(e Expr) {
		if f, ok := e.(*For); ok && f.Path[0] == "site" {
			siteLoops++
		}
	})
	if siteLoops != 1 {
		t.Errorf("site loops = %d, want 1:\n%s", siteLoops, Print(merged))
	}
	// And the closed_auctions loop must now hang off the outer site var.
	var siteVar, caSrc string
	Walk(merged, func(e Expr) {
		if f, ok := e.(*For); ok {
			switch f.Path[0] {
			case "site":
				siteVar = f.Var
			case "closed_auctions":
				caSrc = f.Src
			}
		}
	})
	if caSrc == "" || caSrc != siteVar {
		t.Errorf("closed_auctions loop src = %q, want site var %q:\n%s", caSrc, siteVar, Print(merged))
	}
}

func TestRebindRespectsCardinality(t *testing.T) {
	// With site repeatable, re-binding would change semantics; it must not
	// happen.
	schema := dtd.MustParse(`
<!ELEMENT top (site)*>
<!ELEMENT site (a,b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	q := MustParse(`{ for $s in $ROOT/top/site return { for $s2 in $ROOT/top/site return {$s2/a} } }`)
	merged := MergeLoops(Normalize(q), schema)
	siteLoops := 0
	Walk(merged, func(e Expr) {
		if f, ok := e.(*For); ok && f.Path[0] == "site" {
			siteLoops++
		}
	})
	if siteLoops != 2 {
		t.Errorf("site loops = %d, want 2 (site repeats under top):\n%s", siteLoops, Print(merged))
	}
}

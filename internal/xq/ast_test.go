package xq

import (
	"math/rand"
	"reflect"
	"testing"
)

// randAST builds random well-formed ASTs (not schema-aware; for printer /
// parser round-trip properties).
func randAST(r *rand.Rand, depth int, vars []string) Expr {
	if depth == 0 {
		return &Str{S: "x"}
	}
	pick := func() string { return vars[r.Intn(len(vars))] }
	step := func() string { return string(rune('a' + r.Intn(4))) }
	path := func() Path {
		p := Path{step()}
		if r.Intn(2) == 0 {
			p = append(p, step())
		}
		return p
	}
	var cond func(d int) Cond
	cond = func(d int) Cond {
		if d == 0 {
			return True{}
		}
		switch r.Intn(6) {
		case 0:
			return &And{L: cond(d - 1), R: cond(d - 1)}
		case 1:
			return &Or{L: cond(d - 1), R: cond(d - 1)}
		case 2:
			return &Not{X: cond(d - 1)}
		case 3:
			return &Exists{Var: pick(), Path: path(), Neg: r.Intn(2) == 0}
		case 4:
			op := PathOp(pick(), path())
			if r.Intn(2) == 0 {
				op.Scale = float64(1 + r.Intn(9))
			}
			return &Cmp{L: PathOp(pick(), path()), R: op, Op: RelOp(r.Intn(6))}
		default:
			return &Cmp{L: PathOp(pick(), path()), R: ConstOp("lit"), Op: RelOp(r.Intn(6))}
		}
	}
	switch r.Intn(6) {
	case 0:
		return &Str{S: "str" + step()}
	case 1:
		return &VarOut{Var: pick()}
	case 2:
		return &PathOut{Var: pick(), Path: path()}
	case 3:
		return &If{Cond: cond(2), Then: randAST(r, depth-1, vars)}
	case 4:
		v := "$w" + step()
		f := &For{Var: v, Src: pick(), Path: path()}
		if r.Intn(2) == 0 {
			f.Where = cond(2)
		}
		f.Body = randAST(r, depth-1, append(vars, v))
		return f
	default:
		return NewSeq(randAST(r, depth-1, vars), randAST(r, depth-1, vars))
	}
}

// TestPrintParseRoundTripProperty: Print followed by Parse is the identity
// on random ASTs (up to Seq flattening, which NewSeq already performs).
func TestPrintParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		ast := randAST(r, 4, []string{RootVar, "$z"})
		text := Print(ast)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: reparse of %q failed: %v", i, text, err)
		}
		if Print(back) != text {
			t.Fatalf("iteration %d: print not stable:\n  %s\n  %s", i, text, Print(back))
		}
	}
}

// TestCopyIsDeep: mutating a copy never changes the original.
func TestCopyIsDeep(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		ast := randAST(r, 4, []string{RootVar})
		before := Print(ast)
		cp := Copy(ast)
		mutate(cp)
		if Print(ast) != before {
			t.Fatalf("iteration %d: Copy shares state with original", i)
		}
	}
}

func mutate(e Expr) {
	Walk(e, func(x Expr) {
		switch x := x.(type) {
		case *Str:
			x.S = "MUT"
		case *For:
			x.Var = "$MUT"
			if len(x.Path) > 0 {
				x.Path[0] = "MUT"
			}
		case *PathOut:
			x.Var = "$MUT"
		case *VarOut:
			x.Var = "$MUT"
		}
	})
}

// TestNormalizeTerminatesOnRandomASTs: Theorem 4.1's termination and
// idempotence over random inputs.
func TestNormalizeTerminatesOnRandomASTs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		ast := randAST(r, 4, []string{RootVar})
		n1 := Normalize(ast)
		if !IsNormalForm(n1) {
			t.Fatalf("iteration %d: not normal form: %s", i, Print(n1))
		}
		n2 := Normalize(n1)
		if Print(n1) != Print(n2) {
			t.Fatalf("iteration %d: not idempotent:\n  %s\n  %s", i, Print(n1), Print(n2))
		}
	}
}

func TestItemsAndNewSeq(t *testing.T) {
	if got := Items(NewSeq()); len(got) != 0 {
		t.Errorf("Items(empty) = %v", got)
	}
	one := &Str{S: "a"}
	if got := NewSeq(one); got != one {
		t.Errorf("singleton Seq not collapsed")
	}
	nested := NewSeq(&Str{S: "a"}, NewSeq(&Str{S: "b"}, &Str{S: "c"}), nil, &Str{S: ""})
	if got := len(Items(nested)); got != 3 {
		t.Errorf("flattened items = %d, want 3 (%s)", got, Print(nested))
	}
}

func TestCondPathsNilSafe(t *testing.T) {
	if got := CondPaths(nil, nil); got != nil {
		t.Errorf("CondPaths(nil) = %v", got)
	}
	c := &And{L: True{}, R: &Not{X: &Exists{Var: "$x", Path: Path{"a"}}}}
	got := CondPaths(c, nil)
	want := []CondPath{{Var: "$x", Path: Path{"a"}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CondPaths = %v, want %v", got, want)
	}
}

package xq

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseIntroQuery(t *testing.T) {
	// XMP Q3 from the paper's introduction.
	q := MustParse(`<results>
{ for $b in $ROOT/bib/book return
<result> { $b/title } { $b/author } </result> }
</results>`)
	items := Items(q)
	if len(items) != 3 {
		t.Fatalf("top level has %d items, want 3: %s", len(items), Print(q))
	}
	if s, ok := items[0].(*Str); !ok || s.S != "<results>" {
		t.Errorf("first item = %#v, want <results>", items[0])
	}
	f, ok := items[1].(*For)
	if !ok {
		t.Fatalf("second item is %T, want *For", items[1])
	}
	if f.Var != "$b" || f.Src != "$ROOT" || f.Path.String() != "bib/book" {
		t.Errorf("for = %+v", f)
	}
	body := Items(f.Body)
	if len(body) != 4 {
		t.Fatalf("for body has %d items, want 4: %s", len(body), Print(f.Body))
	}
	if p, ok := body[1].(*PathOut); !ok || p.Var != "$b" || p.Path.String() != "title" {
		t.Errorf("body[1] = %#v", body[1])
	}
}

func TestParseAbsolutePath(t *testing.T) {
	q := MustParse(`{ for $b in /site/people/person return { $b } }`)
	f := q.(*For)
	if f.Src != RootVar || f.Path.String() != "site/people/person" {
		t.Errorf("for = %+v", f)
	}
}

func TestParseConditions(t *testing.T) {
	cases := []struct{ in, want string }{
		{`$b/publisher = "Addison-Wesley" and $b/year > 1991`,
			`$b/publisher = 'Addison-Wesley' and $b/year > 1991`},
		{`$a/x = $b/y or not $a/z < 5`, `$a/x = $b/y or not $a/z < 5`},
		{`exists $x/a/b`, `exists $x/a/b`},
		{`empty($p/person_income)`, `empty($p/person_income)`},
		{`$p/profile/profile_income > (5000 * $o/initial)`,
			`$p/profile/profile_income > (5000 * $o/initial)`},
		{`$p/a > 5000 * $o/b`, `$p/a > (5000 * $o/b)`},
		{`true and $x/a != 'q'`, `true and $x/a != 'q'`},
		{`($x/a = 1 or $x/b = 2) and $x/c >= 3`, `($x/a = 1 or $x/b = 2) and $x/c >= 3`},
		{`$x/a <= 7`, `$x/a <= 7`},
	}
	for _, c := range cases {
		cond, err := ParseCond(c.in)
		if err != nil {
			t.Errorf("ParseCond(%q): %v", c.in, err)
			continue
		}
		if got := PrintCond(cond); got != c.want {
			t.Errorf("PrintCond(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`{ for $x in $y return {$x} }`,         // no path
		`{ for $x $y/a return {$x} }`,          // missing in
		`{ for $x in $y/a {$x} }`,              // missing return
		`{ $x`,                                 // unterminated
		`{ if $x/a then {$x}`,                  // unterminated
		`a } b`,                                // stray close... (tolerated? no: error)
		`{ for $x in $y/a where return {$x} }`, // empty condition
		`{ if $x/a = then {$x} }`,              // bad operand
		`{ if $x/a = 'x then {$x} }`,           // unterminated literal
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	queries := []string{
		`<results> { for $b in $ROOT/bib/book return <result> { $b/title } { $b/author } </result> } </results>`,
		`{ for $b in $ROOT/bib/book where $b/publisher = 'X' and $b/year > 1991 return <book> { $b/year } </book> }`,
		`{ if $x/a = 'v' then out }`,
		`{ $ROOT/bib }`,
		`hello world`,
		`{ for $p in $ROOT/site/people/person where empty($p/person_income) return { $p } }`,
	}
	for _, in := range queries {
		e1 := MustParse(in)
		p1 := Print(e1)
		e2, err := Parse(p1)
		if err != nil {
			t.Errorf("reparse of %q: %v", p1, err)
			continue
		}
		if p2 := Print(e2); p2 != p1 {
			t.Errorf("print/parse not a fixpoint:\n  %q\n  %q", p1, p2)
		}
		if !reflect.DeepEqual(e1, e2) {
			t.Errorf("ASTs differ for %q", in)
		}
	}
}

func TestFreeVars(t *testing.T) {
	q := MustParse(`{ for $b in $ROOT/bib/book return { $b/title } { $z } }`)
	got := FreeVars(q)
	want := []string{"$ROOT", "$z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FreeVars = %v, want %v", got, want)
	}
	// where-clause variables count; bound variable does not.
	q2 := MustParse(`{ for $b in $y/book where $b/x = $w/y return ok }`)
	if got := FreeVars(q2); !reflect.DeepEqual(got, []string{"$w", "$y"}) {
		t.Errorf("FreeVars = %v, want [$w $y]", got)
	}
}

func TestUsesVar(t *testing.T) {
	q := MustParse(`{ for $b in $y/book return { $b } }`)
	if !UsesVar(q, "$b") {
		t.Error("UsesVar($b) = false")
	}
	if UsesVar(q, "$y") {
		t.Error("UsesVar($y) = true; $y is only a range, not output")
	}
}

func TestRenameVarShadowing(t *testing.T) {
	q := MustParse(`{ for $x in $y/a return { $x } } { $x }`)
	r := RenameVar(q, "$x", "$z")
	want := `{ for $x in $y/a return { $x } } { $z }`
	if got := Print(r); got != want {
		t.Errorf("RenameVar = %q, want %q", got, want)
	}
}

func TestWhitespaceTrimming(t *testing.T) {
	q := MustParse("  <a>\n  { $x }  \n  </a>  ")
	if got := Print(q); got != "<a> { $x } </a>" {
		t.Errorf("Print = %q", got)
	}
}

func TestCondPathsCollection(t *testing.T) {
	q := MustParse(`{ for $b in $y/book where $b/x = $w/y/z and exists $b/q return ok }`)
	paths := ExprCondPaths(q)
	var got []string
	for _, cp := range paths {
		got = append(got, cp.Var+"/"+cp.Path.String())
	}
	want := []string{"$b/x", "$w/y/z", "$b/q"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("cond paths = %v, want %v", got, want)
	}
}

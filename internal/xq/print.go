package xq

import (
	"fmt"
	"strings"
)

// Print renders e in canonical XQuery⁻ surface syntax (one line). Parsing
// the result yields an equal AST.
func Print(e Expr) string {
	var b strings.Builder
	printExpr(&b, e)
	return b.String()
}

func printExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case nil:
	case *Seq:
		for i, it := range e.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			printExpr(b, it)
		}
	case *Str:
		b.WriteString(e.S)
	case *VarOut:
		fmt.Fprintf(b, "{ %s }", e.Var)
	case *PathOut:
		fmt.Fprintf(b, "{ %s/%s }", e.Var, e.Path)
	case *If:
		fmt.Fprintf(b, "{ if %s then ", PrintCond(e.Cond))
		printExpr(b, e.Then)
		b.WriteString(" }")
	case *For:
		fmt.Fprintf(b, "{ for %s in %s/%s", e.Var, e.Src, e.Path)
		if e.Where != nil {
			fmt.Fprintf(b, " where %s", PrintCond(e.Where))
		}
		b.WriteString(" return ")
		printExpr(b, e.Body)
		b.WriteString(" }")
	default:
		panic("xq: unknown expression type in Print")
	}
}

// PrintCond renders a condition in canonical syntax.
func PrintCond(c Cond) string {
	var b strings.Builder
	printCond(&b, c, 0)
	return b.String()
}

// precedence: or=0, and=1, unary=2
func printCond(b *strings.Builder, c Cond, prec int) {
	switch c := c.(type) {
	case nil:
		b.WriteString("true")
	case True:
		b.WriteString("true")
	case *Or:
		if prec > 0 {
			b.WriteByte('(')
		}
		printCond(b, c.L, 0)
		b.WriteString(" or ")
		printCond(b, c.R, 1)
		if prec > 0 {
			b.WriteByte(')')
		}
	case *And:
		if prec > 1 {
			b.WriteByte('(')
		}
		printCond(b, c.L, 1)
		b.WriteString(" and ")
		printCond(b, c.R, 2)
		if prec > 1 {
			b.WriteByte(')')
		}
	case *Not:
		b.WriteString("not ")
		printCond(b, c.X, 2)
	case *Exists:
		if c.Neg {
			fmt.Fprintf(b, "empty(%s/%s)", c.Var, c.Path)
		} else {
			fmt.Fprintf(b, "exists %s/%s", c.Var, c.Path)
		}
	case *Cmp:
		printOperand(b, c.L)
		fmt.Fprintf(b, " %s ", c.Op)
		printOperand(b, c.R)
	default:
		panic("xq: unknown condition type in PrintCond")
	}
}

func printOperand(b *strings.Builder, o Operand) {
	if o.Kind == ConstOperand {
		if isNumber(o.Const) {
			b.WriteString(o.Const)
		} else {
			fmt.Fprintf(b, "'%s'", o.Const)
		}
		return
	}
	if o.Scale != 0 {
		fmt.Fprintf(b, "(%v * %s/%s)", o.Scale, o.Var, o.Path)
		return
	}
	fmt.Fprintf(b, "%s/%s", o.Var, o.Path)
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
		case s[i] == '-' && i == 0:
		case s[i] == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return true
}

package mux

// Streaming mode: a shared scan over a live, incrementally arriving
// document, with subscriptions attached and detached mid-stream.
//
// The batch Run owns its scan loop: plans are registered up front, the
// document is read to the end, results come back in one slice. A stream
// inverts all three. The caller owns the byte feed (sax.StartChunked
// pushes chunks as they arrive), subscriptions may join while the scan
// is in flight, and each query's output must reach its subscriber as
// matching subtrees complete, not at end of document. Streaming mode
// therefore splits Run into an explicit lifecycle — BeginStream, the
// Mux used directly as the scan's BatchHandler, EndStream — and adds
// AttachStream, a thread-safe way to enqueue a plan for activation at
// the next sync point.
//
// Sync points. A subscription cannot start receiving events at an
// arbitrary stream position: its engine validates from the document
// production down, so it must join where the open-element context is
// reconstructible. Those positions are exactly depth ≤ 1 — before the
// root element, or between complete top-level subtrees — where the only
// context is "root open or not", replayable as a single StartElement
// (or SkipSubtree, if the subscription's signature cannot match the
// root). A mid-stream joiner therefore observes the document *suffix*:
// top-level subtrees already past are gone, exactly as a listener who
// tunes in late misses what was broadcast. Plans whose root content
// model requires the missed subtrees fail validation at EndStream;
// subscribe-before-ingest avoids that for strict models.
//
// Streaming routing is always selective (token-by-token, through the
// merged path automaton), but the scan runs without scanner-level
// pruning: pruning commits at scan start to byte-skipping subtrees no
// registered plan observes, which would be wrong the moment a later
// subscriber's signature does observe them. A mid-stream joiner whose
// signature is new to the batch extends the automaton at its sync
// point: the machine is rebuilt with the new group appended (existing
// groups keep their indices and skip counters) and the live matcher is
// carried over via Matcher.Extend.

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"flux/internal/autom"
	"flux/internal/engine"
)

// streamState is the extra Mux state active only in streaming mode.
type streamState struct {
	rootName   string // interned root element name, "" until seen
	rootClosed bool   // the root end tag has been routed
	onDetach   func(slot int, err error)
	groupKeys  map[string]int // signature key -> group index, for mid-stream joins

	pendMu sync.Mutex
	pend   []pendingSub
	ended  bool         // EndStream ran; no further subscriptions accepted
	npend  atomic.Int32 // len(pend), readable without the lock
}

// pendingSub is a subscription enqueued by AttachStream, awaiting
// activation on the scan goroutine.
type pendingSub struct {
	ctx  context.Context
	plan *engine.Plan
	w    io.Writer
	done func(slot int, err error)
}

// NewStreaming returns a multiplexer in streaming mode: selective
// routing, an explicit BeginStream/EndStream lifecycle instead of Run,
// and mid-stream subscription management via AttachStream. Unlike batch
// muxes it tolerates having no live sessions — a stream with zero
// subscribers is still consumed (and well-formedness checked), since a
// subscriber may yet join.
func NewStreaming() *Mux {
	return &Mux{selective: true, stream: &streamState{}}
}

// OnDetach registers a callback invoked whenever a streaming slot is
// detached before EndStream — its context was canceled, its engine
// rejected the stream, or its writer failed. The hub serving the
// subscriber uses it to end that subscriber's response immediately
// instead of at end of stream. The callback runs on the scan goroutine,
// or — under SetParallel — on the worker goroutine that owns the slot's
// routing group, so it must be safe to call off the scan goroutine. It
// always runs immediately after the slot's Result was recorded, so
// ResultAt(slot) is valid inside it. Must be set before BeginStream;
// ignored in batch mode.
func (m *Mux) OnDetach(fn func(slot int, err error)) {
	if m.stream != nil {
		m.stream.onDetach = fn
	}
}

// errNotStreaming reports streaming lifecycle calls on a batch Mux.
var errNotStreaming = errors.New("mux: not a streaming mux (use NewStreaming)")

// ErrRootClosed rejects a subscription that arrives after the stream's
// root element has closed: no further events can ever reach it.
var ErrRootClosed = errors.New("mux: stream root element already closed")

// ErrStreamEnded rejects a subscription still pending when the stream
// ends.
var ErrStreamEnded = errors.New("mux: stream ended before subscription activated")

// BeginStream opens the stream: plans registered so far (the standing
// subscriptions) are grouped and their sessions begun. The caller then
// feeds the Mux as a sax.BatchHandler — typically via sax.StartChunked
// — and finally calls EndStream. BeginStream replaces Run and may be
// called once.
func (m *Mux) BeginStream() error {
	if m.stream == nil {
		return errNotStreaming
	}
	if m.ran {
		return errors.New("mux: BeginStream called twice")
	}
	m.ran = true
	m.buildGroups()
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.Begin(); err != nil {
			m.fail(i, err)
		}
	}
	m.startParallel()
	return nil
}

// AttachStream enqueues a plan as a new subscription on a live stream.
// Safe to call from any goroutine, before or during the scan. The
// subscription activates on the scan goroutine at the next sync point
// (stream position of depth ≤ 1); done is called there with the slot
// index assigned, or with a negative slot and the reason when the
// subscription can no longer be served (context already done, root
// element closed, stream over). A subscription activated mid-stream
// observes only the document suffix from its sync point on. Attaching
// after EndStream fails immediately with ErrStreamEnded (done is not
// called), so a subscription racing the end of the stream is always
// either activated or rejected, never silently lost.
func (m *Mux) AttachStream(ctx context.Context, plan *engine.Plan, w io.Writer, done func(slot int, err error)) error {
	if m.stream == nil {
		return errNotStreaming
	}
	if done == nil {
		done = func(int, error) {}
	}
	st := m.stream
	st.pendMu.Lock()
	if st.ended {
		st.pendMu.Unlock()
		return ErrStreamEnded
	}
	st.pend = append(st.pend, pendingSub{ctx: ctx, plan: plan, w: w, done: done})
	st.npend.Add(1)
	st.pendMu.Unlock()
	return nil
}

// takePending snapshots and clears the pending-subscription queue.
func (st *streamState) takePending() []pendingSub {
	st.pendMu.Lock()
	pend := st.pend
	st.pend = nil
	st.npend.Add(-int32(len(pend)))
	st.pendMu.Unlock()
	return pend
}

// endPending closes the pending queue — later AttachStream calls fail
// with ErrStreamEnded — and returns whatever was still queued, for
// rejection. Called once, by EndStream.
func (st *streamState) endPending() []pendingSub {
	st.pendMu.Lock()
	st.ended = true
	pend := st.pend
	st.pend = nil
	st.npend.Add(-int32(len(pend)))
	st.pendMu.Unlock()
	return pend
}

// activatePending admits every queued subscription at the current sync
// point. Runs on the scan goroutine with m.depth ≤ 1.
func (m *Mux) activatePending() {
	st := m.stream
	for _, p := range st.takePending() {
		if p.ctx != nil && p.ctx.Err() != nil {
			p.done(-1, p.ctx.Err())
			continue
		}
		if st.rootClosed {
			p.done(-1, ErrRootClosed)
			continue
		}
		slot := m.AddContext(p.ctx, p.plan, p.w)
		gi, fresh := m.streamGroup(p.plan)
		m.slotGroup = append(m.slotGroup, gi)
		g := m.groups[gi]
		g.members = append(g.members, slot)
		if fresh {
			// A signature the batch has not seen: rebuild the merged
			// automaton with the new group appended (existing groups keep
			// their indices) and extend the live matcher in place — at a
			// sync point the only context the new group needs is the root
			// transition.
			m.machine = autom.Build(m.machineGroups())
			m.matcher.Extend(m.machine, st.rootName)
			m.parAddGroup(gi)
		}
		s := m.sessions[slot]
		if err := s.Begin(); err != nil {
			m.fail(slot, err)
			p.done(slot, err)
			continue
		}
		// Replay the open-element context: if the root is open, the new
		// session sees its start tag now (or skips the whole remainder of
		// the root, if its group's automaton state is inactive), aligning
		// it with the rest of its group.
		if m.depth == 1 {
			if m.matcher.Active(gi) {
				if err := s.StartElement(st.rootName); err != nil {
					m.fail(slot, err)
					p.done(slot, err)
					continue
				}
			} else {
				if err := s.SkipSubtree(st.rootName); err != nil {
					m.fail(slot, err)
					p.done(slot, err)
					continue
				}
			}
		}
		p.done(slot, nil)
	}
}

// ResultAt returns the slot's Result. It is meaningful only once the
// slot is detached — from inside an OnDetach callback (which runs on the
// scan goroutine immediately after the Result is recorded) or after
// EndStream; a live slot's Result is still being accumulated.
func (m *Mux) ResultAt(slot int) Result { return m.results[slot] }

// streamGroup finds or creates the routing group for plan, returning
// its index and whether it was created now (a fresh group still needs
// the automaton rebuilt and the matcher aligned to the stream position).
func (m *Mux) streamGroup(plan *engine.Plan) (int, bool) {
	key := GroupKey(plan)
	if gi, ok := m.stream.groupKeys[key]; ok {
		return gi, false
	}
	gi := len(m.groups)
	m.stream.groupKeys[key] = gi
	m.groups = append(m.groups, &fanGroup{
		key:   key,
		sig:   plan.Signature(),
		stack: []*engine.SigNode{plan.Signature()},
	})
	return gi, true
}

// flushLive pushes each live session's buffered output through to its
// subscriber — the per-batch delivery point that makes results visible
// before end of stream. A flush failure (the subscriber's writer died)
// detaches that slot like any other per-query failure.
func (m *Mux) flushLive() {
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.Flush(); err != nil {
			m.fail(i, err)
		}
	}
}

// EndStream closes the stream and returns one Result per slot in
// attachment order. A nil streamErr means the feed ended cleanly: every
// live session runs its end-of-document finalization (Session.Finish).
// A non-nil streamErr — the scan failed, the producer died — is
// recorded on every live slot instead, like Run's stream-level failure
// path. Subscriptions still pending are rejected with ErrStreamEnded.
func (m *Mux) EndStream(streamErr error) []Result {
	if m.stream == nil {
		return nil
	}
	// Parallel pipeline barrier: drain and stop the workers before any
	// session is finished or failed on this goroutine.
	m.stopParallel()
	for _, p := range m.stream.endPending() {
		p.done(-1, ErrStreamEnded)
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if streamErr != nil {
			m.fail(i, streamErr)
			continue
		}
		st, err := s.Finish()
		m.results[i] = Result{Stats: st, Err: err}
		m.live[i] = false
	}
	m.nlive.Store(0)
	m.fillSkipped()
	return m.results
}

package mux

// Parallel per-group evaluation: the multicore shared scan.
//
// A sequential shared scan runs three stages on one goroutine: the
// scanner tokenizes, the merged automaton (internal/autom) decides
// per-group delivery, and every group's engine sessions consume their
// events. The first two stages are inherently serial — the matcher is a
// depth-tracking cursor over the token stream — but the third is not:
// event-routing groups share no sessions, no writers, and no routing
// state, so their engine work can proceed independently once the
// delivery decision for a token is known.
//
// SetParallel splits the scan accordingly. The scan goroutine (the
// producer) keeps tokenizing and running the Matcher, but instead of
// calling into sessions it copies each token's delivery masks into a
// per-batch item and hands the item to a small pool of workers, each
// owning a disjoint set of routing groups. A worker walks its groups
// over the item's token range, delivering StartElement / EndElement /
// TextBytes / SkipSubtree to its groups' live members exactly as the
// sequential router would — same calls, same order per session — so
// outputs, per-query stats, and error isolation are byte-identical to
// the sequential path.
//
// Lifetime and backpressure. Tokens reference the sax.Batch's arena, so
// every item retains its batch (sax.Batch.Retain) once per worker
// message and each worker releases after processing. The scanner's
// batch ring will not reuse a retained batch's storage: when workers
// fall behind, the producer blocks inside sax's flushBatch — that is
// the backpressure edge, and it propagates all the way to a streaming
// ingest's Write. Worker queues are additionally bounded at
// parQueueDepth, though the batch ring's window is the binding limit in
// practice.
//
// Error isolation. A worker records a member failure with parFail:
// per-slot Result fields are owner-exclusive (each slot belongs to
// exactly one group, each group to exactly one worker), only the live
// count is shared and atomic. Siblings in other groups stream on
// undisturbed. When the last live slot dies, the producer notices at
// the next batch boundary and aborts the scan with errAllFailed, like
// the sequential router does at the failing token itself; the producer
// has usually routed a little further by then, so each item carries a
// checkpoint of the matcher's skip counters (SnapshotSkipped) and the
// retention ring keeps the last few items' masks alive — parFillSkipped
// reconstructs every group's SkippedEvents as of the true abort token,
// keeping even the all-failed corner byte-identical to sequential.
//
// Streaming. Mid-stream joins need the scan quiescent: at a sync point
// with pending subscriptions the producer flushes the partial item,
// sends a quiesce barrier through every worker queue, and only then
// runs activatePending — machine rebuild, Matcher.Extend, session
// replay all happen while no worker holds an item. Fresh groups are
// assigned to workers round-robin; subsequent items carry the widened
// masks (items record their own mask width). Per-batch output flushing
// (flushLive) moves onto the workers, each flushing its own members.
//
// Fallback. startParallel declines — leaving the Mux fully sequential —
// when routing is not automaton-based (all-fanout, grouped), when
// GOMAXPROCS is 1, or when a batch Run has fewer than two groups (a
// streaming mux parallelizes even with one group, pipelining scan
// against evaluation, since groups may join later). Tiny token batches
// with no items in flight are routed inline on the producer, skipping
// the dispatch overhead the sequential path never paid.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"flux/internal/sax"
)

const (
	// parInlineTokens is the inline fast path's threshold: a batch this
	// small is routed sequentially on the producer when no item is in
	// flight, instead of paying per-worker dispatch for a handful of
	// tokens.
	parInlineTokens = 64
	// parQueueDepth bounds each worker's item queue. The scanner's batch
	// ring already limits distinct batches in flight; the headroom above
	// that covers items split at streaming sync points.
	parQueueDepth = 8
	// parRetain is the producer's item-retention window (batch mode): the
	// masks and checkpoints of the last parRetain items stay readable so
	// an all-failed abort can reconstruct skip counters at the abort
	// token. It exceeds the largest possible producer overrun, which the
	// batch ring caps at sax's ring size.
	parRetain = 8
	// maxParWorkers caps the worker pool; beyond this, per-batch dispatch
	// overhead outweighs added parallelism for realistic group counts.
	maxParWorkers = 16
)

// parState is the Mux's parallel-pipeline state, non-nil only while a
// scan runs with SetParallel in effect.
type parState struct {
	workers []*parWorker
	// ring retains recently issued items for parFillSkipped (batch mode
	// only; nil for streams, which never abort on all-failed).
	ring    []*parItem
	ringPos int
	// outstanding counts worker messages not yet fully processed; zero
	// means every worker is idle and the producer may touch sessions
	// inline (the atomic ordering makes the workers' writes visible).
	outstanding atomic.Int64
	// failPos records, per slot, the global token index at which a
	// worker failed it (-1 = no worker failure). Batch mode only.
	failPos []int64
	// pos is the global token index the producer has routed through the
	// parallel path (items' startPos are cut from it).
	pos int64
	// exactAbort is set when errAllFailed was raised by inline routing:
	// the matcher stopped at the exact abort token, so the ordinary
	// fillSkipped counters are already correct.
	exactAbort bool
	// fixup is set by stopParallel when an all-failed batch scan needs
	// parFillSkipped's reconstruction instead of the matcher's counters.
	fixup bool
	// stopped makes stopParallel idempotent.
	stopped bool
}

// parWorker owns a disjoint set of routing groups and evaluates their
// members' sessions on its own goroutine.
type parWorker struct {
	groups []int // group indices owned by this worker
	ch     chan parMsg
	done   chan struct{}
}

// parMsg is one unit of worker input: a token range of an item, or a
// quiesce barrier.
type parMsg struct {
	it      *parItem
	lo, hi  int // token range [lo, hi) in batch coordinates
	quiesce *sync.WaitGroup
}

// parItem carries one batch's routing decisions: for every token from
// firstTok on, the deliver mask and (for start tags) the skip-start
// mask the matcher produced, copied out because matcher masks are only
// valid until its next call.
type parItem struct {
	batch *sax.Batch
	// masks holds 2*words words per covered token: deliver first, then
	// skip-start (meaningful for StartElement tokens only). Indexed by
	// (tok - firstTok).
	masks    []uint64
	kinds    []byte // token kinds, for parFillSkipped's reconstruction
	words    int    // mask width when the item was created
	firstTok int    // first batch token this item covers
	startPos int64  // global token index of firstTok
	// skipAt is the matcher's per-group skip-counter snapshot taken
	// before routing the item's first token (batch mode only).
	skipAt []int64
	// refs counts unprocessed worker messages referencing the item;
	// retained items (batch mode) are recycled by the producer's
	// retention ring instead of by the last release.
	refs     atomic.Int32
	retained bool
}

// parItemPool recycles item shells (mask and kind buffers) across
// batches and scans.
var parItemPool = sync.Pool{New: func() any { return &parItem{} }}

// SetParallel requests parallel per-group evaluation for this Mux's
// scan: session work moves onto a worker pool (one worker per
// GOMAXPROCS core, at most maxParWorkers), fed per-batch by the scan
// goroutine, with results, stats, skip counts, and error isolation
// byte-identical to the sequential scan. It takes effect at Run or
// BeginStream and silently stays sequential when it cannot help:
// routing must be automaton-based (NewSelective or NewStreaming, not
// grouped or all-fanout), GOMAXPROCS must exceed 1, and a batch Run
// needs at least two routing groups. Callers must not share one writer
// between plans of different routing groups when parallel is on.
func (m *Mux) SetParallel(on bool) { m.parallel = on }

// ParallelActive reports whether the scan is (or, after Run/EndStream,
// was) actually using the parallel evaluation pipeline rather than
// having fallen back to sequential dispatch.
func (m *Mux) ParallelActive() bool { return m.par != nil }

// startParallel spins up the worker pool if the Mux qualifies; called
// after buildGroups and the sessions' Begin, before the first batch.
func (m *Mux) startParallel() {
	if !m.parallel || m.grouped || m.matcher == nil {
		return
	}
	if runtime.GOMAXPROCS(0) < 2 {
		return
	}
	if m.stream == nil && len(m.groups) < 2 {
		return
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > maxParWorkers {
		nw = maxParWorkers
	}
	if m.stream == nil && nw > len(m.groups) {
		nw = len(m.groups)
	}
	if nw < 1 {
		nw = 1
	}
	p := &parState{workers: make([]*parWorker, nw)}
	if m.stream == nil {
		p.ring = make([]*parItem, parRetain)
		p.failPos = make([]int64, len(m.sessions))
		for i := range p.failPos {
			p.failPos[i] = -1
		}
	}
	for wi := range p.workers {
		p.workers[wi] = &parWorker{
			ch:   make(chan parMsg, parQueueDepth),
			done: make(chan struct{}),
		}
	}
	m.par = p
	for gi := range m.groups {
		m.parAddGroup(gi)
	}
	for _, w := range p.workers {
		go w.run(m)
	}
}

// parAddGroup assigns routing group gi to a worker (round-robin).
// Called at startParallel, and from activatePending for groups created
// mid-stream — always while the workers are quiescent, so the owning
// worker observes the assignment through its next message receive.
func (m *Mux) parAddGroup(gi int) {
	if m.par == nil {
		return
	}
	w := m.par.workers[gi%len(m.par.workers)]
	w.groups = append(w.groups, gi)
}

// stopParallel closes the worker queues and waits for every worker to
// drain — the completion barrier before Finish, EndStream, or failure
// collection touches the sessions on this goroutine. Idempotent; no-op
// when the scan never went parallel.
func (m *Mux) stopParallel() {
	p := m.par
	if p == nil || p.stopped {
		return
	}
	p.stopped = true
	for _, w := range p.workers {
		close(w.ch)
	}
	for _, w := range p.workers {
		<-w.done
	}
	p.fixup = m.stream == nil && len(m.sessions) > 0 &&
		m.nlive.Load() == 0 && !p.exactAbort
}

// parQuiesce drains the pipeline without stopping it: a barrier message
// flows through every worker queue, and the producer waits until all
// workers have reached it. On return every previously issued item is
// fully processed and the producer may mutate shared routing state.
func (m *Mux) parQuiesce() {
	var wg sync.WaitGroup
	wg.Add(len(m.par.workers))
	for _, w := range m.par.workers {
		w.ch <- parMsg{quiesce: &wg}
	}
	wg.Wait()
}

// parHandleBatch is HandleBatch under the parallel pipeline: the
// producer half of the scan. It runs the matcher over the batch,
// records each token's delivery masks in an item, and feeds the workers
// — splitting the item at streaming sync points, where activation needs
// a quiescent pipeline.
func (m *Mux) parHandleBatch(b *sax.Batch) error {
	p := m.par
	if m.stream == nil && m.nlive.Load() == 0 {
		// All queries failed in some earlier item; stop feeding. The
		// sequential router aborted at the failing token itself —
		// parFillSkipped squares the books.
		return errAllFailed
	}
	if len(b.Tokens) <= parInlineTokens && p.outstanding.Load() == 0 {
		// Tiny batch, idle pipeline: route inline like the sequential
		// scan — no dispatch overhead, and outstanding == 0 means the
		// workers' session writes are visible here.
		if m.nctx > 0 {
			m.pollCtxsNow()
		}
		err := m.routeBatch(b)
		p.pos += int64(len(b.Tokens))
		if err != nil {
			if err == errAllFailed {
				p.exactAbort = true
			}
			return err
		}
		if m.stream != nil {
			m.flushLive()
		}
		return nil
	}
	it := m.parNewItem(b, 0)
	lo := 0
	for i := range b.Tokens {
		if m.stream != nil && m.depth <= 1 && m.stream.npend.Load() > 0 {
			// Sync point with pending subscriptions: ship what this item
			// has, drain the pipeline, and admit the joiners; the rest of
			// the batch goes into a fresh item sized for the (possibly
			// wider) extended automaton.
			m.parFlushRange(it, lo, i)
			m.parRetire(it)
			m.parQuiesce()
			m.activatePending()
			it = m.parNewItem(b, i)
			lo = i
		}
		t := &b.Tokens[i]
		base := (i - it.firstTok) * 2 * it.words
		switch t.Kind {
		case sax.StartElement:
			m.depth++
			if m.stream != nil && m.depth == 1 {
				m.stream.rootName = t.Name
			}
			deliver, skip := m.matcher.Start(t.Name)
			copy(it.masks[base:], deliver)
			copy(it.masks[base+it.words:], skip)
		case sax.EndElement:
			copy(it.masks[base:], m.matcher.End())
			m.depth--
			if m.stream != nil && m.depth == 0 {
				m.stream.rootClosed = true
			}
		case sax.SkipElement:
			copy(it.masks[base:], m.matcher.Skip())
		default:
			copy(it.masks[base:], m.matcher.Text())
		}
		it.kinds[i-it.firstTok] = byte(t.Kind)
		p.pos++
	}
	m.parFlushRange(it, lo, len(b.Tokens))
	m.parRetire(it)
	return nil
}

// parNewItem takes an item shell from the pool and sizes it for the
// batch tokens from firstTok on, at the automaton's current mask width.
func (m *Mux) parNewItem(b *sax.Batch, firstTok int) *parItem {
	it := parItemPool.Get().(*parItem)
	words := (m.machine.NumGroups() + 63) / 64
	n := len(b.Tokens) - firstTok
	need := n * 2 * words
	if cap(it.masks) < need {
		it.masks = make([]uint64, need)
	} else {
		it.masks = it.masks[:need]
	}
	if cap(it.kinds) < n {
		it.kinds = make([]byte, n)
	} else {
		it.kinds = it.kinds[:n]
	}
	it.batch = b
	it.words = words
	it.firstTok = firstTok
	it.startPos = m.par.pos
	it.retained = m.stream == nil
	it.refs.Store(0)
	if it.retained {
		it.skipAt = m.matcher.SnapshotSkipped(it.skipAt[:0])
	}
	return it
}

// parFlushRange sends the item's [lo, hi) token range to every worker,
// retaining the underlying batch once per message so the scanner cannot
// recycle it while any worker still reads it.
func (m *Mux) parFlushRange(it *parItem, lo, hi int) {
	if lo >= hi {
		return
	}
	p := m.par
	it.refs.Add(int32(len(p.workers)))
	p.outstanding.Add(int64(len(p.workers)))
	for _, w := range p.workers {
		it.batch.Retain()
		w.ch <- parMsg{it: it, lo: lo, hi: hi}
	}
}

// parRetire files a fully issued item. Batch mode keeps it in the
// retention ring for parFillSkipped, recycling the item the ring evicts
// (whose workers are long done — the scanner's batch ring throttles the
// producer far inside the retention window; if an evicted item is
// somehow still referenced it is simply dropped to the GC). Streaming
// items are recycled by their last release instead.
func (m *Mux) parRetire(it *parItem) {
	if !it.retained {
		return
	}
	p := m.par
	if old := p.ring[p.ringPos]; old != nil && old.refs.Load() == 0 {
		putParItem(old)
	}
	p.ring[p.ringPos] = it
	p.ringPos = (p.ringPos + 1) % len(p.ring)
}

// putParItem drops an item's batch reference and returns the shell to
// the pool.
func putParItem(it *parItem) {
	it.batch = nil
	parItemPool.Put(it)
}

// run is the worker loop: process items, honor quiesce barriers, exit
// when the producer closes the queue.
func (w *parWorker) run(m *Mux) {
	defer close(w.done)
	for msg := range w.ch {
		if msg.quiesce != nil {
			msg.quiesce.Done()
			continue
		}
		m.parProcess(w, msg)
		m.parRelease(msg.it)
	}
}

// parRelease undoes one message's retention of its item and batch. The
// batch reference is saved before the item can be pooled: putParItem
// clears it.batch.
func (m *Mux) parRelease(it *parItem) {
	b := it.batch
	if it.refs.Add(-1) == 0 && !it.retained {
		putParItem(it)
	}
	b.Release()
	m.par.outstanding.Add(-1)
}

// parProcess evaluates one message for every group the worker owns:
// the worker-side half of routeBatch. Per group it polls member
// contexts once (the same batch granularity the sequential scan uses),
// then walks the token range delivering exactly what the masks say; in
// streaming mode it finishes by flushing its members' buffered output,
// the per-batch visibility point flushLive provided sequentially.
func (m *Mux) parProcess(w *parWorker, msg parMsg) {
	it := msg.it
	stride := 2 * it.words
	for _, gi := range w.groups {
		if gi>>6 >= it.words {
			continue // group joined after this item was cut
		}
		g := m.groups[gi]
		wi, bit := gi>>6, uint64(1)<<(gi&63)
		live := 0
		for _, slot := range g.members {
			if !m.live[slot] {
				continue
			}
			if ctx := m.ctxs[slot]; ctx != nil {
				if err := ctx.Err(); err != nil {
					m.parFail(slot, err, it.startPos+int64(msg.lo-it.firstTok))
					continue
				}
			}
			live++
		}
		if live == 0 {
			continue
		}
		for ti := msg.lo; ti < msg.hi; ti++ {
			base := (ti-it.firstTok)*stride + wi
			deliver := it.masks[base]&bit != 0
			t := &it.batch.Tokens[ti]
			pos := it.startPos + int64(ti-it.firstTok)
			switch t.Kind {
			case sax.StartElement:
				if deliver {
					for _, slot := range g.members {
						if !m.live[slot] {
							continue
						}
						if err := m.sessions[slot].StartElement(t.Name); err != nil {
							m.parFail(slot, err, pos)
						}
					}
				} else if it.masks[base+it.words]&bit != 0 {
					for _, slot := range g.members {
						if !m.live[slot] {
							continue
						}
						if err := m.sessions[slot].SkipSubtree(t.Name); err != nil {
							m.parFail(slot, err, pos)
						}
					}
				}
			case sax.EndElement:
				if deliver {
					for _, slot := range g.members {
						if !m.live[slot] {
							continue
						}
						if err := m.sessions[slot].EndElement(t.Name); err != nil {
							m.parFail(slot, err, pos)
						}
					}
				}
			case sax.SkipElement:
				if deliver {
					for _, slot := range g.members {
						if !m.live[slot] {
							continue
						}
						if err := m.sessions[slot].SkipSubtree(t.Name); err != nil {
							m.parFail(slot, err, pos)
						}
					}
				}
			default:
				if deliver {
					for _, slot := range g.members {
						if !m.live[slot] {
							continue
						}
						if err := m.sessions[slot].TextBytes(t.Data); err != nil {
							m.parFail(slot, err, pos)
						}
					}
				}
			}
		}
	}
	if m.stream != nil {
		for _, gi := range w.groups {
			for _, slot := range m.groups[gi].members {
				if !m.live[slot] {
					continue
				}
				if err := m.sessions[slot].Flush(); err != nil {
					m.parFail(slot, err, it.startPos+int64(msg.hi-1-it.firstTok))
				}
			}
		}
	}
}

// parFail is fail for worker goroutines: slot state (Result, live flag,
// session) is owner-exclusive to the worker that routes the slot's
// group, so only the live count needs an atomic. The failure's global
// token position is recorded so an all-failed abort can locate the
// token where the sequential scan would have stopped.
func (m *Mux) parFail(slot int, err error, pos int64) {
	m.results[slot].Err = err
	m.results[slot].Stats = m.sessions[slot].Abort()
	m.live[slot] = false
	if fp := m.par.failPos; slot < len(fp) {
		fp[slot] = pos
	}
	m.nlive.Add(-1)
	if m.stream != nil && m.stream.onDetach != nil {
		m.stream.onDetach(slot, err)
	}
}

// parFillSkipped reconstructs every slot's SkippedEvents as of the
// token where the sequential scan would have aborted with errAllFailed
// — the last slot failure. The producer's matcher usually routed a few
// batches past that token before noticing the pipeline was dead, so its
// counters overshoot; the abort token's item carries a checkpoint of
// the counters at its first token (skipAt) and the masks to replay
// per-token increments up to the abort token exactly:
//
//	StartElement: +1 for groups neither delivered nor starting a skip
//	EndElement:   +1 for groups not delivered
//	Text:         +1 for groups not delivered (skipped or DropText)
//	SkipElement:  +1 for every group
//
// which is precisely the matcher's interval accounting unrolled.
func (m *Mux) parFillSkipped() {
	p := m.par
	abort := int64(-1)
	for _, fp := range p.failPos {
		if fp > abort {
			abort = fp
		}
	}
	var tgt *parItem
	for _, it := range p.ring {
		if it != nil && it.startPos <= abort && abort < it.startPos+int64(len(it.kinds)) {
			tgt = it
			break
		}
	}
	if tgt == nil {
		// Defensive: the abort token predates the retention window, which
		// the batch ring's throttling should make impossible. Fall back
		// to the matcher's end-of-routing counters.
		m.matcher.Flush()
		for i := range m.results {
			m.results[i].SkippedEvents = m.matcher.Skipped(m.slotGroup[i])
		}
		return
	}
	counts := append([]int64(nil), tgt.skipAt...)
	stride := 2 * tgt.words
	for j := 0; int64(j) <= abort-tgt.startPos; j++ {
		base := j * stride
		kind := sax.Kind(tgt.kinds[j])
		for g := range counts {
			wi, bit := g>>6, uint64(1)<<(g&63)
			switch kind {
			case sax.StartElement:
				if tgt.masks[base+wi]&bit == 0 && tgt.masks[base+tgt.words+wi]&bit == 0 {
					counts[g]++
				}
			case sax.SkipElement:
				counts[g]++
			default: // EndElement, Text
				if tgt.masks[base+wi]&bit == 0 {
					counts[g]++
				}
			}
		}
	}
	for i := range m.results {
		m.results[i].SkippedEvents = counts[m.slotGroup[i]]
	}
}

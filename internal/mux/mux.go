// Package mux executes many compiled query plans over a single SAX pass
// of one input stream — a shared scan.
//
// The FluX engine already keeps per-query memory independent of input
// size; the multiplexer extends that discipline to concurrent workloads
// by amortizing the scan itself: N queries against the same document cost
// one tokenization and one read of the input, not N. Each registered plan
// runs in its own engine.Session, so per-query state, output, statistics,
// and failures stay fully isolated — a plan that errors mid-stream is
// detached from the event flow without disturbing its siblings.
package mux

import (
	"context"
	"errors"
	"io"

	"flux/internal/engine"
	"flux/internal/sax"
)

// Result is the outcome of one plan in a shared scan.
type Result struct {
	// Stats are the per-query execution statistics; for a failed query
	// they cover the prefix of the stream processed before the failure.
	Stats engine.Stats
	// Err is the query's own failure, nil on success. An input-level
	// failure (malformed XML, read error) is recorded on every query that
	// was still live when it happened and also returned from Run.
	Err error
}

// Mux fans one stream's SAX events to any number of engine sessions.
// Zero value is not ready; use New. A Mux is single-use: register plans
// with Add or AddContext, then call Run once.
type Mux struct {
	sessions []*engine.Session
	ctxs     []context.Context // per-slot cancellation, nil = never canceled
	results  []Result
	live     []bool
	nlive    int
	nctx     int // slots with a non-nil context
	events   int64
	ran      bool
}

// New returns an empty multiplexer.
func New() *Mux { return &Mux{} }

// Add registers a compiled plan whose output is written to w, returning
// the slot index of its Result in the slice Run returns.
func (m *Mux) Add(plan *engine.Plan, w io.Writer) int {
	return m.AddContext(nil, plan, w)
}

// AddContext registers a plan with its own cancellation context. When
// ctx is done the plan is detached from the event flow mid-stream — its
// Result records ctx.Err() and the stats accumulated so far — while its
// siblings keep streaming. A nil ctx means the slot is never canceled
// individually. Cancellation is observed at event-batch granularity.
func (m *Mux) AddContext(ctx context.Context, plan *engine.Plan, w io.Writer) int {
	m.sessions = append(m.sessions, engine.NewSession(plan, w))
	m.ctxs = append(m.ctxs, ctx)
	if ctx != nil {
		m.nctx++
	}
	m.results = append(m.results, Result{})
	m.live = append(m.live, true)
	m.nlive++
	return len(m.sessions) - 1
}

// Len reports the number of registered plans.
func (m *Mux) Len() int { return len(m.sessions) }

// Events reports the number of SAX events the shared scan delivered —
// the per-pass token cost that N independent runs would each pay again.
func (m *Mux) Events() int64 { return m.events }

// errAllFailed aborts the scan early once no session is listening.
var errAllFailed = errors.New("mux: all queries failed")

// fail detaches slot i from the event flow, recording err and the stats
// accumulated up to the failure.
func (m *Mux) fail(i int, err error) {
	m.results[i].Err = err
	m.results[i].Stats = m.sessions[i].Abort()
	m.live[i] = false
	m.nlive--
}

// ctxPollMask batches per-slot cancellation polls: contexts are checked
// once every 256 fanned events, bounding a canceled query's extra work
// to one small event batch without a per-event ctx.Err() in the hot loop.
const ctxPollMask = 255

// pollCtxs detaches every live slot whose context is done. Called at
// event-batch granularity from the fan-out handlers.
func (m *Mux) pollCtxs() {
	if m.nctx == 0 || m.events&ctxPollMask != 0 {
		return
	}
	for i, ctx := range m.ctxs {
		if ctx == nil || !m.live[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			m.fail(i, err)
		}
	}
}

// StartElement implements sax.Handler.
func (m *Mux) StartElement(name string) error {
	m.events++
	m.pollCtxs()
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.StartElement(name); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive == 0 {
		return errAllFailed
	}
	return nil
}

// Text implements sax.Handler.
func (m *Mux) Text(data string) error {
	m.events++
	m.pollCtxs()
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.Text(data); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive == 0 {
		return errAllFailed
	}
	return nil
}

// EndElement implements sax.Handler.
func (m *Mux) EndElement(name string) error {
	m.events++
	m.pollCtxs()
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.EndElement(name); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive == 0 {
		return errAllFailed
	}
	return nil
}

// Run scans the XML document from r once, delivering every event to all
// registered plans, and returns one Result per plan in Add order.
//
// Per-query failures (schema violations under a plan's DTD, write errors
// on a query's output, a done AddContext context) are isolated in that
// query's Result. The returned error is reserved for stream-level
// failures that necessarily end every query: malformed XML, a read
// error, a done scan context, or all queries having failed. A nil ctx
// means the scan itself is never canceled.
func (m *Mux) Run(ctx context.Context, r io.Reader, opt sax.Options) ([]Result, error) {
	if m.ran {
		return nil, errors.New("mux: Run called twice")
	}
	m.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.Begin(); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive > 0 {
		if err := sax.ScanContext(ctx, r, m, opt); err != nil {
			if errors.Is(err, errAllFailed) {
				return m.results, err
			}
			// The stream itself is bad: every remaining query inherits
			// the failure.
			for i := range m.sessions {
				if m.live[i] {
					m.fail(i, err)
				}
			}
			return m.results, err
		}
	} else if len(m.sessions) > 0 {
		return m.results, errAllFailed
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		st, err := s.Finish()
		m.results[i] = Result{Stats: st, Err: err}
		m.live[i] = false
	}
	m.nlive = 0
	return m.results, nil
}

// Package mux executes many compiled query plans over a single SAX pass
// of one input stream — a shared scan.
//
// The FluX engine already keeps per-query memory independent of input
// size; the multiplexer extends that discipline to concurrent workloads
// by amortizing the scan itself: N queries against the same document cost
// one tokenization and one read of the input, not N. Each registered plan
// runs in its own engine.Session, so per-query state, output, statistics,
// and failures stay fully isolated — a plan that errors mid-stream is
// detached from the event flow without disturbing its siblings.
//
// A multiplexer created with NewSelective additionally routes events by
// each plan's projected-path signature (engine.SigNode): plans with equal
// signatures form one event-routing group, and a subtree no path of a
// group's signature can match is delivered to that group as a single
// Session.SkipSubtree step instead of event by event. A wide batch of
// narrow queries then costs each query only the events its projection can
// match, not the whole document.
//
// Selective routing is evaluated by one merged path automaton per batch
// (internal/autom): the groups' signature tries are merged into a
// single trie with per-group accept bitsets, so each token updates one
// cursor and yields the whole batch's delivery decision as a mask —
// shared path prefixes cost one traversal no matter how many groups
// share them. NewSelectiveGrouped retains the older per-group trie walk
// (one cursor per group); both make identical routing decisions and it
// exists as a benchmarking and differential-testing baseline.
//
// The trade of selective routing: a plan no longer validates
// the interior of subtrees its query provably ignores (the parent content
// model still validates every skipped element's tag; element events at
// observed positions are always delivered, so validation there is
// unchanged). Character data at an observed tags-only position is
// delivered unless the DTD proves it irrelevant: at a mixed-content
// spine position text is always legal and never consumed, so it is
// withheld (engine.SigNode.DropText); at a non-mixed position stray
// text must still fail validation, so it flows. New preserves the
// deliver-everything behavior, including full per-plan DTD validation.
package mux

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"

	"flux/internal/autom"
	"flux/internal/engine"
	"flux/internal/sax"
)

// Result is the outcome of one plan in a shared scan.
type Result struct {
	// Stats are the per-query execution statistics; for a failed query
	// they cover the prefix of the stream processed before the failure.
	Stats engine.Stats
	// Err is the query's own failure, nil on success. An input-level
	// failure (malformed XML, read error) is recorded on every query that
	// was still live when it happened and also returned from Run.
	Err error
	// SkippedEvents counts the scan events selective fan-out withheld
	// from this plan (the interior of subtrees its signature cannot
	// match). Under scanner-level pruning (the batched Run), a subtree
	// every group skips is consumed raw and arrives as one SkipElement
	// token, advancing this counter by one instead of by the subtree's
	// true event count — the value is a lower bound on the events an
	// all-fanout scan would have delivered, not an exact count. Always 0
	// for a Mux created with New.
	SkippedEvents int64
}

// Mux fans one stream's SAX events to any number of engine sessions.
// Zero value is not ready; use New or NewSelective. A Mux is single-use:
// register plans with Add or AddContext, then call Run once.
type Mux struct {
	sessions []*engine.Session
	plans    []*engine.Plan
	ctxs     []context.Context // per-slot cancellation, nil = never canceled
	results  []Result
	live     []bool
	nctx     int // slots with a non-nil context
	events   int64
	ran      bool

	// nlive is atomic because under parallel dispatch slot failures are
	// recorded on worker goroutines; sequential muxes pay one uncontended
	// atomic op where a plain int decrement used to be.
	nlive atomic.Int32

	// Selective fan-out state (selective Muxes only).
	selective bool
	grouped   bool // route by per-group trie walks instead of the automaton
	groups    []*fanGroup
	slotGroup []int // slot index -> group index
	depth     int   // open elements in the scan

	// Automaton routing state (selective, non-grouped): the merged
	// machine (built by buildGroups, or installed by SetMachine from the
	// executor's cache) and its per-scan matcher.
	machine *autom.Machine
	matcher *autom.Matcher

	// stream is non-nil in streaming mode (NewStreaming): explicit
	// BeginStream/EndStream lifecycle, mid-stream subscriptions, and a
	// scan that survives having no live sessions. See stream.go.
	stream *streamState

	// parallel requests the multicore evaluation pipeline (SetParallel);
	// par is non-nil while a scan actually runs parallel. See parallel.go.
	parallel bool
	par      *parState
}

// fanGroup is one event-routing group: the plans sharing a signature,
// its identity, and — under grouped routing — the trie cursor and skip
// bookkeeping (the automaton's Matcher carries those itself).
type fanGroup struct {
	members []int
	key     string
	sig     *engine.SigNode
	stack   []*engine.SigNode
	// skipUntil, when non-zero, is the depth of the element currently
	// being skipped for this group; every event at a greater depth (and
	// the element's own end tag) is withheld.
	skipUntil int
	skipped   int64
}

// New returns an empty multiplexer that delivers every event to every
// registered plan (all-fanout).
func New() *Mux { return &Mux{} }

// NewSelective returns an empty multiplexer with selective fan-out:
// events are routed by each plan's projected-path signature, and
// subtrees a plan provably cannot match are skipped for it (see the
// package comment for the validation trade-off). Routing is evaluated
// by the batch's merged path automaton.
func NewSelective() *Mux { return &Mux{selective: true} }

// NewSelectiveGrouped returns a selective multiplexer that routes by
// walking each event-routing group's signature trie individually — the
// pre-automaton selective path. Delivery decisions, results, and skip
// counts are identical to NewSelective's; the constructor exists so
// benchmarks and differential tests can pin the merged automaton
// against the per-group walk.
func NewSelectiveGrouped() *Mux { return &Mux{selective: true, grouped: true} }

// SetMachine installs a prebuilt merged automaton (the executor caches
// one per batch signature set). The machine must have been built from
// exactly the group keys of the plans registered by Run time — one
// Machine group per distinct GroupKey, no extras — otherwise it is
// ignored and a fresh automaton is built. Call before Run; no-op on
// all-fanout, grouped, and streaming muxes.
func (m *Mux) SetMachine(mach *autom.Machine) {
	if m.selective && !m.grouped && m.stream == nil {
		m.machine = mach
	}
}

// Selective reports whether this multiplexer routes events by plan
// signature rather than delivering everything to everyone.
func (m *Mux) Selective() bool { return m.selective }

// Add registers a compiled plan whose output is written to w, returning
// the slot index of its Result in the slice Run returns.
func (m *Mux) Add(plan *engine.Plan, w io.Writer) int {
	return m.AddContext(nil, plan, w)
}

// AddContext registers a plan with its own cancellation context. When
// ctx is done the plan is detached from the event flow mid-stream — its
// Result records ctx.Err() and the stats accumulated so far — while its
// siblings keep streaming. A nil ctx means the slot is never canceled
// individually. Cancellation is observed at event-batch granularity.
func (m *Mux) AddContext(ctx context.Context, plan *engine.Plan, w io.Writer) int {
	m.sessions = append(m.sessions, engine.NewSession(plan, w))
	m.plans = append(m.plans, plan)
	m.ctxs = append(m.ctxs, ctx)
	if ctx != nil {
		m.nctx++
	}
	m.results = append(m.results, Result{})
	m.live = append(m.live, true)
	m.nlive.Add(1)
	return len(m.sessions) - 1
}

// Len reports the number of registered plans.
func (m *Mux) Len() int { return len(m.sessions) }

// Events reports the number of SAX events the shared scan tokenized —
// the per-pass cost that N independent runs would each pay again. Under
// selective fan-out individual plans may have been delivered fewer.
func (m *Mux) Events() int64 { return m.events }

// GroupStats describes one event-routing group of a selective scan.
type GroupStats struct {
	// Queries is the number of plans routed as this group.
	Queries int
	// SkippedEvents counts the scan events withheld from the group — a
	// lower bound under scanner pruning (see Result.SkippedEvents).
	SkippedEvents int64
}

// Groups reports the event-routing groups of a selective Mux in
// formation order, nil for an all-fanout Mux. Call it after Run.
func (m *Mux) Groups() []GroupStats {
	if !m.selective {
		return nil
	}
	out := make([]GroupStats, len(m.groups))
	for i, g := range m.groups {
		sk := g.skipped
		if m.matcher != nil {
			sk = m.matcher.Skipped(i)
		}
		out[i] = GroupStats{Queries: len(g.members), SkippedEvents: sk}
	}
	return out
}

// buildGroups partitions the registered plans into event-routing groups
// by (schema, signature key): plans in one group make identical skip
// decisions at every stream position, so routing is evaluated once per
// group, not once per plan. Unless the Mux routes by per-group walks
// (NewSelectiveGrouped), the groups are then compiled into one merged
// path automaton — reusing an installed SetMachine machine when its
// group-key set matches the batch exactly — and a per-scan matcher is
// created.
func (m *Mux) buildGroups() {
	if m.machine != nil && m.buildGroupsFromMachine() {
		m.matcher = m.machine.NewMatcher()
		return
	}
	m.machine = nil
	byKey := make(map[string]int)
	m.slotGroup = make([]int, len(m.plans))
	for i, p := range m.plans {
		key := GroupKey(p)
		gi, ok := byKey[key]
		if !ok {
			gi = len(m.groups)
			byKey[key] = gi
			m.groups = append(m.groups, &fanGroup{
				key:   key,
				sig:   p.Signature(),
				stack: []*engine.SigNode{p.Signature()},
			})
		}
		m.groups[gi].members = append(m.groups[gi].members, i)
		m.slotGroup[i] = gi
	}
	if !m.grouped {
		m.machine = autom.Build(m.machineGroups())
		m.matcher = m.machine.NewMatcher()
	}
	if m.stream != nil {
		m.stream.groupKeys = byKey // kept for mid-stream joins
	}
}

// buildGroupsFromMachine maps the registered plans onto an installed
// machine's group indices. It reports false — leaving the Mux to build
// a fresh automaton — when any plan's group key is unknown to the
// machine or the machine has groups no plan belongs to (either would
// change routing or pruning relative to a fresh build).
func (m *Mux) buildGroupsFromMachine() bool {
	mach := m.machine
	seen := make(map[string]bool, mach.NumGroups())
	slotGroup := make([]int, len(m.plans))
	groups := make([]*fanGroup, mach.NumGroups())
	for i, p := range m.plans {
		key := GroupKey(p)
		gi, ok := mach.GroupIndex(key)
		if !ok {
			return false
		}
		if groups[gi] == nil {
			groups[gi] = &fanGroup{key: key, sig: p.Signature()}
			seen[key] = true
		}
		groups[gi].members = append(groups[gi].members, i)
		slotGroup[i] = gi
	}
	if len(seen) != mach.NumGroups() {
		return false
	}
	m.groups = groups
	m.slotGroup = slotGroup
	return true
}

// machineGroups renders the Mux's routing groups, in index order, as
// the merged automaton's Build input.
func (m *Mux) machineGroups() []autom.Group {
	gs := make([]autom.Group, len(m.groups))
	for i, g := range m.groups {
		gs[i] = autom.Group{Key: g.key, Sig: g.sig}
	}
	return gs
}

// GroupKey identifies a plan's event-routing group: plans compiled
// against the same schema with equal signature keys route identically.
// The executor uses it to key its merged-automaton cache with the same
// identity the Mux groups by.
func GroupKey(p *engine.Plan) string {
	return fmt.Sprintf("%p|%s", p.Schema(), p.SigKey())
}

// errAllFailed aborts the scan early once no session is listening.
var errAllFailed = errors.New("mux: all queries failed")

// fail detaches slot i from the event flow, recording err and the stats
// accumulated up to the failure. Called on the scan goroutine; parallel
// workers use parFail, which additionally records the failure position.
func (m *Mux) fail(i int, err error) {
	m.results[i].Err = err
	m.results[i].Stats = m.sessions[i].Abort()
	m.live[i] = false
	m.nlive.Add(-1)
	if m.stream != nil && m.stream.onDetach != nil {
		m.stream.onDetach(i, err)
	}
}

// ctxPollMask batches per-slot cancellation polls: contexts are checked
// once every 256 fanned events, bounding a canceled query's extra work
// to one small event batch without a per-event ctx.Err() in the hot loop.
const ctxPollMask = 255

// pollCtxs detaches every live slot whose context is done. Called at
// event-batch granularity from the per-event fan-out handlers.
func (m *Mux) pollCtxs() {
	if m.nctx == 0 || m.events&ctxPollMask != 0 {
		return
	}
	m.pollCtxsNow()
}

// pollCtxsNow is pollCtxs without the event-count gate; the batched
// delivery path calls it once per batch.
func (m *Mux) pollCtxsNow() {
	for i, ctx := range m.ctxs {
		if ctx == nil || !m.live[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			m.fail(i, err)
		}
	}
}

// HandleBatch implements sax.BatchHandler — the batched shared scan.
// All-fanout delivery hands the whole batch to each live session in one
// call, one dynamic dispatch per session per batch instead of one per
// session per event; selective fan-out routes token by token, since
// skip decisions are made per element. Per-slot cancellation is polled
// once per batch.
func (m *Mux) HandleBatch(b *sax.Batch) error {
	m.events += int64(len(b.Tokens))
	if m.par != nil {
		// Parallel pipeline: the producer half runs the matcher and feeds
		// the worker pool; workers poll per-slot cancellation themselves.
		return m.parHandleBatch(b)
	}
	if m.nctx > 0 {
		m.pollCtxsNow()
	}
	if m.stream != nil {
		// Streaming: route, then push every live session's buffered
		// output to its subscriber — results become visible at batch
		// granularity, not end of document.
		if err := m.routeBatch(b); err != nil {
			return err
		}
		m.flushLive()
		return nil
	}
	if m.selective {
		return m.routeBatch(b)
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.HandleBatch(b); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive.Load() == 0 {
		return errAllFailed
	}
	return nil
}

// routeBatch unpacks a batch through the selective router. Text tokens
// keep their arena-backed payloads all the way into the sessions
// (Session.TextBytes), so the batched selective scan allocates no text
// strings either.
func (m *Mux) routeBatch(b *sax.Batch) error {
	for i := range b.Tokens {
		t := &b.Tokens[i]
		if m.stream != nil && m.depth <= 1 && m.stream.npend.Load() > 0 {
			// A sync point: the stream is before the root or between
			// complete top-level subtrees, so queued subscriptions can
			// join here.
			m.activatePending()
		}
		var err error
		switch t.Kind {
		case sax.StartElement:
			err = m.routeStart(t.Name)
		case sax.EndElement:
			err = m.routeEnd(t.Name)
		case sax.SkipElement:
			err = m.routeSkip(t.Name)
		default:
			err = m.routeTextBytes(t.Data)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// StartElement implements sax.Handler.
func (m *Mux) StartElement(name string) error {
	m.events++
	m.pollCtxs()
	if m.selective {
		return m.routeStart(name)
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.StartElement(name); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive.Load() == 0 {
		return errAllFailed
	}
	return nil
}

// routeStart is StartElement under selective fan-out: each group either
// descends the signature trie and receives the event, or — when no
// signature path can match the subtree — collapses it into one
// SkipSubtree step and withholds everything until the matching end tag.
// Automaton routing makes the same decision for all groups in one
// matcher step; grouped routing walks each group's own trie cursor.
func (m *Mux) routeStart(name string) error {
	m.depth++
	if m.stream != nil && m.depth == 1 {
		m.stream.rootName = name
	}
	if m.matcher != nil {
		deliver, skip := m.matcher.Start(name)
		for w, word := range skip {
			for word != 0 {
				g := m.groups[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				for _, i := range g.members {
					if !m.live[i] {
						continue
					}
					if err := m.sessions[i].SkipSubtree(name); err != nil {
						m.fail(i, err)
					}
				}
			}
		}
		for w, word := range deliver {
			for word != 0 {
				g := m.groups[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				for _, i := range g.members {
					if !m.live[i] {
						continue
					}
					if err := m.sessions[i].StartElement(name); err != nil {
						m.fail(i, err)
					}
				}
			}
		}
		if m.nlive.Load() == 0 && m.stream == nil {
			return errAllFailed
		}
		return nil
	}
	for _, g := range m.groups {
		if g.skipUntil != 0 {
			g.skipped++
			continue
		}
		cur := g.stack[len(g.stack)-1]
		next := cur
		if !cur.All {
			next = cur.Kids[name]
		}
		if next == nil {
			for _, i := range g.members {
				if !m.live[i] {
					continue
				}
				if err := m.sessions[i].SkipSubtree(name); err != nil {
					m.fail(i, err)
				}
			}
			g.skipUntil = m.depth
			continue
		}
		g.stack = append(g.stack, next)
		for _, i := range g.members {
			if !m.live[i] {
				continue
			}
			if err := m.sessions[i].StartElement(name); err != nil {
				m.fail(i, err)
			}
		}
	}
	if m.nlive.Load() == 0 && m.stream == nil {
		return errAllFailed
	}
	return nil
}

// Text implements sax.Handler.
func (m *Mux) Text(data string) error {
	m.events++
	m.pollCtxs()
	if m.selective {
		return m.routeText(data)
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.Text(data); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive.Load() == 0 {
		return errAllFailed
	}
	return nil
}

// routeText delivers character data to every group not inside a
// skipped subtree, except at spine positions whose production is mixed
// (SigNode.DropText): there text is always legal and a spine position
// consumes nothing, so the event is withheld and counted as skipped.
// Non-mixed spine positions still get their text — in a valid document
// that is only whitespace the scanner has not already dropped, and in an
// invalid one it is stray character data that must fail validation
// exactly as it does under all-fanout.
func (m *Mux) routeText(data string) error {
	if m.matcher != nil {
		deliver := m.matcher.Text()
		for w, word := range deliver {
			for word != 0 {
				g := m.groups[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				for _, i := range g.members {
					if !m.live[i] {
						continue
					}
					if err := m.sessions[i].Text(data); err != nil {
						m.fail(i, err)
					}
				}
			}
		}
		if m.nlive.Load() == 0 && m.stream == nil {
			return errAllFailed
		}
		return nil
	}
	for _, g := range m.groups {
		if g.skipUntil != 0 {
			g.skipped++
			continue
		}
		if cur := g.stack[len(g.stack)-1]; !cur.All && cur.DropText {
			g.skipped++
			continue
		}
		for _, i := range g.members {
			if !m.live[i] {
				continue
			}
			if err := m.sessions[i].Text(data); err != nil {
				m.fail(i, err)
			}
		}
	}
	if m.nlive.Load() == 0 && m.stream == nil {
		return errAllFailed
	}
	return nil
}

// routeTextBytes is routeText for arena-backed batch payloads, fanning
// the bytes to each group member without a string conversion.
func (m *Mux) routeTextBytes(data []byte) error {
	if m.matcher != nil {
		deliver := m.matcher.Text()
		for w, word := range deliver {
			for word != 0 {
				g := m.groups[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				for _, i := range g.members {
					if !m.live[i] {
						continue
					}
					if err := m.sessions[i].TextBytes(data); err != nil {
						m.fail(i, err)
					}
				}
			}
		}
		if m.nlive.Load() == 0 && m.stream == nil {
			return errAllFailed
		}
		return nil
	}
	for _, g := range m.groups {
		if g.skipUntil != 0 {
			g.skipped++
			continue
		}
		if cur := g.stack[len(g.stack)-1]; !cur.All && cur.DropText {
			g.skipped++
			continue
		}
		for _, i := range g.members {
			if !m.live[i] {
				continue
			}
			if err := m.sessions[i].TextBytes(data); err != nil {
				m.fail(i, err)
			}
		}
	}
	if m.nlive.Load() == 0 && m.stream == nil {
		return errAllFailed
	}
	return nil
}

// EndElement implements sax.Handler.
func (m *Mux) EndElement(name string) error {
	m.events++
	m.pollCtxs()
	if m.selective {
		return m.routeEnd(name)
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.EndElement(name); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive.Load() == 0 {
		return errAllFailed
	}
	return nil
}

// routeEnd is EndElement under selective fan-out: a skipping group
// resumes routing when the skipped element's own end tag goes by (the
// SkipSubtree step already accounted for the whole element).
func (m *Mux) routeEnd(name string) error {
	if m.matcher != nil {
		deliver := m.matcher.End()
		for w, word := range deliver {
			for word != 0 {
				g := m.groups[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				for _, i := range g.members {
					if !m.live[i] {
						continue
					}
					if err := m.sessions[i].EndElement(name); err != nil {
						m.fail(i, err)
					}
				}
			}
		}
		m.depth--
		if m.stream != nil && m.depth == 0 {
			m.stream.rootClosed = true
		}
		if m.nlive.Load() == 0 && m.stream == nil {
			return errAllFailed
		}
		return nil
	}
	for _, g := range m.groups {
		if g.skipUntil != 0 {
			g.skipped++
			if m.depth == g.skipUntil {
				g.skipUntil = 0
			}
			continue
		}
		g.stack = g.stack[:len(g.stack)-1]
		for _, i := range g.members {
			if !m.live[i] {
				continue
			}
			if err := m.sessions[i].EndElement(name); err != nil {
				m.fail(i, err)
			}
		}
	}
	m.depth--
	if m.stream != nil && m.depth == 0 {
		m.stream.rootClosed = true
	}
	if m.nlive.Load() == 0 && m.stream == nil {
		return errAllFailed
	}
	return nil
}

// Run scans the XML document from r once, delivering every event to all
// registered plans (or, under selective fan-out, to the plans whose
// signature can match it), and returns one Result per plan in Add order.
//
// Per-query failures (schema violations under a plan's DTD, write errors
// on a query's output, a done AddContext context) are isolated in that
// query's Result. The returned error is reserved for stream-level
// failures that necessarily end every query: malformed XML, a read
// error, a done scan context, or all queries having failed. A nil ctx
// means the scan itself is never canceled.
func (m *Mux) Run(ctx context.Context, r io.Reader, opt sax.Options) ([]Result, error) {
	if m.stream != nil {
		return nil, errors.New("mux: Run on a streaming mux (use BeginStream/EndStream)")
	}
	if m.ran {
		return nil, errors.New("mux: Run called twice")
	}
	m.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	if m.selective {
		m.buildGroups()
		// Prune, at the scan itself, the subtrees every group skips: their
		// bytes are consumed raw and arrive as single SkipElement tokens
		// instead of being tokenized and routed token by token. Subtrees
		// only some groups skip are still routed here.
		if m.machine != nil {
			opt.Prune = m.machine.Prune()
		} else {
			opt.Prune = m.unionPrune()
		}
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		if err := s.Begin(); err != nil {
			m.fail(i, err)
		}
	}
	if m.nlive.Load() > 0 {
		m.startParallel()
		err := sax.ScanBatchedContext(ctx, r, m, opt)
		m.stopParallel()
		if m.nlive.Load() == 0 {
			// All queries failed mid-stream. Sequential routing aborts at
			// the exact failing token; the parallel producer may only
			// notice at the next batch boundary, but either way the
			// sequential-equivalent outcome is errAllFailed (parFillSkipped
			// reconstructs the counters as of the true abort token).
			m.fillSkipped()
			return m.results, errAllFailed
		}
		if err != nil {
			m.fillSkipped()
			// The stream itself is bad: every remaining query inherits
			// the failure.
			for i := range m.sessions {
				if m.live[i] {
					m.fail(i, err)
				}
			}
			return m.results, err
		}
	} else if len(m.sessions) > 0 {
		return m.results, errAllFailed
	}
	for i, s := range m.sessions {
		if !m.live[i] {
			continue
		}
		st, err := s.Finish()
		m.results[i] = Result{Stats: st, Err: err}
		m.live[i] = false
	}
	m.nlive.Store(0)
	m.fillSkipped()
	return m.results, nil
}

// unionPrune merges the groups' signature tries into one scanner prune
// trie: a position is pruned only when no group's signature can match
// anything inside it. Returns nil (no pruning) if any plan lacks a
// signature.
func (m *Mux) unionPrune() *sax.PruneNode {
	sigs := make([]*engine.SigNode, len(m.groups))
	for i, g := range m.groups {
		if g.stack[0] == nil {
			return nil
		}
		sigs[i] = g.stack[0]
	}
	return unionSigs(sigs)
}

func unionSigs(nodes []*engine.SigNode) *sax.PruneNode {
	p := &sax.PruneNode{}
	kids := make(map[string][]*engine.SigNode)
	for _, n := range nodes {
		if n.All {
			// Some group consumes everything below here: nothing under this
			// position may be pruned, and Kids are irrelevant.
			return &sax.PruneNode{All: true}
		}
		for k, v := range n.Kids {
			kids[k] = append(kids[k], v)
		}
	}
	if len(kids) > 0 {
		p.Kids = make(map[string]*sax.PruneNode, len(kids))
		for k, vs := range kids {
			p.Kids[k] = unionSigs(vs)
		}
	}
	return p
}

// routeSkip fans a scanner-pruned subtree (a SkipElement token) out as
// one SkipSubtree step per live member of every group not already inside
// a subtree it is skipping itself. The scan never tokenized the
// element's interior, so each group's SkippedEvents counter advances by
// one — the element itself — rather than by its (unknown) event count:
// under scanner pruning the counter is a lower bound.
func (m *Mux) routeSkip(name string) error {
	if m.matcher != nil {
		deliver := m.matcher.Skip()
		for w, word := range deliver {
			for word != 0 {
				g := m.groups[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
				for _, i := range g.members {
					if !m.live[i] {
						continue
					}
					if err := m.sessions[i].SkipSubtree(name); err != nil {
						m.fail(i, err)
					}
				}
			}
		}
		if m.nlive.Load() == 0 && m.stream == nil {
			return errAllFailed
		}
		return nil
	}
	for _, g := range m.groups {
		g.skipped++
		if g.skipUntil != 0 {
			continue
		}
		for _, i := range g.members {
			if !m.live[i] {
				continue
			}
			if err := m.sessions[i].SkipSubtree(name); err != nil {
				m.fail(i, err)
			}
		}
	}
	if m.nlive.Load() == 0 && m.stream == nil {
		return errAllFailed
	}
	return nil
}

// fillSkipped copies each routing group's skip counter onto its
// members' Results.
func (m *Mux) fillSkipped() {
	if !m.selective {
		return
	}
	if m.par != nil && m.par.fixup {
		// All queries failed under the parallel pipeline: reconstruct the
		// counters as of the true abort token, where sequential routing
		// would have stopped (the producer's matcher ran further).
		m.parFillSkipped()
		return
	}
	if m.matcher != nil {
		m.matcher.Flush()
		for i := range m.results {
			m.results[i].SkippedEvents = m.matcher.Skipped(m.slotGroup[i])
		}
		return
	}
	for i := range m.results {
		m.results[i].SkippedEvents = m.groups[m.slotGroup[i]].skipped
	}
}

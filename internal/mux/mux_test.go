package mux_test

import (
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

var scanOpt = sax.Options{SkipWhitespaceText: true}

func compile(t *testing.T, dtdText, fluxText string) *engine.Plan {
	t.Helper()
	schema := dtd.MustParse(dtdText)
	f, err := core.ParseFlux(fluxText)
	if err != nil {
		t.Fatalf("parse %q: %v", fluxText, err)
	}
	plan, err := engine.Compile(schema, f)
	if err != nil {
		t.Fatalf("compile %q: %v", fluxText, err)
	}
	return plan
}

const testDTD = `
<!ELEMENT r (a*,b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`

const testDoc = `<r><a>1</a><a>2</a><b>x</b></r>`

// TestSharedScanMatchesSingleRun: each plan in a shared scan must produce
// exactly the output and statistics it produces when run alone.
func TestSharedScanMatchesSingleRun(t *testing.T) {
	plans := []*engine.Plan{
		compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`),
		compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`),
	}

	single := make([]string, len(plans))
	singleStats := make([]engine.Stats, len(plans))
	for i, p := range plans {
		var sb strings.Builder
		st, err := engine.Run(p, strings.NewReader(testDoc), &sb, scanOpt)
		if err != nil {
			t.Fatalf("single run %d: %v", i, err)
		}
		single[i], singleStats[i] = sb.String(), st
	}

	m := mux.New()
	shared := make([]*strings.Builder, len(plans))
	for i, p := range plans {
		shared[i] = &strings.Builder{}
		if got := m.Add(p, shared[i]); got != i {
			t.Fatalf("Add returned slot %d, want %d", got, i)
		}
	}
	results, err := m.Run(strings.NewReader(testDoc), scanOpt)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	for i := range plans {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		if shared[i].String() != single[i] {
			t.Errorf("query %d output: shared %q, single %q", i, shared[i].String(), single[i])
		}
		if results[i].Stats != singleStats[i] {
			t.Errorf("query %d stats: shared %+v, single %+v", i, results[i].Stats, singleStats[i])
		}
	}
	if m.Events() != singleStats[0].Tokens {
		t.Errorf("shared scan delivered %d events, single run processed %d tokens",
			m.Events(), singleStats[0].Tokens)
	}
}

// TestErrorIsolation: a plan whose DTD rejects the document must fail
// alone; its siblings complete with correct output.
func TestErrorIsolation(t *testing.T) {
	good := compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`)
	// This plan's DTD does not allow <a> inside <r>, so its validating
	// automaton fails mid-stream.
	bad := compile(t, `
<!ELEMENT r (b*)>
<!ELEMENT b (#PCDATA)>
`, `{ ps $ROOT: on r as $x return { $x } }`)

	m := mux.New()
	var goodOut, badOut strings.Builder
	gi := m.Add(good, &goodOut)
	bi := m.Add(bad, &badOut)
	results, err := m.Run(strings.NewReader(testDoc), scanOpt)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	if results[bi].Err == nil {
		t.Error("bad plan: want a validation error, got nil")
	}
	if results[gi].Err != nil {
		t.Errorf("good plan poisoned by sibling: %v", results[gi].Err)
	}
	if goodOut.String() != testDoc {
		t.Errorf("good plan output = %q, want %q", goodOut.String(), testDoc)
	}
}

// TestAllFailed: when every plan fails the scan aborts early and Run
// reports it, with each per-query error preserved.
func TestAllFailed(t *testing.T) {
	badDTD := `
<!ELEMENT r (b*)>
<!ELEMENT b (#PCDATA)>
`
	m := mux.New()
	m.Add(compile(t, badDTD, `{ ps $ROOT: on r as $x return { $x } }`), &strings.Builder{})
	m.Add(compile(t, badDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	results, err := m.Run(strings.NewReader(testDoc), scanOpt)
	if err == nil {
		t.Fatal("want an all-queries-failed error, got nil")
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("query %d: want an error, got nil", i)
		}
	}
}

// TestMalformedInput: a stream-level failure is returned from Run and
// recorded on every query.
func TestMalformedInput(t *testing.T) {
	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &strings.Builder{})
	m.Add(compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	results, err := m.Run(strings.NewReader(`<r><a>1</a>`), scanOpt)
	if err == nil {
		t.Fatal("want a syntax error for truncated input, got nil")
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("query %d: want the stream error, got nil", i)
		}
	}
}

// TestRunTwice: a Mux is single-use.
func TestRunTwice(t *testing.T) {
	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	if _, err := m.Run(strings.NewReader(testDoc), scanOpt); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := m.Run(strings.NewReader(testDoc), scanOpt); err == nil {
		t.Fatal("second Run: want an error, got nil")
	}
}

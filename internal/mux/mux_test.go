package mux_test

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

var scanOpt = sax.Options{SkipWhitespaceText: true}

func compile(t *testing.T, dtdText, fluxText string) *engine.Plan {
	t.Helper()
	schema := dtd.MustParse(dtdText)
	f, err := core.ParseFlux(fluxText)
	if err != nil {
		t.Fatalf("parse %q: %v", fluxText, err)
	}
	plan, err := engine.Compile(schema, f)
	if err != nil {
		t.Fatalf("compile %q: %v", fluxText, err)
	}
	return plan
}

const testDTD = `
<!ELEMENT r (a*,b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`

const testDoc = `<r><a>1</a><a>2</a><b>x</b></r>`

// TestSharedScanMatchesSingleRun: each plan in a shared scan must produce
// exactly the output and statistics it produces when run alone.
func TestSharedScanMatchesSingleRun(t *testing.T) {
	plans := []*engine.Plan{
		compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`),
		compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`),
	}

	single := make([]string, len(plans))
	singleStats := make([]engine.Stats, len(plans))
	for i, p := range plans {
		var sb strings.Builder
		st, err := engine.Run(p, strings.NewReader(testDoc), &sb, scanOpt)
		if err != nil {
			t.Fatalf("single run %d: %v", i, err)
		}
		single[i], singleStats[i] = sb.String(), st
	}

	m := mux.New()
	shared := make([]*strings.Builder, len(plans))
	for i, p := range plans {
		shared[i] = &strings.Builder{}
		if got := m.Add(p, shared[i]); got != i {
			t.Fatalf("Add returned slot %d, want %d", got, i)
		}
	}
	results, err := m.Run(nil, strings.NewReader(testDoc), scanOpt)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	for i := range plans {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		if shared[i].String() != single[i] {
			t.Errorf("query %d output: shared %q, single %q", i, shared[i].String(), single[i])
		}
		if results[i].Stats != singleStats[i] {
			t.Errorf("query %d stats: shared %+v, single %+v", i, results[i].Stats, singleStats[i])
		}
	}
	if m.Events() != singleStats[0].Tokens {
		t.Errorf("shared scan delivered %d events, single run processed %d tokens",
			m.Events(), singleStats[0].Tokens)
	}
}

// TestErrorIsolation: a plan whose DTD rejects the document must fail
// alone; its siblings complete with correct output.
func TestErrorIsolation(t *testing.T) {
	good := compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`)
	// This plan's DTD does not allow <a> inside <r>, so its validating
	// automaton fails mid-stream.
	bad := compile(t, `
<!ELEMENT r (b*)>
<!ELEMENT b (#PCDATA)>
`, `{ ps $ROOT: on r as $x return { $x } }`)

	m := mux.New()
	var goodOut, badOut strings.Builder
	gi := m.Add(good, &goodOut)
	bi := m.Add(bad, &badOut)
	results, err := m.Run(nil, strings.NewReader(testDoc), scanOpt)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	if results[bi].Err == nil {
		t.Error("bad plan: want a validation error, got nil")
	}
	if results[gi].Err != nil {
		t.Errorf("good plan poisoned by sibling: %v", results[gi].Err)
	}
	if goodOut.String() != testDoc {
		t.Errorf("good plan output = %q, want %q", goodOut.String(), testDoc)
	}
}

// TestAllFailed: when every plan fails the scan aborts early and Run
// reports it, with each per-query error preserved.
func TestAllFailed(t *testing.T) {
	badDTD := `
<!ELEMENT r (b*)>
<!ELEMENT b (#PCDATA)>
`
	m := mux.New()
	m.Add(compile(t, badDTD, `{ ps $ROOT: on r as $x return { $x } }`), &strings.Builder{})
	m.Add(compile(t, badDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	results, err := m.Run(nil, strings.NewReader(testDoc), scanOpt)
	if err == nil {
		t.Fatal("want an all-queries-failed error, got nil")
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("query %d: want an error, got nil", i)
		}
	}
}

// TestMalformedInput: a stream-level failure is returned from Run and
// recorded on every query.
func TestMalformedInput(t *testing.T) {
	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &strings.Builder{})
	m.Add(compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	results, err := m.Run(nil, strings.NewReader(`<r><a>1</a>`), scanOpt)
	if err == nil {
		t.Fatal("want a syntax error for truncated input, got nil")
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("query %d: want the stream error, got nil", i)
		}
	}
}

// TestRunTwice: a Mux is single-use.
func TestRunTwice(t *testing.T) {
	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	if _, err := m.Run(nil, strings.NewReader(testDoc), scanOpt); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := m.Run(nil, strings.NewReader(testDoc), scanOpt); err == nil {
		t.Fatal("second Run: want an error, got nil")
	}
}

// TestAddContextDetachesCanceledSlot: a slot registered with an
// already-canceled context is detached at the first poll boundary while
// its sibling completes; its Result records ctx.Err() and the prefix
// stats.
func TestAddContextDetachesCanceledSlot(t *testing.T) {
	// A document long enough to cross the 256-event poll granularity.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 400; i++ {
		sb.WriteString("<a>1</a>")
	}
	sb.WriteString("</r>")
	doc := sb.String()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	m := mux.New()
	var canceledOut, liveOut strings.Builder
	m.AddContext(ctx, compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &canceledOut)
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &liveOut)

	results, err := m.Run(nil, strings.NewReader(doc), scanOpt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("canceled slot err = %v, want context.Canceled", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("live slot err = %v", results[1].Err)
	}
	// The live plan copies the whole document.
	if liveOut.String() != doc {
		t.Fatalf("live slot output %d bytes, want %d", liveOut.Len(), len(doc))
	}
	if results[0].Stats.Tokens >= results[1].Stats.Tokens {
		t.Fatalf("canceled slot processed %d tokens, live %d; want an early detach",
			results[0].Stats.Tokens, results[1].Stats.Tokens)
	}
}

// TestRunCanceledScanContext: a canceled scan context fails every slot
// with ctx.Err().
func TestRunCanceledScanContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A document over 64 KB so the scanner reaches its input-batch
	// cancellation poll boundary.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 12000; i++ {
		sb.WriteString("<a>1</a>")
	}
	sb.WriteString("</r>")

	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), io.Discard)
	results, err := m.Run(ctx, strings.NewReader(sb.String()), scanOpt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("slot err = %v, want context.Canceled", results[0].Err)
	}
}

// --- selective fan-out ---------------------------------------------------

// selDTD has three disjoint top-level regions so narrow queries can be
// routed selectively.
const selDTD = `
<!ELEMENT r (a*,b*,c*)>
<!ELEMENT a (x,y)>
<!ELEMENT b (x)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
`

const selDoc = `<r>` +
	`<a><x>ax1</x><y>ay1</y></a><a><x>ax2</x><y>ay2</y></a>` +
	`<b><x>bx1</x></b><b><x>bx2</x></b>` +
	`<c>c1</c><c>c2</c>` +
	`</r>`

// selPlans compiles three narrow queries (one per region) plus one
// whole-document copy.
func selPlans(t *testing.T) []*engine.Plan {
	t.Helper()
	return []*engine.Plan{
		compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`),
		compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on b as $b return { $b } } }`),
		compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`),
		compile(t, selDTD, `{ ps $ROOT: on r as $r return { $r } }`),
	}
}

// TestSelectiveMatchesAllFanout: selective routing must change only the
// event counts — every plan's output and peak buffer bytes are identical
// to the all-fanout scan, and narrow plans see strictly fewer events.
func TestSelectiveMatchesAllFanout(t *testing.T) {
	plans := selPlans(t)

	runWith := func(m *mux.Mux) ([]mux.Result, []string) {
		t.Helper()
		outs := make([]*strings.Builder, len(plans))
		for i, p := range plans {
			outs[i] = &strings.Builder{}
			m.Add(p, outs[i])
		}
		results, err := m.Run(nil, strings.NewReader(selDoc), scanOpt)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		texts := make([]string, len(outs))
		for i, o := range outs {
			texts[i] = o.String()
		}
		return results, texts
	}

	allRes, allOut := runWith(mux.New())
	selRes, selOut := runWith(mux.NewSelective())

	for i := range plans {
		if selRes[i].Err != nil {
			t.Fatalf("plan %d: %v", i, selRes[i].Err)
		}
		if selOut[i] != allOut[i] {
			t.Errorf("plan %d output: selective %q, all-fanout %q", i, selOut[i], allOut[i])
		}
		if selRes[i].Stats.PeakBufferBytes != allRes[i].Stats.PeakBufferBytes {
			t.Errorf("plan %d peak buffer: selective %d, all-fanout %d",
				i, selRes[i].Stats.PeakBufferBytes, allRes[i].Stats.PeakBufferBytes)
		}
		if selRes[i].Stats.Tokens > allRes[i].Stats.Tokens {
			t.Errorf("plan %d tokens: selective %d > all-fanout %d",
				i, selRes[i].Stats.Tokens, allRes[i].Stats.Tokens)
		}
	}
	// The narrow plans must have been delivered strictly fewer events and
	// their skip counters must say so; the whole-document copy sees all.
	for i := 0; i < 3; i++ {
		if selRes[i].Stats.Tokens >= allRes[i].Stats.Tokens {
			t.Errorf("narrow plan %d: %d events delivered selectively, want < %d",
				i, selRes[i].Stats.Tokens, allRes[i].Stats.Tokens)
		}
		if selRes[i].SkippedEvents == 0 {
			t.Errorf("narrow plan %d: SkippedEvents = 0, want > 0", i)
		}
	}
	if selRes[3].Stats.Tokens != allRes[3].Stats.Tokens {
		t.Errorf("copy plan tokens: selective %d, all-fanout %d",
			selRes[3].Stats.Tokens, allRes[3].Stats.Tokens)
	}
	if selRes[3].SkippedEvents != 0 {
		t.Errorf("copy plan SkippedEvents = %d, want 0", selRes[3].SkippedEvents)
	}
}

// TestSelectiveGroups: plans with equal signatures route as one group;
// Groups reports formation order and skip counters.
func TestSelectiveGroups(t *testing.T) {
	// One parsed schema for all plans: grouping keys on schema identity
	// (as the Catalog provides it — one schema per distinct DTD text).
	schema := dtd.MustParse(selDTD)
	compileWith := func(fluxText string) *engine.Plan {
		f, err := core.ParseFlux(fluxText)
		if err != nil {
			t.Fatalf("parse %q: %v", fluxText, err)
		}
		plan, err := engine.Compile(schema, f)
		if err != nil {
			t.Fatalf("compile %q: %v", fluxText, err)
		}
		return plan
	}
	a1 := compileWith(`{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`)
	a2 := compileWith(`{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`)
	c := compileWith(`{ ps $ROOT: on r as $r return { ps $r: on c as $x return { $x } } }`)

	m := mux.NewSelective()
	m.Add(a1, io.Discard)
	m.Add(a2, io.Discard)
	m.Add(c, io.Discard)
	results, err := m.Run(nil, strings.NewReader(selDoc), scanOpt)
	if err != nil {
		t.Fatal(err)
	}
	groups := m.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (two identical signatures share one)", len(groups))
	}
	if groups[0].Queries != 2 || groups[1].Queries != 1 {
		t.Fatalf("group sizes = %+v, want [2 1]", groups)
	}
	for _, g := range groups {
		if g.SkippedEvents == 0 {
			t.Errorf("group skipped 0 events, want > 0: %+v", groups)
		}
	}
	if results[0].Stats.Tokens != results[1].Stats.Tokens {
		t.Errorf("same-group plans delivered different event counts: %d vs %d",
			results[0].Stats.Tokens, results[1].Stats.Tokens)
	}
}

// TestSelectiveErrorIsolation: a plan that consumes the whole document
// still validates it under selective routing, and its failure does not
// disturb narrow siblings.
func TestSelectiveErrorIsolation(t *testing.T) {
	narrow := compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on c as $x return { $x } } }`)
	// This plan's DTD does not allow <a> inside <r>, and it copies <r>,
	// so every event reaches it and its validating automaton fails.
	bad := compile(t, `
<!ELEMENT r (b*,c*)>
<!ELEMENT b (x)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT x (#PCDATA)>
`, `{ ps $ROOT: on r as $x return { $x } }`)

	m := mux.NewSelective()
	var narrowOut strings.Builder
	ni := m.Add(narrow, &narrowOut)
	bi := m.Add(bad, io.Discard)
	results, err := m.Run(nil, strings.NewReader(selDoc), scanOpt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if results[bi].Err == nil {
		t.Error("bad plan: want a validation error, got nil")
	}
	if results[ni].Err != nil {
		t.Errorf("narrow plan poisoned by sibling: %v", results[ni].Err)
	}
	if narrowOut.String() != "<c>c1</c><c>c2</c>" {
		t.Errorf("narrow plan output = %q", narrowOut.String())
	}
}

// TestSelectiveConstantQuery: a plan that consumes nothing from the
// stream skips the whole document in one step per top-level subtree and
// still produces its constant output.
func TestSelectiveConstantQuery(t *testing.T) {
	p := compile(t, selDTD, `{ ps $ROOT: on-first past(*) return done }`)
	m := mux.NewSelective()
	var out strings.Builder
	m.Add(p, &out)
	results, err := m.Run(nil, strings.NewReader(selDoc), scanOpt)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if out.String() != "done" {
		t.Errorf("output = %q, want %q", out.String(), "done")
	}
	if results[0].Stats.Tokens != 1 {
		t.Errorf("tokens = %d, want 1 (the whole document collapses to one skip)",
			results[0].Stats.Tokens)
	}
}

// TestSelectiveSpineTextValidation: stray character data at an observed
// (spine) element fails DTD validation under selective routing exactly
// as it does under all-fanout — only the interior of skipped subtrees
// loses validation.
func TestSelectiveSpineTextValidation(t *testing.T) {
	// <r> is a spine position for this narrow query (only <b> matters).
	p := compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on b as $b return { $b } } }`)
	const badDoc = `<r>stray<b><x>bx1</x></b></r>`
	for _, selective := range []bool{false, true} {
		m := mux.New()
		if selective {
			m = mux.NewSelective()
		}
		m.Add(p, io.Discard)
		results, _ := m.Run(nil, strings.NewReader(badDoc), scanOpt)
		if results[0].Err == nil {
			t.Errorf("selective=%v: stray text at spine element must fail validation", selective)
		}
	}
}

// TestSelectiveMixedSpineTextWithheld: character data at a *mixed*
// spine position is provably irrelevant — always legal, never consumed
// — so selective routing withholds it (SigNode.DropText) while leaving
// output identical to all-fanout.
func TestSelectiveMixedSpineTextWithheld(t *testing.T) {
	const mixedDTD = `
<!ELEMENT r (#PCDATA|a|b)*>
<!ELEMENT a (x)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT x (#PCDATA)>
`
	// Three non-whitespace text runs sit directly inside <r>, the narrow
	// query's spine.
	const doc = `<r>noise<a><x>v1</x></a>mid<a><x>v2</x></a>tail<b>bb</b></r>`
	q := `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`

	run := func(selective bool) (string, mux.Result) {
		m := mux.New()
		if selective {
			m = mux.NewSelective()
		}
		var out strings.Builder
		m.Add(compile(t, mixedDTD, q), &out)
		results, err := m.Run(nil, strings.NewReader(doc), scanOpt)
		if err != nil {
			t.Fatalf("selective=%v: %v", selective, err)
		}
		if results[0].Err != nil {
			t.Fatalf("selective=%v: %v", selective, results[0].Err)
		}
		return out.String(), results[0]
	}

	allOut, allRes := run(false)
	selOut, selRes := run(true)
	if selOut != allOut {
		t.Errorf("output diverged: selective %q, all-fanout %q", selOut, allOut)
	}
	// All-fanout delivers every event: <r> tags (2), two <a> subtrees
	// (5 each), the <b> subtree (3), and the three text runs at <r>.
	if want := int64(18); allRes.Stats.Tokens != want {
		t.Fatalf("all-fanout tokens = %d, want %d", allRes.Stats.Tokens, want)
	}
	// Selective withholds the three spine text runs and collapses <b>
	// into one skip step: 2 + 5 + 5 + 1 = 13.
	if want := int64(13); selRes.Stats.Tokens != want {
		t.Errorf("selective tokens = %d, want %d (spine text must be withheld)",
			selRes.Stats.Tokens, want)
	}
	if selRes.SkippedEvents == 0 {
		t.Error("SkippedEvents = 0, want > 0 (withheld text counts as skipped)")
	}
}

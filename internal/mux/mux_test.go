package mux_test

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

var scanOpt = sax.Options{SkipWhitespaceText: true}

func compile(t *testing.T, dtdText, fluxText string) *engine.Plan {
	t.Helper()
	schema := dtd.MustParse(dtdText)
	f, err := core.ParseFlux(fluxText)
	if err != nil {
		t.Fatalf("parse %q: %v", fluxText, err)
	}
	plan, err := engine.Compile(schema, f)
	if err != nil {
		t.Fatalf("compile %q: %v", fluxText, err)
	}
	return plan
}

const testDTD = `
<!ELEMENT r (a*,b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`

const testDoc = `<r><a>1</a><a>2</a><b>x</b></r>`

// TestSharedScanMatchesSingleRun: each plan in a shared scan must produce
// exactly the output and statistics it produces when run alone.
func TestSharedScanMatchesSingleRun(t *testing.T) {
	plans := []*engine.Plan{
		compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`),
		compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`),
	}

	single := make([]string, len(plans))
	singleStats := make([]engine.Stats, len(plans))
	for i, p := range plans {
		var sb strings.Builder
		st, err := engine.Run(p, strings.NewReader(testDoc), &sb, scanOpt)
		if err != nil {
			t.Fatalf("single run %d: %v", i, err)
		}
		single[i], singleStats[i] = sb.String(), st
	}

	m := mux.New()
	shared := make([]*strings.Builder, len(plans))
	for i, p := range plans {
		shared[i] = &strings.Builder{}
		if got := m.Add(p, shared[i]); got != i {
			t.Fatalf("Add returned slot %d, want %d", got, i)
		}
	}
	results, err := m.Run(nil, strings.NewReader(testDoc), scanOpt)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	for i := range plans {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		if shared[i].String() != single[i] {
			t.Errorf("query %d output: shared %q, single %q", i, shared[i].String(), single[i])
		}
		if results[i].Stats != singleStats[i] {
			t.Errorf("query %d stats: shared %+v, single %+v", i, results[i].Stats, singleStats[i])
		}
	}
	if m.Events() != singleStats[0].Tokens {
		t.Errorf("shared scan delivered %d events, single run processed %d tokens",
			m.Events(), singleStats[0].Tokens)
	}
}

// TestErrorIsolation: a plan whose DTD rejects the document must fail
// alone; its siblings complete with correct output.
func TestErrorIsolation(t *testing.T) {
	good := compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`)
	// This plan's DTD does not allow <a> inside <r>, so its validating
	// automaton fails mid-stream.
	bad := compile(t, `
<!ELEMENT r (b*)>
<!ELEMENT b (#PCDATA)>
`, `{ ps $ROOT: on r as $x return { $x } }`)

	m := mux.New()
	var goodOut, badOut strings.Builder
	gi := m.Add(good, &goodOut)
	bi := m.Add(bad, &badOut)
	results, err := m.Run(nil, strings.NewReader(testDoc), scanOpt)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	if results[bi].Err == nil {
		t.Error("bad plan: want a validation error, got nil")
	}
	if results[gi].Err != nil {
		t.Errorf("good plan poisoned by sibling: %v", results[gi].Err)
	}
	if goodOut.String() != testDoc {
		t.Errorf("good plan output = %q, want %q", goodOut.String(), testDoc)
	}
}

// TestAllFailed: when every plan fails the scan aborts early and Run
// reports it, with each per-query error preserved.
func TestAllFailed(t *testing.T) {
	badDTD := `
<!ELEMENT r (b*)>
<!ELEMENT b (#PCDATA)>
`
	m := mux.New()
	m.Add(compile(t, badDTD, `{ ps $ROOT: on r as $x return { $x } }`), &strings.Builder{})
	m.Add(compile(t, badDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	results, err := m.Run(nil, strings.NewReader(testDoc), scanOpt)
	if err == nil {
		t.Fatal("want an all-queries-failed error, got nil")
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("query %d: want an error, got nil", i)
		}
	}
}

// TestMalformedInput: a stream-level failure is returned from Run and
// recorded on every query.
func TestMalformedInput(t *testing.T) {
	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &strings.Builder{})
	m.Add(compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	results, err := m.Run(nil, strings.NewReader(`<r><a>1</a>`), scanOpt)
	if err == nil {
		t.Fatal("want a syntax error for truncated input, got nil")
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("query %d: want the stream error, got nil", i)
		}
	}
}

// TestRunTwice: a Mux is single-use.
func TestRunTwice(t *testing.T) {
	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on-first past(*) return done }`), &strings.Builder{})
	if _, err := m.Run(nil, strings.NewReader(testDoc), scanOpt); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := m.Run(nil, strings.NewReader(testDoc), scanOpt); err == nil {
		t.Fatal("second Run: want an error, got nil")
	}
}

// TestAddContextDetachesCanceledSlot: a slot registered with an
// already-canceled context is detached at the first poll boundary while
// its sibling completes; its Result records ctx.Err() and the prefix
// stats.
func TestAddContextDetachesCanceledSlot(t *testing.T) {
	// A document long enough to cross the 256-event poll granularity.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 400; i++ {
		sb.WriteString("<a>1</a>")
	}
	sb.WriteString("</r>")
	doc := sb.String()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	m := mux.New()
	var canceledOut, liveOut strings.Builder
	m.AddContext(ctx, compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &canceledOut)
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), &liveOut)

	results, err := m.Run(nil, strings.NewReader(doc), scanOpt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("canceled slot err = %v, want context.Canceled", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("live slot err = %v", results[1].Err)
	}
	// The live plan copies the whole document.
	if liveOut.String() != doc {
		t.Fatalf("live slot output %d bytes, want %d", liveOut.Len(), len(doc))
	}
	if results[0].Stats.Tokens >= results[1].Stats.Tokens {
		t.Fatalf("canceled slot processed %d tokens, live %d; want an early detach",
			results[0].Stats.Tokens, results[1].Stats.Tokens)
	}
}

// TestRunCanceledScanContext: a canceled scan context fails every slot
// with ctx.Err().
func TestRunCanceledScanContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A document over 64 KB so the scanner reaches its input-batch
	// cancellation poll boundary.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 12000; i++ {
		sb.WriteString("<a>1</a>")
	}
	sb.WriteString("</r>")

	m := mux.New()
	m.Add(compile(t, testDTD, `{ ps $ROOT: on r as $x return { $x } }`), io.Discard)
	results, err := m.Run(ctx, strings.NewReader(sb.String()), scanOpt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("slot err = %v, want context.Canceled", results[0].Err)
	}
}

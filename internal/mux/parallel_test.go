package mux_test

// Tests for the parallel per-group evaluation pipeline (SetParallel):
// equivalence with the sequential scan, the all-failed abort's skip
// accounting, and the interleavings the pipeline makes interesting —
// cancellation and subscriber detach landing mid-batch on worker
// goroutines. Run with -cpu 1,4: at GOMAXPROCS=1 the pipeline falls
// back to sequential and the same assertions pin the fallback.

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"

	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

// parPlans returns several plans with distinct signatures, so the
// parallel mux forms enough routing groups to engage its worker pool.
func parPlans(t *testing.T) []*engine.Plan {
	t.Helper()
	return selPlans(t)
}

// wideDoc builds a document long enough to cross the inline-batch
// threshold and span several scanner batches.
func wideDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<a><x>ax</x><y>ay</y></a>")
	}
	for i := 0; i < n; i++ {
		sb.WriteString("<b><x>bx</x></b>")
	}
	for i := 0; i < n; i++ {
		sb.WriteString("<c>cc</c>")
	}
	sb.WriteString("</r>")
	return sb.String()
}

// runPlans executes plans over doc through a fresh mux, returning
// outputs, results, and the stream error.
func runPlans(m *mux.Mux, plans []*engine.Plan, doc string) ([]string, []mux.Result, error) {
	outs := make([]*strings.Builder, len(plans))
	for i, p := range plans {
		outs[i] = &strings.Builder{}
		m.Add(p, outs[i])
	}
	results, err := m.Run(nil, strings.NewReader(doc), scanOpt)
	ss := make([]string, len(plans))
	for i, sb := range outs {
		ss[i] = sb.String()
	}
	return ss, results, err
}

// TestParallelMatchesSequential: the parallel pipeline must be
// observably identical to the sequential selective scan — outputs,
// stats, and skip counts, per query.
func TestParallelMatchesSequential(t *testing.T) {
	plans := parPlans(t)
	doc := wideDoc(300)

	seqOut, seqRes, seqErr := runPlans(mux.NewSelective(), plans, doc)
	if seqErr != nil {
		t.Fatal(seqErr)
	}

	pm := mux.NewSelective()
	pm.SetParallel(true)
	parOut, parRes, parErr := runPlans(pm, plans, doc)
	if parErr != nil {
		t.Fatal(parErr)
	}
	if runtime.GOMAXPROCS(0) >= 2 && !pm.ParallelActive() {
		t.Fatal("parallel pipeline did not engage at GOMAXPROCS >= 2")
	}
	for i := range plans {
		if parOut[i] != seqOut[i] {
			t.Errorf("query %d output: parallel %q, sequential %q", i, parOut[i], seqOut[i])
		}
		if parRes[i].Stats != seqRes[i].Stats {
			t.Errorf("query %d stats: parallel %+v, sequential %+v", i, parRes[i].Stats, seqRes[i].Stats)
		}
		if parRes[i].SkippedEvents != seqRes[i].SkippedEvents {
			t.Errorf("query %d skipped: parallel %d, sequential %d",
				i, parRes[i].SkippedEvents, seqRes[i].SkippedEvents)
		}
	}
}

// TestParallelAllFailedSkipCounts: when every query fails mid-stream the
// parallel producer overruns the abort token before noticing; the
// reconstruction must still report exactly the sequential scan's skip
// counts and errors.
func TestParallelAllFailedSkipCounts(t *testing.T) {
	// Both queries' DTD forbids <a> inside r, and the document buries its
	// first <a> deep enough that the failure lands several batches in.
	badDTD := `
<!ELEMENT r (b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (x,a?)>
<!ELEMENT x (#PCDATA)>
`
	mkPlans := func() []*engine.Plan {
		return []*engine.Plan{
			compile(t, badDTD, `{ ps $ROOT: on r as $x return { $x } }`),
			compile(t, badDTD, `{ ps $ROOT: on r as $r return { ps $r: on b as $b return { ps $b: on x as $x return { $x } } } }`),
		}
	}
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 800; i++ {
		sb.WriteString("<b><x>1</x></b>")
	}
	sb.WriteString("<a>boom</a>")
	for i := 0; i < 800; i++ {
		sb.WriteString("<b><x>2</x></b>")
	}
	sb.WriteString("</r>")
	doc := sb.String()

	_, seqRes, seqErr := runPlans(mux.NewSelective(), mkPlans(), doc)
	if seqErr == nil {
		t.Fatal("sequential: want an all-queries-failed error")
	}

	pm := mux.NewSelective()
	pm.SetParallel(true)
	_, parRes, parErr := runPlans(pm, mkPlans(), doc)
	if parErr == nil {
		t.Fatal("parallel: want an all-queries-failed error")
	}
	for i := range seqRes {
		if (parRes[i].Err != nil) != (seqRes[i].Err != nil) {
			t.Errorf("query %d error: parallel %v, sequential %v", i, parRes[i].Err, seqRes[i].Err)
		}
		if parRes[i].SkippedEvents != seqRes[i].SkippedEvents {
			t.Errorf("query %d skipped: parallel %d, sequential %d",
				i, parRes[i].SkippedEvents, seqRes[i].SkippedEvents)
		}
	}
}

// cancelAfterReader cancels a context once n bytes have been read
// through it, planting a cancellation mid-scan.
type cancelAfterReader struct {
	r      io.Reader
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n -= n
	if c.n <= 0 && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

// TestParallelCancelMidBatch: a slot canceled while batches are in
// flight detaches with ctx.Err() — observed by its owning worker at
// batch granularity — and its siblings' output is untouched.
func TestParallelCancelMidBatch(t *testing.T) {
	plans := parPlans(t)
	doc := wideDoc(700) // ~34 KB: several scanner input buffers

	ctx, cancel := context.WithCancel(context.Background())
	m := mux.NewSelective()
	m.SetParallel(true)
	outs := make([]*strings.Builder, len(plans))
	for i, p := range plans {
		outs[i] = &strings.Builder{}
		if i == 0 {
			m.AddContext(ctx, p, outs[i])
		} else {
			m.Add(p, outs[i])
		}
	}
	results, err := m.Run(nil, &cancelAfterReader{r: strings.NewReader(doc), n: 8 << 10, cancel: cancel}, scanOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("canceled slot err = %v, want context.Canceled", results[0].Err)
	}
	seqOut, seqRes, seqErr := runPlans(mux.NewSelective(), parPlans(t), doc)
	if seqErr != nil {
		t.Fatal(seqErr)
	}
	for i := 1; i < len(plans); i++ {
		if results[i].Err != nil {
			t.Fatalf("sibling %d poisoned: %v", i, results[i].Err)
		}
		if outs[i].String() != seqOut[i] {
			t.Errorf("sibling %d output differs after mid-scan cancel", i)
		}
		if results[i].Stats != seqRes[i].Stats {
			t.Errorf("sibling %d stats: got %+v, want %+v", i, results[i].Stats, seqRes[i].Stats)
		}
	}
}

// failAfterWriter fails with errSubscriberDied once n bytes have been
// written through it.
type failAfterWriter struct {
	n int
}

var errSubscriberDied = errors.New("subscriber died")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n < 0 {
		return 0, errSubscriberDied
	}
	return len(p), nil
}

// TestParallelStreamDetachMidBatch: under a parallel stream, a
// subscriber whose writer dies is detached by its owning worker —
// OnDetach fires off the scan goroutine with the Result already
// recorded — while siblings keep streaming to the end.
func TestParallelStreamDetachMidBatch(t *testing.T) {
	doc := wideDoc(300)

	// Sequential baseline for the surviving subscriber.
	seqOut, seqRes, seqErr := runPlans(mux.NewSelective(), parPlans(t), doc)
	if seqErr != nil {
		t.Fatal(seqErr)
	}

	plans := parPlans(t)
	m := mux.NewStreaming()
	m.SetParallel(true)
	type detach struct {
		slot int
		err  error
	}
	detached := make(chan detach, len(plans))
	m.OnDetach(func(slot int, err error) { detached <- detach{slot, err} })

	var liveOut strings.Builder
	di := m.Add(plans[3], &failAfterWriter{n: 64}) // whole-document copy; dies quickly
	li := m.Add(plans[2], &liveOut)                // narrow query; survives

	res := feedStream(t, m, doc, 4<<10)
	close(detached)

	var sawDetach bool
	for d := range detached {
		if d.slot == di {
			sawDetach = true
			if !errors.Is(d.err, errSubscriberDied) {
				t.Errorf("detach err = %v, want errSubscriberDied", d.err)
			}
		}
	}
	if !sawDetach {
		t.Fatal("dead subscriber was never detached")
	}
	if !errors.Is(res[di].Err, errSubscriberDied) {
		t.Fatalf("dead subscriber result err = %v, want errSubscriberDied", res[di].Err)
	}
	if res[li].Err != nil {
		t.Fatalf("surviving subscriber failed: %v", res[li].Err)
	}
	if liveOut.String() != seqOut[2] {
		t.Error("surviving subscriber's output differs after sibling detach")
	}
	if res[li].Stats != seqRes[2].Stats {
		t.Errorf("surviving subscriber stats: got %+v, want %+v", res[li].Stats, seqRes[2].Stats)
	}
}

// TestParallelStreamMidJoin: mid-stream joins still work under the
// parallel pipeline — the join quiesces the workers, extends the
// automaton, and the late subscriber sees exactly the document suffix.
func TestParallelStreamMidJoin(t *testing.T) {
	doc := wideDoc(200)
	m := mux.NewStreaming()
	m.SetParallel(true)
	var standingOut strings.Builder
	m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`), &standingOut)
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	cut := strings.Index(doc, "<c>")
	if _, err := cs.Write([]byte(doc[:cut])); err != nil {
		t.Fatal(err)
	}
	var lateOut strings.Builder
	errc := make(chan error, 1)
	plan := compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`)
	if err := m.AttachStream(nil, plan, &lateOut, func(slot int, err error) { errc <- err }); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Write([]byte(doc[cut:])); err != nil {
		t.Fatal(err)
	}
	res := m.EndStream(cs.Close())
	if err := <-errc; err != nil {
		t.Fatalf("late subscription rejected: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}
	if want := strings.Repeat("<c>cc</c>", 200); lateOut.String() != want {
		t.Errorf("late output %d bytes, want %d (document suffix only)", lateOut.Len(), len(want))
	}
	if want := strings.Repeat("<a><x>ax</x><y>ay</y></a>", 200); standingOut.String() != want {
		t.Errorf("standing output %d bytes, want %d", standingOut.Len(), len(want))
	}
}

// TestParallelFallback: constructions the pipeline cannot serve —
// grouped routing, all-fanout — ignore SetParallel and stay sequential.
func TestParallelFallback(t *testing.T) {
	for _, mk := range []func() *mux.Mux{mux.New, mux.NewSelectiveGrouped} {
		m := mk()
		m.SetParallel(true)
		outs, _, err := runPlans(m, parPlans(t), wideDoc(50))
		if err != nil {
			t.Fatal(err)
		}
		if m.ParallelActive() {
			t.Error("parallel pipeline engaged on an unsupported mux")
		}
		if outs[3] != wideDoc(50) {
			t.Error("fallback output wrong")
		}
	}
}

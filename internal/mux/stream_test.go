package mux_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"flux/internal/core"
	"flux/internal/dtd"
	"flux/internal/engine"
	"flux/internal/mux"
	"flux/internal/sax"
)

// feedStream runs a streaming mux over doc pushed in the given chunk
// sizes and returns EndStream's results.
func feedStream(t *testing.T, m *mux.Mux, doc string, chunk int) []mux.Result {
	t.Helper()
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	for len(doc) > 0 {
		n := chunk
		if n > len(doc) {
			n = len(doc)
		}
		if _, err := cs.Write([]byte(doc[:n])); err != nil {
			break // scan died; Close reports why
		}
		doc = doc[n:]
	}
	return m.EndStream(cs.Close())
}

// TestStreamMatchesRun: a chunked stream with standing subscriptions
// produces byte-identical per-query output and stats to a batch Run of
// the same plans over the same document.
func TestStreamMatchesRun(t *testing.T) {
	queries := []string{
		`{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`,
		`{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`,
		`{ ps $ROOT: on r as $r return { $r } }`,
	}

	batch := mux.NewSelective()
	batchOut := make([]*strings.Builder, len(queries))
	for i, q := range queries {
		batchOut[i] = &strings.Builder{}
		batch.Add(compile(t, selDTD, q), batchOut[i])
	}
	batchRes, err := batch.Run(nil, strings.NewReader(selDoc), scanOpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 7, len(selDoc)} {
		m := mux.NewStreaming()
		streamOut := make([]*strings.Builder, len(queries))
		for i, q := range queries {
			streamOut[i] = &strings.Builder{}
			m.Add(compile(t, selDTD, q), streamOut[i])
		}
		streamRes := feedStream(t, m, selDoc, chunk)
		for i := range queries {
			if streamRes[i].Err != nil {
				t.Fatalf("chunk %d query %d: %v", chunk, i, streamRes[i].Err)
			}
			if streamOut[i].String() != batchOut[i].String() {
				t.Errorf("chunk %d query %d output: stream %q, batch %q",
					chunk, i, streamOut[i].String(), batchOut[i].String())
			}
			if streamRes[i].Stats.OutputBytes != batchRes[i].Stats.OutputBytes {
				t.Errorf("chunk %d query %d output bytes: stream %d, batch %d",
					chunk, i, streamRes[i].Stats.OutputBytes, batchRes[i].Stats.OutputBytes)
			}
			if streamRes[i].Stats.PeakBufferBytes != batchRes[i].Stats.PeakBufferBytes {
				t.Errorf("chunk %d query %d peak buffer: stream %d, batch %d",
					chunk, i, streamRes[i].Stats.PeakBufferBytes, batchRes[i].Stats.PeakBufferBytes)
			}
		}
	}
}

// notifyWriter signals on first write, so tests can observe when a
// subscriber starts receiving results.
type notifyWriter struct {
	mu    sync.Mutex
	sb    strings.Builder
	first chan struct{}
	once  sync.Once
}

func newNotifyWriter() *notifyWriter { return &notifyWriter{first: make(chan struct{})} }

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.once.Do(func() { close(w.first) })
	return w.sb.Write(p)
}

func (w *notifyWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// TestStreamResultsBeforeEnd: a subscription's results reach its writer
// while the stream is still open — before EndStream, before even the
// last chunk is pushed.
func TestStreamResultsBeforeEnd(t *testing.T) {
	m := mux.NewStreaming()
	w := newNotifyWriter()
	m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`), w)
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	// Push everything up to (but not including) the closing </r>.
	head := selDoc[:strings.LastIndex(selDoc, "</r>")]
	if _, err := cs.Write([]byte(head)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.first:
	case <-time.After(5 * time.Second):
		t.Fatal("no output before end of stream")
	}
	if _, err := cs.Write([]byte("</r>")); err != nil {
		t.Fatal(err)
	}
	res := m.EndStream(cs.Close())
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if want := `<a><x>ax1</x><y>ay1</y></a><a><x>ax2</x><y>ay2</y></a>`; w.String() != want {
		t.Errorf("output = %q, want %q", w.String(), want)
	}
}

// TestStreamMidJoin: a subscription attached mid-stream activates at the
// next top-level sync point and sees exactly the document suffix.
func TestStreamMidJoin(t *testing.T) {
	m := mux.NewStreaming()
	// One standing subscription keeps the stream busy.
	m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`), &strings.Builder{})
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	// Feed both <a> subtrees, then attach a late subscription for <c>.
	cut := strings.Index(selDoc, "<b>")
	if _, err := cs.Write([]byte(selDoc[:cut])); err != nil {
		t.Fatal(err)
	}

	var lateOut strings.Builder
	slotc := make(chan int, 1)
	errc := make(chan error, 1)
	plan := compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`)
	if err := m.AttachStream(nil, plan, &lateOut, func(slot int, err error) {
		slotc <- slot
		errc <- err
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := cs.Write([]byte(selDoc[cut:])); err != nil {
		t.Fatal(err)
	}
	res := m.EndStream(cs.Close())

	slot := <-slotc
	if err := <-errc; err != nil {
		t.Fatalf("late subscription rejected: %v", err)
	}
	if slot < 0 {
		t.Fatalf("late subscription got slot %d", slot)
	}
	if res[slot].Err != nil {
		t.Fatalf("late subscription failed: %v", res[slot].Err)
	}
	if want := "<c>c1</c><c>c2</c>"; lateOut.String() != want {
		t.Errorf("late output = %q, want %q (document suffix only)", lateOut.String(), want)
	}
	if res[0].Err != nil {
		t.Fatalf("standing subscription failed: %v", res[0].Err)
	}
}

// TestStreamJoinAfterEnd: a subscription still pending when the stream
// ends is rejected with ErrStreamEnded, never silently dropped.
func TestStreamJoinAfterEnd(t *testing.T) {
	m := mux.NewStreaming()
	m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`), &strings.Builder{})
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	if _, err := cs.Write([]byte(selDoc)); err != nil {
		t.Fatal(err)
	}
	scanErr := cs.Close() // scan is over; anything attached now stays pending

	errc := make(chan error, 1)
	plan := compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`)
	if err := m.AttachStream(nil, plan, &strings.Builder{}, func(slot int, err error) {
		errc <- err
	}); err != nil {
		t.Fatal(err)
	}
	m.EndStream(scanErr)

	if err := <-errc; !errors.Is(err, mux.ErrStreamEnded) {
		t.Fatalf("post-stream join: err = %v, want ErrStreamEnded", err)
	}
}

// TestStreamDetachOnCancel: canceling a subscription's context detaches
// it mid-stream — OnDetach fires, its Result records the cancellation —
// while its siblings stream on.
func TestStreamDetachOnCancel(t *testing.T) {
	m := mux.NewStreaming()
	detached := make(chan int, 4)
	m.OnDetach(func(slot int, err error) { detached <- slot })

	ctx, cancel := context.WithCancel(context.Background())
	ci := m.AddContext(ctx, compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on a as $a return { $a } } }`), &strings.Builder{})
	var liveOut strings.Builder
	li := m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`), &liveOut)

	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	cut := strings.Index(selDoc, "<b>")
	if _, err := cs.Write([]byte(selDoc[:cut])); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := cs.Write([]byte(selDoc[cut:])); err != nil {
		t.Fatal(err)
	}
	res := m.EndStream(cs.Close())

	if got := <-detached; got != ci {
		t.Errorf("OnDetach slot = %d, want %d", got, ci)
	}
	if !errors.Is(res[ci].Err, context.Canceled) {
		t.Errorf("canceled slot err = %v, want context.Canceled", res[ci].Err)
	}
	if res[li].Err != nil {
		t.Fatalf("sibling failed: %v", res[li].Err)
	}
	if want := "<c>c1</c><c>c2</c>"; liveOut.String() != want {
		t.Errorf("sibling output = %q, want %q", liveOut.String(), want)
	}
}

// TestStreamZeroSubscribers: a stream with no subscriptions at all is
// still consumed and well-formedness checked — subscribers may join at
// any time, so the scan must not abort for lack of an audience.
func TestStreamZeroSubscribers(t *testing.T) {
	m := mux.NewStreaming()
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	if _, err := cs.Write([]byte(selDoc)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatalf("empty-audience stream failed: %v", err)
	}
	if res := m.EndStream(nil); len(res) != 0 {
		t.Fatalf("results = %v, want none", res)
	}
	if m.Events() == 0 {
		t.Fatal("stream not consumed")
	}
}

// TestStreamAbortPropagates: a producer failure (EndStream with a
// stream error) is recorded on every live subscription.
func TestStreamAbortPropagates(t *testing.T) {
	m := mux.NewStreaming()
	m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { $r } }`), &strings.Builder{})
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	if _, err := cs.Write([]byte(`<r><a><x>ax1</x>`)); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("producer died")
	res := m.EndStream(cs.Abort(cause))
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), cause.Error()) {
		t.Fatalf("aborted stream: err = %v, want cause %q", res[0].Err, cause)
	}
}

// TestStreamRunRejected: the batch entry point is off-limits for a
// streaming mux.
func TestStreamRunRejected(t *testing.T) {
	m := mux.NewStreaming()
	m.Add(compile(t, selDTD, `{ ps $ROOT: on r as $r return { $r } }`), &strings.Builder{})
	if _, err := m.Run(nil, strings.NewReader(selDoc), scanOpt); err == nil {
		t.Fatal("Run on a streaming mux must fail")
	}
}

// TestStreamGroupJoin: a mid-stream joiner with the same signature as a
// standing subscription lands in the same routing group and still gets
// correct output.
func TestStreamGroupJoin(t *testing.T) {
	// Grouping keys on (schema pointer, signature); share one schema the
	// way a catalog-backed hub does.
	schema := dtd.MustParse(selDTD)
	compileShared := func(q string) *engine.Plan {
		t.Helper()
		f, err := core.ParseFlux(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := engine.Compile(schema, f)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	m := mux.NewStreaming()
	var out1 strings.Builder
	q := `{ ps $ROOT: on r as $r return { ps $r: on c as $c return { $c } } }`
	m.Add(compileShared(q), &out1)
	if err := m.BeginStream(); err != nil {
		t.Fatal(err)
	}
	cs := sax.StartChunked(context.Background(), m, scanOpt)
	cut := strings.Index(selDoc, "<b>")
	if _, err := cs.Write([]byte(selDoc[:cut])); err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	if err := m.AttachStream(nil, compileShared(q), &out2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Write([]byte(selDoc[cut:])); err != nil {
		t.Fatal(err)
	}
	res := m.EndStream(cs.Close())
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}
	if want := "<c>c1</c><c>c2</c>"; out1.String() != want || out2.String() != want {
		t.Errorf("outputs = %q / %q, want both %q", out1.String(), out2.String(), want)
	}
	if groups := m.Groups(); len(groups) != 1 || groups[0].Queries != 2 {
		t.Errorf("groups = %+v, want one group of 2", groups)
	}
}

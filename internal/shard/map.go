package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Map assigns each document of a corpus to one or more shard workers.
// The default assignment is consistent: a document's owner is a hash of
// its name modulo the shard count, so every process that builds a map
// over the same corpus and shard count routes identically without
// coordination. An operator-supplied override file (ApplyOverrides) can
// pin any document to explicit shards — including several at once,
// which declares the document replicated and lets the router
// load-balance across its owners.
//
// A Map is immutable after construction aside from ApplyOverrides,
// which is meant to run once at startup before the map is shared;
// concurrent readers need no locking. Runtime placement changes happen
// one level up: a router wraps its map in a Topology and publishes
// edited copies under new epochs — the consistent-hash guarantee above
// describes the *initial* placement only, and holds across processes
// only until a live migration moves a document (migrations are
// router-local state; see Topology).
type Map struct {
	shards int
	owners map[string][]int // doc -> owning shard ids, ascending
}

// NewMap partitions docs across shards by consistent assignment: each
// document's single owner is FNV-1a(name) mod shards. Duplicate or
// empty document names are errors.
func NewMap(docs []string, shards int) (*Map, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: map needs at least one shard, got %d", shards)
	}
	m := &Map{shards: shards, owners: make(map[string][]int, len(docs))}
	for _, d := range docs {
		if d == "" {
			return nil, fmt.Errorf("shard: empty document name")
		}
		if _, dup := m.owners[d]; dup {
			return nil, fmt.Errorf("shard: duplicate document %q", d)
		}
		m.owners[d] = []int{hashOwner(d, shards)}
	}
	return m, nil
}

// NewMapFromPlacement builds a map from an explicit document→shards
// placement — the external-shard startup path, where the router
// discovers which documents each running worker actually serves instead
// of assuming a hash. Every document needs at least one owner, and all
// owners must lie in [0, shards).
func NewMapFromPlacement(owners map[string][]int, shards int) (*Map, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: map needs at least one shard, got %d", shards)
	}
	m := &Map{shards: shards, owners: make(map[string][]int, len(owners))}
	for doc, ids := range owners {
		if doc == "" {
			return nil, fmt.Errorf("shard: empty document name")
		}
		clean, err := cleanOwners(ids, shards)
		if err != nil {
			return nil, fmt.Errorf("shard: document %q: %w", doc, err)
		}
		m.owners[doc] = clean
	}
	return m, nil
}

// hashOwner is the consistent default assignment: FNV-1a of the
// document name, reduced mod the shard count.
func hashOwner(doc string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(doc))
	return int(h.Sum32() % uint32(shards))
}

// cleanOwners validates, dedupes and sorts a replica list.
func cleanOwners(ids []int, shards int) ([]int, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("needs at least one shard")
	}
	seen := make(map[int]bool, len(ids))
	var clean []int
	for _, id := range ids {
		if id < 0 || id >= shards {
			return nil, fmt.Errorf("shard %d out of range [0, %d)", id, shards)
		}
		if seen[id] {
			return nil, fmt.Errorf("shard %d listed twice", id)
		}
		seen[id] = true
		clean = append(clean, id)
	}
	sort.Ints(clean)
	return clean, nil
}

// ApplyOverrides replaces document placements from an operator-supplied
// shard-map file. The format is line-oriented:
//
//	# comments and blank lines are ignored
//	docname: 0        # pin docname to shard 0
//	hotdoc:  0, 2     # replicate hotdoc on shards 0 and 2
//
// Every named document must already exist in the map (an override for
// an unknown document is a typo worth failing startup over), every
// shard id must be in range, and naming a document twice is an error.
func (m *Map) ApplyOverrides(text string) error {
	overridden := make(map[string]bool)
	for i, raw := range strings.Split(text, "\n") {
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		doc, rest, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("shard: override line %d: want \"doc: shard[,shard...]\", got %q", i+1, raw)
		}
		doc = strings.TrimSpace(doc)
		if _, known := m.owners[doc]; !known {
			return fmt.Errorf("shard: override line %d: unknown document %q", i+1, doc)
		}
		if overridden[doc] {
			return fmt.Errorf("shard: override line %d: document %q overridden twice", i+1, doc)
		}
		var ids []int
		for _, f := range strings.Split(rest, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("shard: override line %d: bad shard id %q", i+1, strings.TrimSpace(f))
			}
			ids = append(ids, n)
		}
		clean, err := cleanOwners(ids, m.shards)
		if err != nil {
			return fmt.Errorf("shard: override line %d: document %q: %w", i+1, doc, err)
		}
		m.owners[doc] = clean
		overridden[doc] = true
	}
	return nil
}

// Shards returns the shard count.
func (m *Map) Shards() int { return m.shards }

// Docs returns every mapped document name, sorted.
func (m *Map) Docs() []string {
	out := make([]string, 0, len(m.owners))
	for d := range m.owners {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Owners returns the shard ids serving doc in ascending order, or nil
// for an unmapped document. The returned slice is a copy; mutating it
// cannot corrupt the map.
func (m *Map) Owners(doc string) []int {
	ids := m.owners[doc]
	if ids == nil {
		return nil
	}
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

// Placement returns the full document→owners table as a deep copy, in
// the shape NewMapFromPlacement accepts — replicated documents keep
// their whole owner list, so a map (or a live topology view) can be
// serialized to a shard-map file and rebuilt without losing replicas.
func (m *Map) Placement() map[string][]int {
	out := make(map[string][]int, len(m.owners))
	for doc, ids := range m.owners {
		cp := make([]int, len(ids))
		copy(cp, ids)
		out[doc] = cp
	}
	return out
}

// clone returns a deep copy of the map — the copy-on-write step behind
// every Topology epoch, so published snapshots stay immutable while the
// next epoch is edited.
func (m *Map) clone() *Map {
	c := &Map{shards: m.shards, owners: make(map[string][]int, len(m.owners))}
	for doc, ids := range m.owners {
		cp := make([]int, len(ids))
		copy(cp, ids)
		c.owners[doc] = cp
	}
	return c
}

// DocsFor returns the documents shard id serves, sorted.
func (m *Map) DocsFor(id int) []string {
	var out []string
	for d, ids := range m.owners {
		for _, o := range ids {
			if o == id {
				out = append(out, d)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

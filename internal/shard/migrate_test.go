package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flux"
)

// migrateURL builds the /admin/migrate request for a tier.
func migrateURL(base, doc string, from, to int) string {
	return fmt.Sprintf("%s/admin/migrate?doc=%s&from=%d&to=%d", base, doc, from, to)
}

// getTopology decodes the router's /admin/shards payload.
func getTopology(t *testing.T, base string) TopologyStatus {
	t.Helper()
	resp, err := http.Get(base + "/admin/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/shards status %d", resp.StatusCode)
	}
	var topo TopologyStatus
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestMigrateMovesDocument is the protocol's happy path over HTTP: the
// document moves between shards, the epoch advances, results stay
// byte-identical, the target serves new queries, and the source no
// longer holds a copy.
func TestMigrateMovesDocument(t *testing.T) {
	shards, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0\n")
	before := getTopology(t, ts.URL)
	_, wantBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])

	resp, body := post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, body)
	}
	var rep MigrateReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Doc != "alpha" || rep.From != 0 || rep.To != 1 || rep.Warning != "" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Epoch != before.Epoch+1 {
		t.Fatalf("report epoch = %d, want %d", rep.Epoch, before.Epoch+1)
	}

	after := getTopology(t, ts.URL)
	if after.Epoch != before.Epoch+1 || len(after.Pending) != 0 {
		t.Fatalf("topology after migrate: %+v", after)
	}
	gotResp, gotBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	if gotResp.StatusCode != http.StatusOK || gotBody != wantBody {
		t.Fatalf("post-migrate query: status %d, identical %v", gotResp.StatusCode, gotBody == wantBody)
	}
	if got := gotResp.Header.Get("X-Flux-Shard"); got != "1" {
		t.Fatalf("post-migrate query served by shard %q, want 1", got)
	}
	// The source worker no longer registers the document; the target
	// does.
	if docs := shards[0].Worker().Catalog().Docs(); containsString(docs, "alpha") {
		t.Fatalf("source still holds alpha: %v", docs)
	}
	if docs := shards[1].Worker().Catalog().Docs(); !containsString(docs, "alpha") {
		t.Fatalf("target does not hold alpha: %v", docs)
	}
	_ = rt
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// TestMigrateUnderQueryBurst is the acceptance criterion: a concurrent
// query burst runs across the whole migration window and every query
// succeeds with byte-identical output — no drops, no 404s, no partial
// results.
func TestMigrateUnderQueryBurst(t *testing.T) {
	_, _, ts := spawnTier(t, testDocs, 2, "alpha: 0\n")
	_, wantBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])

	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				resp, body := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
					return
				}
				if body != wantBody {
					errs <- fmt.Sprintf("body diverged: %q", body)
					return
				}
			}
		}()
	}
	close(start)
	// Fire the migration while the burst is in full swing.
	time.Sleep(5 * time.Millisecond)
	resp, body := post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, body)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("query failed during migration: %s", e)
	}
	if topo := getTopology(t, ts.URL); len(topo.Pending) != 0 {
		t.Fatalf("migration never settled: %+v", topo.Pending)
	}
}

// postOutcome is one finished /query request's result.
type postOutcome struct {
	status int
	shard  string
	body   string
	err    error
}

// heldQuery is a /query request whose body is being withheld: the
// router has already routed it — and counted it in flight against the
// epoch it routed under — but cannot proceed until the body arrives.
// It pins a drain window open deterministically.
type heldQuery struct {
	pw   *io.PipeWriter
	text string
	resp chan postOutcome
}

// holdQuery opens a /query request and withholds its body. Call release
// to ship the query text and collect the outcome.
func holdQuery(base, doc, query string) *heldQuery {
	pr, pw := io.Pipe()
	h := &heldQuery{pw: pw, text: query, resp: make(chan postOutcome, 1)}
	go func() {
		resp, err := http.Post(base+"/query?doc="+doc, "text/plain", pr)
		if err != nil {
			h.resp <- postOutcome{err: err}
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		h.resp <- postOutcome{
			status: resp.StatusCode,
			shard:  resp.Header.Get("X-Flux-Shard"),
			body:   string(b),
			err:    err,
		}
	}()
	return h
}

// release ships the withheld query text and returns the outcome.
func (h *heldQuery) release() postOutcome {
	io.WriteString(h.pw, h.text)
	h.pw.Close()
	return <-h.resp
}

// waitTopology polls /admin/shards until cond holds.
func waitTopology(t *testing.T, base, what string, cond func(TopologyStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		topo := getTopology(t, base)
		if cond(topo) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened: %+v", what, topo)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// inflightUnder reports the in-flight count the topology shows for
// epoch e.
func inflightUnder(topo TopologyStatus, e int64) int64 {
	return topo.InflightByEpoch[fmt.Sprint(e)]
}

// TestMigrateDrainWaitsForInflight: a migration fired while a query
// admitted under the old epoch is still in flight enters the drain
// window (dual ownership, visible in /admin/shards), lets the old query
// complete on the source copy with full results, and only then retires
// the source.
func TestMigrateDrainWaitsForInflight(t *testing.T) {
	_, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	_, wantBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	epoch1 := getTopology(t, ts.URL).Epoch

	held := holdQuery(ts.URL, "alpha", testQueries[0])
	waitTopology(t, ts.URL, "held query entering epoch accounting", func(topo TopologyStatus) bool {
		return inflightUnder(topo, epoch1) >= 1
	})

	migDone := make(chan postOutcome, 1)
	go func() {
		resp, body := post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
		migDone <- postOutcome{status: resp.StatusCode, body: body}
	}()

	// The migration must reach the drain window and hold there while
	// the old-epoch query is in flight.
	waitTopology(t, ts.URL, "drain window", func(topo TopologyStatus) bool {
		return len(topo.Pending) == 1 && topo.Pending[0].State == "draining"
	})
	select {
	case res := <-migDone:
		t.Fatalf("migration finished with an old-epoch query in flight: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}

	// New queries already route to the target during the drain.
	if resp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.Header.Get("X-Flux-Shard") != "1" {
		t.Fatalf("drain-window query served by shard %q, want 1", resp.Header.Get("X-Flux-Shard"))
	}

	// Release the held query: it must complete from the source copy,
	// byte-identical, and only then may the migration commit.
	out := held.release()
	if out.err != nil || out.status != http.StatusOK || out.body != wantBody {
		t.Fatalf("held query: %+v, want 200 with identical body", out)
	}
	if out.shard != "0" {
		t.Fatalf("held query served by shard %q, want the source 0", out.shard)
	}
	res := <-migDone
	if res.status != http.StatusOK {
		t.Fatalf("migration failed after drain: %d %s", res.status, res.body)
	}
	if got := rt.Topology().View().Owners("alpha"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("alpha owners = %v, want [1]", got)
	}
}

// TestMigrateSourceKilledMidDrain: the source shard dies while the
// drain window is open. The held old-epoch query fails against its dead
// worker — the same contract as any shard death — but the migration
// itself commits: the target copy serves, the impossible retire is a
// warning, and the tier keeps answering.
func TestMigrateSourceKilledMidDrain(t *testing.T) {
	shards, _, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	epoch1 := getTopology(t, ts.URL).Epoch

	held := holdQuery(ts.URL, "alpha", testQueries[0])
	waitTopology(t, ts.URL, "held query entering epoch accounting", func(topo TopologyStatus) bool {
		return inflightUnder(topo, epoch1) >= 1
	})

	migDone := make(chan postOutcome, 1)
	go func() {
		resp, body := post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
		migDone <- postOutcome{status: resp.StatusCode, body: body}
	}()
	waitTopology(t, ts.URL, "drain window", func(topo TopologyStatus) bool {
		return len(topo.Pending) == 1 && topo.Pending[0].State == "draining"
	})

	shards[0].Close() // kill the source mid-drain

	// The released query routed under the old epoch to the now-dead
	// source; with no live replica in its view it fails loudly.
	if out := held.release(); out.err == nil && out.status == http.StatusOK {
		t.Fatalf("held query succeeded against a dead source: %+v", out)
	}
	// Its exit drains the old epoch, and the migration commits; the
	// dead source cannot be retired, which is a warning, not an error.
	res := <-migDone
	if res.status != http.StatusOK {
		t.Fatalf("migration failed after source death: %d %s", res.status, res.body)
	}
	var rep MigrateReport
	if err := json.Unmarshal([]byte(res.body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Warning == "" || !strings.Contains(rep.Warning, "retire") {
		t.Fatalf("report = %+v, want a retire warning for the dead source", rep)
	}
	// The tier serves the migrated document from the target.
	resp, body := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Flux-Shard") != "1" {
		t.Fatalf("post-migrate query: status %d shard %q: %.120s", resp.StatusCode, resp.Header.Get("X-Flux-Shard"), body)
	}
	if topo := getTopology(t, ts.URL); len(topo.Pending) != 0 {
		t.Fatalf("migration left pending state: %+v", topo.Pending)
	}
}

// TestMigrateAbortsOnCopyFailure: a migration whose target is dead
// fails in the copy step and aborts cleanly — no epoch change, no
// pending state, the source keeps serving.
func TestMigrateAbortsOnCopyFailure(t *testing.T) {
	shards, _, ts := spawnTier(t, testDocs, 2, "alpha: 0\n")
	before := getTopology(t, ts.URL)
	shards[1].Close() // the target

	resp, body := post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("migrate to a dead target: status %d (%s), want 502", resp.StatusCode, body)
	}
	after := getTopology(t, ts.URL)
	if after.Epoch != before.Epoch || len(after.Pending) != 0 {
		t.Fatalf("failed copy mutated the topology: %+v", after)
	}
	if resp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("source stopped serving after aborted migration: %d", resp.StatusCode)
	}

	// Validation failures answer 400 without touching anything.
	if resp, _ := post(t, migrateURL(ts.URL, "alpha", 1, 0), ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate from a non-owner: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, migrateURL(ts.URL, "nope", 0, 1), ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate unknown doc: status %d, want 400", resp.StatusCode)
	}
}

// TestMigrateReplacesStaleTargetCopy: a leftover same-name copy on the
// target (an aborted earlier migration whose source was since
// hot-swapped) is retired and re-copied, never trusted — the rerun
// reports resumed and queries serve the source's current bytes.
func TestMigrateReplacesStaleTargetCopy(t *testing.T) {
	shards, _, ts := spawnTier(t, testDocs, 2, "alpha: 0\n")
	_, wantBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])

	// Plant a stale, different document under alpha's name on the
	// target, exactly what an aborted migration plus a source swap
	// would leave behind.
	staleDir := t.TempDir()
	stalePath := filepath.Join(staleDir, "stale.xml")
	if err := os.WriteFile(stalePath, []byte(testDocs["beta"]), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := shards[1].Worker().Catalog().Add("alpha", stalePath, testDTD); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, body)
	}
	var rep MigrateReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Resumed {
		t.Fatalf("report = %+v, want resumed (stale copy detected)", rep)
	}
	gotResp, gotBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	if gotResp.StatusCode != http.StatusOK || gotBody != wantBody {
		t.Fatalf("post-migrate query served stale bytes: status %d, body %q, want %q", gotResp.StatusCode, gotBody, wantBody)
	}
	if got := gotResp.Header.Get("X-Flux-Shard"); got != "1" {
		t.Fatalf("post-migrate query served by shard %q, want 1", got)
	}
}

// TestMigrateStatsMergeMidInstall: /stats merges cleanly while a
// migration holds dual ownership — the migrating document appears once
// in the rollup with its counters summed across both owners, and no
// shard is reported missing.
func TestMigrateStatsMergeMidInstall(t *testing.T) {
	_, _, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	// Give the migrating document history on the source so the rollup
	// has counters to sum.
	post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	epoch1 := getTopology(t, ts.URL).Epoch

	held := holdQuery(ts.URL, "alpha", testQueries[0])
	waitTopology(t, ts.URL, "held query entering epoch accounting", func(topo TopologyStatus) bool {
		return inflightUnder(topo, epoch1) >= 1
	})
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		post(t, migrateURL(ts.URL, "alpha", 0, 1), "")
	}()
	waitTopology(t, ts.URL, "drain window", func(topo TopologyStatus) bool {
		return len(topo.Pending) == 1 && topo.Pending[0].State == "draining"
	})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats mid-install: %v %v", resp, err)
	}
	var merged MergedStats
	err = json.NewDecoder(resp.Body).Decode(&merged)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Missing) != 0 {
		t.Fatalf("missing = %v with both shards up", merged.Missing)
	}
	if len(merged.PerShard) != 2 {
		t.Fatalf("per_shard has %d entries mid-install, want 2", len(merged.PerShard))
	}
	// Both owners report the document mid-install (the target with zero
	// or few counters); the rollup entry is their exact sum.
	var sum flux.DocStats
	reporters := 0
	for _, st := range merged.PerShard {
		if d, ok := st.Docs["alpha"]; ok {
			sum = addDocStats(sum, d)
			reporters++
		}
	}
	if reporters != 2 {
		t.Fatalf("alpha reported by %d shards mid-install, want 2 (dual ownership)", reporters)
	}
	if merged.Rollup.Docs["alpha"] != sum {
		t.Fatalf("rollup.alpha = %+v, want per-shard sum %+v", merged.Rollup.Docs["alpha"], sum)
	}

	held.release()
	<-migDone
}

// TestRouterAdminGate: without RouterOptions.Admin every /admin/*
// endpoint — the topology report included — answers 403, mirroring
// fluxd's worker-side gate.
func TestRouterAdminGate(t *testing.T) {
	specs := writeCorpus(t, testDocs)
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	m, err := NewMap(names, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := SpawnEmbedded(m, specs, EmbeddedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterOptions{Map: m, Shards: Addrs(shards), HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
		for _, s := range shards {
			s.Close()
		}
	})

	for _, ep := range []string{"/admin/shards", "/admin/migrate?doc=alpha&from=0&to=1", "/admin/rebalance", "/admin/anything"} {
		resp, body := post(t, ts.URL+ep, "")
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("POST %s without -admin: status %d (%s), want 403", ep, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/admin/shards")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("GET /admin/shards without -admin: status %d, want 403", resp.StatusCode)
	}
	// The read-only serving surface stays open.
	if resp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK {
		t.Errorf("/query gated by accident: %d", resp.StatusCode)
	}
}

// TestRebalanceMovesBusiestDoc: MigrateForBalance picks the (doc,
// shard) pair with the most served queries and moves the document to
// the least-loaded shard without a replica.
func TestRebalanceMovesBusiestDoc(t *testing.T) {
	_, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 0\ngamma: 1\n")

	// Make alpha the hot document.
	for i := 0; i < 6; i++ {
		if resp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK {
			t.Fatal("warm-up query failed")
		}
	}
	post(t, ts.URL+"/query?doc=beta", testQueries[0])

	// Rebalance needs fresh probe data for liveness; wait a beat for
	// the background probes that spawnTier configures.
	time.Sleep(50 * time.Millisecond)

	resp, body := post(t, ts.URL+"/admin/rebalance", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance status %d: %s", resp.StatusCode, body)
	}
	var rep RebalanceReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Moved || rep.Doc != "alpha" || rep.From != 0 || rep.To != 1 {
		t.Fatalf("rebalance = %+v, want alpha moved 0->1", rep)
	}
	if got := rt.Topology().View().Owners("alpha"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("alpha owners after rebalance = %v, want [1]", got)
	}
	// The moved document still answers, from its new shard.
	qresp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	if qresp.StatusCode != http.StatusOK || qresp.Header.Get("X-Flux-Shard") != "1" {
		t.Fatalf("post-rebalance query: status %d, shard %q", qresp.StatusCode, qresp.Header.Get("X-Flux-Shard"))
	}
}

package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flux"
)

const testDTD = `
<!ELEMENT bib (book*)>
<!ELEMENT book (title,year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

// testDocs are three distinct documents, so routing mistakes change
// result bytes.
var testDocs = map[string]string{
	"alpha": `<bib><book><title>FluX</title><year>2004</year></book>` +
		`<book><title>XMark</title><year>2002</year></book></bib>`,
	"beta": `<bib><book><title>Streams</title><year>2003</year></book></bib>`,
	"gamma": `<bib><book><title>Galax</title><year>2004</year></book>` +
		`<book><title>AnonX</title><year>2004</year></book>` +
		`<book><title>Punct</title><year>2001</year></book></bib>`,
}

var testQueries = []string{
	`<out> { for $b in /bib/book return {$b/title} } </out>`,
	`<out> { for $b in /bib/book where $b/year = '2004' return {$b} } </out>`,
}

// writeCorpus writes a docroot of <name>.xml/<name>.dtd pairs and
// returns its specs.
func writeCorpus(t *testing.T, docs map[string]string) []DocSpec {
	t.Helper()
	dir := t.TempDir()
	for name, content := range docs {
		if err := os.WriteFile(filepath.Join(dir, name+".xml"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".dtd"), []byte(testDTD), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	specs, err := ScanDocroot(dir)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// spawnTier builds an embedded tier: n shards over the corpus (with
// optional placement overrides) fronted by a router on an httptest
// server. Cleanup tears everything down.
func spawnTier(t *testing.T, docs map[string]string, n int, overrides string) ([]*EmbeddedShard, *Router, *httptest.Server) {
	t.Helper()
	specs := writeCorpus(t, docs)
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	m, err := NewMap(names, n)
	if err != nil {
		t.Fatal(err)
	}
	if overrides != "" {
		if err := m.ApplyOverrides(overrides); err != nil {
			t.Fatal(err)
		}
	}
	shards, err := SpawnEmbedded(m, specs, EmbeddedOptions{
		Executor: flux.ExecutorOptions{Window: time.Millisecond, MaxBatch: 16},
		Admin:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterOptions{Map: m, Shards: Addrs(shards), HealthInterval: 20 * time.Millisecond, Admin: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
		for _, s := range shards {
			s.Close()
		}
	})
	return shards, rt, ts
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestRouterMatchesSingleNode is the tier's correctness contract: every
// (document, query) pair answered through the router over 2 embedded
// shards is byte-identical to the same request against a single-node
// worker serving the whole corpus, stats trailers included, and the
// X-Flux-Shard header names the owning shard.
func TestRouterMatchesSingleNode(t *testing.T) {
	// The single-node reference: one shard holding every document,
	// queried directly — exactly fluxd's surface.
	singleShards, _, singleTS := spawnTier(t, testDocs, 1, "")
	_ = singleShards
	_, rt, ts := spawnTier(t, testDocs, 2, "")

	for doc := range testDocs {
		for qi, q := range testQueries {
			wantResp, wantBody := post(t, singleTS.URL+"/query?doc="+doc, q)
			gotResp, gotBody := post(t, ts.URL+"/query?doc="+doc, q)
			if wantResp.StatusCode != http.StatusOK || gotResp.StatusCode != http.StatusOK {
				t.Fatalf("%s q%d: status single %d router %d", doc, qi, wantResp.StatusCode, gotResp.StatusCode)
			}
			if gotBody != wantBody {
				t.Errorf("%s q%d: router body %q, single-node %q", doc, qi, gotBody, wantBody)
			}
			for _, tr := range []string{"X-Flux-Peak-Buffer-Bytes", "X-Flux-Tokens", "X-Flux-Batch-Size"} {
				if gotResp.Trailer.Get(tr) == "" {
					t.Errorf("%s q%d: trailer %s missing through the router", doc, qi, tr)
				}
			}
			owner := rt.Topology().View().Owners(doc)[0]
			if got := gotResp.Header.Get("X-Flux-Shard"); got != strconv.Itoa(owner) {
				t.Errorf("%s q%d: X-Flux-Shard = %q, want %d", doc, qi, got, owner)
			}
		}
	}

	// /docs through the router lists the whole corpus.
	resp, body := func() (*http.Response, string) {
		r, err := http.Get(ts.URL + "/docs")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, string(b)
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/docs status %d", resp.StatusCode)
	}
	var infos []flux.DocInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(testDocs) {
		t.Fatalf("/docs = %+v, want %d documents", infos, len(testDocs))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("/docs not sorted: %+v", infos)
		}
	}

	// Error surface matches fluxd: unknown doc 404, GET 405, bad query 400.
	if resp, _ := post(t, ts.URL+"/query?doc=nope", testQueries[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown doc: status %d, want 404", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/query?doc=alpha"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
		}
	}
	if resp, _ := post(t, ts.URL+"/query?doc=alpha", `<out> { for in } </out>`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", resp.StatusCode)
	}
}

// TestRouterMergedStats is the rollup arithmetic contract from the
// acceptance criteria: after a spread of queries, the router's /stats
// rollup equals the sum of the per-shard sections in the same payload —
// per-document counters, cache counters, admission counters, and
// calibration samples.
func TestRouterMergedStats(t *testing.T) {
	_, _, ts := spawnTier(t, testDocs, 2, "")
	for doc := range testDocs {
		for _, q := range testQueries {
			if resp, body := post(t, ts.URL+"/query?doc="+doc, q); resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d: %s", doc, resp.StatusCode, body)
			}
		}
		// Repeat one query for cache hits.
		if resp, _ := post(t, ts.URL+"/query?doc="+doc, testQueries[0]); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s repeat failed", doc)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", resp, err)
	}
	var merged MergedStats
	err = json.NewDecoder(resp.Body).Decode(&merged)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Missing) != 0 {
		t.Fatalf("missing = %v with all shards up", merged.Missing)
	}
	if len(merged.PerShard) != 2 {
		t.Fatalf("per_shard has %d entries, want 2", len(merged.PerShard))
	}

	// Recompute the rollup by hand from the per-shard sections.
	sum := flux.ServerStats{Docs: make(map[string]flux.DocStats)}
	var samples int64
	for _, st := range merged.PerShard {
		for doc, d := range st.Docs {
			sum.Docs[doc] = addDocStats(sum.Docs[doc], d)
		}
		sum.Cache.Hits += st.Cache.Hits
		sum.Cache.Misses += st.Cache.Misses
		sum.Cache.Size += st.Cache.Size
		sum.Admission.Admitted += st.Admission.Admitted
		sum.Admission.Queued += st.Admission.Queued
		samples += st.Calibration.Samples
	}
	for doc := range testDocs {
		got, want := merged.Rollup.Docs[doc], sum.Docs[doc]
		if got != want {
			t.Errorf("rollup.docs.%s = %+v, want per-shard sum %+v", doc, got, want)
		}
		if want.Queries != int64(len(testQueries))+1 {
			t.Errorf("%s served %d queries, want %d", doc, want.Queries, len(testQueries)+1)
		}
	}
	if merged.Rollup.Cache.Hits != sum.Cache.Hits || merged.Rollup.Cache.Misses != sum.Cache.Misses ||
		merged.Rollup.Cache.Size != sum.Cache.Size {
		t.Errorf("rollup.cache = %+v, want sums %+v", merged.Rollup.Cache, sum.Cache)
	}
	if merged.Rollup.Cache.Hits == 0 {
		t.Error("expected cache hits from the repeated query")
	}
	if merged.Rollup.Admission.Admitted != sum.Admission.Admitted || merged.Rollup.Admission.Admitted == 0 {
		t.Errorf("rollup.admission.admitted = %d, want non-zero sum %d", merged.Rollup.Admission.Admitted, sum.Admission.Admitted)
	}
	if merged.Rollup.Calibration.Samples != samples {
		t.Errorf("rollup.calibration.samples = %d, want sum %d", merged.Rollup.Calibration.Samples, samples)
	}
}

// TestRouterReplicaFailover: a document replicated on both shards
// survives one shard dying — the router marks the dead worker on the
// failed attempt and retries the read on the surviving replica.
func TestRouterReplicaFailover(t *testing.T) {
	shards, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0,1\n")
	if resp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill query failed: %d", resp.StatusCode)
	}
	shards[0].Close()

	// Every post-kill query must succeed on the survivor, including the
	// very first one (mark-dead-and-retry, not wait-for-health-probe).
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d after kill: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Flux-Shard"); got != "1" {
			t.Fatalf("query %d after kill served by shard %q, want 1", i, got)
		}
	}

	// The topology view flags the dead shard.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/admin/shards")
		if err != nil {
			t.Fatal(err)
		}
		var topo TopologyStatus
		err = json.NewDecoder(resp.Body).Decode(&topo)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		status := topo.Shards
		if topo.Epoch < 1 {
			t.Fatalf("topology epoch = %d, want >= 1", topo.Epoch)
		}
		if len(status) == 2 && !status[0].Alive && status[0].LastError != "" && status[1].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("topology never showed shard 0 dead: %+v", status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Merged stats name the unreachable shard instead of undercounting
	// silently.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var merged MergedStats
	err = json.NewDecoder(resp.Body).Decode(&merged)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Missing) != 1 || merged.Missing[0] != "0" {
		t.Fatalf("missing = %v, want [0]", merged.Missing)
	}
	_ = rt
}

// TestRouterShardKillMidBatch: killing a shard while a query result is
// streaming through the router aborts the client connection mid-body —
// the truncation is visible at the transport, not silently passed off
// as a complete result — and the rest of the tier keeps serving.
func TestRouterShardKillMidBatch(t *testing.T) {
	// A document big enough that its result is still streaming when the
	// kill lands.
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 120000; i++ {
		fmt.Fprintf(&sb, "<book><title>vol %06d</title><year>2004</year></book>", i)
	}
	sb.WriteString("</bib>")
	docs := map[string]string{"big": sb.String(), "beta": testDocs["beta"]}

	shards, rt, ts := spawnTier(t, docs, 2, "big: 0\nbeta: 1\n")

	resp, err := http.Post(ts.URL+"/query?doc=big", "text/plain", strings.NewReader(testQueries[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("never saw streaming output: %v", err)
	}
	shards[0].Close() // kill the serving shard mid-stream

	if _, err := io.Copy(io.Discard, resp.Body); err == nil {
		t.Fatal("client read the truncated result to EOF without an error")
	}

	// The tier is degraded, not down: the surviving shard's document
	// still serves, and the dead one's answers 502 once marked dead.
	if resp, body := post(t, ts.URL+"/query?doc=beta", testQueries[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("surviving shard's doc failed: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, ts.URL+"/query?doc=big", testQueries[0])
		if resp.StatusCode == http.StatusBadGateway {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead shard's doc never answered 502, last status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = rt
}

// TestRouterConcurrentSpread: concurrent queries against every document
// all come back correct while spreading across both shards — the
// routing table holds up under the race detector.
func TestRouterConcurrentSpread(t *testing.T) {
	_, rt, ts := spawnTier(t, testDocs, 2, "")
	want := make(map[string]string)
	for doc := range testDocs {
		_, body := post(t, ts.URL+"/query?doc="+doc, testQueries[0])
		want[doc] = body
	}
	var wg sync.WaitGroup
	for doc := range testDocs {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(doc string) {
				defer wg.Done()
				resp, body := post(t, ts.URL+"/query?doc="+doc, testQueries[0])
				if resp.StatusCode != http.StatusOK || body != want[doc] {
					t.Errorf("%s: status %d, body mismatch %v", doc, resp.StatusCode, body != want[doc])
				}
			}(doc)
		}
	}
	wg.Wait()
	_ = rt
}

// TestRouterDefaultDoc: with a single mapped document the ?doc=
// parameter is optional, mirroring fluxd.
func TestRouterDefaultDoc(t *testing.T) {
	_, _, ts := spawnTier(t, map[string]string{"alpha": testDocs["alpha"]}, 2, "")
	resp, body := post(t, ts.URL+"/query", testQueries[0])
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "FluX") {
		t.Fatalf("default doc: status %d body %q", resp.StatusCode, body)
	}
}

// TestClientAgainstWorker: the typed client round-trips a worker's
// identity, docs, stats and health.
func TestClientAgainstWorker(t *testing.T) {
	shards, _, _ := spawnTier(t, testDocs, 2, "")
	c := NewClient(shards[0].Addr+"/", nil) // trailing slash tolerated
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	id, err := c.Identity(ctx)
	if err != nil || id.ShardID != 0 || id.Advertise != shards[0].Addr {
		t.Fatalf("identity = %+v, err %v", id, err)
	}
	docs, err := c.Docs(ctx)
	if err != nil || len(docs) != len(shards[0].Worker().Catalog().Docs()) {
		t.Fatalf("docs = %+v, err %v", docs, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Docs == nil || st.Calibration.Factor == 0 {
		t.Fatalf("stats = %+v, err %v", st, err)
	}
}

// Package shard is the sharded serving tier: it scales the single-node
// fluxd surface out across N worker processes by partitioning a corpus
// of documents, routing each query to an owning worker, and merging the
// workers' statistics back into one coherent view.
//
// The pieces, bottom up:
//
//   - Map assigns each document to one or more shards — consistent
//     hash of the name by default, operator overrides (including
//     replication) via a shard-map file;
//   - Topology versions the map: epoch-stamped, copy-on-write placement
//     snapshots advanced by the Migrate/Cutover/Commit/Abort protocol,
//     so a document can move between shards while queries keep routing
//     on consistent views;
//   - Server is one worker's HTTP surface (the same veneer cmd/fluxd
//     serves standalone), extended with a /shardz identity endpoint so
//     a router can verify topology, and — admin-gated — the
//     install/retire/fetch endpoints live migration rides on;
//   - Client is the typed HTTP client for one worker;
//   - Merge aggregates per-shard flux.ServerStats snapshots into a
//     cross-shard rollup with per-shard breakdowns;
//   - Router is the fluxrouter core: it serves the fluxd surface,
//     proxies each /query to the least-loaded live owner (streaming the
//     response through, trailers included), retries idempotent reads on
//     a dead shard, health-checks workers in the background, and — when
//     its admin surface is enabled — drives live migrations
//     (/admin/migrate, /admin/rebalance) and reports topology
//     (/admin/shards) and control-plane state (/admin/rebalancer);
//   - Rebalancer is the autonomous control plane: a background router
//     loop that watches a decaying per-(doc, shard) load signal and,
//     with hysteresis, migrates the hottest document or adds a replica
//     of it so bursts fan out (see rebalance.go);
//   - SpawnEmbedded runs N in-process workers on loopback ports, which
//     makes single-machine multi-shard serving (fluxrouter -spawn) and
//     integration tests trivial.
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flux"
)

// Router routes the fluxd HTTP surface across a set of shard workers:
// /query is proxied to a live owner of the target document (preferring
// the least loaded replica), /stats merges every worker's counters into
// a rollup with per-shard breakdowns, /docs aggregates the workers'
// listings, and /admin/shards reports the live topology.
//
// Failure handling: workers are health-checked in the background (and a
// transport failure during a proxy marks the worker dead on the spot);
// a /query whose chosen worker cannot be reached before any response
// arrives is retried on the document's next replica — the read is
// idempotent — while a failure after response bytes have streamed
// aborts the client connection, exactly like fluxd's own mid-stream
// failures.
//
// Placement is versioned: every request routes on one immutable
// Topology view, each proxied query is counted against the epoch it
// routed under, and the live-migration protocol (MigrateDoc) uses those
// per-epoch counts as its drain barrier — the source copy of a moved
// document is only retired once no query routed under a pre-cutover
// epoch is still in flight.
type Router struct {
	topo     *Topology
	backends []*backend
	routes   *http.ServeMux
	admin    bool

	// inflight counts the proxied queries per topology epoch — the
	// migration drain barrier.
	inflight epochTracker

	// loads accumulates per-(doc, shard) query counts between
	// rebalancer ticks — the control plane's raw load signal.
	loads loadSignal

	// rebal is the attached control plane, nil until NewRebalancer.
	rebal atomic.Pointer[Rebalancer]

	// defaultDoc mirrors the fluxd rule: /query without ?doc= works
	// when exactly one document is mapped.
	defaultDoc string

	stop     chan struct{}
	stopOnce sync.Once
	probes   sync.WaitGroup
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Map assigns documents to shards; required. The router owns it
	// afterwards (it becomes epoch 1 of the router's topology) — apply
	// overrides before, not after.
	Map *Map
	// Shards are the worker base URLs indexed by shard id; the length
	// must equal Map.Shards().
	Shards []string
	// Client is the HTTP client used for proxying and probing; nil
	// means a dedicated default client.
	Client *http.Client
	// HealthInterval is the background probe period; 0 means
	// DefaultHealthInterval, negative disables background probing
	// (probes then happen only via proxy failures).
	HealthInterval time.Duration
	// Admin exposes the mutating /admin/* endpoints (migrate,
	// rebalance) and the /admin/shards topology report; without it
	// every /admin/* request answers 403, exactly like a fluxd running
	// without -admin. Migration additionally needs the workers' own
	// admin surfaces enabled.
	Admin bool
}

// DefaultHealthInterval is the background health-probe period when
// RouterOptions leaves HealthInterval zero.
const DefaultHealthInterval = 2 * time.Second

// probeTimeout bounds one worker probe; a worker that cannot answer
// /shardz and /stats in this long is treated as down.
const probeTimeout = 2 * time.Second

// backend is the router's view of one shard worker.
type backend struct {
	id     int
	addr   string
	client *Client

	alive     atomic.Bool
	inflight  atomic.Int64 // queries this router is currently proxying to it
	load      atomic.Int64 // last reported admission active + waiting
	lastCheck atomic.Int64 // unix nanos of the last probe
	lastErr   atomic.Value // string; "" when healthy
}

// markDead records a failure observed either by a probe or by a proxy
// attempt.
func (b *backend) markDead(err error) {
	b.alive.Store(false)
	b.lastErr.Store(err.Error())
}

// NewRouter validates the topology, probes every worker once
// synchronously (so the first request already has liveness to route
// on), and starts the background health loop. Close stops the loop.
func NewRouter(opt RouterOptions) (*Router, error) {
	if opt.Map == nil {
		return nil, errors.New("shard: router needs a map")
	}
	if len(opt.Shards) != opt.Map.Shards() {
		return nil, fmt.Errorf("shard: map wants %d shards, got %d addresses", opt.Map.Shards(), len(opt.Shards))
	}
	hc := opt.Client
	if hc == nil {
		hc = &http.Client{}
	}
	rt := &Router{
		topo:   NewTopology(opt.Map),
		routes: http.NewServeMux(),
		admin:  opt.Admin,
		stop:   make(chan struct{}),
	}
	for i, addr := range opt.Shards {
		b := &backend{id: i, addr: addr, client: NewClient(addr, hc)}
		b.lastErr.Store("")
		rt.backends = append(rt.backends, b)
	}
	if docs := opt.Map.Docs(); len(docs) == 1 {
		rt.defaultDoc = docs[0]
	}
	rt.routes.HandleFunc("/query", rt.handleQuery)
	rt.routes.HandleFunc("/docs", rt.handleDocs)
	rt.routes.HandleFunc("/stats", rt.handleStats)
	rt.routes.HandleFunc("/healthz", rt.handleHealthz)
	if opt.Admin {
		rt.routes.HandleFunc("/admin/shards", rt.handleShards)
		rt.routes.HandleFunc("/admin/migrate", rt.handleMigrate)
		rt.routes.HandleFunc("/admin/rebalance", rt.handleRebalance)
		rt.routes.HandleFunc("/admin/rebalancer", rt.handleRebalancer)
	} else {
		rt.routes.HandleFunc("/admin/", rt.handleAdminDisabled)
	}

	rt.probeAll()
	interval := opt.HealthInterval
	if interval == 0 {
		interval = DefaultHealthInterval
	}
	if interval > 0 {
		rt.probes.Add(1)
		go rt.healthLoop(interval)
	}
	return rt, nil
}

// Close stops the attached rebalancer (if any) and the background
// health loop. It does not touch the workers; embedded shards are
// closed by their own Close.
func (rt *Router) Close() {
	if rb := rt.rebal.Load(); rb != nil {
		rb.Close()
	}
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probes.Wait()
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.routes.ServeHTTP(w, r) }

// healthLoop probes every worker each interval until Close.
func (rt *Router) healthLoop(interval time.Duration) {
	defer rt.probes.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every worker concurrently and waits for the sweep.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe checks one worker: identity (is this still the shard the map
// says it is?) then stats (for the live load signal). Any failure, or
// an identity asserting a different shard id, marks the worker dead; a
// standalone worker (shard_id -1, a plain fluxd without -shard-id) is
// accepted at any position.
func (rt *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	b.lastCheck.Store(time.Now().UnixNano())
	id, err := b.client.Identity(ctx)
	if err != nil {
		b.markDead(err)
		return
	}
	if id.ShardID >= 0 && id.ShardID != b.id {
		b.markDead(fmt.Errorf("shard id mismatch: router expects %d, worker at %s asserts %d (stale shard map?)", b.id, b.addr, id.ShardID))
		return
	}
	st, err := b.client.Stats(ctx)
	if err != nil {
		b.markDead(err)
		return
	}
	b.load.Store(st.Admission.ActiveScans + st.Admission.Waiting)
	b.lastErr.Store("")
	b.alive.Store(true)
}

// Topology returns the router's versioned placement table, for
// inspection and direct protocol driving in tests.
func (rt *Router) Topology() *Topology { return rt.topo }

// candidates orders a document's owners under one topology view for a
// proxy attempt: live workers before dead ones (a dead worker is still
// tried last — the read is idempotent and the worker may have just
// recovered), less loaded before more (the worker-reported admission
// load plus the queries this router currently has in flight there), id
// as the tie break.
func (rt *Router) candidates(view *View, doc string) []*backend {
	owners := view.Owners(doc)
	cands := make([]*backend, 0, len(owners))
	for _, id := range owners {
		cands = append(cands, rt.backends[id])
	}
	type rank struct {
		dead  bool
		score int64
	}
	ranks := make(map[*backend]rank, len(cands))
	for _, b := range cands {
		ranks[b] = rank{dead: !b.alive.Load(), score: b.load.Load() + b.inflight.Load()}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ri, rj := ranks[cands[i]], ranks[cands[j]]
		if ri.dead != rj.dead {
			return !ri.dead
		}
		if ri.score != rj.score {
			return ri.score < rj.score
		}
		return cands[i].id < cands[j].id
	})
	return cands
}

// handleQuery proxies a query to a live owner of the target document.
// Transport failures before a response commits are retried on the next
// replica; once response bytes are streaming, a failure aborts the
// connection (the truncation must be visible at the transport).
//
// The whole request routes on one topology view taken here, and is
// counted in flight against that view's epoch until the response has
// finished streaming — the accounting a migration's drain barrier waits
// on before retiring a source copy.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the query text to /query", http.StatusMethodNotAllowed)
		return
	}
	doc, err := resolveDoc(r, func() string { return rt.defaultDoc })
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Load-then-enter must not race a concurrent cutover: if the epoch
	// advanced between taking the view and counting ourselves against
	// it, a drain barrier could have passed without seeing this request
	// and retired a source copy we are about to route to. Re-checking
	// the view after enter closes the window — either we still hold the
	// current epoch, or we retry on the new one.
	var view *View
	for {
		view = rt.topo.View()
		rt.inflight.enter(view.Epoch())
		if rt.topo.View() == view {
			break
		}
		rt.inflight.exit(view.Epoch())
	}
	defer rt.inflight.exit(view.Epoch())
	cands := rt.candidates(view, doc)
	if len(cands) == 0 {
		http.Error(w, fmt.Sprintf("unknown document %q (see /docs)", doc), http.StatusNotFound)
		return
	}
	body, status, err := ReadQueryBody(r)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	var lastErr error
	for _, b := range cands {
		proxied := func() bool {
			b.inflight.Add(1)
			// Deferred so a mid-stream abort (stream panics with
			// http.ErrAbortHandler) cannot leak the in-flight count and
			// permanently skew the balancing score.
			defer b.inflight.Add(-1)
			resp, err := b.client.Query(r.Context(), doc, string(body))
			if err != nil {
				if r.Context().Err() != nil {
					// The client is gone; stop retrying on its behalf.
					return true
				}
				// The worker never answered: mark it dead and try the next
				// replica — nothing has been committed to the client yet.
				b.markDead(err)
				lastErr = err
				return false
			}
			// The worker accepted the scan: count it into the control
			// plane's load signal before streaming (a mid-stream abort
			// still cost the worker the scan).
			rt.loads.observe(doc, b.id)
			rt.stream(w, resp, b)
			return true
		}()
		if proxied {
			return
		}
	}
	http.Error(w, fmt.Sprintf("no live shard for document %q: %v", doc, lastErr), http.StatusBadGateway)
}

// stream copies a worker's response to the client: status, headers,
// body (flushed as it arrives, so mid-stream progress reaches the
// client), and the stats trailers after the body. A copy failure after
// the header has been written cannot be reported cleanly; the
// connection is aborted so the truncation is visible at the transport,
// and the worker is marked dead for the health loop to confirm.
func (rt *Router) stream(w http.ResponseWriter, resp *http.Response, b *backend) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	// The net/http client strips the Trailer announcement into
	// resp.Trailer (keys first, values after body EOF); re-announce so
	// our own transport forwards them.
	if len(resp.Trailer) > 0 {
		keys := make([]string, 0, len(resp.Trailer))
		for k := range resp.Trailer {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.Set("Trailer", strings.Join(keys, ", "))
	}
	h.Set("X-Flux-Shard", strconv.Itoa(b.id))
	w.WriteHeader(resp.StatusCode)
	if readErr, writeErr := copyFlush(w, resp.Body); readErr != nil || writeErr != nil {
		// Only a worker-side read failure indicts the worker; a client
		// that disconnected mid-download (write failure) says nothing
		// about the shard's health, and with background probing disabled
		// a wrong markDead here would demote a healthy replica forever.
		if readErr != nil {
			b.markDead(readErr)
		}
		panic(http.ErrAbortHandler)
	}
	for k, vv := range resp.Trailer {
		for _, v := range vv {
			h.Add(k, v)
		}
	}
}

// copyFlush copies src to w, flushing after every chunk so a streaming
// result streams through the router instead of pooling in its buffers.
// Source (worker) and sink (client) failures are reported separately —
// the caller treats them very differently.
func copyFlush(w http.ResponseWriter, src io.Reader) (readErr, writeErr error) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		r, rerr := src.Read(buf)
		if r > 0 {
			if _, werr := w.Write(buf[:r]); werr != nil {
				return nil, werr
			}
			if f != nil {
				f.Flush()
			}
		}
		if rerr == io.EOF {
			return nil, nil
		}
		if rerr != nil {
			return rerr, nil
		}
	}
}

// handleDocs aggregates the live workers' /docs listings, restricted to
// mapped documents and deduplicated by name (a replicated document
// appears once, from its lowest-id live owner).
func (rt *Router) handleDocs(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), probeTimeout)
	defer cancel()
	perShard := make([][]flux.DocInfo, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			if infos, err := b.client.Docs(ctx); err == nil {
				perShard[i] = infos
			}
		}(i, b)
	}
	wg.Wait()
	view := rt.topo.View()
	seen := make(map[string]bool)
	var out []flux.DocInfo
	for _, infos := range perShard {
		for _, info := range infos {
			if view.Owners(info.Name) == nil || seen[info.Name] {
				continue
			}
			seen[info.Name] = true
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

// handleStats fetches every worker's snapshot concurrently and serves
// the merged rollup with per-shard breakdowns (MergedStats; schema in
// README's fluxrouter section). Unreachable shards are listed in
// "missing" — their counters are absent from the rollup.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), probeTimeout)
	defer cancel()
	per, missing := rt.collectStats(ctx)
	merged := Merge(per)
	merged.Missing = missing
	writeJSON(w, merged)
}

// collectStats fetches every worker's /stats snapshot concurrently,
// returning the reachable snapshots keyed by decimal shard id and the
// sorted ids of the unreachable workers.
func (rt *Router) collectStats(ctx context.Context) (per map[string]flux.ServerStats, missing []string) {
	per = make(map[string]flux.ServerStats)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			st, err := b.client.Stats(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				missing = append(missing, strconv.Itoa(b.id))
				return
			}
			per[strconv.Itoa(b.id)] = st
		}(b)
	}
	wg.Wait()
	sort.Strings(missing)
	return per, missing
}

// ShardStatus is one worker's row in the /admin/shards topology report.
type ShardStatus struct {
	// ID is the worker's shard id in the map.
	ID int `json:"id"`
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Alive reports the last probe's verdict.
	Alive bool `json:"alive"`
	// Docs are the documents the map assigns to this shard.
	Docs []string `json:"docs"`
	// Inflight is the number of queries this router is currently
	// proxying to the worker.
	Inflight int64 `json:"inflight"`
	// Load is the worker's last reported admission pressure (active
	// scans + waiting scans), the router's balancing signal.
	Load int64 `json:"load"`
	// LastCheck is when the worker was last probed.
	LastCheck time.Time `json:"last_check"`
	// LastError is the last probe or proxy failure, empty when healthy.
	LastError string `json:"last_error,omitempty"`
}

// TopologyStatus is the /admin/shards payload: the current placement
// epoch, the migrations in progress, and one ShardStatus per worker.
type TopologyStatus struct {
	// Epoch is the current topology epoch; it advances by one per
	// published placement change (migration cutovers and rollbacks).
	Epoch int64 `json:"epoch"`
	// Pending lists the in-progress migrations, sorted by document.
	Pending []MigrationStatus `json:"pending_migrations,omitempty"`
	// InflightByEpoch counts the queries currently in flight per
	// topology epoch (keys are decimal epochs). Entries under old epochs
	// are what a pending migration's drain barrier is waiting on.
	InflightByEpoch map[string]int64 `json:"inflight_by_epoch,omitempty"`
	// Shards holds one row per worker, in shard-id order.
	Shards []ShardStatus `json:"shards"`
}

// handleShards reports the router's topology view: epoch, pending
// migrations, and one ShardStatus per worker.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	view := rt.topo.View()
	out := TopologyStatus{Epoch: view.Epoch(), Pending: rt.topo.Pending()}
	if counts := rt.inflight.snapshot(); len(counts) > 0 {
		out.InflightByEpoch = make(map[string]int64, len(counts))
		for e, n := range counts {
			out.InflightByEpoch[strconv.FormatInt(e, 10)] = n
		}
	}
	for _, b := range rt.backends {
		out.Shards = append(out.Shards, ShardStatus{
			ID:        b.id,
			Addr:      b.addr,
			Alive:     b.alive.Load(),
			Docs:      view.DocsFor(b.id),
			Inflight:  b.inflight.Load(),
			Load:      b.load.Load(),
			LastCheck: time.Unix(0, b.lastCheck.Load()),
			LastError: b.lastErr.Load().(string),
		})
	}
	writeJSON(w, out)
}

// handleAdminDisabled answers /admin/* when the router runs without
// Admin: topology admin moves documents and reveals deployment detail,
// so it is opt-in exactly like fluxd's worker admin surface.
func (rt *Router) handleAdminDisabled(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "admin endpoints are disabled; start fluxrouter with -admin to enable topology admin", http.StatusForbidden)
}

// handleHealthz is the router's own liveness probe; shard liveness is
// /admin/shards.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeHealthz(w)
}

// --- embedded shards ------------------------------------------------------

// EmbeddedShard is one in-process shard worker: a Server listening on
// its own loopback port, indistinguishable over HTTP from an external
// fluxd -shard-id process. Embedded shards make single-machine
// multi-shard serving (fluxrouter -spawn N) and integration tests
// trivial — and killing one (Close) severs its connections mid-stream,
// which is exactly what the failure-path tests need.
type EmbeddedShard struct {
	// ID is the shard id the worker asserts at /shardz.
	ID int
	// Addr is the worker's base URL (http://127.0.0.1:port).
	Addr string

	worker *Server
	hs     *http.Server
}

// Worker returns the shard's serving surface, for direct inspection in
// tests and benchmarks.
func (s *EmbeddedShard) Worker() *Server { return s.worker }

// Close shuts the worker's HTTP server down immediately, severing
// in-flight connections — the "kill -9 a shard" failure mode — and
// deletes any document copies the worker spooled for installs.
func (s *EmbeddedShard) Close() error {
	err := s.hs.Close()
	s.worker.CleanupSpool()
	return err
}

// EmbeddedOptions configures the workers SpawnEmbedded builds.
type EmbeddedOptions struct {
	// Catalog configures each worker's catalog (cache, admission).
	Catalog flux.CatalogOptions
	// Executor configures each worker's batching executor.
	Executor flux.ExecutorOptions
	// Admin exposes the mutating /admin/* endpoints on each worker.
	Admin bool
	// ServiceSlots and MinServiceTime configure each worker's emulated
	// service capacity (ServerOptions.ServiceSlots): a cap on concurrent
	// /query requests with a wall-clock floor per request, so benchmark
	// tiers exhibit real queueing on hosts whose CPU count cannot
	// express node parallelism. Zero ServiceSlots disables the gate.
	ServiceSlots int
	// MinServiceTime is the per-request service-time floor applied while
	// a ServiceSlots slot is held; ignored without ServiceSlots.
	MinServiceTime time.Duration
}

// SpawnEmbedded starts one in-process worker per shard of m, each
// serving the documents the map assigns to it (specs supplies the
// files), each on its own loopback port. On any startup error the
// already-started workers are closed. The caller owns the returned
// shards and closes them when done; their addresses (in id order) are
// what RouterOptions.Shards wants.
func SpawnEmbedded(m *Map, specs []DocSpec, opt EmbeddedOptions) ([]*EmbeddedShard, error) {
	byName := make(map[string]DocSpec, len(specs))
	for _, sp := range specs {
		byName[sp.Name] = sp
	}
	var shards []*EmbeddedShard
	fail := func(err error) ([]*EmbeddedShard, error) {
		for _, s := range shards {
			s.Close()
		}
		return nil, err
	}
	for id := 0; id < m.Shards(); id++ {
		cat := flux.NewCatalog(opt.Catalog)
		for _, name := range m.DocsFor(id) {
			sp, ok := byName[name]
			if !ok {
				return fail(fmt.Errorf("shard: no DocSpec for mapped document %q", name))
			}
			dtdText, err := os.ReadFile(sp.DTDPath)
			if err != nil {
				return fail(fmt.Errorf("shard %d: DTD %s: %w", id, sp.DTDPath, err))
			}
			if err := cat.Add(sp.Name, sp.DocPath, string(dtdText)); err != nil {
				return fail(fmt.Errorf("shard %d: %w", id, err))
			}
		}
		ex, err := flux.NewExecutor(cat, opt.Executor)
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", id, err))
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", id, err))
		}
		addr := "http://" + ln.Addr().String()
		worker := NewServer(ex, ServerOptions{
			Admin: opt.Admin, ShardID: id, Advertise: addr,
			ServiceSlots: opt.ServiceSlots, MinServiceTime: opt.MinServiceTime,
		})
		hs := &http.Server{Handler: worker}
		go hs.Serve(ln)
		shards = append(shards, &EmbeddedShard{ID: id, Addr: addr, worker: worker, hs: hs})
	}
	return shards, nil
}

// Addrs returns the shards' base URLs in order — the RouterOptions.Shards
// value for a freshly spawned embedded tier.
func Addrs(shards []*EmbeddedShard) []string {
	out := make([]string, len(shards))
	for i, s := range shards {
		out[i] = s.Addr
	}
	return out
}

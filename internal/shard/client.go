package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"flux"
)

// Client talks to one shard worker's HTTP surface: health and identity
// probes, typed /stats and /docs fetches, and raw /query passthrough
// for the router to stream from.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the worker at baseURL (scheme://host:port,
// trailing slash tolerated). A nil hc uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Base returns the worker's base URL.
func (c *Client) Base() string { return c.base }

// Health probes /healthz; any non-200 answer (or transport failure) is
// an error.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s/healthz answered %d", c.base, resp.StatusCode)
	}
	return nil
}

// Identity fetches the worker's /shardz self-description.
func (c *Client) Identity(ctx context.Context) (Identity, error) {
	var id Identity
	err := c.getJSON(ctx, "/shardz", &id)
	return id, err
}

// Stats fetches the worker's typed /stats snapshot.
func (c *Client) Stats(ctx context.Context) (flux.ServerStats, error) {
	var st flux.ServerStats
	err := c.getJSON(ctx, "/stats", &st)
	return st, err
}

// Docs fetches the worker's /docs listing.
func (c *Client) Docs(ctx context.Context) ([]flux.DocInfo, error) {
	var infos []flux.DocInfo
	err := c.getJSON(ctx, "/docs", &infos)
	return infos, err
}

// Query posts queryText against doc and returns the raw response for
// the caller to stream — body, status and trailers untouched, so a
// router can pass everything through. Transport failures are errors; an
// HTTP error status is not (the caller forwards it). The caller owns
// resp.Body.
func (c *Client) Query(ctx context.Context, doc, queryText string) (*http.Response, error) {
	u := c.base + "/query"
	if doc != "" {
		u += "?doc=" + url.QueryEscape(doc)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(queryText))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	return c.hc.Do(req)
}

// getJSON fetches path and decodes the JSON payload into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s%s answered %d", c.base, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// drain consumes and closes a response body so the transport can reuse
// the connection.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/url"
	"strings"

	"flux"
)

// Client talks to one shard worker's HTTP surface: health and identity
// probes, typed /stats and /docs fetches, and raw /query passthrough
// for the router to stream from.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the worker at baseURL (scheme://host:port,
// trailing slash tolerated). A nil hc uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Base returns the worker's base URL.
func (c *Client) Base() string { return c.base }

// Health probes /healthz; any non-200 answer (or transport failure) is
// an error.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s/healthz answered %d", c.base, resp.StatusCode)
	}
	return nil
}

// Identity fetches the worker's /shardz self-description.
func (c *Client) Identity(ctx context.Context) (Identity, error) {
	var id Identity
	err := c.getJSON(ctx, "/shardz", &id)
	return id, err
}

// Stats fetches the worker's typed /stats snapshot.
func (c *Client) Stats(ctx context.Context) (flux.ServerStats, error) {
	var st flux.ServerStats
	err := c.getJSON(ctx, "/stats", &st)
	return st, err
}

// Docs fetches the worker's /docs listing.
func (c *Client) Docs(ctx context.Context) ([]flux.DocInfo, error) {
	var infos []flux.DocInfo
	err := c.getJSON(ctx, "/docs", &infos)
	return infos, err
}

// Query posts queryText against doc and returns the raw response for
// the caller to stream — body, status and trailers untouched, so a
// router can pass everything through. Transport failures are errors; an
// HTTP error status is not (the caller forwards it). The caller owns
// resp.Body.
func (c *Client) Query(ctx context.Context, doc, queryText string) (*http.Response, error) {
	u := c.base + "/query"
	if doc != "" {
		u += "?doc=" + url.QueryEscape(doc)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(queryText))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	return c.hc.Do(req)
}

// Fetch streams a registered document's raw bytes (part "doc") or its
// DTD text (part "dtd") from the worker's /admin/fetch endpoint — the
// source half of a migration copy. The caller owns the returned reader.
// The worker must run with its admin surface enabled.
func (c *Client) Fetch(ctx context.Context, doc, part string) (io.ReadCloser, error) {
	u := c.base + "/admin/fetch?doc=" + url.QueryEscape(doc)
	if part != "" {
		u += "&part=" + url.QueryEscape(part)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer drain(resp)
		return nil, fmt.Errorf("shard: fetch %q (%s) from %s: %s", doc, part, c.base, readError(resp))
	}
	return resp.Body, nil
}

// ErrAlreadyInstalled is returned by Install when the target worker
// already serves a document under the name — how a retried migration
// detects a leftover copy to replace.
var ErrAlreadyInstalled = fmt.Errorf("shard: document already installed")

// Install ships a document copy to the worker: the XML bytes and DTD
// text stream as multipart/form-data into /admin/install, and the
// worker registers the copy into its catalog under doc. The worker must
// run with its admin surface enabled.
func (c *Client) Install(ctx context.Context, doc string, docData, dtdData io.Reader) error {
	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	go func() {
		err := func() error {
			part, err := mw.CreateFormFile("doc", doc+".xml")
			if err != nil {
				return err
			}
			if _, err := io.Copy(part, docData); err != nil {
				return err
			}
			part, err = mw.CreateFormFile("dtd", doc+".dtd")
			if err != nil {
				return err
			}
			if _, err := io.Copy(part, dtdData); err != nil {
				return err
			}
			return mw.Close()
		}()
		pw.CloseWithError(err)
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/admin/install?doc="+url.QueryEscape(doc), pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %q on %s", ErrAlreadyInstalled, doc, c.base)
	default:
		return fmt.Errorf("shard: install %q on %s: %s", doc, c.base, readError(resp))
	}
}

// Retire unregisters a document from the worker — the last step of a
// migration on the source. The worker must run with its admin surface
// enabled.
func (c *Client) Retire(ctx context.Context, doc string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/admin/retire?doc="+url.QueryEscape(doc), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: retire %q on %s: %s", doc, c.base, readError(resp))
	}
	return nil
}

// readError summarizes a non-200 response for an error message: the
// status plus the first line of the body, which our handlers fill with
// the cause.
func readError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	text := strings.TrimSpace(string(body))
	if text == "" {
		return fmt.Sprintf("status %d", resp.StatusCode)
	}
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		text = text[:i]
	}
	return fmt.Sprintf("status %d: %s", resp.StatusCode, text)
}

// getJSON fetches path and decodes the JSON payload into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s%s answered %d", c.base, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// drain consumes and closes a response body so the transport can reuse
// the connection.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

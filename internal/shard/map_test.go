package shard

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestMapConsistentAssignment: the default assignment is deterministic,
// in range, and partitions the corpus — every document lands on exactly
// one shard, and rebuilding the map reproduces the placement.
func TestMapConsistentAssignment(t *testing.T) {
	docs := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	m1, err := NewMap(docs, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMap(docs, 3)
	if err != nil {
		t.Fatal(err)
	}
	var union []string
	for id := 0; id < 3; id++ {
		union = append(union, m1.DocsFor(id)...)
		if !reflect.DeepEqual(m1.DocsFor(id), m2.DocsFor(id)) {
			t.Fatalf("assignment not deterministic: shard %d differs", id)
		}
	}
	sort.Strings(union)
	if !reflect.DeepEqual(union, m1.Docs()) {
		t.Fatalf("shards do not partition the corpus: union %v, docs %v", union, m1.Docs())
	}
	for _, d := range docs {
		owners := m1.Owners(d)
		if len(owners) != 1 || owners[0] < 0 || owners[0] >= 3 {
			t.Fatalf("doc %s owners = %v, want exactly one in [0,3)", d, owners)
		}
	}
	if m1.Owners("nope") != nil {
		t.Fatal("unknown doc must have no owners")
	}
}

// TestMapValidation: bad corpus or shard counts fail construction.
func TestMapValidation(t *testing.T) {
	if _, err := NewMap([]string{"a"}, 0); err == nil {
		t.Error("zero shards must fail")
	}
	if _, err := NewMap([]string{"a", "a"}, 2); err == nil {
		t.Error("duplicate doc must fail")
	}
	if _, err := NewMap([]string{""}, 2); err == nil {
		t.Error("empty doc name must fail")
	}
	if _, err := NewMapFromPlacement(map[string][]int{"a": {2}}, 2); err == nil {
		t.Error("out-of-range placement must fail")
	}
	if _, err := NewMapFromPlacement(map[string][]int{"a": {}}, 2); err == nil {
		t.Error("ownerless placement must fail")
	}
	if _, err := NewMapFromPlacement(map[string][]int{"a": {1, 1}}, 2); err == nil {
		t.Error("repeated owner must fail")
	}
}

// TestMapOverrides: the override file pins and replicates documents,
// with comments and blanks tolerated and typos rejected loudly.
func TestMapOverrides(t *testing.T) {
	m, err := NewMap([]string{"alpha", "beta", "gamma"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = m.ApplyOverrides(`
# pin alpha, replicate beta
alpha: 2
beta: 1, 0   # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Owners("alpha"); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("alpha owners = %v, want [2]", got)
	}
	if got := m.Owners("beta"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("beta owners = %v, want [0 1] (sorted)", got)
	}
	if got := m.Owners("gamma"); len(got) != 1 {
		t.Errorf("gamma owners = %v, want its hash assignment untouched", got)
	}

	cases := []struct {
		name, text, wantErr string
	}{
		{"unknown doc", "nope: 0", "unknown document"},
		{"out of range", "alpha: 3", "out of range"},
		{"negative", "alpha: -1", "out of range"},
		{"twice", "alpha: 0\nalpha: 1", "overridden twice"},
		{"dup replica", "alpha: 1,1", "listed twice"},
		{"no colon", "alpha 0", "want \"doc: shard"},
		{"bad id", "alpha: x", "bad shard id"},
		{"empty list", "alpha:", "bad shard id"},
	}
	for _, tc := range cases {
		m2, _ := NewMap([]string{"alpha", "beta"}, 2)
		err := m2.ApplyOverrides(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

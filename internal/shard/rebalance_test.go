package shard

// Tests for the autonomous rebalancer: table-driven hysteresis units
// over a fake tier and a fake clock (an oscillating load produces at
// most one placement action per cooldown window, a sub-threshold
// imbalance produces none), the kill-the-source-mid-copy fault
// injection (the rebalancer aborts cleanly and retries next tick),
// and the end-to-end convergence paths over a real embedded tier —
// replica-add for a dominating hot document, migrate for an
// aggregate-hot shard — with the /admin/rebalancer status surface.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeTier implements tierControl over a real Topology so rebalancer
// decisions mutate placement exactly like the live protocols do — just
// without copying any bytes. failErr, when set, makes every action
// fail without touching the topology (the dead-worker stand-in).
type fakeTier struct {
	topo    *Topology
	live    []int
	loads   []map[loadKey]int64 // one window per tick, then empty
	tick    int
	failErr error
	acts    []RebalanceAction
}

func (f *fakeTier) view() *View       { return f.topo.View() }
func (f *fakeTier) liveShards() []int { return f.live }

func (f *fakeTier) takeLoad() map[loadKey]int64 {
	i := f.tick
	f.tick++
	if i < len(f.loads) {
		return f.loads[i]
	}
	return nil
}

func (f *fakeTier) migrateDoc(ctx context.Context, doc string, from, to int) (int64, error) {
	f.acts = append(f.acts, RebalanceAction{Kind: ActionMigrate, Doc: doc, From: from, To: to})
	if f.failErr != nil {
		return 0, f.failErr
	}
	mig, err := f.topo.Migrate(doc, from, to)
	if err != nil {
		return 0, err
	}
	drainBelow, err := f.topo.Cutover(mig)
	if err != nil {
		return 0, err
	}
	if err := f.topo.Commit(mig); err != nil {
		return 0, err
	}
	return drainBelow + 1, nil
}

func (f *fakeTier) dropReplica(ctx context.Context, doc string, on int) (int64, error) {
	f.acts = append(f.acts, RebalanceAction{Kind: ActionDrop, Doc: doc, From: on, To: on})
	if f.failErr != nil {
		return 0, f.failErr
	}
	drainBelow, err := f.topo.DropReplica(doc, on)
	if err != nil {
		return 0, err
	}
	return drainBelow + 1, nil
}

func (f *fakeTier) replicateDoc(ctx context.Context, doc string, to int) (int64, error) {
	owners := f.topo.View().Owners(doc)
	from := -1
	if len(owners) > 0 {
		from = owners[0]
	}
	f.acts = append(f.acts, RebalanceAction{Kind: ActionReplicate, Doc: doc, From: from, To: to})
	if f.failErr != nil {
		return 0, f.failErr
	}
	mig, err := f.topo.AddReplica(doc, from, to)
	if err != nil {
		return 0, err
	}
	return f.topo.CommitReplica(mig)
}

// newFakeTier builds two shards with "a" on 0 and "b" on 1, both live.
func newFakeTier(t *testing.T) *fakeTier {
	t.Helper()
	m, err := NewMapFromPlacement(map[string][]int{"a": {0}, "b": {1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeTier{topo: NewTopology(m), live: []int{0, 1}}
}

// manualRebalancer builds a rebalancer over the tier with a fake clock
// starting at t0; the returned advance function moves the clock.
func manualRebalancer(t *testing.T, tier tierControl, opt RebalancerOptions) (*Rebalancer, func(time.Duration)) {
	t.Helper()
	rb, err := newRebalancer(tier, opt)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	clock := time.Unix(0, 0)
	rb.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	return rb, func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
}

// TestRebalancerHysteresis is the satellite's table: synthetic load
// signals driven tick by tick through a fake clock, asserting the
// action budget the hysteresis promises — never more than one
// placement action per cooldown window, none at all below the
// threshold — across window/decay/threshold combinations.
func TestRebalancerHysteresis(t *testing.T) {
	// oscillate flips a hot 100-query window between (a, shard 0) and
	// (b, shard 1) every tick — the classic ping-pong bait.
	oscillate := func(tick int) map[loadKey]int64 {
		if tick%2 == 0 {
			return map[loadKey]int64{{doc: "a", shard: 0}: 100}
		}
		return map[loadKey]int64{{doc: "b", shard: 1}: 100}
	}
	cases := []struct {
		name      string
		window    time.Duration // tick period: how far the clock advances per tick
		cooldown  time.Duration
		threshold float64
		decay     float64
		ticks     int
		loadFor   func(tick int) map[loadKey]int64
		// minActions/maxActions bound the successful placement actions.
		minActions, maxActions int64
	}{
		{
			name:   "oscillating load, one action per cooldown window",
			window: time.Second, cooldown: 5 * time.Second, threshold: 8, decay: 0.5,
			ticks: 20, loadFor: oscillate,
			// Actions can fire at t=0s,5s,10s,15s at the earliest.
			minActions: 1, maxActions: 4,
		},
		{
			name:   "oscillating load, long cooldown pins a single action",
			window: time.Second, cooldown: time.Hour, threshold: 8, decay: 0.5,
			ticks: 50, loadFor: oscillate,
			minActions: 1, maxActions: 1,
		},
		{
			name:   "oscillating load, fast decay still respects the cooldown",
			window: 100 * time.Millisecond, cooldown: time.Second, threshold: 4, decay: 0.1,
			ticks: 40, loadFor: oscillate,
			// 40 ticks span 3.9s: actions at t=0,1s,2s,3s at the earliest.
			minActions: 1, maxActions: 4,
		},
		{
			name:   "sub-threshold imbalance produces no action",
			window: time.Second, cooldown: 5 * time.Second, threshold: 8, decay: 0.5,
			ticks: 20,
			// Steady 5-vs-3: the decayed signals converge to 10 vs 6, an
			// imbalance of 4 — below the threshold forever.
			loadFor: func(int) map[loadKey]int64 {
				return map[loadKey]int64{{doc: "a", shard: 0}: 5, {doc: "b", shard: 1}: 3}
			},
			minActions: 0, maxActions: 0,
		},
		{
			name:   "balanced load produces no action",
			window: 100 * time.Millisecond, cooldown: time.Second, threshold: 1, decay: 0.5,
			ticks: 20,
			loadFor: func(int) map[loadKey]int64 {
				return map[loadKey]int64{{doc: "a", shard: 0}: 50, {doc: "b", shard: 1}: 50}
			},
			minActions: 0, maxActions: 0,
		},
		{
			name:   "idle tier produces no action",
			window: time.Second, cooldown: 5 * time.Second, threshold: 8, decay: 0.5,
			ticks: 10, loadFor: func(int) map[loadKey]int64 { return nil },
			minActions: 0, maxActions: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tier := newFakeTier(t)
			tier.loads = make([]map[loadKey]int64, tc.ticks)
			for i := range tier.loads {
				tier.loads[i] = tc.loadFor(i)
			}
			rb, advance := manualRebalancer(t, tier, RebalancerOptions{
				Cooldown: tc.cooldown, Threshold: tc.threshold, Decay: tc.decay,
			})
			var actionTimes []time.Time
			for i := 0; i < tc.ticks; i++ {
				if rb.Tick(context.Background()) {
					actionTimes = append(actionTimes, rb.now())
				}
				advance(tc.window)
			}
			st := rb.Status()
			if st.Actions < tc.minActions || st.Actions > tc.maxActions {
				t.Fatalf("%d actions over %d ticks (%+v), want [%d, %d]", st.Actions, tc.ticks, tier.acts, tc.minActions, tc.maxActions)
			}
			if st.Ticks != int64(tc.ticks) {
				t.Fatalf("ticks = %d, want %d", st.Ticks, tc.ticks)
			}
			if st.Failures != 0 {
				t.Fatalf("unexpected failures: %d (%s)", st.Failures, st.LastReason)
			}
			// The precise hysteresis claim: consecutive successful actions
			// are at least one cooldown apart.
			for i := 1; i < len(actionTimes); i++ {
				if gap := actionTimes[i].Sub(actionTimes[i-1]); gap < tc.cooldown {
					t.Fatalf("actions %d and %d only %v apart, want >= %v", i-1, i, gap, tc.cooldown)
				}
			}
		})
	}
}

// TestRebalancerReleaseFadingBurst pins the release rule's hysteresis
// under the classic bait: a burst hot enough to earn a replica, then
// silence. The action sequence must be exactly one replicate followed —
// only after the decayed signal has sat below ReleaseThreshold for a
// full cooldown window — by exactly one drop of the replica the burst
// added, and then nothing for as long as the tier stays quiet. A load
// level that merely fades must never make the replica set flap.
func TestRebalancerReleaseFadingBurst(t *testing.T) {
	tier := newFakeTier(t)
	const ticks = 40
	tier.loads = make([]map[loadKey]int64, ticks)
	for i := 0; i < 3; i++ {
		tier.loads[i] = map[loadKey]int64{{doc: "a", shard: 0}: 100}
	}
	const cooldown = 5 * time.Second
	rb, advance := manualRebalancer(t, tier, RebalancerOptions{
		Cooldown: cooldown, Threshold: 8, Decay: 0.5, ReleaseThreshold: 2,
	})
	var kinds []string
	var actionTimes []time.Time
	for i := 0; i < ticks; i++ {
		if rb.Tick(context.Background()) {
			kinds = append(kinds, rb.Status().LastAction.Kind)
			actionTimes = append(actionTimes, rb.now())
		}
		advance(time.Second)
	}
	if len(kinds) != 2 || kinds[0] != ActionReplicate || kinds[1] != ActionDrop {
		t.Fatalf("actions = %v (attempts %+v), want exactly [replicate drop-replica]", kinds, tier.acts)
	}
	// The drop released the copy the burst added (shard 1 — zero
	// residual signal), not the original.
	if got := tier.topo.View().Owners("a"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("owners after release = %v, want [0]", got)
	}
	if gap := actionTimes[1].Sub(actionTimes[0]); gap < cooldown {
		t.Fatalf("drop fired %v after the add, want >= the %v cooldown", gap, cooldown)
	}
	st := rb.Status()
	if st.ReplicasAdded != 1 || st.ReplicasDropped != 1 || st.Migrations != 0 || st.Failures != 0 {
		t.Fatalf("status after fading burst = %+v", st)
	}
	if st.LastAction == nil || st.LastAction.Kind != ActionDrop || st.LastAction.To != 1 || st.LastAction.Err != "" {
		t.Fatalf("last action = %+v, want a clean drop from shard 1", st.LastAction)
	}
	// A fresh burst after the release behaves like the first one: the
	// hysteresis band resets completely instead of remembering the drop.
	tier.loads = append(tier.loads, map[loadKey]int64{{doc: "a", shard: 0}: 100})
	if !rb.Tick(context.Background()) {
		t.Fatalf("burst after release did not act: %s", rb.Status().LastReason)
	}
	if st := rb.Status(); st.ReplicasAdded != 2 || st.ReplicasDropped != 1 {
		t.Fatalf("status after second burst = %+v", st)
	}
}

// TestRebalancerFailureRetriesNextTick: a failed action must not
// engage the cooldown — the rebalancer re-decides and retries on every
// subsequent tick until the action lands.
func TestRebalancerFailureRetriesNextTick(t *testing.T) {
	tier := newFakeTier(t)
	tier.failErr = errors.New("target unreachable")
	tier.loads = []map[loadKey]int64{
		{{doc: "a", shard: 0}: 100},
	}
	rb, advance := manualRebalancer(t, tier, RebalancerOptions{
		Cooldown: time.Hour, Threshold: 8, Decay: 0.5,
	})
	for i := 0; i < 3; i++ {
		if rb.Tick(context.Background()) {
			t.Fatalf("tick %d reported success while the tier is failing", i)
		}
		advance(time.Second)
	}
	if st := rb.Status(); st.Failures != 3 || st.Actions != 0 || len(tier.acts) != 3 {
		t.Fatalf("failures=%d actions=%d attempts=%d, want 3/0/3", st.Failures, st.Actions, len(tier.acts))
	}
	if got := rb.Status().LastAction; got == nil || got.Err == "" {
		t.Fatalf("last action = %+v, want a recorded failure", got)
	}
	// The moment the tier recovers, the very next tick lands the action.
	tier.failErr = nil
	if !rb.Tick(context.Background()) {
		t.Fatalf("tick after recovery did not act: %s", rb.Status().LastReason)
	}
	if st := rb.Status(); st.Actions != 1 || st.ReplicasAdded != 1 {
		t.Fatalf("status after recovery = %+v", st)
	}
	if got := tier.topo.View().Owners("a"); len(got) != 2 {
		t.Fatalf("owners after recovery = %v, want a replica pair", got)
	}
}

// TestRebalancerReplicateVsMigrateRule pins the decision rule: a hot
// document that dominates its shard's load gets a replica (moving it
// would only move the hot spot); a shard hot in aggregate has its
// hottest document migrated instead.
func TestRebalancerReplicateVsMigrateRule(t *testing.T) {
	t.Run("dominating document replicates", func(t *testing.T) {
		tier := newFakeTier(t)
		tier.loads = []map[loadKey]int64{{{doc: "a", shard: 0}: 100}}
		rb, _ := manualRebalancer(t, tier, RebalancerOptions{Threshold: 8, Decay: 0.5})
		if !rb.Tick(context.Background()) {
			t.Fatalf("no action: %s", rb.Status().LastReason)
		}
		if len(tier.acts) != 1 || tier.acts[0].Kind != ActionReplicate {
			t.Fatalf("acts = %+v, want one replicate", tier.acts)
		}
		if got := tier.topo.View().Owners("a"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("owners = %v, want [0 1]", got)
		}
	})
	t.Run("aggregate-hot shard migrates", func(t *testing.T) {
		m, err := NewMapFromPlacement(map[string][]int{"a": {0}, "b": {0}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		tier := &fakeTier{topo: NewTopology(m), live: []int{0, 1}}
		// Two equally hot documents on shard 0: the hottest holds half
		// the shard's load, under the 0.75 replicate share.
		tier.loads = []map[loadKey]int64{{
			{doc: "a", shard: 0}: 50,
			{doc: "b", shard: 0}: 50,
		}}
		rb, _ := manualRebalancer(t, tier, RebalancerOptions{Threshold: 8, Decay: 0.5})
		if !rb.Tick(context.Background()) {
			t.Fatalf("no action: %s", rb.Status().LastReason)
		}
		// Deterministic tie-break picks "a"; it moves rather than fans out.
		if len(tier.acts) != 1 || tier.acts[0].Kind != ActionMigrate || tier.acts[0].Doc != "a" {
			t.Fatalf("acts = %+v, want migrate of a", tier.acts)
		}
		if got := tier.topo.View().Owners("a"); len(got) != 1 || got[0] != 1 {
			t.Fatalf("owners = %v, want [1]", got)
		}
	})
	t.Run("max replicas falls back to migrate", func(t *testing.T) {
		tier := newFakeTier(t)
		tier.loads = []map[loadKey]int64{{{doc: "a", shard: 0}: 100}}
		rb, _ := manualRebalancer(t, tier, RebalancerOptions{Threshold: 8, Decay: 0.5, MaxReplicas: 1})
		if !rb.Tick(context.Background()) {
			t.Fatalf("no action: %s", rb.Status().LastReason)
		}
		if len(tier.acts) != 1 || tier.acts[0].Kind != ActionMigrate {
			t.Fatalf("acts = %+v, want one migrate", tier.acts)
		}
	})
}

// spawnRebalancedTier builds an embedded tier with a manual-tick
// rebalancer attached (cooldown long enough that only explicit clock
// control can reopen the gate).
func spawnRebalancedTier(t *testing.T, overrides string, opt RebalancerOptions) ([]*EmbeddedShard, *Router, *Rebalancer, string) {
	t.Helper()
	shards, rt, ts := spawnTier(t, testDocs, 2, overrides)
	rb, err := NewRebalancer(rt, opt)
	if err != nil {
		t.Fatal(err)
	}
	return shards, rt, rb, ts.URL
}

// TestRebalancerKillSourceMidCopy is the fault injection the ISSUE
// names: the only source of the hot document dies before the tick, so
// the AddReplica copy fails at the fetch — the rebalancer aborts
// cleanly (no epoch change, no pending state, no cooldown) and retries
// on the next tick.
func TestRebalancerKillSourceMidCopy(t *testing.T) {
	shards, rt, rb, base := spawnRebalancedTier(t, "alpha: 0\nbeta: 1\ngamma: 1\n",
		RebalancerOptions{Threshold: 1, Cooldown: time.Hour})
	// Build the hot signal through real routed queries, then kill the
	// document's only owner.
	for i := 0; i < 20; i++ {
		if resp, _ := post(t, base+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up query %d failed: %d", i, resp.StatusCode)
		}
	}
	before := getTopology(t, base)
	shards[0].Close() // the hot document's only copy

	for i := 1; i <= 2; i++ {
		if rb.Tick(context.Background()) {
			t.Fatalf("tick %d acted with the source dead", i)
		}
		st := rb.Status()
		if st.Failures != int64(i) {
			t.Fatalf("tick %d: failures = %d, want %d (one fresh attempt per tick)", i, st.Failures, i)
		}
		if st.LastAction == nil || st.LastAction.Kind != ActionReplicate || st.LastAction.Err == "" {
			t.Fatalf("tick %d: last action = %+v, want a failed replicate", i, st.LastAction)
		}
		if st.CooldownRemaining != "" {
			t.Fatalf("tick %d: a failed action engaged the cooldown (%s)", i, st.CooldownRemaining)
		}
		after := getTopology(t, base)
		if after.Epoch != before.Epoch || len(after.Pending) != 0 {
			t.Fatalf("tick %d: failed copy mutated the topology: %+v", i, after)
		}
		if got := rt.Topology().View().Owners("alpha"); len(got) != 1 || got[0] != 0 {
			t.Fatalf("tick %d: owners = %v, want [0]", i, got)
		}
	}
}

// TestRebalancerConvergesAndFansOut is the end-to-end convergence
// path: real hot traffic through the router builds the signal, one
// tick replicates the dominating document onto the cold shard, the
// next burst fans out across both replicas byte-identically, and the
// cooldown blocks immediate further actions. /admin/rebalancer
// reports all of it.
func TestRebalancerConvergesAndFansOut(t *testing.T) {
	_, rt, rb, base := spawnRebalancedTier(t, "alpha: 0\nbeta: 1\ngamma: 1\n",
		RebalancerOptions{Threshold: 1, Cooldown: time.Hour})
	_, wantBody := post(t, base+"/query?doc=alpha", testQueries[0])
	for i := 0; i < 30; i++ {
		post(t, base+"/query?doc=alpha", testQueries[0])
	}

	if !rb.Tick(context.Background()) {
		t.Fatalf("tick did not act: %s", rb.Status().LastReason)
	}
	if got := rt.Topology().View().Owners("alpha"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("owners after convergence = %v, want [0 1]", got)
	}
	st := rb.Status()
	if st.Actions != 1 || st.ReplicasAdded != 1 || st.Migrations != 0 {
		t.Fatalf("status after convergence = %+v", st)
	}
	if st.LastAction == nil || st.LastAction.Kind != ActionReplicate || st.LastAction.Doc != "alpha" || st.LastAction.Err != "" {
		t.Fatalf("last action = %+v, want a clean replicate of alpha", st.LastAction)
	}

	// Within the cooldown the rebalancer must sit still, whatever the
	// signal says.
	for i := 0; i < 30; i++ {
		post(t, base+"/query?doc=alpha", testQueries[0])
	}
	if rb.Tick(context.Background()) {
		t.Fatal("tick acted inside the cooldown window")
	}
	if st := rb.Status(); st.CooldownRemaining == "" || st.Actions != 1 {
		t.Fatalf("status inside cooldown = %+v", st)
	}

	// The burst now fans out across both replicas, byte-identically.
	seen := make(map[string]bool)
	var seenMu sync.Mutex
	for wave := 0; wave < 3; wave++ {
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := post(t, base+"/query?doc=alpha", testQueries[0])
				if resp.StatusCode != http.StatusOK || body != wantBody {
					errs <- fmt.Sprintf("status %d, identical %v", resp.StatusCode, body == wantBody)
					return
				}
				seenMu.Lock()
				seen[resp.Header.Get("X-Flux-Shard")] = true
				seenMu.Unlock()
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("burst did not fan out across both replicas: shards seen %v", seen)
	}

	// /admin/rebalancer reports the control plane's state over HTTP.
	resp, err := http.Get(base + "/admin/rebalancer")
	if err != nil {
		t.Fatal(err)
	}
	var got RebalancerStatus
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/rebalancer: status %d, err %v", resp.StatusCode, err)
	}
	if !got.Enabled || got.ReplicasAdded != 1 || got.Interval != "manual" || len(got.Signal) == 0 {
		t.Fatalf("/admin/rebalancer = %+v", got)
	}
	if got.Signal[0].Doc != "alpha" {
		t.Fatalf("hottest signal entry = %+v, want alpha", got.Signal[0])
	}
}

// TestRebalancerStatusWithoutRebalancer: a router without an attached
// rebalancer answers /admin/rebalancer with enabled=false (and only
// one rebalancer may ever attach).
func TestRebalancerStatusWithoutRebalancer(t *testing.T) {
	_, rt, ts := spawnTier(t, testDocs, 2, "")
	resp, err := http.Get(ts.URL + "/admin/rebalancer")
	if err != nil {
		t.Fatal(err)
	}
	var got RebalancerStatus
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/rebalancer: status %d, err %v", resp.StatusCode, err)
	}
	if got.Enabled {
		t.Fatalf("rebalancer reported enabled on a plain router: %+v", got)
	}
	if _, err := NewRebalancer(rt, RebalancerOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRebalancer(rt, RebalancerOptions{}); err == nil {
		t.Fatal("second NewRebalancer on the same router succeeded")
	}
}

// TestRebalancerBackgroundLoop: with a positive interval the loop runs
// on its own — hot traffic converges to a replica pair without any
// manual ticking — and Close stops it.
func TestRebalancerBackgroundLoop(t *testing.T) {
	_, rt, _, base := spawnRebalancedTier(t, "alpha: 0\nbeta: 1\ngamma: 1\n",
		RebalancerOptions{Interval: 5 * time.Millisecond, Threshold: 1, Cooldown: time.Hour})
	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := 0; i < 5; i++ {
			post(t, base+"/query?doc=alpha", testQueries[0])
		}
		if owners := rt.Topology().View().Owners("alpha"); len(owners) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop never replicated alpha: %+v", rt.Topology().View().Owners("alpha"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Router.Close also closes the attached rebalancer (the tier's
	// cleanup runs it again, which must be safe).
	rt.Close()
}

// TestRebalancerOptionValidation: bad knobs are rejected up front.
func TestRebalancerOptionValidation(t *testing.T) {
	tier := newFakeTier(t)
	for _, opt := range []RebalancerOptions{
		{Decay: 1},
		{Decay: -0.5},
		{Threshold: -1},
		{ReplicateShare: 2},
		{ReplicateShare: -0.5},
		{ReleaseThreshold: -1},
		{Threshold: 8, ReleaseThreshold: 8},
		{Threshold: 8, ReleaseThreshold: 9},
	} {
		if _, err := newRebalancer(tier, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

package shard

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"flux"
	"flux/internal/stream"
)

// Streaming endpoints: the HTTP face of the live-ingestion subsystem
// (internal/stream). POST /ingest?doc= feeds a document stream — the
// request body is consumed chunk by chunk as it arrives, so a producer
// can hold the request open and trickle the document in. POST
// /subscribe?doc= registers a standing query; its results stream back
// in the response as matching subtrees complete, with execution stats
// in HTTP trailers once the stream ends. GET /streamz reports the
// hub's live state.

// failIngest answers an /ingest request with an error. Every /ingest
// error path must come through here: the producer may be holding the
// request body open, and without Connection: close the server drains
// the unread body — blocking on a silent producer — before it will
// send any response at all.
func failIngest(w http.ResponseWriter, msg string, status int) {
	w.Header().Set("Connection", "close")
	http.Error(w, msg, status)
}

// handleIngest consumes one live document stream from the request body.
// The response is written only when the stream ends: a JSON summary for
// a complete well-formed document, an error status otherwise. A client
// disconnect mid-body aborts the stream, failing its subscriptions.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		failIngest(w, "POST the document stream to /ingest?doc=name", http.StatusMethodNotAllowed)
		return
	}
	doc, err := resolveDoc(r, s.defaultDoc)
	if err != nil {
		failIngest(w, err.Error(), http.StatusBadRequest)
		return
	}
	ing, err := s.hub.StartIngest(r.Context(), doc)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, flux.ErrDocNotFound):
			status = http.StatusNotFound
		case errors.Is(err, stream.ErrIngestActive):
			status = http.StatusConflict
		}
		failIngest(w, err.Error(), status)
		return
	}
	// Copy in a goroutine and watch the ingest's Dead channel alongside:
	// if the stream is unwound from elsewhere (hub shutdown) while the
	// producer is idle, the handler must not stay parked in a body read
	// that nothing will ever satisfy. Returning closes the request body,
	// which unblocks the copy goroutine.
	type copyOutcome struct {
		n   int64
		err error
	}
	copied := make(chan copyOutcome, 1)
	go func() {
		n, err := io.Copy(ing, r.Body)
		copied <- copyOutcome{n, err}
	}()
	var out copyOutcome
	select {
	case out = <-copied:
	case <-ing.Dead():
		failIngest(w, fmt.Sprintf("ingest aborted: %v", ing.Err()), http.StatusBadRequest)
		return
	}
	if out.err != nil {
		// The producer died mid-document (or a subscriber failure
		// propagated back): unwind the stream with the cause.
		err := ing.Abort(out.err)
		if r.Context().Err() != nil {
			return // client gone; no one to report to
		}
		failIngest(w, fmt.Sprintf("ingest failed after %d bytes: %v", out.n, err), http.StatusBadRequest)
		return
	}
	if err := ing.Close(); err != nil {
		failIngest(w, fmt.Sprintf("ingest failed after %d bytes: %v", out.n, err), http.StatusBadRequest)
		return
	}
	writeJSON(w, IngestSummary{Doc: doc, Bytes: out.n, Events: ing.Events()})
}

// IngestSummary is the /ingest success payload.
type IngestSummary struct {
	// Doc is the document the stream fed.
	Doc string `json:"doc"`
	// Bytes is the number of document bytes ingested.
	Bytes int64 `json:"bytes"`
	// Events is the number of SAX events the shared scan tokenized.
	Events int64 `json:"events"`
}

// handleSubscribe registers the posted query as a standing subscription
// and streams its results for as long as the subscription lives — into
// a live ingest if one is running, else parked until the document's
// next ingest begins. The 200 is committed as soon as the subscription
// is accepted; each delivery is then flushed to the client immediately,
// and final stats — plus any failure, in X-Flux-Error — ride in
// trailers. ?policy=drop trades lost
// result bytes (counted in X-Flux-Dropped-Bytes) for never stalling
// the stream; the default (block) applies backpressure to the producer
// instead.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the query text to /subscribe?doc=name", http.StatusMethodNotAllowed)
		return
	}
	doc, err := resolveDoc(r, s.defaultDoc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var pol stream.Policy
	switch p := r.URL.Query().Get("policy"); p {
	case "", "block":
		pol = stream.PolicyBlock
	case "drop":
		pol = stream.PolicyDrop
	default:
		http.Error(w, fmt.Sprintf("unknown policy %q: want block or drop", p), http.StatusBadRequest)
		return
	}
	body, status, err := ReadQueryBody(r)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}

	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("Trailer", "X-Flux-Error, X-Flux-Peak-Buffer-Bytes, X-Flux-Tokens, X-Flux-Output-Bytes, X-Flux-Dropped-Bytes, X-Flux-First-Result-Ns")
	fw := &flushWriter{w: w}
	fw.f, _ = w.(http.Flusher)

	sub, err := s.hub.Subscribe(r.Context(), doc, string(body), fw, pol)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, flux.ErrDocNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, "subscribing: "+err.Error(), status)
		return
	}
	// The subscription stands; commit the response now so the client
	// learns it was accepted without waiting for the first result (the
	// document's ingest may not even have begun). From here the status
	// is fixed: later failures report through the X-Flux-Error trailer,
	// or — if results already streamed — an aborted connection, so the
	// truncation is visible at the transport, exactly as /query does.
	fw.commit()
	<-sub.Done()
	if err := sub.Err(); err != nil {
		if r.Context().Err() != nil {
			return // the subscriber disconnected; nothing to report
		}
		if fw.wrote() > 0 {
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("X-Flux-Error", err.Error())
	}
	st := sub.Stats()
	w.Header().Set("X-Flux-Peak-Buffer-Bytes", fmt.Sprint(st.PeakBufferBytes))
	w.Header().Set("X-Flux-Tokens", fmt.Sprint(st.Tokens))
	w.Header().Set("X-Flux-Output-Bytes", fmt.Sprint(st.OutputBytes))
	w.Header().Set("X-Flux-Dropped-Bytes", fmt.Sprint(st.DroppedBytes))
	w.Header().Set("X-Flux-First-Result-Ns", fmt.Sprint(int64(st.FirstResult)))
}

// handleStreamz reports the streaming hub's live state.
func (s *Server) handleStreamz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.hub.Stats())
}

// flushWriter pushes every subscription delivery through to the client
// immediately — a standing query's results must not sit in the HTTP
// server's response buffer until the stream ends. The mutex serializes
// the subscription's drain goroutine against the handler goroutine's
// header commit: an http.ResponseWriter is not safe for concurrent use.
type flushWriter struct {
	mu        sync.Mutex
	w         http.ResponseWriter
	f         http.Flusher
	n         int64
	committed bool
}

// commit writes the 200 and flushes it to the client, once.
func (fw *flushWriter) commit() {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.commitLocked()
}

func (fw *flushWriter) commitLocked() {
	if fw.committed {
		return
	}
	fw.committed = true
	fw.w.WriteHeader(http.StatusOK)
	if fw.f != nil {
		fw.f.Flush()
	}
}

// wrote reports the result bytes delivered so far.
func (fw *flushWriter) wrote() int64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.n
}

// Write implements io.Writer.
func (fw *flushWriter) Write(p []byte) (int, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.commitLocked()
	n, err := fw.w.Write(p)
	fw.n += int64(n)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

package shard

// Tests for the replica half of the control plane: the Topology's
// AddReplica/CommitReplica/DropReplica transitions, the Router's live
// replica protocol over the fetch/install/retire machinery, the
// dead-target fault injection (a failed copy must leave the topology
// untouched), and the placement round-trip — a replica added at
// runtime must be indistinguishable from one declared in a shard-map
// file.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

// replicaTopology builds the placement the transition tests share:
// three shards, "a" on 0, "b" on 1.
func replicaTopology(t *testing.T) *Topology {
	t.Helper()
	m, err := NewMapFromPlacement(map[string][]int{"a": {0}, "b": {1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return NewTopology(m)
}

// TestTopologyAddReplicaProtocol walks the replica-add state machine:
// register (routing untouched, pending visible), commit (epoch
// published, owner set grown, sorted), and the validation fences.
func TestTopologyAddReplicaProtocol(t *testing.T) {
	topo := replicaTopology(t)

	mig, err := topo.AddReplica("a", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() != 1 {
		t.Fatalf("registering a replica changed the epoch to %d", topo.Epoch())
	}
	if got := topo.View().Owners("a"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("registering a replica changed routing: owners %v", got)
	}
	pend := topo.Pending()
	if len(pend) != 1 || pend[0].State != "replicating" || pend[0].Doc != "a" || pend[0].From != 0 || pend[0].To != 2 {
		t.Fatalf("pending = %+v, want one replicating entry for a 0->2", pend)
	}

	// The pending copy conflicts with any other placement change of the
	// same document, in both directions.
	if _, err := topo.Migrate("a", 0, 1); !errors.Is(err, ErrMigrationPending) {
		t.Fatalf("Migrate during replica copy: %v, want ErrMigrationPending", err)
	}
	if _, err := topo.AddReplica("a", 0, 1); !errors.Is(err, ErrMigrationPending) {
		t.Fatalf("second AddReplica during copy: %v, want ErrMigrationPending", err)
	}

	epoch, err := topo.CommitReplica(mig)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || topo.Epoch() != 2 {
		t.Fatalf("commit published epoch %d (topology %d), want 2", epoch, topo.Epoch())
	}
	if got := topo.View().Owners("a"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("owners after commit = %v, want [0 2]", got)
	}
	if len(topo.Pending()) != 0 {
		t.Fatalf("commit left pending state: %+v", topo.Pending())
	}
	if _, err := topo.CommitReplica(mig); err == nil {
		t.Fatal("double commit succeeded")
	}

	// With "a" on two shards, a fresh pending copy blocks a drop too.
	mig2, err := topo.AddReplica("a", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.DropReplica("a", 0); !errors.Is(err, ErrMigrationPending) {
		t.Fatalf("DropReplica during copy: %v, want ErrMigrationPending", err)
	}
	if err := topo.Abort(mig2); err != nil {
		t.Fatal(err)
	}

	// Validation fences.
	for _, tc := range []struct {
		name     string
		doc      string
		from, to int
	}{
		{"unknown document", "nope", 0, 1},
		{"source not an owner", "b", 0, 2},
		{"target already an owner", "a", 0, 2},
		{"source equals target", "b", 1, 1},
		{"source out of range", "a", -1, 1},
		{"target out of range", "a", 0, 9},
	} {
		if _, err := topo.AddReplica(tc.doc, tc.from, tc.to); err == nil {
			t.Errorf("%s: AddReplica(%q, %d, %d) succeeded", tc.name, tc.doc, tc.from, tc.to)
		}
	}
}

// TestTopologyAddReplicaAbort: aborting a replica copy forgets it
// without any routing change — there is nothing to roll back.
func TestTopologyAddReplicaAbort(t *testing.T) {
	topo := replicaTopology(t)
	mig, err := topo.AddReplica("b", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Abort(mig); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() != 1 {
		t.Fatalf("abort changed the epoch to %d", topo.Epoch())
	}
	if got := topo.View().Owners("b"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("abort changed routing: owners %v", got)
	}
	if len(topo.Pending()) != 0 {
		t.Fatalf("abort left pending state: %+v", topo.Pending())
	}
	// The document is free again.
	if _, err := topo.AddReplica("b", 1, 2); err != nil {
		t.Fatalf("AddReplica after abort: %v", err)
	}
}

// TestTopologyDropReplica: dropping publishes the shrunk set in one
// step and hands back the old epoch as the drain barrier; the last
// owner can never be dropped.
func TestTopologyDropReplica(t *testing.T) {
	topo := replicaTopology(t)
	mig, err := topo.AddReplica("a", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.CommitReplica(mig); err != nil {
		t.Fatal(err)
	}

	before := topo.Epoch() // 2
	drainBelow, err := topo.DropReplica("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if drainBelow != before {
		t.Fatalf("drain barrier = %d, want the pre-drop epoch %d", drainBelow, before)
	}
	if topo.Epoch() != before+1 {
		t.Fatalf("epoch after drop = %d, want %d", topo.Epoch(), before+1)
	}
	if got := topo.View().Owners("a"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("owners after drop = %v, want [2]", got)
	}

	if _, err := topo.DropReplica("a", 2); err == nil {
		t.Fatal("dropped the last owner")
	}
	if _, err := topo.DropReplica("a", 1); err == nil {
		t.Fatal("dropped a non-owner")
	}
	if _, err := topo.DropReplica("nope", 0); err == nil {
		t.Fatal("dropped a replica of an unknown document")
	}
}

// TestRouterReplicaLifecycle drives the live protocol end to end over
// an embedded tier: AddReplica installs a real copy and publishes the
// grown set, queries stay byte-identical and fan out, and DropReplica
// drains before retiring the copy.
func TestRouterReplicaLifecycle(t *testing.T) {
	shards, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	ctx := context.Background()
	_, wantBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	before := getTopology(t, ts.URL)

	rep, err := rt.AddReplica(ctx, "alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Doc != "alpha" || rep.From != 0 || rep.On != 1 || rep.Epoch != before.Epoch+1 || rep.Resumed {
		t.Fatalf("report = %+v", rep)
	}
	if got := rt.Topology().View().Owners("alpha"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("owners after add = %v, want [0 1]", got)
	}
	if docs := shards[1].Worker().Catalog().Docs(); !containsString(docs, "alpha") {
		t.Fatalf("target worker does not hold the replica: %v", docs)
	}
	// /admin/shards lists the document on both shards now.
	topo := getTopology(t, ts.URL)
	if !containsString(topo.Shards[0].Docs, "alpha") || !containsString(topo.Shards[1].Docs, "alpha") {
		t.Fatalf("/admin/shards does not show alpha on both shards: %+v", topo.Shards)
	}
	if resp, body := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK || body != wantBody {
		t.Fatalf("post-add query: status %d, identical %v", resp.StatusCode, body == wantBody)
	}

	// Adding the replica again is a validation error, not a copy.
	if _, err := rt.AddReplica(ctx, "alpha", 1); err == nil {
		t.Fatal("adding an existing replica succeeded")
	}

	drop, err := rt.DropReplica(ctx, "alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	if drop.On != 0 || drop.From != 1 || drop.Warning != "" {
		t.Fatalf("drop report = %+v", drop)
	}
	if got := rt.Topology().View().Owners("alpha"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("owners after drop = %v, want [1]", got)
	}
	if docs := shards[0].Worker().Catalog().Docs(); containsString(docs, "alpha") {
		t.Fatalf("dropped copy still registered on shard 0: %v", docs)
	}
	resp, body := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
	if resp.StatusCode != http.StatusOK || body != wantBody || resp.Header.Get("X-Flux-Shard") != "1" {
		t.Fatalf("post-drop query: status %d shard %q identical %v", resp.StatusCode, resp.Header.Get("X-Flux-Shard"), body == wantBody)
	}
}

// TestAddReplicaDeadTargetLeavesTopology is the fault injection the
// ISSUE pins: replicating into a dead shard fails in the copy step and
// the topology is exactly as before — no epoch change, no pending
// state, no owner change — so the rebalancer can simply retry.
func TestAddReplicaDeadTargetLeavesTopology(t *testing.T) {
	shards, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	before := getTopology(t, ts.URL)
	shards[1].Close() // the target

	_, err := rt.AddReplica(context.Background(), "alpha", 1)
	if err == nil {
		t.Fatal("AddReplica into a dead shard succeeded")
	}
	after := getTopology(t, ts.URL)
	if after.Epoch != before.Epoch || len(after.Pending) != 0 {
		t.Fatalf("failed replica copy mutated the topology: %+v", after)
	}
	if got := rt.Topology().View().Owners("alpha"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("owners after failed add = %v, want [0]", got)
	}
	if resp, _ := post(t, ts.URL+"/query?doc=alpha", testQueries[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("source stopped serving after failed replica add: %d", resp.StatusCode)
	}
}

// TestReplicaKillMidBurst is the failover fault injection: with a
// replica added at runtime through the new transition, a sustained
// read burst survives one replica being killed cold — zero errors,
// byte-identical output on every single request — because the router
// marks the dead worker on the failed attempt and retries the read on
// the survivor before any response bytes commit.
func TestReplicaKillMidBurst(t *testing.T) {
	shards, rt, ts := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	if _, err := rt.AddReplica(context.Background(), "alpha", 1); err != nil {
		t.Fatal(err)
	}
	_, wantBody := post(t, ts.URL+"/query?doc=alpha", testQueries[0])

	const conc = 16
	seen := make(map[string]bool)
	var seenMu sync.Mutex
	wave := func(label string) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan string, conc)
		for i := 0; i < conc; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, body := post(t, ts.URL+"/query?doc=alpha", testQueries[0])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("%s request %d: status %d: %.120s", label, i, resp.StatusCode, body)
					return
				}
				if body != wantBody {
					errs <- fmt.Sprintf("%s request %d: body diverged", label, i)
					return
				}
				seenMu.Lock()
				seen[resp.Header.Get("X-Flux-Shard")] = true
				seenMu.Unlock()
			}(i)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}

	wave("pre-kill")
	shards[1].Close() // kill the replica mid-burst
	wave("post-kill")
	wave("post-kill steady")

	// The burst before the kill spread across both replicas; everything
	// after it came from the survivor.
	seenMu.Lock()
	defer seenMu.Unlock()
	if !seen["0"] {
		t.Fatalf("the surviving replica never served: shards seen %v", seen)
	}
}

// TestReplicaPlacementRoundTrip is the ApplyOverrides-vs-Topology fix:
// a replica added at runtime (AddReplica) must round-trip through
// View.Placement → NewMapFromPlacement and through a generated
// shard-map file → ApplyOverrides into exactly the placement a
// file-declared replica produces, and /admin/shards must report the
// two tiers identically.
func TestReplicaPlacementRoundTrip(t *testing.T) {
	// Tier A declares the replica in the shard-map file; tier B grows it
	// at runtime through the new transition.
	_, rtA, tsA := spawnTier(t, testDocs, 2, "alpha: 0,1\nbeta: 1\ngamma: 1\n")
	_, rtB, tsB := spawnTier(t, testDocs, 2, "alpha: 0\nbeta: 1\ngamma: 1\n")
	if _, err := rtB.AddReplica(context.Background(), "alpha", 1); err != nil {
		t.Fatal(err)
	}

	viewA, viewB := rtA.Topology().View(), rtB.Topology().View()
	placeA, placeB := viewA.Placement(), viewB.Placement()
	if !samePlacement(placeA, placeB) {
		t.Fatalf("placements diverge:\nfile-declared: %v\nruntime-added: %v", placeA, placeB)
	}

	// Placement → NewMapFromPlacement round-trip.
	m2, err := NewMapFromPlacement(placeB, viewB.Shards())
	if err != nil {
		t.Fatal(err)
	}
	if !samePlacement(m2.Placement(), placeB) {
		t.Fatalf("NewMapFromPlacement round-trip diverges: %v != %v", m2.Placement(), placeB)
	}

	// Placement → shard-map file → ApplyOverrides round-trip.
	var lines []string
	for _, doc := range viewB.Docs() {
		ids := make([]string, 0, 2)
		for _, id := range viewB.Owners(doc) {
			ids = append(ids, fmt.Sprint(id))
		}
		lines = append(lines, fmt.Sprintf("%s: %s", doc, strings.Join(ids, ",")))
	}
	sort.Strings(lines)
	m3, err := NewMap(viewB.Docs(), viewB.Shards())
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.ApplyOverrides(strings.Join(lines, "\n")); err != nil {
		t.Fatal(err)
	}
	if !samePlacement(m3.Placement(), placeB) {
		t.Fatalf("shard-map file round-trip diverges: %v != %v", m3.Placement(), placeB)
	}

	// /admin/shards reports the per-shard document lists identically.
	topoA, topoB := getTopology(t, tsA.URL), getTopology(t, tsB.URL)
	for id := range topoA.Shards {
		a, b := topoA.Shards[id].Docs, topoB.Shards[id].Docs
		if len(a) != len(b) {
			t.Fatalf("shard %d docs diverge: file-declared %v, runtime-added %v", id, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shard %d docs diverge: file-declared %v, runtime-added %v", id, a, b)
			}
		}
	}
}

// samePlacement compares two placement tables exactly.
func samePlacement(a, b map[string][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for doc, ids := range a {
		other, ok := b[doc]
		if !ok || len(other) != len(ids) {
			return false
		}
		for i := range ids {
			if ids[i] != other[i] {
				return false
			}
		}
	}
	return true
}
